module genesys

go 1.22
