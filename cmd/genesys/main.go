// Command genesys drives the GENESYS reproduction: it regenerates the
// paper's tables and figures, prints the system call classification, and
// describes the simulated platform.
//
// Usage:
//
//	genesys run all            # regenerate every table and figure
//	genesys run fig7 fig13b    # regenerate specific experiments
//	genesys run -runs 10 fig8  # more repetitions (tighter error bars)
//	genesys list               # list experiment IDs
//	genesys classify           # full syscall classification (§IV)
//	genesys platform           # Table III analogue
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"genesys/internal/experiments"
	"genesys/internal/platform"
	"genesys/internal/syscalls"
	"genesys/internal/workloads"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  genesys run [-runs N] [-seed S] <experiment|all> [...]
  genesys list
  genesys classify
  genesys apps
  genesys platform

experiments: %v
`, experiments.IDs())
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case "classify":
		classifyCmd()
	case "apps":
		fmt.Print(workloads.RenderTableI())
	case "platform":
		m := platform.New(platform.DefaultConfig())
		fmt.Println(m.Describe())
		m.Shutdown()
	default:
		usage()
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	runs := fs.Int("runs", 3, "seeded repetitions per data point")
	seed := fs.Int64("seed", 1, "base seed")
	_ = fs.Parse(args)
	ids := fs.Args()
	if len(ids) == 0 {
		usage()
	}
	o := experiments.Options{Runs: *runs, BaseSeed: *seed}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fn, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(1)
		}
		start := time.Now()
		tbl := fn(o)
		fmt.Println(tbl.Render())
		fmt.Printf("  (regenerated in %v wall time, %d run(s)/point)\n\n",
			time.Since(start).Round(time.Millisecond), *runs)
	}
}

func classifyCmd() {
	fmt.Print(syscalls.ClassificationSummary())
	fmt.Println()
	for _, c := range []syscalls.Class{syscalls.ClassHardware, syscalls.ClassExtensive} {
		fmt.Printf("%s:\n", c)
		for _, in := range syscalls.Classification() {
			if in.Class == c {
				fmt.Printf("  %-24s %s\n", in.Name, in.Reason)
			}
		}
		fmt.Println()
	}
}
