// Command genesys drives the GENESYS reproduction: it regenerates the
// paper's tables and figures, prints the system call classification, and
// describes the simulated platform.
//
// Usage:
//
//	genesys run all            # regenerate every table and figure
//	genesys run fig7 fig13b    # regenerate specific experiments
//	genesys run -runs 10 fig8  # more repetitions (tighter error bars)
//	genesys list               # list experiment IDs
//	genesys classify           # full syscall classification (§IV)
//	genesys platform           # Table III analogue
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"genesys/internal/core"
	"genesys/internal/experiments"
	"genesys/internal/fault"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
	"genesys/internal/workloads"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  genesys run [-runs N] [-seed S] [-trace FILE] [-trace-cap N] [-flight-out DIR] [-metrics] [-critpath] [-faults P] <experiment|all> [...]
  genesys bench [-seed S] [-out DIR] [-ckpt-at DUR] [case ...]
  genesys sentry [-baseline DIR] [-wall-factor F] -fresh DIR
  genesys ckpt -case NAME [-seed S] -at DUR -out FILE
  genesys restore [-out DIR] FILE
  genesys record -case NAME [-seed S] -out FILE
  genesys replay [-workers N,N,..] [-coalesce DUR,DUR,..] [-coalesce-max N] [-json] FILE
  genesys list
  genesys classify
  genesys apps
  genesys platform

run flags:
  -trace FILE   write a Chrome trace-event JSON (chrome://tracing, Perfetto)
                of the first simulated machine to FILE
  -trace-cap N  event-log ring capacity per machine (default %d; long
                fleet runs wrap the default and drop the early window)
  -flight-out DIR
                write every flight-recorder anomaly bundle produced by
                the machines built (ANOMALY_m<k>_<seq>_<reason>.json)
  -metrics      print each experiment's final metrics registry snapshot
                (the /sys/genesys/metrics view)
  -critpath     print the critical-path attribution table of the first
                machine (the /sys/genesys/critpath view) after the runs
  -faults P     arm fault injection with profile P on every machine built
                (profiles: %v; -faults=help describes them)
  -fault-rate R per-opportunity injection probability (default %.2f)

bench: run the fixed deterministic perf suite, writing one
BENCH_<case>.json per case (all cases when none are named). With
-ckpt-at, also write CKPT_<case>.json — a snapshot of each case cut at
the given virtual instant (restore with 'genesys restore').
bench cases: %v

ckpt/restore: checkpoint a bench case mid-run to a snapshot file;
restore rebuilds it, verifies bit-identity at the cut, runs it to
completion and writes the same BENCH_<case>.json a straight run would.

record/replay: record captures a run's GPU-to-kernel syscall stream as
a trace file; replay re-drives the stream against a bare kernel
pipeline (no workload), sweeping worker counts and coalescing windows.

sentry: diff a fresh bench-artifact directory against the committed
baselines (default DIR "baselines"): exact on virtual-time artifacts
(BENCH_<case>.json, SLO_*.json), thresholded on BENCH_host.json
wall-clock. Prints a per-metric delta table; exits 1 on regression.

experiments: %v
`, obs.DefaultEventCap, fault.Profiles(), fault.DefaultRate,
		experiments.BenchNames(), experiments.IDs())
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "bench":
		benchCmd(os.Args[2:])
	case "ckpt":
		ckptCmd(os.Args[2:])
	case "restore":
		restoreCmd(os.Args[2:])
	case "record":
		recordCmd(os.Args[2:])
	case "replay":
		replayCmd(os.Args[2:])
	case "sentry":
		sentryCmd(os.Args[2:])
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case "classify":
		classifyCmd()
	case "apps":
		fmt.Print(workloads.RenderTableI())
	case "platform":
		m := platform.New(platform.DefaultConfig())
		fmt.Println(m.Describe())
		m.Shutdown()
	default:
		usage()
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	runs := fs.Int("runs", 3, "seeded repetitions per data point")
	seed := fs.Int64("seed", 1, "base seed")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON of the first machine to this file")
	showMetrics := fs.Bool("metrics", false, "print the metrics registry snapshot after each experiment")
	critpath := fs.Bool("critpath", false, "print the first machine's critical-path attribution table")
	faults := fs.String("faults", "", "fault-injection profile to arm on every machine ('help' lists profiles)")
	faultRate := fs.Float64("fault-rate", 0, "per-opportunity injection probability (0 = profile default)")
	traceCap := fs.Int("trace-cap", 0, "event-log ring capacity per machine (0 = default)")
	flightOut := fs.String("flight-out", "", "write flight-recorder anomaly bundles to this directory")
	_ = fs.Parse(args)
	if *faults == "help" {
		fmt.Print(fault.ProfileHelp())
		os.Exit(0)
	}
	if *faults != "" {
		if _, err := fault.PlanFor(*faults, *faultRate); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n%s", err, fault.ProfileHelp())
			os.Exit(1)
		}
	}
	ids := fs.Args()
	if len(ids) == 0 {
		usage()
	}
	o := experiments.Options{Runs: *runs, BaseSeed: *seed,
		FaultProfile: *faults, FaultRate: *faultRate, EventCap: *traceCap}

	// Observe every machine the experiments build: event tracing is
	// enabled on the first machine only (so the exported trace is one
	// coherent virtual-time timeline), and the metrics registry of the
	// most recent machine backs -metrics. Flight recorders are collected
	// from every machine — with -faults the first machine is usually the
	// fault-free baseline, so bundles come from the later ones.
	var traceLog *obs.EventLog
	var lastMetrics *obs.Registry
	var firstGenesys *core.Genesys
	var flights []*obs.Flight
	o.Observe = func(m *platform.Machine) {
		if *tracePath != "" && traceLog == nil {
			m.Obs.Events.SetEnabled(true)
			traceLog = m.Obs.Events
		}
		if firstGenesys == nil {
			firstGenesys = m.Genesys
		}
		lastMetrics = m.Obs.Metrics
		if *flightOut != "" {
			flights = append(flights, m.Obs.Flight)
		}
	}

	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fn, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(1)
		}
		start := time.Now()
		tbl := fn(o)
		fmt.Println(tbl.Render())
		fmt.Printf("  (regenerated in %v wall time, %d run(s)/point)\n\n",
			time.Since(start).Round(time.Millisecond), *runs)
		if *showMetrics && lastMetrics != nil {
			fmt.Printf("--- metrics (%s, last machine) ---\n%s\n", id, lastMetrics.Render())
		}
	}

	if *critpath {
		if firstGenesys == nil || firstGenesys.Tracer() == nil {
			fmt.Fprintln(os.Stderr, "critpath: no traced machine")
		} else {
			fmt.Println(firstGenesys.Tracer().CritPath())
		}
	}

	if *tracePath != "" {
		if traceLog == nil {
			fmt.Fprintln(os.Stderr, "trace: no machine was built, nothing to export")
			os.Exit(1)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := traceLog.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d event(s) to %s (%d dropped by ring buffer)\n",
			traceLog.Len(), *tracePath, traceLog.Dropped())
	}

	if *flightOut != "" {
		if err := os.MkdirAll(*flightOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "flight-out: %v\n", err)
			os.Exit(1)
		}
		written := 0
		for k, fl := range flights {
			for _, b := range fl.Bundles() {
				name := fmt.Sprintf("ANOMALY_m%d_%s", k, b.Name()[len("ANOMALY_"):])
				path := filepath.Join(*flightOut, name)
				if err := os.WriteFile(path, b.JSON(), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "flight-out: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("flight bundle (%s) -> %s\n", b.Reason, path)
				written++
			}
		}
		if written == 0 {
			fmt.Println("flight-out: no anomaly bundles (no detector fired)")
		}
	}
}

func sentryCmd(args []string) {
	fs := flag.NewFlagSet("sentry", flag.ExitOnError)
	baseline := fs.String("baseline", "baselines", "committed baseline artifact directory")
	fresh := fs.String("fresh", "", "freshly generated bench artifact directory (required)")
	wallFactor := fs.Float64("wall-factor", 10, "allowed BENCH_host.json wall-clock inflation factor")
	_ = fs.Parse(args)
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "sentry: -fresh DIR is required")
		os.Exit(2)
	}
	rep, err := experiments.RunSentry(*baseline, *fresh, experiments.SentryOptions{WallFactor: *wallFactor})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
	if rep.Failed() {
		os.Exit(1)
	}
}

// hostCase is one row of BENCH_host.json: wall-clock throughput of a
// bench case on this machine. Unlike BENCH_<case>.json these numbers
// are host-dependent and excluded from the determinism gate.
type hostCase struct {
	Name               string  `json:"name"`
	Seed               int64   `json:"seed"`
	Calls              int     `json:"calls"`
	WallMS             float64 `json:"wall_ms"`
	SyscallsPerHostSec float64 `json:"syscalls_per_host_sec"`
	SimEventsTotal     uint64  `json:"sim_events_total"`
	EventsPerHostSec   float64 `json:"events_per_host_sec"`
	SimProcSwitches    uint64  `json:"sim_proc_switches_total"`
	SimReadyFast       uint64  `json:"sim_events_ready_fast"`
	SimCallbacksRun    uint64  `json:"sim_callbacks_run"`
	SimProcsReaped     uint64  `json:"sim_procs_reaped"`
	SimTimersCanceled  uint64  `json:"sim_timers_canceled"`
}

// hostReport is the BENCH_host.json document.
type hostReport struct {
	GoVersion string     `json:"go_version"`
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	Cases     []hostCase `json:"cases"`
}

func perHostSec(n uint64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(n) / wall.Seconds()
}

func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "machine seed")
	outDir := fs.String("out", ".", "directory the BENCH_<case>.json files are written to")
	ckptAt := fs.Duration("ckpt-at", 0, "also snapshot each case at this virtual instant (CKPT_<case>.json)")
	_ = fs.Parse(args)
	names := fs.Args()
	if len(names) == 0 {
		names = experiments.BenchNames()
	}
	report := hostReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, name := range names {
		res, host, artifacts, err := experiments.RunBenchArtifacts(name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, "BENCH_"+name+".json")
		if err := os.WriteFile(path, res.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		for aname, data := range artifacts {
			apath := filepath.Join(*outDir, aname)
			if err := os.WriteFile(apath, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-16s artifact -> %s\n", name, apath)
		}
		wall := time.Duration(host.WallNS)
		report.Cases = append(report.Cases, hostCase{
			Name:               name,
			Seed:               *seed,
			Calls:              res.Calls,
			WallMS:             float64(host.WallNS) / 1e6,
			SyscallsPerHostSec: perHostSec(uint64(res.Calls), wall),
			SimEventsTotal:     host.Events,
			EventsPerHostSec:   perHostSec(host.Events, wall),
			SimProcSwitches:    host.ProcSwitches,
			SimReadyFast:       host.ReadyFast,
			SimCallbacksRun:    host.CallbacksRun,
			SimProcsReaped:     host.ProcsReaped,
			SimTimersCanceled:  host.TimersCanceled,
		})
		fmt.Printf("%-16s %6d calls  p50 %8.2fus  p99 %8.2fus  cpu %5.1f%%  %9.0f calls/s  -> %s (%v)\n",
			name, res.Calls, res.P50US, res.P99US, res.CPUUtilPct,
			perHostSec(uint64(res.Calls), wall), path, wall.Round(time.Millisecond))
		if *ckptAt > 0 {
			spath := filepath.Join(*outDir, "CKPT_"+name+".json")
			if err := experiments.CheckpointBench(name, *seed, sim.Time(ckptAt.Nanoseconds()), spath); err != nil {
				fmt.Fprintf(os.Stderr, "bench: checkpoint %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("%-16s snapshot at t=%v -> %s\n", name, *ckptAt, spath)
		}
	}
	hb, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	hostPath := filepath.Join(*outDir, "BENCH_host.json")
	if err := os.WriteFile(hostPath, append(hb, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("host wall-clock report -> %s\n", hostPath)
}

func classifyCmd() {
	fmt.Print(syscalls.ClassificationSummary())
	fmt.Println()
	for _, c := range []syscalls.Class{syscalls.ClassHardware, syscalls.ClassExtensive} {
		fmt.Printf("%s:\n", c)
		for _, in := range syscalls.Classification() {
			if in.Class == c {
				fmt.Printf("  %-24s %s\n", in.Name, in.Reason)
			}
		}
		fmt.Println()
	}
}
