// Command genesys drives the GENESYS reproduction: it regenerates the
// paper's tables and figures, prints the system call classification, and
// describes the simulated platform.
//
// Usage:
//
//	genesys run all            # regenerate every table and figure
//	genesys run fig7 fig13b    # regenerate specific experiments
//	genesys run -runs 10 fig8  # more repetitions (tighter error bars)
//	genesys list               # list experiment IDs
//	genesys classify           # full syscall classification (§IV)
//	genesys platform           # Table III analogue
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"genesys/internal/core"
	"genesys/internal/experiments"
	"genesys/internal/fault"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
	"genesys/internal/workloads"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  genesys run [-runs N] [-seed S] [-trace FILE] [-trace-cap N] [-flight-out DIR] [-metrics] [-critpath] [-faults P] <experiment|all> [...]
  genesys bench [-seed S | -seeds S1,S2,..] [-parallel N] [-out DIR] [-ckpt-at DUR]
                [-cpuprofile FILE] [-memprofile FILE] [case ...]
  genesys sentry [-baseline DIR] [-wall-factor F] -fresh DIR
  genesys ckpt -case NAME [-seed S] -at DUR -out FILE
  genesys restore [-out DIR] FILE
  genesys record -case NAME [-seed S] -out FILE
  genesys replay [-workers N,N,..] [-coalesce DUR,DUR,..] [-coalesce-max N] [-json] FILE
  genesys list
  genesys classify
  genesys apps
  genesys platform

run flags:
  -trace FILE   write a Chrome trace-event JSON (chrome://tracing, Perfetto)
                of the first simulated machine to FILE
  -trace-cap N  event-log ring capacity per machine (default %d; long
                fleet runs wrap the default and drop the early window)
  -flight-out DIR
                write every flight-recorder anomaly bundle produced by
                the machines built (ANOMALY_m<k>_<seq>_<reason>.json)
  -metrics      print each experiment's final metrics registry snapshot
                (the /sys/genesys/metrics view)
  -critpath     print the critical-path attribution table of the first
                machine (the /sys/genesys/critpath view) after the runs
  -faults P     arm fault injection with profile P on every machine built
                (profiles: %v; -faults=help describes them)
  -fault-rate R per-opportunity injection probability (default %.2f)

bench: run the fixed deterministic perf suite, writing one
BENCH_<case>.json per case (all cases when none are named). -parallel N
(default: host cores) simulates up to N fully isolated machines
concurrently — one per (case, seed) — with results merged in case
order, byte-identical to -parallel 1; -seeds runs the suite under
several seeds at once, each seed's virtual-time artifacts in
OUT/seed-<S>/. With -ckpt-at, also write CKPT_<case>.json — a snapshot
of each case cut at the given virtual instant (restore with 'genesys
restore').
bench cases: %v

ckpt/restore: checkpoint a bench case mid-run to a snapshot file;
restore rebuilds it, verifies bit-identity at the cut, runs it to
completion and writes the same BENCH_<case>.json a straight run would.

record/replay: record captures a run's GPU-to-kernel syscall stream as
a trace file; replay re-drives the stream against a bare kernel
pipeline (no workload), sweeping worker counts and coalescing windows.

sentry: diff a fresh bench-artifact directory against the committed
baselines (default DIR "baselines"): exact on virtual-time artifacts
(BENCH_<case>.json, SLO_*.json), thresholded on BENCH_host.json
wall-clock. Prints a per-metric delta table; exits 1 on regression.

experiments: %v
`, obs.DefaultEventCap, fault.Profiles(), fault.DefaultRate,
		experiments.BenchNames(), experiments.IDs())
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "bench":
		benchCmd(os.Args[2:])
	case "ckpt":
		ckptCmd(os.Args[2:])
	case "restore":
		restoreCmd(os.Args[2:])
	case "record":
		recordCmd(os.Args[2:])
	case "replay":
		replayCmd(os.Args[2:])
	case "sentry":
		sentryCmd(os.Args[2:])
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case "classify":
		classifyCmd()
	case "apps":
		fmt.Print(workloads.RenderTableI())
	case "platform":
		m := platform.New(platform.DefaultConfig())
		fmt.Println(m.Describe())
		m.Shutdown()
	default:
		usage()
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	runs := fs.Int("runs", 3, "seeded repetitions per data point")
	seed := fs.Int64("seed", 1, "base seed")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON of the first machine to this file")
	showMetrics := fs.Bool("metrics", false, "print the metrics registry snapshot after each experiment")
	critpath := fs.Bool("critpath", false, "print the first machine's critical-path attribution table")
	faults := fs.String("faults", "", "fault-injection profile to arm on every machine ('help' lists profiles)")
	faultRate := fs.Float64("fault-rate", 0, "per-opportunity injection probability (0 = profile default)")
	traceCap := fs.Int("trace-cap", 0, "event-log ring capacity per machine (0 = default)")
	flightOut := fs.String("flight-out", "", "write flight-recorder anomaly bundles to this directory")
	_ = fs.Parse(args)
	if *faults == "help" {
		fmt.Print(fault.ProfileHelp())
		os.Exit(0)
	}
	if *faults != "" {
		if _, err := fault.PlanFor(*faults, *faultRate); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n%s", err, fault.ProfileHelp())
			os.Exit(1)
		}
	}
	ids := fs.Args()
	if len(ids) == 0 {
		usage()
	}
	o := experiments.Options{Runs: *runs, BaseSeed: *seed,
		FaultProfile: *faults, FaultRate: *faultRate, EventCap: *traceCap}

	// Observe every machine the experiments build: event tracing is
	// enabled on the first machine only (so the exported trace is one
	// coherent virtual-time timeline), and the metrics registry of the
	// most recent machine backs -metrics. Flight recorders are collected
	// from every machine — with -faults the first machine is usually the
	// fault-free baseline, so bundles come from the later ones.
	var traceLog *obs.EventLog
	var lastMetrics *obs.Registry
	var firstGenesys *core.Genesys
	var flights []*obs.Flight
	o.Observe = func(m *platform.Machine) {
		if *tracePath != "" && traceLog == nil {
			m.Obs.Events.SetEnabled(true)
			traceLog = m.Obs.Events
		}
		if firstGenesys == nil {
			firstGenesys = m.Genesys
		}
		lastMetrics = m.Obs.Metrics
		if *flightOut != "" {
			flights = append(flights, m.Obs.Flight)
		}
	}

	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fn, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(1)
		}
		start := time.Now()
		tbl := fn(o)
		fmt.Println(tbl.Render())
		fmt.Printf("  (regenerated in %v wall time, %d run(s)/point)\n\n",
			time.Since(start).Round(time.Millisecond), *runs)
		if *showMetrics && lastMetrics != nil {
			fmt.Printf("--- metrics (%s, last machine) ---\n%s\n", id, lastMetrics.Render())
		}
	}

	if *critpath {
		if firstGenesys == nil || firstGenesys.Tracer() == nil {
			fmt.Fprintln(os.Stderr, "critpath: no traced machine")
		} else {
			fmt.Println(firstGenesys.Tracer().CritPath())
		}
	}

	if *tracePath != "" {
		if traceLog == nil {
			fmt.Fprintln(os.Stderr, "trace: no machine was built, nothing to export")
			os.Exit(1)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := traceLog.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d event(s) to %s (%d dropped by ring buffer)\n",
			traceLog.Len(), *tracePath, traceLog.Dropped())
	}

	if *flightOut != "" {
		if err := os.MkdirAll(*flightOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "flight-out: %v\n", err)
			os.Exit(1)
		}
		written := 0
		for k, fl := range flights {
			for _, b := range fl.Bundles() {
				name := fmt.Sprintf("ANOMALY_m%d_%s", k, b.Name()[len("ANOMALY_"):])
				path := filepath.Join(*flightOut, name)
				if err := os.WriteFile(path, b.JSON(), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "flight-out: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("flight bundle (%s) -> %s\n", b.Reason, path)
				written++
			}
		}
		if written == 0 {
			fmt.Println("flight-out: no anomaly bundles (no detector fired)")
		}
	}
}

func sentryCmd(args []string) {
	fs := flag.NewFlagSet("sentry", flag.ExitOnError)
	baseline := fs.String("baseline", "baselines", "committed baseline artifact directory")
	fresh := fs.String("fresh", "", "freshly generated bench artifact directory (required)")
	wallFactor := fs.Float64("wall-factor", 10, "allowed BENCH_host.json wall-clock inflation factor")
	_ = fs.Parse(args)
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "sentry: -fresh DIR is required")
		os.Exit(2)
	}
	rep, err := experiments.RunSentry(*baseline, *fresh, experiments.SentryOptions{WallFactor: *wallFactor})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
	if rep.Failed() {
		os.Exit(1)
	}
}

// parseSeeds parses the -seeds list ("1,2,7") into machine seeds.
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q in -seeds", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-seeds lists no seeds")
	}
	return out, nil
}

func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "machine seed")
	seeds := fs.String("seeds", "", "comma-separated machine seeds; each seed's artifacts land in OUT/seed-<S>/ (overrides -seed)")
	outDir := fs.String("out", ".", "directory the BENCH_<case>.json files are written to")
	parallel := fs.Int("parallel", runtime.NumCPU(), "max machines simulated concurrently (1 = sequential driver)")
	ckptAt := fs.Duration("ckpt-at", 0, "also snapshot each case at this virtual instant (CKPT_<case>.json)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the suite to this file (requires -parallel 1)")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile taken after the suite to this file (requires -parallel 1)")
	_ = fs.Parse(args)
	opt := experiments.SuiteOptions{
		Cases:      fs.Args(),
		Seeds:      []int64{*seed},
		Parallel:   *parallel,
		CPUProfile: *cpuProfile,
		MemProfile: *memProfile,
	}
	if *seeds != "" {
		var err error
		if opt.Seeds, err = parseSeeds(*seeds); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
	}
	multiSeed := len(opt.Seeds) > 1
	// caseDir is where one unit's virtual-time artifacts land: flat for
	// a single seed (today's layout), per-seed subdirs for -seeds.
	caseDir := func(s int64) string {
		if !multiSeed {
			return *outDir
		}
		return filepath.Join(*outDir, fmt.Sprintf("seed-%d", s))
	}
	for _, s := range opt.Seeds {
		if err := os.MkdirAll(caseDir(s), 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
	suite, err := experiments.RunBenchSuite(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	// All writes and console lines happen after the merge, in the
	// suite's deterministic unit order — worker goroutines never touch
	// stdout or the filesystem, so -parallel N output is identical to
	// -parallel 1 modulo the wall-clock numbers.
	for _, c := range suite.Cases {
		dir := caseDir(c.Seed)
		label := c.Name
		if multiSeed {
			label = fmt.Sprintf("%s@%d", c.Name, c.Seed)
		}
		path := filepath.Join(dir, "BENCH_"+c.Name+".json")
		if err := os.WriteFile(path, c.Result.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		anames := make([]string, 0, len(c.Artifacts))
		for aname := range c.Artifacts {
			anames = append(anames, aname)
		}
		sort.Strings(anames)
		for _, aname := range anames {
			apath := filepath.Join(dir, aname)
			if err := os.WriteFile(apath, c.Artifacts[aname], 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-16s artifact -> %s\n", label, apath)
		}
		wall := time.Duration(c.Host.WallNS)
		calls := float64(0)
		if wall > 0 {
			calls = float64(c.Result.Calls) / wall.Seconds()
		}
		fmt.Printf("%-16s %6d calls  p50 %8.2fus  p99 %8.2fus  cpu %5.1f%%  %9.0f calls/s  -> %s (%v)\n",
			label, c.Result.Calls, c.Result.P50US, c.Result.P99US, c.Result.CPUUtilPct,
			calls, path, wall.Round(time.Millisecond))
		if *ckptAt > 0 {
			spath := filepath.Join(dir, "CKPT_"+c.Name+".json")
			if err := experiments.CheckpointBench(c.Name, c.Seed, sim.Time(ckptAt.Nanoseconds()), spath); err != nil {
				fmt.Fprintf(os.Stderr, "bench: checkpoint %s: %v\n", c.Name, err)
				os.Exit(1)
			}
			fmt.Printf("%-16s snapshot at t=%v -> %s\n", label, *ckptAt, spath)
		}
	}
	hostPath := filepath.Join(*outDir, "BENCH_host.json")
	if err := os.WriteFile(hostPath, suite.HostReport().JSON(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("host wall-clock report -> %s (%d worker(s), suite wall %v)\n",
		hostPath, suite.Workers, time.Duration(suite.WallNS).Round(time.Millisecond))
}

func classifyCmd() {
	fmt.Print(syscalls.ClassificationSummary())
	fmt.Println()
	for _, c := range []syscalls.Class{syscalls.ClassHardware, syscalls.ClassExtensive} {
		fmt.Printf("%s:\n", c)
		for _, in := range syscalls.Classification() {
			if in.Class == c {
				fmt.Printf("  %-24s %s\n", in.Name, in.Reason)
			}
		}
		fmt.Println()
	}
}
