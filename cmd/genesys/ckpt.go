package main

// The checkpoint/restore and record/replay subcommands (DESIGN.md §10):
// thin CLI shims over internal/experiments' bench-recipe harness and
// internal/replay's sweep driver.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"genesys/internal/ckpt"
	"genesys/internal/experiments"
	"genesys/internal/replay"
	"genesys/internal/sim"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func jsonIndent(v interface{}) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func ckptCmd(args []string) {
	fs := flag.NewFlagSet("ckpt", flag.ExitOnError)
	caseName := fs.String("case", "", "bench case to checkpoint")
	seed := fs.Int64("seed", 1, "machine seed")
	at := fs.Duration("at", 0, "virtual instant of the cut")
	out := fs.String("out", "", "snapshot file to write")
	_ = fs.Parse(args)
	if *caseName == "" || *out == "" || *at <= 0 {
		fatalf("ckpt: -case, -at and -out are required")
	}
	if err := experiments.CheckpointBench(*caseName, *seed, sim.Time(at.Nanoseconds()), *out); err != nil {
		fatalf("ckpt: %v", err)
	}
	fmt.Printf("checkpointed %s (seed %d) at t=%v -> %s\n", *caseName, *seed, *at, *out)
}

func restoreCmd(args []string) {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	outDir := fs.String("out", ".", "directory the BENCH_<case>.json is written to")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("restore: exactly one snapshot file expected")
	}
	path := fs.Arg(0)
	s, err := ckpt.Load(path)
	if err != nil {
		fatalf("restore: %v", err)
	}
	fmt.Printf("restoring %s: case %q seed %d, cut at t=%v\n",
		path, s.Meta.Case, s.Meta.Seed, time.Duration(s.CutAt))
	res, _, artifacts, err := experiments.ResumeBench(path)
	if err != nil {
		fatalf("restore: %v", err)
	}
	bpath := filepath.Join(*outDir, "BENCH_"+res.Name+".json")
	if err := os.WriteFile(bpath, res.JSON(), 0o644); err != nil {
		fatalf("restore: %v", err)
	}
	fmt.Printf("%-16s %6d calls  p50 %8.2fus  p99 %8.2fus  -> %s\n",
		res.Name, res.Calls, res.P50US, res.P99US, bpath)
	for aname, data := range artifacts {
		apath := filepath.Join(*outDir, aname)
		if err := os.WriteFile(apath, data, 0o644); err != nil {
			fatalf("restore: %v", err)
		}
		fmt.Printf("%-16s artifact -> %s\n", res.Name, apath)
	}
}

func recordCmd(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	caseName := fs.String("case", "", "bench case to record")
	seed := fs.Int64("seed", 1, "machine seed")
	out := fs.String("out", "", "trace file to write")
	_ = fs.Parse(args)
	if *caseName == "" || *out == "" {
		fatalf("record: -case and -out are required")
	}
	res, tr, err := experiments.RecordBench(*caseName, *seed)
	if err != nil {
		fatalf("record: %v", err)
	}
	if err := tr.Write(*out); err != nil {
		fatalf("record: %v", err)
	}
	fmt.Printf("recorded %s (seed %d): %d syscalls, %d env fds -> %s\n",
		*caseName, *seed, len(tr.Entries), len(tr.Env), *out)
	for _, c := range tr.PerNR() {
		fmt.Printf("  %-16s %6d\n", c.Name, c.Recorded)
	}
	_ = res
}

func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func parseDurList(s string) ([]sim.Time, error) {
	if s == "" {
		return nil, nil
	}
	var out []sim.Time
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, sim.Time(d.Nanoseconds()))
	}
	return out, nil
}

func replayCmd(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	workersList := fs.String("workers", "", "comma-separated worker counts to sweep (default: config default)")
	coalesceList := fs.String("coalesce", "", "comma-separated coalescing windows to sweep (e.g. 10us,30us)")
	coalesceMax := fs.Int("coalesce-max", 0, "coalescing batch-size cap when sweeping windows")
	asJSON := fs.Bool("json", false, "emit the sweep reports as JSON")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("replay: exactly one trace file expected")
	}
	tr, err := replay.Load(fs.Arg(0))
	if err != nil {
		fatalf("replay: %v", err)
	}
	workers, err := parseIntList(*workersList)
	if err != nil {
		fatalf("replay: -workers: %v", err)
	}
	windows, err := parseDurList(*coalesceList)
	if err != nil {
		fatalf("replay: -coalesce: %v", err)
	}
	table, reps, err := experiments.ReplaySweep(tr, workers, windows, *coalesceMax)
	if err != nil {
		fatalf("replay: %v", err)
	}
	if *asJSON {
		for _, rep := range reps {
			b, err := jsonIndent(rep)
			if err != nil {
				fatalf("replay: %v", err)
			}
			os.Stdout.Write(b)
		}
		return
	}
	if len(reps) == 1 {
		fmt.Print(reps[0].Render())
	} else {
		fmt.Println(table.Render())
	}
	for _, rep := range reps {
		if !rep.Matches {
			fatalf("replay: configuration workers=%d diverged from the recording", rep.Workers)
		}
	}
}
