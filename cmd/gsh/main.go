// Command gsh is a tiny "GPU shell": it populates a simulated machine
// with demo files and executes classic Unix one-liners as GPU kernels,
// every byte flowing through GENESYS system calls.
//
// Usage:
//
//	gsh <command...>        # e.g.  gsh ls /tmp
//	gsh demo                # runs a scripted tour
//
// Commands: cat, critpath, df, grep, ls, metrics, stat, util, wc.
package main

import (
	"fmt"
	"os"
	"strings"

	"genesys/internal/gsh"
	"genesys/internal/platform"
)

func main() {
	m := platform.New(platform.DefaultConfig())
	defer m.Shutdown()
	sh := gsh.New(m)

	// Demo corpus.
	m.WriteFile("/tmp/motd", []byte("welcome to gsh: a shell whose commands run on the GPU\n"))
	m.WriteFile("/tmp/poem.txt", []byte("roses are red\nviolets are blue\nGPUs make syscalls\nand so can you\n"))

	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: gsh <command...> | gsh demo\ncommands:\n%s", gsh.Usage())
		os.Exit(2)
	}
	lines := []string{strings.Join(args, " ")}
	if args[0] == "demo" {
		lines = []string{
			"cat /tmp/motd",
			"ls /tmp",
			"wc /tmp/poem.txt",
			"grep blue /tmp/poem.txt",
			"stat /tmp/poem.txt",
			"df",
		}
	}
	for _, line := range lines {
		fmt.Printf("gsh$ %s\n", line)
		out, err := sh.Run(line)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "(exit status: %v)\n", err)
		}
	}
	fmt.Printf("[%d GPU kernels, %d GPU system calls]\n",
		m.GPU.KernelsLaunched.Value(), m.Genesys.Invocations.Value())
}
