// Command gsh is a tiny "GPU shell": it populates a simulated machine
// with demo files and executes classic Unix one-liners as GPU kernels,
// every byte flowing through GENESYS system calls.
//
// Usage:
//
//	gsh [-trace-cap N] <command...>   # e.g.  gsh ls /tmp
//	gsh demo                          # runs a scripted tour
//
// Commands: cat, critpath, df, flight, grep, ls, metrics, slo, stat,
// top, util, wc; plus the host-side session commands ckpt
// save/load/info <file> and replay <file> (see 'gsh help').
//
// -trace-cap N sets the event-log ring capacity (number of retained
// trace events) for the session's machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"genesys/internal/gsh"
	"genesys/internal/obs"
	"genesys/internal/platform"
)

func main() {
	fs := flag.NewFlagSet("gsh", flag.ExitOnError)
	traceCap := fs.Int("trace-cap", 0,
		fmt.Sprintf("event-log ring capacity (0 = default %d)", obs.DefaultEventCap))
	fs.Parse(os.Args[1:])

	cfg := platform.DefaultConfig()
	cfg.EventCap = *traceCap
	m := platform.New(cfg)
	defer m.Shutdown()
	sh := gsh.New(m)

	// Demo corpus, written through the shell so the session stays
	// checkpointable (the writes join the ckpt history).
	sh.WriteFile("/tmp/motd", []byte("welcome to gsh: a shell whose commands run on the GPU\n"))
	sh.WriteFile("/tmp/poem.txt", []byte("roses are red\nviolets are blue\nGPUs make syscalls\nand so can you\n"))

	args := fs.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: gsh [-trace-cap N] <command...> | gsh demo\ncommands:\n%s", gsh.Usage())
		os.Exit(2)
	}
	lines := []string{strings.Join(args, " ")}
	if args[0] == "demo" {
		lines = []string{
			"cat /tmp/motd",
			"ls /tmp",
			"wc /tmp/poem.txt",
			"grep blue /tmp/poem.txt",
			"stat /tmp/poem.txt",
			"df",
		}
	}
	for _, line := range lines {
		fmt.Printf("gsh$ %s\n", line)
		out, err := sh.Run(line)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "(exit status: %v)\n", err)
		}
	}
	// Read stats off sh.M, not m: a 'ckpt load' swaps the shell's
	// machine for the restored one.
	fmt.Printf("[%d GPU kernels, %d GPU system calls]\n",
		sh.M.GPU.KernelsLaunched.Value(), sh.M.Genesys.Invocations.Value())
}
