// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment driver
// and reports the headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Absolute numbers are the simulator's;
// the shapes (who wins, by what factor, where crossovers fall) are the
// reproduction target — see EXPERIMENTS.md for the paper-vs-measured
// record.
package genesys_test

import (
	"strconv"
	"strings"
	"testing"

	"genesys/internal/core"
	"genesys/internal/experiments"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
	"genesys/internal/workloads"
)

func benchOptions() experiments.Options {
	return experiments.Options{Runs: 1, BaseSeed: 1}
}

// parseMean extracts the numeric mean from a "x.xx ± y.yy" table cell.
func parseMean(cell string) float64 {
	f := strings.Fields(cell)
	if len(f) == 0 {
		return 0
	}
	v, _ := strconv.ParseFloat(f[0], 64)
	return v
}

// cellOf returns table row r, column c (0 if out of range).
func cellOf(t *experiments.Table, r, c int) string {
	if r < len(t.Rows) && c < len(t.Rows[r]) {
		return t.Rows[r][c]
	}
	return ""
}

func BenchmarkTable2Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table2Classification()
	}
	ready, hw, ext, total := syscalls.ClassCounts()
	b.ReportMetric(100*float64(ready)/float64(total), "%readily")
	b.ReportMetric(100*float64(hw)/float64(total), "%hw-changes")
	b.ReportMetric(100*float64(ext)/float64(total), "%extensive")
}

func BenchmarkTable4AtomicCosts(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table4AtomicCosts(benchOptions())
	}
	b.ReportMetric(parseMean(cellOf(t, 0, 1)), "cmpswap-us")
	b.ReportMetric(parseMean(cellOf(t, 1, 1)), "swap-us")
	b.ReportMetric(parseMean(cellOf(t, 2, 1)), "atomicload-us")
	b.ReportMetric(parseMean(cellOf(t, 3, 1)), "load-us")
}

func BenchmarkFig7InvocationGranularity(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig7Granularity(benchOptions())
	}
	// Largest-size row: work-item, work-group, kernel read times.
	b.ReportMetric(parseMean(cellOf(t, 3, 1)), "wi-ms")
	b.ReportMetric(parseMean(cellOf(t, 3, 2)), "wg-ms")
	b.ReportMetric(parseMean(cellOf(t, 3, 3)), "kernel-ms")
}

func BenchmarkFig8BlockingOrdering(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig8BlockingOrdering(benchOptions())
	}
	// Iteration-count 1 row: strong-block vs weak-nonblock.
	b.ReportMetric(parseMean(cellOf(t, 0, 1)), "strongblock-us")
	b.ReportMetric(parseMean(cellOf(t, 0, 4)), "weaknonblock-us")
}

func BenchmarkFig9PollingContention(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig9PollingContention(benchOptions())
	}
	// Below-knee (4096 lines) vs far-past-knee (32768 lines) throughput.
	b.ReportMetric(parseMean(cellOf(t, 3, 1)), "atknee-Macc/s")
	b.ReportMetric(parseMean(cellOf(t, 6, 1)), "pastknee-Macc/s")
}

func BenchmarkFig10Coalescing(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig10Coalescing(benchOptions())
	}
	b.ReportMetric(parseMean(cellOf(t, 0, 1)), "small-off-ns/B")
	b.ReportMetric(parseMean(cellOf(t, 0, 2)), "small-on-ns/B")
}

func BenchmarkFig11MiniAMR(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig11MiniAMR(benchOptions())
	}
	b.ReportMetric(parseMean(cellOf(t, 1, 3)), "rss3gb-peak-MiB")
	b.ReportMetric(parseMean(cellOf(t, 2, 3)), "rss4gb-peak-MiB")
}

func BenchmarkFig12SignalSearch(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig12SignalSearch(benchOptions())
	}
	base := parseMean(cellOf(t, 0, 1))
	overlap := parseMean(cellOf(t, 1, 1))
	if overlap > 0 {
		b.ReportMetric(base/overlap, "speedup")
	}
}

func BenchmarkFig13aGrep(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig13aGrep(benchOptions())
	}
	cpu := parseMean(cellOf(t, 0, 1))
	omp := parseMean(cellOf(t, 1, 1))
	halt := parseMean(cellOf(t, 4, 1))
	if halt > 0 {
		b.ReportMetric(cpu/halt, "vs-cpu")
		b.ReportMetric(omp/halt, "vs-openmp")
	}
}

func BenchmarkFig13bWordcount(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig13bWordcount(benchOptions())
	}
	cpu := parseMean(cellOf(t, 0, 1))
	gen := parseMean(cellOf(t, 2, 1))
	if gen > 0 {
		b.ReportMetric(cpu/gen, "genesys-speedup")
	}
}

func BenchmarkFig14WordcountTraces(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig14WordcountTraces(benchOptions())
	}
	b.ReportMetric(parseMean(cellOf(t, 0, 1)), "cpu-MB/s")
	b.ReportMetric(parseMean(cellOf(t, 1, 1)), "genesys-MB/s")
}

func BenchmarkFig15Memcached(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig15Memcached(benchOptions())
	}
	cpu := parseMean(cellOf(t, 0, 1))
	gen := parseMean(cellOf(t, 2, 1))
	b.ReportMetric(cpu, "cpu-lat-us")
	b.ReportMetric(gen, "genesys-lat-us")
	if cpu > 0 {
		b.ReportMetric(100*(1-gen/cpu), "%lat-gain")
	}
}

func BenchmarkFig16BMPDisplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig16BMPDisplay(benchOptions())
	}
}

// --- ablation and infrastructure benchmarks (DESIGN.md §4) ---

// BenchmarkEngineDispatch measures raw simulation-event throughput: the
// cost floor under every experiment.
func BenchmarkEngineDispatch(b *testing.B) {
	e := sim.NewEngine(1)
	e.Spawn("ticker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSyscallRoundTrip measures one blocking work-group-granularity
// GPU system call end to end (virtual latency reported as a metric,
// wall time as the simulator's own cost).
func BenchmarkSyscallRoundTrip(b *testing.B) {
	m := platform.New(platform.DefaultConfig())
	defer m.Shutdown()
	pr := m.NewProcess("bench")
	f, err := m.VFS.Open("/tmp/bench", fs.O_CREAT|fs.O_WRONLY)
	if err != nil {
		b.Fatal(err)
	}
	fd, _ := pr.FDs.Install(f)
	var virtual sim.Time
	n := b.N
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "bench", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				start := w.P.Now()
				buf := make([]byte, 64)
				for i := 0; i < n; i++ {
					m.Genesys.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 64, 0},
						Buf:  buf,
					}, core.Options{Blocking: true, Wait: core.WaitPoll,
						Ordering: core.Relaxed, Kind: core.Consumer})
				}
				virtual = w.P.Now() - start
			},
		})
		k.Wait(p)
	})
	b.ResetTimer()
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(virtual)/float64(b.N)/1000, "virtual-us/call")
}

// BenchmarkSlotLayoutAblation quantifies why the paper pads slots to one
// per cache line (Figure 5): the packed alternative false-shares on
// work-item-granularity invocation (DESIGN.md ⚗2).
func BenchmarkSlotLayoutAblation(b *testing.B) {
	for _, layout := range []struct {
		name   string
		packed bool
	}{{"padded-64B", false}, {"packed-4per-line", true}} {
		b.Run(layout.name, func(b *testing.B) {
			var virtual sim.Time
			for i := 0; i < b.N; i++ {
				cfg := platform.DefaultConfig()
				cfg.Genesys.PackedSlots = layout.packed
				m := platform.New(cfg)
				res, err := workloads.RunPread(m, workloads.PreadConfig{
					FileSize: 512 * 4096, ChunkPerWI: 4096, WGSize: 64,
					Granularity: workloads.GranWorkItem, Wait: core.WaitPoll,
				})
				if err != nil {
					b.Fatal(err)
				}
				virtual = res.ReadTime
				m.Shutdown()
			}
			b.ReportMetric(virtual.Milli(), "virtual-ms")
		})
	}
}

// BenchmarkCoalescingAblation compares batches formed with and without
// interrupt coalescing on a work-item pread flood (DESIGN.md ⚗3).
func BenchmarkCoalescingAblation(b *testing.B) {
	for _, mode := range []struct {
		name   string
		window sim.Time
		max    int
	}{{"off", 0, 1}, {"8way", 50 * sim.Microsecond, 8}} {
		b.Run(mode.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				m := platform.New(platform.DefaultConfig())
				m.Genesys.SetCoalescing(mode.window, mode.max)
				res, err := workloads.RunPread(m, workloads.PreadConfig{
					FileSize: 4096 * 512, ChunkPerWI: 512, WGSize: 64,
					Granularity: workloads.GranWorkItem, Wait: core.WaitHaltResume,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = res.LatencyPerByte()
				m.Shutdown()
			}
			b.ReportMetric(lat, "virtual-ns/B")
		})
	}
}
