package genesys_test

import (
	"strings"
	"testing"

	"genesys"
)

// TestFacadeQuickstart runs the package-documentation example through the
// public facade: a GPU kernel printing to the terminal via write(2).
func TestFacadeQuickstart(t *testing.T) {
	m := genesys.NewMachine(genesys.DefaultConfig())
	defer m.Shutdown()
	m.NewProcess("app")

	m.E.Spawn("host", func(p *genesys.Proc) {
		k := m.GPU.Launch(p, genesys.Kernel{
			Name: "hello", WorkGroups: 4, WGSize: 256,
			Fn: func(w *genesys.Wavefront) {
				line := []byte("hello from the GPU\n")
				m.Genesys.InvokeWG(w, genesys.Request{
					NR:   genesys.SYS_write,
					Args: [6]uint64{1, uint64(len(line))},
					Buf:  line,
				}, genesys.Options{Blocking: true, Ordering: genesys.Relaxed,
					Kind: genesys.Consumer})
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.OS.Console.Contents()
	if strings.Count(out, "hello from the GPU") != 4 {
		t.Fatalf("console = %q", out)
	}
}

// TestFacadePOSIX drives the exported wrapper library end to end.
func TestFacadePOSIX(t *testing.T) {
	m := genesys.NewMachine(genesys.DefaultConfig())
	defer m.Shutdown()
	m.NewProcess("app")
	c := genesys.NewPOSIX(m)
	var got string
	m.E.Spawn("host", func(p *genesys.Proc) {
		k := m.GPU.Launch(p, genesys.Kernel{
			Name: "posix", WorkGroups: 1, WGSize: 64,
			Fn: func(w *genesys.Wavefront) {
				fd, err := c.Open(w, "/tmp/facade", genesys.O_CREAT|genesys.O_RDWR)
				if err != 0 {
					t.Errorf("open: %v", err)
					return
				}
				c.Write(w, fd, []byte("via the facade"))
				c.Lseek(w, fd, 0, genesys.SeekSet)
				buf := make([]byte, 32)
				n, _ := c.Read(w, fd, buf)
				if w.IsLeader() {
					got = string(buf[:n])
				}
				c.Close(w, fd)
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "via the facade" {
		t.Fatalf("read back %q", got)
	}
	dcfg := genesys.DiscreteGPUConfig()
	if dcfg.GPU.CUs <= genesys.DefaultConfig().GPU.CUs {
		t.Fatal("discrete preset not bigger")
	}
}

// TestFacadeCoversTheAPI exercises the re-exported constants and types so
// the facade cannot drift from the internal packages.
func TestFacadeCoversTheAPI(t *testing.T) {
	cfg := genesys.DefaultConfig()
	if cfg.GPU.CUs != 8 || cfg.CPU.Cores != 4 {
		t.Fatalf("default config = %+v", cfg)
	}
	if genesys.SYS_write != 1 || genesys.SYS_pread64 != 17 || genesys.SYS_rt_sigqueueinfo != 129 {
		t.Fatal("syscall numbers drifted")
	}
	if genesys.O_RDONLY != 0 || genesys.O_CREAT != 0x40 || genesys.SeekEnd != 2 {
		t.Fatal("flag constants drifted")
	}
	if genesys.Second != 1e9*genesys.Nanosecond {
		t.Fatal("time constants drifted")
	}
	if genesys.ErrKernelStrongOrdering == nil {
		t.Fatal("sentinel error missing")
	}
	var o genesys.Options
	o.Ordering = genesys.Strong
	o.Kind = genesys.Producer
	o.Wait = genesys.WaitHaltResume
	var r genesys.Result
	if r.Ok() != true {
		t.Fatal("zero Result should be OK")
	}
}
