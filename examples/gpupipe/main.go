// gpupipe demonstrates §IV's "everything is a file" payoff for pipes: a
// GPU kernel streams results into a pipe created with pipe2(2) while a
// CPU consumer thread reads the other end concurrently — the classic
// producer/consumer with the producer running on the GPU and standard
// POSIX plumbing in between.
package main

import (
	"fmt"
	"log"

	"genesys"
	"genesys/internal/gclib"
	"genesys/internal/gpu"
	"genesys/internal/syscalls"
)

func main() {
	m := genesys.NewMachine(genesys.DefaultConfig())
	defer m.Shutdown()
	proc := m.NewProcess("gpupipe")
	c := gclib.C{G: m.Genesys}

	// Create the pipe from the host via the syscall layer.
	var rfd, wfd uint64
	m.E.Spawn("setup", func(p *genesys.Proc) {
		req := &syscalls.Request{NR: syscalls.SYS_pipe2}
		syscalls.Dispatch(&syscalls.Ctx{P: p, OS: m.OS, Proc: proc}, req)
		if req.Err != 0 {
			log.Fatalf("pipe2: %v", req.Err)
		}
		rfd, wfd = req.OutArgs[0], req.OutArgs[1]

		// CPU consumer: reads lines off the pipe as they arrive.
		var received int
		proc.Spawn("consumer", func(cp *genesys.Proc) {
			buf := make([]byte, 256)
			for {
				rd := &syscalls.Request{NR: syscalls.SYS_read,
					Args: [6]uint64{rfd, 256}, Buf: buf}
				syscalls.Dispatch(&syscalls.Ctx{P: cp, OS: m.OS, Proc: proc}, rd)
				if rd.Ret <= 0 {
					fmt.Printf("[cpu] pipe closed after %d bytes\n", received)
					return
				}
				received += int(rd.Ret)
				fmt.Printf("[cpu] consumed %2d bytes at t=%v: %q\n",
					rd.Ret, cp.Now(), string(buf[:rd.Ret]))
			}
		})

		// GPU producer: eight work-groups each write a record into the
		// pipe, then the host closes the write end to signal EOF.
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "producer", WorkGroups: 8, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				w.ComputeTime(genesys.Time(w.WG.ID+1) * 50 * genesys.Microsecond)
				c.Write(w, int(wfd), []byte(fmt.Sprintf("result-%d;", w.WG.ID)))
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
		cl := &syscalls.Request{NR: syscalls.SYS_close, Args: [6]uint64{wfd}}
		syscalls.Dispatch(&syscalls.Ctx{P: p, OS: m.OS, Proc: proc}, cl)
	})

	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
}
