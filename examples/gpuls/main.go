// gpuls is "ls -l, from the GPU": a kernel that lists a directory with
// getdents64, stats every entry, and prints an ls-style listing to the
// terminal — all through GENESYS with the gclib POSIX wrappers, ending
// with the GPU querying its own resource usage via getrusage(RUSAGE_GPU)
// (the accelerator-aware adaptation §IV of the paper suggests).
package main

import (
	"fmt"
	"log"

	"genesys"
	"genesys/internal/gclib"
	"genesys/internal/gpu"
)

func main() {
	m := genesys.NewMachine(genesys.DefaultConfig())
	defer m.Shutdown()
	m.NewProcess("gpuls")

	// Populate a directory to list.
	files := map[string]int{"report.txt": 1337, "data.bin": 4096, "notes.md": 256}
	for name, size := range files {
		if err := m.WriteFile("/tmp/"+name, make([]byte, size)); err != nil {
			log.Fatal(err)
		}
	}

	c := gclib.C{G: m.Genesys}
	m.E.Spawn("host", func(p *genesys.Proc) {
		k := m.GPU.Launch(p, genesys.Kernel{
			Name: "gpuls", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				names, err := c.Getdents(w, "/tmp")
				if err != 0 {
					c.Printf(w, "gpuls: %v\n", err)
					return
				}
				c.Printf(w, "total %d entries in /tmp\n", len(names))
				for _, name := range names {
					size, isDir, err := c.Stat(w, "/tmp/"+name)
					kind := "-"
					if isDir {
						kind = "d"
					}
					if err != 0 {
						continue
					}
					c.Printf(w, "%s %8d  %s\n", kind, size, name)
				}
				u, err := c.GetrusageGPU(w)
				if err == 0 {
					c.Printf(w, "[gpu] kernels=%d wgs=%d interrupts=%d syscalls=%d\n",
						u.KernelsLaunched, u.WGsDispatched, u.Interrupts, u.Syscalls)
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.OS.Console.Contents())
}
