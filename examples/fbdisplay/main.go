// fbdisplay runs the paper's §VIII-E device-control case study: the GPU
// opens /dev/fb0, queries and sets the video mode over ioctl, mmaps the
// framebuffer and rasterizes an image into it. The resulting frame is
// rendered here as ASCII art (the paper's Figure 16 shows the real
// screen).
package main

import (
	"fmt"
	"log"

	"genesys"
	"genesys/internal/workloads"
)

func main() {
	m := genesys.NewMachine(genesys.DefaultConfig())
	defer m.Shutdown()

	cfg := workloads.DefaultBMPDisplayConfig()
	res, err := workloads.RunBMPDisplay(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("framebuffer: %dx%d@%dbpp -> %dx%d@%dbpp (via GPU ioctl)\n",
		res.InfoBefore.XRes, res.InfoBefore.YRes, res.InfoBefore.BPP,
		res.InfoAfter.XRes, res.InfoAfter.YRes, res.InfoAfter.BPP)
	fmt.Printf("pixels written from GPU through mmap: %d (validated: %v) in %v\n\n",
		res.PixelsWritten, res.Validated, res.Runtime)

	// Downsample the frame to 64x24 ASCII.
	pix := m.FB.Pixels()
	w, h := int(res.InfoAfter.XRes), int(res.InfoAfter.YRes)
	const cols, rows = 64, 24
	shades := []rune(" .:-=+*#%@")
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x, y := c*w/cols, r*h/rows
			off := (y*w + x) * 4
			lum := (int(pix[off]) + int(pix[off+1]) + int(pix[off+2])) / 3
			fmt.Print(string(shades[lum*len(shades)/256]))
		}
		fmt.Println()
	}
}
