// signalsearch runs the paper's §VIII-B signals case study: a map-reduce
// where GPU work-groups search data blocks and notify the CPU of each
// completed block via rt_sigqueueinfo (the work-group ID rides in
// si_value), so CPU sha512 checksumming overlaps the GPU search.
package main

import (
	"bytes"
	"fmt"
	"log"

	"genesys"
	"genesys/internal/workloads"
)

func main() {
	run := func(useSignals bool) workloads.SignalSearchResult {
		m := genesys.NewMachine(genesys.DefaultConfig())
		defer m.Shutdown()
		cfg := workloads.DefaultSignalSearchConfig()
		cfg.UseSignals = useSignals
		res, err := workloads.RunSignalSearch(m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(false)
	overlapped := run(true)

	cfg := workloads.DefaultSignalSearchConfig()
	for i := 0; i < cfg.Blocks; i++ {
		want := workloads.ReferenceSha512(cfg.BlockBytes, i)
		if !bytes.Equal(base.Digests[i], want) || !bytes.Equal(overlapped.Digests[i], want) {
			log.Fatalf("digest mismatch at block %d", i)
		}
	}

	fmt.Printf("baseline (GPU phase, then CPU sha512):  %v\n", base.Runtime)
	fmt.Printf("GENESYS  (signals overlap the phases):  %v  (%d signals)\n",
		overlapped.Runtime, overlapped.Signals)
	fmt.Printf("speedup: %.2fx (paper: ~1.14x)\n",
		float64(base.Runtime)/float64(overlapped.Runtime))
	fmt.Printf("all %d sha512 digests verified against reference\n", cfg.Blocks)
}
