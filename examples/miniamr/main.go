// miniamr runs the paper's §VIII-A memory-management case study: an AMR
// stencil over a dataset slightly larger than physical memory. The
// baseline (no madvise) dies to the GPU watchdog in a swap storm; with
// GPU-invoked getrusage + madvise(MADV_DONTNEED) the application
// completes, trading memory footprint against runtime via the RSS
// watermark (Figure 11).
package main

import (
	"fmt"
	"log"
	"strings"

	"genesys"
	"genesys/internal/workloads"
)

func main() {
	type variant struct {
		name      string
		watermark int64
	}
	for _, v := range []variant{
		{"baseline (no madvise)", 0},
		{"rss-3gb (scaled 192 MiB)", 192 << 20},
		{"rss-4gb (scaled 248 MiB)", 248 << 20},
	} {
		cfg := genesys.DefaultConfig()
		cfg.VM.PhysPages = workloads.MiniAMRPhysBytes / cfg.VM.PageSize
		m := genesys.NewMachine(cfg)
		wl := workloads.DefaultMiniAMRConfig()
		wl.WatermarkBytes = v.watermark
		res, err := workloads.RunMiniAMR(m, wl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", v.name)
		if !res.Completed {
			fmt.Printf("  DID NOT FINISH: GPU watchdog timeout at step %d (swap storm)\n\n",
				res.FailedStep)
			m.Shutdown()
			continue
		}
		fmt.Printf("  runtime %v, peak RSS %d MiB, %d madvise calls, %d minor faults\n",
			res.Runtime, res.PeakRSS>>20, res.Madvises, res.FinalUsage.MinorFaults)
		fmt.Printf("  RSS over time (each char = %v):\n  %s\n\n",
			res.RSSTraceBin, sparkline(res.RSSTrace, float64(workloads.MiniAMRPhysBytes)))
		m.Shutdown()
	}
}

// sparkline renders a memory trace with eight shading levels.
func sparkline(vals []float64, max float64) string {
	levels := []rune(" .:-=+*#")
	var b strings.Builder
	for i, v := range vals {
		if i >= 100 {
			b.WriteString("...")
			break
		}
		idx := int(v / max * float64(len(levels)))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		if idx < 0 {
			idx = 0
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
