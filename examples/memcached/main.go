// memcached runs the paper's §VIII-D network case study: a binary UDP
// memcached whose GETs are served either by CPU threads, by a
// batch-launched GPU (no system calls), or by persistent GPU work-groups
// invoking sendto/recvfrom directly through GENESYS.
package main

import (
	"fmt"
	"log"

	"genesys"
	"genesys/internal/workloads"
)

func main() {
	fmt.Println("memcached UDP GET, 1024 elements/bucket, 1 KiB values")
	fmt.Printf("%-16s %14s %14s %16s %10s\n",
		"variant", "mean lat", "p99 lat", "throughput", "served")
	for _, v := range []workloads.MemcachedVariant{
		workloads.MemcachedCPU,
		workloads.MemcachedGPUNoSyscall,
		workloads.MemcachedGENESYS,
	} {
		m := genesys.NewMachine(genesys.DefaultConfig())
		res, err := workloads.RunMemcached(m, workloads.DefaultMemcachedConfig(v))
		if err != nil {
			log.Fatal(err)
		}
		if res.Correct != res.Completed {
			log.Fatalf("%v: %d replies carried wrong values", v, res.Completed-res.Correct)
		}
		fmt.Printf("%-16s %14v %14v %13.1f K/s %10d\n",
			v, res.MeanLatency, res.P99Latency, res.ThroughputRPS/1000, res.Completed)
		m.Shutdown()
	}
}
