// Quickstart: launch a GPU kernel that invokes POSIX system calls
// directly — it prints to the terminal via write(2) on stdout, then has
// every work-group pwrite its block of a shared output file, exercising
// blocking and non-blocking invocation, relaxed ordering and the drain
// call from §IX of the paper.
package main

import (
	"fmt"
	"log"

	"genesys"
)

func main() {
	m := genesys.NewMachine(genesys.DefaultConfig())
	defer m.Shutdown()
	proc := m.NewProcess("quickstart")

	// Host-side setup: open the output file and hand the descriptor to
	// the GPU program (shared virtual memory makes the fd table common).
	out, err := m.VFS.Open("/tmp/out.bin", genesys.O_CREAT|genesys.O_RDWR)
	if err != nil {
		log.Fatal(err)
	}
	fd, err := proc.FDs.Install(out)
	if err != nil {
		log.Fatal(err)
	}

	const (
		workGroups = 8
		blockSize  = 4096
	)

	m.E.Spawn("host", func(p *genesys.Proc) {
		k := m.GPU.Launch(p, genesys.Kernel{
			Name:       "quickstart",
			WorkGroups: workGroups,
			WGSize:     256,
			Fn: func(w *genesys.Wavefront) {
				// Every work-group announces itself on the terminal
				// (blocking write at work-group granularity).
				line := fmt.Sprintf("work-group %d: writing block at offset %d\n",
					w.WG.ID, w.WG.ID*blockSize)
				m.Genesys.InvokeWG(w, genesys.Request{
					NR:   genesys.SYS_write,
					Args: [6]uint64{1, uint64(len(line))},
					Buf:  []byte(line),
				}, genesys.Options{Blocking: true, Wait: genesys.WaitPoll,
					Ordering: genesys.Relaxed, Kind: genesys.Consumer})

				// Then pwrite the group's block — non-blocking with weak
				// ordering, so the work-group can retire while the CPU
				// processes the call.
				block := make([]byte, blockSize)
				for i := range block {
					block[i] = byte('A' + w.WG.ID)
				}
				m.Genesys.InvokeWG(w, genesys.Request{
					NR:   genesys.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), blockSize, uint64(w.WG.ID * blockSize)},
					Buf:  block,
				}, genesys.Options{Blocking: false,
					Ordering: genesys.Relaxed, Kind: genesys.Consumer})
			},
		})
		k.Wait(p)
		// §IX: ensure all outstanding non-blocking GPU system calls have
		// completed before the process exits.
		m.Genesys.Drain(p)
		fmt.Printf("kernel ran for %v of virtual time\n", k.Runtime())
	})

	if err := m.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Print(m.OS.Console.Contents())
	data, err := m.ReadFile("/tmp/out.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output file: %d bytes; block 0 starts with %q, block 7 with %q\n",
		len(data), data[0], data[7*blockSize])
	fmt.Printf("GPU syscalls invoked: %d (slots: %d KiB syscall area)\n",
		m.Genesys.Invocations.Value(), m.Genesys.AreaBytes()/1024)
}
