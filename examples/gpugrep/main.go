// gpugrep runs the paper's §VIII-C grep case study: grep -F -l over a
// corpus, comparing the CPU and OpenMP baselines against GENESYS at
// work-group and work-item granularity (polling and halt-resume), and
// printing matching filenames to the simulated terminal from the GPU.
package main

import (
	"fmt"
	"log"

	"genesys"
	"genesys/internal/workloads"
)

func main() {
	variants := []workloads.GrepVariant{
		workloads.GrepCPU,
		workloads.GrepOpenMP,
		workloads.GrepGPUWorkGroup,
		workloads.GrepGPUWorkItemPoll,
		workloads.GrepGPUWorkItemHalt,
	}
	var cpuTime genesys.Time
	for _, v := range variants {
		m := genesys.NewMachine(genesys.DefaultConfig())
		res, err := workloads.RunGrep(m, workloads.DefaultGrepConfig(v))
		if err != nil {
			log.Fatal(err)
		}
		if !res.Correct() {
			log.Fatalf("%v: wrong answer: %v (want %v)", v, res.Found, res.Expected)
		}
		if v == workloads.GrepCPU {
			cpuTime = res.Runtime
		}
		fmt.Printf("%-24s %12v   %5.2fx vs CPU   (%d matching files)\n",
			v, res.Runtime, float64(cpuTime)/float64(res.Runtime), len(res.Found))
		if v == workloads.GrepGPUWorkItemHalt {
			fmt.Println("\nterminal output of the last run (printed from the GPU):")
			for i, line := range res.Found {
				if i == 6 {
					fmt.Printf("  ... and %d more\n", len(res.Found)-6)
					break
				}
				fmt.Printf("  %s\n", line)
			}
		}
		m.Shutdown()
	}
}
