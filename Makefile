GO ?= go

.PHONY: all build test check vet race bench baselines

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 45m ./...

# check is the full pre-merge gate: compile everything, lint with vet,
# run the test suite, then run it again under the race detector.
check: build vet
	$(GO) test ./...
	$(GO) test -race -timeout 45m ./...

# bench runs the engine microbenchmarks and the host wall-clock suite
# (writes BENCH_<case>.json + BENCH_host.json to the current directory).
# The suite drives one machine per core by default; use
# `genesys bench -parallel 1` for a sequential reference run and
# `-seeds 1,2,...` for a multi-seed sweep (seed-<S>/ subdirectories).
bench:
	$(GO) test ./internal/sim -bench . -benchmem -run '^$$'
	$(GO) run ./cmd/genesys bench

# baselines regenerates the committed sentry baselines. Sequential on
# purpose: per-case wall_ms in BENCH_host.json is only comparable to a
# fresh run at the same parallelism, and CI's sentry job runs -parallel 1.
baselines:
	$(GO) run ./cmd/genesys bench -parallel 1 -out baselines
