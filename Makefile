GO ?= go

.PHONY: all build test check vet race bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full pre-merge gate: compile everything, lint with vet,
# run the test suite, then run it again under the race detector.
check: build vet
	$(GO) test ./...
	$(GO) test -race ./...

# bench runs the engine microbenchmarks and the host wall-clock suite
# (writes BENCH_<case>.json + BENCH_host.json to the current directory).
bench:
	$(GO) test ./internal/sim -bench . -benchmem -run '^$$'
	$(GO) run ./cmd/genesys bench
