GO ?= go

.PHONY: all build test check vet race

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full pre-merge gate: compile everything, lint with vet,
# and run the test suite under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
