package netstack

import (
	"bytes"
	"strings"
	"testing"

	"genesys/internal/sim"
)

// ckptScenario stages every flavor of in-flight stream/poll state the
// checkpoint section must capture: a datagram receiver blocked on an
// empty queue, a listener with parked backlog connections, a stream
// sender blocked on a full receive window, a receiver blocked with an
// armed deadline, and a poller watching sockets with an armed timeout.
// Nothing resolves by the cut instant, so all of it is live state.
func ckptScenario(t *testing.T, seed int64) (*sim.Engine, *Stack) {
	t.Helper()
	e := sim.NewEngine(seed)
	st := New(e, DefaultConfig())

	// Blocked datagram receiver (rx waiter, forever).
	dg := st.NewSocket()
	if err := dg.Bind(5000); err != nil {
		t.Fatal(err)
	}
	e.Spawn("dgram-rx", func(p *sim.Proc) { _, _ = dg.RecvFrom(p) })

	// Accept backlog: three clients connect, nobody accepts.
	lst := st.NewStreamSocket()
	if err := lst.Bind(6000); err != nil {
		t.Fatal(err)
	}
	if err := lst.Listen(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.Spawn("backlogged", func(p *sim.Proc) {
			c := st.NewStreamSocket()
			if err := c.Connect(p, 6000); err != nil {
				t.Errorf("backlog connect: %v", err)
			}
		})
	}

	// Receive-window waiter: the server accepts but never reads; the
	// client pushes two windows' worth and blocks on txSpace.
	win := st.NewStreamSocket()
	if err := win.Bind(7000); err != nil {
		t.Fatal(err)
	}
	if err := win.Listen(1); err != nil {
		t.Fatal(err)
	}
	e.Spawn("win-server", func(p *sim.Proc) {
		if _, err := win.Accept(p); err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		p.Sleep(10 * sim.Second) // hold the connection, never read
	})
	e.Spawn("win-client", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 7000); err != nil {
			t.Errorf("win connect: %v", err)
			return
		}
		_, _ = c.Send(p, make([]byte, 2*st.Config().StreamWindow))
	})

	// Blocked receiver with an armed deadline on a connected stream.
	dl := st.NewStreamSocket()
	if err := dl.Bind(7001); err != nil {
		t.Fatal(err)
	}
	if err := dl.Listen(1); err != nil {
		t.Fatal(err)
	}
	e.Spawn("dl-server", func(p *sim.Proc) {
		conn, err := dl.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 64)
		_, _ = conn.RecvTimeout(p, buf, 5*sim.Second)
	})
	e.Spawn("dl-client", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 7001); err != nil {
			t.Errorf("dl connect: %v", err)
		}
		p.Sleep(10 * sim.Second) // keep the connection up past the cut
	})

	// Poll watchers with an armed timeout, multiplexing idle sockets.
	pollA := st.NewSocket()
	if err := pollA.Bind(5001); err != nil {
		t.Fatal(err)
	}
	pollB := st.NewSocket()
	if err := pollB.Bind(5002); err != nil {
		t.Fatal(err)
	}
	e.Spawn("poller", func(p *sim.Proc) {
		pg := st.NewPoller()
		defer pg.Close()
		if err := pg.Add(pollA); err != nil {
			t.Fatal(err)
		}
		if err := pg.Add(pollB); err != nil {
			t.Fatal(err)
		}
		_, _ = pg.Wait(p, 5*sim.Second)
	})

	return e, st
}

const ckptCut = 2 * sim.Millisecond

// TestCheckpointStreamPollStateRoundTrip is the snapshot round-trip
// property for in-flight netstack state: two machines built from the
// same recipe and cut at the same instant serialize identically, and
// the serialization actually contains the blocked receivers, backlog,
// window waiters and watchers the scenario staged.
func TestCheckpointStreamPollStateRoundTrip(t *testing.T) {
	e1, st1 := ckptScenario(t, 7)
	defer e1.Shutdown()
	if err := e1.RunUntil(ckptCut); err != nil {
		t.Fatal(err)
	}
	got := st1.CheckpointState()

	for _, want := range []string{
		"sock port=5000 type=dgram open=true handler=false rx_waiters=1",
		"listen backlog=3/4",
		"tx_waiters=1", // the window-blocked sender
		"watchers=1",   // each polled socket has the poller registered
		"rbuf=65536",   // one full receive window parked at the server
	} {
		if !strings.Contains(string(got), want) {
			t.Errorf("netstack section lacks %q:\n%s", want, got)
		}
	}

	// Round-trip: a recipe-rebuilt stack arrives at the identical bytes.
	e2, st2 := ckptScenario(t, 7)
	defer e2.Shutdown()
	if err := e2.RunUntil(ckptCut); err != nil {
		t.Fatal(err)
	}
	if again := st2.CheckpointState(); !bytes.Equal(got, again) {
		t.Errorf("rebuilt stack serializes differently:\n--- first\n%s\n--- rebuilt\n%s", got, again)
	}

	// A different seed shifts delivery jitter and must be visible (the
	// section is a fingerprint, not a constant).
	e3, st3 := ckptScenario(t, 8)
	defer e3.Shutdown()
	if err := e3.RunUntil(ckptCut); err != nil {
		t.Fatal(err)
	}
	if other := st3.CheckpointState(); bytes.Equal(got, other) {
		t.Log("seed change did not move the netstack section (jitter may be sub-cut); not fatal")
	}
}

// TestCheckpointCaptureIsPure asserts serializing the stack twice at
// the same instant yields identical bytes and does not perturb the
// blocked state it captures.
func TestCheckpointCaptureIsPure(t *testing.T) {
	e, st := ckptScenario(t, 7)
	defer e.Shutdown()
	if err := e.RunUntil(ckptCut); err != nil {
		t.Fatal(err)
	}
	a := st.CheckpointState()
	b := st.CheckpointState()
	if !bytes.Equal(a, b) {
		t.Error("double capture at the same instant differs")
	}
	// The capture must not have resolved or dropped any waiter: advance
	// and recapture; the armed deadlines fire at 5s, not before.
	if err := e.RunUntil(3 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	c := st.CheckpointState()
	if !strings.Contains(string(c), "rx_waiters=1") {
		t.Errorf("blocked receiver vanished after capture:\n%s", c)
	}
}
