package netstack

import (
	"bytes"
	"testing"

	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/sim"
)

func TestStreamConnectAcceptEcho(t *testing.T) {
	e, st := newStack(1)
	lst := st.NewStreamSocket()
	if err := lst.Bind(8080); err != nil {
		t.Fatal(err)
	}
	if err := lst.Listen(8); err != nil {
		t.Fatal(err)
	}
	var echoed []byte
	e.Spawn("server", func(p *sim.Proc) {
		conn, err := lst.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 64)
		n, err := conn.Recv(p, buf)
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		if _, err := conn.Send(p, buf[:n]); err != nil {
			t.Errorf("server send: %v", err)
		}
	})
	e.Spawn("client", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 8080); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if c.Port() < EphemeralMin {
			t.Errorf("client not auto-bound: %d", c.Port())
		}
		if _, err := c.Send(p, []byte("stream-ping")); err != nil {
			t.Errorf("client send: %v", err)
			return
		}
		buf := make([]byte, 64)
		n, err := c.Recv(p, buf)
		if err != nil {
			t.Errorf("client recv: %v", err)
			return
		}
		echoed = append([]byte(nil), buf[:n]...)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echoed, []byte("stream-ping")) {
		t.Fatalf("echoed = %q", echoed)
	}
	if st.StreamConns.Value() != 1 {
		t.Fatalf("StreamConns = %d", st.StreamConns.Value())
	}
}

func TestStreamConnectRefused(t *testing.T) {
	e, st := newStack(1)
	var noListener, backlogFull error
	lst := st.NewStreamSocket()
	lst.Bind(8081)
	lst.Listen(1)
	e.Spawn("clients", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		noListener = c.Connect(p, 9999) // nobody listening

		// Fill the single backlog slot, never accept, then overflow it.
		c1 := st.NewStreamSocket()
		if err := c1.Connect(p, 8081); err != nil {
			t.Errorf("first connect: %v", err)
		}
		c2 := st.NewStreamSocket()
		backlogFull = c2.Connect(p, 8081)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if noListener != errno.ECONNREFUSED {
		t.Fatalf("connect to dead port = %v, want ECONNREFUSED", noListener)
	}
	if backlogFull != errno.ECONNREFUSED {
		t.Fatalf("connect past backlog = %v, want ECONNREFUSED", backlogFull)
	}
	if st.StreamRefused.Value() != 2 {
		t.Fatalf("StreamRefused = %d, want 2", st.StreamRefused.Value())
	}
}

// Flow control: a sender pushing more than StreamWindow must block until
// the receiver drains, and every byte must arrive in order.
func TestStreamFlowControl(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.JitterMax = 0
	cfg.StreamWindow = 1 << 10 // 1 KiB window
	st := New(e, cfg)
	lst := st.NewStreamSocket()
	lst.Bind(8082)
	lst.Listen(1)
	const total = 10 << 10 // 10 KiB through a 1 KiB window
	var received []byte
	e.Spawn("server", func(p *sim.Proc) {
		conn, _ := lst.Accept(p)
		buf := make([]byte, 600)
		for len(received) < total {
			n, err := conn.Recv(p, buf)
			if err != nil || n == 0 {
				t.Errorf("server recv n=%d err=%v", n, err)
				return
			}
			received = append(received, buf[:n]...)
		}
	})
	e.Spawn("client", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 8082); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		data := make([]byte, total)
		for i := range data {
			data[i] = byte(i)
		}
		n, err := c.Send(p, data)
		if n != total || err != nil {
			t.Errorf("send n=%d err=%v", n, err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(received) != total {
		t.Fatalf("received %d bytes, want %d", len(received), total)
	}
	for i, b := range received {
		if b != byte(i) {
			t.Fatalf("byte %d = %d, out of order", i, b)
		}
	}
	if st.StreamBytes.Value() != total {
		t.Fatalf("StreamBytes = %d", st.StreamBytes.Value())
	}
}

// Orderly shutdown: peer close delivers buffered data, then EOF. Sending
// into a closed peer is EPIPE.
func TestStreamEOFAndEPIPE(t *testing.T) {
	e, st := newStack(1)
	lst := st.NewStreamSocket()
	lst.Bind(8083)
	lst.Listen(1)
	var n1, n2 int
	var eofErr, pipeErr error
	e.Spawn("server", func(p *sim.Proc) {
		conn, _ := lst.Accept(p)
		conn.Send(p, []byte("bye"))
		conn.Close()
	})
	e.Spawn("client", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 8083); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		buf := make([]byte, 16)
		n1, _ = c.Recv(p, buf)           // "bye"
		n2, eofErr = c.Recv(p, buf)      // EOF: (0, nil)
		_, pipeErr = c.Send(p, []byte("x")) // into closed peer
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n1 != 3 || n2 != 0 || eofErr != nil {
		t.Fatalf("recv sequence n1=%d n2=%d eof=%v, want 3, 0, nil", n1, n2, eofErr)
	}
	if pipeErr != errno.EPIPE {
		t.Fatalf("send after peer close = %v, want EPIPE", pipeErr)
	}
}

// Close must wake a peer blocked in Recv (EOF) and pending backlog
// connections see a reset when the listener dies.
func TestStreamCloseWakesPeerAndResetsBacklog(t *testing.T) {
	e, st := newStack(1)
	lst := st.NewStreamSocket()
	lst.Bind(8084)
	lst.Listen(4)
	var clientN int
	var clientErr error = errno.EIO // sentinel
	var orphanErr error
	e.Spawn("client", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 8084); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		buf := make([]byte, 8)
		clientN, clientErr = c.Recv(p, buf) // blocks until server side dies
	})
	e.Spawn("orphan", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 8084); err != nil {
			t.Errorf("orphan connect: %v", err)
			return
		}
		buf := make([]byte, 8)
		_, orphanErr = c.Recv(p, buf)
	})
	e.Spawn("server", func(p *sim.Proc) {
		conn, err := lst.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		p.Sleep(200 * sim.Microsecond)
		conn.Close() // wakes client with EOF
		lst.Close()  // resets the un-accepted orphan connection
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if clientN != 0 || clientErr != nil {
		t.Fatalf("client recv = (%d, %v), want orderly EOF (0, nil)", clientN, clientErr)
	}
	if orphanErr != errno.ECONNRESET {
		t.Fatalf("orphan recv = %v, want ECONNRESET", orphanErr)
	}
}

func TestStreamAcceptTimeout(t *testing.T) {
	e, st := newStack(1)
	lst := st.NewStreamSocket()
	lst.Bind(8085)
	lst.Listen(1)
	var err1 error
	var at sim.Time
	e.Spawn("server", func(p *sim.Proc) {
		_, err1 = lst.AcceptTimeout(p, 30*sim.Microsecond)
		at = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err1 != errno.EAGAIN || at != 30*sim.Microsecond {
		t.Fatalf("accept timed out with (%v at %v), want EAGAIN at 30µs", err1, at)
	}
}

// Datagram ops on stream sockets and stream ops on datagram sockets are
// type errors, not silent misbehavior.
func TestStreamTypeChecks(t *testing.T) {
	e, st := newStack(1)
	s := st.NewStreamSocket()
	d := st.NewSocket()
	if err := d.Listen(1); err != errno.EOPNOTSUPP {
		t.Fatalf("Listen on dgram = %v", err)
	}
	if err := s.SendTo(99, []byte("x")); err != errno.ENOTCONN {
		t.Fatalf("SendTo on unconnected stream = %v", err)
	}
	e.Spawn("checks", func(p *sim.Proc) {
		if _, err := s.RecvFromTimeout(p, sim.Microsecond); err != errno.EINVAL {
			t.Errorf("RecvFrom on stream = %v", err)
		}
		if err := d.Connect(p, 99); err != errno.EOPNOTSUPP {
			t.Errorf("Connect on dgram = %v", err)
		}
		buf := make([]byte, 4)
		if _, err := d.Recv(p, buf); err != errno.EINVAL {
			t.Errorf("Recv on dgram = %v", err)
		}
		if _, err := s.Recv(p, buf); err != errno.ENOTCONN {
			t.Errorf("Recv on unconnected stream = %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Loss faults on a stream are retransmission delay, not data loss.
func TestStreamLossBecomesDelay(t *testing.T) {
	e := sim.NewEngine(7)
	cfg := DefaultConfig()
	cfg.JitterMax = 0
	st := New(e, cfg)
	inj := fault.NewInjector(e, 7, fault.Plan{Name: "drop-all",
		Rules: []fault.Rule{{Point: fault.NetDrop, Rate: 1.0}}})
	st.SetInjector(inj)
	lst := st.NewStreamSocket()
	lst.Bind(8086)
	lst.Listen(1)
	var got []byte
	var gotAt sim.Time
	e.Spawn("server", func(p *sim.Proc) {
		conn, _ := lst.Accept(p)
		buf := make([]byte, 16)
		n, err := conn.Recv(p, buf)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = append([]byte(nil), buf[:n]...)
		gotAt = e.Now()
	})
	e.Spawn("client", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 8086); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		sentAt := e.Now()
		if _, err := c.Send(p, []byte("survives")); err != nil {
			t.Errorf("send: %v", err)
		}
		_ = sentAt
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives" {
		t.Fatalf("data lost on stream under 100%% drop: %q", got)
	}
	// Delivery took 3 one-way delays (original + 2 retransmit penalty)
	// after the 2-delay handshake.
	want := 5 * st.Config().DeliveryLatency
	if gotAt != want {
		t.Fatalf("delivered at %v, want %v (retransmit delay)", gotAt, want)
	}
}
