package netstack

import (
	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/sim"
)

// Stream sockets: a TCP-like connection-oriented byte stream layered on
// the same simulated wire as datagrams. The model keeps TCP's interface
// semantics — listen/accept with a bounded backlog, connect with refusal,
// flow control via a fixed receive window, EOF and reset on teardown —
// while abstracting the protocol machinery: the three-way handshake is a
// single round trip, and loss faults surface as retransmission delay (one
// extra RTT) rather than data loss, because a reliable transport hides
// drops behind latency.

// Listen marks a bound stream socket as accepting connections with the
// given backlog (clamped to at least 1). Pending connections beyond the
// backlog are refused with ECONNREFUSED at the connecting end.
func (sk *Socket) Listen(backlog int) error {
	if !sk.open {
		return errno.EBADF
	}
	if sk.typ != Stream {
		return errno.EOPNOTSUPP
	}
	if sk.port == 0 {
		return errno.EINVAL
	}
	if sk.peer != nil || sk.connected {
		return errno.EISCONN
	}
	if backlog < 1 {
		backlog = 1
	}
	sk.listening = true
	sk.backlogMax = backlog
	return nil
}

// Connect establishes a connection to a listening stream socket on
// dstPort. The caller blocks for the handshake round trip; refusal (no
// listener, backlog full, or an injected reset) costs the same round trip
// and returns ECONNREFUSED.
func (sk *Socket) Connect(p *sim.Proc, dstPort int) error {
	if !sk.open {
		return errno.EBADF
	}
	if sk.typ != Stream {
		return errno.EOPNOTSUPP
	}
	if sk.connected || sk.listening {
		return errno.EISCONN
	}
	if err := sk.ensureBound(); err != nil {
		return err
	}
	st := sk.stack
	if st.inject.Should(fault.NetReset) {
		st.inject.NoteSurfaced()
		st.StreamRefused.Inc()
		return errno.ECONNREFUSED
	}
	// SYN after one-way delay; SYN-ACK (or RST) after another.
	st.e.CallAfter(st.delay(), func() {
		lst, ok := st.ports[dstPort]
		if !ok || !lst.open || !lst.listening || len(lst.backlog) >= lst.backlogMax {
			st.StreamRefused.Inc()
			st.e.CallAfter(st.delay(), func() {
				if !sk.open {
					return
				}
				sk.connErr = errno.ECONNREFUSED
				sk.connected = true // handshake resolved (with error)
				sk.wakeAll()
			})
			return
		}
		// Create the server-side endpoint now so the accept queue length
		// (SYN backlog) is charged at SYN time, as a real stack would.
		conn := st.newSocket(Stream)
		conn.port = lst.port // reported port; lst owns the table entry
		conn.connected = true
		lst.backlog = append(lst.backlog, conn)
		st.e.CallAfter(st.delay(), func() {
			if !sk.open {
				// Connector closed mid-handshake: orphan the server side.
				conn.reset = true
				conn.wakeAll()
				return
			}
			sk.peer = conn
			conn.peer = sk
			sk.remotePort = dstPort
			conn.remotePort = sk.port
			sk.connected = true
			st.StreamConns.Inc()
			sk.wakeAll()
			lst.wakeReady() // connection is now acceptable
		})
	})
	for !sk.connected {
		if !sk.open {
			return errno.EBADF
		}
		sk.rx.Wait(p, "stream connect")
	}
	if sk.connErr != 0 {
		err := sk.connErr
		sk.connected = false
		sk.connErr = 0
		return err
	}
	return nil
}

// Accept blocks until a pending connection is available and returns the
// connected server-side socket. The returned socket reports the
// listener's port but does not own it: closing a connection never
// unbinds its listener.
func (sk *Socket) Accept(p *sim.Proc) (*Socket, error) {
	return sk.AcceptTimeout(p, 0)
}

// AcceptTimeout is Accept bounded by d (d <= 0 blocks indefinitely);
// EAGAIN on deadline, EBADF if the listener closes mid-wait.
func (sk *Socket) AcceptTimeout(p *sim.Proc, d sim.Time) (*Socket, error) {
	if sk.typ != Stream || !sk.listening {
		if !sk.open {
			return nil, errno.EBADF
		}
		return nil, errno.EINVAL
	}
	var deadline sim.Time
	if d > 0 {
		deadline = sk.stack.e.Now() + d
	}
	for {
		if !sk.open {
			return nil, errno.EBADF
		}
		if len(sk.backlog) > 0 {
			conn := sk.backlog[0]
			sk.backlog = sk.backlog[1:]
			return conn, nil
		}
		if deadline == 0 {
			sk.rx.Wait(p, "stream accept")
			continue
		}
		if sk.rx.WaitDeadline(p, "stream accept (timed)", deadline) {
			return nil, errno.EAGAIN
		}
	}
}

// buffered returns the bytes queued in the stream receive buffer.
func (sk *Socket) buffered() int { return len(sk.rbuf) - sk.rbufHead }

// window returns the free space in the peer's receive window as seen by
// this sender: the configured window minus buffered and in-flight bytes.
func (sk *Socket) window() int {
	if sk.peer == nil {
		return 0
	}
	return sk.stack.cfg.StreamWindow - sk.peer.buffered() - sk.peer.inFlight
}

// sendStream queues up to window-many bytes of data for delivery to the
// peer and returns how many were taken. Zero window returns (0, EAGAIN);
// callers that want to block use Send. Loss faults become one extra
// round trip of delivery latency (retransmission), not data loss.
func (sk *Socket) sendStream(data []byte) (int, error) {
	if !sk.open {
		return 0, errno.EBADF
	}
	peer := sk.peer
	if peer == nil || !sk.connected {
		return 0, errno.ENOTCONN
	}
	if sk.peerClosed || sk.reset || !peer.open {
		return 0, errno.EPIPE
	}
	if len(data) == 0 {
		return 0, nil
	}
	st := sk.stack
	if st.inject.Should(fault.NetEAGAIN) {
		return 0, errno.EAGAIN
	}
	if st.inject.Should(fault.NetReset) {
		st.inject.NoteSurfaced()
		sk.reset = true
		return 0, errno.ECONNRESET
	}
	n := sk.window()
	if n <= 0 {
		return 0, errno.EAGAIN
	}
	if n > len(data) {
		n = len(data)
	}
	payload := st.getBuf(n)
	copy(payload, data[:n])
	peer.inFlight += n
	d := st.delay()
	if st.inject.Should(fault.NetDrop) {
		d += 2 * st.delay() // retransmit: reliable stream turns loss into delay
	}
	var h *streamHop
	if k := len(st.hopFree); k > 0 {
		h = st.hopFree[k-1]
		st.hopFree[k-1] = nil
		st.hopFree = st.hopFree[:k-1]
	} else {
		h = &streamHop{st: st}
		h.fn = h.land
	}
	h.peer, h.data, h.n = peer, payload, n
	st.e.CallAfter(d, h.fn)
	return n, nil
}

// streamHop is one stream segment on the wire: a pooled carrier (see
// inflight) whose pre-built callback lands the bytes in the peer's
// receive buffer.
type streamHop struct {
	st   *Stack
	peer *Socket
	data []byte
	n    int
	fn   func()
}

// land delivers one stream segment to the receive buffer.
func (h *streamHop) land() {
	st, peer, data, n := h.st, h.peer, h.data, h.n
	h.peer, h.data = nil, nil
	st.hopFree = append(st.hopFree, h)
	peer.inFlight -= n
	if !peer.open {
		st.PutBuf(data)
		return // landed after receiver closed; bytes vanish with it
	}
	if peer.rbufHead > 0 && len(peer.rbuf)+n > cap(peer.rbuf) {
		// Reclaim the consumed prefix instead of growing the buffer.
		peer.rbuf = peer.rbuf[:copy(peer.rbuf, peer.rbuf[peer.rbufHead:])]
		peer.rbufHead = 0
	}
	peer.rbuf = append(peer.rbuf, data[:n]...)
	st.PutBuf(data)
	st.StreamBytes.Add(int64(n))
	if peer.finPending && peer.inFlight == 0 {
		peer.finPending = false
		peer.peerClosed = true // FIN was held back for this data
		// EOF is visible to senders too (their next send is EPIPE), so
		// wake window-waiters as well as receivers.
		peer.wakeAll()
		return
	}
	peer.wakeReady()
}

// Send writes all of data to the connection, blocking while the peer's
// receive window is full. It returns the bytes written and the first
// error; a reset or peer close mid-stream surfaces as EPIPE/ECONNRESET
// with a short count.
func (sk *Socket) Send(p *sim.Proc, data []byte) (int, error) {
	sent := 0
	for sent < len(data) {
		n, err := sk.sendStream(data[sent:])
		sent += n
		if err == errno.EAGAIN && sk.window() <= 0 {
			// Window full: wait for the receiver to drain. The receiver
			// signals our txSpace after consuming from rbuf.
			sk.txSpace.Wait(p, "stream send (window)")
			continue
		}
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}

// Recv reads up to len(buf) bytes from the connection, blocking until at
// least one byte, EOF (0, nil on a drained buffer after peer close), or
// an error is available.
func (sk *Socket) Recv(p *sim.Proc, buf []byte) (int, error) {
	return sk.RecvTimeout(p, buf, 0)
}

// RecvTimeout is Recv bounded by d (d <= 0 blocks indefinitely); EAGAIN
// on deadline. A concurrent Close wakes the waiter with EBADF; a peer
// reset surfaces as ECONNRESET once the buffer drains.
func (sk *Socket) RecvTimeout(p *sim.Proc, buf []byte, d sim.Time) (int, error) {
	if sk.typ != Stream {
		return 0, errno.EINVAL
	}
	var deadline sim.Time
	if d > 0 {
		deadline = sk.stack.e.Now() + d
	}
	for {
		if !sk.open {
			return 0, errno.EBADF
		}
		if sk.buffered() > 0 {
			n := copy(buf, sk.rbuf[sk.rbufHead:])
			sk.rbufHead += n
			if sk.rbufHead == len(sk.rbuf) {
				sk.rbuf = sk.rbuf[:0]
				sk.rbufHead = 0
			}
			if peer := sk.peer; peer != nil && peer.open {
				peer.txSpace.Signal() // window opened; wake a blocked sender
				peer.notifyWatchers()
			}
			return n, nil
		}
		if sk.reset {
			return 0, errno.ECONNRESET
		}
		if sk.peerClosed {
			return 0, nil // orderly EOF
		}
		if !sk.connected && !sk.listening {
			return 0, errno.ENOTCONN
		}
		if deadline == 0 {
			sk.rx.Wait(p, "stream recv")
			continue
		}
		if sk.rx.WaitDeadline(p, "stream recv (timed)", deadline) {
			return 0, errno.EAGAIN
		}
	}
}

// closeStream tears down stream state on Close: pending backlog
// connections are reset, and an established peer sees EOF (orderly
// shutdown) once its buffer drains. Called with sk.open already false.
func (sk *Socket) closeStream() {
	if sk.listening {
		for _, conn := range sk.backlog {
			// Un-accepted connections die with the listener; the remote
			// end sees the RST too.
			conn.reset = true
			if rp := conn.peer; rp != nil {
				rp.reset = true
				rp.peer = nil
				if rp.open {
					rp.wakeAll()
				}
			}
			conn.peer = nil
			conn.wakeAll()
		}
		sk.backlog = nil
		sk.listening = false
	}
	if peer := sk.peer; peer != nil {
		sk.peer = nil
		// peer.peer keeps pointing at us: the remote's sends observe
		// !open and fail with EPIPE. The FIN travels the wire like data
		// and is held back until in-flight bytes land, so a receiver
		// never sees EOF ahead of data sent before the close.
		st := sk.stack
		st.e.CallAfter(st.delay(), func() {
			if !peer.open || peer.peerClosed || peer.reset {
				return
			}
			if peer.inFlight > 0 {
				peer.finPending = true
				return
			}
			peer.peerClosed = true
			peer.wakeAll()
		})
	}
}
