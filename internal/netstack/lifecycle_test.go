package netstack

// Socket-lifecycle regression tests for the three bugs that were
// invisible at two sockets and fatal at fleet scale: Bind(0) spinning
// forever on ephemeral-port exhaustion, Close stranding blocked
// receivers, and the 5µs RecvFromTimeout poll loop flooding the engine
// with events. Plus churn coverage: rebind reuse, close-vs-timeout
// races, and delivery to a port rebound between send and delivery.

import (
	"testing"

	"genesys/internal/errno"
	"genesys/internal/sim"
)

// Regression (bind exhaustion): with every ephemeral port bound, Bind(0)
// must fail with EADDRINUSE after one scan of the range — the pre-fix
// code looped forever. Also checks that freeing any single port makes
// Bind(0) succeed again.
func TestBindEphemeralExhaustion(t *testing.T) {
	_, st := newStack(1)
	n := EphemeralMax - EphemeralMin + 1
	socks := make([]*Socket, 0, n)
	for i := 0; i < n; i++ {
		sk := st.NewSocket()
		if err := sk.Bind(0); err != nil {
			t.Fatalf("bind %d/%d: %v", i, n, err)
		}
		socks = append(socks, sk)
	}
	sk := st.NewSocket()
	if err := sk.Bind(0); err != errno.EADDRINUSE {
		t.Fatalf("bind with exhausted range = %v, want EADDRINUSE", err)
	}
	// Free one port in the middle; the next Bind(0) must find it.
	freed := socks[n/2].Port()
	socks[n/2].Close()
	if err := sk.Bind(0); err != nil {
		t.Fatalf("bind after freeing a port: %v", err)
	}
	if sk.Port() != freed {
		t.Fatalf("rebound port = %d, want freed port %d", sk.Port(), freed)
	}
}

// Regression (close strands receivers): a receiver parked in RecvFrom
// must wake with EBADF when another activity closes the socket — the
// pre-fix code left it blocked forever (engine deadlock).
func TestCloseWakesBlockedReceiver(t *testing.T) {
	e, st := newStack(1)
	sk := st.NewSocket()
	sk.Bind(700)
	var gotErr error
	done := false
	e.Spawn("receiver", func(p *sim.Proc) {
		_, gotErr = sk.RecvFrom(p)
		done = true
	})
	e.Spawn("closer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		sk.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done || gotErr != errno.EBADF {
		t.Fatalf("receiver done=%v err=%v, want EBADF", done, gotErr)
	}
}

// Regression (close vs timeout): a timed receiver must observe a
// concurrent Close immediately — at close time, not at its deadline.
func TestCloseBeatsTimeoutDeadline(t *testing.T) {
	e, st := newStack(1)
	sk := st.NewSocket()
	sk.Bind(701)
	var gotErr error
	var wokeAt sim.Time
	e.Spawn("receiver", func(p *sim.Proc) {
		_, gotErr = sk.RecvFromTimeout(p, sim.Second)
		wokeAt = e.Now()
	})
	e.Spawn("closer", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond)
		sk.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr != errno.EBADF {
		t.Fatalf("err = %v, want EBADF", gotErr)
	}
	if wokeAt != 50*sim.Microsecond {
		t.Fatalf("woke at %v, want 50µs (close time, not 1s deadline)", wokeAt)
	}
}

// The race in the other direction: the deadline fires just as a datagram
// is still in flight — receiver gets EAGAIN, and the late datagram stays
// queued for the next read.
func TestTimeoutVsLateDelivery(t *testing.T) {
	e, st := newStack(1)
	sk := st.NewSocket()
	sk.Bind(702)
	src := st.NewSocket()
	var first, second error
	e.Spawn("receiver", func(p *sim.Proc) {
		_, first = sk.RecvFromTimeout(p, 10*sim.Microsecond)
		p.Sleep(30 * sim.Microsecond)
		_, second = sk.RecvFromTimeout(p, 0)
	})
	e.Spawn("sender", func(p *sim.Proc) {
		src.SendTo(702, []byte("late")) // arrives at 20µs, after the 10µs deadline
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if first != errno.EAGAIN {
		t.Fatalf("first recv = %v, want EAGAIN", first)
	}
	if second != nil {
		t.Fatalf("second recv = %v, want late datagram", second)
	}
}

// Regression (event-driven timed wait): a long timed wait must cost O(1)
// engine events, not deadline/5µs. The pre-fix poll loop burned ~200
// events per millisecond of waiting.
func TestTimedRecvIsEventDriven(t *testing.T) {
	e, st := newStack(1)
	sk := st.NewSocket()
	sk.Bind(703)
	e.Spawn("receiver", func(p *sim.Proc) {
		if _, err := sk.RecvFromTimeout(p, 10*sim.Millisecond); err != errno.EAGAIN {
			t.Errorf("recv = %v, want EAGAIN", err)
		}
	})
	before := e.Stats().Scheduled
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	events := e.Stats().Scheduled - before
	// One deadline timer plus a handful of scheduling events; the poll
	// loop would have scheduled ~2000.
	if events > 10 {
		t.Fatalf("10ms timed wait scheduled %d events, want O(1)", events)
	}
}

// Churn: close and rebind reuses the port, EADDRINUSE while held, and a
// datagram sent to the old binding is delivered to the new one when it
// lands after the rebind — the port table is consulted at delivery time.
func TestChurnRebindAndLateDelivery(t *testing.T) {
	e, st := newStack(1)
	src := st.NewSocket()
	a := st.NewSocket()
	if err := a.Bind(800); err != nil {
		t.Fatal(err)
	}
	b := st.NewSocket()
	if err := b.Bind(800); err != errno.EADDRINUSE {
		t.Fatalf("conflict bind = %v, want EADDRINUSE", err)
	}
	var got Datagram
	var recvErr error
	e.Spawn("churn", func(p *sim.Proc) {
		// Datagram launched at the old socket; it lands at 20µs.
		src.SendTo(800, []byte("handoff"))
		p.Sleep(5 * sim.Microsecond)
		a.Close() // old binding gone at 5µs
		if err := b.Bind(800); err != nil {
			t.Errorf("rebind after close: %v", err)
		}
		got, recvErr = b.RecvFrom(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvErr != nil || string(got.Data) != "handoff" {
		t.Fatalf("rebound socket got (%q, %v), want the in-flight datagram", got.Data, recvErr)
	}
}

// Closing an accepted stream connection must not unbind its listener,
// even though the connection reports the listener's port.
func TestConnCloseKeepsListenerBound(t *testing.T) {
	e, st := newStack(1)
	lst := st.NewStreamSocket()
	if err := lst.Bind(900); err != nil {
		t.Fatal(err)
	}
	if err := lst.Listen(4); err != nil {
		t.Fatal(err)
	}
	e.Spawn("server", func(p *sim.Proc) {
		conn, err := lst.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		if conn.Port() != 900 {
			t.Errorf("conn port = %d, want listener's 900", conn.Port())
		}
		conn.Close()
		// Listener must still own port 900.
		probe := st.NewStreamSocket()
		if err := probe.Bind(900); err != errno.EADDRINUSE {
			t.Errorf("bind 900 after conn close = %v, want EADDRINUSE (listener still bound)", err)
		}
	})
	e.Spawn("client", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 900); err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Callback-mode sockets receive datagrams from the delivery event with
// no blocked process and no queueing.
func TestRecvHandlerCallbackMode(t *testing.T) {
	e, st := newStack(1)
	sk := st.NewSocket()
	sk.Bind(950)
	var got []sim.Time
	sk.SetRecvHandler(func(dg Datagram) { got = append(got, e.Now()) })
	src := st.NewSocket()
	e.Spawn("sender", func(p *sim.Proc) {
		src.SendTo(950, []byte("a"))
		p.Sleep(7 * sim.Microsecond)
		src.SendTo(950, []byte("b"))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || sk.QueueLen() != 0 {
		t.Fatalf("handler calls = %d (queue %d), want 2 deliveries, empty queue", len(got), sk.QueueLen())
	}
	if got[0] != 20*sim.Microsecond || got[1] != 27*sim.Microsecond {
		t.Fatalf("delivery times = %v", got)
	}
}
