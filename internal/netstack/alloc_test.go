package netstack

import (
	"testing"

	"genesys/internal/sim"
)

// These tests pin the per-packet delivery paths at zero steady-state
// allocations: payload buffers come from the stack's size-classed pool,
// in-flight carriers from their freelists, and receive queues reuse
// their backing arrays. Each test warms the pools first so first-touch
// slice growth is excluded from the measurement.

// TestDatagramDeliveryAllocFree: SendTo → wire delay → receive queue →
// TryRecv, with the consumer returning payloads via PutBuf (the syscall
// layer's recvfrom pattern).
func TestDatagramDeliveryAllocFree(t *testing.T) {
	e, st := newStack(1)
	server := st.NewSocket()
	if err := server.Bind(7000); err != nil {
		t.Fatal(err)
	}
	client := st.NewSocket()
	payload := make([]byte, 64)
	for i := 0; i < 32; i++ {
		if err := client.SendTo(7000, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for {
		dg, ok := server.TryRecv()
		if !ok {
			break
		}
		st.PutBuf(dg.Data)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := client.SendTo(7000, payload); err != nil {
			t.Error(err)
		}
		if err := e.Run(); err != nil {
			t.Error(err)
		}
		if dg, ok := server.TryRecv(); ok {
			st.PutBuf(dg.Data)
		}
	})
	if avg != 0 {
		t.Errorf("queued datagram delivery allocates %.2f/op, want 0", avg)
	}
}

// TestDatagramHandlerAllocFree: handler-mode delivery recycles the
// payload itself when the handler returns — the fleet client reply path.
func TestDatagramHandlerAllocFree(t *testing.T) {
	e, st := newStack(1)
	server := st.NewSocket()
	if err := server.Bind(7001); err != nil {
		t.Fatal(err)
	}
	var got int
	server.SetRecvHandler(func(dg Datagram) { got += len(dg.Data) })
	client := st.NewSocket()
	payload := make([]byte, 48)
	for i := 0; i < 32; i++ {
		if err := client.SendTo(7001, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := client.SendTo(7001, payload); err != nil {
			t.Error(err)
		}
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
	if avg != 0 {
		t.Errorf("handler datagram delivery allocates %.2f/op, want 0", avg)
	}
	if got == 0 {
		t.Fatal("handler never ran")
	}
}

// TestStreamHopAllocFree: a stream send → in-flight hop → peer receive
// buffer → Recv round trip, alloc-free once the connection is warm.
func TestStreamHopAllocFree(t *testing.T) {
	e, st := newStack(1)
	lis := st.NewStreamSocket()
	if err := lis.Bind(8000); err != nil {
		t.Fatal(err)
	}
	if err := lis.Listen(4); err != nil {
		t.Fatal(err)
	}
	var srv *Socket
	e.Spawn("accept", func(p *sim.Proc) {
		s, err := lis.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		srv = s
	})
	cli := st.NewStreamSocket()
	e.Spawn("connect", func(p *sim.Proc) {
		if err := cli.Connect(p, 8000); err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("no server socket")
	}
	msg := make([]byte, 32)
	rbuf := make([]byte, 64)
	var avg float64
	done := false
	e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			if _, err := cli.Send(p, msg); err != nil {
				t.Errorf("warm send: %v", err)
				return
			}
			if _, err := srv.Recv(p, rbuf); err != nil {
				t.Errorf("warm recv: %v", err)
				return
			}
		}
		avg = testing.AllocsPerRun(100, func() {
			if _, err := cli.Send(p, msg); err != nil {
				t.Error(err)
			}
			if _, err := srv.Recv(p, rbuf); err != nil {
				t.Error(err)
			}
		})
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish")
	}
	if avg != 0 {
		t.Errorf("stream send/recv hop allocates %.2f/op, want 0", avg)
	}
}
