package netstack

import (
	"testing"

	"genesys/internal/errno"
	"genesys/internal/sim"
)

// One poller multiplexing many datagram sockets: Wait wakes when any of
// them becomes readable and reports exactly the ready ones, in
// registration order.
func TestPollerMultiplexesDatagramSockets(t *testing.T) {
	e, st := newStack(1)
	const n = 8
	socks := make([]*Socket, n)
	pg := st.NewPoller()
	for i := range socks {
		socks[i] = st.NewSocket()
		if err := socks[i].Bind(2000 + i); err != nil {
			t.Fatal(err)
		}
		if err := pg.Add(socks[i]); err != nil {
			t.Fatal(err)
		}
	}
	src := st.NewSocket()
	var ready []*Socket
	var waitErr error
	e.Spawn("poller", func(p *sim.Proc) {
		ready, waitErr = pg.Wait(p, 0)
	})
	e.Spawn("sender", func(p *sim.Proc) {
		src.SendTo(2003, []byte("x"))
		src.SendTo(2006, []byte("y"))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waitErr != nil {
		t.Fatal(waitErr)
	}
	// Both datagrams land at the same delivery latency; whichever wakes
	// the poller first, the level-triggered scan sees both in
	// registration order.
	if len(ready) != 2 || ready[0] != socks[3] || ready[1] != socks[6] {
		t.Fatalf("ready = %d sockets, want [2003 2006]", len(ready))
	}
}

func TestPollerTimeoutAndEmptySet(t *testing.T) {
	e, st := newStack(1)
	pg := st.NewPoller()
	sk := st.NewSocket()
	sk.Bind(2100)
	pg.Add(sk)
	var timedErr, emptyErr error
	var at sim.Time
	e.Spawn("poller", func(p *sim.Proc) {
		_, timedErr = pg.Wait(p, 40*sim.Microsecond)
		at = e.Now()
		pg.Remove(sk)
		_, emptyErr = pg.Wait(p, sim.Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if timedErr != errno.EAGAIN || at != 40*sim.Microsecond {
		t.Fatalf("timed wait = %v at %v, want EAGAIN at 40µs", timedErr, at)
	}
	if emptyErr != errno.EINVAL {
		t.Fatalf("empty-set wait = %v, want EINVAL", emptyErr)
	}
}

// Level-triggered: an unconsumed socket stays ready on the next Wait.
func TestPollerLevelTriggered(t *testing.T) {
	e, st := newStack(1)
	pg := st.NewPoller()
	sk := st.NewSocket()
	sk.Bind(2200)
	pg.Add(sk)
	src := st.NewSocket()
	var again []*Socket
	e.Spawn("poller", func(p *sim.Proc) {
		first, err := pg.Wait(p, 0)
		if err != nil || len(first) != 1 {
			t.Errorf("first wait = %v, %v", first, err)
			return
		}
		// Don't consume; poll again with a timeout — still ready, at once.
		again, _ = pg.Wait(p, sim.Second)
		if e.Now() != st.Config().DeliveryLatency {
			t.Errorf("second wait blocked until %v", e.Now())
		}
		if _, ok := sk.TryRecv(); !ok {
			t.Error("datagram missing")
		}
	})
	e.Spawn("sender", func(p *sim.Proc) { src.SendTo(2200, []byte("x")) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 {
		t.Fatalf("unconsumed socket not ready on re-poll")
	}
}

// A poller over a listener and stream connections: pending accepts,
// stream data, and EOF are all readiness events.
func TestPollerStreamsAndListener(t *testing.T) {
	e, st := newStack(1)
	lst := st.NewStreamSocket()
	lst.Bind(2300)
	lst.Listen(4)
	pg := st.NewPoller()
	pg.Add(lst)
	e.Spawn("server", func(p *sim.Proc) {
		// Wait for the pending connection via poll, not Accept.
		ready, err := pg.Wait(p, 0)
		if err != nil || len(ready) != 1 || ready[0] != lst {
			t.Errorf("poll for accept = %v, %v", ready, err)
			return
		}
		conn, err := lst.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		pg.Add(conn)
		// Next readiness: data on the connection (listener has nothing).
		ready, err = pg.Wait(p, 0)
		if err != nil || len(ready) != 1 || ready[0] != conn {
			t.Errorf("poll for data = %v, %v", ready, err)
			return
		}
		buf := make([]byte, 16)
		n, _ := conn.Recv(p, buf)
		if string(buf[:n]) != "req" {
			t.Errorf("data = %q", buf[:n])
		}
		// Next readiness: EOF after the client closes.
		ready, err = pg.Wait(p, 0)
		if err != nil || len(ready) != 1 || ready[0] != conn {
			t.Errorf("poll for EOF = %v, %v", ready, err)
			return
		}
		if n, err := conn.Recv(p, buf); n != 0 || err != nil {
			t.Errorf("EOF read = (%d, %v)", n, err)
		}
	})
	e.Spawn("client", func(p *sim.Proc) {
		c := st.NewStreamSocket()
		if err := c.Connect(p, 2300); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if _, err := c.Send(p, []byte("req")); err != nil {
			t.Errorf("send: %v", err)
		}
		p.Sleep(100 * sim.Microsecond)
		c.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Closing a watched socket wakes the poller (closed sockets report
// readable so waiters can observe EBADF); closing the poller itself
// wakes blocked waiters with EBADF.
func TestPollerCloseSemantics(t *testing.T) {
	e, st := newStack(1)
	pg := st.NewPoller()
	sk := st.NewSocket()
	sk.Bind(2400)
	pg.Add(sk)
	e.Spawn("poller", func(p *sim.Proc) {
		ready, err := pg.Wait(p, 0)
		if err != nil || len(ready) != 1 || !ready[0].Readable() || ready[0].Open() {
			t.Errorf("wait after socket close = %v, %v", ready, err)
		}
		pg.Remove(sk)
		sk2 := st.NewSocket()
		sk2.Bind(2401)
		pg.Add(sk2)
		if _, err := pg.Wait(p, 0); err != errno.EBADF {
			t.Errorf("wait after poller close = %v, want EBADF", err)
		}
	})
	e.Spawn("closer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		sk.Close()
		p.Sleep(10 * sim.Microsecond)
		pg.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if pg.Len() != 0 {
		t.Fatalf("closed poller holds %d sockets", pg.Len())
	}
}
