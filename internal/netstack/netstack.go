// Package netstack models a minimal IP stack: UDP-like datagram sockets
// with bind/sendto/recvfrom semantics, bounded receive queues (overflowing
// datagrams are dropped, as UDP does), TCP-like stream sockets with
// connect/listen/accept/backlog semantics (stream.go), poll-style
// readiness multiplexing (poll.go), and configurable delivery latency.
// It is the substrate for the paper's memcached case study (§VIII-D),
// which GENESYS serves with plain POSIX sendto/recvfrom — no RDMA — and
// for the million-client service-fleet scenario layered on top of it.
package netstack

import (
	"math/bits"

	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/obs"
	"genesys/internal/sim"
)

// Ephemeral port range for Bind(0), matching Linux's default
// net.ipv4.ip_local_port_range.
const (
	EphemeralMin = 32768
	EphemeralMax = 60999
)

// Config holds stack parameters.
type Config struct {
	DeliveryLatency sim.Time // one-way datagram latency
	JitterMax       sim.Time // uniform extra latency [0, JitterMax)
	RecvQueueCap    int      // per-socket receive queue capacity
	MaxDatagram     int      // maximum payload size
	StreamWindow    int      // per-connection stream receive window (bytes)
}

// DefaultConfig returns a LAN-like stack: 20 us delivery, 5 us jitter,
// 512-datagram socket buffers, 64 KiB max payload, 64 KiB stream windows.
func DefaultConfig() Config {
	return Config{
		DeliveryLatency: 20 * sim.Microsecond,
		JitterMax:       5 * sim.Microsecond,
		RecvQueueCap:    512,
		MaxDatagram:     64 << 10,
		StreamWindow:    64 << 10,
	}
}

// Datagram is one UDP message.
type Datagram struct {
	SrcPort int
	DstPort int
	Data    []byte
	SentAt  sim.Time
}

// Stack is the simulated network.
type Stack struct {
	e     *sim.Engine
	cfg   Config
	ports map[int]*Socket

	nextEphemeral int

	inject *fault.Injector
	events *obs.EventLog

	// Hot-path recycling: in-flight payloads and their delivery callbacks
	// are drawn from these freelists so steady-state traffic allocates
	// nothing per packet. bufFree is segregated by power-of-two capacity
	// class; each class is bounded so a burst cannot pin memory forever.
	bufFree  [bufClasses][][]byte
	inflFree []*inflight
	hopFree  []*streamHop
	pollFree []*Poller

	Sent    sim.Counter
	Dropped sim.Counter

	// Stream-socket accounting (stream.go).
	StreamConns   sim.Counter // connections ever established
	StreamRefused sim.Counter // connects refused (no listener / backlog full)
	StreamBytes   sim.Counter // payload bytes delivered over streams
}

// SetEventLog attaches the machine's structured event log; every dropped
// datagram becomes an instant on the destination port's timeline.
func (s *Stack) SetEventLog(l *obs.EventLog) { s.events = l }

// noteDrop counts a lost datagram and marks it in the event log.
func (s *Stack) noteDrop(dg Datagram) {
	s.Dropped.Inc()
	s.events.Instant("netstack", "drop", obs.PIDNetstack, dg.DstPort, s.e.Now())
}

// SetInjector attaches the machine's fault injector: injected drops are
// lost in flight, resets refuse sends with ECONNREFUSED, and eagain
// faults fail sends as if the send buffer were full.
func (s *Stack) SetInjector(in *fault.Injector) { s.inject = in }

// New returns a stack bound to e.
func New(e *sim.Engine, cfg Config) *Stack {
	if cfg.RecvQueueCap <= 0 {
		cfg.RecvQueueCap = 512
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 64 << 10
	}
	if cfg.StreamWindow <= 0 {
		cfg.StreamWindow = 64 << 10
	}
	return &Stack{e: e, cfg: cfg, ports: make(map[int]*Socket), nextEphemeral: EphemeralMin}
}

// Config returns the stack configuration.
func (s *Stack) Config() Config { return s.cfg }

// bufClasses covers payload capacities up to MaxDatagram-scale (2^26).
const bufClasses = 27

// bufClass is the freelist index for a buffer of n bytes: the smallest
// power-of-two capacity that holds it.
func bufClass(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getBuf returns a payload buffer of length n from the pool (or a fresh
// power-of-two-capacity allocation on a miss). Contents are undefined.
func (s *Stack) getBuf(n int) []byte {
	c := bufClass(n)
	if c >= bufClasses {
		return make([]byte, n)
	}
	fl := &s.bufFree[c]
	if k := len(*fl); k > 0 {
		b := (*fl)[k-1]
		(*fl)[k-1] = nil
		*fl = (*fl)[:k-1]
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// PutBuf returns a datagram payload to the stack's pool. Consumers that
// fully copy a Datagram's Data out (the recvfrom syscall does) call this
// so the buffer is reused by a later send; anyone else may simply drop
// the reference. Only pool-shaped (power-of-two capacity) buffers are
// retained, and each size class is bounded.
func (s *Stack) PutBuf(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bufClass(c)
	if cls >= bufClasses || len(s.bufFree[cls]) >= 1024 {
		return
	}
	s.bufFree[cls] = append(s.bufFree[cls], b[:c])
}

// SockType distinguishes datagram (UDP-like) from stream (TCP-like)
// sockets.
type SockType int

const (
	// Dgram is a connectionless datagram socket (SOCK_DGRAM).
	Dgram SockType = iota
	// Stream is a connection-oriented byte-stream socket (SOCK_STREAM).
	Stream
)

func (t SockType) String() string {
	if t == Stream {
		return "stream"
	}
	return "dgram"
}

// Socket is one endpoint: a datagram socket, a stream listener, or one
// side of an established stream connection.
type Socket struct {
	stack *Stack
	typ   SockType
	port  int // 0 = unbound
	open  bool

	// rx is the readiness condition: signaled on datagram arrival, stream
	// data/EOF, pending connections, and broadcast on close — every
	// blocking receive-side wait parks here.
	rx *sim.Cond

	// Datagram receive queue; live entries are rq[rqHead:]. Pops advance
	// the head instead of re-slicing so the backing array is reused.
	rq     []Datagram
	rqHead int

	// handler, when set, receives arriving datagrams directly instead of
	// queueing them — the callback mode event-driven clients (the fleet
	// load generator) use to exist without a blocked process each.
	handler func(Datagram)

	// Stream state (stream.go).
	listening  bool
	backlog    []*Socket // established, not yet accepted connections
	backlogMax int
	peer       *Socket   // the other endpoint of an established connection
	remotePort int       // peer's port, fixed at establishment
	connected  bool      // Connect completed (client side)
	connErr    errno.Errno
	rbuf       []byte    // stream receive buffer (bounded by StreamWindow)
	rbufHead   int       // consumed prefix of rbuf; live bytes are rbuf[rbufHead:]
	inFlight   int       // bytes sent, not yet landed in rbuf
	peerClosed bool      // peer's FIN arrived: EOF after rbuf drains
	finPending bool      // FIN arrived while data was still in flight
	reset      bool      // peer closed abruptly (listener teardown): ECONNRESET
	txSpace    *sim.Cond // send-side wait for receive-window space

	// watchers are the pollers currently multiplexing this socket
	// (poll.go); every readiness transition wakes them. A slice, not a
	// map: notification order must be deterministic for the engine's
	// bit-reproducibility guarantee.
	watchers []*Poller
}

// NewSocket creates an unbound datagram socket.
func (s *Stack) NewSocket() *Socket { return s.newSocket(Dgram) }

// NewStreamSocket creates an unbound stream socket.
func (s *Stack) NewStreamSocket() *Socket { return s.newSocket(Stream) }

func (s *Stack) newSocket(t SockType) *Socket {
	return &Socket{
		stack:   s,
		typ:     t,
		open:    true,
		rx:      sim.NewCond(s.e),
		txSpace: sim.NewCond(s.e),
	}
}

// Type returns the socket type.
func (sk *Socket) Type() SockType { return sk.typ }

// Port returns the bound port (0 if unbound).
func (sk *Socket) Port() int { return sk.port }

// Open reports whether the socket has not been closed.
func (sk *Socket) Open() bool { return sk.open }

// RemotePort returns the peer's port for an established stream socket
// (0 otherwise).
func (sk *Socket) RemotePort() int { return sk.remotePort }

// wakeReady notifies everything waiting for this socket to become
// readable: one blocked receiver (they consume one event each; close and
// EOF broadcast separately) and every poll group watching the socket.
func (sk *Socket) wakeReady() {
	sk.rx.Signal()
	sk.notifyWatchers()
}

// wakeAll wakes every blocked receiver and watcher — used for state
// changes that are visible to all waiters at once (close, EOF).
func (sk *Socket) wakeAll() {
	sk.rx.Broadcast()
	sk.txSpace.Broadcast()
	sk.notifyWatchers()
}

// Bind attaches the socket to a port; port 0 picks an ephemeral one.
// When every ephemeral port is in use, Bind(0) fails with EADDRINUSE
// after one full scan of the range rather than spinning forever.
func (sk *Socket) Bind(port int) error {
	if !sk.open {
		return errno.EBADF
	}
	if sk.port != 0 {
		return errno.EINVAL
	}
	st := sk.stack
	if port == 0 {
		start := st.nextEphemeral
		for {
			st.nextEphemeral++
			if st.nextEphemeral > EphemeralMax {
				st.nextEphemeral = EphemeralMin
			}
			if _, used := st.ports[st.nextEphemeral]; !used {
				port = st.nextEphemeral
				break
			}
			if st.nextEphemeral == start {
				return errno.EADDRINUSE // full wrap: range exhausted
			}
		}
	} else if _, used := st.ports[port]; used {
		return errno.EADDRINUSE
	}
	st.ports[port] = sk
	sk.port = port
	return nil
}

// Close releases the socket and its port. Every process blocked on the
// socket — receivers parked in RecvFrom/RecvFromTimeout, accepters in
// Accept, senders waiting for stream window space — is woken and observes
// EBADF; pending and established stream peers see a reset/EOF (stream.go).
func (sk *Socket) Close() {
	if !sk.open {
		return
	}
	sk.open = false
	// Accepted stream connections report the listener's port without
	// owning the port-table entry, so only the owner releases it.
	if sk.port != 0 && sk.stack.ports[sk.port] == sk {
		delete(sk.stack.ports, sk.port)
	}
	sk.port = 0
	if sk.typ == Stream {
		sk.closeStream()
	}
	sk.wakeAll()
}

// ensureBound lazily binds an ephemeral port (sendto on unbound socket).
func (sk *Socket) ensureBound() error {
	if sk.port == 0 {
		return sk.Bind(0)
	}
	return nil
}

// delay returns the one-way delivery latency including jitter.
func (s *Stack) delay() sim.Time {
	d := s.cfg.DeliveryLatency
	if s.cfg.JitterMax > 0 {
		d += sim.Time(s.e.Rand.Int63n(int64(s.cfg.JitterMax)))
	}
	return d
}

// SendTo transmits data to dstPort. Delivery happens after the stack
// latency; if the destination queue is full the datagram is dropped.
// Safe to call from procs; the wire latency is not charged to the sender.
// On a connected stream socket dstPort is ignored and the bytes go to the
// peer (send(2) semantics — see stream.go).
func (sk *Socket) SendTo(dstPort int, data []byte) error {
	if !sk.open {
		return errno.EBADF
	}
	if sk.typ == Stream {
		if sk.peer == nil {
			return errno.ENOTCONN
		}
		_, err := sk.sendStream(data)
		return err
	}
	if len(data) > sk.stack.cfg.MaxDatagram {
		return errno.EMSGSIZE
	}
	if err := sk.ensureBound(); err != nil {
		return err
	}
	if sk.stack.inject.Should(fault.NetEAGAIN) {
		return errno.EAGAIN // send buffer full; restartable callers retry
	}
	if sk.stack.inject.Should(fault.NetReset) {
		sk.stack.inject.NoteSurfaced()
		return errno.ECONNREFUSED // peer reset: surfaced, not retryable
	}
	st := sk.stack
	payload := st.getBuf(len(data))
	copy(payload, data)
	st.Sent.Inc()
	st.sendDatagram(Datagram{SrcPort: sk.port, DstPort: dstPort, Data: payload, SentAt: st.e.Now()})
	return nil
}

// inflight is one datagram on the wire: a pooled carrier whose pre-built
// callback delivers it, so per-packet transmission costs no closure or
// carrier allocation in steady state.
type inflight struct {
	st *Stack
	dg Datagram
	fn func()
}

// sendDatagram schedules dg's delivery after the wire latency using a
// pooled carrier.
func (s *Stack) sendDatagram(dg Datagram) {
	var f *inflight
	if k := len(s.inflFree); k > 0 {
		f = s.inflFree[k-1]
		s.inflFree[k-1] = nil
		s.inflFree = s.inflFree[:k-1]
	} else {
		f = &inflight{st: s}
		f.fn = f.deliver
	}
	f.dg = dg
	s.e.CallAfter(s.delay(), f.fn)
}

// deliver lands one datagram: the original SendTo delivery logic, with
// the carrier recycled up front (a handler may send again reentrantly)
// and the payload recycled on every path where the stack still owns it.
func (f *inflight) deliver() {
	st, dg := f.st, f.dg
	f.dg = Datagram{}
	st.inflFree = append(st.inflFree, f)
	if st.inject.Should(fault.NetDrop) {
		st.noteDrop(dg) // lost in flight
		st.PutBuf(dg.Data)
		return
	}
	dst, ok := st.ports[dg.DstPort]
	if !ok || !dst.open || dst.typ != Dgram {
		st.noteDrop(dg)
		st.PutBuf(dg.Data)
		return
	}
	if dst.handler != nil {
		dst.handler(dg) // callback-mode socket: no queue, no waiters
		st.PutBuf(dg.Data)
		return
	}
	if dst.queued() >= st.cfg.RecvQueueCap {
		st.noteDrop(dg)
		st.PutBuf(dg.Data)
		return
	}
	if dst.rqHead > 0 && len(dst.rq) == cap(dst.rq) {
		// Reclaim the popped prefix instead of growing the array.
		n := copy(dst.rq, dst.rq[dst.rqHead:])
		for i := n; i < len(dst.rq); i++ {
			dst.rq[i] = Datagram{}
		}
		dst.rq = dst.rq[:n]
		dst.rqHead = 0
	}
	dst.rq = append(dst.rq, dg)
	dst.wakeReady()
}

// queued returns the datagram receive-queue depth.
func (sk *Socket) queued() int { return len(sk.rq) - sk.rqHead }

// popRQ removes and returns the oldest queued datagram.
func (sk *Socket) popRQ() Datagram {
	dg := sk.rq[sk.rqHead]
	sk.rq[sk.rqHead] = Datagram{}
	sk.rqHead++
	if sk.rqHead == len(sk.rq) {
		sk.rq = sk.rq[:0]
		sk.rqHead = 0
	}
	return dg
}

// RecvFrom blocks until a datagram arrives and returns it. A Close from
// another activity wakes the receiver with EBADF instead of stranding it.
func (sk *Socket) RecvFrom(p *sim.Proc) (Datagram, error) {
	return sk.RecvFromTimeout(p, 0)
}

// RecvFromTimeout is RecvFrom bounded by d: it returns EAGAIN when no
// datagram arrives before the deadline — the escape hatch applications
// need on a lossy network, where a dropped request would otherwise block
// the receiver forever. d <= 0 blocks indefinitely. The wait is
// event-driven (queue wake-up plus one deadline timer), and a concurrent
// Close wakes the waiter immediately with EBADF rather than letting it
// sleep to its deadline.
func (sk *Socket) RecvFromTimeout(p *sim.Proc, d sim.Time) (Datagram, error) {
	if sk.typ == Stream {
		return Datagram{}, errno.EINVAL
	}
	var deadline sim.Time
	if d > 0 {
		deadline = sk.stack.e.Now() + d
	}
	for {
		if !sk.open {
			return Datagram{}, errno.EBADF
		}
		if sk.queued() > 0 {
			return sk.popRQ(), nil
		}
		if deadline == 0 {
			sk.rx.Wait(p, "udp recv")
			continue
		}
		if sk.rx.WaitDeadline(p, "udp recv (timed)", deadline) {
			return Datagram{}, errno.EAGAIN
		}
	}
}

// SetRecvHandler switches a datagram socket into callback mode: arriving
// datagrams are handed to fn from the engine's delivery event instead of
// being queued for a blocking receiver. This lets very large client
// populations (the fleet load generator) run as pure event-driven state
// machines with no parked process per socket. fn runs in engine-callback
// context and must not block; the datagram's Data is pooled storage that
// is recycled when fn returns, so handlers must copy anything they keep.
// Pass nil to restore queueing.
func (sk *Socket) SetRecvHandler(fn func(Datagram)) { sk.handler = fn }

// TryRecv returns a queued datagram without blocking.
func (sk *Socket) TryRecv() (Datagram, bool) {
	if !sk.open || sk.typ != Dgram || sk.queued() == 0 {
		return Datagram{}, false
	}
	return sk.popRQ(), true
}

// QueueLen returns the receive queue depth (datagrams for Dgram sockets,
// pending connections for listeners, buffered bytes for stream peers).
func (sk *Socket) QueueLen() int {
	switch {
	case sk.typ == Dgram:
		return sk.queued()
	case sk.listening:
		return len(sk.backlog)
	default:
		return sk.buffered()
	}
}
