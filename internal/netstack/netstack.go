// Package netstack models a minimal UDP stack: datagram sockets with
// bind/sendto/recvfrom semantics, bounded receive queues (overflowing
// datagrams are dropped, as UDP does), and configurable delivery latency.
// It is the substrate for the paper's memcached case study (§VIII-D),
// which GENESYS serves with plain POSIX sendto/recvfrom — no RDMA.
package netstack

import (
	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/obs"
	"genesys/internal/sim"
)

// Config holds stack parameters.
type Config struct {
	DeliveryLatency sim.Time // one-way datagram latency
	JitterMax       sim.Time // uniform extra latency [0, JitterMax)
	RecvQueueCap    int      // per-socket receive queue capacity
	MaxDatagram     int      // maximum payload size
}

// DefaultConfig returns a LAN-like stack: 20 us delivery, 5 us jitter,
// 512-datagram socket buffers, 64 KiB max payload.
func DefaultConfig() Config {
	return Config{
		DeliveryLatency: 20 * sim.Microsecond,
		JitterMax:       5 * sim.Microsecond,
		RecvQueueCap:    512,
		MaxDatagram:     64 << 10,
	}
}

// Datagram is one UDP message.
type Datagram struct {
	SrcPort int
	DstPort int
	Data    []byte
	SentAt  sim.Time
}

// Stack is the simulated network.
type Stack struct {
	e     *sim.Engine
	cfg   Config
	ports map[int]*Socket

	nextEphemeral int

	inject *fault.Injector
	events *obs.EventLog

	Sent    sim.Counter
	Dropped sim.Counter
}

// SetEventLog attaches the machine's structured event log; every dropped
// datagram becomes an instant on the destination port's timeline.
func (s *Stack) SetEventLog(l *obs.EventLog) { s.events = l }

// noteDrop counts a lost datagram and marks it in the event log.
func (s *Stack) noteDrop(dg Datagram) {
	s.Dropped.Inc()
	s.events.Instant("netstack", "drop", obs.PIDNetstack, dg.DstPort, s.e.Now())
}

// SetInjector attaches the machine's fault injector: injected drops are
// lost in flight, resets refuse sends with ECONNREFUSED, and eagain
// faults fail sends as if the send buffer were full.
func (s *Stack) SetInjector(in *fault.Injector) { s.inject = in }

// New returns a stack bound to e.
func New(e *sim.Engine, cfg Config) *Stack {
	if cfg.RecvQueueCap <= 0 {
		cfg.RecvQueueCap = 512
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 64 << 10
	}
	return &Stack{e: e, cfg: cfg, ports: make(map[int]*Socket), nextEphemeral: 32768}
}

// Config returns the stack configuration.
func (s *Stack) Config() Config { return s.cfg }

// Socket is a UDP socket.
type Socket struct {
	stack *Stack
	port  int // 0 = unbound
	recvQ *sim.Queue[Datagram]
	open  bool
}

// NewSocket creates an unbound socket.
func (s *Stack) NewSocket() *Socket {
	return &Socket{
		stack: s,
		recvQ: sim.NewQueue[Datagram](s.e, "udp-recv", s.cfg.RecvQueueCap),
		open:  true,
	}
}

// Port returns the bound port (0 if unbound).
func (sk *Socket) Port() int { return sk.port }

// Bind attaches the socket to a port; port 0 picks an ephemeral one.
func (sk *Socket) Bind(port int) error {
	if !sk.open {
		return errno.EBADF
	}
	if sk.port != 0 {
		return errno.EINVAL
	}
	st := sk.stack
	if port == 0 {
		for {
			st.nextEphemeral++
			if st.nextEphemeral > 60999 {
				st.nextEphemeral = 32768
			}
			if _, used := st.ports[st.nextEphemeral]; !used {
				port = st.nextEphemeral
				break
			}
		}
	} else if _, used := st.ports[port]; used {
		return errno.EADDRINUSE
	}
	st.ports[port] = sk
	sk.port = port
	return nil
}

// Close releases the socket and its port.
func (sk *Socket) Close() {
	if !sk.open {
		return
	}
	sk.open = false
	if sk.port != 0 {
		delete(sk.stack.ports, sk.port)
		sk.port = 0
	}
}

// ensureBound lazily binds an ephemeral port (sendto on unbound socket).
func (sk *Socket) ensureBound() error {
	if sk.port == 0 {
		return sk.Bind(0)
	}
	return nil
}

// SendTo transmits data to dstPort. Delivery happens after the stack
// latency; if the destination queue is full the datagram is dropped.
// Safe to call from procs; the wire latency is not charged to the sender.
func (sk *Socket) SendTo(dstPort int, data []byte) error {
	if !sk.open {
		return errno.EBADF
	}
	if len(data) > sk.stack.cfg.MaxDatagram {
		return errno.EMSGSIZE
	}
	if err := sk.ensureBound(); err != nil {
		return err
	}
	if sk.stack.inject.Should(fault.NetEAGAIN) {
		return errno.EAGAIN // send buffer full; restartable callers retry
	}
	if sk.stack.inject.Should(fault.NetReset) {
		sk.stack.inject.NoteSurfaced()
		return errno.ECONNREFUSED // peer reset: surfaced, not retryable
	}
	st := sk.stack
	payload := make([]byte, len(data))
	copy(payload, data)
	dg := Datagram{SrcPort: sk.port, DstPort: dstPort, Data: payload, SentAt: st.e.Now()}
	delay := st.cfg.DeliveryLatency
	if st.cfg.JitterMax > 0 {
		delay += sim.Time(st.e.Rand.Int63n(int64(st.cfg.JitterMax)))
	}
	st.Sent.Inc()
	st.e.CallAfter(delay, func() {
		if st.inject.Should(fault.NetDrop) {
			st.noteDrop(dg) // lost in flight
			return
		}
		dst, ok := st.ports[dg.DstPort]
		if !ok || !dst.open {
			st.noteDrop(dg)
			return
		}
		if !dst.recvQ.TryPut(dg) {
			st.noteDrop(dg)
		}
	})
	return nil
}

// RecvFrom blocks until a datagram arrives and returns it.
func (sk *Socket) RecvFrom(p *sim.Proc) (Datagram, error) {
	if !sk.open {
		return Datagram{}, errno.EBADF
	}
	return sk.recvQ.Get(p), nil
}

// recvPollInterval paces the RecvFromTimeout wait loop.
const recvPollInterval = 5 * sim.Microsecond

// RecvFromTimeout is RecvFrom bounded by d: it returns EAGAIN when no
// datagram arrives before the deadline — the escape hatch applications
// need on a lossy network, where a dropped request would otherwise
// block the receiver forever. d <= 0 blocks indefinitely.
func (sk *Socket) RecvFromTimeout(p *sim.Proc, d sim.Time) (Datagram, error) {
	if !sk.open {
		return Datagram{}, errno.EBADF
	}
	if d <= 0 {
		return sk.recvQ.Get(p), nil
	}
	deadline := sk.stack.e.Now() + d
	for {
		if dg, ok := sk.recvQ.TryGet(); ok {
			return dg, nil
		}
		now := sk.stack.e.Now()
		if now >= deadline {
			return Datagram{}, errno.EAGAIN
		}
		wait := deadline - now
		if wait > recvPollInterval {
			wait = recvPollInterval
		}
		p.Sleep(wait)
	}
}

// TryRecv returns a queued datagram without blocking.
func (sk *Socket) TryRecv() (Datagram, bool) {
	return sk.recvQ.TryGet()
}

// QueueLen returns the receive queue depth.
func (sk *Socket) QueueLen() int { return sk.recvQ.Len() }
