package netstack

import (
	"genesys/internal/errno"
	"genesys/internal/sim"
)

// Poller multiplexes readiness across many sockets, in the spirit of
// poll(2)/epoll(7): a GPU work-group serving hundreds of connections
// registers them once and then blocks on the poller instead of on any
// single socket. Readiness is level-triggered — Wait keeps reporting a
// socket until the condition it reports (queued datagram, buffered
// stream bytes, pending connection, EOF, close) is consumed.
//
// A Poller is not itself a file; the syscall layer (sys_poll) builds a
// transient one per call, the way poll(2) does, while long-lived server
// loops can keep one registered set the way epoll does.
type Poller struct {
	e      *sim.Engine
	stack  *Stack
	socks  []*Socket // registration order; Wait reports in this order
	cond   *sim.Cond
	closed bool

	// scratch backs the ready set returned by Wait/TryWait; the returned
	// slice is valid until the poller's next wait.
	scratch []*Socket
}

// NewPoller returns an empty poller, recycling one retired by Close when
// available — the readiness syscall builds a transient poller per call,
// and the pool keeps that off the allocator at fleet poll rates.
func (s *Stack) NewPoller() *Poller {
	if k := len(s.pollFree); k > 0 {
		pg := s.pollFree[k-1]
		s.pollFree[k-1] = nil
		s.pollFree = s.pollFree[:k-1]
		pg.closed = false
		return pg
	}
	return &Poller{e: s.e, stack: s, cond: sim.NewCond(s.e)}
}

// Readable reports level-triggered readiness: a closed socket is always
// readable (so blocked pollers observe EBADF promptly), a datagram
// socket with queued data, a listener with pending connections, or a
// stream socket with buffered bytes, EOF, or a reset to deliver.
func (sk *Socket) Readable() bool {
	if !sk.open {
		return true
	}
	if sk.typ == Dgram {
		return sk.queued() > 0
	}
	if sk.listening {
		return len(sk.backlog) > 0
	}
	return sk.buffered() > 0 || sk.peerClosed || sk.reset
}

// notifyWatchers wakes every poller multiplexing this socket, in
// registration order (deterministic).
func (sk *Socket) notifyWatchers() {
	for _, pg := range sk.watchers {
		pg.cond.Broadcast()
	}
}

// Add registers a socket. Adding the same socket twice is a no-op.
func (pg *Poller) Add(sk *Socket) error {
	if pg.closed {
		return errno.EBADF
	}
	if sk == nil || !sk.open {
		return errno.EBADF
	}
	for _, s := range pg.socks {
		if s == sk {
			return nil
		}
	}
	pg.socks = append(pg.socks, sk)
	sk.watchers = append(sk.watchers, pg)
	return nil
}

// Remove unregisters a socket; unknown sockets are a no-op.
func (pg *Poller) Remove(sk *Socket) {
	for i, s := range pg.socks {
		if s == sk {
			pg.socks = append(pg.socks[:i], pg.socks[i+1:]...)
			break
		}
	}
	for i, w := range sk.watchers {
		if w == pg {
			sk.watchers = append(sk.watchers[:i], sk.watchers[i+1:]...)
			break
		}
	}
}

// Len reports the number of registered sockets.
func (pg *Poller) Len() int { return len(pg.socks) }

// ready appends every currently-readable socket to dst (registration
// order) and returns the result.
func (pg *Poller) ready(dst []*Socket) []*Socket {
	for _, sk := range pg.socks {
		if sk.Readable() {
			dst = append(dst, sk)
		}
	}
	return dst
}

// Wait blocks until at least one registered socket is readable or the
// timeout elapses, and returns the readable sockets in registration
// order. d <= 0 blocks indefinitely; a deadline with nothing readable
// returns (nil, EAGAIN). Closing the poller mid-wait returns EBADF;
// waiting on an empty set is EINVAL (it could never become ready).
func (pg *Poller) Wait(p *sim.Proc, d sim.Time) ([]*Socket, error) {
	if pg.closed {
		return nil, errno.EBADF
	}
	if len(pg.socks) == 0 {
		return nil, errno.EINVAL
	}
	var deadline sim.Time
	if d > 0 {
		deadline = pg.e.Now() + d
	}
	for {
		if pg.closed {
			return nil, errno.EBADF
		}
		if out := pg.ready(pg.scratch[:0]); len(out) > 0 {
			pg.scratch = out
			return out, nil
		}
		if deadline == 0 {
			pg.cond.Wait(p, "poll")
			continue
		}
		if pg.cond.WaitDeadline(p, "poll (timed)", deadline) {
			return nil, errno.EAGAIN
		}
	}
}

// TryWait returns the currently-readable sockets without blocking. The
// returned slice is valid until the poller's next wait.
func (pg *Poller) TryWait() []*Socket {
	if pg.closed || len(pg.socks) == 0 {
		return nil
	}
	out := pg.ready(pg.scratch[:0])
	pg.scratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// Close unregisters every socket and wakes blocked waiters with EBADF.
// A closed poller must not be used again: with no waiters left it is
// recycled by the owning stack's next NewPoller.
func (pg *Poller) Close() {
	if pg.closed {
		return
	}
	pg.closed = true
	for _, sk := range pg.socks {
		for i, w := range sk.watchers {
			if w == pg {
				sk.watchers = append(sk.watchers[:i], sk.watchers[i+1:]...)
				break
			}
		}
	}
	for i := range pg.socks {
		pg.socks[i] = nil
	}
	pg.socks = pg.socks[:0]
	for i := range pg.scratch {
		pg.scratch[i] = nil
	}
	pg.scratch = pg.scratch[:0]
	pg.cond.Broadcast()
	// Recycle only once nothing can still observe this poller: a waiter
	// woken by the broadcast checks pg.closed when it resumes, and a
	// recycled (reopened) poller would break that check.
	if pg.stack != nil && pg.cond.Waiters() == 0 {
		pg.stack.pollFree = append(pg.stack.pollFree, pg)
	}
}
