package netstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"genesys/internal/errno"
	"genesys/internal/sim"
)

func newStack(seed int64) (*sim.Engine, *Stack) {
	e := sim.NewEngine(seed)
	cfg := DefaultConfig()
	cfg.JitterMax = 0 // deterministic latency for exact assertions
	return e, New(e, cfg)
}

func TestSendRecv(t *testing.T) {
	e, st := newStack(1)
	server := st.NewSocket()
	if err := server.Bind(11211); err != nil {
		t.Fatal(err)
	}
	client := st.NewSocket()
	var got Datagram
	e.Spawn("server", func(p *sim.Proc) {
		dg, err := server.RecvFrom(p)
		if err != nil {
			t.Errorf("recv: %v", err)
		}
		got = dg
	})
	e.Spawn("client", func(p *sim.Proc) {
		if err := client.SendTo(11211, []byte("ping")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte("ping")) || got.DstPort != 11211 {
		t.Fatalf("got %+v", got)
	}
	if got.SrcPort < 32768 {
		t.Fatalf("client not auto-bound: src=%d", got.SrcPort)
	}
	if e.Now() != st.Config().DeliveryLatency {
		t.Fatalf("delivery at %v, want %v", e.Now(), st.Config().DeliveryLatency)
	}
}

func TestReplyPath(t *testing.T) {
	e, st := newStack(1)
	server := st.NewSocket()
	server.Bind(9000)
	client := st.NewSocket()
	var reply Datagram
	e.SpawnDaemon("server", func(p *sim.Proc) {
		for {
			dg, _ := server.RecvFrom(p)
			server.SendTo(dg.SrcPort, append([]byte("re:"), dg.Data...))
		}
	})
	e.Spawn("client", func(p *sim.Proc) {
		client.Bind(0)
		client.SendTo(9000, []byte("hello"))
		reply, _ = client.RecvFrom(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "re:hello" {
		t.Fatalf("reply = %q", reply.Data)
	}
	e.Shutdown()
}

func TestPortConflictAndClose(t *testing.T) {
	_, st := newStack(1)
	a := st.NewSocket()
	if err := a.Bind(80); err != nil {
		t.Fatal(err)
	}
	b := st.NewSocket()
	if err := b.Bind(80); err != errno.EADDRINUSE {
		t.Fatalf("double bind = %v", err)
	}
	a.Close()
	if err := b.Bind(80); err != nil {
		t.Fatalf("bind after close = %v", err)
	}
	if err := a.SendTo(80, []byte("x")); err != errno.EBADF {
		t.Fatalf("send on closed = %v", err)
	}
}

func TestDropOnFullQueueAndDeadPort(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.JitterMax = 0
	cfg.RecvQueueCap = 2
	st := New(e, cfg)
	dst := st.NewSocket()
	dst.Bind(7)
	src := st.NewSocket()
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			src.SendTo(7, []byte{byte(i)})
		}
		src.SendTo(9999, []byte("nobody")) // unbound port
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if dst.QueueLen() != 2 {
		t.Fatalf("queue len = %d, want 2 (capacity)", dst.QueueLen())
	}
	if st.Dropped.Value() != 4 { // 3 overflow + 1 dead port
		t.Fatalf("drops = %d, want 4", st.Dropped.Value())
	}
}

func TestMaxDatagram(t *testing.T) {
	_, st := newStack(1)
	s := st.NewSocket()
	if err := s.SendTo(1, make([]byte, st.Config().MaxDatagram+1)); err != errno.EMSGSIZE {
		t.Fatalf("oversize send = %v", err)
	}
}

// Property: datagrams are conserved — everything sent is either
// delivered into some socket queue, consumed, or counted as dropped.
func TestDatagramConservationProperty(t *testing.T) {
	f := func(seed int64, sends []uint8) bool {
		e := sim.NewEngine(seed)
		cfg := DefaultConfig()
		cfg.RecvQueueCap = 4
		st := New(e, cfg)
		socks := make([]*Socket, 4)
		for i := range socks {
			socks[i] = st.NewSocket()
			if err := socks[i].Bind(1000 + i); err != nil {
				return false
			}
		}
		consumed := 0
		e.Spawn("sender", func(p *sim.Proc) {
			src := st.NewSocket()
			for i, b := range sends {
				// Half the targets are bound, half are dead ports.
				port := 1000 + int(b)%8
				src.SendTo(port, []byte{b})
				if i%3 == 0 {
					p.Sleep(sim.Microsecond * 40)
					// Drain one socket occasionally.
					if dg, ok := socks[int(b)%4].TryRecv(); ok {
						_ = dg
						consumed++
					}
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		e.Shutdown()
		queued := 0
		for _, s := range socks {
			queued += s.QueueLen()
		}
		total := int(st.Sent.Value())
		accounted := queued + consumed + int(st.Dropped.Value())
		return total == len(sends) && accounted == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	e, st := newStack(1)
	dst := st.NewSocket()
	dst.Bind(5)
	src := st.NewSocket()
	buf := []byte("original")
	e.Spawn("sender", func(p *sim.Proc) {
		src.SendTo(5, buf)
		copy(buf, "CLOBBER!")
	})
	var got []byte
	e.Spawn("receiver", func(p *sim.Proc) {
		dg, _ := dst.RecvFrom(p)
		got = dg.Data
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}
