package netstack

import (
	"testing"

	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/sim"
)

// TestSendToUnboundPortDrops: a datagram to a port nobody listens on is
// dropped in flight (UDP has no ICMP here), counted in Dropped.
func TestSendToUnboundPortDrops(t *testing.T) {
	e, st := newStack(1)
	client := st.NewSocket()
	if err := client.SendTo(4242, []byte("void")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Sent.Value() != 1 || st.Dropped.Value() != 1 {
		t.Fatalf("sent=%d dropped=%d, want 1/1", st.Sent.Value(), st.Dropped.Value())
	}
}

// TestClosedSocketErrors: every operation on a closed socket is EBADF,
// and a datagram in flight to a socket closed before delivery is dropped.
func TestClosedSocketErrors(t *testing.T) {
	e, st := newStack(1)
	server := st.NewSocket()
	if err := server.Bind(9001); err != nil {
		t.Fatal(err)
	}
	client := st.NewSocket()
	if err := client.SendTo(9001, []byte("late")); err != nil {
		t.Fatal(err)
	}
	server.Close() // in-flight datagram now has no destination

	if err := server.Bind(9002); err != errno.EBADF {
		t.Errorf("bind on closed socket: %v, want EBADF", err)
	}
	if err := server.SendTo(9001, []byte("x")); err != errno.EBADF {
		t.Errorf("send on closed socket: %v, want EBADF", err)
	}
	e.Spawn("recv-closed", func(p *sim.Proc) {
		if _, err := server.RecvFrom(p); err != errno.EBADF {
			t.Errorf("recv on closed socket: %v, want EBADF", err)
		}
		if _, err := server.RecvFromTimeout(p, 10*sim.Microsecond); err != errno.EBADF {
			t.Errorf("timed recv on closed socket: %v, want EBADF", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Dropped.Value() != 1 {
		t.Errorf("dropped=%d, want 1 (in-flight to closed socket)", st.Dropped.Value())
	}
}

// TestOversizeDatagram: payloads over MaxDatagram fail with EMSGSIZE.
func TestOversizeDatagram(t *testing.T) {
	_, st := newStack(1)
	client := st.NewSocket()
	big := make([]byte, st.Config().MaxDatagram+1)
	if err := client.SendTo(9000, big); err != errno.EMSGSIZE {
		t.Fatalf("oversize send: %v, want EMSGSIZE", err)
	}
}

// TestRecvQueueOverflowDrops: a receiver with a tiny buffer loses the
// overflow, exactly as UDP does; the rest is deliverable.
func TestRecvQueueOverflowDrops(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.JitterMax = 0
	cfg.RecvQueueCap = 2
	st := New(e, cfg)
	server := st.NewSocket()
	if err := server.Bind(9000); err != nil {
		t.Fatal(err)
	}
	client := st.NewSocket()
	for i := 0; i < 5; i++ {
		if err := client.SendTo(9000, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Dropped.Value() != 3 {
		t.Errorf("dropped=%d, want 3 (queue cap 2)", st.Dropped.Value())
	}
	if server.QueueLen() != 2 {
		t.Errorf("queue len=%d, want 2", server.QueueLen())
	}
}

// TestRecvFromTimeoutEAGAIN: a timed receive on a silent socket returns
// EAGAIN at the deadline, not earlier, and leaves the socket usable.
func TestRecvFromTimeoutEAGAIN(t *testing.T) {
	e, st := newStack(1)
	sk := st.NewSocket()
	if err := sk.Bind(9000); err != nil {
		t.Fatal(err)
	}
	const d = 100 * sim.Microsecond
	e.Spawn("waiter", func(p *sim.Proc) {
		if _, err := sk.RecvFromTimeout(p, d); err != errno.EAGAIN {
			t.Errorf("timed recv: %v, want EAGAIN", err)
		}
		if now := p.Now(); now < d {
			t.Errorf("EAGAIN at %v, before the %v deadline", now, d)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedFaults drives each netstack injection point at rate 1 and
// checks the advertised failure mode: eagain → EAGAIN on send, reset →
// ECONNREFUSED (counted surfaced), drop → datagram lost in flight.
func TestInjectedFaults(t *testing.T) {
	mk := func(pt fault.Point) (*sim.Engine, *Stack) {
		e, st := newStack(1)
		st.SetInjector(fault.NewInjector(e, 1, fault.Plan{
			Name:  "test",
			Rules: []fault.Rule{{Point: pt, Rate: 1}},
		}))
		return e, st
	}

	_, st := mk(fault.NetEAGAIN)
	if err := st.NewSocket().SendTo(9000, []byte("x")); err != errno.EAGAIN {
		t.Errorf("eagain fault: %v, want EAGAIN", err)
	}

	_, st = mk(fault.NetReset)
	if err := st.NewSocket().SendTo(9000, []byte("x")); err != errno.ECONNREFUSED {
		t.Errorf("reset fault: %v, want ECONNREFUSED", err)
	}
	if st.inject.Surfaced.Value() != 1 {
		t.Errorf("reset not counted surfaced")
	}

	e, st := mk(fault.NetDrop)
	server := st.NewSocket()
	if err := server.Bind(9000); err != nil {
		t.Fatal(err)
	}
	if err := st.NewSocket().SendTo(9000, []byte("x")); err != nil {
		t.Fatalf("send under drop fault should succeed locally: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Dropped.Value() != 1 || server.QueueLen() != 0 {
		t.Errorf("dropped=%d queueLen=%d, want 1/0", st.Dropped.Value(), server.QueueLen())
	}
	if st.inject.InjectedAt(fault.NetDrop) != 1 {
		t.Errorf("drop not counted at its injection point")
	}
}
