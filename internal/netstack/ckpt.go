package netstack

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// CheckpointState renders the stack's state as a deterministic byte
// string: counters, the ephemeral-port cursor, and every bound socket
// in port order — datagram queues, stream connection state (receive
// buffer digest, in-flight bytes, FIN/reset flags, accept backlogs by
// peer port), blocked receiver/sender counts and watcher registrations.
// Pure reads; used as a verification section by internal/ckpt
// (DESIGN.md §10).
func (s *Stack) CheckpointState() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "netstack v1\n")
	fmt.Fprintf(&b, "counters sent=%d dropped=%d conns=%d refused=%d stream_bytes=%d\n",
		s.Sent.Value(), s.Dropped.Value(), s.StreamConns.Value(),
		s.StreamRefused.Value(), s.StreamBytes.Value())
	fmt.Fprintf(&b, "next_ephemeral %d\n", s.nextEphemeral)

	ports := make([]int, 0, len(s.ports))
	for p := range s.ports {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	fmt.Fprintf(&b, "ports %d\n", len(ports))
	for _, p := range ports {
		writeSocket(&b, s.ports[p])
	}
	return []byte(b.String())
}

// Listening reports whether the socket is a stream listener.
func (sk *Socket) Listening() bool { return sk.listening }

// BacklogMax returns a listener's backlog capacity (0 otherwise).
func (sk *Socket) BacklogMax() int { return sk.backlogMax }

func writeSocket(b *strings.Builder, sk *Socket) {
	fmt.Fprintf(b, "sock port=%d type=%s open=%v handler=%v rx_waiters=%d tx_waiters=%d watchers=%d\n",
		sk.port, sk.typ, sk.open, sk.handler != nil,
		sk.rx.Waiters(), sk.txSpace.Waiters(), len(sk.watchers))
	if sk.typ == Dgram {
		h := fnv.New64a()
		var bytes int
		for _, dg := range sk.rq[sk.rqHead:] {
			h.Write(dg.Data)
			bytes += len(dg.Data)
		}
		fmt.Fprintf(b, "  rq depth=%d bytes=%d digest=%016x\n", sk.queued(), bytes, h.Sum64())
		return
	}
	if sk.listening {
		fmt.Fprintf(b, "  listen backlog=%d/%d peers=[", len(sk.backlog), sk.backlogMax)
		for i, c := range sk.backlog {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%d", c.remotePort)
		}
		b.WriteString("]\n")
		return
	}
	writeStream(b, "  stream", sk)
	// Accepted connections report the listener's port without owning a
	// port-table entry, so the server side of an established stream is
	// reachable only through its client peer — render it here.
	if p := sk.peer; p != nil && p.stack.ports[p.port] != p {
		fmt.Fprintf(b, "  peer open=%v rx_waiters=%d tx_waiters=%d watchers=%d\n",
			p.open, p.rx.Waiters(), p.txSpace.Waiters(), len(p.watchers))
		writeStream(b, "  peer-stream", p)
	}
}

func writeStream(b *strings.Builder, label string, sk *Socket) {
	h := fnv.New64a()
	h.Write(sk.rbuf[sk.rbufHead:])
	fmt.Fprintf(b, "%s remote=%d connected=%v rbuf=%d digest=%016x in_flight=%d "+
		"peer_closed=%v fin_pending=%v reset=%v err=%d\n",
		label, sk.remotePort, sk.connected, sk.buffered(), h.Sum64(), sk.inFlight,
		sk.peerClosed, sk.finPending, sk.reset, int(sk.connErr))
}
