package ckpt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"genesys/internal/platform"
	"genesys/internal/sim"
)

func newMachine(t *testing.T, seed int64) *platform.Machine {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	return m
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	m := newMachine(t, 1)
	m.NewProcess("test")
	if err := m.WriteFile("/tmp/f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s := Capture(m, Meta{Kind: "bench", Case: "x", Seed: 1})
	if len(s.Sections) != 8 {
		t.Fatalf("want 8 sections, got %d", len(s.Sections))
	}
	names := make([]string, len(s.Sections))
	for i, sec := range s.Sections {
		names[i] = sec.Name
	}
	want := "sim genesys gpu oskern fs blockdev netstack obs"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("section order %q, want %q", got, want)
	}
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("encode-decode-encode is not stable")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	m := newMachine(t, 1)
	s := Capture(m, Meta{Kind: "bench", Seed: 1})
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside a base64 section payload.
	idx := bytes.Index(b, []byte(`"data"`))
	if idx < 0 {
		t.Fatal("no data field in encoding")
	}
	corrupt := append([]byte(nil), b...)
	for i := idx + 10; i < len(corrupt); i++ {
		if corrupt[i] >= 'a' && corrupt[i] < 'z' {
			corrupt[i]++
			break
		}
	}
	if _, err := Decode(corrupt); err == nil {
		t.Error("corrupted snapshot decoded clean")
	}
	// Wrong version is rejected too.
	s.Version = Version + 1
	b3, _ := s.Encode()
	if _, err := Decode(b3); err == nil {
		t.Error("future-version snapshot decoded clean")
	}
}

func TestWriteLoad(t *testing.T) {
	m := newMachine(t, 3)
	s := Capture(m, Meta{Kind: "gsh", Seed: 3, History: []string{"ls /"}})
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Meta.Kind != "gsh" || s2.Meta.Seed != 3 || len(s2.Meta.History) != 1 {
		t.Errorf("meta round-trip: %+v", s2.Meta)
	}
}

func TestVerifyDetectsDivergence(t *testing.T) {
	m := newMachine(t, 1)
	s := Capture(m, Meta{Kind: "bench", Seed: 1})
	if err := Verify(m, s); err != nil {
		t.Fatalf("verify against self: %v", err)
	}
	// Mutate the machine: a new file changes the fs section.
	if err := m.WriteFile("/tmp/diverge", []byte("x")); err != nil {
		t.Fatal(err)
	}
	err := Verify(m, s)
	if err == nil {
		t.Fatal("verify passed on a diverged machine")
	}
	me, ok := err.(*MismatchError)
	if !ok {
		t.Fatalf("want *MismatchError, got %T: %v", err, err)
	}
	if me.Section != "fs" {
		t.Errorf("divergence attributed to %q, want fs", me.Section)
	}
	if me.Diff == "" {
		t.Error("mismatch carries no diagnostic diff")
	}
}

func TestVerifyWrongInstant(t *testing.T) {
	m := newMachine(t, 1)
	s := Capture(m, Meta{Kind: "bench", Seed: 1})
	if err := m.E.RunUntil(10 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := Verify(m, s); err == nil {
		t.Error("verify at the wrong instant passed")
	}
}

// TestFastForwardIdleMachine checks the degenerate restore: a snapshot
// of an idle machine fast-forwards by pure clock advance.
func TestFastForwardIdleMachine(t *testing.T) {
	m := newMachine(t, 5)
	if err := m.E.RunUntil(100 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	s := Capture(m, Meta{Kind: "bench", Seed: 5})
	m2 := newMachine(t, 5)
	if err := FastForward(m2, s); err != nil {
		t.Fatalf("fast-forward: %v", err)
	}
	if m2.E.Now() != sim.Time(s.CutAt) {
		t.Errorf("machine at t=%v, want %v", m2.E.Now(), sim.Time(s.CutAt))
	}
}
