// Package ckpt implements gem5-style checkpoint/restore for the
// simulated machine.
//
// Go cannot serialize goroutine stacks, and the simulator's live procs
// are goroutines parked at yield points — so a snapshot is not a byte
// image that can be thawed. Instead it exploits the engine's foundational
// guarantee: for a fixed seed, execution is bit-identical. A snapshot
// records (a) the *recipe* that built the run (which machine, which
// workload, which seed), (b) the virtual-time cut instant, and (c) a
// deterministic serialization of every subsystem's state at the cut,
// each section digested. Restore rebuilds the machine from the recipe,
// fast-forwards it with Engine.RunUntil(CutAt) — replaying exactly the
// event sequence the original run executed — and then proves it arrived
// at the same state by re-capturing every section and comparing bytes.
// Continuing from there executes the identical event sequence the
// straight run would have, so resume-equals-straight-run holds by
// construction and is verified in CI against BENCH_<case>.json
// byte-identity (DESIGN.md §10).
//
// The recipe interpretation lives with the code that owns the recipe:
// internal/experiments restores bench-case snapshots, internal/gsh
// restores shell sessions. This package owns the format, the capture,
// and the verification.
package ckpt

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"strings"

	"genesys/internal/platform"
	"genesys/internal/sim"
)

// Version is the snapshot format version. Decode rejects snapshots
// whose version differs: sections are compared byte-for-byte, so any
// change to a subsystem's serialization is a format change.
const Version = 1

// Meta is the recipe that rebuilds the checkpointed run.
type Meta struct {
	// Kind names the recipe interpreter: "bench" (internal/experiments)
	// or "gsh" (a shell session rebuilt from its command history).
	Kind string `json:"kind"`
	// Case is the bench case or workload name.
	Case string `json:"case,omitempty"`
	// Seed is the engine seed the machine was built with.
	Seed int64 `json:"seed"`
	// History is the command history of a gsh session (Kind "gsh").
	History []string `json:"history,omitempty"`
}

// Section is one subsystem's serialized state.
type Section struct {
	Name   string `json:"name"`
	Digest string `json:"digest"` // fnv64a of Data, hex
	Data   []byte `json:"data"`   // base64 in the JSON encoding
}

// Snapshot is a saved machine state: recipe + cut instant + sections.
type Snapshot struct {
	Version  int       `json:"version"`
	Meta     Meta      `json:"meta"`
	CutAt    int64     `json:"cut_at_ns"`
	Sections []Section `json:"sections"`
}

func digest(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// sections captures every subsystem's serialized state, in a fixed
// order. Each CheckpointState is pure reads: no virtual time passes, no
// randomness is consumed, no events are scheduled — capturing a
// snapshot cannot perturb the run it captures.
func sections(m *platform.Machine) []Section {
	mk := func(name string, data []byte) Section {
		return Section{Name: name, Digest: digest(data), Data: data}
	}
	return []Section{
		mk("sim", m.E.CheckpointState()),
		mk("genesys", m.Genesys.CheckpointState()),
		mk("gpu", m.GPU.CheckpointState()),
		mk("oskern", m.OS.CheckpointState()),
		mk("fs", m.VFS.CheckpointState()),
		mk("blockdev", m.SSD.CheckpointState()),
		mk("netstack", m.Net.CheckpointState()),
		mk("obs", m.Obs.Metrics.CheckpointState()),
	}
}

// Capture snapshots the machine's state at the current virtual instant.
// The engine must be outside its loop (between Run/RunUntil calls).
func Capture(m *platform.Machine, meta Meta) *Snapshot {
	return &Snapshot{
		Version:  Version,
		Meta:     meta,
		CutAt:    int64(m.E.Now()),
		Sections: sections(m),
	}
}

// Encode serializes the snapshot as indented JSON (deterministic:
// struct-ordered keys, base64 section payloads).
func (s *Snapshot) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses and version-checks a snapshot, verifying every
// section's digest against its payload (corruption surfaces at load,
// not as a confusing restore mismatch).
func Decode(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("ckpt: decode: %w", err)
	}
	if s.Version != Version {
		return nil, fmt.Errorf("ckpt: snapshot version %d, want %d", s.Version, Version)
	}
	for _, sec := range s.Sections {
		if d := digest(sec.Data); d != sec.Digest {
			return nil, fmt.Errorf("ckpt: section %q corrupt: digest %s, recorded %s",
				sec.Name, d, sec.Digest)
		}
	}
	return &s, nil
}

// Write encodes the snapshot to a file.
func (s *Snapshot) Write(path string) error {
	b, err := s.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads and decodes a snapshot file.
func Load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// MismatchError reports a restore whose re-captured state diverged from
// the snapshot — the recipe did not rebuild the recorded run (wrong
// seed or workload, a non-deterministic subsystem, or a snapshot from a
// different build of the simulator).
type MismatchError struct {
	Section string
	Diff    string // first differing lines, for diagnosis
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("ckpt: restored state diverged in section %q:\n%s", e.Section, e.Diff)
}

// firstDiff renders the first differing line of two section payloads.
func firstDiff(got, want []byte) string {
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d:\n  restored: %s\n  snapshot: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("restored has %d lines, snapshot has %d", len(gl), len(wl))
}

// Verify re-captures every section from m and compares it byte-for-byte
// against the snapshot, returning a *MismatchError on the first
// divergence. The machine must be at the snapshot's cut instant.
func Verify(m *platform.Machine, s *Snapshot) error {
	if now := int64(m.E.Now()); now != s.CutAt {
		return fmt.Errorf("ckpt: machine at t=%d, snapshot cut at t=%d", now, s.CutAt)
	}
	got := sections(m)
	want := make(map[string][]byte, len(s.Sections))
	for _, sec := range s.Sections {
		want[sec.Name] = sec.Data
	}
	for _, sec := range got {
		w, ok := want[sec.Name]
		if !ok {
			return fmt.Errorf("ckpt: snapshot has no section %q", sec.Name)
		}
		if string(sec.Data) != string(w) {
			return &MismatchError{Section: sec.Name, Diff: firstDiff(sec.Data, w)}
		}
	}
	return nil
}

// FastForward deterministically re-executes a freshly-built machine to
// the snapshot's cut instant and verifies the arrival state. m must
// have been rebuilt from the snapshot's recipe and not yet run. On
// return the machine is bit-identical to the checkpointed one and can
// continue (Run) exactly as the original would have.
func FastForward(m *platform.Machine, s *Snapshot) error {
	if err := m.E.RunUntil(sim.Time(s.CutAt)); err != nil {
		return fmt.Errorf("ckpt: fast-forward: %w", err)
	}
	return Verify(m, s)
}
