package gpu

import (
	"errors"
	"fmt"
	"testing"

	"genesys/internal/sim"
)

func newDev(seed int64) (*sim.Engine, *Device) {
	e := sim.NewEngine(seed)
	return e, New(e, DefaultConfig())
}

func TestKernelRunsAllWorkItems(t *testing.T) {
	e, d := newDev(1)
	seen := make(map[int]bool)
	var kr *KernelRun
	e.Spawn("host", func(p *sim.Proc) {
		kr = d.Launch(p, Kernel{
			Name:       "count",
			WorkGroups: 10,
			WGSize:     256,
			Fn: func(w *Wavefront) {
				for l := 0; l < w.Lanes; l++ {
					seen[w.GlobalWorkItemID(l)] = true
				}
				w.Compute(100)
			},
		})
		kr.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2560 {
		t.Fatalf("executed %d work-items, want 2560", len(seen))
	}
	for i := 0; i < 2560; i++ {
		if !seen[i] {
			t.Fatalf("work-item %d never executed", i)
		}
	}
	if !kr.Done() || kr.Runtime() <= 0 {
		t.Fatalf("kernel not properly completed: done=%v runtime=%v", kr.Done(), kr.Runtime())
	}
}

func TestPartialWavefront(t *testing.T) {
	e, d := newDev(1)
	var lanes []int
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "partial", WorkGroups: 1, WGSize: 100,
			Fn: func(w *Wavefront) { lanes = append(lanes, w.Lanes) },
		}).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(lanes) != "[64 36]" {
		t.Fatalf("lanes = %v, want [64 36]", lanes)
	}
}

func TestOccupancyLimitsConcurrency(t *testing.T) {
	// 8 CUs × 40 slots; WGs of 1024 WIs = 16 waves → 2 WGs per CU → 16
	// resident WGs. With 64 WGs each computing 1ms, runtime must be ≥
	// 4 waves of dispatch ≈ 4ms.
	e, d := newDev(1)
	var resident, peak int
	var runtime sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		d.Launch(p, Kernel{
			Name: "occupancy", WorkGroups: 64, WGSize: 1024,
			Fn: func(w *Wavefront) {
				if w.ID == 0 {
					resident++
					if resident > peak {
						peak = resident
					}
				}
				w.ComputeTime(sim.Millisecond)
				if w.ID == 0 {
					resident--
				}
			},
		}).Wait(p)
		runtime = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 16 {
		t.Fatalf("peak resident WGs = %d, want 16", peak)
	}
	if runtime < 4*sim.Millisecond {
		t.Fatalf("runtime = %v, want ≥ 4ms (4 dispatch rounds)", runtime)
	}
}

func TestWorkGroupBarrier(t *testing.T) {
	e, d := newDev(1)
	phase1 := 0
	ok := true
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "barrier", WorkGroups: 4, WGSize: 512,
			Fn: func(w *Wavefront) {
				w.ComputeTime(sim.Time(w.ID+1) * sim.Microsecond) // skewed arrival
				phase1++
				w.Barrier()
				// After the barrier every wavefront of this WG must have
				// completed phase 1; since WGs run concurrently we can
				// only check a multiple-of-8 property per own group via
				// the shared map.
				n, _ := w.WG.Shared["count"].(int)
				w.WG.Shared["count"] = n + 1
				if ph, _ := w.WG.Shared["phase1"].(int); w.ID == 0 && ph != 0 {
					ok = false
				}
			},
		}).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if phase1 != 4*8 || !ok {
		t.Fatalf("phase1=%d ok=%v", phase1, ok)
	}
}

func TestBarrierReusable(t *testing.T) {
	e, d := newDev(1)
	rounds := 5
	var maxSkew sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "barrier-loop", WorkGroups: 1, WGSize: 256,
			Fn: func(w *Wavefront) {
				for r := 0; r < rounds; r++ {
					w.ComputeTime(sim.Time(w.ID*100) * sim.Nanosecond)
					before := w.P.Now()
					w.Barrier()
					skew := w.P.Now() - before
					if skew > maxSkew {
						maxSkew = skew
					}
				}
			},
		}).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxSkew == 0 {
		t.Fatal("barrier never caused any wavefront to wait")
	}
}

func TestKernelScopeStrongOrderingDeadlock(t *testing.T) {
	// More work-groups than can be co-resident + a kernel-wide barrier =
	// deadlock (paper §V-A: strong ordering at kernel granularity).
	e, d := newDev(1)
	// Capacity is 16 resident WGs of 1024 WIs; launch 32.
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "global-barrier", WorkGroups: 32, WGSize: 1024,
			Fn: func(w *Wavefront) {
				w.GlobalBarrier()
			},
		}).Wait(p)
	})
	err := e.Run()
	var dl *sim.ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	e.Shutdown()
}

func TestGlobalBarrierWorksWhenResident(t *testing.T) {
	// With all WGs co-resident the kernel-scope barrier completes.
	e, d := newDev(1)
	crossed := 0
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "global-barrier-ok", WorkGroups: 16, WGSize: 1024,
			Fn: func(w *Wavefront) {
				w.GlobalBarrier()
				crossed++
			},
		}).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if crossed != 16*16 {
		t.Fatalf("crossed = %d, want 256", crossed)
	}
}

func TestHaltResume(t *testing.T) {
	e, d := newDev(1)
	var haltedAt, resumedAt sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "halt", WorkGroups: 1, WGSize: 64,
			Fn: func(w *Wavefront) {
				haltedAt = w.P.Now()
				hw, gen := w.HWSlot, w.Gen
				// Schedule a CPU-side resume 100us from now.
				w.P.Engine().After(100*sim.Microsecond, func() { d.Resume(hw, gen) })
				w.Halt()
				resumedAt = w.P.Now()
			},
		}).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := haltedAt + 100*sim.Microsecond + d.Config().ResumeLatency
	if resumedAt != want {
		t.Fatalf("resumedAt = %v, want %v", resumedAt, want)
	}
	if d.Halts.Value() != 1 || d.Resumes.Value() != 1 {
		t.Fatalf("halts=%d resumes=%d", d.Halts.Value(), d.Resumes.Value())
	}
}

func TestResumeOfVacatedSlotIsNoop(t *testing.T) {
	e, d := newDev(1)
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "quick", WorkGroups: 1, WGSize: 64,
			Fn: func(w *Wavefront) {},
		}).Wait(p)
		d.Resume(0, d.SlotGeneration(0)) // slot now vacated; must not panic or wake anything
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Resumes.Value() != 0 {
		t.Fatal("resume of vacated slot counted")
	}
}

func TestSlotGenerationBumpsOnReuse(t *testing.T) {
	// Two sequential kernels reuse the same hardware wavefront slots;
	// each tenancy must get a distinct, increasing generation.
	e, d := newDev(1)
	gens := make(map[int][]uint64)
	run := func(name string) Kernel {
		return Kernel{
			Name: name, WorkGroups: 2, WGSize: 64,
			Fn: func(w *Wavefront) {
				gens[w.HWSlot] = append(gens[w.HWSlot], w.Gen)
				if got := d.SlotGeneration(w.HWSlot); got != w.Gen {
					t.Errorf("SlotGeneration(%d) = %d, want %d", w.HWSlot, got, w.Gen)
				}
			},
		}
	}
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, run("first")).Wait(p)
		d.Launch(p, run("second")).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	reused := 0
	for hw, gs := range gens {
		for i := 1; i < len(gs); i++ {
			reused++
			if gs[i] <= gs[i-1] {
				t.Fatalf("hw slot %d generations %v not increasing", hw, gs)
			}
		}
	}
	if reused == 0 {
		t.Fatal("no hardware slot was reused across the two kernels")
	}
}

func TestResumeOfStaleGenerationDropped(t *testing.T) {
	// A Resume carrying a previous tenancy's generation must not wake
	// the halted successor; the correctly-tagged Resume must.
	e, d := newDev(1)
	var haltedAt, resumedAt sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "halt", WorkGroups: 1, WGSize: 64,
			Fn: func(w *Wavefront) {
				haltedAt = w.P.Now()
				hw, gen := w.HWSlot, w.Gen
				eng := w.P.Engine()
				eng.After(50*sim.Microsecond, func() { d.Resume(hw, gen-1) })
				eng.After(100*sim.Microsecond, func() { d.Resume(hw, gen) })
				w.Halt()
				resumedAt = w.P.Now()
			},
		}).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := haltedAt + 100*sim.Microsecond + d.Config().ResumeLatency
	if resumedAt != want {
		t.Fatalf("resumedAt = %v, want %v (stale-generation resume must be dropped)",
			resumedAt, want)
	}
	if d.Resumes.Value() != 1 {
		t.Fatalf("resumes = %d, want 1", d.Resumes.Value())
	}
}

func TestRetireHookFiresPerWavefront(t *testing.T) {
	e, d := newDev(1)
	type retirement struct {
		hw  int
		gen uint64
	}
	var retired []retirement
	d.SetRetireHook(func(hw int, gen uint64) {
		retired = append(retired, retirement{hw, gen})
	})
	var started []retirement
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "retire", WorkGroups: 4, WGSize: 256,
			Fn: func(w *Wavefront) {
				started = append(started, retirement{w.HWSlot, w.Gen})
			},
		}).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(retired) != 4*4 {
		t.Fatalf("retire hook fired %d times, want 16 (one per wavefront)", len(retired))
	}
	want := make(map[retirement]bool)
	for _, s := range started {
		want[s] = true
	}
	for _, r := range retired {
		if !want[r] {
			t.Fatalf("retired (hw=%d gen=%d) never started", r.hw, r.gen)
		}
	}
}

func TestInterruptDelivery(t *testing.T) {
	e, d := newDev(1)
	var gotHW int = -1
	var at sim.Time
	d.SetIRQHandler(func(hw int, gen uint64) { gotHW = hw; at = e.Now() })
	var sentAt sim.Time
	var sentHW int
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "irq", WorkGroups: 1, WGSize: 64,
			Fn: func(w *Wavefront) {
				sentAt = w.P.Now()
				sentHW = w.HWSlot
				w.Interrupt()
			},
		}).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotHW != sentHW {
		t.Fatalf("irq hw = %d, want %d", gotHW, sentHW)
	}
	if at != sentAt+d.Config().InterruptLatency {
		t.Fatalf("irq at %v, want %v", at, sentAt+d.Config().InterruptLatency)
	}
}

func TestHWWorkItemIDsAreUniqueAcrossResidentWaves(t *testing.T) {
	e, d := newDev(1)
	used := make(map[int][]string)
	e.Spawn("host", func(p *sim.Proc) {
		d.Launch(p, Kernel{
			Name: "hwid", WorkGroups: 16, WGSize: 1024,
			Fn: func(w *Wavefront) {
				for l := 0; l < w.Lanes; l++ {
					id := w.HWWorkItemID(l)
					used[id] = append(used[id], fmt.Sprintf("wg%d/wf%d/l%d", w.WG.ID, w.ID, l))
				}
				w.ComputeTime(sim.Millisecond) // keep all resident together
			},
		}).Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(used) != 16*1024 {
		t.Fatalf("distinct hw ids = %d, want 16384", len(used))
	}
	for id, owners := range used {
		if len(owners) != 1 {
			t.Fatalf("hw id %d claimed by %v", id, owners)
		}
	}
}

func TestHWWorkItemsMatchesPaperSyscallArea(t *testing.T) {
	_, d := newDev(1)
	if d.HWWorkItems() != 20480 {
		t.Fatalf("HWWorkItems = %d, want 20480 (1.25 MiB of 64B slots)", d.HWWorkItems())
	}
}

func TestMultipleKernelsQueue(t *testing.T) {
	e, d := newDev(1)
	var order []string
	e.Spawn("host", func(p *sim.Proc) {
		k1 := d.Launch(p, Kernel{Name: "k1", WorkGroups: 40, WGSize: 1024,
			Fn: func(w *Wavefront) { w.ComputeTime(sim.Millisecond) }})
		k2 := d.Launch(p, Kernel{Name: "k2", WorkGroups: 1, WGSize: 64,
			Fn: func(w *Wavefront) { order = append(order, "k2") }})
		k1.Wait(p)
		order = append(order, "k1done")
		k2.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestCyclesTime(t *testing.T) {
	_, d := newDev(1)
	// 758 cycles at 758 MHz = 1us.
	if got := d.CyclesTime(758); got != sim.Microsecond {
		t.Fatalf("CyclesTime(758) = %v", got)
	}
}
