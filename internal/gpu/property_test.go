package gpu

import (
	"testing"
	"testing/quick"

	"genesys/internal/sim"
)

// TestDispatchProperty: for random grid shapes, every work-item executes
// exactly once, residency never exceeds the hardware wavefront slots, and
// the device ends with all slots free.
func TestDispatchProperty(t *testing.T) {
	f := func(seed int64, wgs, wgSizeRaw uint8) bool {
		workGroups := int(wgs%60) + 1
		wgSize := (int(wgSizeRaw%16) + 1) * 64 // 64..1024
		e := sim.NewEngine(seed)
		d := New(e, DefaultConfig())

		executed := make(map[int]int)
		resident := 0
		peak := 0
		e.Spawn("host", func(p *sim.Proc) {
			d.Launch(p, Kernel{
				Name: "prop", WorkGroups: workGroups, WGSize: wgSize,
				Fn: func(w *Wavefront) {
					resident++
					if resident > peak {
						peak = resident
					}
					for l := 0; l < w.Lanes; l++ {
						executed[w.GlobalWorkItemID(l)]++
					}
					w.ComputeTime(sim.Time(1+seed%100) * sim.Microsecond)
					resident--
				},
			}).Wait(p)
		})
		if err := e.Run(); err != nil {
			return false
		}
		e.Shutdown()
		if len(executed) != workGroups*wgSize {
			return false
		}
		for _, n := range executed {
			if n != 1 {
				return false
			}
		}
		if peak > d.HWWavefronts() {
			return false
		}
		// All hardware slots vacated.
		for hw := 0; hw < d.HWWavefronts(); hw++ {
			if d.ResidentWave(hw) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierProperty: for random wavefront counts and skews, a barrier
// never lets any wavefront proceed until all have arrived.
func TestBarrierProperty(t *testing.T) {
	f := func(seed int64, wavesRaw uint8) bool {
		waves := int(wavesRaw%15) + 2 // 2..16
		e := sim.NewEngine(seed)
		d := New(e, DefaultConfig())
		arrivals := make([]sim.Time, 0, waves)
		var releases []sim.Time
		e.Spawn("host", func(p *sim.Proc) {
			d.Launch(p, Kernel{
				Name: "bar", WorkGroups: 1, WGSize: waves * 64,
				Fn: func(w *Wavefront) {
					w.ComputeTime(sim.Time(int64(w.ID)*(seed%50+1)) * sim.Microsecond)
					arrivals = append(arrivals, w.P.Now())
					w.Barrier()
					releases = append(releases, w.P.Now())
				},
			}).Wait(p)
		})
		if err := e.Run(); err != nil {
			return false
		}
		e.Shutdown()
		var lastArrival sim.Time
		for _, a := range arrivals {
			if a > lastArrival {
				lastArrival = a
			}
		}
		for _, r := range releases {
			if r < lastArrival {
				return false
			}
		}
		return len(releases) == waves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
