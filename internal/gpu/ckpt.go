package gpu

import (
	"fmt"
	"strings"
)

// CheckpointState renders the device's scheduling state as a
// deterministic byte string: per-CU occupancy and free-slot stacks,
// resident wavefronts (with generation, work-group identity and
// halt/poll status), per-slot generation counters, the pending kernel
// queue and the device counters. Pure reads; used as a verification
// section by internal/ckpt (DESIGN.md §10).
func (d *Device) CheckpointState() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "gpu v1\n")
	fmt.Fprintf(&b, "cfg cus=%d simd=%d wpc=%d clock=%d\n",
		d.cfg.CUs, d.cfg.SIMDWidth, d.cfg.WavefrontsPerCU, d.cfg.ClockMHz)
	fmt.Fprintf(&b, "counters kernels=%d wgs=%d irqs=%d halts=%d resumes=%d\n",
		d.KernelsLaunched.Value(), d.WGsDispatched.Value(), d.Interrupts.Value(),
		d.Halts.Value(), d.Resumes.Value())

	for _, c := range d.cus {
		fmt.Fprintf(&b, "cu %d resident=%d pollers=%d free=%v\n",
			c.id, c.resident, c.pollers, c.freeSlots)
	}

	for hw, w := range d.hwWaves {
		if w == nil {
			if d.slotGens[hw] != 0 {
				fmt.Fprintf(&b, "slot %d gen=%d vacant\n", hw, d.slotGens[hw])
			}
			continue
		}
		fmt.Fprintf(&b, "slot %d gen=%d wave=%s/wg%d/wf%d lanes=%d halted=%v\n",
			hw, w.Gen, w.WG.Run.Name, w.WG.ID, w.ID, w.Lanes, w.halted)
	}

	fmt.Fprintf(&b, "pending_kernels %d\n", len(d.pending))
	for _, kr := range d.pending {
		fmt.Fprintf(&b, "pending %s wgs=%d/%d size=%d\n",
			kr.Name, kr.nextWG, kr.WorkGroups, kr.WGSize)
	}
	return []byte(b.String())
}
