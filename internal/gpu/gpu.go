// Package gpu models the GPU of the simulated APU: compute units (CUs)
// holding a fixed number of wavefront slots, SIMD-64 wavefronts grouped
// into work-groups of up to 1024 work-items, and a kernel dispatcher.
//
// The properties GENESYS depends on are modelled explicitly:
//
//   - work-groups are dispatched to a CU only when enough wavefront slots
//     are free, and are never preempted mid-kernel — which is why strong
//     ordering at kernel scope can deadlock (paper §V-A) and why
//     non-blocking system calls that let a work-group finish early free
//     resources for other work-groups;
//   - work-items within a work-group can barrier cheaply; there is no
//     portable kernel-wide barrier;
//   - each resident wavefront occupies a hardware slot whose ID (and the
//     derived per-lane hardware work-item IDs) indexes the GENESYS
//     syscall area;
//   - a wavefront can interrupt the CPU (the GCN s_sendmsg scalar
//     instruction) and can halt itself, relinquishing SIMD resources
//     until the CPU resumes it.
package gpu

import (
	"fmt"

	"genesys/internal/obs"
	"genesys/internal/sim"
)

// Config describes the GPU. Defaults approximate the paper's GCN3
// integrated GPU (Table III).
type Config struct {
	CUs             int
	SIMDWidth       int
	WavefrontsPerCU int
	ClockMHz        int

	LaunchOverhead   sim.Time // CPU-side cost of launching one kernel
	InterruptLatency sim.Time // GPU→CPU interrupt delivery time
	ResumeLatency    sim.Time // latency to wake a halted wavefront

	// PollDragPerWave is the fractional slowdown each actively-polling
	// wavefront imposes on compute issued from the same CU: polling burns
	// SIMD issue slots that a halted wavefront relinquishes (§V-C). 0
	// disables the effect.
	PollDragPerWave float64
}

// DefaultConfig returns an 8-CU, 40-wavefront/CU, SIMD-64 GPU at 758 MHz.
// 8×40×64 = 20480 active hardware work-items, matching the paper's
// 1.25 MiB syscall area of 64-byte slots.
func DefaultConfig() Config {
	return Config{
		CUs:              8,
		SIMDWidth:        64,
		WavefrontsPerCU:  40,
		ClockMHz:         758,
		LaunchOverhead:   20 * sim.Microsecond,
		InterruptLatency: 5 * sim.Microsecond,
		ResumeLatency:    15 * sim.Microsecond,
		PollDragPerWave:  0.08,
	}
}

// IRQHandler receives GPU→CPU interrupts; hwWave is the hardware
// wavefront slot that raised the interrupt and gen the slot generation
// of the wavefront occupying it (see Wavefront.Gen). Handlers run as
// engine callbacks and must not block.
type IRQHandler func(hwWave int, gen uint64)

// RetireHook is called when a wavefront retires and its hardware slot is
// about to be recycled; hwSlot and gen identify the retiring tenant.
// Hooks run as engine callbacks and must not block.
type RetireHook func(hwSlot int, gen uint64)

// Device is the simulated GPU.
type Device struct {
	e   *sim.Engine
	cfg Config

	irq    IRQHandler
	retire RetireHook

	cus      []*cu
	pending  []*KernelRun
	dispatch *sim.Cond

	// hwWaves maps hardware wavefront slot → resident wavefront.
	hwWaves []*Wavefront

	// slotGens counts tenants per hardware slot: entry hw is the
	// generation of the wavefront currently (or most recently) occupying
	// slot hw. Slot reuse after retirement bumps the generation, so a
	// (slot, generation) pair names one tenant uniquely for the lifetime
	// of the machine — the key the CPU side uses to keep doorbells and
	// watchdog aborts from landing on a successor wavefront.
	slotGens []uint64

	// events, when attached and enabled, receives wavefront run/halt
	// spans and interrupt instants (one trace-viewer thread per HW slot).
	events *obs.EventLog

	// Utilization tracks (SetUtilTracks): active CUs, resident waves,
	// halted waves, polling waves. All nil-safe.
	utilCUs     *obs.UtilTrack
	utilWaves   *obs.UtilTrack
	utilHalted  *obs.UtilTrack
	utilPolling *obs.UtilTrack

	KernelsLaunched sim.Counter
	WGsDispatched   sim.Counter
	Interrupts      sim.Counter
	Halts           sim.Counter
	Resumes         sim.Counter
}

type cu struct {
	id        int
	freeSlots []int // free hardware wavefront slot indices (LIFO)
	pollers   int   // wavefronts currently spinning on the syscall area
	resident  int   // wavefronts currently occupying slots
}

// New creates a GPU and starts its dispatcher daemon.
func New(e *sim.Engine, cfg Config) *Device {
	if cfg.CUs <= 0 || cfg.SIMDWidth <= 0 || cfg.WavefrontsPerCU <= 0 {
		panic("gpu: invalid config")
	}
	d := &Device{
		e:        e,
		cfg:      cfg,
		hwWaves:  make([]*Wavefront, cfg.CUs*cfg.WavefrontsPerCU),
		slotGens: make([]uint64, cfg.CUs*cfg.WavefrontsPerCU),
	}
	d.dispatch = sim.NewCond(e)
	for i := 0; i < cfg.CUs; i++ {
		c := &cu{id: i}
		for s := cfg.WavefrontsPerCU - 1; s >= 0; s-- {
			c.freeSlots = append(c.freeSlots, i*cfg.WavefrontsPerCU+s)
		}
		d.cus = append(d.cus, c)
	}
	e.SpawnDaemon("gpu-dispatcher", d.dispatcher)
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetIRQHandler registers the CPU-side interrupt handler.
func (d *Device) SetIRQHandler(h IRQHandler) { d.irq = h }

// SetRetireHook registers the wavefront-retirement callback (the orphan
// hand-off point for system calls still in flight at retirement).
func (d *Device) SetRetireHook(h RetireHook) { d.retire = h }

// SetEventLog attaches the machine's structured event log.
func (d *Device) SetEventLog(l *obs.EventLog) { d.events = l }

// SetUtilTracks attaches occupancy tracks: cus counts CUs with at least
// one resident wavefront, waves counts resident wavefronts, halted and
// polling count wavefronts in those wait states.
func (d *Device) SetUtilTracks(cus, waves, halted, polling *obs.UtilTrack) {
	d.utilCUs, d.utilWaves, d.utilHalted, d.utilPolling = cus, waves, halted, polling
}

// HWWorkItems returns the number of active hardware work-items the device
// can host — the number of slots a GENESYS syscall area needs.
func (d *Device) HWWorkItems() int {
	return d.cfg.CUs * d.cfg.WavefrontsPerCU * d.cfg.SIMDWidth
}

// HWWavefronts returns the number of hardware wavefront slots.
func (d *Device) HWWavefronts() int {
	return d.cfg.CUs * d.cfg.WavefrontsPerCU
}

// CyclesTime converts GPU cycles to virtual time.
func (d *Device) CyclesTime(cycles int64) sim.Time {
	return sim.Time(cycles * 1000 / int64(d.cfg.ClockMHz))
}

// Kernel describes a grid to launch.
type Kernel struct {
	Name string
	// WorkGroups is the number of work-groups in the grid.
	WorkGroups int
	// WGSize is the number of work-items per work-group (≤ 1024 on the
	// default config; must leave the wavefront count ≤ WavefrontsPerCU).
	WGSize int
	// Fn is the kernel body, executed once per wavefront.
	Fn func(*Wavefront)
	// Args is opaque kernel-wide state shared by all wavefronts.
	Args any
}

func (k *Kernel) wavesPerWG(simdWidth int) int {
	return (k.WGSize + simdWidth - 1) / simdWidth
}

// KernelRun tracks one launched kernel.
type KernelRun struct {
	Kernel
	dev        *Device
	nextWG     int
	doneWGs    int
	done       bool
	doneCond   *sim.Cond
	LaunchedAt sim.Time
	FinishedAt sim.Time

	// kernel-scope barrier state (GlobalBarrier)
	gbArrived int
	gbGen     int
	gbCond    *sim.Cond
}

// Launch submits k from a host CPU process, charging the launch overhead,
// and returns a handle to wait on.
func (d *Device) Launch(p *sim.Proc, k Kernel) *KernelRun {
	p.Sleep(d.cfg.LaunchOverhead)
	return d.LaunchAsync(k)
}

// LaunchAsync submits k without charging launch overhead to any process
// (e.g. from setup code or callbacks).
func (d *Device) LaunchAsync(k Kernel) *KernelRun {
	if k.WorkGroups <= 0 || k.WGSize <= 0 || k.Fn == nil {
		panic("gpu: invalid kernel " + k.Name)
	}
	if w := k.wavesPerWG(d.cfg.SIMDWidth); w > d.cfg.WavefrontsPerCU {
		panic(fmt.Sprintf("gpu: kernel %s work-group needs %d wavefront slots, CU has %d",
			k.Name, w, d.cfg.WavefrontsPerCU))
	}
	kr := &KernelRun{
		Kernel:     k,
		dev:        d,
		doneCond:   sim.NewCond(d.e),
		gbCond:     sim.NewCond(d.e),
		LaunchedAt: d.e.Now(),
	}
	d.pending = append(d.pending, kr)
	d.KernelsLaunched.Inc()
	d.dispatch.Broadcast()
	return kr
}

// Wait blocks p until the kernel has fully completed.
func (kr *KernelRun) Wait(p *sim.Proc) {
	for !kr.done {
		kr.doneCond.Wait(p, "kernel "+kr.Name+" completion")
	}
}

// Done reports whether the kernel has completed.
func (kr *KernelRun) Done() bool { return kr.done }

// Runtime returns the kernel's launch-to-finish duration (0 if unfinished).
func (kr *KernelRun) Runtime() sim.Time {
	if !kr.done {
		return 0
	}
	return kr.FinishedAt - kr.LaunchedAt
}

// dispatcher assigns pending work-groups to CUs with free wavefront slots.
func (d *Device) dispatcher(p *sim.Proc) {
	for {
		progress := d.tryDispatch()
		if !progress {
			d.dispatch.Wait(p, "gpu dispatcher idle")
		}
	}
}

// tryDispatch places as many work-groups as will fit; it reports whether
// any placement happened.
func (d *Device) tryDispatch() bool {
	progress := false
	for len(d.pending) > 0 {
		kr := d.pending[0]
		waves := kr.wavesPerWG(d.cfg.SIMDWidth)
		placed := false
		for _, c := range d.cus {
			if len(c.freeSlots) >= waves {
				d.startWG(kr, c)
				placed = true
				progress = true
				break
			}
		}
		if !placed {
			break // head-of-line blocking: in-order dispatch, like real queues
		}
		if kr.nextWG >= kr.WorkGroups {
			d.pending = d.pending[1:]
		}
	}
	return progress
}

// WorkGroup is one resident work-group.
type WorkGroup struct {
	Run *KernelRun
	ID  int

	cu    *cu
	waves []*Wavefront

	barGen   int
	barCount int
	barCond  *sim.Cond

	// Shared is scratch state shared by the work-group's wavefronts,
	// standing in for LDS.
	Shared map[string]any

	doneWaves int
}

func (d *Device) startWG(kr *KernelRun, c *cu) {
	wg := &WorkGroup{
		Run:     kr,
		ID:      kr.nextWG,
		cu:      c,
		barCond: sim.NewCond(d.e),
		Shared:  make(map[string]any),
	}
	kr.nextWG++
	d.WGsDispatched.Inc()
	waves := kr.wavesPerWG(d.cfg.SIMDWidth)
	remaining := kr.WGSize
	for i := 0; i < waves; i++ {
		lanes := d.cfg.SIMDWidth
		if remaining < lanes {
			lanes = remaining
		}
		remaining -= lanes
		slot := c.freeSlots[len(c.freeSlots)-1]
		c.freeSlots = c.freeSlots[:len(c.freeSlots)-1]
		d.slotGens[slot]++
		w := &Wavefront{
			WG:         wg,
			ID:         i,
			HWSlot:     slot,
			Gen:        d.slotGens[slot],
			Lanes:      lanes,
			dev:        d,
			resumeCond: sim.NewCond(d.e),
		}
		d.hwWaves[slot] = w
		wg.waves = append(wg.waves, w)
		d.utilWaves.Add(d.e.Now(), 1)
		c.resident++
		if c.resident == 1 {
			d.utilCUs.Add(d.e.Now(), 1)
		}
	}
	for _, w := range wg.waves {
		w := w
		name := fmt.Sprintf("%s/wg%d/wf%d", kr.Name, wg.ID, w.ID)
		d.e.Spawn(name, func(p *sim.Proc) {
			w.P = p
			start := d.e.Now()
			kr.Fn(w)
			d.events.Span("gpu", "wave "+name, obs.PIDGPU, w.HWSlot, start, d.e.Now())
			d.waveDone(w)
		})
	}
}

func (d *Device) waveDone(w *Wavefront) {
	wg := w.WG
	d.hwWaves[w.HWSlot] = nil
	if d.retire != nil {
		// Hand off before the slot re-enters the free list: system calls
		// the retiring wavefront left in flight must be adopted before a
		// successor tenant can be dispatched onto the same slot.
		d.retire(w.HWSlot, w.Gen)
	}
	wg.cu.freeSlots = append(wg.cu.freeSlots, w.HWSlot)
	d.utilWaves.Add(d.e.Now(), -1)
	wg.cu.resident--
	if wg.cu.resident == 0 {
		d.utilCUs.Add(d.e.Now(), -1)
	}
	wg.doneWaves++
	if wg.doneWaves == len(wg.waves) {
		kr := wg.Run
		kr.doneWGs++
		if kr.doneWGs == kr.WorkGroups {
			kr.done = true
			kr.FinishedAt = d.e.Now()
			kr.doneCond.Broadcast()
		}
	}
	d.dispatch.Broadcast()
}

// ResidentWave returns the wavefront currently occupying hardware slot
// hwWave, or nil.
func (d *Device) ResidentWave(hwWave int) *Wavefront {
	if hwWave < 0 || hwWave >= len(d.hwWaves) {
		return nil
	}
	return d.hwWaves[hwWave]
}

// SlotGeneration returns the generation of the wavefront currently (or,
// for a vacated slot, most recently) occupying hardware slot hwWave; 0
// means the slot has never been occupied.
func (d *Device) SlotGeneration(hwWave int) uint64 {
	if hwWave < 0 || hwWave >= len(d.slotGens) {
		return 0
	}
	return d.slotGens[hwWave]
}

// Resume wakes the wavefront halted in hardware slot hwWave, provided it
// is still the tenant of generation gen — a doorbell addressed to a
// retired generation is dropped rather than delivered to whatever
// wavefront has since been dispatched onto the recycled slot. Safe to
// call from engine callbacks (the CPU side). Resuming a non-halted,
// vacated or re-tenanted slot is a no-op, matching hardware doorbell
// semantics.
func (d *Device) Resume(hwWave int, gen uint64) {
	w := d.ResidentWave(hwWave)
	if w == nil || w.Gen != gen || !w.halted {
		return
	}
	d.Resumes.Inc()
	w.halted = false
	w.resumeCond.Broadcast()
}

// Wavefront is one resident SIMD-64 wavefront executing the kernel body.
type Wavefront struct {
	// P is the simulation process running this wavefront; set before the
	// kernel body is entered.
	P *sim.Proc
	// WG is the wavefront's work-group.
	WG *WorkGroup
	// ID is the wavefront index within the work-group.
	ID int
	// HWSlot is the hardware wavefront slot (indexes the syscall area).
	HWSlot int
	// Gen is the slot generation of this tenancy: HWSlot alone aliases
	// across kernels the moment the wavefront retires and the slot is
	// recycled, so everything the CPU side keys by hardware slot
	// (doorbells, retransmit watchdogs, resumes) carries (HWSlot, Gen).
	Gen uint64
	// Lanes is the number of active lanes (< SIMDWidth only in the last,
	// partial wavefront of a work-group).
	Lanes int

	dev        *Device
	halted     bool
	resumeCond *sim.Cond
	barWaiting bool
}

// Device returns the GPU this wavefront runs on.
func (w *Wavefront) Device() *Device { return w.dev }

// IsLeader reports whether this is wavefront 0 of its work-group — the
// conventional system-call leader for work-group-granularity invocation.
func (w *Wavefront) IsLeader() bool { return w.ID == 0 }

// IsKernelLeader reports whether this is wavefront 0 of work-group 0.
func (w *Wavefront) IsKernelLeader() bool { return w.ID == 0 && w.WG.ID == 0 }

// HWWorkItemID returns the hardware work-item ID of the given lane: the
// index of that lane's slot in the GENESYS syscall area.
func (w *Wavefront) HWWorkItemID(lane int) int {
	if lane < 0 || lane >= w.dev.cfg.SIMDWidth {
		panic("gpu: lane out of range")
	}
	return w.HWSlot*w.dev.cfg.SIMDWidth + lane
}

// GlobalWorkItemID returns the programmer-visible (grid-wide) work-item
// ID of the given lane.
func (w *Wavefront) GlobalWorkItemID(lane int) int {
	return w.WG.ID*w.WG.Run.WGSize + w.ID*w.dev.cfg.SIMDWidth + lane
}

// Compute advances the wavefront by the given number of GPU cycles.
func (w *Wavefront) Compute(cycles int64) {
	if cycles > 0 {
		w.ComputeTime(w.dev.CyclesTime(cycles))
	}
}

// ComputeTime advances the wavefront by d of execution, stretched by the
// issue-slot drag of any co-resident polling wavefronts.
func (w *Wavefront) ComputeTime(d sim.Time) {
	if d <= 0 {
		return
	}
	c := w.WG.cu
	if c.pollers > 0 && w.dev.cfg.PollDragPerWave > 0 {
		d = sim.Time(float64(d) * (1 + w.dev.cfg.PollDragPerWave*float64(c.pollers)))
	}
	w.P.Sleep(d)
}

// BeginPoll marks the wavefront as actively polling; co-resident
// wavefronts' compute slows until EndPoll.
func (w *Wavefront) BeginPoll() {
	w.WG.cu.pollers++
	w.dev.utilPolling.Add(w.dev.e.Now(), 1)
}

// EndPoll clears the polling mark.
func (w *Wavefront) EndPoll() {
	if w.WG.cu.pollers > 0 {
		w.WG.cu.pollers--
		w.dev.utilPolling.Add(w.dev.e.Now(), -1)
	}
}

// Barrier synchronizes all wavefronts of the work-group (the OpenCL
// work-group barrier). Every wavefront of the group must call it.
func (w *Wavefront) Barrier() {
	wg := w.WG
	gen := wg.barGen
	wg.barCount++
	if wg.barCount == len(wg.waves) {
		wg.barCount = 0
		wg.barGen++
		wg.barCond.Broadcast()
		return
	}
	for wg.barGen == gen {
		wg.barCond.Wait(w.P, fmt.Sprintf("wg barrier (%s/wg%d)", wg.Run.Name, wg.ID))
	}
}

// GlobalBarrier attempts a kernel-wide barrier across all work-groups.
// This is the non-portable inter-work-group barrier the paper warns
// about: because work-groups are not preemptible, the barrier DEADLOCKS
// whenever the kernel has more work-groups than can be co-resident —
// the reason strong ordering is forbidden at kernel-scope invocation
// granularity (§V-A).
func (w *Wavefront) GlobalBarrier() {
	kr := w.WG.Run
	gen := kr.gbGen
	total := kr.WorkGroups * kr.wavesPerWG(w.dev.cfg.SIMDWidth)
	kr.gbArrived++
	if kr.gbArrived == total {
		kr.gbArrived = 0
		kr.gbGen++
		kr.gbCond.Broadcast()
		return
	}
	for kr.gbGen == gen {
		kr.gbCond.Wait(w.P, fmt.Sprintf("kernel-scope barrier (%s)", kr.Name))
	}
}

// Interrupt raises a GPU→CPU interrupt carrying this wavefront's hardware
// slot ID and slot generation (the s_sendmsg path). Delivery takes
// InterruptLatency; the handler runs as an engine callback on the
// allocation-free CallAfter fast path — the doorbell is the hottest hop
// in the system (one per invocation, more under retransmission).
func (w *Wavefront) Interrupt() {
	w.dev.Interrupts.Inc()
	d := w.dev
	hw, gen := w.HWSlot, w.Gen
	d.events.Instant("gpu", "irq", obs.PIDGPU, hw, d.e.Now())
	d.e.CallAfter(d.cfg.InterruptLatency, func() {
		if d.irq != nil {
			d.irq(hw, gen)
		}
	})
}

// Halt suspends the wavefront, relinquishing its SIMD resources, until
// the CPU calls Device.Resume on its hardware slot. The resume latency is
// charged on wake-up.
func (w *Wavefront) Halt() {
	w.dev.Halts.Inc()
	start := w.dev.e.Now()
	w.halted = true
	w.dev.utilHalted.Add(start, 1)
	for w.halted {
		w.resumeCond.Wait(w.P, fmt.Sprintf("halted wavefront hw%d", w.HWSlot))
	}
	w.P.Sleep(w.dev.cfg.ResumeLatency)
	w.dev.utilHalted.Add(w.dev.e.Now(), -1)
	w.dev.events.Span("gpu", "halt", obs.PIDGPU, w.HWSlot, start, w.dev.e.Now())
}

// Halted reports whether the wavefront is currently halted.
func (w *Wavefront) Halted() bool { return w.halted }
