package sig

import (
	"testing"

	"genesys/internal/sim"
)

func TestQueueAndWait(t *testing.T) {
	e := sim.NewEngine(1)
	st := NewState(e)
	var got []int64
	e.Spawn("handler", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			si := st.Wait(p)
			got = append(got, si.Value)
		}
	})
	e.Spawn("sender", func(p *sim.Proc) {
		for i := int64(1); i <= 3; i++ {
			p.Sleep(10 * sim.Microsecond)
			st.Queue(Siginfo{Signo: SIGUSR1, Value: i})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if st.Delivered.Value() != 3 {
		t.Fatalf("delivered = %d", st.Delivered.Value())
	}
}

func TestSignalsQueueWithoutHandler(t *testing.T) {
	e := sim.NewEngine(1)
	st := NewState(e)
	for i := 0; i < 5; i++ {
		st.Queue(Siginfo{Signo: SIGRTMIN, Value: int64(i)})
	}
	if st.Pending() != 5 {
		t.Fatalf("pending = %d", st.Pending())
	}
	si, ok := st.TryWait()
	if !ok || si.Value != 0 {
		t.Fatalf("TryWait = %+v, %v", si, ok)
	}
	if st.Pending() != 4 {
		t.Fatalf("pending after TryWait = %d", st.Pending())
	}
}

func TestSentAtStamped(t *testing.T) {
	e := sim.NewEngine(1)
	st := NewState(e)
	e.Spawn("sender", func(p *sim.Proc) {
		p.Sleep(42 * sim.Microsecond)
		st.Queue(Siginfo{Signo: SIGUSR2})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	si, _ := st.TryWait()
	if si.SentAt != 42*sim.Microsecond {
		t.Fatalf("SentAt = %v", si.SentAt)
	}
}
