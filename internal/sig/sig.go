// Package sig models POSIX queued signals (the rt_sigqueueinfo path):
// per-process signal queues carrying a siginfo payload, consumed by
// CPU-side handler threads. This is the substrate for the paper's
// signal-search case study (§VIII-B), where GPU work-groups notify the
// CPU of partial completions so checksum work can overlap the search.
package sig

import (
	"genesys/internal/sim"
)

// Common signal numbers.
const (
	SIGUSR1  = 10
	SIGUSR2  = 12
	SIGRTMIN = 34
)

// Siginfo is the payload delivered with a queued signal, mirroring the
// fields of siginfo_t that rt_sigqueueinfo lets the sender fill: the
// paper's workload passes the completed work-group's identifier in
// si_value (§VIII-B).
type Siginfo struct {
	Signo  int
	Pid    int   // sending process
	Value  int64 // si_value payload
	SentAt sim.Time
}

// State is one process's signal state.
type State struct {
	e     *sim.Engine
	queue *sim.Queue[Siginfo]

	Delivered sim.Counter
}

// NewState returns empty signal state for one process.
func NewState(e *sim.Engine) *State {
	return &State{e: e, queue: sim.NewQueue[Siginfo](e, "signals", 0)}
}

// Queue delivers a signal (callable from callbacks and procs alike).
func (s *State) Queue(si Siginfo) {
	si.SentAt = s.e.Now()
	s.queue.TryPut(si)
	s.Delivered.Inc()
}

// Wait blocks until a signal is queued and returns it (sigwaitinfo).
func (s *State) Wait(p *sim.Proc) Siginfo {
	return s.queue.Get(p)
}

// TryWait returns a pending signal without blocking.
func (s *State) TryWait() (Siginfo, bool) {
	return s.queue.TryGet()
}

// Pending returns the number of queued signals.
func (s *State) Pending() int { return s.queue.Len() }
