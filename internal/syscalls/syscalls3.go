package syscalls

import (
	"strings"

	"genesys/internal/errno"
)

// Third wave: directory manipulation and the per-process working
// directory ("files in /proc to query process environments" and friends
// all assume these basics, §IV).
const (
	SYS_getcwd = 79
	SYS_chdir  = 80
	SYS_rename = 82
	SYS_mkdir  = 83
	SYS_rmdir  = 84
)

func init() {
	table[SYS_getcwd] = sysGetcwd
	table[SYS_chdir] = sysChdir
	table[SYS_rename] = sysRename
	table[SYS_mkdir] = sysMkdir
	table[SYS_rmdir] = sysRmdir
}

// abs resolves path against the borrowed process's working directory.
func (c *Ctx) abs(path string) string {
	if strings.HasPrefix(path, "/") {
		return path
	}
	cwd := c.Proc.CWD
	if cwd == "" {
		cwd = "/"
	}
	if cwd == "/" {
		return "/" + path
	}
	return cwd + "/" + path
}

func sysGetcwd(c *Ctx, r *Request) {
	cwd := c.Proc.CWD
	if cwd == "" {
		cwd = "/"
	}
	if len(r.Buf) < len(cwd) {
		fail(r, errno.ERANGE)
		return
	}
	copy(r.Buf, cwd)
	r.Ret = int64(len(cwd))
}

func sysChdir(c *Ctx, r *Request) {
	path := c.abs(cstr(r.Buf))
	if _, err := c.OS.VFS.ResolveDir(path); err != nil {
		fail(r, err)
		return
	}
	c.Proc.CWD = path
}

// sysRename: Buf holds "oldpath\x00newpath".
func sysRename(c *Ctx, r *Request) {
	parts := strings.SplitN(string(r.Buf), "\x00", 3)
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		fail(r, errno.EINVAL)
		return
	}
	if err := c.OS.VFS.Rename(c.abs(parts[0]), c.abs(cstr([]byte(parts[1])))); err != nil {
		fail(r, err)
	}
}

func sysMkdir(c *Ctx, r *Request) {
	if err := c.OS.VFS.Mkdir(c.abs(cstr(r.Buf))); err != nil {
		fail(r, err)
	}
}

func sysRmdir(c *Ctx, r *Request) {
	path := c.abs(cstr(r.Buf))
	if _, err := c.OS.VFS.ResolveDir(path); err != nil {
		fail(r, err)
		return
	}
	if err := c.OS.VFS.Unlink(path); err != nil {
		fail(r, err)
	}
}
