package syscalls

import (
	"strings"
	"testing"

	"genesys/internal/errno"
	"genesys/internal/fs"
)

// TestBadDescriptorPaths drives every fd-taking syscall with a bad
// descriptor and asserts EBADF comes back through the dispatch layer.
func TestBadDescriptorPaths(t *testing.T) {
	ev := newEnv(t)
	const badFD = 77
	for _, nr := range []int{SYS_write, SYS_read, SYS_pread64, SYS_pwrite64,
		SYS_lseek, SYS_ioctl, SYS_close, SYS_dup, SYS_fsync, SYS_ftruncate,
		SYS_fstat, SYS_bind, SYS_sendto, SYS_recvfrom} {
		r := &Request{NR: nr, Args: [6]uint64{badFD, 4}, Buf: make([]byte, 32)}
		ev.call(t, r)
		if r.Err != errno.EBADF || r.Ret != -1 {
			t.Fatalf("syscall %d with bad fd = %v (ret %d), want EBADF/-1",
				nr, r.Err, r.Ret)
		}
	}
}

func TestWriteOnReadOnlyAndViceVersa(t *testing.T) {
	ev := newEnv(t)
	op := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_WRONLY}, Buf: []byte("/tmp/ro")}
	ev.call(t, op)
	wr := &Request{NR: SYS_read, Args: [6]uint64{uint64(op.Ret), 4}, Buf: make([]byte, 4)}
	ev.call(t, wr)
	if wr.Err != errno.EBADF {
		t.Fatalf("read on O_WRONLY = %v", wr.Err)
	}
	op2 := &Request{NR: SYS_open, Args: [6]uint64{fs.O_RDONLY}, Buf: []byte("/tmp/ro")}
	ev.call(t, op2)
	w2 := &Request{NR: SYS_pwrite64, Args: [6]uint64{uint64(op2.Ret), 1, 0}, Buf: []byte("x")}
	ev.call(t, w2)
	if w2.Err != errno.EBADF {
		t.Fatalf("pwrite on O_RDONLY = %v", w2.Err)
	}
}

func TestMunmapAndMadviseErrors(t *testing.T) {
	ev := newEnv(t)
	mu := &Request{NR: SYS_munmap, Args: [6]uint64{0xdeadbeef, 4096}}
	ev.call(t, mu)
	if mu.Err != errno.EINVAL {
		t.Fatalf("munmap of unmapped = %v", mu.Err)
	}
	ma := &Request{NR: SYS_madvise, Args: [6]uint64{0xdeadbeef, 4096, 4}}
	ev.call(t, ma)
	if ma.Err != errno.EFAULT {
		t.Fatalf("madvise of unmapped = %v", ma.Err)
	}
	ru := &Request{NR: SYS_getrusage, Buf: make([]byte, 3)}
	ev.call(t, ru)
	if ru.Err != errno.EINVAL {
		t.Fatalf("short getrusage buffer = %v", ru.Err)
	}
}

func TestLseekAndIoctlErrors(t *testing.T) {
	ev := newEnv(t)
	op := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_RDWR}, Buf: []byte("/tmp/f")}
	ev.call(t, op)
	bad := &Request{NR: SYS_lseek, Args: [6]uint64{uint64(op.Ret), 0, 42}}
	ev.call(t, bad)
	if bad.Err != errno.EINVAL {
		t.Fatalf("bad whence = %v", bad.Err)
	}
	io := &Request{NR: SYS_ioctl, Args: [6]uint64{uint64(op.Ret), 1}}
	ev.call(t, io)
	if io.Err != errno.ENOTTY {
		t.Fatalf("ioctl on regular file = %v", io.Err)
	}
}

func TestBindErrors(t *testing.T) {
	ev := newEnv(t)
	s1 := &Request{NR: SYS_socket}
	s2 := &Request{NR: SYS_socket}
	ev.callSeq(t, s1, s2)
	b1 := &Request{NR: SYS_bind, Args: [6]uint64{uint64(s1.Ret), 5555}}
	b2 := &Request{NR: SYS_bind, Args: [6]uint64{uint64(s2.Ret), 5555}}
	ev.callSeq(t, b1, b2)
	if b1.Err != errno.OK || b2.Err != errno.EADDRINUSE {
		t.Fatalf("bind results: %v, %v", b1.Err, b2.Err)
	}
	nb := &Request{NR: SYS_bind, Args: [6]uint64{1, 5556}} // stdout is not a socket
	ev.call(t, nb)
	if nb.Err != errno.ENOTSOCK {
		t.Fatalf("bind on non-socket = %v", nb.Err)
	}
}

func TestClassificationSummaryRenders(t *testing.T) {
	out := ClassificationSummary()
	for _, want := range []string{"333 total", "readily-implementable",
		"79.0%", "implemented in this GENESYS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestUnameAndFtruncateErrors(t *testing.T) {
	ev := newEnv(t)
	un := &Request{NR: SYS_uname, Buf: make([]byte, 4)}
	ev.call(t, un)
	if un.Err != errno.EINVAL {
		t.Fatalf("short uname buffer = %v", un.Err)
	}
	// ftruncate on a socket (no Node).
	sk := &Request{NR: SYS_socket}
	ev.call(t, sk)
	tr := &Request{NR: SYS_ftruncate, Args: [6]uint64{uint64(sk.Ret), 0}}
	ev.call(t, tr)
	if tr.Err != errno.EINVAL {
		t.Fatalf("ftruncate on socket = %v", tr.Err)
	}
}
