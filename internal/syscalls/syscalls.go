// Package syscalls implements the simulated kernel's system call layer:
// Linux x86-64 syscall numbers, the dispatch table, the implementations
// of every system call the paper exercises through GENESYS (filesystem,
// networking, memory management, signals, resource querying and device
// control — §IV "Readily-implementable"), and the classification of the
// full Linux syscall table that Section IV and Table II summarize.
package syscalls

import (
	"encoding/binary"

	"genesys/internal/cpu"
	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/fs"
	"genesys/internal/netstack"
	"genesys/internal/obs"
	"genesys/internal/oskern"
	"genesys/internal/sig"
	"genesys/internal/sim"
	"genesys/internal/vmm"
)

// Linux x86-64 system call numbers for the calls GENESYS implements.
const (
	SYS_read            = 0
	SYS_write           = 1
	SYS_open            = 2
	SYS_close           = 3
	SYS_lseek           = 8
	SYS_mmap            = 9
	SYS_munmap          = 11
	SYS_ioctl           = 16
	SYS_pread64         = 17
	SYS_pwrite64        = 18
	SYS_madvise         = 28
	SYS_socket          = 41
	SYS_sendto          = 44
	SYS_recvfrom        = 45
	SYS_bind            = 49
	SYS_getrusage       = 98
	SYS_rt_sigqueueinfo = 129
)

// Request is one system call as staged in a GENESYS syscall-area slot:
// the call number, up to six integer arguments, and the associated
// syscall buffer (the shared-memory data area the paper describes in
// §VI): the data source for writes, the destination for reads, and the
// in/out argument struct for ioctl and getrusage.
type Request struct {
	NR   int
	Args [6]uint64
	Buf  []byte

	// Results, filled by Dispatch.
	Ret int64
	Err errno.Errno

	// OutArgs carries out-of-band result arguments (e.g. recvfrom's
	// source port).
	OutArgs [2]uint64

	// Trace is the causal trace ID GENESYS assigned at slot-claim time
	// (0 for untraced host-side calls). Dispatch propagates it into the
	// back-end spans the call generates.
	Trace uint64
}

// Ctx is the execution context of a system call: the OS worker thread
// (or CPU application thread) executing it, and the process whose
// context it borrows — GPU threads have no kernel representation, so
// every GPU system call runs against the task struct of the CPU process
// that launched the kernel (§VI).
type Ctx struct {
	P    *sim.Proc
	OS   *oskern.OS
	Proc *oskern.Process

	// Events, when attached, receives back-end spans (storage transfers,
	// socket operations) linked by Trace — the trace ID of the request
	// currently being dispatched.
	Events *obs.EventLog
	Trace  uint64
}

func (c *Ctx) io() *fs.IOCtx {
	return &fs.IOCtx{P: c.P, CPU: c.OS.CPU, Prio: cpu.PrioKernel,
		Events: c.Events, Trace: c.Trace}
}

// Handler implements one system call.
type Handler func(c *Ctx, r *Request)

var table = map[int]Handler{
	SYS_read:            sysRead,
	SYS_write:           sysWrite,
	SYS_open:            sysOpen,
	SYS_close:           sysClose,
	SYS_lseek:           sysLseek,
	SYS_mmap:            sysMmap,
	SYS_munmap:          sysMunmap,
	SYS_ioctl:           sysIoctl,
	SYS_pread64:         sysPread,
	SYS_pwrite64:        sysPwrite,
	SYS_madvise:         sysMadvise,
	SYS_socket:          sysSocket,
	SYS_sendto:          sysSendto,
	SYS_recvfrom:        sysRecvfrom,
	SYS_bind:            sysBind,
	SYS_getrusage:       sysGetrusage,
	SYS_rt_sigqueueinfo: sysRtSigqueueinfo,
}

// Implemented reports whether nr has a handler.
func Implemented(nr int) bool {
	_, ok := table[nr]
	return ok
}

// ImplementedCount returns the number of implemented system calls.
func ImplementedCount() int { return len(table) }

// Dispatch executes the request against ctx, filling Ret and Err.
// Functional effects are real (bytes move, sockets queue, pages free);
// time is charged to ctx.P by the underlying substrates.
func Dispatch(c *Ctx, r *Request) {
	h, ok := table[r.NR]
	if !ok {
		r.Ret, r.Err = -1, errno.ENOSYS
		return
	}
	c.Trace = r.Trace
	c.OS.Syscalls.Inc()
	if rule, hit := c.OS.Inject.Fire(fault.SyscallErrno); hit {
		// Injected transient failure: the call fails before its handler
		// runs, exactly as an interrupted or resource-starved kernel path
		// would. Restartable callers (gclib, the non-blocking kernel-side
		// restart) absorb it; others see a well-formed errno.
		r.Ret, r.Err = -1, injectedErrno(c.OS.Inject, rule)
		return
	}
	r.Err = errno.OK
	h(c, r)
	if r.Err != errno.OK {
		r.Ret = -1
	}
}

// injectedErrno picks the transient errno for a SyscallErrno injection:
// the rule's Param if it names one, else a deterministic rotation over
// EINTR / EAGAIN / ENOMEM.
func injectedErrno(in *fault.Injector, rule fault.Rule) errno.Errno {
	switch errno.Errno(rule.Param) {
	case errno.EINTR, errno.EAGAIN, errno.ENOMEM:
		return errno.Errno(rule.Param)
	}
	return [3]errno.Errno{errno.EINTR, errno.EAGAIN, errno.ENOMEM}[in.Pick(3)]
}

func fail(r *Request, err error) {
	r.Err = errno.Of(err)
}

// cstr interprets b as a NUL-terminated pathname (C-string semantics:
// anything past the first zero byte is ignored).
func cstr(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// --- filesystem ---

func sysRead(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	count := int(r.Args[1])
	if count > len(r.Buf) {
		count = len(r.Buf)
	}
	n, err := f.Read(c.io(), r.Buf[:count])
	if err != nil {
		fail(r, err)
		return
	}
	r.Ret = int64(n)
}

func sysWrite(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	count := int(r.Args[1])
	if count > len(r.Buf) {
		count = len(r.Buf)
	}
	n, err := f.Write(c.io(), r.Buf[:count])
	if err != nil {
		fail(r, err)
		return
	}
	r.Ret = int64(n)
}

func sysPread(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	count := int(r.Args[1])
	if count > len(r.Buf) {
		count = len(r.Buf)
	}
	n, err := f.Pread(c.io(), r.Buf[:count], int64(r.Args[2]))
	if err != nil {
		fail(r, err)
		return
	}
	r.Ret = int64(n)
}

func sysPwrite(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	count := int(r.Args[1])
	if count > len(r.Buf) {
		count = len(r.Buf)
	}
	n, err := f.Pwrite(c.io(), r.Buf[:count], int64(r.Args[2]))
	if err != nil {
		fail(r, err)
		return
	}
	r.Ret = int64(n)
}

// sysOpen expects the NUL-free pathname in Buf and flags in Args[0].
func sysOpen(c *Ctx, r *Request) {
	path := c.abs(cstr(r.Buf))
	flags := int(r.Args[0])
	f, err := c.OS.VFS.Open(path, flags)
	if err != nil {
		fail(r, err)
		return
	}
	fd, err := c.Proc.FDs.Install(f)
	if err != nil {
		fail(r, err)
		return
	}
	r.Ret = int64(fd)
}

func sysClose(c *Ctx, r *Request) {
	fd := int(int64(r.Args[0]))
	f, err := c.Proc.FDs.Get(fd)
	if err != nil {
		fail(r, err)
		return
	}
	if sock, ok := f.Special.(*netstack.Socket); ok {
		sock.Close()
	}
	if fs.IsPipe(f) {
		fs.ClosePipeEnd(f)
	}
	if err := c.Proc.FDs.Close(fd); err != nil {
		fail(r, err)
	}
}

func sysLseek(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	pos, err := f.Lseek(int64(r.Args[1]), int(r.Args[2]))
	if err != nil {
		fail(r, err)
		return
	}
	r.Ret = pos
}

func sysIoctl(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	ret, err := f.Ioctl(c.io(), r.Args[1], r.Buf)
	if err != nil {
		fail(r, err)
		return
	}
	r.Ret = int64(ret)
}

// --- memory management ---

// sysMmap: Args = [addrHint, length, prot, flags, fd, offset]. A
// non-negative fd maps the device backing that descriptor; fd
// 0xffffffffffffffff (i.e. -1) with MAP_ANONYMOUS semantics maps
// anonymous memory.
func sysMmap(c *Ctx, r *Request) {
	length := int64(r.Args[1])
	fd := int(int64(r.Args[4]))
	if fd >= 0 {
		f, err := c.Proc.FDs.Get(fd)
		if err != nil {
			fail(r, err)
			return
		}
		if f.Device == nil || f.Device.MmapBuffer() == nil {
			fail(r, errno.ENODEV)
			return
		}
		addr, err := c.Proc.MM.MmapDevice(f.Device.MmapBuffer())
		if err != nil {
			fail(r, err)
			return
		}
		r.Ret = int64(addr)
		return
	}
	addr, err := c.Proc.MM.Mmap(length)
	if err != nil {
		fail(r, err)
		return
	}
	r.Ret = int64(addr)
}

func sysMunmap(c *Ctx, r *Request) {
	if err := c.Proc.MM.Munmap(c.P, r.Args[0], int64(r.Args[1])); err != nil {
		fail(r, err)
	}
}

func sysMadvise(c *Ctx, r *Request) {
	err := c.Proc.MM.Madvise(c.P, r.Args[0], int64(r.Args[1]), int(r.Args[2]))
	if err != nil {
		fail(r, err)
	}
}

// RusageSize is the encoded size of the getrusage reply.
const RusageSize = 40

// EncodeRusage packs the usage struct into a 40-byte buffer.
func EncodeRusage(u vmm.Rusage) []byte {
	b := make([]byte, RusageSize)
	binary.LittleEndian.PutUint64(b[0:], uint64(u.MaxRSSBytes))
	binary.LittleEndian.PutUint64(b[8:], uint64(u.RSSBytes))
	binary.LittleEndian.PutUint64(b[16:], uint64(u.MinorFaults))
	binary.LittleEndian.PutUint64(b[24:], uint64(u.MajorFaults))
	binary.LittleEndian.PutUint64(b[32:], uint64(u.SwapOuts))
	return b
}

// DecodeRusage unpacks a getrusage reply.
func DecodeRusage(b []byte) (vmm.Rusage, error) {
	if len(b) < RusageSize {
		return vmm.Rusage{}, errno.EINVAL
	}
	return vmm.Rusage{
		MaxRSSBytes: int64(binary.LittleEndian.Uint64(b[0:])),
		RSSBytes:    int64(binary.LittleEndian.Uint64(b[8:])),
		MinorFaults: int64(binary.LittleEndian.Uint64(b[16:])),
		MajorFaults: int64(binary.LittleEndian.Uint64(b[24:])),
		SwapOuts:    int64(binary.LittleEndian.Uint64(b[32:])),
	}, nil
}

// RUSAGE_GPU asks getrusage to report the attached GPU's resource usage —
// the adaptation the paper suggests in §IV ("getrusage can be adapted to
// return information about GPU resource usage").
const RUSAGE_GPU = 100

// GPURusageSize is the encoded size of the RUSAGE_GPU reply.
const GPURusageSize = 48

// GPURusage reports accelerator usage counters.
type GPURusage struct {
	KernelsLaunched int64
	WGsDispatched   int64
	Interrupts      int64
	Halts           int64
	Resumes         int64
	Syscalls        int64
}

// EncodeGPURusage packs the GPU usage struct.
func EncodeGPURusage(u GPURusage) []byte {
	b := make([]byte, GPURusageSize)
	for i, v := range []int64{u.KernelsLaunched, u.WGsDispatched, u.Interrupts,
		u.Halts, u.Resumes, u.Syscalls} {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

// DecodeGPURusage unpacks a RUSAGE_GPU reply.
func DecodeGPURusage(b []byte) (GPURusage, error) {
	if len(b) < GPURusageSize {
		return GPURusage{}, errno.EINVAL
	}
	get := func(i int) int64 { return int64(binary.LittleEndian.Uint64(b[8*i:])) }
	return GPURusage{
		KernelsLaunched: get(0), WGsDispatched: get(1), Interrupts: get(2),
		Halts: get(3), Resumes: get(4), Syscalls: get(5),
	}, nil
}

func sysGetrusage(c *Ctx, r *Request) {
	if int(r.Args[0]) == RUSAGE_GPU {
		if c.OS.GPU == nil {
			fail(r, errno.ENODEV)
			return
		}
		if len(r.Buf) < GPURusageSize {
			fail(r, errno.EINVAL)
			return
		}
		d := c.OS.GPU
		copy(r.Buf, EncodeGPURusage(GPURusage{
			KernelsLaunched: d.KernelsLaunched.Value(),
			WGsDispatched:   d.WGsDispatched.Value(),
			Interrupts:      d.Interrupts.Value(),
			Halts:           d.Halts.Value(),
			Resumes:         d.Resumes.Value(),
			Syscalls:        c.OS.Syscalls.Value(),
		}))
		return
	}
	if len(r.Buf) < RusageSize {
		fail(r, errno.EINVAL)
		return
	}
	copy(r.Buf, EncodeRusage(c.Proc.MM.Usage()))
}

// --- signals ---

// sysRtSigqueueinfo: Args = [pid, signo, si_value].
func sysRtSigqueueinfo(c *Ctx, r *Request) {
	target, ok := c.OS.Lookup(int(r.Args[0]))
	if !ok {
		fail(r, errno.ENOENT)
		return
	}
	target.Sig.Queue(sig.Siginfo{
		Signo: int(r.Args[1]),
		Pid:   c.Proc.PID,
		Value: int64(r.Args[2]),
	})
}

// --- networking ---

// sysSocket: Args = [type] (0 = SOCK_DGRAM, 1 = SOCK_STREAM).
func sysSocket(c *Ctx, r *Request) {
	var sock *netstack.Socket
	var path string
	switch netstack.SockType(r.Args[0]) {
	case netstack.Dgram:
		sock, path = c.OS.Net.NewSocket(), "socket:[udp]"
	case netstack.Stream:
		sock, path = c.OS.Net.NewStreamSocket(), "socket:[tcp]"
	default:
		fail(r, errno.EINVAL)
		return
	}
	f := &fs.File{Special: sock, Path: path}
	fd, err := c.Proc.FDs.Install(f)
	if err != nil {
		sock.Close()
		fail(r, err)
		return
	}
	r.Ret = int64(fd)
}

func socketOf(c *Ctx, fd int) (*netstack.Socket, error) {
	f, err := c.Proc.FDs.Get(fd)
	if err != nil {
		return nil, err
	}
	sock, ok := f.Special.(*netstack.Socket)
	if !ok {
		return nil, errno.ENOTSOCK
	}
	return sock, nil
}

// sysBind: Args = [fd, port].
func sysBind(c *Ctx, r *Request) {
	sock, err := socketOf(c, int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	if err := sock.Bind(int(r.Args[1])); err != nil {
		fail(r, err)
	}
}

// sysSendto: Args = [fd, count, flags, _, dstPort]; payload in Buf.
func sysSendto(c *Ctx, r *Request) {
	sock, err := socketOf(c, int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	count := int(r.Args[1])
	if count > len(r.Buf) {
		count = len(r.Buf)
	}
	t0 := c.OS.E.Now()
	if sock.Type() == netstack.Stream {
		// send(2): dstPort ignored, blocks for window space, writes all.
		n, serr := sock.Send(c.P, r.Buf[:count])
		if serr != nil && n == 0 {
			fail(r, serr)
			return
		}
		netSpan(c, "send", r, sock.Port(), t0)
		r.Ret = int64(n)
		return
	}
	if err := sock.SendTo(int(r.Args[4]), r.Buf[:count]); err != nil {
		fail(r, err)
		return
	}
	netSpan(c, "sendto", r, sock.Port(), t0)
	r.Ret = int64(count)
}

// netSpan records a socket operation on the netstack process's timeline,
// linked into the call's causal flow chain when it carries a trace ID.
func netSpan(c *Ctx, op string, r *Request, port int, t0 sim.Time) {
	if !c.Events.CaptureActive() {
		return
	}
	fp, fn := obs.FlowNone, ""
	if r.Trace != 0 {
		fp, fn = obs.FlowStep, Name(r.NR)
	}
	c.Events.FlowSpan("netstack", op, obs.PIDNetstack, port,
		t0, c.OS.E.Now(), r.Trace, fp, fn)
}

// sysRecvfrom: Args = [fd, count, timeout_ns]; the payload lands in Buf
// and the source port in OutArgs[0]. Blocks until a datagram arrives, or
// — when Args[2] carries a receive timeout (SO_RCVTIMEO-style) — fails
// with EAGAIN at the deadline.
func sysRecvfrom(c *Ctx, r *Request) {
	sock, err := socketOf(c, int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	t0 := c.OS.E.Now()
	if sock.Type() == netstack.Stream {
		count := int(r.Args[1])
		if count > len(r.Buf) || count == 0 {
			count = len(r.Buf)
		}
		n, rerr := sock.RecvTimeout(c.P, r.Buf[:count], sim.Time(r.Args[2]))
		if rerr != nil {
			fail(r, rerr)
			return
		}
		netSpan(c, "recv", r, sock.Port(), t0)
		r.Ret = int64(n)
		r.OutArgs[0] = uint64(sock.RemotePort())
		return
	}
	dg, err := sock.RecvFromTimeout(c.P, sim.Time(r.Args[2]))
	if err != nil {
		fail(r, err)
		return
	}
	netSpan(c, "recvfrom", r, sock.Port(), t0)
	n := copy(r.Buf, dg.Data)
	c.OS.Net.PutBuf(dg.Data) // fully copied out; recycle the payload
	r.Ret = int64(n)
	r.OutArgs[0] = uint64(dg.SrcPort)
}
