package syscalls

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"genesys/internal/errno"
	"genesys/internal/fs"
	"genesys/internal/sim"
)

func TestStatAndFstat(t *testing.T) {
	ev := newEnv(t)
	open := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_RDWR}, Buf: []byte("/tmp/s")}
	ev.call(t, open)
	fd := uint64(open.Ret)
	wr := &Request{NR: SYS_write, Args: [6]uint64{fd, 7}, Buf: []byte("7 bytes")}
	stBuf := make([]byte, StatSize+len("/tmp/s"))
	copy(stBuf[StatSize:], "/tmp/s")
	st := &Request{NR: SYS_stat, Buf: stBuf}
	fstBuf := make([]byte, StatSize)
	fst := &Request{NR: SYS_fstat, Args: [6]uint64{fd}, Buf: fstBuf}
	ev.callSeq(t, wr, st, fst)
	size, isDir, err := DecodeStat(stBuf)
	if err != nil || size != 7 || isDir {
		t.Fatalf("stat = %d, %v, %v", size, isDir, err)
	}
	size, _, _ = DecodeStat(fstBuf)
	if size != 7 {
		t.Fatalf("fstat size = %d", size)
	}
	// stat of a directory
	dirBuf := make([]byte, StatSize+4)
	copy(dirBuf[StatSize:], "/tmp")
	std := &Request{NR: SYS_stat, Buf: dirBuf}
	ev.call(t, std)
	if _, isDir, _ = DecodeStat(dirBuf); !isDir {
		t.Fatal("stat(/tmp) not a dir")
	}
	// stat of missing path
	missBuf := make([]byte, StatSize+8)
	copy(missBuf[StatSize:], "/tmp/nox")
	miss := &Request{NR: SYS_stat, Buf: missBuf}
	ev.call(t, miss)
	if miss.Err != errno.ENOENT {
		t.Fatalf("stat missing = %v", miss.Err)
	}
}

func TestDupSharesOffset(t *testing.T) {
	ev := newEnv(t)
	open := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_RDWR}, Buf: []byte("/tmp/d")}
	ev.call(t, open)
	fd := uint64(open.Ret)
	dup := &Request{NR: SYS_dup, Args: [6]uint64{fd}}
	wr := &Request{NR: SYS_write, Args: [6]uint64{fd, 3}, Buf: []byte("abc")}
	ev.callSeq(t, dup, wr)
	fd2 := uint64(dup.Ret)
	// Writing via the dup continues at the shared offset.
	wr2 := &Request{NR: SYS_write, Args: [6]uint64{fd2, 3}, Buf: []byte("def")}
	ev.call(t, wr2)
	f, _ := ev.pr.FDs.Get(int(fd))
	if f.Pos() != 6 {
		t.Fatalf("shared offset = %d, want 6", f.Pos())
	}
	data := make([]byte, 8)
	rd := &Request{NR: SYS_pread64, Args: [6]uint64{fd, 6, 0}, Buf: data}
	ev.call(t, rd)
	if string(data[:6]) != "abcdef" {
		t.Fatalf("content = %q", data[:6])
	}
}

func TestReadvWritev(t *testing.T) {
	ev := newEnv(t)
	open := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_RDWR}, Buf: []byte("/tmp/v")}
	ev.call(t, open)
	fd := uint64(open.Ret)
	// writev of two segments: "hello" (5) and "world!" (6).
	buf := make([]byte, 16+11)
	binary.LittleEndian.PutUint64(buf[0:], 5)
	binary.LittleEndian.PutUint64(buf[8:], 6)
	copy(buf[16:], "helloworld!")
	wv := &Request{NR: SYS_writev, Args: [6]uint64{fd, 2}, Buf: buf}
	sk := &Request{NR: SYS_lseek, Args: [6]uint64{fd, 0, fs.SeekSet}}
	// readv back into 3+8 segments.
	rbuf := make([]byte, 16+11)
	binary.LittleEndian.PutUint64(rbuf[0:], 3)
	binary.LittleEndian.PutUint64(rbuf[8:], 8)
	rv := &Request{NR: SYS_readv, Args: [6]uint64{fd, 2}, Buf: rbuf}
	ev.callSeq(t, wv, sk, rv)
	if wv.Ret != 11 || rv.Ret != 11 {
		t.Fatalf("writev=%d readv=%d", wv.Ret, rv.Ret)
	}
	if string(rbuf[16:16+11]) != "helloworld!" {
		t.Fatalf("readv data = %q", rbuf[16:])
	}
	// Bad iovec count.
	bad := &Request{NR: SYS_readv, Args: [6]uint64{fd, 0}, Buf: rbuf}
	ev.call(t, bad)
	if bad.Err != errno.EINVAL {
		t.Fatalf("bad iovcnt = %v", bad.Err)
	}
}

func TestFtruncateUnlinkFsync(t *testing.T) {
	ev := newEnv(t)
	open := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_RDWR}, Buf: []byte("/tmp/t")}
	ev.call(t, open)
	fd := uint64(open.Ret)
	wr := &Request{NR: SYS_write, Args: [6]uint64{fd, 8}, Buf: []byte("12345678")}
	tr := &Request{NR: SYS_ftruncate, Args: [6]uint64{fd, 3}}
	fsy := &Request{NR: SYS_fsync, Args: [6]uint64{fd}}
	ev.callSeq(t, wr, tr, fsy)
	f, _ := ev.pr.FDs.Get(int(fd))
	if f.Node.Size() != 3 {
		t.Fatalf("size after ftruncate = %d", f.Node.Size())
	}
	if fsy.Err != errno.OK {
		t.Fatalf("fsync = %v", fsy.Err)
	}
	un := &Request{NR: SYS_unlink, Buf: []byte("/tmp/t")}
	ev.call(t, un)
	if _, err := ev.os.VFS.Resolve("/tmp/t"); err != errno.ENOENT {
		t.Fatalf("after unlink: %v", err)
	}
	un2 := &Request{NR: SYS_unlink, Buf: []byte("/tmp/t")}
	ev.call(t, un2)
	if un2.Err != errno.ENOENT {
		t.Fatalf("double unlink = %v", un2.Err)
	}
}

func TestGetdents(t *testing.T) {
	ev := newEnv(t)
	for _, n := range []string{"bb", "aa", "cc"} {
		op := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_WRONLY}, Buf: []byte("/tmp/" + n)}
		ev.call(t, op)
	}
	buf := make([]byte, 64)
	copy(buf, "/tmp")
	gd := &Request{NR: SYS_getdents64, Buf: buf}
	ev.call(t, gd)
	names := strings.Fields(strings.TrimRight(string(buf[:gd.Ret]), "\x00"))
	if len(names) != 3 || names[0] != "aa" || names[2] != "cc" {
		t.Fatalf("getdents = %v", names)
	}
}

func TestClockGettimeNanosleepGetpidUname(t *testing.T) {
	ev := newEnv(t)
	var before, after int64
	ev.e.Spawn("caller", func(p *sim.Proc) {
		c := &Ctx{P: p, OS: ev.os, Proc: ev.pr}
		r1 := &Request{NR: SYS_clock_gettime}
		Dispatch(c, r1)
		before = r1.Ret
		Dispatch(c, &Request{NR: SYS_nanosleep, Args: [6]uint64{uint64(5 * sim.Millisecond)}})
		r2 := &Request{NR: SYS_clock_gettime}
		Dispatch(c, r2)
		after = r2.Ret
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
	if after-before != int64(5*sim.Millisecond) {
		t.Fatalf("nanosleep advanced %d ns", after-before)
	}
	pid := &Request{NR: SYS_getpid}
	ev.call(t, pid)
	if pid.Ret != int64(ev.pr.PID) {
		t.Fatalf("getpid = %d", pid.Ret)
	}
	un := &Request{NR: SYS_uname, Buf: make([]byte, 64)}
	ev.call(t, un)
	if !strings.Contains(string(un.Buf[:un.Ret]), "GenesysSim") {
		t.Fatalf("uname = %q", un.Buf[:un.Ret])
	}
}

func TestPipe2EndToEnd(t *testing.T) {
	ev := newEnv(t)
	pp := &Request{NR: SYS_pipe2}
	ev.call(t, pp)
	if pp.Err != errno.OK {
		t.Fatal(pp.Err)
	}
	rfd, wfd := pp.OutArgs[0], pp.OutArgs[1]

	var got []byte
	ev.e.Spawn("writer", func(p *sim.Proc) {
		c := &Ctx{P: p, OS: ev.os, Proc: ev.pr}
		Dispatch(c, &Request{NR: SYS_write, Args: [6]uint64{wfd, 9}, Buf: []byte("pipedata!")})
		Dispatch(c, &Request{NR: SYS_close, Args: [6]uint64{wfd}})
	})
	ev.e.Spawn("reader", func(p *sim.Proc) {
		c := &Ctx{P: p, OS: ev.os, Proc: ev.pr}
		buf := make([]byte, 32)
		rd := &Request{NR: SYS_read, Args: [6]uint64{rfd, 32}, Buf: buf}
		Dispatch(c, rd)
		got = append(got, buf[:rd.Ret]...)
		// After the writer closes, read returns EOF (0).
		rd2 := &Request{NR: SYS_read, Args: [6]uint64{rfd, 32}, Buf: buf}
		Dispatch(c, rd2)
		if rd2.Ret != 0 {
			t.Errorf("read after writer close = %d", rd2.Ret)
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("pipedata!")) {
		t.Fatalf("pipe data = %q", got)
	}
}

func TestPipeBlockingBackpressure(t *testing.T) {
	ev := newEnv(t)
	p := fs.NewPipe(ev.e, 8) // tiny buffer
	rf, wf := p.Ends()
	var writerDone, readerStart sim.Time
	ev.e.Spawn("writer", func(pp *sim.Proc) {
		io := &fs.IOCtx{P: pp}
		wf.Write(io, []byte("0123456789abcdef")) // 16 > capacity 8: blocks
		writerDone = pp.Now()
	})
	ev.e.Spawn("reader", func(pp *sim.Proc) {
		pp.Sleep(sim.Millisecond)
		readerStart = pp.Now()
		io := &fs.IOCtx{P: pp}
		buf := make([]byte, 16)
		n1, _ := rf.Read(io, buf)
		n2, _ := rf.Read(io, buf[n1:])
		if n1+n2 != 16 {
			t.Errorf("read %d+%d", n1, n2)
		}
		if string(buf) != "0123456789abcdef" {
			t.Errorf("data = %q", buf)
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
	if writerDone < readerStart {
		t.Fatalf("writer finished (%v) before reader drained (%v): no backpressure",
			writerDone, readerStart)
	}
}

func TestPipeEPIPE(t *testing.T) {
	ev := newEnv(t)
	p := fs.NewPipe(ev.e, 8)
	rf, wf := p.Ends()
	fs.ClosePipeEnd(rf)
	ev.e.Spawn("writer", func(pp *sim.Proc) {
		io := &fs.IOCtx{P: pp}
		if _, err := wf.Write(io, []byte("x")); err != errno.EPIPE {
			t.Errorf("write to closed pipe = %v", err)
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
}
