package syscalls

import (
	"encoding/binary"
	"fmt"

	"genesys/internal/errno"
)

// Fourth wave: query-style calls that are trivially generic — exactly the
// long tail that makes up most of §IV's 79% "readily-implementable"
// class.
const (
	SYS_access       = 21
	SYS_truncate     = 76
	SYS_gettimeofday = 96
	SYS_sysinfo      = 99
	SYS_getuid       = 102
	SYS_getgid       = 104
	SYS_geteuid      = 107
	SYS_getegid      = 108
)

func init() {
	table[SYS_access] = sysAccess
	table[SYS_truncate] = sysTruncate
	table[SYS_gettimeofday] = sysGettimeofday
	table[SYS_sysinfo] = sysSysinfo
	table[SYS_getuid] = sysGetuid
	table[SYS_getgid] = sysGetuid
	table[SYS_geteuid] = sysGetuid
	table[SYS_getegid] = sysGetuid
}

// sysAccess: pathname in Buf; every existing node is readable and
// writable in the simulated machine, so existence is the whole check.
func sysAccess(c *Ctx, r *Request) {
	if _, err := c.OS.VFS.Resolve(c.abs(cstr(r.Buf))); err != nil {
		fail(r, err)
	}
}

// sysTruncate: pathname in Buf, new length in Args[0].
func sysTruncate(c *Ctx, r *Request) {
	n, err := c.OS.VFS.Resolve(c.abs(cstr(r.Buf)))
	if err != nil {
		fail(r, err)
		return
	}
	fn, ok := n.(interface{ Truncate(int64) error })
	if !ok {
		fail(r, errno.EISDIR)
		return
	}
	if err := fn.Truncate(int64(r.Args[0])); err != nil {
		fail(r, err)
	}
}

// sysGettimeofday returns seconds and microseconds of virtual time in
// Buf (two little-endian int64s).
func sysGettimeofday(c *Ctx, r *Request) {
	if len(r.Buf) < 16 {
		fail(r, errno.EINVAL)
		return
	}
	now := int64(c.P.Now())
	binary.LittleEndian.PutUint64(r.Buf[0:], uint64(now/1e9))
	binary.LittleEndian.PutUint64(r.Buf[8:], uint64(now%1e9/1e3))
}

// sysSysinfo writes a human-readable system summary into Buf (the
// simulated struct sysinfo).
func sysSysinfo(c *Ctx, r *Request) {
	ps := c.Proc.MM.Config().PageSize
	info := fmt.Sprintf("uptime=%ds totalram=%d freeram=%d procs=%d",
		int64(c.P.Now()/1e9), c.OS.Pool.Total*ps, c.OS.Pool.Free()*ps, 1)
	if len(r.Buf) < len(info) {
		fail(r, errno.EINVAL)
		return
	}
	copy(r.Buf, info)
	r.Ret = int64(len(info))
}

// sysGetuid: the simulated machine runs a single root-like identity.
func sysGetuid(c *Ctx, r *Request) {
	r.Ret = 0
}
