package syscalls

import (
	"testing"

	"genesys/internal/errno"
	"genesys/internal/netstack"
	"genesys/internal/sim"
)

// Stream sockets through the syscall surface: socket(STREAM), bind,
// listen, connect, accept, send (sendto), recv (recvfrom) — a full
// request/response exchange between two procs of one process.
func TestStreamSyscallRoundTrip(t *testing.T) {
	ev := newEnv(t)
	var srvReady = sim.NewCond(ev.e)
	listening := false
	ev.e.Spawn("server", func(p *sim.Proc) {
		c := &Ctx{P: p, OS: ev.os, Proc: ev.pr}
		sk := &Request{NR: SYS_socket, Args: [6]uint64{uint64(netstack.Stream)}}
		Dispatch(c, sk)
		bd := &Request{NR: SYS_bind, Args: [6]uint64{uint64(sk.Ret), 7000}}
		Dispatch(c, bd)
		ls := &Request{NR: SYS_listen, Args: [6]uint64{uint64(sk.Ret), 4}}
		Dispatch(c, ls)
		if sk.Err != 0 || bd.Err != 0 || ls.Err != 0 {
			t.Errorf("setup: socket=%v bind=%v listen=%v", sk.Err, bd.Err, ls.Err)
			return
		}
		listening = true
		srvReady.Broadcast()
		ac := &Request{NR: SYS_accept, Args: [6]uint64{uint64(sk.Ret), 0}}
		Dispatch(c, ac)
		if ac.Err != 0 {
			t.Errorf("accept: %v", ac.Err)
			return
		}
		buf := make([]byte, 32)
		rc := &Request{NR: SYS_recvfrom, Args: [6]uint64{uint64(ac.Ret), 32, 0}, Buf: buf}
		Dispatch(c, rc)
		if rc.Err != 0 || string(buf[:rc.Ret]) != "ping" {
			t.Errorf("server recv = %v %q", rc.Err, buf[:rc.Ret])
			return
		}
		if int(rc.OutArgs[0]) < netstack.EphemeralMin {
			t.Errorf("remote port = %d, want ephemeral", rc.OutArgs[0])
		}
		sd := &Request{NR: SYS_sendto, Args: [6]uint64{uint64(ac.Ret), 4}, Buf: []byte("pong")}
		Dispatch(c, sd)
		if sd.Err != 0 || sd.Ret != 4 {
			t.Errorf("server send = %v ret %d", sd.Err, sd.Ret)
		}
	})
	ev.e.Spawn("client", func(p *sim.Proc) {
		c := &Ctx{P: p, OS: ev.os, Proc: ev.pr}
		for !listening {
			srvReady.Wait(p, "client waits for listener")
		}
		sk := &Request{NR: SYS_socket, Args: [6]uint64{uint64(netstack.Stream)}}
		Dispatch(c, sk)
		cn := &Request{NR: SYS_connect, Args: [6]uint64{uint64(sk.Ret), 7000}}
		Dispatch(c, cn)
		if cn.Err != 0 {
			t.Errorf("connect: %v", cn.Err)
			return
		}
		sd := &Request{NR: SYS_sendto, Args: [6]uint64{uint64(sk.Ret), 4}, Buf: []byte("ping")}
		Dispatch(c, sd)
		buf := make([]byte, 32)
		rc := &Request{NR: SYS_recvfrom, Args: [6]uint64{uint64(sk.Ret), 32, 0}, Buf: buf}
		Dispatch(c, rc)
		if rc.Err != 0 || string(buf[:rc.Ret]) != "pong" {
			t.Errorf("client recv = %v %q", rc.Err, buf[:rc.Ret])
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSyscallErrors(t *testing.T) {
	ev := newEnv(t)
	bad := &Request{NR: SYS_socket, Args: [6]uint64{99}}
	ev.call(t, bad)
	if bad.Err != errno.EINVAL {
		t.Fatalf("socket(99) = %v, want EINVAL", bad.Err)
	}
	sk := &Request{NR: SYS_socket} // datagram
	ev.call(t, sk)
	ls := &Request{NR: SYS_listen, Args: [6]uint64{uint64(sk.Ret), 1}}
	ev.call(t, ls)
	if ls.Err != errno.EOPNOTSUPP {
		t.Fatalf("listen on dgram = %v, want EOPNOTSUPP", ls.Err)
	}
	st := &Request{NR: SYS_socket, Args: [6]uint64{uint64(netstack.Stream)}}
	ev.call(t, st)
	cn := &Request{NR: SYS_connect, Args: [6]uint64{uint64(st.Ret), 9999}}
	ev.call(t, cn)
	if cn.Err != errno.ECONNREFUSED {
		t.Fatalf("connect to dead port = %v, want ECONNREFUSED", cn.Err)
	}
	ac := &Request{NR: SYS_accept, Args: [6]uint64{uint64(st.Ret), 0}}
	ev.call(t, ac)
	if ac.Err != errno.EINVAL {
		t.Fatalf("accept on non-listener = %v, want EINVAL", ac.Err)
	}
}

// poll(2) over a mixed fd set: non-blocking probe, deadline timeout, and
// a blocking wait that reports exactly the readable fds.
func TestPollSyscall(t *testing.T) {
	ev := newEnv(t)
	ev.e.Spawn("poller", func(p *sim.Proc) {
		c := &Ctx{P: p, OS: ev.os, Proc: ev.pr}
		var fds []int
		for i := 0; i < 3; i++ {
			sk := &Request{NR: SYS_socket}
			Dispatch(c, sk)
			bd := &Request{NR: SYS_bind, Args: [6]uint64{uint64(sk.Ret), uint64(7100 + i)}}
			Dispatch(c, bd)
			if sk.Err != 0 || bd.Err != 0 {
				t.Errorf("setup %d: %v %v", i, sk.Err, bd.Err)
				return
			}
			fds = append(fds, int(sk.Ret))
		}
		// Non-blocking probe: nothing ready.
		pr := &Request{NR: SYS_poll, Args: [6]uint64{3, 0}, Buf: EncodePollFDs(fds)}
		Dispatch(c, pr)
		if pr.Err != 0 || pr.Ret != 0 {
			t.Errorf("probe = %v ret %d, want 0", pr.Err, pr.Ret)
		}
		// Deadline: empty set at the deadline, Ret 0, no error.
		t0 := ev.e.Now()
		pt := &Request{NR: SYS_poll, Args: [6]uint64{3, uint64(40 * sim.Microsecond)}, Buf: EncodePollFDs(fds)}
		Dispatch(c, pt)
		if pt.Err != 0 || pt.Ret != 0 || ev.e.Now()-t0 != 40*sim.Microsecond {
			t.Errorf("timed poll = %v ret %d after %v", pt.Err, pt.Ret, ev.e.Now()-t0)
		}
		// Send to fd[1]'s port from a helper socket, then block.
		src := &Request{NR: SYS_socket}
		Dispatch(c, src)
		sd := &Request{NR: SYS_sendto, Args: [6]uint64{uint64(src.Ret), 1, 0, 0, 7101}, Buf: []byte("x")}
		Dispatch(c, sd)
		pw := &Request{NR: SYS_poll, Args: [6]uint64{3, PollInfinite}, Buf: EncodePollFDs(fds)}
		Dispatch(c, pw)
		if pw.Err != 0 || pw.Ret != 1 {
			t.Errorf("blocking poll = %v ret %d, want 1", pw.Err, pw.Ret)
			return
		}
		rev := DecodePollRevents(pw.Buf, 3)
		if rev[0] != 0 || rev[1] != 1 || rev[2] != 0 {
			t.Errorf("revents = %v, want [0 1 0]", rev)
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPollSyscallBadArgs(t *testing.T) {
	ev := newEnv(t)
	z := &Request{NR: SYS_poll, Args: [6]uint64{0, 0}}
	ev.call(t, z)
	if z.Err != errno.EINVAL {
		t.Fatalf("poll with 0 fds = %v, want EINVAL", z.Err)
	}
	short := &Request{NR: SYS_poll, Args: [6]uint64{2, 0}, Buf: make([]byte, 4)}
	ev.call(t, short)
	if short.Err != errno.EINVAL {
		t.Fatalf("poll with short buf = %v, want EINVAL", short.Err)
	}
	bad := &Request{NR: SYS_poll, Args: [6]uint64{1, 0}, Buf: EncodePollFDs([]int{55})}
	ev.call(t, bad)
	if bad.Err != errno.EBADF {
		t.Fatalf("poll with bad fd = %v, want EBADF", bad.Err)
	}
}
