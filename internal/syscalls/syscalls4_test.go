package syscalls

import (
	"encoding/binary"
	"strings"
	"testing"

	"genesys/internal/errno"
	"genesys/internal/fs"
	"genesys/internal/sim"
)

func TestAccessAndTruncate(t *testing.T) {
	ev := newEnv(t)
	op := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_RDWR}, Buf: []byte("/tmp/t4")}
	ev.call(t, op)
	wr := &Request{NR: SYS_write, Args: [6]uint64{uint64(op.Ret), 8}, Buf: []byte("12345678")}
	ev.call(t, wr)

	acc := &Request{NR: SYS_access, Buf: []byte("/tmp/t4")}
	ev.call(t, acc)
	if acc.Err != errno.OK {
		t.Fatalf("access existing = %v", acc.Err)
	}
	miss := &Request{NR: SYS_access, Buf: []byte("/tmp/none")}
	ev.call(t, miss)
	if miss.Err != errno.ENOENT {
		t.Fatalf("access missing = %v", miss.Err)
	}

	tr := &Request{NR: SYS_truncate, Args: [6]uint64{2}, Buf: []byte("/tmp/t4")}
	ev.call(t, tr)
	if tr.Err != errno.OK {
		t.Fatal(tr.Err)
	}
	n, _ := ev.os.VFS.Resolve("/tmp/t4")
	if n.Size() != 2 {
		t.Fatalf("size after truncate = %d", n.Size())
	}
	trd := &Request{NR: SYS_truncate, Args: [6]uint64{0}, Buf: []byte("/tmp")}
	ev.call(t, trd)
	if trd.Err != errno.EISDIR {
		t.Fatalf("truncate dir = %v", trd.Err)
	}
}

func TestGettimeofdayAndSysinfo(t *testing.T) {
	ev := newEnv(t)
	var sec, usec int64
	ev.e.Spawn("caller", func(p *sim.Proc) {
		p.Sleep(3*sim.Second + 250*sim.Millisecond)
		c := &Ctx{P: p, OS: ev.os, Proc: ev.pr}
		buf := make([]byte, 16)
		r := &Request{NR: SYS_gettimeofday, Buf: buf}
		Dispatch(c, r)
		sec = int64(binary.LittleEndian.Uint64(buf[0:]))
		usec = int64(binary.LittleEndian.Uint64(buf[8:]))
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
	if sec != 3 || usec != 250000 {
		t.Fatalf("gettimeofday = %d.%06d", sec, usec)
	}
	si := &Request{NR: SYS_sysinfo, Buf: make([]byte, 256)}
	ev.call(t, si)
	out := string(si.Buf[:si.Ret])
	if !strings.Contains(out, "totalram=") || !strings.Contains(out, "freeram=") {
		t.Fatalf("sysinfo = %q", out)
	}
	short := &Request{NR: SYS_sysinfo, Buf: make([]byte, 4)}
	ev.call(t, short)
	if short.Err != errno.EINVAL {
		t.Fatalf("short sysinfo = %v", short.Err)
	}
}

func TestUIDFamily(t *testing.T) {
	ev := newEnv(t)
	for _, nr := range []int{SYS_getuid, SYS_getgid, SYS_geteuid, SYS_getegid} {
		r := &Request{NR: nr}
		ev.call(t, r)
		if r.Err != errno.OK || r.Ret != 0 {
			t.Fatalf("uid syscall %d = %+v", nr, r)
		}
	}
}
