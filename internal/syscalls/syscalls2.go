package syscalls

import (
	"encoding/binary"

	"genesys/internal/errno"
	"genesys/internal/fs"
	"genesys/internal/sim"
)

// Second wave of readily-implementable system calls (§IV): beyond the
// paper's proof-of-concept set, these flesh out the filesystem and
// process-query surface a real GPU program would lean on.
const (
	SYS_stat          = 4
	SYS_fstat         = 5
	SYS_readv         = 19
	SYS_writev        = 20
	SYS_dup           = 32
	SYS_nanosleep     = 35
	SYS_getpid        = 39
	SYS_uname         = 63
	SYS_fsync         = 74
	SYS_ftruncate     = 77
	SYS_unlink        = 87
	SYS_getdents64    = 217
	SYS_clock_gettime = 228
	SYS_pipe2         = 293
)

func init() {
	table[SYS_stat] = sysStat
	table[SYS_fstat] = sysFstat
	table[SYS_readv] = sysReadv
	table[SYS_writev] = sysWritev
	table[SYS_dup] = sysDup
	table[SYS_nanosleep] = sysNanosleep
	table[SYS_getpid] = sysGetpid
	table[SYS_uname] = sysUname
	table[SYS_fsync] = sysFsync
	table[SYS_ftruncate] = sysFtruncate
	table[SYS_unlink] = sysUnlink
	table[SYS_getdents64] = sysGetdents
	table[SYS_clock_gettime] = sysClockGettime
	table[SYS_pipe2] = sysPipe2
}

// StatSize is the encoded size of the stat reply: size(8) + mode(8).
const StatSize = 16

// Stat mode bits in the encoded reply.
const (
	StatModeFile = 1
	StatModeDir  = 2
)

func encodeStat(buf []byte, size int64, mode uint64) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(size))
	binary.LittleEndian.PutUint64(buf[8:], mode)
}

// DecodeStat unpacks a stat reply into (size, isDir).
func DecodeStat(buf []byte) (int64, bool, error) {
	if len(buf) < StatSize {
		return 0, false, errno.EINVAL
	}
	return int64(binary.LittleEndian.Uint64(buf[0:])),
		binary.LittleEndian.Uint64(buf[8:]) == StatModeDir, nil
}

// sysStat: pathname in Buf[StatSize:], reply in Buf[:StatSize].
func sysStat(c *Ctx, r *Request) {
	if len(r.Buf) < StatSize {
		fail(r, errno.EINVAL)
		return
	}
	n, err := c.OS.VFS.Resolve(c.abs(cstr(r.Buf[StatSize:])))
	if err != nil {
		fail(r, err)
		return
	}
	mode := uint64(StatModeFile)
	if _, isDir := n.(*fs.Dir); isDir {
		mode = StatModeDir
	}
	encodeStat(r.Buf, n.Size(), mode)
}

func sysFstat(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	if len(r.Buf) < StatSize {
		fail(r, errno.EINVAL)
		return
	}
	var size int64
	if f.Node != nil {
		size = f.Node.Size()
	}
	encodeStat(r.Buf, size, StatModeFile)
}

// Vector I/O convention: Args[1] holds iovcnt; the first 8×iovcnt bytes
// of Buf are little-endian segment lengths, followed by the data area
// (concatenated segments).
func iovecs(r *Request) (lens []int, data []byte, err error) {
	cnt := int(r.Args[1])
	if cnt <= 0 || cnt > 1024 || len(r.Buf) < 8*cnt {
		return nil, nil, errno.EINVAL
	}
	total := 0
	lens = make([]int, cnt)
	for i := 0; i < cnt; i++ {
		lens[i] = int(binary.LittleEndian.Uint64(r.Buf[8*i:]))
		if lens[i] < 0 {
			return nil, nil, errno.EINVAL
		}
		total += lens[i]
	}
	data = r.Buf[8*cnt:]
	if len(data) < total {
		return nil, nil, errno.EINVAL
	}
	return lens, data, nil
}

func sysReadv(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	lens, data, err := iovecs(r)
	if err != nil {
		fail(r, err)
		return
	}
	var total int64
	off := 0
	for _, l := range lens {
		n, err := f.Read(c.io(), data[off:off+l])
		total += int64(n)
		off += l
		if err != nil || n < l {
			if err != nil && total == 0 {
				fail(r, err)
				return
			}
			break
		}
	}
	r.Ret = total
}

func sysWritev(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	lens, data, err := iovecs(r)
	if err != nil {
		fail(r, err)
		return
	}
	var total int64
	off := 0
	for _, l := range lens {
		n, err := f.Write(c.io(), data[off:off+l])
		total += int64(n)
		off += l
		if err != nil {
			if total == 0 {
				fail(r, err)
				return
			}
			break
		}
	}
	r.Ret = total
}

// sysDup shares the open-file description (and therefore the file
// offset) under a new descriptor, per POSIX.
func sysDup(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	fd, err := c.Proc.FDs.Install(f)
	if err != nil {
		fail(r, err)
		return
	}
	r.Ret = int64(fd)
}

// sysNanosleep: Args[0] = duration in nanoseconds. The OS worker thread
// sleeps on the caller's behalf — a deliberately blocking call.
func sysNanosleep(c *Ctx, r *Request) {
	c.P.Sleep(sim.Time(r.Args[0]))
}

func sysGetpid(c *Ctx, r *Request) {
	r.Ret = int64(c.Proc.PID)
}

func sysUname(c *Ctx, r *Request) {
	id := []byte("GenesysSim 4.11-genesys x86_64+gcn3")
	if len(r.Buf) < len(id) {
		fail(r, errno.EINVAL)
		return
	}
	copy(r.Buf, id)
	r.Ret = int64(len(id))
}

// sysFsync: the simulated SSDFS is write-through, so fsync only charges
// the flush round trip.
func sysFsync(c *Ctx, r *Request) {
	if _, err := c.Proc.FDs.Get(int(int64(r.Args[0]))); err != nil {
		fail(r, err)
		return
	}
	c.P.Sleep(10 * sim.Microsecond)
}

func sysFtruncate(c *Ctx, r *Request) {
	f, err := c.Proc.FDs.Get(int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	if f.Node == nil {
		fail(r, errno.EINVAL)
		return
	}
	if err := f.Node.Truncate(int64(r.Args[1])); err != nil {
		fail(r, err)
	}
}

// sysUnlink: pathname in Buf.
func sysUnlink(c *Ctx, r *Request) {
	if err := c.OS.VFS.Unlink(c.abs(cstr(r.Buf))); err != nil {
		fail(r, err)
	}
}

// sysGetdents64: directory path in Buf (in), newline-separated entry
// names written back into Buf (out); Ret is the byte count.
func sysGetdents(c *Ctx, r *Request) {
	d, err := c.OS.VFS.ResolveDir(c.abs(cstr(r.Buf)))
	if err != nil {
		fail(r, err)
		return
	}
	out := make([]byte, 0, len(r.Buf))
	for _, name := range d.Names() {
		entry := append([]byte(name), '\n')
		if len(out)+len(entry) > len(r.Buf) {
			break
		}
		out = append(out, entry...)
	}
	for i := range r.Buf {
		r.Buf[i] = 0
	}
	copy(r.Buf, out)
	r.Ret = int64(len(out))
}

// sysClockGettime returns the current virtual time in nanoseconds.
func sysClockGettime(c *Ctx, r *Request) {
	r.Ret = int64(c.P.Now())
}

// sysPipe2 creates a pipe; the read and write descriptors are returned
// in OutArgs[0] and OutArgs[1].
func sysPipe2(c *Ctx, r *Request) {
	p := fs.NewPipe(c.OS.E, 0)
	rf, wf := p.Ends()
	rfd, err := c.Proc.FDs.Install(rf)
	if err != nil {
		fail(r, err)
		return
	}
	wfd, err := c.Proc.FDs.Install(wf)
	if err != nil {
		c.Proc.FDs.Close(rfd)
		fail(r, err)
		return
	}
	r.OutArgs[0] = uint64(rfd)
	r.OutArgs[1] = uint64(wfd)
}
