package syscalls

import (
	"fmt"
	"sort"
)

// Class is the paper's three-way classification of Linux system calls
// with respect to GPU invocation (§IV).
type Class int

const (
	// ClassReady: readily-implementable through GENESYS (≈79% of calls).
	ClassReady Class = iota
	// ClassHardware: useful, but implementable only with GPU hardware
	// changes — thread representation in the kernel, a software-visible
	// GPU scheduler, per-work-item program counters (≈13%, Table II).
	ClassHardware
	// ClassExtensive: would require extensive kernel modification (e.g.
	// fork's cloning of GPU execution state) and is not worth the effort
	// today (≈8%).
	ClassExtensive
)

func (c Class) String() string {
	switch c {
	case ClassReady:
		return "readily-implementable"
	case ClassHardware:
		return "needs-GPU-hardware-changes"
	case ClassExtensive:
		return "needs-extensive-kernel-changes"
	}
	return "unknown"
}

// Reasons a call is not readily implementable (Table II's right column).
const (
	ReasonThreadRep = "needs GPU thread representation in the kernel"
	ReasonScheduler = "needs better control over the GPU scheduler"
	ReasonSignals   = "cannot pause/resume or retarget individual GPU threads"
	ReasonArch      = "architecture-specific; not accessible from GPU"
	ReasonLifecycle = "would need to clone/replace GPU execution state"
	ReasonSysAdmin  = "system administration; no GPU-side use without extensive rework"
)

// Info describes one classified system call.
type Info struct {
	NR     int
	Name   string
	Class  Class
	Reason string // empty for ClassReady
}

// classification lists every Linux 4.11 x86-64 system call (0–332), the
// kernel version of the paper's testbed (Table III).
var classification = buildClassification()

func buildClassification() []Info {
	names := []string{
		"read", "write", "open", "close", "stat", "fstat", "lstat", "poll",
		"lseek", "mmap", "mprotect", "munmap", "brk", "rt_sigaction",
		"rt_sigprocmask", "rt_sigreturn", "ioctl", "pread64", "pwrite64",
		"readv", "writev", "access", "pipe", "select", "sched_yield",
		"mremap", "msync", "mincore", "madvise", "shmget", "shmat",
		"shmctl", "dup", "dup2", "pause", "nanosleep", "getitimer",
		"alarm", "setitimer", "getpid", "sendfile", "socket", "connect",
		"accept", "sendto", "recvfrom", "sendmsg", "recvmsg", "shutdown",
		"bind", "listen", "getsockname", "getpeername", "socketpair",
		"setsockopt", "getsockopt", "clone", "fork", "vfork", "execve",
		"exit", "wait4", "kill", "uname", "semget", "semop", "semctl",
		"shmdt", "msgget", "msgsnd", "msgrcv", "msgctl", "fcntl", "flock",
		"fsync", "fdatasync", "truncate", "ftruncate", "getdents",
		"getcwd", "chdir", "fchdir", "rename", "mkdir", "rmdir", "creat",
		"link", "unlink", "symlink", "readlink", "chmod", "fchmod",
		"chown", "fchown", "lchown", "umask", "gettimeofday", "getrlimit",
		"getrusage", "sysinfo", "times", "ptrace", "getuid", "syslog",
		"getgid", "setuid", "setgid", "geteuid", "getegid", "setpgid",
		"getppid", "getpgrp", "setsid", "setreuid", "setregid",
		"getgroups", "setgroups", "setresuid", "getresuid", "setresgid",
		"getresgid", "getpgid", "setfsuid", "setfsgid", "getsid",
		"capget", "capset", "rt_sigpending", "rt_sigtimedwait",
		"rt_sigqueueinfo", "rt_sigsuspend", "sigaltstack", "utime",
		"mknod", "uselib", "personality", "ustat", "statfs", "fstatfs",
		"sysfs", "getpriority", "setpriority", "sched_setparam",
		"sched_getparam", "sched_setscheduler", "sched_getscheduler",
		"sched_get_priority_max", "sched_get_priority_min",
		"sched_rr_get_interval", "mlock", "munlock", "mlockall",
		"munlockall", "vhangup", "modify_ldt", "pivot_root", "_sysctl",
		"prctl", "arch_prctl", "adjtimex", "setrlimit", "chroot", "sync",
		"acct", "settimeofday", "mount", "umount2", "swapon", "swapoff",
		"reboot", "sethostname", "setdomainname", "iopl", "ioperm",
		"create_module", "init_module", "delete_module",
		"get_kernel_syms", "query_module", "quotactl", "nfsservctl",
		"getpmsg", "putpmsg", "afs_syscall", "tuxcall", "security",
		"gettid", "readahead", "setxattr", "lsetxattr", "fsetxattr",
		"getxattr", "lgetxattr", "fgetxattr", "listxattr", "llistxattr",
		"flistxattr", "removexattr", "lremovexattr", "fremovexattr",
		"tkill", "time", "futex", "sched_setaffinity", "sched_getaffinity",
		"set_thread_area", "io_setup", "io_destroy", "io_getevents",
		"io_submit", "io_cancel", "get_thread_area", "lookup_dcookie",
		"epoll_create", "epoll_ctl_old", "epoll_wait_old",
		"remap_file_pages", "getdents64", "set_tid_address",
		"restart_syscall", "semtimedop", "fadvise64", "timer_create",
		"timer_settime", "timer_gettime", "timer_getoverrun",
		"timer_delete", "clock_settime", "clock_gettime", "clock_getres",
		"clock_nanosleep", "exit_group", "epoll_wait", "epoll_ctl",
		"tgkill", "utimes", "vserver", "mbind", "set_mempolicy",
		"get_mempolicy", "mq_open", "mq_unlink", "mq_timedsend",
		"mq_timedreceive", "mq_notify", "mq_getsetattr", "kexec_load",
		"waitid", "add_key", "request_key", "keyctl", "ioprio_set",
		"ioprio_get", "inotify_init", "inotify_add_watch",
		"inotify_rm_watch", "migrate_pages", "openat", "mkdirat",
		"mknodat", "fchownat", "futimesat", "newfstatat", "unlinkat",
		"renameat", "linkat", "symlinkat", "readlinkat", "fchmodat",
		"faccessat", "pselect6", "ppoll", "unshare", "set_robust_list",
		"get_robust_list", "splice", "tee", "sync_file_range", "vmsplice",
		"move_pages", "utimensat", "epoll_pwait", "signalfd",
		"timerfd_create", "eventfd", "fallocate", "timerfd_settime",
		"timerfd_gettime", "accept4", "signalfd4", "eventfd2",
		"epoll_create1", "dup3", "pipe2", "inotify_init1", "preadv",
		"pwritev", "rt_tgsigqueueinfo", "perf_event_open", "recvmmsg",
		"fanotify_init", "fanotify_mark", "prlimit64", "name_to_handle_at",
		"open_by_handle_at", "clock_adjtime", "syncfs", "sendmmsg",
		"setns", "getcpu", "process_vm_readv", "process_vm_writev",
		"kcmp", "finit_module", "sched_setattr", "sched_getattr",
		"renameat2", "seccomp", "getrandom", "memfd_create",
		"kexec_file_load", "bpf", "execveat", "userfaultfd", "membarrier",
		"mlock2", "copy_file_range", "preadv2", "pwritev2",
		"pkey_mprotect", "pkey_alloc", "pkey_free", "statx",
	}

	hardware := map[string]string{
		// capabilities / namespaces / policies (Table II rows 1-3)
		"capget": ReasonThreadRep, "capset": ReasonThreadRep,
		"setns":         ReasonThreadRep,
		"set_mempolicy": ReasonThreadRep, "get_mempolicy": ReasonThreadRep,
		"mbind": ReasonThreadRep, "migrate_pages": ReasonThreadRep,
		"move_pages": ReasonThreadRep,
		// thread scheduling (Table II row 4)
		"sched_yield": ReasonScheduler, "sched_setparam": ReasonScheduler,
		"sched_getparam": ReasonScheduler, "sched_setscheduler": ReasonScheduler,
		"sched_getscheduler":     ReasonScheduler,
		"sched_get_priority_max": ReasonScheduler,
		"sched_get_priority_min": ReasonScheduler,
		"sched_rr_get_interval":  ReasonScheduler,
		"sched_setaffinity":      ReasonScheduler,
		"sched_getaffinity":      ReasonScheduler,
		"sched_setattr":          ReasonScheduler, "sched_getattr": ReasonScheduler,
		// signals targeting individual threads (Table II row 5)
		"rt_sigaction": ReasonSignals, "rt_sigprocmask": ReasonSignals,
		"rt_sigreturn": ReasonSignals, "rt_sigpending": ReasonSignals,
		"rt_sigtimedwait": ReasonSignals, "rt_sigsuspend": ReasonSignals,
		"sigaltstack": ReasonSignals, "pause": ReasonSignals,
		"rt_tgsigqueueinfo": ReasonSignals, "restart_syscall": ReasonSignals,
		// architecture-specific (Table II row 6)
		"iopl": ReasonArch, "ioperm": ReasonArch, "arch_prctl": ReasonArch,
		"modify_ldt": ReasonArch, "set_thread_area": ReasonArch,
		"get_thread_area": ReasonArch,
		// per-thread identity and blocking primitives
		"tkill": ReasonThreadRep, "tgkill": ReasonThreadRep,
		"set_tid_address": ReasonThreadRep, "set_robust_list": ReasonThreadRep,
		"get_robust_list": ReasonThreadRep, "futex": ReasonThreadRep,
		"userfaultfd": ReasonThreadRep,
	}

	extensive := map[string]string{
		"clone": ReasonLifecycle, "fork": ReasonLifecycle,
		"vfork": ReasonLifecycle, "execve": ReasonLifecycle,
		"execveat": ReasonLifecycle, "exit": ReasonLifecycle,
		"exit_group": ReasonLifecycle, "wait4": ReasonLifecycle,
		"waitid": ReasonLifecycle, "kill": ReasonLifecycle,
		"ptrace": ReasonLifecycle,
		"reboot": ReasonSysAdmin, "kexec_load": ReasonSysAdmin,
		"kexec_file_load": ReasonSysAdmin, "init_module": ReasonSysAdmin,
		"finit_module": ReasonSysAdmin, "delete_module": ReasonSysAdmin,
		"pivot_root": ReasonSysAdmin, "chroot": ReasonSysAdmin,
		"mount": ReasonSysAdmin, "umount2": ReasonSysAdmin,
		"swapon": ReasonSysAdmin, "swapoff": ReasonSysAdmin,
		"acct": ReasonSysAdmin, "vhangup": ReasonSysAdmin,
		"bpf": ReasonSysAdmin, "perf_event_open": ReasonSysAdmin,
	}

	out := make([]Info, len(names))
	for nr, name := range names {
		info := Info{NR: nr, Name: name, Class: ClassReady}
		if r, ok := hardware[name]; ok {
			info.Class, info.Reason = ClassHardware, r
		} else if r, ok := extensive[name]; ok {
			info.Class, info.Reason = ClassExtensive, r
		}
		out[nr] = info
	}
	return out
}

// Classification returns the full classified table in syscall-number
// order.
func Classification() []Info {
	out := make([]Info, len(classification))
	copy(out, classification)
	return out
}

// Name returns the name of system call nr ("sys_<nr>" for numbers
// outside the classified table).
func Name(nr int) string {
	if nr >= 0 && nr < len(classification) {
		return classification[nr].Name
	}
	return fmt.Sprintf("sys_%d", nr)
}

// ClassifyName returns the classification of a syscall by name.
func ClassifyName(name string) (Info, bool) {
	for _, in := range classification {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}

// ClassCounts returns the number of calls in each class and the total.
func ClassCounts() (ready, hardware, extensive, total int) {
	for _, in := range classification {
		switch in.Class {
		case ClassReady:
			ready++
		case ClassHardware:
			hardware++
		case ClassExtensive:
			extensive++
		}
	}
	return ready, hardware, extensive, len(classification)
}

// ClassificationSummary renders the §IV percentages.
func ClassificationSummary() string {
	r, h, x, n := ClassCounts()
	pct := func(c int) float64 { return 100 * float64(c) / float64(n) }
	return fmt.Sprintf(
		"Linux x86-64 system calls (kernel 4.11): %d total\n"+
			"  readily-implementable:            %3d (%.1f%%)\n"+
			"  need GPU hardware changes:        %3d (%.1f%%)\n"+
			"  need extensive kernel changes:    %3d (%.1f%%)\n"+
			"  implemented in this GENESYS:      %3d\n",
		n, r, pct(r), h, pct(h), x, pct(x), ImplementedCount())
}

// restartable marks the calls eligible for transparent restart after a
// transient EINTR/EAGAIN/ENOMEM failure — the SA_RESTART-style
// eligibility the gclib restartable-syscall layer and the kernel-side
// non-blocking restart consult. Eligible: idempotent-at-retry I/O,
// metadata and allocation calls. Excluded: calls whose side effect must
// not repeat (close releases the descriptor even on failure; signal
// sends would duplicate), and time/wait calls whose interval semantics a
// blind restart would corrupt (nanosleep, poll, select, pause).
var restartable = buildRestartable()

func buildRestartable() map[int]bool {
	eligible := []string{
		// byte I/O: a failed attempt moved no data, so retrying is safe
		"read", "write", "pread64", "pwrite64", "readv", "writev",
		"preadv", "pwritev", "preadv2", "pwritev2", "sendfile",
		// descriptor producers and file metadata
		"open", "openat", "creat", "lseek", "stat", "fstat", "lstat",
		"access", "getdents", "getdents64", "getcwd", "chdir",
		"truncate", "ftruncate", "mkdir", "rmdir", "unlink", "rename",
		"fsync", "fdatasync", "flock", "ioctl",
		// sockets: datagram ops that failed delivered nothing
		"socket", "bind", "connect", "accept", "accept4",
		"sendto", "recvfrom", "sendmsg", "recvmsg", "sendmmsg", "recvmmsg",
		// memory management: ENOMEM may clear as reclaim frees pages
		"mmap", "munmap", "madvise", "mremap",
		// queries
		"getrusage", "getpid", "clock_gettime", "gettimeofday",
	}
	byName := make(map[string]int, len(classification))
	for _, in := range classification {
		byName[in.Name] = in.NR
	}
	out := make(map[int]bool, len(eligible))
	for _, name := range eligible {
		nr, ok := byName[name]
		if !ok {
			panic("syscalls: unknown restartable name " + name)
		}
		out[nr] = true
	}
	return out
}

// Restartable reports whether the system call nr may be transparently
// reissued after a transient EINTR/EAGAIN/ENOMEM failure.
func Restartable(nr int) bool { return restartable[nr] }

// ByClass returns the names in a class, sorted.
func ByClass(c Class) []string {
	var out []string
	for _, in := range classification {
		if in.Class == c {
			out = append(out, in.Name)
		}
	}
	sort.Strings(out)
	return out
}
