package syscalls

import (
	"strings"
	"testing"

	"genesys/internal/errno"
	"genesys/internal/fs"
)

func TestMkdirRmdir(t *testing.T) {
	ev := newEnv(t)
	mk := &Request{NR: SYS_mkdir, Buf: []byte("/tmp/sub")}
	ev.call(t, mk)
	if mk.Err != errno.OK {
		t.Fatal(mk.Err)
	}
	// The new directory inherits tmpfs file creation.
	op := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_WRONLY},
		Buf: []byte("/tmp/sub/file")}
	ev.call(t, op)
	if op.Err != errno.OK {
		t.Fatalf("create in mkdir'd dir: %v", op.Err)
	}
	// mkdir of an existing path fails.
	mk2 := &Request{NR: SYS_mkdir, Buf: []byte("/tmp/sub")}
	ev.call(t, mk2)
	if mk2.Err != errno.EEXIST {
		t.Fatalf("double mkdir = %v", mk2.Err)
	}
	// rmdir of a non-empty directory fails; after unlink it succeeds.
	rm := &Request{NR: SYS_rmdir, Buf: []byte("/tmp/sub")}
	ev.call(t, rm)
	if rm.Err != errno.ENOTEMPTY {
		t.Fatalf("rmdir non-empty = %v", rm.Err)
	}
	un := &Request{NR: SYS_unlink, Buf: []byte("/tmp/sub/file")}
	rm2 := &Request{NR: SYS_rmdir, Buf: []byte("/tmp/sub")}
	ev.callSeq(t, un, rm2)
	if rm2.Err != errno.OK {
		t.Fatalf("rmdir empty = %v", rm2.Err)
	}
	// rmdir of a file is ENOTDIR.
	ev.call(t, &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_WRONLY}, Buf: []byte("/tmp/f")})
	rm3 := &Request{NR: SYS_rmdir, Buf: []byte("/tmp/f")}
	ev.call(t, rm3)
	if rm3.Err != errno.ENOTDIR {
		t.Fatalf("rmdir file = %v", rm3.Err)
	}
}

func TestRename(t *testing.T) {
	ev := newEnv(t)
	op := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_RDWR}, Buf: []byte("/tmp/old")}
	ev.call(t, op)
	wr := &Request{NR: SYS_write, Args: [6]uint64{uint64(op.Ret), 4}, Buf: []byte("data")}
	ev.call(t, wr)
	rn := &Request{NR: SYS_rename, Buf: []byte("/tmp/old\x00/tmp/new")}
	ev.call(t, rn)
	if rn.Err != errno.OK {
		t.Fatal(rn.Err)
	}
	if _, err := ev.os.VFS.Resolve("/tmp/old"); err != errno.ENOENT {
		t.Fatalf("old still there: %v", err)
	}
	n, err := ev.os.VFS.Resolve("/tmp/new")
	if err != nil || n.Size() != 4 {
		t.Fatalf("new: %v size=%d", err, n.Size())
	}
	// Renaming over an existing file replaces it.
	ev.call(t, &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_WRONLY}, Buf: []byte("/tmp/other")})
	rn2 := &Request{NR: SYS_rename, Buf: []byte("/tmp/new\x00/tmp/other")}
	ev.call(t, rn2)
	if rn2.Err != errno.OK {
		t.Fatal(rn2.Err)
	}
	// Bad argument encodings.
	bad := &Request{NR: SYS_rename, Buf: []byte("/tmp/x")}
	ev.call(t, bad)
	if bad.Err != errno.EINVAL {
		t.Fatalf("rename without separator = %v", bad.Err)
	}
}

func TestChdirGetcwdRelativePaths(t *testing.T) {
	ev := newEnv(t)
	buf := make([]byte, 64)
	cw := &Request{NR: SYS_getcwd, Buf: buf}
	ev.call(t, cw)
	if string(buf[:cw.Ret]) != "/" {
		t.Fatalf("initial cwd = %q", buf[:cw.Ret])
	}
	cd := &Request{NR: SYS_chdir, Buf: []byte("/tmp")}
	ev.call(t, cd)
	if cd.Err != errno.OK || ev.pr.CWD != "/tmp" {
		t.Fatalf("chdir: %v cwd=%q", cd.Err, ev.pr.CWD)
	}
	// Relative open now lands in /tmp.
	op := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_WRONLY}, Buf: []byte("rel.txt")}
	ev.call(t, op)
	if op.Err != errno.OK {
		t.Fatal(op.Err)
	}
	if _, err := ev.os.VFS.Resolve("/tmp/rel.txt"); err != nil {
		t.Fatalf("relative open missed cwd: %v", err)
	}
	// Relative chdir.
	mk := &Request{NR: SYS_mkdir, Buf: []byte("deeper")}
	cd2 := &Request{NR: SYS_chdir, Buf: []byte("deeper")}
	ev.callSeq(t, mk, cd2)
	if ev.pr.CWD != "/tmp/deeper" {
		t.Fatalf("cwd = %q", ev.pr.CWD)
	}
	// chdir to a file fails.
	bad := &Request{NR: SYS_chdir, Buf: []byte("/tmp/rel.txt")}
	ev.call(t, bad)
	if bad.Err != errno.ENOTDIR {
		t.Fatalf("chdir to file = %v", bad.Err)
	}
	// getcwd into a too-small buffer.
	tiny := &Request{NR: SYS_getcwd, Buf: make([]byte, 2)}
	ev.call(t, tiny)
	if tiny.Err != errno.ERANGE {
		t.Fatalf("tiny getcwd = %v", tiny.Err)
	}
}

func TestGetdentsRelative(t *testing.T) {
	ev := newEnv(t)
	ev.call(t, &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_WRONLY}, Buf: []byte("/tmp/z")})
	cd := &Request{NR: SYS_chdir, Buf: []byte("/tmp")}
	buf := make([]byte, 64)
	buf[0] = '.'
	gd := &Request{NR: SYS_getdents64, Buf: buf}
	ev.callSeq(t, cd, gd)
	if gd.Err != errno.OK {
		t.Fatal(gd.Err)
	}
	if !strings.Contains(string(buf[:gd.Ret]), "z") {
		t.Fatalf("listing = %q", buf[:gd.Ret])
	}
}
