package syscalls

import (
	"bytes"
	"testing"

	"genesys/internal/cpu"
	"genesys/internal/errno"
	"genesys/internal/fs"
	"genesys/internal/netstack"
	"genesys/internal/oskern"
	"genesys/internal/sig"
	"genesys/internal/sim"
	"genesys/internal/vmm"
)

type env struct {
	e  *sim.Engine
	os *oskern.OS
	pr *oskern.Process
	fb *fs.Framebuffer
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := sim.NewEngine(1)
	c := cpu.New(e, cpu.DefaultConfig())
	v := fs.NewVFS()
	net := netstack.New(e, netstack.DefaultConfig())
	vmCfg := vmm.DefaultConfig()
	pool := &vmm.Pool{Total: vmCfg.PhysPages}
	os := oskern.New(e, c, v, net, pool, vmCfg, oskern.DefaultConfig())
	fs.NewTmpfs().Mount(v, "/tmp")
	fb := fs.NewFramebuffer(fs.VScreenInfo{XRes: 64, YRes: 64, BPP: 32})
	os.AddDevice("fb0", fb)
	t.Cleanup(e.Shutdown)
	return &env{e: e, os: os, pr: os.NewProcess("app"), fb: fb}
}

// call dispatches one syscall from a fresh proc and returns the request.
func (ev *env) call(t *testing.T, r *Request) *Request {
	t.Helper()
	ev.e.Spawn("caller", func(p *sim.Proc) {
		Dispatch(&Ctx{P: p, OS: ev.os, Proc: ev.pr}, r)
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

// callSeq dispatches several syscalls in order within one proc.
func (ev *env) callSeq(t *testing.T, rs ...*Request) {
	t.Helper()
	ev.e.Spawn("caller", func(p *sim.Proc) {
		c := &Ctx{P: p, OS: ev.os, Proc: ev.pr}
		for _, r := range rs {
			Dispatch(c, r)
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWriteLseekReadClose(t *testing.T) {
	ev := newEnv(t)
	open := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_RDWR}, Buf: []byte("/tmp/f")}
	ev.call(t, open)
	if open.Err != errno.OK || open.Ret < 3 {
		t.Fatalf("open = %+v", open)
	}
	fd := uint64(open.Ret)
	write := &Request{NR: SYS_write, Args: [6]uint64{fd, 5}, Buf: []byte("hello")}
	seek := &Request{NR: SYS_lseek, Args: [6]uint64{fd, 0, fs.SeekSet}}
	buf := make([]byte, 16)
	read := &Request{NR: SYS_read, Args: [6]uint64{fd, 16}, Buf: buf}
	cl := &Request{NR: SYS_close, Args: [6]uint64{fd}}
	read2 := &Request{NR: SYS_read, Args: [6]uint64{fd, 16}, Buf: buf}
	ev.callSeq(t, write, seek, read, cl, read2)
	if write.Ret != 5 || seek.Ret != 0 || read.Ret != 5 {
		t.Fatalf("write=%d seek=%d read=%d", write.Ret, seek.Ret, read.Ret)
	}
	if string(buf[:5]) != "hello" {
		t.Fatalf("buf = %q", buf[:5])
	}
	if cl.Err != errno.OK || read2.Err != errno.EBADF {
		t.Fatalf("close=%v read-after-close=%v", cl.Err, read2.Err)
	}
}

func TestPreadPwrite(t *testing.T) {
	ev := newEnv(t)
	open := &Request{NR: SYS_open, Args: [6]uint64{fs.O_CREAT | fs.O_RDWR}, Buf: []byte("/tmp/p")}
	ev.call(t, open)
	fd := uint64(open.Ret)
	pw := &Request{NR: SYS_pwrite64, Args: [6]uint64{fd, 4, 100}, Buf: []byte("data")}
	buf := make([]byte, 4)
	pr := &Request{NR: SYS_pread64, Args: [6]uint64{fd, 4, 100}, Buf: buf}
	ev.callSeq(t, pw, pr)
	if pw.Ret != 4 || pr.Ret != 4 || string(buf) != "data" {
		t.Fatalf("pw=%+v pr=%+v buf=%q", pw, pr, buf)
	}
}

func TestMmapMadviseGetrusage(t *testing.T) {
	ev := newEnv(t)
	mm := &Request{NR: SYS_mmap, Args: [6]uint64{0, 1 << 20, 0, 0, ^uint64(0), 0}}
	ev.call(t, mm)
	if mm.Err != errno.OK || mm.Ret == 0 {
		t.Fatalf("mmap = %+v", mm)
	}
	addr := uint64(mm.Ret)
	ev.e.Spawn("touch", func(p *sim.Proc) {
		ev.pr.MM.Touch(p, addr, 1<<20, false)
	})
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
	mad := &Request{NR: SYS_madvise, Args: [6]uint64{addr, 1 << 20, vmm.MADV_DONTNEED}}
	ru := &Request{NR: SYS_getrusage, Args: [6]uint64{0}, Buf: make([]byte, RusageSize)}
	mun := &Request{NR: SYS_munmap, Args: [6]uint64{addr, 1 << 20}}
	ev.callSeq(t, mad, ru, mun)
	if mad.Err != errno.OK || mun.Err != errno.OK {
		t.Fatalf("madvise=%v munmap=%v", mad.Err, mun.Err)
	}
	usage, err := DecodeRusage(ru.Buf)
	if err != nil {
		t.Fatal(err)
	}
	if usage.MaxRSSBytes != 1<<20 || usage.RSSBytes != 0 {
		t.Fatalf("usage = %+v", usage)
	}
}

func TestSignalDelivery(t *testing.T) {
	ev := newEnv(t)
	target := ev.os.NewProcess("receiver")
	sq := &Request{NR: SYS_rt_sigqueueinfo, Args: [6]uint64{uint64(target.PID), sig.SIGRTMIN, 777}}
	ev.call(t, sq)
	if sq.Err != errno.OK {
		t.Fatalf("rt_sigqueueinfo = %v", sq.Err)
	}
	si, ok := target.Sig.TryWait()
	if !ok || si.Value != 777 || si.Pid != ev.pr.PID || si.Signo != sig.SIGRTMIN {
		t.Fatalf("siginfo = %+v ok=%v", si, ok)
	}
	bad := &Request{NR: SYS_rt_sigqueueinfo, Args: [6]uint64{999, sig.SIGRTMIN, 0}}
	ev.call(t, bad)
	if bad.Err != errno.ENOENT {
		t.Fatalf("signal to unknown pid = %v", bad.Err)
	}
}

func TestSocketBindSendRecv(t *testing.T) {
	ev := newEnv(t)
	s1 := &Request{NR: SYS_socket}
	s2 := &Request{NR: SYS_socket}
	ev.callSeq(t, s1, s2)
	fd1, fd2 := uint64(s1.Ret), uint64(s2.Ret)
	bind := &Request{NR: SYS_bind, Args: [6]uint64{fd1, 7000}}
	send := &Request{NR: SYS_sendto, Args: [6]uint64{fd2, 3, 0, 0, 7000}, Buf: []byte("msg")}
	recvBuf := make([]byte, 16)
	recv := &Request{NR: SYS_recvfrom, Args: [6]uint64{fd1, 16}, Buf: recvBuf}
	ev.callSeq(t, bind, send, recv)
	if bind.Err != errno.OK || send.Ret != 3 {
		t.Fatalf("bind=%v send=%+v", bind.Err, send)
	}
	if recv.Ret != 3 || !bytes.Equal(recvBuf[:3], []byte("msg")) {
		t.Fatalf("recv = %+v %q", recv, recvBuf[:3])
	}
	if recv.OutArgs[0] == 0 {
		t.Fatal("recvfrom did not report source port")
	}
	// sendto on a non-socket fd
	nb := &Request{NR: SYS_sendto, Args: [6]uint64{1, 1, 0, 0, 7000}, Buf: []byte("x")}
	ev.call(t, nb)
	if nb.Err != errno.ENOTSOCK {
		t.Fatalf("sendto on stdout = %v", nb.Err)
	}
}

func TestIoctlAndDeviceMmap(t *testing.T) {
	ev := newEnv(t)
	open := &Request{NR: SYS_open, Args: [6]uint64{fs.O_RDWR}, Buf: []byte("/dev/fb0")}
	ev.call(t, open)
	if open.Err != errno.OK {
		t.Fatalf("open fb0 = %v", open.Err)
	}
	fd := uint64(open.Ret)
	arg := make([]byte, 12)
	get := &Request{NR: SYS_ioctl, Args: [6]uint64{fd, fs.FBIOGET_VSCREENINFO}, Buf: arg}
	ev.call(t, get)
	info, _ := fs.DecodeVScreenInfo(arg)
	if info.XRes != 64 || info.BPP != 32 {
		t.Fatalf("vinfo = %+v", info)
	}
	mm := &Request{NR: SYS_mmap, Args: [6]uint64{0, 0, 0, 0, fd, 0}}
	ev.call(t, mm)
	if mm.Err != errno.OK {
		t.Fatalf("fb mmap = %v", mm.Err)
	}
	vma, err := ev.pr.MM.FindVMA(uint64(mm.Ret))
	if err != nil || vma.Device == nil {
		t.Fatalf("fb vma = %v, %v", vma, err)
	}
	vma.Device[0] = 42
	if ev.fb.Pixels()[0] != 42 {
		t.Fatal("fb mmap not aliased to pixels")
	}
}

func TestGetrusageGPU(t *testing.T) {
	ev := newEnv(t)
	// Without an attached GPU the call reports ENODEV.
	r := &Request{NR: SYS_getrusage, Args: [6]uint64{RUSAGE_GPU},
		Buf: make([]byte, GPURusageSize)}
	ev.call(t, r)
	if r.Err != errno.ENODEV {
		t.Fatalf("RUSAGE_GPU without GPU = %v", r.Err)
	}
	// Round trip of the encoding.
	u := GPURusage{KernelsLaunched: 1, WGsDispatched: 2, Interrupts: 3,
		Halts: 4, Resumes: 5, Syscalls: 6}
	got, err := DecodeGPURusage(EncodeGPURusage(u))
	if err != nil || got != u {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	if _, err := DecodeGPURusage([]byte{1}); err != errno.EINVAL {
		t.Fatalf("short decode = %v", err)
	}
}

func TestENOSYS(t *testing.T) {
	ev := newEnv(t)
	r := &Request{NR: 57} // fork
	ev.call(t, r)
	if r.Err != errno.ENOSYS || r.Ret != -1 {
		t.Fatalf("fork = %+v", r)
	}
}

func TestImplementedSet(t *testing.T) {
	// The paper implements 14 syscalls + our socket/bind additions + ioctl.
	if !Implemented(SYS_read) || !Implemented(SYS_rt_sigqueueinfo) || Implemented(57) {
		t.Fatal("Implemented() inconsistent")
	}
	if ImplementedCount() < 14 {
		t.Fatalf("implemented = %d, want ≥ 14 (paper's set)", ImplementedCount())
	}
	// Every implemented syscall must be classified readily-implementable.
	for nr := range map[int]bool{SYS_read: true, SYS_write: true, SYS_open: true,
		SYS_close: true, SYS_lseek: true, SYS_mmap: true, SYS_munmap: true,
		SYS_ioctl: true, SYS_pread64: true, SYS_pwrite64: true, SYS_madvise: true,
		SYS_socket: true, SYS_sendto: true, SYS_recvfrom: true, SYS_bind: true,
		SYS_getrusage: true, SYS_rt_sigqueueinfo: true} {
		info := Classification()[nr]
		if info.Class != ClassReady {
			t.Fatalf("implemented syscall %s classified %v", info.Name, info.Class)
		}
	}
}

func TestClassificationPercentages(t *testing.T) {
	ready, hw, ext, total := ClassCounts()
	if total < 300 {
		t.Fatalf("total = %d, want 300+ (paper: 'over 300')", total)
	}
	pr := 100 * float64(ready) / float64(total)
	ph := 100 * float64(hw) / float64(total)
	px := 100 * float64(ext) / float64(total)
	// §IV: ~79% readily-implementable, 13% hardware changes, 8% extensive.
	if pr < 77.5 || pr > 80.5 {
		t.Fatalf("readily = %.1f%%, want ≈79%%", pr)
	}
	if ph < 11.5 || ph > 14.5 {
		t.Fatalf("hardware = %.1f%%, want ≈13%%", ph)
	}
	if px < 6.5 || px > 9.5 {
		t.Fatalf("extensive = %.1f%%, want ≈8%%", px)
	}
}

func TestClassificationLookups(t *testing.T) {
	cases := map[string]Class{
		"pread64":           ClassReady,
		"capget":            ClassHardware,
		"setns":             ClassHardware,
		"set_mempolicy":     ClassHardware,
		"sched_setaffinity": ClassHardware,
		"rt_sigaction":      ClassHardware,
		"ioperm":            ClassHardware,
		"fork":              ClassExtensive,
		"execve":            ClassExtensive,
	}
	for name, want := range cases {
		info, ok := ClassifyName(name)
		if !ok || info.Class != want {
			t.Fatalf("%s = %v (ok=%v), want %v", name, info.Class, ok, want)
		}
		if want != ClassReady && info.Reason == "" {
			t.Fatalf("%s lacks a reason", name)
		}
	}
	if _, ok := ClassifyName("not_a_syscall"); ok {
		t.Fatal("bogus name classified")
	}
	if len(ByClass(ClassHardware)) == 0 {
		t.Fatal("ByClass empty")
	}
	for _, c := range []Class{ClassReady, ClassHardware, ClassExtensive} {
		if c.String() == "unknown" {
			t.Fatal("class string")
		}
	}
}

func TestNumbersMatchLinux(t *testing.T) {
	// Spot-check that the classification table's indexes are real Linux
	// x86-64 numbers and agree with our constants.
	cl := Classification()
	checks := map[int]string{
		SYS_read: "read", SYS_write: "write", SYS_open: "open",
		SYS_close: "close", SYS_lseek: "lseek", SYS_mmap: "mmap",
		SYS_munmap: "munmap", SYS_ioctl: "ioctl", SYS_pread64: "pread64",
		SYS_pwrite64: "pwrite64", SYS_madvise: "madvise",
		SYS_socket: "socket", SYS_sendto: "sendto",
		SYS_recvfrom: "recvfrom", SYS_bind: "bind",
		SYS_getrusage: "getrusage", SYS_rt_sigqueueinfo: "rt_sigqueueinfo",
		57: "fork", 59: "execve", 202: "futex", 332: "statx",
	}
	for nr, name := range checks {
		if cl[nr].Name != name {
			t.Fatalf("syscall %d = %q, want %q", nr, cl[nr].Name, name)
		}
	}
}

func TestRusageRoundTrip(t *testing.T) {
	u := vmm.Rusage{MaxRSSBytes: 1, RSSBytes: 2, MinorFaults: 3, MajorFaults: 4, SwapOuts: 5}
	got, err := DecodeRusage(EncodeRusage(u))
	if err != nil || got != u {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	if _, err := DecodeRusage([]byte{1, 2}); err != errno.EINVAL {
		t.Fatalf("short decode = %v", err)
	}
}
