package syscalls

import "testing"

// nrOf resolves a syscall name through the classification table.
func nrOf(t *testing.T, name string) int {
	t.Helper()
	in, ok := ClassifyName(name)
	if !ok {
		t.Fatalf("unknown syscall name %q", name)
	}
	return in.NR
}

func TestRestartable(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		// blocking I/O restarts transparently (SA_RESTART semantics)
		{"read", true},
		{"write", true},
		{"pread64", true},
		{"pwrite64", true},
		{"open", true},
		{"sendto", true},
		{"recvfrom", true},
		{"accept", true},
		{"connect", true},
		{"ioctl", true},
		{"mmap", true},
		{"madvise", true},
		{"getrusage", true},
		{"getdents64", true},
		// close releases the fd even when it fails: never retry
		{"close", false},
		// signal delivery would duplicate on retry
		{"rt_sigqueueinfo", false},
		{"kill", false},
		// interval semantics forbid a blind restart
		{"nanosleep", false},
		{"clock_nanosleep", false},
		{"poll", false},
		{"select", false},
		{"pause", false},
		{"epoll_wait", false},
		{"rt_sigtimedwait", false},
	}
	for _, c := range cases {
		if got := Restartable(nrOf(t, c.name)); got != c.want {
			t.Errorf("Restartable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRestartableOutOfRange(t *testing.T) {
	for _, nr := range []int{-1, 1 << 20} {
		if Restartable(nr) {
			t.Errorf("Restartable(%d) = true for unknown syscall", nr)
		}
	}
}

func TestRestartableSubsetOfImplementedBehaves(t *testing.T) {
	// Every implemented-and-restartable call must be ClassReady: calls the
	// paper rules out for GPU invocation can't be restarted from one.
	for nr := range restartable {
		if classification[nr].Class != ClassReady {
			t.Errorf("%s restartable but class %v",
				classification[nr].Name, classification[nr].Class)
		}
	}
}
