package syscalls

import (
	"encoding/binary"

	"genesys/internal/errno"
	"genesys/internal/fs"
	"genesys/internal/netstack"
	"genesys/internal/sim"
)

// Stream-socket and readiness system calls (Linux x86-64 numbers): the
// connection-oriented half of the networking surface, plus poll(2) so a
// GPU work-group can multiplex hundreds of fleet connections through a
// single blocking slot instead of parking one wavefront per socket.
const (
	SYS_poll    = 7
	SYS_connect = 42
	SYS_accept  = 43
	SYS_listen  = 50
)

func init() {
	table[SYS_poll] = sysPoll
	table[SYS_connect] = sysConnect
	table[SYS_accept] = sysAccept
	table[SYS_listen] = sysListen
}

// PollInfinite in the timeout argument means "block until ready".
// (A literal 0 is a non-blocking readiness probe, as with poll(2).)
const PollInfinite = ^uint64(0)

// sysConnect: Args = [fd, dstPort]. Blocks for the handshake round
// trip; ECONNREFUSED if nobody is listening or the backlog is full.
func sysConnect(c *Ctx, r *Request) {
	sock, err := socketOf(c, int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	t0 := c.OS.E.Now()
	if err := sock.Connect(c.P, int(r.Args[1])); err != nil {
		fail(r, err)
		return
	}
	netSpan(c, "connect", r, sock.Port(), t0)
}

// sysListen: Args = [fd, backlog].
func sysListen(c *Ctx, r *Request) {
	sock, err := socketOf(c, int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	if err := sock.Listen(int(r.Args[1])); err != nil {
		fail(r, err)
	}
}

// sysAccept: Args = [fd, timeout_ns] (0 = block indefinitely). Returns
// the new connection's fd; the remote port lands in OutArgs[0].
func sysAccept(c *Ctx, r *Request) {
	sock, err := socketOf(c, int(int64(r.Args[0])))
	if err != nil {
		fail(r, err)
		return
	}
	t0 := c.OS.E.Now()
	conn, err := sock.AcceptTimeout(c.P, sim.Time(r.Args[1]))
	if err != nil {
		fail(r, err)
		return
	}
	f := &fs.File{Special: conn, Path: "socket:[tcp]"}
	fd, err := c.Proc.FDs.Install(f)
	if err != nil {
		conn.Close()
		fail(r, err)
		return
	}
	netSpan(c, "accept", r, conn.Port(), t0)
	r.Ret = int64(fd)
	r.OutArgs[0] = uint64(conn.RemotePort())
}

// PollFDSize is the per-fd size of the poll request encoding: a u32
// fd in the first count*4 bytes of Buf, one revents byte each after.
const PollFDSize = 5

// EncodePollFDs lays out the poll(2) request buffer for the given fds:
// count little-endian u32 fds followed by count revents bytes (zeroed).
func EncodePollFDs(fds []int) []byte {
	return EncodePollFDsInto(nil, fds)
}

// EncodePollFDsInto is EncodePollFDs writing into buf's storage when it
// is large enough (allocating otherwise), for callers that poll in a
// loop and reuse one scratch buffer.
func EncodePollFDsInto(buf []byte, fds []int) []byte {
	n := len(fds) * PollFDSize
	if cap(buf) >= n {
		buf = buf[:n]
	} else {
		buf = make([]byte, n)
	}
	for i, fd := range fds {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(fd))
	}
	for i := len(fds) * 4; i < n; i++ {
		buf[i] = 0
	}
	return buf
}

// DecodePollRevents returns the revents bytes from a poll reply buffer
// (1 = readable, 0 = not ready).
func DecodePollRevents(buf []byte, count int) []byte {
	return buf[count*4 : count*4+count]
}

// sysPoll: Args = [nfds, timeout_ns]; Buf holds nfds u32 fds followed by
// nfds revents bytes (see EncodePollFDs). A timeout of 0 is a
// non-blocking probe, PollInfinite blocks until readiness, anything else
// is a deadline that fails the wait into Ret = 0 (no EAGAIN — poll(2)
// reports an empty set on timeout). Ret counts the ready fds and each
// ready fd's revents byte is set to 1, level-triggered.
func sysPoll(c *Ctx, r *Request) {
	count := int(r.Args[0])
	if count <= 0 || len(r.Buf) < count*PollFDSize {
		fail(r, errno.EINVAL)
		return
	}
	socks := make([]*netstack.Socket, count)
	for i := 0; i < count; i++ {
		fd := int(int32(binary.LittleEndian.Uint32(r.Buf[i*4:])))
		sock, err := socketOf(c, fd)
		if err != nil {
			fail(r, err)
			return
		}
		socks[i] = sock
	}
	t0 := c.OS.E.Now()
	revents := r.Buf[count*4 : count*4+count]
	for i := range revents {
		revents[i] = 0
	}
	// A transient poller per call, the way poll(2) rebuilds its wait
	// queue each time; Close unhooks the watcher links.
	pg := c.OS.Net.NewPoller()
	defer pg.Close()
	for _, sock := range socks {
		if err := pg.Add(sock); err != nil {
			fail(r, err)
			return
		}
	}
	var ready []*netstack.Socket
	switch r.Args[1] {
	case 0:
		ready = pg.TryWait()
	case PollInfinite:
		var err error
		ready, err = pg.Wait(c.P, 0)
		if err != nil {
			fail(r, err)
			return
		}
	default:
		var err error
		ready, err = pg.Wait(c.P, sim.Time(r.Args[1]))
		if err != nil && err != errno.EAGAIN {
			fail(r, err)
			return
		}
	}
	for _, rs := range ready {
		for i, sock := range socks {
			if sock == rs {
				revents[i] = 1
			}
		}
	}
	netSpan(c, "poll", r, len(ready), t0)
	r.Ret = int64(len(ready))
}
