package sim

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar samples and reports count, mean and standard
// deviation using Welford's online algorithm.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of samples.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Std returns the sample standard deviation (0 for fewer than 2 samples).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest sample (0 for no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 for no samples).
func (s *Summary) Max() float64 { return s.max }

func (s *Summary) String() string {
	return fmt.Sprintf("%.3g ± %.2g (n=%d)", s.Mean(), s.Std(), s.n)
}

// Series accumulates values into fixed-width virtual-time bins; it backs
// time-series traces such as CPU utilization and disk throughput.
type Series struct {
	BinWidth Time
	bins     []float64
}

// NewSeries returns a series with the given bin width.
func NewSeries(binWidth Time) *Series {
	if binWidth <= 0 {
		panic("sim: series bin width must be positive")
	}
	return &Series{BinWidth: binWidth}
}

func (s *Series) grow(idx int) {
	for len(s.bins) <= idx {
		s.bins = append(s.bins, 0)
	}
}

// Add accumulates v into the bin containing time t.
func (s *Series) Add(t Time, v float64) {
	if t < 0 {
		return
	}
	idx := int(t / s.BinWidth)
	s.grow(idx)
	s.bins[idx] += v
}

// AddInterval spreads v uniformly over [t0, t1). Mass before t = 0 is
// dropped, matching Add; the [0, t1) part keeps its proportional share.
func (s *Series) AddInterval(t0, t1 Time, v float64) {
	if t1 <= t0 {
		s.Add(t0, v)
		return
	}
	total := float64(t1 - t0)
	t := t0
	if t < 0 {
		// Clamp to zero: with a negative t, the bin-end computation
		// (t/BinWidth truncates toward zero) produced a chunk straddling
		// t = 0 whose entire mass — including the valid [0, binEnd)
		// share — was discarded by Add.
		if t1 <= 0 {
			return
		}
		t = 0
	}
	for t < t1 {
		binEnd := (t/s.BinWidth + 1) * s.BinWidth
		if binEnd > t1 {
			binEnd = t1
		}
		s.Add(t, v*float64(binEnd-t)/total)
		t = binEnd
	}
}

// Bins returns a copy of the accumulated bins.
func (s *Series) Bins() []float64 {
	out := make([]float64, len(s.bins))
	copy(out, s.bins)
	return out
}

// Bin returns the value of bin i (0 if out of range).
func (s *Series) Bin(i int) float64 {
	if i < 0 || i >= len(s.bins) {
		return 0
	}
	return s.bins[i]
}

// NumBins returns the number of bins touched so far.
func (s *Series) NumBins() int { return len(s.bins) }

// Counter is a named monotonically increasing statistic.
type Counter struct {
	Name  string
	value int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.value++ }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.value += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.value }

// Percentiles returns the requested percentiles (0..100) of samples.
// It sorts a copy of the input.
func Percentiles(samples []float64, ps ...float64) []float64 {
	if len(samples) == 0 {
		return make([]float64, len(ps))
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		rank := p / 100 * float64(len(sorted)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if hi >= len(sorted) {
			hi = len(sorted) - 1
		}
		frac := rank - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out
}
