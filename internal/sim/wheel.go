package sim

// The hierarchical timer wheel: the far half of the engine's two-level
// scheduler. Events whose instant is at least wheelCutoff in the future
// are parked in a coarse bucket keyed by their instant instead of the
// binary heap, making schedule and Cancel O(1) regardless of how many
// far-future timers (fleet session timeouts, retransmit watchdogs, poll
// deadlines) are pending. Buckets are drained into the near-term heap
// strictly before the clock can reach their window, so every event still
// executes in global (t, seq) order and the engine stays bit-identical
// to the single-heap scheduler it replaced. See DESIGN.md §13.
//
// Geometry: wheelLevels levels of wheelSlotsPer buckets each. Level 0
// buckets are wheelGran wide; each higher level is wheelSlotsPer times
// coarser. With 64ns·1024 = 64µs granularity and three 64-slot levels
// the spans are ~4.2ms / ~268ms / ~17.2s; events beyond the top span go
// to a small overflow list that is re-examined at level-2 boundaries.
const (
	wheelGran      = 64 * Microsecond // level-0 bucket width
	wheelLevelBits = 6
	wheelSlotsPer  = 1 << wheelLevelBits
	wheelSlotMask  = wheelSlotsPer - 1
	wheelLevels    = 3

	// wheelCutoff is the routing threshold in place(): an event at least
	// this far in the future takes the wheel. Two granules, so a wheel
	// event always lands in a bucket strictly after the drain frontier.
	wheelCutoff = 2 * wheelGran

	wheelL1Mask = wheelSlotsPer*wheelSlotsPer - 1
	wheelL2Mask = wheelSlotsPer*wheelSlotsPer*wheelSlotsPer - 1
)

// timerWheel holds the far-future events. cur is the drain frontier as a
// level-0 tick index (t / wheelGran): every event with tick <= cur has
// been drained into the heap; every resident event has tick > cur.
type timerWheel struct {
	cur    int64
	slots  [wheelLevels][wheelSlotsPer][]event
	lcount [wheelLevels]int // resident events per level
	over   []event          // events beyond the level-2 span
	count  int              // total resident events (including overflow)
}

// wheelTick is the level-0 tick index of instant t.
func wheelTick(t Time) int64 { return int64(t) / int64(wheelGran) }

// wheelInsert parks ev in the bucket covering its instant. Events whose
// tick is not strictly beyond the drain frontier (possible when the
// frontier ran ahead of the clock during an idle advance) fall back to
// the heap, which is always correct.
func (e *Engine) wheelInsert(ev event) {
	w := &e.wh
	tv := wheelTick(ev.t)
	if tv <= w.cur {
		e.heapPush(ev)
		return
	}
	e.stats.WheelScheduled++
	w.count++
	if w.count > e.stats.WheelPeak {
		e.stats.WheelPeak = w.count
	}
	e.wheelPlace(ev, tv)
}

// wheelPlace files ev (with precomputed tick tv > cur) into its level and
// slot. Shared by external inserts and cascade re-insertion; it must not
// touch seq, so re-filed events keep their place in the total order.
func (e *Engine) wheelPlace(ev event, tv int64) {
	w := &e.wh
	delta := tv - w.cur
	var lvl int
	switch {
	case delta < wheelSlotsPer:
		lvl = 0
	case delta < wheelSlotsPer*wheelSlotsPer:
		lvl = 1
	case delta < wheelSlotsPer*wheelSlotsPer*wheelSlotsPer:
		lvl = 2
	default:
		if ev.tmr != nil {
			ev.tmr.loc = timerInOverflow
			ev.tmr.pos = len(w.over)
		}
		w.over = append(w.over, ev)
		return
	}
	slot := int((tv >> (lvl * wheelLevelBits)) & wheelSlotMask)
	b := &w.slots[lvl][slot]
	if ev.tmr != nil {
		ev.tmr.loc = lvl*wheelSlotsPer + slot
		ev.tmr.pos = len(*b)
	}
	*b = append(*b, ev)
	w.lcount[lvl]++
}

// wheelCancel removes the event tracked by t from its bucket in O(1) by
// swap-remove. Called from Timer.Cancel with t.loc identifying the
// bucket (>= 0) or the overflow list.
func (e *Engine) wheelCancel(t *Timer) {
	w := &e.wh
	var b *[]event
	if t.loc == timerInOverflow {
		b = &w.over
	} else {
		lvl := t.loc >> wheelLevelBits
		b = &w.slots[lvl][t.loc&wheelSlotMask]
		w.lcount[lvl]--
	}
	last := len(*b) - 1
	if t.pos != last {
		moved := (*b)[last]
		(*b)[t.pos] = moved
		if moved.tmr != nil {
			moved.tmr.pos = t.pos
		}
	}
	(*b)[last] = event{}
	*b = (*b)[:last]
	w.count--
	e.stats.WheelCanceled++
}

// wheelCatchUp drains every wheel event with instant <= target into the
// heap. Called before the engine commits to executing a heap event at
// target, so no wheel event can be skipped over: after it returns, all
// residents have t > target (or the wheel is empty).
func (e *Engine) wheelCatchUp(target Time) {
	tt := wheelTick(target)
	w := &e.wh
	for w.count > 0 && w.cur < tt {
		e.wheelStep(tt)
	}
}

// wheelAdvanceUntilHeap advances the frontier until a drain lands events
// in the heap (or the wheel empties). Used when the heap and ready queue
// are empty and only wheel events remain.
func (e *Engine) wheelAdvanceUntilHeap() {
	w := &e.wh
	for w.count > 0 && len(e.heap) == 0 {
		e.wheelStep(int64(1)<<62 - 1)
	}
}

// wheelStep advances the frontier by one tick — skipping runs of ticks
// that provably hold nothing — cascading higher-level buckets at their
// boundaries and draining the level-0 bucket of the new frontier tick.
// bound caps how far an empty-run skip may jump.
func (e *Engine) wheelStep(bound int64) {
	w := &e.wh
	// Empty-run skip: with no level-0 residents, nothing can drain before
	// the next level-1 cascade boundary; with level 1 also empty, nothing
	// before the next level-2 boundary; with all levels empty (overflow
	// only), jump to the level-2 boundary at or below the earliest
	// overflow event. Jumps never cross the boundary they reason about.
	if w.lcount[0] == 0 {
		jump := w.cur | wheelSlotMask // last tick before the next L1 cascade
		if w.lcount[1] == 0 {
			jump = w.cur | wheelL1Mask // last tick before the next L2 cascade
			if w.lcount[2] == 0 && len(w.over) > 0 {
				min := wheelTick(w.over[0].t)
				for _, ev := range w.over[1:] {
					if tv := wheelTick(ev.t); tv < min {
						min = tv
					}
				}
				if j := (min &^ int64(wheelL1Mask)) - 1; j > jump {
					jump = j
				}
			}
		}
		if jump > bound {
			jump = bound
		}
		if jump > w.cur {
			w.cur = jump
		}
		if w.cur >= bound {
			return
		}
	}
	w.cur++
	c := w.cur
	if c&wheelSlotMask == 0 {
		if c&wheelL1Mask == 0 {
			e.wheelCascade(2, int((c>>(2*wheelLevelBits))&wheelSlotMask))
			e.wheelRefileOverflow()
		}
		e.wheelCascade(1, int((c>>wheelLevelBits)&wheelSlotMask))
	}
	e.wheelDrainL0(int(c & wheelSlotMask))
}

// wheelCascade re-files every event of the given higher-level bucket now
// that the frontier has entered its window; each lands in a finer bucket
// (or, for a tick equal to the frontier, is picked up by the level-0
// drain that follows in the same step).
func (e *Engine) wheelCascade(lvl, slot int) {
	w := &e.wh
	b := w.slots[lvl][slot]
	if len(b) == 0 {
		return
	}
	w.slots[lvl][slot] = b[:0]
	w.lcount[lvl] -= len(b)
	for i, ev := range b {
		tv := wheelTick(ev.t)
		if tv <= w.cur {
			// tick == cur: due exactly at the boundary being crossed.
			w.count--
			e.heapPush(ev)
		} else {
			e.wheelPlace(ev, tv)
		}
		b[i] = event{}
	}
}

// wheelRefileOverflow moves overflow events that now fit the level-2 span
// into the wheel proper. Runs only at level-2 cascade boundaries.
func (e *Engine) wheelRefileOverflow() {
	w := &e.wh
	if len(w.over) == 0 {
		return
	}
	kept := w.over[:0]
	for _, ev := range w.over {
		tv := wheelTick(ev.t)
		if tv-w.cur < wheelSlotsPer*wheelSlotsPer*wheelSlotsPer {
			e.wheelPlace(ev, tv)
		} else {
			if ev.tmr != nil {
				ev.tmr.pos = len(kept)
			}
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(w.over); i++ {
		w.over[i] = event{}
	}
	w.over = kept
}

// wheelDrainL0 pushes every event of level-0 bucket slot into the heap;
// the heap restores exact (t, seq) order among near-term events.
func (e *Engine) wheelDrainL0(slot int) {
	w := &e.wh
	b := w.slots[0][slot]
	if len(b) == 0 {
		return
	}
	w.slots[0][slot] = b[:0]
	w.lcount[0] -= len(b)
	w.count -= len(b)
	for i, ev := range b {
		e.heapPush(ev)
		b[i] = event{}
	}
}

// wheelAppendPending appends every wheel-resident event to evs (for
// checkpoint fingerprints); order is restored by the caller's sort.
func (e *Engine) wheelAppendPending(evs []event) []event {
	w := &e.wh
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for slot := range w.slots[lvl] {
			evs = append(evs, w.slots[lvl][slot]...)
		}
	}
	return append(evs, w.over...)
}

// wheelReset drops every wheel-resident event (engine shutdown).
func (e *Engine) wheelReset() {
	w := &e.wh
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for slot := range w.slots[lvl] {
			w.slots[lvl][slot] = nil
		}
		w.lcount[lvl] = 0
	}
	w.over = nil
	w.count = 0
}
