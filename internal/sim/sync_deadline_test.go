package sim

import "testing"

// WaitDeadline with no signal returns timedOut=true exactly at the
// deadline.
func TestWaitDeadlineTimesOut(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	var timedOut bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		timedOut = c.WaitDeadline(p, "test", 100*Microsecond)
		at = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || at != 100*Microsecond {
		t.Fatalf("timedOut=%v at %v, want true at 100µs", timedOut, at)
	}
	if c.Waiters() != 0 {
		t.Fatalf("stale waiter after timeout")
	}
}

// A Signal before the deadline wins: timedOut=false, the deadline timer
// is canceled (no stray event later), and the waiter resumes at signal
// time.
func TestWaitDeadlineSignalWins(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	var timedOut bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		timedOut = c.WaitDeadline(p, "test", Second)
		at = e.Now()
	})
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(30 * Microsecond)
		c.Signal()
	})
	canceledBefore := e.Stats().TimersCanceled
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if timedOut || at != 30*Microsecond {
		t.Fatalf("timedOut=%v at %v, want false at 30µs", timedOut, at)
	}
	if e.Stats().TimersCanceled <= canceledBefore {
		t.Fatalf("deadline timer not canceled on signal")
	}
	if e.Now() != 30*Microsecond {
		t.Fatalf("engine ran to %v; canceled deadline still fired", e.Now())
	}
}

// A deadline at or before now returns timedOut immediately, without
// blocking or scheduling anything.
func TestWaitDeadlineAlreadyPassed(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	e.Spawn("waiter", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		if !c.WaitDeadline(p, "test", 10*Microsecond) {
			t.Error("deadline at now should time out immediately")
		}
		if !c.WaitDeadline(p, "test", 5*Microsecond) {
			t.Error("deadline in the past should time out immediately")
		}
		if e.Now() != 10*Microsecond {
			t.Errorf("immediate timeout advanced time to %v", e.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Broadcast wakes a mix of plain and deadline waiters; none of the
// deadline timers fire afterwards.
func TestWaitDeadlineBroadcastMix(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	woke := 0
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("waiter", func(p *Proc) {
			if i%2 == 0 {
				if c.WaitDeadline(p, "test", Second) {
					t.Errorf("waiter %d timed out despite broadcast", i)
				}
			} else {
				c.Wait(p, "test")
			}
			woke++
		})
	}
	e.Spawn("caster", func(p *Proc) {
		p.Sleep(50 * Microsecond)
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke %d of 3 waiters", woke)
	}
	if e.Now() != 50*Microsecond {
		t.Fatalf("engine ran to %v; a canceled deadline fired", e.Now())
	}
}

// The timeout path and the signal path race at the same instant: the
// signal was scheduled first, so it claims the waiter and the timer
// must report not-timed-out.
func TestWaitDeadlineSameInstantSignal(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	var timedOut bool
	e.Spawn("waiter", func(p *Proc) {
		timedOut = c.WaitDeadline(p, "test", 20*Microsecond)
	})
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(20 * Microsecond)
		c.Signal() // same virtual instant as the deadline
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Either outcome is a woken waiter; the invariant is exactly one
	// wake and no stale waiter.
	if c.Waiters() != 0 {
		t.Fatalf("stale waiter after same-instant race")
	}
	_ = timedOut
}
