// Package sim provides the discrete-event simulation kernel that the rest
// of the GENESYS reproduction is built on.
//
// The engine advances a virtual clock by executing events in (time,
// sequence) order. Two kinds of activity exist:
//
//   - callbacks: plain functions scheduled with At/After; they run inline
//     in the engine loop and must not block, and
//   - processes: goroutines written in ordinary imperative style that
//     interact with virtual time through Sleep, Cond.Wait, Queue and
//     Resource operations.
//
// Exactly one process (or the engine loop itself) runs at any instant; the
// engine hands a single execution token back and forth over channels, so
// simulations are bit-deterministic for a given seed and free of data
// races by construction.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Micros constructs a Time from a (possibly fractional) number of
// microseconds.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micro reports t as a floating-point number of microseconds.
func (t Time) Micro() float64 { return float64(t) / float64(Microsecond) }

// Milli reports t as a floating-point number of milliseconds.
func (t Time) Milli() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micro())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milli())
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procBlocked
	procDone
)

type killSignal struct{}

// Proc is a simulated process: a goroutine whose interaction with time is
// mediated by the engine. All Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	e       *Engine
	name    string
	wake    chan struct{}
	state   procState
	reason  string // why the proc is blocked, for deadlock reports
	daemon  bool
	killed  bool
	started bool
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Rand returns the engine's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.e.Rand }

// event is one scheduled occurrence. Exactly one of p or fn is set.
type event struct {
	t        Time
	seq      uint64
	p        *Proc
	fn       func()
	canceled bool
}

// Timer is a handle to a scheduled callback that can be canceled.
type Timer struct{ ev *event }

// Cancel stops the timer's callback from running. Canceling an
// already-fired or already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

// Engine is the discrete-event simulation core.
type Engine struct {
	now   Time
	heap  []*event
	seq   uint64
	yield chan struct{}

	procs    []*Proc
	live     int // procs spawned and not yet done
	liveUser int // live non-daemon procs
	fatal    error

	// Rand is the engine-wide deterministic random source.
	Rand *rand.Rand
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		Rand:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// --- event heap (min-heap ordered by (t, seq)) ---

func (e *Engine) pushEvent(ev *event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if eventLess(e.heap[i], e.heap[parent]) {
			e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
			i = parent
		} else {
			break
		}
	}
}

func (e *Engine) popEvent() *event {
	for len(e.heap) > 0 {
		top := e.heap[0]
		n := len(e.heap) - 1
		e.heap[0] = e.heap[n]
		e.heap[n] = nil
		e.heap = e.heap[:n]
		if n > 0 {
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				least := i
				if l < n && eventLess(e.heap[l], e.heap[least]) {
					least = l
				}
				if r < n && eventLess(e.heap[r], e.heap[least]) {
					least = r
				}
				if least == i {
					break
				}
				e.heap[i], e.heap[least] = e.heap[least], e.heap[i]
				i = least
			}
		}
		if !top.canceled {
			return top
		}
	}
	return nil
}

func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (e *Engine) schedule(t Time, p *Proc, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", t, e.now))
	}
	e.seq++
	ev := &event{t: t, seq: e.seq, p: p, fn: fn}
	e.pushEvent(ev)
	return ev
}

// At schedules fn to run as a callback at absolute time t. Callbacks run
// inline in the engine loop and must not block.
func (e *Engine) At(t Time, fn func()) *Timer {
	return &Timer{ev: e.schedule(t, nil, fn)}
}

// After schedules fn to run as a callback d from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Spawn starts a new process named name running fn. The process begins
// execution at the current virtual time, after the caller next yields to
// the engine.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon starts a process that is expected to block forever (worker
// pools, dispatchers). Daemons do not count toward deadlock detection and
// are reaped by Shutdown.
func (e *Engine) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	p := &Proc{e: e, name: name, wake: make(chan struct{}), daemon: daemon}
	e.procs = append(e.procs, p)
	e.live++
	if !daemon {
		e.liveUser++
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSignal); !isKill && e.fatal == nil {
					e.fatal = fmt.Errorf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			p.state = procDone
			e.live--
			if !p.daemon {
				e.liveUser--
			}
			e.yield <- struct{}{}
		}()
		<-p.wake
		if p.killed {
			panic(killSignal{})
		}
		p.state = procRunning
		fn(p)
	}()
	e.schedule(e.now, p, nil)
	p.state = procRunnable
	return p
}

// resume hands the execution token to p and waits for it to come back.
func (e *Engine) resume(p *Proc) {
	if p.state == procDone {
		return
	}
	p.wake <- struct{}{}
	<-e.yield
}

// switchToEngine gives the token back to the engine and blocks until the
// engine resumes this process.
func (p *Proc) switchToEngine() {
	p.e.yield <- struct{}{}
	<-p.wake
	if p.killed {
		panic(killSignal{})
	}
	p.state = procRunning
}

// Sleep suspends the process for duration d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	p.e.schedule(p.e.now+d, p, nil)
	p.state = procBlocked
	p.reason = "sleep"
	p.switchToEngine()
}

// Yield reschedules the process at the current time, letting any other
// event scheduled for this instant run first.
func (p *Proc) Yield() {
	p.e.schedule(p.e.now, p, nil)
	p.state = procBlocked
	p.reason = "yield"
	p.switchToEngine()
}

// block suspends the process with no scheduled wake-up; something else
// (a Cond, Queue or Resource) must schedule its resumption.
func (p *Proc) block(reason string) {
	p.state = procBlocked
	p.reason = reason
	p.switchToEngine()
}

// unblock schedules p to resume at the current time.
func (p *Proc) unblock() {
	p.e.schedule(p.e.now, p, nil)
	p.state = procRunnable
}

// ErrDeadlock is returned by Run when no events remain but non-daemon
// processes are still blocked.
type ErrDeadlock struct {
	Now     Time
	Blocked []string // "name (reason)" for each blocked non-daemon proc
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d proc(s) blocked forever: %s",
		e.Now, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes events until none remain. It returns nil on quiescence
// (all non-daemon processes finished), an *ErrDeadlock if non-daemon
// processes are blocked with no pending events, or the panic error of a
// crashed process.
func (e *Engine) Run() error { return e.RunUntil(MaxTime) }

// RunUntil executes events with time ≤ limit. Reaching the limit with
// events still pending is not an error; the clock is left at limit.
func (e *Engine) RunUntil(limit Time) error {
	for {
		if e.fatal != nil {
			return e.fatal
		}
		ev := e.popEvent()
		if ev == nil {
			if e.liveUser > 0 {
				return e.deadlockErr()
			}
			return nil
		}
		if ev.t > limit {
			e.pushEvent(ev) // keep for a later RunUntil
			e.now = limit
			return nil
		}
		e.now = ev.t
		if ev.p != nil {
			e.resume(ev.p)
		} else {
			ev.fn()
		}
	}
}

func (e *Engine) deadlockErr() error {
	var blocked []string
	for _, p := range e.procs {
		if !p.daemon && p.state == procBlocked {
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.reason))
		}
	}
	sort.Strings(blocked)
	return &ErrDeadlock{Now: e.now, Blocked: blocked}
}

// Shutdown kills every still-live process so no goroutines leak. It must
// be called from outside the engine loop (i.e. not from a proc or
// callback), typically after Run returns.
func (e *Engine) Shutdown() {
	for _, p := range e.procs {
		if p.state == procDone || p.state == procNew {
			continue
		}
		p.killed = true
		e.resume(p)
	}
	e.heap = nil
}
