// Package sim provides the discrete-event simulation kernel that the rest
// of the GENESYS reproduction is built on.
//
// The engine advances a virtual clock by executing events in (time,
// sequence) order. Two kinds of activity exist:
//
//   - callbacks: plain functions scheduled with At/After (cancellable) or
//     CallAt/CallAfter (fire-and-forget, allocation-free); they run inline
//     in the engine loop and must not block, and
//   - processes: goroutines written in ordinary imperative style that
//     interact with virtual time through Sleep, Cond.Wait, Queue and
//     Resource operations.
//
// Exactly one process (or the engine loop itself) runs at any instant; the
// engine hands a single execution token back and forth over channels, so
// simulations are bit-deterministic for a given seed and free of data
// races by construction.
//
// Internally the engine keeps two event containers whose union is always
// consumed in strict (time, sequence) order:
//
//   - a value-based binary min-heap for events in the future, and
//   - a same-instant ready queue (FIFO by sequence) for events scheduled
//     at the current virtual time — unblocks, yields, spawns and
//     zero-delay callbacks — which therefore bypass the heap entirely.
//
// Events are plain values stored inline in those containers, so
// steady-state scheduling performs no allocation; only the cancellable
// At/After path allocates its Timer handle. See EngineStats for the
// counters that expose this machinery.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Micros constructs a Time from a (possibly fractional) number of
// microseconds.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micro reports t as a floating-point number of microseconds.
func (t Time) Micro() float64 { return float64(t) / float64(Microsecond) }

// Milli reports t as a floating-point number of milliseconds.
func (t Time) Milli() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micro())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milli())
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procBlocked
	procDone
)

type killSignal struct{}

// Proc is a simulated process: a goroutine whose interaction with time is
// mediated by the engine. All Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	e       *Engine
	name    string
	wake    chan struct{}
	state   procState
	reason  string // why the proc is blocked, for deadlock reports
	idx     int    // position in Engine.procs, for swap-remove reaping
	daemon  bool
	killed  bool
	started bool

	// cw is this process's condition-variable waiter, embedded so Cond
	// waits allocate nothing: a suspended process occupies at most one
	// wait list at a time (see sync.go).
	cw condWaiter
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Rand returns the engine's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.e.Rand }

// event is one scheduled occurrence, stored by value in the heap or the
// ready queue. Exactly one of p or fn is set; tmr is non-nil only for
// cancellable At/After callbacks.
type event struct {
	t   Time
	seq uint64
	p   *Proc
	fn  func()
	tmr *Timer
}

// Timer.loc values. A non-negative loc is a wheel bucket id
// (level*wheelSlotsPer + slot); the sentinels identify the other
// containers an event can live in.
const (
	timerInert      = -1 // fired or canceled
	timerInHeap     = -2 // heap, at index pos
	timerInReady    = -3 // ready queue, at index pos
	timerInOverflow = -4 // wheel overflow list, at index pos
)

// Timer is a handle to a scheduled callback that can be canceled. loc
// identifies the container currently holding the event (heap, ready
// queue, a wheel bucket, or the wheel overflow list) and pos its index
// there, so cancellation is O(1) for every container but the heap.
type Timer struct {
	e   *Engine
	pos int
	loc int
}

// Cancel stops the timer's callback from running. The event is removed
// from the engine immediately — its closure (and any state the closure
// captures) is released at cancel time, not when the event's instant is
// reached — so mass cancellation (e.g. retransmit watchdogs disarmed by
// fast completions) leaves no dead weight in the heap or the wheel.
// Canceling an already-fired or already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t == nil || t.e == nil || t.loc == timerInert {
		return
	}
	e := t.e
	e.stats.TimersCanceled++
	switch t.loc {
	case timerInHeap:
		e.heapRemove(t.pos)
	case timerInReady:
		e.ready[t.pos] = event{}
		e.readyHoles++
	default: // a wheel bucket or the overflow list
		e.wheelCancel(t)
	}
	t.loc = timerInert
}

// EngineStats counts the engine's own mechanics: how many events were
// scheduled, how many took the same-instant ready-queue fast path
// (bypassing the heap), how many callbacks ran inline versus process
// resumptions (each resumption costs two goroutine channel switches), and
// timer/process lifecycle totals. They never influence virtual-time
// behavior; they exist so host-throughput work (events per host-second)
// is measurable, and are exported in the obs metrics registry under
// sim.*.
type EngineStats struct {
	Scheduled      uint64 // events ever scheduled (heap, ready queue or wheel)
	ReadyFast      uint64 // events that bypassed the heap via the ready queue
	CallbacksRun   uint64 // callback events executed inline
	ProcSwitches   uint64 // engine→process token handoffs (resumptions)
	TimersCanceled uint64 // At/After timers canceled before firing
	WheelScheduled uint64 // far-future events routed to the timer wheel
	WheelCanceled  uint64 // timers canceled while wheel-resident (O(1) removals)
	ProcsSpawned   uint64 // processes ever spawned
	ProcsReaped    uint64 // completed processes removed from the proc table
	HeapPeak       int    // high-water mark of the event heap
	ReadyPeak      int    // high-water mark of live ready-queue entries
	WheelPeak      int    // high-water mark of wheel-resident events
}

// Engine is the discrete-event simulation core.
type Engine struct {
	now Time
	seq uint64

	// heap is the value-based binary min-heap (ordered by (t, seq)) that
	// holds events scheduled in the future.
	heap []event

	// ready is the same-instant fast path: events scheduled at the
	// current virtual time, consumed FIFO (which is (t, seq) order, since
	// the clock and seq are both non-decreasing as entries are appended).
	// readyHead indexes the next entry; canceled entries leave zeroed
	// holes that the pop loop skips, counted by readyHoles.
	ready      []event
	readyHead  int
	readyHoles int

	// wh is the hierarchical timer wheel holding far-future events; its
	// buckets drain into the heap before the clock can reach them (see
	// wheel.go), so the heap stays shallow under fleet-scale timer loads.
	wh timerWheel

	yield chan struct{}

	// inProc is true while a process holds the execution token; it guards
	// ResumeInline against being called outside callback context.
	inProc bool

	procs    []*Proc // live (not yet completed) processes
	live     int     // procs spawned and not yet done
	liveUser int     // live non-daemon procs
	fatal    error

	stats EngineStats

	// Rand is the engine-wide deterministic random source.
	Rand *rand.Rand
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		Rand:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Stats returns a snapshot of the engine's mechanical counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Pending returns the number of events currently scheduled and not yet
// executed (canceled ready-queue holes excluded).
func (e *Engine) Pending() int {
	return len(e.heap) + e.wh.count + (len(e.ready) - e.readyHead - e.readyHoles)
}

// WheelPending returns the number of far-future events currently parked
// in the timer wheel (not yet migrated to the near-term heap).
func (e *Engine) WheelPending() int { return e.wh.count }

// LiveProcs returns the number of processes spawned and not yet finished.
func (e *Engine) LiveProcs() int { return e.live }

// --- event containers ------------------------------------------------------

// The heap is 4-ary: pops dominate the near-term scheduler's cost, and a
// wider node halves the sift depth — and with it the number of 40-byte
// event moves and their GC write barriers — while the extra comparisons
// per level stay in cache-resident memory. Because the key (t, seq) is a
// strict total order, pop order (and therefore every simulation artifact)
// is identical whatever the heap's arity or internal layout.
const heapArity = 4

func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// siftUp restores the heap invariant upward from i; it reports whether
// the entry moved. Sifts move the hole, not pairwise swaps: each level
// costs one event copy instead of three.
func (e *Engine) siftUp(i int) bool {
	h := e.heap
	ev := h[i]
	moved := false
	for i > 0 {
		parent := (i - 1) / heapArity
		if !eventLess(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		if t := h[i].tmr; t != nil {
			t.pos = i
		}
		i = parent
		moved = true
	}
	if moved {
		h[i] = ev
		if t := ev.tmr; t != nil {
			t.pos = i
		}
	}
	return moved
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		least := c
		for k := c + 1; k < end; k++ {
			if eventLess(&h[k], &h[least]) {
				least = k
			}
		}
		if !eventLess(&h[least], &ev) {
			break
		}
		h[i] = h[least]
		if t := h[i].tmr; t != nil {
			t.pos = i
		}
		i = least
	}
	h[i] = ev
	if t := ev.tmr; t != nil {
		t.pos = i
	}
}

func (e *Engine) heapPush(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	if ev.tmr != nil {
		ev.tmr.loc = timerInHeap
		ev.tmr.pos = i
	}
	e.siftUp(i)
	if len(e.heap) > e.stats.HeapPeak {
		e.stats.HeapPeak = len(e.heap)
	}
}

func (e *Engine) heapPop() event {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[n] = event{} // release the vacated slot's references
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return top
}

// heapRemove deletes entry i (timer cancellation), releasing its
// references immediately and re-establishing the heap invariant.
func (e *Engine) heapRemove(i int) {
	n := len(e.heap) - 1
	moved := e.heap[n]
	e.heap[n] = event{}
	e.heap = e.heap[:n]
	if i == n {
		return
	}
	e.heap[i] = moved
	if moved.tmr != nil {
		moved.tmr.pos = i
	}
	if !e.siftUp(i) {
		e.siftDown(i)
	}
}

// place routes a newly scheduled event: same-instant events append to the
// ready queue (no heap traffic), near-future events go into the heap, and
// far-future events (at least wheelCutoff away) park in the timer wheel.
func (e *Engine) place(ev event) {
	if ev.t == e.now {
		if e.readyHead == len(e.ready) && e.readyHead > 0 {
			// The queue fully drained; reuse its storage from the start.
			e.ready = e.ready[:0]
			e.readyHead, e.readyHoles = 0, 0
		}
		if ev.tmr != nil {
			ev.tmr.loc = timerInReady
			ev.tmr.pos = len(e.ready)
		}
		e.ready = append(e.ready, ev)
		e.stats.ReadyFast++
		if live := len(e.ready) - e.readyHead - e.readyHoles; live > e.stats.ReadyPeak {
			e.stats.ReadyPeak = live
		}
		return
	}
	if ev.t-e.now >= wheelCutoff {
		e.wheelInsert(ev)
		return
	}
	e.heapPush(ev)
}

func (e *Engine) schedule(t Time, p *Proc, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", t, e.now))
	}
	e.seq++
	e.stats.Scheduled++
	e.place(event{t: t, seq: e.seq, p: p, fn: fn})
}

func (e *Engine) scheduleTimer(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", t, e.now))
	}
	tm := &Timer{e: e, loc: timerInert}
	e.seq++
	e.stats.Scheduled++
	e.place(event{t: t, seq: e.seq, fn: fn, tmr: tm})
	return tm
}

// At schedules fn to run as a callback at absolute time t. Callbacks run
// inline in the engine loop and must not block. The returned Timer can
// cancel the callback; code that never cancels should prefer CallAt,
// which allocates nothing.
func (e *Engine) At(t Time, fn func()) *Timer {
	return e.scheduleTimer(t, fn)
}

// After schedules fn to run as a callback d from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	return e.scheduleTimer(e.now+d, fn)
}

// AtReuse is At recycling tm — a Timer from a previous arm that has
// since fired or been canceled — instead of allocating a new one. A nil,
// foreign, or still-armed tm falls back to a fresh Timer, so callers can
// unconditionally store the result. Code that re-arms one deadline per
// request (the fleet session timeout) stays allocation-free this way.
func (e *Engine) AtReuse(t Time, fn func(), tm *Timer) *Timer {
	if tm == nil || tm.e != e || tm.loc != timerInert {
		return e.scheduleTimer(t, fn)
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", t, e.now))
	}
	e.seq++
	e.stats.Scheduled++
	e.place(event{t: t, seq: e.seq, fn: fn, tmr: tm})
	return tm
}

// CallAt schedules fn to run as a callback at absolute time t, with no
// cancellation handle. This is the fast path for fixed-latency hops (IRQ
// delivery, datagram delivery, watchdog ticks): the event is stored by
// value, so scheduling performs no allocation and the hop runs inline in
// the engine loop instead of costing a process switch.
func (e *Engine) CallAt(t Time, fn func()) {
	e.schedule(t, nil, fn)
}

// CallAfter schedules fn to run as a callback d from now, with no
// cancellation handle (see CallAt).
func (e *Engine) CallAfter(d Time, fn func()) {
	e.schedule(e.now+d, nil, fn)
}

// Spawn starts a new process named name running fn. The process begins
// execution at the current virtual time, after the caller next yields to
// the engine.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon starts a process that is expected to block forever (worker
// pools, dispatchers). Daemons do not count toward deadlock detection and
// are reaped by Shutdown.
func (e *Engine) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	p := &Proc{e: e, name: name, wake: make(chan struct{}), daemon: daemon}
	p.idx = len(e.procs)
	e.procs = append(e.procs, p)
	e.live++
	e.stats.ProcsSpawned++
	if !daemon {
		e.liveUser++
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSignal); !isKill && e.fatal == nil {
					e.fatal = fmt.Errorf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			p.state = procDone
			e.live--
			if !p.daemon {
				e.liveUser--
			}
			e.reap(p)
			e.yield <- struct{}{}
		}()
		<-p.wake
		if p.killed {
			panic(killSignal{})
		}
		p.state = procRunning
		fn(p)
	}()
	e.schedule(e.now, p, nil)
	p.state = procRunnable
	return p
}

// reap removes a completed process from the proc table by swap-remove, so
// long-running simulations do not accumulate one *Proc per retired
// activity (e.g. per retired wavefront). It runs in the dying process's
// goroutine while the engine is parked in resume(), so the table is never
// touched concurrently; deadlock reports and Shutdown only ever need the
// still-live processes that remain.
func (e *Engine) reap(p *Proc) {
	last := len(e.procs) - 1
	if p.idx < 0 || p.idx > last || e.procs[p.idx] != p {
		return
	}
	moved := e.procs[last]
	e.procs[p.idx] = moved
	moved.idx = p.idx
	e.procs[last] = nil
	e.procs = e.procs[:last]
	p.idx = -1
	e.stats.ProcsReaped++
}

// resume hands the execution token to p and waits for it to come back.
func (e *Engine) resume(p *Proc) {
	if p.state == procDone {
		return
	}
	e.stats.ProcSwitches++
	e.inProc = true
	p.wake <- struct{}{}
	<-e.yield
	e.inProc = false
}

// switchToEngine gives the token back to the engine and blocks until the
// engine resumes this process.
func (p *Proc) switchToEngine() {
	p.e.yield <- struct{}{}
	<-p.wake
	if p.killed {
		panic(killSignal{})
	}
	p.state = procRunning
}

// Sleep suspends the process for duration d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	p.e.schedule(p.e.now+d, p, nil)
	p.state = procBlocked
	p.reason = "sleep"
	p.switchToEngine()
}

// Yield reschedules the process at the current time, letting any other
// event scheduled for this instant run first.
func (p *Proc) Yield() {
	p.e.schedule(p.e.now, p, nil)
	p.state = procBlocked
	p.reason = "yield"
	p.switchToEngine()
}

// block suspends the process with no scheduled wake-up; something else
// (a Cond, Queue or Resource) must schedule its resumption.
func (p *Proc) block(reason string) {
	p.state = procBlocked
	p.reason = reason
	p.switchToEngine()
}

// unblock schedules p to resume at the current time.
func (p *Proc) unblock() {
	p.e.schedule(p.e.now, p, nil)
	p.state = procRunnable
}

// Park suspends the process with no scheduled wake-up until an engine
// callback resumes it with Engine.ResumeInline. Unlike Cond.Wait, the
// resumption is not a scheduled event: the process continues inside the
// event that resumed it, at the same (t, seq) position. reason is shown
// in deadlock reports.
func (p *Proc) Park(reason string) {
	p.block(reason)
}

// ResumeInline hands the execution token to a parked process from inside
// a running callback: p continues from Park within the current event —
// exactly as if the event had been a resumption of p itself — rather
// than via a freshly scheduled event, so the engine's event sequence is
// unchanged by the park/resume round trip. It must be called from
// callback context (the engine loop), never from a process.
func (e *Engine) ResumeInline(p *Proc) {
	if e.inProc {
		panic("sim: ResumeInline called from process context")
	}
	if p.state != procBlocked {
		panic(fmt.Sprintf("sim: ResumeInline of %s proc %q", []string{"new", "runnable", "running", "blocked", "done"}[p.state], p.name))
	}
	e.resume(p)
}

// ErrDeadlock is returned by Run when no events remain but non-daemon
// processes are still blocked.
type ErrDeadlock struct {
	Now     Time
	Blocked []string // "name (reason)" for each blocked non-daemon proc
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d proc(s) blocked forever: %s",
		e.Now, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes events until none remain. It returns nil on quiescence
// (all non-daemon processes finished), an *ErrDeadlock if non-daemon
// processes are blocked with no pending events, or the panic error of a
// crashed process.
func (e *Engine) Run() error { return e.RunUntil(MaxTime) }

// RunUntil executes events with time ≤ limit. Reaching the limit with
// events still pending is not an error; the clock is left at limit.
func (e *Engine) RunUntil(limit Time) error {
	for {
		if e.fatal != nil {
			return e.fatal
		}
		// Advance past canceled holes at the ready-queue head.
		for e.readyHead < len(e.ready) {
			h := &e.ready[e.readyHead]
			if h.p == nil && h.fn == nil {
				e.readyHead++
				e.readyHoles--
				continue
			}
			break
		}
		if e.readyHead == len(e.ready) && e.readyHead > 0 {
			e.ready = e.ready[:0]
			e.readyHead, e.readyHoles = 0, 0
		}
		hasReady := e.readyHead < len(e.ready)
		hasHeap := len(e.heap) > 0
		// Bring the wheel's drain frontier past the next committed instant:
		// wheel residents are strictly beyond the current time (ready-queue
		// entries can never race them), so draining against the heap head —
		// or, with an empty heap, advancing until a drain fills it — is
		// enough to keep the global (t, seq) order exact.
		if e.wh.count > 0 {
			if hasHeap {
				e.wheelCatchUp(e.heap[0].t)
			} else if !hasReady {
				e.wheelAdvanceUntilHeap()
				hasHeap = len(e.heap) > 0
			}
		}
		if !hasReady && !hasHeap {
			if e.liveUser > 0 {
				return e.deadlockErr()
			}
			return nil
		}
		// The ready queue is FIFO by (t, seq) and the heap is a min-heap
		// by (t, seq), so the global next event is whichever head is
		// smaller — this comparison is what keeps the fast path
		// bit-identical to a single ordered queue.
		useReady := hasReady
		if hasReady && hasHeap {
			h, r := &e.heap[0], &e.ready[e.readyHead]
			if h.t < r.t || (h.t == r.t && h.seq < r.seq) {
				useReady = false
			}
		}
		var ev event
		if useReady {
			if e.ready[e.readyHead].t > limit {
				e.now = limit
				return nil
			}
			ev = e.ready[e.readyHead]
			e.ready[e.readyHead] = event{} // release references
			e.readyHead++
		} else {
			if e.heap[0].t > limit {
				e.now = limit
				return nil
			}
			ev = e.heapPop()
		}
		e.now = ev.t
		if ev.tmr != nil {
			ev.tmr.loc = timerInert
		}
		if ev.p != nil {
			e.resume(ev.p)
		} else {
			e.stats.CallbacksRun++
			ev.fn()
		}
	}
}

func (e *Engine) deadlockErr() error {
	var blocked []string
	for _, p := range e.procs {
		if !p.daemon && p.state == procBlocked {
			blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.reason))
		}
	}
	sort.Strings(blocked)
	return &ErrDeadlock{Now: e.now, Blocked: blocked}
}

// Shutdown kills every still-live process so no goroutines leak. It must
// be called from outside the engine loop (i.e. not from a proc or
// callback), typically after Run returns.
func (e *Engine) Shutdown() {
	// Dying procs swap-remove themselves from e.procs, so kill a snapshot.
	live := make([]*Proc, len(e.procs))
	copy(live, e.procs)
	for _, p := range live {
		if p == nil || p.state == procDone || p.state == procNew {
			continue
		}
		p.killed = true
		e.resume(p)
	}
	e.heap = nil
	e.ready = nil
	e.readyHead, e.readyHoles = 0, 0
	e.wheelReset()
}
