package sim

import (
	"fmt"
	"sort"
	"strings"
)

// CheckpointState renders the engine's complete schedulable state as a
// deterministic byte string: the virtual clock, the event sequence
// counter, the mechanical stats, every pending event (heap and ready
// queue merged, in (time, sequence) order) and every live process.
//
// Closures and goroutine stacks cannot be serialized from Go, so the
// encoding describes each pending event by its instant, sequence number
// and kind (the resuming process's name, or "callback"); it is a state
// *fingerprint*, not a resumable image. Restore (internal/ckpt) instead
// rebuilds the machine from the snapshot's recipe and deterministically
// re-executes to the cut instant — because the engine is bit-identical
// for a fixed seed, the re-executed engine reaches exactly this state,
// which the restore path proves by re-capturing this section and
// comparing bytes. See DESIGN.md §10.
//
// CheckpointState performs no scheduling, consumes no randomness and
// allocates only the returned buffer, so capturing a checkpoint cannot
// perturb the run it captures.
func (e *Engine) CheckpointState() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "engine v1\nnow %d\nseq %d\n", int64(e.now), e.seq)
	st := e.stats
	fmt.Fprintf(&b, "stats scheduled=%d ready_fast=%d callbacks=%d proc_switches=%d timers_canceled=%d wheel_scheduled=%d wheel_canceled=%d spawned=%d reaped=%d heap_peak=%d ready_peak=%d wheel_peak=%d\n",
		st.Scheduled, st.ReadyFast, st.CallbacksRun, st.ProcSwitches,
		st.TimersCanceled, st.WheelScheduled, st.WheelCanceled,
		st.ProcsSpawned, st.ProcsReaped, st.HeapPeak, st.ReadyPeak, st.WheelPeak)
	fmt.Fprintf(&b, "live %d user %d\n", e.live, e.liveUser)

	// Pending events, in the global (t, seq) execution order. The heap and
	// wheel's internal layouts are themselves deterministic for a fixed
	// history, but sorting makes the section meaningful to read and
	// independent of sift and bucket implementation details.
	evs := make([]event, 0, len(e.heap)+e.wh.count+len(e.ready)-e.readyHead)
	evs = append(evs, e.heap...)
	evs = e.wheelAppendPending(evs)
	for i := e.readyHead; i < len(e.ready); i++ {
		ev := e.ready[i]
		if ev.p == nil && ev.fn == nil {
			continue // canceled hole
		}
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].seq < evs[j].seq
	})
	fmt.Fprintf(&b, "pending %d\n", len(evs))
	for _, ev := range evs {
		kind := "callback"
		if ev.p != nil {
			kind = "proc:" + ev.p.name
		} else if ev.tmr != nil {
			kind = "timer"
		}
		fmt.Fprintf(&b, "event t=%d seq=%d %s\n", int64(ev.t), ev.seq, kind)
	}

	// Live processes in table order (spawn/reap order is deterministic).
	fmt.Fprintf(&b, "procs %d\n", len(e.procs))
	for _, p := range e.procs {
		fmt.Fprintf(&b, "proc %s state=%d daemon=%v reason=%q\n",
			p.name, p.state, p.daemon, p.reason)
	}
	return []byte(b.String())
}
