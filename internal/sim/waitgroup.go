package sim

// WaitGroup counts outstanding activities in virtual time, in the style
// of sync.WaitGroup: fork-join workloads Add before spawning, Done when
// each piece finishes, and Wait to block until the count reaches zero.
type WaitGroup struct {
	e     *Engine
	count int
	zero  *Cond
}

// NewWaitGroup returns an empty wait group bound to e.
func NewWaitGroup(e *Engine) *WaitGroup {
	return &WaitGroup{e: e, zero: NewCond(e)}
}

// Add increases the outstanding count by n (n may be negative; Done is
// Add(-1)). Reaching zero wakes all waiters.
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: WaitGroup count went negative")
	}
	if wg.count == 0 {
		wg.zero.Broadcast()
	}
}

// Done decrements the count.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Count returns the outstanding count.
func (wg *WaitGroup) Count() int { return wg.count }

// Wait blocks p until the count is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.zero.Wait(p, "waitgroup")
	}
}

// Go spawns fn as a process tracked by the wait group.
func (wg *WaitGroup) Go(name string, fn func(p *Proc)) {
	wg.Add(1)
	wg.e.Spawn(name, func(p *Proc) {
		defer wg.Done()
		fn(p)
	})
}
