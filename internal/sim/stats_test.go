package sim

import (
	"math"
	"testing"
)

func TestAddIntervalNegativeStart(t *testing.T) {
	// Interval [-15, 25) with total mass 40: 15 units fall before t=0
	// (dropped, like Add), 10 land in bin 0 and 15 in bins 1-2.
	s := NewSeries(10)
	s.AddInterval(-15, 25, 40)
	if got := s.Bin(0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("bin 0 = %f, want 10", got)
	}
	if got := s.Bin(1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("bin 1 = %f, want 10", got)
	}
	if got := s.Bin(2); math.Abs(got-5) > 1e-9 {
		t.Fatalf("bin 2 = %f, want 5", got)
	}
	var sum float64
	for _, b := range s.Bins() {
		sum += b
	}
	if math.Abs(sum-25) > 1e-9 {
		t.Fatalf("retained mass = %f, want 25 (15 dropped before t=0)", sum)
	}
}

func TestAddIntervalEntirelyNegative(t *testing.T) {
	s := NewSeries(10)
	s.AddInterval(-30, -5, 7)
	if s.NumBins() != 0 {
		t.Fatalf("mass before t=0 must be dropped, got bins %v", s.Bins())
	}
}

func TestAddIntervalNegativeWithinFirstBin(t *testing.T) {
	// [-5, 5): half the mass precedes t=0; bin 0 gets exactly half.
	s := NewSeries(10)
	s.AddInterval(-5, 5, 8)
	if got := s.Bin(0); math.Abs(got-4) > 1e-9 {
		t.Fatalf("bin 0 = %f, want 4", got)
	}
	if s.NumBins() != 1 {
		t.Fatalf("bins = %v", s.Bins())
	}
}

func TestAddIntervalPositiveUnchanged(t *testing.T) {
	s := NewSeries(10)
	s.AddInterval(5, 25, 10)
	if got := s.Bin(0); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("bin 0 = %f, want 2.5", got)
	}
	if got := s.Bin(1); math.Abs(got-5) > 1e-9 {
		t.Fatalf("bin 1 = %f, want 5", got)
	}
	if got := s.Bin(2); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("bin 2 = %f, want 2.5", got)
	}
}

func TestPercentilesSingleSample(t *testing.T) {
	for _, p := range []float64{0, 25, 50, 95, 99, 100} {
		got := Percentiles([]float64{7.5}, p)
		if len(got) != 1 || got[0] != 7.5 {
			t.Fatalf("p%.0f of single sample = %v, want [7.5]", p, got)
		}
	}
	multi := Percentiles([]float64{3, 1, 2}, 0, 50, 100)
	if multi[0] != 1 || multi[1] != 2 || multi[2] != 3 {
		t.Fatalf("percentiles = %v", multi)
	}
	empty := Percentiles(nil, 50, 99)
	if len(empty) != 2 || empty[0] != 0 || empty[1] != 0 {
		t.Fatalf("empty percentiles = %v", empty)
	}
}
