package sim

import "testing"

// Engine hot-path microbenchmarks. Run with
//
//	go test ./internal/sim -bench Engine/ -benchmem
//
// to see per-event cost and allocation behavior of each scheduling
// path. CI runs these with -benchtime=1x -count=3 as a smoke check and
// uploads the output next to BENCH_host.json.

var benchSink int

func nop() { benchSink++ }

// BenchmarkEngineHeapSchedulePop measures the slow path: batches of
// events at scrambled future times pushed through the binary heap and
// popped back in (t, seq) order. Value events make this 0 allocs/op.
func BenchmarkEngineHeapSchedulePop(b *testing.B) {
	e := NewEngine(1)
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if b.N-i < n {
			n = b.N - i
		}
		base := e.Now()
		for j := 0; j < n; j++ {
			off := Time((j*2654435761)>>16&4095 + 1)
			e.CallAt(base+off, nop)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReadyQueue measures the same-instant fast path: each
// callback schedules its successor at the current instant, so every
// event rides the FIFO ready queue and never touches the heap.
func BenchmarkEngineReadyQueue(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.CallAt(e.Now(), step)
		}
	}
	e.CallAt(1, step)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineCallbackHop chains fixed-latency CallAfter callbacks —
// the shape of an IRQ delivery or retransmit arm: one heap element,
// zero allocations, zero proc switches per hop.
func BenchmarkEngineCallbackHop(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.CallAfter(100, step)
		}
	}
	e.CallAfter(100, step)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineTimerHop is BenchmarkEngineCallbackHop through the
// cancellable After path: the one remaining allocation is the *Timer
// handle itself.
func BenchmarkEngineTimerHop(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(100, step)
		}
	}
	e.After(100, step)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineTimerCancel measures arm-then-disarm, the retransmit
// watchdog's common case: schedule a batch of timers, cancel them all.
// Cancellation removes the event eagerly, so the heap is empty (and
// the closures unreachable) when the batch ends.
func BenchmarkEngineTimerCancel(b *testing.B) {
	e := NewEngine(1)
	const batch = 1024
	tms := make([]*Timer, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if b.N-i < n {
			n = b.N - i
		}
		for j := 0; j < n; j++ {
			tms = append(tms, e.After(Time(j+1), nop))
		}
		for _, tm := range tms {
			tm.Cancel()
		}
		tms = tms[:0]
	}
}

// benchArmCancel measures one arm/disarm pair — the fleet timeout
// pattern — with `pending` other timers already resident, so the cost
// of touching a populated container is what's on the clock. Near-term
// delays exercise the heap (O(log n) removal from the middle); far
// delays exercise the wheel (O(1) bucket swap-remove).
func benchArmCancel(b *testing.B, pending int, d Time) {
	e := NewEngine(1)
	hold := make([]*Timer, pending)
	for i := range hold {
		hold[i] = e.After(d+Time(i%1000)+1, nop)
	}
	var tm *Timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm = e.AtReuse(e.Now()+d, nop, tm)
		tm.Cancel()
	}
	b.StopTimer()
	for _, h := range hold {
		h.Cancel()
	}
}

// BenchmarkEngineArmCancel compares schedule+cancel cost between the
// two scheduler levels at 1k and 100k pending timers. The heap cases
// are the single-heap baseline the wheel replaced for far-future work;
// the wheel cases should be flat across pending-set size.
func BenchmarkEngineArmCancel(b *testing.B) {
	for _, tc := range []struct {
		name    string
		pending int
		d       Time
	}{
		{"heap-1k", 1_000, 1000},
		{"heap-100k", 100_000, 1000},
		{"wheel-1k", 1_000, wheelCutoff + 10*wheelGran},
		{"wheel-100k", 100_000, wheelCutoff + 10*wheelGran},
	} {
		b.Run(tc.name, func(b *testing.B) { benchArmCancel(b, tc.pending, tc.d) })
	}
}

// benchDrain measures end-to-end schedule → (cascade/drain →) pop → run
// for batches of `pending` events. Offsets below wheelCutoff keep every
// event heap-resident (baseline); the wheel variant spreads events
// across the level-0/1 span so frontier advance, cascades, and bucket
// drains are all included in the per-event cost.
func benchDrain(b *testing.B, pending int, wheel bool) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += pending {
		n := pending
		if b.N-i < n {
			n = b.N - i
		}
		base := e.Now()
		for j := 0; j < n; j++ {
			var off Time
			if wheel {
				off = wheelCutoff + Time((j*2654435761)>>8&(1<<22-1))
			} else {
				off = Time((j*2654435761)>>16&4095 + 1)
			}
			e.CallAt(base+off, nop)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineDrain compares schedule-to-execution throughput of the
// heap-only near band against wheel-routed far band at 1k and 100k
// event batches.
func BenchmarkEngineDrain(b *testing.B) {
	for _, tc := range []struct {
		name    string
		pending int
		wheel   bool
	}{
		{"heap-1k", 1_000, false},
		{"heap-100k", 100_000, false},
		{"wheel-1k", 1_000, true},
		{"wheel-100k", 100_000, true},
	} {
		b.Run(tc.name, func(b *testing.B) { benchDrain(b, tc.pending, tc.wheel) })
	}
}

// BenchmarkEngineSpawn measures goroutine-backed proc creation,
// execution, and reaping in batches.
func BenchmarkEngineSpawn(b *testing.B) {
	e := NewEngine(1)
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if b.N-i < n {
			n = b.N - i
		}
		for j := 0; j < n; j++ {
			e.Spawn("w", func(p *Proc) {})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineProcHandoff ping-pongs two procs through a pair of
// capacity-1 queues: the full unblock → ready queue → channel-switch
// cost of proc-mode communication, for comparison against
// BenchmarkEngineCallbackHop.
func BenchmarkEngineProcHandoff(b *testing.B) {
	e := NewEngine(1)
	ping := NewQueue[int](e, "ping", 1)
	pong := NewQueue[int](e, "pong", 1)
	n := b.N
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < n; i++ {
			ping.Put(p, i)
			pong.Get(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < n; i++ {
			ping.Get(p)
			pong.Put(p, i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
