package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCallbackOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.At(10, func() { got = append(got, 11) }) // same time: FIFO by seq
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(10, func() { fired = true })
	tm.Cancel()
	tm.Cancel() // double cancel is a no-op
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, fmt.Sprintf("a0@%d", p.Now()))
		p.Sleep(100)
		trace = append(trace, fmt.Sprintf("a1@%d", p.Now()))
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(50)
		trace = append(trace, fmt.Sprintf("b@%d", p.Now()))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[a0@0 b@50 a1@100]"
	if fmt.Sprint(trace) != want {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestZeroSleepAndYield(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Yield()
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b1")
		p.Sleep(0) // no-op: must not yield
		trace = append(trace, "b2")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[a1 b1 b2 a2]"
	if fmt.Sprint(trace) != want {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var ticks int
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10)
			ticks++
		}
	})
	if err := e.RunUntil(35); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 || e.Now() != 35 {
		t.Fatalf("ticks=%d now=%v, want 3 ticks at t=35", ticks, e.Now())
	}
	// Resume the rest of the run.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks=%d after full run, want 10", ticks)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	e.Spawn("stuck", func(p *Proc) {
		c.Wait(p, "never signaled")
	})
	err := e.Run()
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck (never signaled)" {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
	e.Shutdown()
}

func TestDaemonsDoNotDeadlock(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, "work", 0)
	e.SpawnDaemon("worker", func(p *Proc) {
		for {
			q.Get(p)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		p.Sleep(5)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("daemon blocked forever should not deadlock: %v", err)
	}
	e.Shutdown()
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("boom", func(p *Proc) {
		p.Sleep(1)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !containsStr(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic error", err)
	}
	e.Shutdown()
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCondSignalBroadcast(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	var woke []string
	for _, n := range []string{"w1", "w2", "w3"} {
		name := n
		e.Spawn(name, func(p *Proc) {
			c.Wait(p, "test")
			woke = append(woke, name+fmt.Sprint(int64(p.Now())))
		})
	}
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(10)
		c.Signal() // wakes w1 only
		p.Sleep(10)
		c.Broadcast() // wakes w2, w3
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[w110 w220 w320]"
	if fmt.Sprint(woke) != want {
		t.Fatalf("woke = %v, want %v", woke, want)
	}
}

func TestQueueBlockingAndCapacity(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, "q", 2)
	var got []int
	var putDone []Time
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 4; i++ {
			q.Put(p, i)
			putDone = append(putDone, p.Now())
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(100)
			got = append(got, q.Get(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("got %v", got)
	}
	// First two puts complete immediately; 3rd and 4th block until space.
	if putDone[0] != 0 || putDone[1] != 0 || putDone[2] != 100 || putDone[3] != 200 {
		t.Fatalf("putDone = %v", putDone)
	}
}

func TestQueueTryOps(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[string](e, "q", 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut("a") {
		t.Fatal("TryPut on empty queue failed")
	}
	if q.TryPut("b") {
		t.Fatal("TryPut on full queue succeeded")
	}
	v, ok := q.TryGet()
	if !ok || v != "a" {
		t.Fatalf("TryGet = %q, %v", v, ok)
	}
}

func TestResourcePriorityAndFIFO(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cores", 1)
	var order []string
	hold := func(name string, prio int, start Time) {
		e.Spawn(name, func(p *Proc) {
			p.Sleep(start)
			r.Acquire(p, prio)
			order = append(order, name)
			p.Sleep(100)
			r.Release()
		})
	}
	hold("first", 0, 0) // takes the unit at t=0
	hold("low1", 0, 10) // queued
	hold("low2", 0, 20) // queued after low1
	hold("high", 5, 30) // queued but higher priority
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[first high low1 low2]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if r.InUse() != 0 {
		t.Fatalf("resource still in use: %d", r.InUse())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire failed on free resource")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire succeeded on exhausted resource")
	}
	r.Release()
	if r.InUse() != 0 {
		t.Fatal("release did not free unit")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		e := NewEngine(42)
		q := NewQueue[int](e, "q", 4)
		var log []string
		for i := 0; i < 5; i++ {
			id := i
			e.Spawn(fmt.Sprintf("p%d", id), func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(Time(p.Rand().Intn(50) + 1))
					q.TryPut(id*100 + j)
					if v, ok := q.TryGet(); ok {
						log = append(log, fmt.Sprintf("%d@%d", v, p.Now()))
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(log)
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("two runs with the same seed diverged")
	}
}

func TestSpawnFromProcAndCallback(t *testing.T) {
	e := NewEngine(1)
	var births []int64
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		p.e.Spawn("child", func(c *Proc) {
			births = append(births, int64(c.Now()))
		})
		p.Sleep(10)
	})
	e.After(5, func() {
		e.Spawn("cbchild", func(c *Proc) {
			births = append(births, int64(c.Now()))
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(births) != "[5 10]" {
		t.Fatalf("births = %v", births)
	}
}

// Property: events run in nondecreasing time order regardless of
// insertion order (the heap side; cross-container ordering is covered by
// TestInterleavingMatchesReferenceOrder).
func TestEventHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine(1)
		var popped []Time
		for _, ti := range times {
			e.schedule(Time(ti), nil, func() { popped = append(popped, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(popped) != len(times) {
			return false
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summary mean/std match a direct two-pass computation.
func TestSummaryProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Summary
		var xs []float64
		for i := 0; i < int(n)+2; i++ {
			x := rng.NormFloat64()*10 + 5
			xs = append(xs, x)
			s.Add(x)
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		if diff := s.Mean() - mean; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		return s.N() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesAddInterval(t *testing.T) {
	s := NewSeries(10)
	s.AddInterval(5, 25, 2.0) // spans bins 0,1,2: 5ns, 10ns, 5ns
	bins := s.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if !close1(bins[0], 0.5) || !close1(bins[1], 1.0) || !close1(bins[2], 0.5) {
		t.Fatalf("bins = %v, want [0.5 1 0.5]", bins)
	}
}

func close1(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func TestPercentiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ps := Percentiles(xs, 0, 50, 100)
	if ps[0] != 1 || ps[1] != 5.5 || ps[2] != 10 {
		t.Fatalf("percentiles = %v", ps)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500:             "500ns",
		1500:            "1.50us",
		2 * Millisecond: "2.000ms",
		3 * Second:      "3.0000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestShutdownReapsProcs(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	for i := 0; i < 10; i++ {
		e.SpawnDaemon(fmt.Sprintf("d%d", i), func(p *Proc) {
			c.Wait(p, "forever")
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if e.live != 0 {
		t.Fatalf("live procs after shutdown: %d", e.live)
	}
}
