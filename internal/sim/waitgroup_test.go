package sim

import "testing"

func TestWaitGroupJoin(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	var finished int
	for i := 1; i <= 5; i++ {
		d := Time(i) * Millisecond
		wg.Go("worker", func(p *Proc) {
			p.Sleep(d)
			finished++
		})
	}
	var joinedAt Time
	e.Spawn("joiner", func(p *Proc) {
		wg.Wait(p)
		joinedAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 5 {
		t.Fatalf("finished = %d", finished)
	}
	if joinedAt != 5*Millisecond {
		t.Fatalf("joined at %v, want 5ms (slowest worker)", joinedAt)
	}
}

func TestWaitGroupImmediateWait(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	passed := false
	e.Spawn("joiner", func(p *Proc) {
		wg.Wait(p) // zero count: returns immediately
		passed = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !passed {
		t.Fatal("wait on empty group blocked")
	}
}

func TestWaitGroupReuse(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	rounds := 0
	e.Spawn("driver", func(p *Proc) {
		for r := 0; r < 3; r++ {
			for i := 0; i < 2; i++ {
				wg.Go("w", func(wp *Proc) { wp.Sleep(Millisecond) })
			}
			wg.Wait(p)
			rounds++
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 3 || wg.Count() != 0 {
		t.Fatalf("rounds=%d count=%d", rounds, wg.Count())
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative count did not panic")
		}
	}()
	wg := NewWaitGroup(NewEngine(1))
	wg.Done()
}
