package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// eventRec identifies one scheduled event by its (time, seq) key — the
// total order the engine promises to execute in.
type eventRec struct {
	t   Time
	seq uint64
}

// TestInterleavingMatchesReferenceOrder is the determinism property test
// for the three-container design (ready queue / near-term heap / timer
// wheel): a random workload where callbacks recursively schedule more
// work at the current instant (ready-queue path), in the near future
// (heap path), and far enough out to park in every wheel level and the
// overflow list, with a random subset of timers canceled from whichever
// container holds them, must execute in exactly the (t, seq) total order
// a single reference priority queue would produce.
func TestInterleavingMatchesReferenceOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(1)
		var got []eventRec      // order the engine actually ran events in
		var expect []eventRec   // reference: every surviving event's key
		var canceled []*Timer   // timers to cancel from inside the run
		const maxEvents = 300
		count := 0

		var plant func(depth int)
		plant = func(depth int) {
			n := rng.Intn(4)
			for i := 0; i < n && count < maxEvents; i++ {
				count++
				var d Time
				switch rng.Intn(6) {
				case 0, 1:
					d = 0 // same-instant: exercises the ready queue
				case 2, 3:
					d = Time(rng.Intn(40) + 1) // near future: the heap
				case 4:
					// Wheel range: level 0 through level 2 (cutoff ≤ d
					// < full level-2 span), crossing cascade boundaries.
					d = wheelCutoff + Time(rng.Int63n(int64(wheelGran)*wheelSlotsPer*wheelSlotsPer*wheelSlotsPer))
				default:
					// Beyond the level-2 span: the overflow list, re-filed
					// at level-2 cascade boundaries.
					d = Time(int64(wheelGran)*wheelSlotsPer*wheelSlotsPer*wheelSlotsPer + rng.Int63n(int64(wheelGran)*wheelSlotsPer*wheelSlotsPer))
				}
				sq := e.seq + 1 // seq the next schedule call will assign
				rec := eventRec{e.now + d, sq}
				dd := depth
				fire := func() {
					got = append(got, eventRec{e.now, rec.seq})
					if dd < 5 {
						plant(dd + 1)
					}
				}
				switch rng.Intn(3) {
				case 0: // fire-and-forget fast path
					e.CallAfter(d, fire)
					expect = append(expect, rec)
				case 1: // cancellable, kept
					e.After(d, fire)
					expect = append(expect, rec)
				default: // cancellable, canceled before it can run
					tm := e.After(d, func() {
						t.Errorf("canceled timer fired (seed %d)", seed)
					})
					// Cancel while both containers hold live events, so
					// removal from the middle of the heap and hole-punching
					// in the ready queue are both exercised.
					tm.Cancel()
					canceled = append(canceled, tm)
				}
			}
		}
		plant(0)
		if err := e.Run(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		for _, c := range canceled {
			c.Cancel() // leftovers: must be fired-or-gone no-ops
		}
		sort.Slice(expect, func(i, j int) bool {
			if expect[i].t != expect[j].t {
				return expect[i].t < expect[j].t
			}
			return expect[i].seq < expect[j].seq
		})
		if fmt.Sprint(got) != fmt.Sprint(expect) {
			t.Errorf("seed %d: order diverged from reference\n got: %v\nwant: %v",
				seed, got, expect)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestReadyQueueFIFOAtInstant checks that same-instant events — mixed
// zero-delay callbacks, yields and unblocks — run in scheduling order.
func TestReadyQueueFIFOAtInstant(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Spawn("driver", func(p *Proc) {
		p.Sleep(10)
		e.CallAfter(0, func() { got = append(got, 1) })
		e.CallAt(e.Now(), func() { got = append(got, 2) })
		e.After(0, func() { got = append(got, 3) })
		p.Yield() // runs after 1, 2, 3
		got = append(got, 4)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("got %v, want [1 2 3 4]", got)
	}
}

// TestHeapBeforeReadyAtSameInstant: an event scheduled earlier (lower
// seq) for time T from afar (heap) must run before a ready-queue event
// created at T with a higher seq — the cross-container comparison.
func TestHeapBeforeReadyAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []string
	// Scheduled first: sits in the heap until t=10.
	e.CallAt(10, func() { got = append(got, "heap-early") })
	e.Spawn("driver", func(p *Proc) {
		p.Sleep(10)
		// Wait: driver wakes at t=10. Its wake event has seq 3 (spawn=2),
		// so it runs after heap-early (seq 1)? The resume event was
		// scheduled by Sleep at t=0 with seq 3, so heap order at t=10 is
		// (10,1) heap-early then (10,3) driver.
		e.CallAfter(0, func() { got = append(got, "ready-late") })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[heap-early ready-late]" {
		t.Fatalf("got %v", got)
	}
}

// TestCancelReleasesEventImmediately: canceling a timer must remove the
// event (and its closure) from the engine at cancel time — pending count
// drops and the heap holds no dead weight.
func TestCancelReleasesEventImmediately(t *testing.T) {
	e := NewEngine(1)
	tms := make([]*Timer, 0, 100)
	for i := 0; i < 100; i++ {
		tms = append(tms, e.After(Time(1000+i), func() { t.Error("canceled fired") }))
	}
	if e.Pending() != 100 || len(e.heap) != 100 {
		t.Fatalf("pending=%d heap=%d, want 100", e.Pending(), len(e.heap))
	}
	for _, tm := range tms {
		tm.Cancel()
	}
	if e.Pending() != 0 {
		t.Fatalf("pending=%d after mass cancel, want 0", e.Pending())
	}
	if len(e.heap) != 0 {
		t.Fatalf("heap holds %d dead events after cancel, want 0", len(e.heap))
	}
	if got := e.Stats().TimersCanceled; got != 100 {
		t.Fatalf("TimersCanceled=%d, want 100", got)
	}
	// Double cancel stays a no-op and does not double-count.
	tms[0].Cancel()
	if got := e.Stats().TimersCanceled; got != 100 {
		t.Fatalf("TimersCanceled=%d after double cancel, want 100", got)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelInReadyQueue: canceling a same-instant timer (parked in the
// ready queue, not the heap) must also suppress and release it.
func TestCancelInReadyQueue(t *testing.T) {
	e := NewEngine(1)
	var ran []string
	e.CallAt(5, func() {
		tm := e.After(0, func() { ran = append(ran, "canceled") })
		e.CallAfter(0, func() { ran = append(ran, "kept") })
		tm.Cancel()
		if e.Pending() != 1 {
			t.Errorf("pending=%d after ready-queue cancel, want 1", e.Pending())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ran) != "[kept]" {
		t.Fatalf("ran %v, want [kept]", ran)
	}
}

// TestMassCancellationInterleaved cancels from the middle of a populated
// heap while scheduling continues, verifying surviving events still run
// in order — the retransmit-watchdog-disarm pattern.
func TestMassCancellationInterleaved(t *testing.T) {
	e := NewEngine(7)
	rng := rand.New(rand.NewSource(99))
	var fired []Time
	kept := 0
	var tms []*Timer
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			d := Time(rng.Intn(500) + 1)
			if rng.Intn(2) == 0 {
				tms = append(tms, e.After(d, func() { t.Error("canceled timer fired") }))
			} else {
				kept++
				e.CallAfter(d, func() { fired = append(fired, e.Now()) })
			}
		}
		// Disarm every watchdog armed so far, in a scattered order.
		for _, i := range rng.Perm(len(tms)) {
			tms[i].Cancel()
		}
		tms = tms[:0]
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != kept {
		t.Fatalf("fired %d, want %d", len(fired), kept)
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatal("surviving events fired out of order")
	}
}

// TestProcReaping: completed processes leave the proc table; live ones
// stay visible to deadlock detection and Shutdown.
func TestProcReaping(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 1000; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) { p.Sleep(Time(1 + i%7)) })
	}
	c := NewCond(e)
	e.SpawnDaemon("parked", func(p *Proc) { c.Wait(p, "forever") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.procs); got != 1 {
		t.Fatalf("proc table holds %d entries after run, want 1 (the daemon)", got)
	}
	st := e.Stats()
	if st.ProcsSpawned != 1001 || st.ProcsReaped != 1000 {
		t.Fatalf("spawned=%d reaped=%d, want 1001/1000", st.ProcsSpawned, st.ProcsReaped)
	}
	if e.LiveProcs() != 1 {
		t.Fatalf("live=%d, want 1", e.LiveProcs())
	}
	e.Shutdown()
	if e.live != 0 || len(e.procs) != 0 {
		t.Fatalf("after shutdown: live=%d table=%d, want 0/0", e.live, len(e.procs))
	}
}

// TestDeadlockReportAfterReaping: reaping must not hide still-blocked
// procs from the deadlock report.
func TestDeadlockReportAfterReaping(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	for i := 0; i < 10; i++ {
		e.Spawn(fmt.Sprintf("done%d", i), func(p *Proc) { p.Sleep(1) })
	}
	e.Spawn("stuck", func(p *Proc) { c.Wait(p, "never") })
	err := e.Run()
	dl, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck (never)" {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
	e.Shutdown()
}

// TestEngineStatsCounts sanity-checks the mechanical counters.
func TestEngineStatsCounts(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("a", func(p *Proc) {
		p.Sleep(5)  // heap event
		p.Yield()   // ready-queue event
	})
	e.CallAfter(3, func() {}) // heap + callback
	e.CallAfter(0, func() {}) // ready + callback
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CallbacksRun != 2 {
		t.Fatalf("CallbacksRun=%d, want 2", st.CallbacksRun)
	}
	// spawn(now) + yield + CallAfter(0) took the ready queue.
	if st.ReadyFast < 3 {
		t.Fatalf("ReadyFast=%d, want >= 3", st.ReadyFast)
	}
	// spawn wake + sleep wake + yield wake = 3 resumptions.
	if st.ProcSwitches != 3 {
		t.Fatalf("ProcSwitches=%d, want 3", st.ProcSwitches)
	}
	if st.Scheduled != st.ReadyFast+uint64(st.HeapPeak) && st.Scheduled < st.ReadyFast {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending=%d at quiescence", e.Pending())
	}
}

// TestSchedulePathsAllocFree pins the engine's three schedule paths at
// zero steady-state allocations: heap inserts, same-instant ready-queue
// inserts, and wheel-resident AtReuse/Cancel pairs. Containers are
// warmed first so the assertion measures the hot path, not first-touch
// slice growth.
func TestSchedulePathsAllocFree(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 4000; i++ {
		e.CallAfter(Time(1+i%2000), fn)
	}
	for i := 0; i < 2000; i++ {
		e.CallAfter(0, fn)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	if avg := testing.AllocsPerRun(1000, func() { e.CallAfter(1500, fn) }); avg != 0 {
		t.Errorf("heap CallAfter allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { e.CallAfter(0, fn) }); avg != 0 {
		t.Errorf("ready-queue CallAfter allocates %.2f/op, want 0", avg)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	// Far-future arm/disarm — the fleet timeout pattern: the timer parks
	// in the wheel, is canceled in O(1), and AtReuse recycles the Timer.
	var tm *Timer
	if avg := testing.AllocsPerRun(1000, func() {
		tm = e.AtReuse(e.Now()+wheelCutoff+10*wheelGran, fn, tm)
		tm.Cancel()
	}); avg != 0 {
		t.Errorf("wheel AtReuse+Cancel allocates %.2f/op, want 0", avg)
	}
	if e.WheelPending() != 0 {
		t.Fatalf("wheel holds %d events after cancel loop", e.WheelPending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRunUntilWithReadyBacklog: stopping at a limit mid-instant and
// resuming later must preserve order across the ready/heap boundary.
func TestRunUntilWithReadyBacklog(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.CallAt(10, func() {
		got = append(got, "a")
		e.CallAfter(0, func() { got = append(got, "b") })
		e.CallAfter(5, func() { got = append(got, "c") })
	})
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	// a and b run at t=10; c is beyond... both a and b are at t=10 ≤ 10.
	if fmt.Sprint(got) != "[a b]" {
		t.Fatalf("at limit: got %v, want [a b]", got)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("after resume: got %v", got)
	}
	if e.Now() != 15 {
		t.Fatalf("now=%v, want 15", e.Now())
	}
}
