package sim

// Cond is a condition variable in virtual time. As with sync.Cond, waiters
// must re-check their predicate in a loop: a Signal only schedules the
// waiter to resume at the current virtual time, and the state may have
// changed again by the time it runs.
type Cond struct {
	e       *Engine
	waiters []*condWaiter
}

// condWaiter is one blocked process; tmr is non-nil for deadline-bounded
// waits (WaitDeadline) and is canceled when a Signal/Broadcast wins the
// race against the deadline. A process waits on at most one Cond at a
// time (it is suspended while queued), so each Proc embeds its one
// condWaiter and every wait — including the deadline timer, via
// AtReuse — is allocation-free in steady state.
type condWaiter struct {
	p        *Proc
	c        *Cond // the cond this waiter is (or was last) queued on
	tmr      *Timer
	fn       func() // pre-built deadlineFire closure
	timedOut bool
}

// deadlineFire is the timer body for WaitDeadline: if the waiter is
// still queued when the deadline arrives, the wait ends as a timeout.
func (w *condWaiter) deadlineFire() {
	if w.c.remove(w) {
		w.timedOut = true
		w.p.unblock()
	}
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Engine) *Cond { return &Cond{e: e} }

// Wait blocks p until another activity calls Signal or Broadcast. The
// reason string appears in deadlock reports.
func (c *Cond) Wait(p *Proc, reason string) {
	w := &p.cw
	w.p, w.c = p, c
	c.waiters = append(c.waiters, w)
	p.block(reason)
}

// WaitDeadline blocks p until a Signal/Broadcast wakes it or virtual time
// reaches deadline, whichever comes first, and reports whether the wait
// timed out. It costs exactly one timer — armed at block time, canceled
// at wake-up — so a timed wait is event-driven rather than a poll loop.
// A deadline at or before the current time returns true without blocking.
// As with Wait, a false return only means the waiter was woken: the
// predicate must be re-checked by the caller.
func (c *Cond) WaitDeadline(p *Proc, reason string, deadline Time) (timedOut bool) {
	if deadline <= c.e.now {
		return true
	}
	w := &p.cw
	w.p, w.c = p, c
	w.timedOut = false
	if w.fn == nil {
		w.fn = w.deadlineFire
	}
	w.tmr = c.e.AtReuse(deadline, w.fn, w.tmr)
	c.waiters = append(c.waiters, w)
	p.block(reason)
	w.tmr.Cancel() // no-op when the deadline already fired
	return w.timedOut
}

// remove unlinks w from the waiter list, reporting whether it was still
// queued (false means a Signal/Broadcast already claimed it).
func (c *Cond) remove(w *condWaiter) bool {
	for i, cw := range c.waiters {
		if cw == w {
			n := len(c.waiters) - 1
			copy(c.waiters[i:], c.waiters[i+1:])
			c.waiters[n] = nil
			c.waiters = c.waiters[:n]
			return true
		}
	}
	return false
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	n := copy(c.waiters, c.waiters[1:])
	c.waiters[n] = nil
	c.waiters = c.waiters[:n]
	w.tmr.Cancel()
	w.p.unblock()
}

// Broadcast wakes every waiting process. The list's backing array is
// kept for reuse; woken processes cannot re-enqueue until the engine
// resumes them, after this loop has finished with it.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = c.waiters[:0]
	for i, w := range ws {
		ws[i] = nil
		w.tmr.Cancel()
		w.p.unblock()
	}
}

// Waiters reports how many processes are blocked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Queue is a FIFO channel-like queue in virtual time. A capacity of 0
// means unbounded.
type Queue[T any] struct {
	e        *Engine
	capacity int
	items    []T
	nonEmpty *Cond
	nonFull  *Cond
	name     string
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](e *Engine, name string, capacity int) *Queue[T] {
	return &Queue[T]{
		e:        e,
		capacity: capacity,
		nonEmpty: NewCond(e),
		nonFull:  NewCond(e),
		name:     name,
	}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

func (q *Queue[T]) full() bool {
	return q.capacity > 0 && len(q.items) >= q.capacity
}

// Put enqueues v, blocking while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.full() {
		q.nonFull.Wait(p, "queue "+q.name+" full")
	}
	q.items = append(q.items, v)
	q.nonEmpty.Signal()
}

// TryPut enqueues v without blocking; it reports false if the queue is
// full. Safe to call from engine callbacks.
func (q *Queue[T]) TryPut(v T) bool {
	if q.full() {
		return false
	}
	q.items = append(q.items, v)
	q.nonEmpty.Signal()
	return true
}

// Get dequeues the oldest item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.nonEmpty.Wait(p, "queue "+q.name+" empty")
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.nonFull.Signal()
	return v
}

// TryGet dequeues without blocking; ok reports whether an item was
// available. Safe to call from engine callbacks.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.nonFull.Signal()
	return v, true
}

// Resource is a counting semaphore with priority-ordered FIFO granting.
// Higher priority values are granted first; ties go to the longer waiter.
type Resource struct {
	e       *Engine
	total   int
	inUse   int
	waiters []resWaiter
	name    string

	// accounting
	grants       uint64
	waitedTotal  Time
	waitedCount  uint64
	peakQueueLen int
}

type resWaiter struct {
	p     *Proc
	prio  int
	since Time
	seq   uint64
}

// NewResource returns a semaphore with n units.
func NewResource(e *Engine, name string, n int) *Resource {
	if n <= 0 {
		panic("sim: resource must have at least one unit")
	}
	return &Resource{e: e, total: n, name: name}
}

// Total returns the number of units.
func (r *Resource) Total() int { return r.total }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire takes one unit, blocking until one is available. Units are
// granted to the highest-priority, longest-waiting acquirer.
func (r *Resource) Acquire(p *Proc, prio int) {
	r.grants++
	if r.inUse < r.total {
		r.inUse++
		return
	}
	start := r.e.now
	r.e.seq++
	r.waiters = append(r.waiters, resWaiter{p: p, prio: prio, since: start, seq: r.e.seq})
	if len(r.waiters) > r.peakQueueLen {
		r.peakQueueLen = len(r.waiters)
	}
	p.block("resource " + r.name)
	// When we resume, the releaser has already transferred the unit to us.
	r.waitedTotal += r.e.now - start
	r.waitedCount++
}

// TryAcquire takes a unit only if one is free.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.total {
		r.inUse++
		r.grants++
		return true
	}
	return false
}

// Release returns one unit, handing it directly to the best waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of unheld resource " + r.name)
	}
	if len(r.waiters) == 0 {
		r.inUse--
		return
	}
	best := 0
	for i := 1; i < len(r.waiters); i++ {
		w, b := r.waiters[i], r.waiters[best]
		if w.prio > b.prio || (w.prio == b.prio && w.seq < b.seq) {
			best = i
		}
	}
	p := r.waiters[best].p
	r.waiters = append(r.waiters[:best], r.waiters[best+1:]...)
	// The unit stays inUse and is now owned by p.
	p.unblock()
}

// MeanWait reports the average time acquirers spent blocked.
func (r *Resource) MeanWait() Time {
	if r.waitedCount == 0 {
		return 0
	}
	return r.waitedTotal / Time(r.waitedCount)
}
