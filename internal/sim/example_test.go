package sim_test

import (
	"fmt"

	"genesys/internal/sim"
)

// A producer/consumer pair exchanging items through a bounded queue in
// virtual time.
func Example() {
	e := sim.NewEngine(1)
	q := sim.NewQueue[int](e, "items", 2)
	e.Spawn("producer", func(p *sim.Proc) {
		for i := 1; i <= 3; i++ {
			q.Put(p, i)
			p.Sleep(10 * sim.Microsecond)
		}
	})
	e.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			v := q.Get(p)
			fmt.Printf("got %d at t=%v\n", v, p.Now())
			p.Sleep(25 * sim.Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// got 1 at t=0ns
	// got 2 at t=25.00us
	// got 3 at t=50.00us
}

// Resources model contended hardware: two tasks sharing one unit run
// back to back.
func ExampleResource() {
	e := sim.NewEngine(1)
	core := sim.NewResource(e, "core", 1)
	work := func(name string) {
		e.Spawn(name, func(p *sim.Proc) {
			core.Acquire(p, 0)
			p.Sleep(100 * sim.Microsecond)
			fmt.Printf("%s done at %v\n", name, p.Now())
			core.Release()
		})
	}
	work("a")
	work("b")
	if err := e.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// a done at 100.00us
	// b done at 200.00us
}

// WaitGroup joins a fan-out of simulated workers.
func ExampleWaitGroup() {
	e := sim.NewEngine(1)
	wg := sim.NewWaitGroup(e)
	for i := 1; i <= 3; i++ {
		d := sim.Time(i) * sim.Millisecond
		wg.Go("worker", func(p *sim.Proc) { p.Sleep(d) })
	}
	e.Spawn("join", func(p *sim.Proc) {
		wg.Wait(p)
		fmt.Printf("all done at %v\n", p.Now())
	})
	e.Run()
	// Output:
	// all done at 3.000ms
}
