package core_test

import (
	"testing"

	"genesys/internal/core"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// TestTwoProcessesIsolatedContexts runs two GPU applications at once,
// each bound to its own CPU process: identical fd numbers must resolve
// through each process's own descriptor table, and signals must land in
// the right process.
func TestTwoProcessesIsolatedContexts(t *testing.T) {
	m := newMachine(t, 21)
	appA := m.NewProcess("appA") // also the default binding
	appB := m.OS.NewProcess("appB")

	fileA, _ := m.VFS.Open("/tmp/a", fs.O_CREAT|fs.O_RDWR)
	fileB, _ := m.VFS.Open("/tmp/b", fs.O_CREAT|fs.O_RDWR)
	fdA, _ := appA.FDs.Install(fileA)
	fdB, _ := appB.FDs.Install(fileB)
	if fdA != fdB {
		t.Fatalf("test needs identical fd numbers, got %d and %d", fdA, fdB)
	}

	kernel := func(tag byte, fd int, peer int) gpu.Kernel {
		return gpu.Kernel{
			Name: "app" + string(tag), WorkGroups: 4, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				payload := []byte{tag}
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 1, uint64(w.WG.ID)},
					Buf:  payload,
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Relaxed, Kind: core.Consumer})
				// Signal the peer process.
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_rt_sigqueueinfo,
					Args: [6]uint64{uint64(peer), 34, uint64(w.WG.ID)},
				}, core.Options{Blocking: false, Ordering: core.Relaxed, Kind: core.Consumer})
			},
		}
	}

	m.E.Spawn("hostA", func(p *sim.Proc) {
		kr := m.GPU.Launch(p, kernel('A', fdA, appB.PID))
		kr.Wait(p)
	})
	m.E.Spawn("hostB", func(p *sim.Proc) {
		kr := m.GPU.LaunchAsync(kernel('B', fdB, appA.PID))
		m.Genesys.BindKernel(kr, appB)
		kr.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	a, _ := m.ReadFile("/tmp/a")
	b, _ := m.ReadFile("/tmp/b")
	if string(a) != "AAAA" {
		t.Fatalf("/tmp/a = %q (appA's writes leaked or were misrouted)", a)
	}
	if string(b) != "BBBB" {
		t.Fatalf("/tmp/b = %q (appB's writes misrouted through appA's fd table)", b)
	}
	// Signals: each app signalled the other 4 times, and the sender PID
	// must be the *borrowed* process, not a global one.
	if appA.Sig.Pending() != 4 || appB.Sig.Pending() != 4 {
		t.Fatalf("pending signals: A=%d B=%d", appA.Sig.Pending(), appB.Sig.Pending())
	}
	si, _ := appA.Sig.TryWait()
	if si.Pid != appB.PID {
		t.Fatalf("signal to appA came from pid %d, want %d", si.Pid, appB.PID)
	}
	si, _ = appB.Sig.TryWait()
	if si.Pid != appA.PID {
		t.Fatalf("signal to appB came from pid %d, want %d", si.Pid, appA.PID)
	}
}

// TestContextSwitchChargedPerOwnerChange verifies that a batch of slots
// owned by one process pays a single context switch, while interleaved
// owners pay more — the §VI cost the coalescing design amortizes.
func TestContextSwitchChargedPerOwnerChange(t *testing.T) {
	m := newMachine(t, 22)
	appA := m.NewProcess("appA")
	f, _ := m.VFS.Open("/tmp/one", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := appA.FDs.Install(f)

	// Single-owner batch: 8 wavefront calls coalesced into one task.
	m.Genesys.SetCoalescing(200*sim.Microsecond, 8)
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "single", WorkGroups: 8, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 1, uint64(w.WG.ID)},
					Buf:  []byte{'x'},
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Relaxed, Kind: core.Consumer})
			},
		})
		k.Wait(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Genesys.Batches.Value(); got >= 8 {
		t.Fatalf("coalescing produced %d batches for 8 calls", got)
	}
	data, _ := m.ReadFile("/tmp/one")
	if len(data) != 8 {
		t.Fatalf("writes = %d", len(data))
	}
}
