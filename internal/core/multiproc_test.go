package core_test

import (
	"bytes"
	"testing"

	"genesys/internal/core"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// TestTwoProcessesIsolatedContexts runs two GPU applications at once,
// each bound to its own CPU process: identical fd numbers must resolve
// through each process's own descriptor table, and signals must land in
// the right process.
func TestTwoProcessesIsolatedContexts(t *testing.T) {
	m := newMachine(t, 21)
	appA := m.NewProcess("appA") // also the default binding
	appB := m.OS.NewProcess("appB")

	fileA, _ := m.VFS.Open("/tmp/a", fs.O_CREAT|fs.O_RDWR)
	fileB, _ := m.VFS.Open("/tmp/b", fs.O_CREAT|fs.O_RDWR)
	fdA, _ := appA.FDs.Install(fileA)
	fdB, _ := appB.FDs.Install(fileB)
	if fdA != fdB {
		t.Fatalf("test needs identical fd numbers, got %d and %d", fdA, fdB)
	}

	kernel := func(tag byte, fd int, peer int) gpu.Kernel {
		return gpu.Kernel{
			Name: "app" + string(tag), WorkGroups: 4, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				payload := []byte{tag}
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 1, uint64(w.WG.ID)},
					Buf:  payload,
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Relaxed, Kind: core.Consumer})
				// Signal the peer process.
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_rt_sigqueueinfo,
					Args: [6]uint64{uint64(peer), 34, uint64(w.WG.ID)},
				}, core.Options{Blocking: false, Ordering: core.Relaxed, Kind: core.Consumer})
			},
		}
	}

	m.E.Spawn("hostA", func(p *sim.Proc) {
		kr := m.GPU.Launch(p, kernel('A', fdA, appB.PID))
		kr.Wait(p)
	})
	m.E.Spawn("hostB", func(p *sim.Proc) {
		kr := m.GPU.LaunchAsync(kernel('B', fdB, appA.PID))
		m.Genesys.BindKernel(kr, appB)
		kr.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	a, _ := m.ReadFile("/tmp/a")
	b, _ := m.ReadFile("/tmp/b")
	if string(a) != "AAAA" {
		t.Fatalf("/tmp/a = %q (appA's writes leaked or were misrouted)", a)
	}
	if string(b) != "BBBB" {
		t.Fatalf("/tmp/b = %q (appB's writes misrouted through appA's fd table)", b)
	}
	// Signals: each app signalled the other 4 times, and the sender PID
	// must be the *borrowed* process, not a global one.
	if appA.Sig.Pending() != 4 || appB.Sig.Pending() != 4 {
		t.Fatalf("pending signals: A=%d B=%d", appA.Sig.Pending(), appB.Sig.Pending())
	}
	si, _ := appA.Sig.TryWait()
	if si.Pid != appB.PID {
		t.Fatalf("signal to appA came from pid %d, want %d", si.Pid, appB.PID)
	}
	si, _ = appB.Sig.TryWait()
	if si.Pid != appA.PID {
		t.Fatalf("signal to appB came from pid %d, want %d", si.Pid, appA.PID)
	}
}

// TestOrphanedCallCompletesInOriginalOwner is the slot-reuse regression
// test for generation tagging: a non-blocking syscall is still in flight
// when its wavefront retires, the freed hardware slot is immediately
// reused by a second kernel bound to a *different* process, and the
// orphaned call must still complete in the original owner's context —
// the two processes use identical fd numbers, so any misrouting through
// the new tenant's fd table lands the bytes in the wrong file.
func TestOrphanedCallCompletesInOriginalOwner(t *testing.T) {
	m := newMachine(t, 23)
	appA := m.NewProcess("appA")
	appB := m.OS.NewProcess("appB")

	fileA, _ := m.VFS.Open("/tmp/a", fs.O_CREAT|fs.O_RDWR)
	fileB, _ := m.VFS.Open("/tmp/b", fs.O_CREAT|fs.O_RDWR)
	fdA, _ := appA.FDs.Install(fileA)
	fdB, _ := appB.FDs.Install(fileB)
	if fdA != fdB {
		t.Fatalf("test needs identical fd numbers, got %d and %d", fdA, fdB)
	}

	const sizeA, sizeB = 16 << 10, 512
	outstandingAtK1Done := -1
	var resB core.Result
	m.E.Spawn("host", func(p *sim.Proc) {
		k1 := m.GPU.Launch(p, gpu.Kernel{
			Name: "appA-nb", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fdA), sizeA, 0},
					Buf:  bytes.Repeat([]byte{'a'}, sizeA),
				}, core.Options{Blocking: false, Ordering: core.Relaxed, Kind: core.Consumer})
			},
		})
		k1.Wait(p)
		// The wavefront has retired; its call must still be in flight for
		// the scenario to exercise orphan adoption.
		outstandingAtK1Done = m.Genesys.Outstanding()

		k2 := m.GPU.LaunchAsync(gpu.Kernel{
			Name: "appB-reuse", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				res, inv := m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fdB), sizeB, 0},
					Buf:  bytes.Repeat([]byte{'b'}, sizeB),
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Strong})
				if inv {
					resB = res
				}
			},
		})
		m.Genesys.BindKernel(k2, appB)
		k2.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	if outstandingAtK1Done != 1 {
		t.Fatalf("outstanding at first-kernel completion = %d, want 1 (call must outlive its wavefront)",
			outstandingAtK1Done)
	}
	if got := m.Genesys.OrphansAdopted.Value(); got != 1 {
		t.Fatalf("orphans adopted = %d, want 1", got)
	}
	if got := m.Genesys.OrphansCompleted.Value(); got != 1 {
		t.Fatalf("orphans completed = %d, want 1", got)
	}
	if got := m.Genesys.Orphans(); got != 0 {
		t.Fatalf("%d orphans still live after drain", got)
	}
	if !resB.Ok() || resB.Ret != sizeB {
		t.Fatalf("second tenant's call = %+v, want %d-byte write", resB, sizeB)
	}
	a, _ := m.ReadFile("/tmp/a")
	b, _ := m.ReadFile("/tmp/b")
	if len(a) != sizeA || bytes.Contains(a, []byte{'b'}) {
		t.Fatalf("/tmp/a = %d bytes (orphaned write lost or misrouted)", len(a))
	}
	if len(b) != sizeB || bytes.Contains(b, []byte{'a'}) {
		t.Fatalf("/tmp/b = %d bytes (new tenant's write misrouted)", len(b))
	}
}

// TestContextSwitchChargedPerOwnerChange verifies that a batch of slots
// owned by one process pays a single context switch, while interleaved
// owners pay more — the §VI cost the coalescing design amortizes.
func TestContextSwitchChargedPerOwnerChange(t *testing.T) {
	m := newMachine(t, 22)
	appA := m.NewProcess("appA")
	f, _ := m.VFS.Open("/tmp/one", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := appA.FDs.Install(f)

	// Single-owner batch: 8 wavefront calls coalesced into one task.
	m.Genesys.SetCoalescing(200*sim.Microsecond, 8)
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "single", WorkGroups: 8, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 1, uint64(w.WG.ID)},
					Buf:  []byte{'x'},
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Relaxed, Kind: core.Consumer})
			},
		})
		k.Wait(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Genesys.Batches.Value(); got >= 8 {
		t.Fatalf("coalescing produced %d batches for 8 calls", got)
	}
	data, _ := m.ReadFile("/tmp/one")
	if len(data) != 8 {
		t.Fatalf("writes = %d", len(data))
	}
}
