// Package core implements GENESYS, the paper's contribution: a generic
// POSIX system call interface for GPU programs.
//
// Mechanism (paper §III, §VI):
//
//  1. The GPU work-item claims its slot in a preallocated shared-memory
//     syscall area (one 64-byte cache-line slot per active hardware
//     work-item — 1.25 MiB on the default 20480-work-item GPU) using a
//     compare-and-swap, populates it with the call number, arguments and
//     a blocking bit, and flips it to ready with an atomic swap. Atomics
//     force L2 lookups, sidestepping the GPU's non-coherent L1.
//  2. The wavefront interrupts the CPU (scalar s_sendmsg), carrying its
//     hardware wavefront ID.
//  3. The CPU interrupt handler — optionally after coalescing multiple
//     interrupts within a configurable window — enqueues a kernel task.
//  4. An OS worker thread scans the 64 slots of each wavefront in the
//     batch, switches ready→processing, borrows the context of the CPU
//     process that launched the kernel, and executes the call.
//  5. Results are written back to the slot; blocking slots become
//     finished (the waiting work-item polls or is resumed from halt),
//     non-blocking slots go straight back to free.
//
// The package exposes the paper's full invocation design space:
// work-item / work-group / kernel granularity, strong / relaxed ordering
// with producer / consumer barrier elision, blocking / non-blocking
// completion, and polling / halt-resume wait modes.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"genesys/internal/cpu"
	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/mem"
	"genesys/internal/obs"
	"genesys/internal/oskern"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// SlotState is the lifecycle of one syscall-area slot (paper Figure 6).
type SlotState uint32

const (
	SlotFree SlotState = iota
	SlotPopulating
	SlotReady
	SlotProcessing
	SlotFinished
)

func (s SlotState) String() string {
	switch s {
	case SlotFree:
		return "free"
	case SlotPopulating:
		return "populating"
	case SlotReady:
		return "ready"
	case SlotProcessing:
		return "processing"
	case SlotFinished:
		return "finished"
	}
	return "invalid"
}

// Slot is one 64-byte syscall-area entry: call number, request state, up
// to six arguments (re-purposed for the return value), a blocking bit,
// and padding to a full cache line to avoid false sharing (Figure 5).
type Slot struct {
	// ID is the slot's hardware work-item index in the syscall area.
	ID       int
	State    SlotState
	Blocking bool
	Req      syscalls.Request

	// gen is the slot generation of the owning wavefront tenancy
	// (gpu.Wavefront.Gen), stamped at populate time. The hardware
	// recycles wavefront slots the moment a wavefront retires, so every
	// CPU-side actor that reaches a syscall-area slot through a hardware
	// wavefront ID (batch scans, retransmit watchdogs, doorbells) must
	// match gen before touching it — a raw hardware ID may already name
	// a successor tenant.
	gen   uint64
	owner *oskern.Process
	trace callTrace
}

// Generation returns the slot generation of the invocation occupying the
// slot (0 until the slot has ever been populated).
func (s Slot) Generation() uint64 { return s.gen }

// WaitMode selects how a blocking work-item awaits completion (§V-C).
type WaitMode int

const (
	// WaitPoll spins on the slot state with atomic loads; cheap while the
	// polled working set fits the GPU L2, ruinous beyond it (Figure 9).
	WaitPoll WaitMode = iota
	// WaitHaltResume halts the wavefront, relinquishing SIMD resources
	// until the CPU's doorbell; pays the resume latency.
	WaitHaltResume
)

func (m WaitMode) String() string {
	if m == WaitHaltResume {
		return "halt-resume"
	}
	return "polling"
}

// Ordering is the system call ordering semantics (§V-A).
type Ordering int

const (
	// Strong: all work-items in the invocation scope complete prior
	// instructions before the call, and none proceed past it until the
	// call returns (barriers on both sides).
	Strong Ordering = iota
	// Relaxed: one of the two barriers is elided according to Kind.
	Relaxed
)

func (o Ordering) String() string {
	if o == Relaxed {
		return "relaxed"
	}
	return "strong"
}

// Kind classifies the data-flow role of a call for relaxed ordering:
// consumers of GPU-produced data (write, pwrite, sendto) keep only the
// pre-call barrier; producers of data the GPU will consume (read, pread,
// recvfrom) keep only the post-call barrier.
type Kind int

const (
	Consumer Kind = iota
	Producer
)

// Options selects the invocation strategy for one call.
type Options struct {
	Blocking bool
	Wait     WaitMode
	Ordering Ordering
	Kind     Kind
}

// Result is the outcome of a completed (blocking) system call.
type Result struct {
	Ret     int64
	Err     errno.Errno
	OutArgs [2]uint64
}

// Ok reports whether the call succeeded.
func (r Result) Ok() bool { return r.Err == errno.OK }

// ErrKernelStrongOrdering is returned when strong ordering is requested
// at kernel invocation granularity: with non-preemptible work-groups the
// required kernel-wide barrier deadlocks whenever the grid exceeds
// residency, so GENESYS rejects the combination outright (§V-A).
var ErrKernelStrongOrdering = errors.New(
	"genesys: strong ordering at kernel granularity would deadlock the GPU")

// Config holds GENESYS tunables. CoalesceWindow and CoalesceMax are also
// exposed at /sys/genesys/{coalesce_window_us,coalesce_max} (§VI).
type Config struct {
	// CoalesceWindow is how long the interrupt handler waits to batch
	// further system call interrupts; 0 disables coalescing.
	CoalesceWindow sim.Time
	// CoalesceMax is the maximum number of wavefront interrupts handled
	// as a single kernel task.
	CoalesceMax int
	// PollInterval is the delay between polling loads of a slot.
	PollInterval sim.Time

	// PackedSlots is an ablation switch: instead of the paper's design
	// of one 64-byte slot per cache line (Figure 5's padding), pack four
	// 16-byte slots per line. Atomics then false-share: every operation
	// on a slot whose line holds other in-flight slots pays extra
	// coherence round trips. Used to quantify why the paper pads.
	PackedSlots bool

	// RetransmitTimeout is how long ready slots of a wavefront may sit
	// unprocessed before the doorbell interrupt is retransmitted; the
	// watchdog only arms while fault injection is active. 0 selects a
	// default.
	RetransmitTimeout sim.Time
	// MaxRetransmits bounds redelivery attempts per invocation; once
	// exhausted the stale slots complete with EINTR so a lossy interrupt
	// line degrades to a well-formed errno instead of a hang. 0 selects
	// a default.
	MaxRetransmits int
}

// DefaultConfig returns coalescing off and a 2 us poll interval.
func DefaultConfig() Config {
	return Config{CoalesceWindow: 0, CoalesceMax: 1, PollInterval: 2 * sim.Microsecond}
}

// Genesys is the installed GPU system call layer of one machine.
type Genesys struct {
	E   *sim.Engine
	GPU *gpu.Device
	OS  *oskern.OS
	Mem *mem.System
	CPU *cpu.CPU

	cfg   Config
	slots []Slot
	proc  *oskern.Process // default context GPU syscalls borrow

	// kernelProcs maps kernels to the processes that launched them, for
	// machines running several GPU applications at once.
	kernelProcs map[*gpu.KernelRun]*oskern.Process

	outstanding int
	drainCond   *sim.Cond

	// interrupt coalescing state
	pendingWaves []doorbell
	pendingSet   map[doorbell]bool
	coalesceTmr  *sim.Timer

	// orphans is the reaper's ledger: syscall-area slot ID → generation,
	// for calls still in flight when their wavefront retired. Orphaned
	// slots keep completing through the normal batch/watchdog paths in
	// their owner's context (Slot.owner); the ledger exists so retirement
	// is an explicit hand-off rather than silent aliasing, and so tests
	// and /sys/genesys/stats can see adoption balance out.
	orphans map[int]uint64

	Invocations   sim.Counter
	Batches       sim.Counter
	BatchedWaves  sim.Counter
	SlotConflicts sim.Counter

	// OrphansAdopted counts in-flight slots handed to the reaper at
	// wavefront retirement; OrphansCompleted counts those that later
	// finished (or were EINTR-aborted by the watchdog) and freed.
	OrphansAdopted   sim.Counter
	OrphansCompleted sim.Counter

	// IRQRetransmits counts doorbell redeliveries by the watchdog;
	// Retries counts syscall restarts (kernel-side here, user-side via
	// gclib's restartable layer, which shares this counter).
	IRQRetransmits sim.Counter
	Retries        sim.Counter

	inject *fault.Injector
	retx   map[doorbell]*retxState // armed retransmit watchdogs, by (hw wave, generation)

	tracer    *Tracer
	events    *obs.EventLog
	flight    *obs.Flight // always-on anomaly detectors (possibly nil)
	rec       Recorder    // syscall stream tap for record/replay (possibly nil)
	nextTrace uint64      // last assigned causal trace ID

	// pwFree recycles pollWaiters (the callback-driven slot-poll state
	// machines) so steady-state polling allocates nothing.
	pwFree []*pollWaiter
}

// SetFlight attaches the machine's flight recorder; completed and
// aborted calls feed its latency-outlier and watchdog-exhaustion
// detectors.
func (g *Genesys) SetFlight(f *obs.Flight) { g.flight = f }

// SlotStateCounts returns how many syscall-area slots currently sit in
// each lifecycle state — the in-flight-by-phase row of the live top
// view.
func (g *Genesys) SlotStateCounts() map[SlotState]int {
	out := make(map[SlotState]int, 5)
	for i := range g.slots {
		out[g.slots[i].State]++
	}
	return out
}

// doorbell names one tenancy of a hardware wavefront slot: the slot ID
// the hardware reports and the generation of the wavefront that occupied
// it when the doorbell was rung. Keying CPU-side state on the pair —
// instead of the raw slot, which the GPU recycles at retirement — is
// what keeps retransmit aborts, batch scans and resume doorbells from
// being misdelivered to a successor wavefront.
type doorbell struct {
	hw  int
	gen uint64
}

// retxState is one invocation's retransmit watchdog (keyed by doorbell,
// so a watchdog armed for one tenancy can never act on the next).
type retxState struct {
	attempts int
	sent     bool // a retransmission happened since the last clean check
}

// New installs GENESYS on a machine: it sizes the syscall area to the
// GPU's active hardware work-items, hooks the GPU→CPU interrupt line and
// registers the sysfs tunables.
func New(e *sim.Engine, dev *gpu.Device, os *oskern.OS, m *mem.System,
	c *cpu.CPU, cfg Config) *Genesys {
	if cfg.CoalesceMax < 1 {
		cfg.CoalesceMax = 1
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * sim.Microsecond
	}
	g := &Genesys{
		E:           e,
		GPU:         dev,
		OS:          os,
		Mem:         m,
		CPU:         c,
		cfg:         cfg,
		slots:       make([]Slot, dev.HWWorkItems()),
		drainCond:   sim.NewCond(e),
		pendingSet:  make(map[doorbell]bool),
		kernelProcs: make(map[*gpu.KernelRun]*oskern.Process),
		retx:        make(map[doorbell]*retxState),
		orphans:     make(map[int]uint64),
	}
	if g.cfg.RetransmitTimeout <= 0 {
		g.cfg.RetransmitTimeout = 500 * sim.Microsecond
	}
	if g.cfg.MaxRetransmits <= 0 {
		g.cfg.MaxRetransmits = 32
	}
	for i := range g.slots {
		g.slots[i].ID = i
	}
	dev.SetIRQHandler(g.handleIRQ)
	dev.SetRetireHook(g.adoptOrphans)
	g.registerSysfs()
	return g
}

// AreaBytes returns the syscall area size (64 bytes per slot).
func (g *Genesys) AreaBytes() int { return len(g.slots) * 64 }

// Config returns the current tunables.
func (g *Genesys) Config() Config { return g.cfg }

// SetCoalescing adjusts the coalescing knobs (also reachable via sysfs).
func (g *Genesys) SetCoalescing(window sim.Time, max int) {
	if max < 1 {
		max = 1
	}
	g.cfg.CoalesceWindow = window
	g.cfg.CoalesceMax = max
	g.flushIfKnobsSatisfied()
}

// flushIfKnobsSatisfied re-evaluates a parked coalescing batch after a
// knob write: lowering coalesce_max to (or below) the number of pending
// doorbells, or disabling the window outright, would otherwise leave the
// batch waiting on the next IRQ or the old window's timer.
func (g *Genesys) flushIfKnobsSatisfied() {
	if len(g.pendingWaves) == 0 {
		return
	}
	if len(g.pendingWaves) >= g.cfg.CoalesceMax || g.cfg.CoalesceWindow <= 0 {
		g.flushPending()
	}
}

// BindProcess sets the default CPU process whose context GPU system
// calls borrow — the process that launches the GPU kernels. GPU threads
// themselves have no kernel representation (§IV).
func (g *Genesys) BindProcess(pr *oskern.Process) { g.proc = pr }

// Process returns the default bound process.
func (g *Genesys) Process() *oskern.Process { return g.proc }

// BindKernel associates one launched kernel with the process that owns
// it, so machines running several GPU applications dispatch each
// program's system calls in its own context (fd table, address space,
// signal state). Kernels without a binding fall back to the default
// process.
func (g *Genesys) BindKernel(kr *gpu.KernelRun, pr *oskern.Process) {
	g.kernelProcs[kr] = pr
}

// procFor resolves the owning process of a wavefront's kernel.
func (g *Genesys) procFor(w *gpu.Wavefront) *oskern.Process {
	if pr, ok := g.kernelProcs[w.WG.Run]; ok {
		return pr
	}
	return g.proc
}

// SetInjector attaches the machine's fault injector. The oskern-layer
// pipeline faults (dropped doorbells, slot-scan skips) are consumed
// here, where the interrupt handler and slot scan live.
func (g *Genesys) SetInjector(in *fault.Injector) { g.inject = in }

// Injector returns the attached fault injector (possibly nil).
func (g *Genesys) Injector() *fault.Injector { return g.inject }

// FaultsActive reports whether a fault plan is armed — the gate gclib's
// restartable layer uses so the default path never retries and stays
// bit-identical to a machine without the fault subsystem.
func (g *Genesys) FaultsActive() bool { return g.inject.Active() }

// Slot returns a copy of slot i (for tests and debugging).
func (g *Genesys) Slot(i int) Slot { return g.slots[i] }

// Outstanding returns the number of system calls in flight.
func (g *Genesys) Outstanding() int { return g.outstanding }

// Orphans returns the number of in-flight slots whose wavefront has
// retired and which are currently held by the orphan reaper.
func (g *Genesys) Orphans() int { return len(g.orphans) }

func (g *Genesys) registerSysfs() {
	if g.OS.SysfsRoot == nil {
		return
	}
	g.OS.SysfsRoot.Add("coalesce_window_us", &fs.CtlFile{
		Get: func() []byte {
			return []byte(strconv.FormatInt(int64(g.cfg.CoalesceWindow/sim.Microsecond), 10) + "\n")
		},
		Set: func(b []byte) error {
			v, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
			if err != nil || v < 0 {
				return errno.EINVAL
			}
			g.cfg.CoalesceWindow = sim.Time(v) * sim.Microsecond
			g.flushIfKnobsSatisfied()
			return nil
		},
	})
	g.OS.SysfsRoot.Add("coalesce_max", &fs.CtlFile{
		Get: func() []byte {
			return []byte(strconv.Itoa(g.cfg.CoalesceMax) + "\n")
		},
		Set: func(b []byte) error {
			v, err := strconv.Atoi(strings.TrimSpace(string(b)))
			if err != nil || v < 1 {
				return errno.EINVAL
			}
			g.cfg.CoalesceMax = v
			g.flushIfKnobsSatisfied()
			return nil
		},
	})
	g.OS.SysfsRoot.Add("critpath", &fs.GenFile{Gen: func() []byte {
		if g.tracer == nil {
			return []byte("no tracer attached\n")
		}
		return []byte(g.tracer.CritPath())
	}})
	g.OS.SysfsRoot.Add("stats", &fs.GenFile{Gen: func() []byte {
		return []byte(fmt.Sprintf(
			"invocations %d\nbatches %d\nbatched_waves %d\nslot_conflicts %d\noutstanding %d\n"+
				"orphans_adopted %d\norphans_completed %d\norphans_live %d\n",
			g.Invocations.Value(), g.Batches.Value(), g.BatchedWaves.Value(),
			g.SlotConflicts.Value(), g.outstanding,
			g.OrphansAdopted.Value(), g.OrphansCompleted.Value(), len(g.orphans)))
	}})
}

// --- GPU side -------------------------------------------------------------

// falseSharingPenalty returns the extra coherence cost of touching slot
// idx when slots are packed four to a cache line: each other in-flight
// slot on the line forces a line ping-pong (ablation; zero in the
// paper's padded layout).
func (g *Genesys) falseSharingPenalty(idx int) sim.Time {
	if !g.cfg.PackedSlots {
		return 0
	}
	base := idx &^ 3
	var n sim.Time
	for i := base; i < base+4 && i < len(g.slots); i++ {
		if i != idx && g.slots[i].State != SlotFree {
			n++
		}
	}
	return n * 4 * g.Mem.Config().L2HitTime
}

// populateSlot claims and fills the slot of (wavefront, lane); it charges
// the cmp-swap claim, the line store, and the swap to ready.
func (g *Genesys) populateSlot(w *gpu.Wavefront, lane int, req syscalls.Request, blocking bool) *Slot {
	id := w.HWWorkItemID(lane)
	s := &g.slots[id]
	claimStart := g.E.Now()
	for {
		g.Mem.GPUAtomic(w.P, mem.OpCmpSwap, 0)
		if pen := g.falseSharingPenalty(id); pen > 0 {
			w.P.Sleep(pen)
		}
		if s.State == SlotFree {
			s.State = SlotPopulating
			break
		}
		// A previous (non-blocking) call on this work-item is still being
		// processed: invocation is delayed until the slot frees (§VI).
		// While spinning, the slot still belongs to that call — possibly
		// an orphan of a retired predecessor tenancy — so nothing (owner,
		// generation, trace) may be written until the claim wins, or the
		// in-flight call would complete against the new tenant's identity.
		g.SlotConflicts.Inc()
		w.P.Sleep(g.cfg.PollInterval)
	}
	g.nextTrace++
	s.trace = callTrace{
		id:     g.nextTrace,
		nr:     req.NR,
		wave:   w.HWSlot,
		gen:    w.Gen,
		worker: -1,
		claim:  claimStart,
	}
	s.owner = g.procFor(w)
	s.gen = w.Gen
	req.Ret, req.Err = 0, errno.OK
	req.Trace = s.trace.id
	s.Req = req
	s.Blocking = blocking
	g.Mem.GPUWriteLine(w.P)
	g.Mem.GPUAtomic(w.P, mem.OpSwap, 0)
	s.State = SlotReady
	s.trace.ready = g.E.Now()
	g.Invocations.Inc()
	g.outstanding++
	g.noteReady(s)
	return s
}

// pollWaiter drives one wavefront's WaitPoll loop as engine-loop
// callbacks instead of process wake-ups. The classic loop costs two
// goroutine channel switches per polling load (the atomic-load latency
// sleep and the poll-interval sleep are both process resumptions); at
// fleet scale that handoff traffic dominates host wall clock. The state
// machine below replays the *identical* control flow — every sleep
// becomes a callback scheduled at the same instant, in the same order,
// performing the same memory-model mutations and random draws — so the
// engine's event sequence is bit-for-bit unchanged, but the process
// parks once and is resumed inline (sim.Engine.ResumeInline) by the tick
// that observes completion: an N-interval wait costs N inline callbacks
// and a single process switch instead of ~2N switches.
//
// phase encodes where in the loop body the next callback resumes:
//
//	phaseScan     — arriving at slots[i] (top of the inner loop body)
//	phaseLoadDone — the polling load completed; settle L2 hit/miss
//	phaseSettled  — load fully charged; apply the false-sharing penalty
//	phaseChecked  — penalty charged; recheck the slot and advance
type pollWaiter struct {
	g     *Genesys
	w     *gpu.Wavefront
	slots []*Slot
	i     int
	phase int
	done  bool
	fn    func() // the tick closure, built once per waiter and reused
}

const (
	phaseScan = iota
	phaseLoadDone
	phaseSettled
	phaseChecked
)

// step runs the poll loop from the current position to its next sleep
// point, returning the sleep delay, or finished=true when every slot is
// done. A zero delay re-enters step inline, exactly like the zero-length
// p.Sleep it replaces.
func (pw *pollWaiter) step() (d sim.Time, finished bool) {
	g := pw.g
	for {
		if pw.i == len(pw.slots) {
			if pw.done {
				return 0, true
			}
			pw.i, pw.done = 0, true
			return g.cfg.PollInterval, false // w.P.Sleep(PollInterval)
		}
		s := pw.slots[pw.i]
		switch pw.phase {
		case phaseScan:
			if s.State != SlotFinished {
				pw.phase = phaseLoadDone
				if d := g.Mem.PollLoadStart(); d > 0 {
					return d, false // the atomic-load latency sleep
				}
				continue
			}
		case phaseLoadDone:
			pw.phase = phaseSettled
			if d := g.Mem.PollLoadFinish(); d > 0 {
				return d, false // DRAM spill on an L2 miss
			}
			continue
		case phaseSettled:
			pw.phase = phaseChecked
			if pen := g.falseSharingPenalty(s.ID); pen > 0 {
				return pen, false // w.P.Sleep(pen)
			}
			continue
		case phaseChecked:
			pw.phase = phaseScan
			if s.State != SlotFinished {
				pw.done = false
			}
		}
		pw.i++
	}
}

// pollWait blocks w's process until every slot is finished, event-for-
// event identical to the classic polling loop (see pollWaiter).
func (g *Genesys) pollWait(w *gpu.Wavefront, slots []*Slot) {
	var pw *pollWaiter
	if n := len(g.pwFree); n > 0 {
		pw = g.pwFree[n-1]
		g.pwFree = g.pwFree[:n-1]
	} else {
		pw = &pollWaiter{}
		pw.fn = func() {
			d, finished := pw.step()
			if finished {
				pw.g.E.ResumeInline(pw.w.P)
				return
			}
			pw.g.E.CallAfter(d, pw.fn)
		}
	}
	pw.g, pw.w, pw.slots = g, w, slots
	pw.i, pw.phase, pw.done = 0, phaseScan, true
	// The first stretch — up to the first sleep — runs inline in process
	// context, just as the classic loop's did.
	d, finished := pw.step()
	if !finished {
		g.E.CallAfter(d, pw.fn)
		w.P.Park("syscall poll")
	}
	pw.w, pw.slots = nil, nil
	g.pwFree = append(g.pwFree, pw)
}

// awaitSlots waits (per mode) until every given blocking slot reaches
// finished, then harvests results and frees the slots.
func (g *Genesys) awaitSlots(w *gpu.Wavefront, slots []*Slot, mode WaitMode) []Result {
	switch mode {
	case WaitHaltResume:
		for !allFinished(slots) {
			w.Halt()
		}
	default: // WaitPoll
		g.Mem.AddPolledLines(len(slots))
		w.BeginPoll()
		defer w.EndPoll()
		g.pollWait(w, slots)
		g.Mem.AddPolledLines(-len(slots))
	}
	results := make([]Result, len(slots))
	for i, s := range slots {
		results[i] = Result{Ret: s.Req.Ret, Err: s.Req.Err, OutArgs: s.Req.OutArgs}
		g.Mem.GPUAtomic(w.P, mem.OpSwap, 0)
		s.State = SlotFree
		g.slotReleased(s)
		s.trace.harvest = g.E.Now()
		g.finishTrace(s)
		g.noteCompleted()
	}
	return results
}

func allFinished(slots []*Slot) bool {
	for _, s := range slots {
		if s.State != SlotFinished {
			return false
		}
	}
	return true
}

func (g *Genesys) noteCompleted() {
	g.outstanding--
	if g.outstanding == 0 {
		g.drainCond.Broadcast()
	}
}

// adoptOrphans is the GPU's retirement hook (one call per retiring
// wavefront, before its hardware slot re-enters the free list): any of
// the wave's syscall-area slots still in flight — non-blocking calls
// whose wavefront finished without waiting, exactly the §IX case Drain
// exists for — are handed to the orphan reaper. Orphaned slots keep
// their generation and owner, so the batch or watchdog that eventually
// completes them executes in the original process's context and can
// never be confused with the slot's next tenant.
func (g *Genesys) adoptOrphans(hw int, gen uint64) {
	simd := g.GPU.Config().SIMDWidth
	base := hw * simd
	for lane := 0; lane < simd; lane++ {
		s := &g.slots[base+lane]
		if s.State == SlotFree || s.gen != gen {
			continue
		}
		g.orphans[s.ID] = gen
		g.OrphansAdopted.Inc()
		if g.events.Enabled() {
			g.events.Instant("genesys", "orphan-adopted", obs.PIDSyscalls, s.ID, g.E.Now())
		}
	}
}

// slotReleased retires the reaper's claim on a slot transitioning back
// to free (called on every free transition; a no-op for non-orphans).
func (g *Genesys) slotReleased(s *Slot) {
	if gen, ok := g.orphans[s.ID]; ok && gen == s.gen {
		delete(g.orphans, s.ID)
		g.OrphansCompleted.Inc()
	}
}

// Invoke issues one system call from lane 0 of the calling wavefront —
// the primitive underlying work-group and kernel granularity invocation.
// Blocking calls return the Result; non-blocking calls return immediately
// with a zero Result.
func (g *Genesys) Invoke(w *gpu.Wavefront, req syscalls.Request, o Options) Result {
	s := g.populateSlot(w, 0, req, o.Blocking)
	w.Interrupt()
	g.armRetransmit(w.HWSlot, w.Gen)
	if !o.Blocking {
		return Result{}
	}
	return g.awaitSlots(w, []*Slot{s}, o.Wait)[0]
}

// InvokeEach issues one system call per active lane of the wavefront —
// work-item invocation granularity. The mk callback builds each lane's
// request (return nil to skip a lane). Per the hardware, the lanes'
// slots are populated serially but a single wavefront interrupt covers
// all of them, and the CPU scans all 64 slots (§VI). Work-item
// granularity implies strong ordering within the wavefront (§V-A).
func (g *Genesys) InvokeEach(w *gpu.Wavefront, mk func(lane int) *syscalls.Request, o Options) []Result {
	var slots []*Slot
	for lane := 0; lane < w.Lanes; lane++ {
		req := mk(lane)
		if req == nil {
			continue
		}
		slots = append(slots, g.populateSlot(w, lane, *req, o.Blocking))
	}
	if len(slots) == 0 {
		return nil
	}
	w.Interrupt()
	g.armRetransmit(w.HWSlot, w.Gen)
	if !o.Blocking {
		return make([]Result, len(slots))
	}
	return g.awaitSlots(w, slots, o.Wait)
}

// InvokeWG issues one system call at work-group granularity: wavefront 0
// invokes on behalf of the group, with barriers placed according to the
// ordering semantics (paper Figures 3 and 4):
//
//	strong:            Bar1 — syscall — Bar2
//	relaxed consumer:  Bar1 — syscall            (write-like)
//	relaxed producer:         syscall — Bar2     (read-like)
//
// Every wavefront of the work-group must call InvokeWG. The leader's
// result is returned with invoker=true; other wavefronts get a zero
// Result and invoker=false.
func (g *Genesys) InvokeWG(w *gpu.Wavefront, req syscalls.Request, o Options) (res Result, invoker bool) {
	if o.Ordering == Strong || o.Kind == Consumer {
		w.Barrier() // Bar1
	}
	if w.IsLeader() {
		res = g.Invoke(w, req, o)
		invoker = true
	}
	if o.Ordering == Strong || o.Kind == Producer {
		w.Barrier() // Bar2
	}
	return res, invoker
}

// InvokeKernel issues one system call at kernel granularity: wavefront 0
// of work-group 0 invokes on behalf of the entire grid. Relaxed ordering
// is mandatory — strong ordering would require a kernel-wide barrier that
// deadlocks non-preemptible work-groups (§V-A) — so Strong is rejected
// with ErrKernelStrongOrdering.
func (g *Genesys) InvokeKernel(w *gpu.Wavefront, req syscalls.Request, o Options) (Result, bool, error) {
	if o.Ordering == Strong {
		return Result{}, false, ErrKernelStrongOrdering
	}
	if !w.IsKernelLeader() {
		return Result{}, false, nil
	}
	return g.Invoke(w, req, o), true, nil
}

// Drain blocks the calling CPU process until every outstanding GPU system
// call has completed — the new host-side call the paper adds so that
// non-blocking GPU system calls cannot outlive their process (§IX).
func (g *Genesys) Drain(p *sim.Proc) {
	for g.outstanding > 0 {
		g.drainCond.Wait(p, "genesys drain")
	}
}

// --- CPU side -------------------------------------------------------------

// armRetransmit starts the interrupt-retransmission watchdog for a
// wavefront tenancy that just rang the doorbell. Inactive injector → no
// timer, so the default path's event schedule is untouched. A fresh
// invocation on an already-watched tenancy resets the attempt budget —
// and the retransmission flag with it, so a redelivery that belonged to
// the previous invocation is never credited to this one as a recovery.
// Keying on (hw, gen) means a watchdog armed for one tenancy can outlive
// its wavefront (orphaned non-blocking calls) without ever being able to
// abort or resume a successor tenant of the recycled hardware slot.
func (g *Genesys) armRetransmit(hw int, gen uint64) {
	if !g.inject.Active() {
		return
	}
	key := doorbell{hw, gen}
	if st, ok := g.retx[key]; ok {
		st.attempts = 0
		st.sent = false
		return
	}
	st := &retxState{}
	g.retx[key] = st
	g.E.CallAfter(g.cfg.RetransmitTimeout, func() { g.checkRetransmit(key, st) })
}

// staleSlots returns the tenancy's slots still sitting in ready —
// evidence its doorbell was lost or its batch scan skipped them. Slots
// of any other generation on the same hardware wavefront belong to a
// different tenant and are invisible here.
func (g *Genesys) staleSlots(db doorbell) []*Slot {
	simd := g.GPU.Config().SIMDWidth
	var stale []*Slot
	for lane := 0; lane < simd; lane++ {
		if s := &g.slots[db.hw*simd+lane]; s.State == SlotReady && s.gen == db.gen {
			stale = append(stale, s)
		}
	}
	return stale
}

// checkRetransmit is the watchdog tick: ready slots older than the
// timeout get their interrupt redelivered; after MaxRetransmits the
// stale slots complete with EINTR (blocking callers observe it and may
// restart; non-blocking slots free so Drain cannot hang) — an injected
// interrupt loss is either recovered or surfaced, never a silent stall.
// Both the abort and the wake-up doorbell are scoped to the watched
// generation: a successor wavefront on the recycled hardware slot is
// neither EINTR-aborted nor spuriously resumed.
func (g *Genesys) checkRetransmit(db doorbell, st *retxState) {
	stale := g.staleSlots(db)
	if len(stale) == 0 {
		delete(g.retx, db)
		if st.sent {
			g.inject.NoteRecovered()
		}
		return
	}
	if st.attempts >= g.cfg.MaxRetransmits {
		delete(g.retx, db)
		now := g.E.Now()
		for _, s := range stale {
			s.Req.Ret, s.Req.Err = -1, errno.EINTR
			s.trace.picked, s.trace.done = now, now
			s.trace.aborted = true
			g.inject.NoteSurfaced()
			if s.Blocking {
				s.State = SlotFinished
			} else {
				s.State = SlotFree
				g.slotReleased(s)
				g.finishTrace(s)
				g.noteCompleted()
			}
		}
		g.GPU.Resume(db.hw, db.gen)
		return
	}
	st.attempts++
	st.sent = true
	g.IRQRetransmits.Inc()
	g.handleIRQ(db.hw, db.gen)
	g.E.CallAfter(g.cfg.RetransmitTimeout, func() { g.checkRetransmit(db, st) })
}

// handleIRQ receives wavefront interrupts (engine-callback context) and
// applies interrupt coalescing (§V-B): interrupts arriving within
// CoalesceWindow are batched, up to CoalesceMax, into one kernel task.
// The doorbell carries the ringing tenancy's generation; two tenancies
// of the same hardware slot are distinct batch entries, so a coalesced
// doorbell from a retired wavefront can never absorb (and thereby
// starve) its successor's.
func (g *Genesys) handleIRQ(hwWave int, gen uint64) {
	if g.inject.Should(fault.IRQDrop) {
		return // doorbell lost; the retransmit watchdog recovers it
	}
	db := doorbell{hwWave, gen}
	if g.cfg.CoalesceWindow <= 0 || g.cfg.CoalesceMax <= 1 {
		g.enqueueBatch([]doorbell{db})
		return
	}
	if !g.pendingSet[db] {
		g.pendingSet[db] = true
		g.pendingWaves = append(g.pendingWaves, db)
	}
	if len(g.pendingWaves) >= g.cfg.CoalesceMax {
		g.flushPending()
		return
	}
	if g.coalesceTmr == nil {
		g.coalesceTmr = g.E.After(g.cfg.CoalesceWindow, g.flushPending)
	}
}

func (g *Genesys) flushPending() {
	if g.coalesceTmr != nil {
		g.coalesceTmr.Cancel()
		g.coalesceTmr = nil
	}
	if len(g.pendingWaves) == 0 {
		return
	}
	batch := g.pendingWaves
	g.pendingWaves = nil
	g.pendingSet = make(map[doorbell]bool)
	g.enqueueBatch(batch)
}

func (g *Genesys) enqueueBatch(waves []doorbell) {
	g.Batches.Inc()
	g.BatchedWaves.Add(int64(len(waves)))
	// Stamp unconditionally (stamping is free in virtual time): a tracer
	// attached mid-run must see fully-stamped traces, not a zero enqueued
	// stamp that yields hugely negative delivery-phase samples. Only the
	// ringing generation's slots are stamped — ready slots of another
	// tenancy on the same hardware wavefront ride their own doorbell.
	simd := g.GPU.Config().SIMDWidth
	for _, db := range waves {
		for lane := 0; lane < simd; lane++ {
			if s := &g.slots[db.hw*simd+lane]; s.State == SlotReady && s.gen == db.gen {
				s.trace.enqueued = g.E.Now()
			}
		}
	}
	g.OS.Enqueue(oskern.Task{
		Name: "genesys-batch",
		Run:  func(p *sim.Proc) { g.processBatch(p, waves) },
	})
}

// processBatch runs in an OS worker thread: it switches into the bound
// process's context once, then scans the 64 slots of every wavefront in
// the batch, executing each ready request. Coalescing trades latency for
// this batching: one task, one context switch, serialized processing.
// Each batch entry only touches slots of the generation that rang its
// doorbell: a slot whose generation differs belongs to another tenancy
// of the recycled hardware wavefront (an orphan of a retired wave, or a
// successor that has its own doorbell in flight) and is left alone. The
// borrowed context always comes from Slot.owner, so an orphaned call
// still completes in the process that issued it, never in the context of
// the slot's new tenant.
func (g *Genesys) processBatch(p *sim.Proc, waves []doorbell) {
	var current *oskern.Process
	ctx := &syscalls.Ctx{P: p, OS: g.OS, Events: g.events}
	worker := g.OS.WorkerID(p)
	simd := g.GPU.Config().SIMDWidth
	for _, db := range waves {
		base := db.hw * simd
		for lane := 0; lane < simd; lane++ {
			s := &g.slots[base+lane]
			if s.State != SlotReady || s.gen != db.gen {
				continue
			}
			if g.inject.Should(fault.SlotSkip) {
				// Scan skipped a ready slot; the retransmit watchdog
				// redelivers the wavefront's interrupt to recover it.
				continue
			}
			owner := s.owner
			if owner == nil {
				owner = g.proc
			}
			if owner == nil {
				panic("genesys: no process bound; call BindProcess or BindKernel before launching kernels")
			}
			// Claim the slot before the context switch: SwitchTo yields
			// virtual time to charge the switch cost, and a concurrent
			// batch for the same tenancy (a retransmitted doorbell, or a
			// second doorbell from back-to-back non-blocking calls)
			// scanning during that window would otherwise double-pick the
			// slot — the loser's completion then lands on a slot the
			// wavefront has already harvested and recycled, stranding it
			// in finished with no caller left to free it.
			s.State = SlotProcessing
			// Context switches are charged only when the borrowed
			// context actually changes within the batch.
			if owner != current {
				owner.SwitchTo(p)
				current = owner
				ctx.Proc = owner
			}
			s.trace.picked = g.E.Now()
			s.trace.worker = worker
			// Snapshot the request before dispatch can mutate it (OutArgs,
			// and any handler that rewrites its arguments), so an in-place
			// restart reissues the original call, not a clobbered one.
			restartable := !s.Blocking && g.inject.Active() && syscalls.Restartable(s.Req.NR)
			var orig syscalls.Request
			if restartable {
				orig = s.Req
			}
			g.CPU.Exec(p, g.OS.Config().SyscallSoftware, cpu.PrioKernel)
			syscalls.Dispatch(ctx, &s.Req)
			if restartable && transientErr(s.Req.Err) {
				// Kernel-side restart: a non-blocking call has no caller
				// left to observe a transient failure, so the worker
				// reissues it in place with backoff.
				g.restartInPlace(p, ctx, s, orig)
			}
			s.trace.done = g.E.Now()
			if s.Blocking {
				s.State = SlotFinished
			} else {
				s.State = SlotFree
				g.slotReleased(s)
				g.finishTrace(s)
				g.noteCompleted()
			}
		}
		// Doorbell: wake the wavefront if it halted awaiting results —
		// only if it is still the tenancy that rang; a doorbell for a
		// retired generation is dropped at the device.
		g.GPU.Resume(db.hw, db.gen)
	}
}

// transientErr reports whether e is a restartable transient failure.
func transientErr(e errno.Errno) bool {
	return e == errno.EINTR || e == errno.EAGAIN || e == errno.ENOMEM
}

// restartInPlace retries a transiently-failed non-blocking request in
// the worker, with capped exponential backoff in virtual time. orig is
// the request as populated by the GPU, snapshotted before the first
// dispatch: handlers may rewrite arguments and OutArgs while executing,
// so each retry restores the original request instead of re-issuing
// whatever the failed attempt left behind.
func (g *Genesys) restartInPlace(p *sim.Proc, ctx *syscalls.Ctx, s *Slot, orig syscalls.Request) {
	const maxRestarts = 4
	backoff := 4 * sim.Microsecond
	for attempt := 0; attempt < maxRestarts && transientErr(s.Req.Err); attempt++ {
		g.Retries.Inc()
		p.Sleep(backoff)
		if backoff < 64*sim.Microsecond {
			backoff *= 2
		}
		s.Req = orig
		s.Req.Ret, s.Req.Err = 0, errno.OK
		g.CPU.Exec(p, g.OS.Config().SyscallSoftware, cpu.PrioKernel)
		syscalls.Dispatch(ctx, &s.Req)
	}
	if transientErr(s.Req.Err) {
		g.inject.NoteSurfaced()
	} else {
		g.inject.NoteRecovered()
	}
}
