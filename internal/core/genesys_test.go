package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"genesys/internal/core"
	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

func newMachine(t *testing.T, seed int64) *platform.Machine {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	return m
}

func TestAreaMatchesPaper(t *testing.T) {
	m := newMachine(t, 1)
	if m.Genesys.AreaBytes() != 20480*64 {
		t.Fatalf("area = %d bytes, want 1.25 MiB", m.Genesys.AreaBytes())
	}
}

func TestWorkGroupBlockingPwrite(t *testing.T) {
	m := newMachine(t, 1)
	pr := m.NewProcess("app")
	// Open the output file from the host, then have each work-group
	// pwrite its block at its own offset.
	f, err := m.VFS.Open("/tmp/out", fs.O_CREAT|fs.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := pr.FDs.Install(f)

	const wgs = 8
	const blockSize = 1024
	var leaderResults []core.Result
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "writer", WorkGroups: wgs, WGSize: 256,
			Fn: func(w *gpu.Wavefront) {
				buf := bytes.Repeat([]byte{byte('A' + w.WG.ID)}, blockSize)
				res, invoker := m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), blockSize, uint64(w.WG.ID * blockSize)},
					Buf:  buf,
				}, core.Options{Blocking: true, Wait: core.WaitPoll, Ordering: core.Strong})
				if invoker {
					leaderResults = append(leaderResults, res)
				}
			},
		})
		k.Wait(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(leaderResults) != wgs {
		t.Fatalf("leader results = %d, want %d", len(leaderResults), wgs)
	}
	for _, r := range leaderResults {
		if !r.Ok() || r.Ret != blockSize {
			t.Fatalf("pwrite result = %+v", r)
		}
	}
	data, _ := m.ReadFile("/tmp/out")
	if len(data) != wgs*blockSize {
		t.Fatalf("file size = %d", len(data))
	}
	for wg := 0; wg < wgs; wg++ {
		for i := 0; i < blockSize; i++ {
			if data[wg*blockSize+i] != byte('A'+wg) {
				t.Fatalf("byte %d of block %d = %c", i, wg, data[wg*blockSize+i])
			}
		}
	}
	if m.Genesys.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after completion", m.Genesys.Outstanding())
	}
}

func TestWorkItemGranularityPread(t *testing.T) {
	m := newMachine(t, 1)
	pr := m.NewProcess("app")
	// 64 lanes each pread 16 bytes at their own offset.
	content := make([]byte, 64*16)
	for i := range content {
		content[i] = byte(i % 251)
	}
	if err := m.WriteFile("/tmp/in", content); err != nil {
		t.Fatal(err)
	}
	f, _ := m.VFS.Open("/tmp/in", fs.O_RDONLY)
	fd, _ := pr.FDs.Install(f)

	lanebufs := make([][]byte, 64)
	var results []core.Result
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "wi-read", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				results = m.Genesys.InvokeEach(w, func(lane int) *syscalls.Request {
					lanebufs[lane] = make([]byte, 16)
					return &syscalls.Request{
						NR:   syscalls.SYS_pread64,
						Args: [6]uint64{uint64(fd), 16, uint64(lane * 16)},
						Buf:  lanebufs[lane],
					}
				}, core.Options{Blocking: true, Wait: core.WaitHaltResume})
			},
		})
		k.Wait(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 64 {
		t.Fatalf("results = %d", len(results))
	}
	for lane := 0; lane < 64; lane++ {
		if !results[lane].Ok() || results[lane].Ret != 16 {
			t.Fatalf("lane %d result %+v", lane, results[lane])
		}
		if !bytes.Equal(lanebufs[lane], content[lane*16:(lane+1)*16]) {
			t.Fatalf("lane %d data mismatch", lane)
		}
	}
	if m.GPU.Halts.Value() == 0 {
		t.Fatal("halt-resume path never halted")
	}
}

func TestNonBlockingAndDrain(t *testing.T) {
	m := newMachine(t, 1)
	pr := m.NewProcess("app")
	f, _ := m.VFS.Open("/tmp/out", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := pr.FDs.Install(f)

	outstandingAtKernelDone := -1
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "nb", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 4096, 0},
					Buf:  make([]byte, 4096),
				}, core.Options{Blocking: false, Ordering: core.Relaxed, Kind: core.Consumer})
			},
		})
		k.Wait(p)
		// Non-blocking: the kernel finishes while the system call is
		// still in flight on the CPU side.
		outstandingAtKernelDone = m.Genesys.Outstanding()
		m.Genesys.Drain(p) // §IX: ensure completion before process exit
		if m.Genesys.Outstanding() != 0 {
			t.Error("outstanding after drain")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	data, _ := m.ReadFile("/tmp/out")
	if len(data) != 4096 {
		t.Fatalf("file size = %d: non-blocking write lost", len(data))
	}
	if outstandingAtKernelDone != 1 {
		t.Fatalf("outstanding at kernel completion = %d, want 1 (call still in flight)",
			outstandingAtKernelDone)
	}
}

func TestOrderingBarrierPlacement(t *testing.T) {
	// Measure when non-leader wavefronts get past the invocation under
	// each ordering. Strong+blocking keeps everyone until completion;
	// weak+blocking releases non-leaders as soon as they hit Bar1.
	runVariant := func(o core.Options) (leaderDone, othersDone sim.Time) {
		m := newMachine(t, 7)
		pr := m.NewProcess("app")
		f, _ := m.VFS.Open("/tmp/out", fs.O_CREAT|fs.O_WRONLY)
		fd, _ := pr.FDs.Install(f)
		m.E.Spawn("host", func(p *sim.Proc) {
			k := m.GPU.Launch(p, gpu.Kernel{
				Name: "ord", WorkGroups: 1, WGSize: 1024,
				Fn: func(w *gpu.Wavefront) {
					_, invoker := m.Genesys.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 64 << 10, 0},
						Buf:  make([]byte, 64<<10),
					}, o)
					if invoker {
						leaderDone = w.P.Now()
					} else if w.P.Now() > othersDone {
						othersDone = w.P.Now()
					}
				},
			})
			k.Wait(p)
			m.Genesys.Drain(p)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return leaderDone, othersDone
	}

	strongLeader, strongOthers := runVariant(core.Options{
		Blocking: true, Wait: core.WaitPoll, Ordering: core.Strong})
	weakLeader, weakOthers := runVariant(core.Options{
		Blocking: true, Wait: core.WaitPoll, Ordering: core.Relaxed, Kind: core.Consumer})

	if strongOthers < strongLeader {
		t.Fatalf("strong: others (%v) finished before leader (%v)", strongOthers, strongLeader)
	}
	if weakOthers >= weakLeader {
		t.Fatalf("weak consumer: others (%v) did not finish before blocking leader (%v)",
			weakOthers, weakLeader)
	}
}

func TestKernelGranularity(t *testing.T) {
	m := newMachine(t, 1)
	pr := m.NewProcess("app")
	f, _ := m.VFS.Open("/tmp/out", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := pr.FDs.Install(f)
	invokers := 0
	var strongErr error
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "kg", WorkGroups: 8, WGSize: 256,
			Fn: func(w *gpu.Wavefront) {
				// Strong ordering must be rejected.
				if _, _, err := m.Genesys.InvokeKernel(w, syscalls.Request{}, core.Options{
					Blocking: true, Ordering: core.Strong}); err != nil && strongErr == nil {
					strongErr = err
				}
				_, inv, err := m.Genesys.InvokeKernel(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 128, 0},
					Buf:  make([]byte, 128),
				}, core.Options{Blocking: true, Wait: core.WaitPoll, Ordering: core.Relaxed})
				if err != nil {
					t.Errorf("relaxed kernel invoke: %v", err)
				}
				if inv {
					invokers++
				}
			},
		})
		k.Wait(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if invokers != 1 {
		t.Fatalf("invokers = %d, want 1 (kernel leader only)", invokers)
	}
	if strongErr != core.ErrKernelStrongOrdering {
		t.Fatalf("strong at kernel scope = %v", strongErr)
	}
}

func TestSlotConflictDelaysInvocation(t *testing.T) {
	m := newMachine(t, 1)
	pr := m.NewProcess("app")
	f, _ := m.VFS.Open("/tmp/out", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := pr.FDs.Install(f)
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "conflict", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				// Two back-to-back non-blocking calls on the same
				// work-item: the second must wait for the slot to free.
				for i := 0; i < 2; i++ {
					m.Genesys.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 8, uint64(8 * i)},
						Buf:  []byte("01234567"),
					}, core.Options{Blocking: false, Ordering: core.Relaxed, Kind: core.Consumer})
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Genesys.SlotConflicts.Value() == 0 {
		t.Fatal("second call on busy slot did not conflict")
	}
	data, _ := m.ReadFile("/tmp/out")
	if len(data) != 16 {
		t.Fatalf("file = %d bytes, want both writes", len(data))
	}
}

func TestCoalescingBatchesInterrupts(t *testing.T) {
	run := func(window sim.Time, max int) (batches, waves int64) {
		m := newMachine(t, 3)
		pr := m.NewProcess("app")
		f, _ := m.VFS.Open("/tmp/out", fs.O_CREAT|fs.O_WRONLY)
		fd, _ := pr.FDs.Install(f)
		m.Genesys.SetCoalescing(window, max)
		m.E.Spawn("host", func(p *sim.Proc) {
			k := m.GPU.Launch(p, gpu.Kernel{
				Name: "coal", WorkGroups: 16, WGSize: 64,
				Fn: func(w *gpu.Wavefront) {
					m.Genesys.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 64, uint64(64 * w.WG.ID)},
						Buf:  make([]byte, 64),
					}, core.Options{Blocking: true, Wait: core.WaitPoll, Ordering: core.Relaxed, Kind: core.Consumer})
				},
			})
			k.Wait(p)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Genesys.Batches.Value(), m.Genesys.BatchedWaves.Value()
	}
	b0, w0 := run(0, 1)
	if b0 != w0 {
		t.Fatalf("no coalescing: batches=%d waves=%d", b0, w0)
	}
	b1, w1 := run(100*sim.Microsecond, 8)
	if w1 != w0 {
		t.Fatalf("coalesced run processed %d waves, want %d", w1, w0)
	}
	if b1 >= b0 {
		t.Fatalf("coalescing did not reduce batches: %d vs %d", b1, b0)
	}
}

func TestCoalesceKnobWriteFlushesParkedBatch(t *testing.T) {
	// A batch parked under a long coalescing window must flush the moment
	// a knob write makes it eligible: lowering coalesce_max below the
	// number of pending doorbells (via sysfs), or disabling the window
	// (via SetCoalescing) — not sit parked until the old window's timer.
	const window = 10 * sim.Millisecond
	m := newMachine(t, 17)
	pr := m.NewProcess("app")
	f, _ := m.VFS.Open("/tmp/out", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := pr.FDs.Install(f)

	kernel := func(name string, off int) gpu.Kernel {
		return gpu.Kernel{
			Name: name, WorkGroups: 4, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 64, uint64(off + 64*w.WG.ID)},
					Buf:  make([]byte, 64),
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Relaxed, Kind: core.Consumer})
			},
		}
	}
	io := &fs.IOCtx{}
	var sysfsDone, setDone sim.Time
	m.E.Spawn("host", func(p *sim.Proc) {
		// Round 1: 4 doorbells park (max 8 not reached); writing
		// coalesce_max=2 through sysfs must flush them immediately.
		m.Genesys.SetCoalescing(window, 8)
		k1 := m.GPU.Launch(p, kernel("park-sysfs", 0))
		p.Sleep(500 * sim.Microsecond)
		cm, err := m.VFS.Open("/sys/genesys/coalesce_max", fs.O_RDWR)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := cm.Write(io, []byte("2\n")); err != nil {
			t.Errorf("coalesce_max write: %v", err)
		}
		k1.Wait(p)
		sysfsDone = p.Now()

		// Round 2: park again, then disable the window via SetCoalescing.
		m.Genesys.SetCoalescing(window, 8)
		k2 := m.GPU.Launch(p, kernel("park-set", 1024))
		p.Sleep(500 * sim.Microsecond)
		m.Genesys.SetCoalescing(0, 8)
		k2.Wait(p)
		setDone = p.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if sysfsDone >= window {
		t.Fatalf("sysfs knob write did not flush: round 1 finished at %v (window %v)",
			sysfsDone, window)
	}
	if setDone >= 2*window {
		t.Fatalf("SetCoalescing did not flush: round 2 finished at %v", setDone)
	}
	if b, w := m.Genesys.Batches.Value(), m.Genesys.BatchedWaves.Value(); b != 2 || w != 8 {
		t.Fatalf("batches=%d waves=%d, want 2 batches of 4 waves each", b, w)
	}
}

func TestRestartInPlaceReissuesOriginalRequest(t *testing.T) {
	// A non-blocking restartable call that fails transiently is reissued
	// in place by the worker; each retry must carry the original request,
	// and once the transient clears the write lands whole at the original
	// offset with nothing surfaced to the workload.
	cfg := platform.DefaultConfig()
	cfg.Seed = 19
	cfg.Faults = &fault.Plan{Name: "early-eagain", Rules: []fault.Rule{
		{Point: fault.SyscallErrno, Rate: 1, Until: 60 * sim.Microsecond,
			Param: int64(errno.EAGAIN)},
	}}
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	pr := m.NewProcess("app")
	f, _ := m.VFS.Open("/tmp/out", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := pr.FDs.Install(f)

	const size = 4096
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "restart", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), size, 0},
					Buf:  bytes.Repeat([]byte{'x'}, size),
				}, core.Options{Blocking: false, Ordering: core.Relaxed, Kind: core.Consumer})
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Inject.InjectedAt(fault.SyscallErrno) == 0 {
		t.Fatal("injection window fired nothing; first dispatch missed it")
	}
	if m.Genesys.Retries.Value() == 0 {
		t.Fatal("transient failure did not trigger an in-place restart")
	}
	if m.Inject.Surfaced.Value() != 0 {
		t.Fatalf("surfaced = %d; the restart should have recovered", m.Inject.Surfaced.Value())
	}
	if m.Inject.Recovered.Value() == 0 {
		t.Fatal("recovery not recorded")
	}
	data, _ := m.ReadFile("/tmp/out")
	if len(data) != size || bytes.Contains(data, []byte{0}) {
		t.Fatalf("file = %d bytes (retry reissued a clobbered request?)", len(data))
	}
}

func TestSysfsTunables(t *testing.T) {
	m := newMachine(t, 1)
	io := &fs.IOCtx{}
	wf, err := m.VFS.Open("/sys/genesys/coalesce_max", fs.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write(io, []byte("16\n")); err != nil {
		t.Fatal(err)
	}
	if m.Genesys.Config().CoalesceMax != 16 {
		t.Fatalf("coalesce_max = %d", m.Genesys.Config().CoalesceMax)
	}
	ww, _ := m.VFS.Open("/sys/genesys/coalesce_window_us", fs.O_RDWR)
	if _, err := ww.Write(io, []byte("250")); err != nil {
		t.Fatal(err)
	}
	if m.Genesys.Config().CoalesceWindow != 250*sim.Microsecond {
		t.Fatalf("window = %v", m.Genesys.Config().CoalesceWindow)
	}
	if _, err := ww.Write(io, []byte("junk")); err != errno.EINVAL {
		t.Fatalf("bad write = %v", err)
	}
	buf := make([]byte, 8)
	n, _ := wf.Pread(io, buf, 0)
	if string(buf[:n]) != "16\n" {
		t.Fatalf("readback = %q", buf[:n])
	}
}

func TestENOSYSForUnimplemented(t *testing.T) {
	m := newMachine(t, 1)
	m.NewProcess("app")
	var res core.Result
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "enosys", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				res, _ = m.Genesys.InvokeWG(w, syscalls.Request{NR: 57 /* fork */},
					core.Options{Blocking: true, Wait: core.WaitPoll, Ordering: core.Strong})
			},
		})
		k.Wait(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Err != errno.ENOSYS || res.Ret != -1 {
		t.Fatalf("fork from GPU = %+v, want ENOSYS", res)
	}
}

func TestGPUPrintsToTerminal(t *testing.T) {
	// "Everything is a file": the GPU writes to stdout (fd 1).
	m := newMachine(t, 1)
	m.NewProcess("app")
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "print", WorkGroups: 4, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				line := fmt.Sprintf("hello from wg%d\n", w.WG.ID)
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_write,
					Args: [6]uint64{1, uint64(len(line))},
					Buf:  []byte(line),
				}, core.Options{Blocking: true, Wait: core.WaitPoll, Ordering: core.Relaxed, Kind: core.Consumer})
			},
		})
		k.Wait(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	lines := m.OS.Console.Lines()
	if len(lines) != 4 {
		t.Fatalf("console lines = %v", lines)
	}
	seen := map[string]bool{}
	for _, l := range lines {
		seen[l] = true
	}
	for i := 0; i < 4; i++ {
		if !seen[fmt.Sprintf("hello from wg%d", i)] {
			t.Fatalf("missing output of wg%d: %v", i, lines)
		}
	}
}

func TestGPUOpenReadClose(t *testing.T) {
	// The GPU opens a file by pathname, reads it, and closes it — the
	// wordcount pattern (§VIII-C).
	m := newMachine(t, 1)
	m.NewProcess("app")
	if err := m.WriteFile("/tmp/doc", []byte("the quick brown fox")); err != nil {
		t.Fatal(err)
	}
	var got []byte
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "orc", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				opts := core.Options{Blocking: true, Wait: core.WaitPoll, Ordering: core.Relaxed, Kind: core.Producer}
				res, inv := m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_open,
					Args: [6]uint64{fs.O_RDONLY},
					Buf:  []byte("/tmp/doc"),
				}, opts)
				if !inv {
					return
				}
				if !res.Ok() {
					t.Errorf("open: %v", res.Err)
					return
				}
				fd := uint64(res.Ret)
				buf := make([]byte, 64)
				res, _ = m.Genesys.InvokeWG(w, syscalls.Request{
					NR: syscalls.SYS_read, Args: [6]uint64{fd, 64}, Buf: buf,
				}, opts)
				got = buf[:res.Ret]
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR: syscalls.SYS_close, Args: [6]uint64{fd},
				}, core.Options{Blocking: true, Wait: core.WaitPoll, Ordering: core.Relaxed, Kind: core.Consumer})
			},
		})
		k.Wait(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "the quick brown fox" {
		t.Fatalf("read back %q", got)
	}
}

func TestPrefetchPattern(t *testing.T) {
	// §V-A's closing example: "a programmer wishes to prefetch data using
	// read system calls but may not use the results immediately. Here,
	// weak ordering with non-blocking invocation is likely to provide the
	// best performance without breaking the program's semantics."
	// The kernel issues a non-blocking pread (prefetch), computes, and
	// only then consumes the data, which the CPU filled in the meantime.
	m := newMachine(t, 13)
	m.NewProcess("app")
	content := bytes.Repeat([]byte("prefetch!"), 1000)
	if err := m.WriteFile("/tmp/in", content); err != nil {
		t.Fatal(err)
	}
	f, _ := m.VFS.Open("/tmp/in", fs.O_RDONLY)
	pr := m.Genesys.Process()
	fd, _ := pr.FDs.Install(f)

	var gotFirst byte
	var issueTime, consumeTime sim.Time
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "prefetch", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				buf := make([]byte, 4096)
				// Issue the prefetch: non-blocking, weak ordering.
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pread64,
					Args: [6]uint64{uint64(fd), 4096, 0},
					Buf:  buf,
				}, core.Options{Blocking: false, Ordering: core.Relaxed, Kind: core.Producer})
				issueTime = w.P.Now()
				// Overlap compute with the CPU-side read processing.
				w.ComputeTime(500 * sim.Microsecond)
				// Consume: by now the slot has been processed and freed;
				// the data is in the buffer.
				if w.IsLeader() {
					consumeTime = w.P.Now()
					gotFirst = buf[0]
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if gotFirst != 'p' {
		t.Fatalf("prefetched data not present: first byte %q", gotFirst)
	}
	if consumeTime-issueTime < 500*sim.Microsecond {
		t.Fatal("compute did not overlap the prefetch")
	}
	if m.Genesys.Outstanding() != 0 {
		t.Fatal("prefetch never completed")
	}
}

func TestPackedSlotsAblation(t *testing.T) {
	// DESIGN.md ⚗2: packing four slots per cache line false-shares on
	// work-item-granularity invocation, so the paper's padded layout
	// must be measurably faster.
	run := func(packed bool) sim.Time {
		cfg := platform.DefaultConfig()
		cfg.Seed = 11
		cfg.Genesys.PackedSlots = packed
		m := platform.New(cfg)
		defer m.Shutdown()
		pr := m.NewProcess("app")
		f, _ := m.VFS.Open("/tmp/out", fs.O_CREAT|fs.O_WRONLY)
		fd, _ := pr.FDs.Install(f)
		var runtime sim.Time
		m.E.Spawn("host", func(p *sim.Proc) {
			k := m.GPU.Launch(p, gpu.Kernel{
				Name: "flood", WorkGroups: 8, WGSize: 64,
				Fn: func(w *gpu.Wavefront) {
					m.Genesys.InvokeEach(w, func(lane int) *syscalls.Request {
						return &syscalls.Request{
							NR:   syscalls.SYS_pwrite64,
							Args: [6]uint64{uint64(fd), 16, uint64(16 * w.GlobalWorkItemID(lane))},
							Buf:  make([]byte, 16),
						}
					}, core.Options{Blocking: true, Wait: core.WaitPoll})
				},
			})
			k.Wait(p)
			runtime = p.Now()
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return runtime
	}
	padded := run(false)
	packed := run(true)
	if packed <= padded {
		t.Fatalf("packed slots (%v) not slower than padded (%v): false sharing missing",
			packed, padded)
	}
}

func TestSlotStateStringAndIntrospection(t *testing.T) {
	m := newMachine(t, 1)
	if m.Genesys.Slot(0).State != core.SlotFree {
		t.Fatal("initial slot not free")
	}
	states := []core.SlotState{core.SlotFree, core.SlotPopulating, core.SlotReady,
		core.SlotProcessing, core.SlotFinished}
	want := []string{"free", "populating", "ready", "processing", "finished"}
	for i, s := range states {
		if s.String() != want[i] {
			t.Fatalf("state %d = %q", i, s.String())
		}
	}
}
