package core_test

import (
	"testing"
	"testing/quick"

	"genesys/internal/core"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// TestSlotMachineQuiescenceProperty drives GENESYS with a randomized mix
// of invocation granularities, blocking modes, wait modes, orderings and
// coalescing settings, and checks the state-machine invariants the design
// relies on (Figure 6):
//
//  1. after drain, every slot is back to free;
//  2. the outstanding counter returns to zero;
//  3. every blocking call returned success;
//  4. every written byte is where pwrite put it.
func TestSlotMachineQuiescenceProperty(t *testing.T) {
	f := func(seed int64, mix []uint8) bool {
		if len(mix) == 0 {
			return true
		}
		if len(mix) > 24 {
			mix = mix[:24]
		}
		cfg := platform.DefaultConfig()
		cfg.Seed = seed
		m := platform.New(cfg)
		defer m.Shutdown()
		pr := m.NewProcess("fuzz")
		// Randomize coalescing from the seed.
		if seed%2 == 0 {
			m.Genesys.SetCoalescing(sim.Time(20+seed%80)*sim.Microsecond, int(2+seed%8))
		}
		file, err := m.VFS.Open("/tmp/fuzz", fs.O_CREAT|fs.O_RDWR)
		if err != nil {
			return false
		}
		fd, _ := pr.FDs.Install(file)

		okAll := true
		m.E.Spawn("host", func(p *sim.Proc) {
			k := m.GPU.Launch(p, gpu.Kernel{
				Name: "fuzz", WorkGroups: len(mix), WGSize: 128,
				Fn: func(w *gpu.Wavefront) {
					op := mix[w.WG.ID]
					blocking := op&1 == 0
					wait := core.WaitPoll
					if op&2 != 0 {
						wait = core.WaitHaltResume
					}
					ordering := core.Strong
					if op&4 != 0 {
						ordering = core.Relaxed
					}
					payload := []byte{byte(w.WG.ID)}
					req := syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 1, uint64(w.WG.ID)},
						Buf:  payload,
					}
					opts := core.Options{Blocking: blocking, Wait: wait,
						Ordering: ordering, Kind: core.Consumer}
					switch op % 3 {
					case 0: // work-group granularity
						if r, inv := m.Genesys.InvokeWG(w, req, opts); inv && blocking && !r.Ok() {
							okAll = false
						}
					case 1: // single-wavefront invocation
						if w.IsLeader() {
							r := m.Genesys.Invoke(w, req, opts)
							if blocking && !r.Ok() {
								okAll = false
							}
						}
					case 2: // work-item granularity: two lanes write two bytes
						if w.IsLeader() {
							rs := m.Genesys.InvokeEach(w, func(lane int) *syscalls.Request {
								if lane > 1 {
									return nil
								}
								return &syscalls.Request{
									NR:   syscalls.SYS_pwrite64,
									Args: [6]uint64{uint64(fd), 1, uint64(w.WG.ID)},
									Buf:  payload,
								}
							}, core.Options{Blocking: blocking, Wait: wait})
							if blocking {
								for _, r := range rs {
									if !r.Ok() {
										okAll = false
									}
								}
							}
						}
					}
				},
			})
			k.Wait(p)
			m.Genesys.Drain(p)
		})
		if err := m.Run(); err != nil {
			return false
		}
		if !okAll || m.Genesys.Outstanding() != 0 {
			return false
		}
		for i := 0; i < m.GPU.HWWorkItems(); i++ {
			if m.Genesys.Slot(i).State != core.SlotFree {
				return false
			}
		}
		data, err := m.ReadFile("/tmp/fuzz")
		if err != nil || len(data) != len(mix) {
			return false
		}
		for i := range data {
			if data[i] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
