package core_test

import (
	"bytes"
	"testing"

	"genesys/internal/core"
	"genesys/internal/fault"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/oskern"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// newFaultMachine builds a machine with a fast retransmit watchdog and
// the given fault plan, for slot-reuse scenarios under interrupt loss.
func newFaultMachine(t *testing.T, seed int64, timeout sim.Time, maxRetx int,
	plan fault.Plan) *platform.Machine {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	cfg.Genesys.RetransmitTimeout = timeout
	cfg.Genesys.MaxRetransmits = maxRetx
	cfg.Faults = &plan
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	return m
}

// TestIRQLossRecoveryAcrossSlotReuse drops every doorbell for the first
// 200us of the run: an orphaned non-blocking call (its wavefront retires
// while the doorbell is lost) and a successor tenant of the *same*
// recycled hardware slot, bound to a different process, are then both
// recovered by their own generation-keyed retransmit watchdogs. Neither
// generation may be EINTR-aborted, and the orphan's bytes must land in
// the original owner's file even though a new tenant now occupies the
// slot.
func TestIRQLossRecoveryAcrossSlotReuse(t *testing.T) {
	const window = 200 * sim.Microsecond
	m := newFaultMachine(t, 31, 25*sim.Microsecond, 32, fault.Plan{
		Name:  "irq-loss-window",
		Rules: []fault.Rule{{Point: fault.IRQDrop, Rate: 1, Until: window}},
	})
	appA := m.NewProcess("appA")
	appB := m.OS.NewProcess("appB")

	fileA, _ := m.VFS.Open("/tmp/a", fs.O_CREAT|fs.O_RDWR)
	fileB, _ := m.VFS.Open("/tmp/b", fs.O_CREAT|fs.O_RDWR)
	fdA, _ := appA.FDs.Install(fileA)
	fdB, _ := appB.FDs.Install(fileB)

	const sizeA, sizeB = 4096, 256
	var hwA, hwB int
	var genA, genB uint64
	var resB core.Result
	m.E.Spawn("host", func(p *sim.Proc) {
		// Kernel A: a single non-blocking pwrite on lane 1, then retire.
		// The doorbell is dropped, so the slot is orphaned in Ready.
		k1 := m.GPU.Launch(p, gpu.Kernel{
			Name: "appA-orphan", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				hwA, genA = w.HWSlot, w.Gen
				m.Genesys.InvokeEach(w, func(lane int) *syscalls.Request {
					if lane != 1 {
						return nil
					}
					return &syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fdA), sizeA, 0},
						Buf:  bytes.Repeat([]byte{'a'}, sizeA),
					}
				}, core.Options{Blocking: false})
			},
		})
		k1.Wait(p)

		// Kernel B reuses the freed hardware slot (lane 0, so it does
		// not contend with the orphan on lane 1) in appB's context.
		k2 := m.GPU.LaunchAsync(gpu.Kernel{
			Name: "appB-reuse", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				hwB, genB = w.HWSlot, w.Gen
				res, inv := m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fdB), sizeB, 0},
					Buf:  bytes.Repeat([]byte{'b'}, sizeB),
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Strong})
				if inv {
					resB = res
				}
			},
		})
		m.Genesys.BindKernel(k2, appB)
		k2.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	if hwB != hwA || genB <= genA {
		t.Fatalf("scenario broken: hw %d/%d gen %d/%d — second kernel did not reuse the slot",
			hwA, hwB, genA, genB)
	}
	if m.Inject.InjectedAt(fault.IRQDrop) == 0 {
		t.Fatal("drop window injected nothing")
	}
	if m.Genesys.IRQRetransmits.Value() == 0 {
		t.Fatal("no retransmissions attempted")
	}
	if n := m.Inject.Surfaced.Value(); n != 0 {
		t.Fatalf("%d faults surfaced; both generations should have recovered", n)
	}
	if !resB.Ok() || resB.Ret != sizeB {
		t.Fatalf("successor tenant's call = %+v (cross-generation abort?)", resB)
	}
	a, _ := m.ReadFile("/tmp/a")
	if len(a) != sizeA {
		t.Fatalf("/tmp/a = %d bytes, want %d (orphaned write lost)", len(a), sizeA)
	}
	if m.Genesys.OrphansAdopted.Value() != 1 || m.Genesys.OrphansCompleted.Value() != 1 {
		t.Fatalf("orphans adopted=%d completed=%d, want 1/1",
			m.Genesys.OrphansAdopted.Value(), m.Genesys.OrphansCompleted.Value())
	}
	if m.Genesys.Orphans() != 0 || m.Genesys.Outstanding() != 0 {
		t.Fatalf("orphans=%d outstanding=%d after drain",
			m.Genesys.Orphans(), m.Genesys.Outstanding())
	}
}

// TestWatchdogExhaustionScopedToOrphanGeneration drops every doorbell
// forever: the orphaned generation's watchdog exhausts its retransmit
// budget and EINTR-aborts the orphan — but must not abort (or resume)
// the successor generation occupying the same hardware slot. The
// successor's own watchdog is what eventually releases it, so the
// successor observes EINTR no earlier than its own full retransmit
// budget, not at the orphan's earlier exhaustion time.
func TestWatchdogExhaustionScopedToOrphanGeneration(t *testing.T) {
	const (
		rtxTimeout = 30 * sim.Microsecond
		maxRetx    = 3
	)
	m := newFaultMachine(t, 32, rtxTimeout, maxRetx, fault.Plan{
		Name:  "total-irq-loss",
		Rules: []fault.Rule{{Point: fault.IRQDrop, Rate: 1}},
	})
	appA := m.NewProcess("appA")
	f, _ := m.VFS.Open("/tmp/a", fs.O_CREAT|fs.O_RDWR)
	fd, _ := appA.FDs.Install(f)

	var hwA, hwB int
	var genA, genB uint64
	var invokeAt, releaseAt sim.Time
	var resB core.Result
	m.E.Spawn("host", func(p *sim.Proc) {
		k1 := m.GPU.Launch(p, gpu.Kernel{
			Name: "orphan", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				hwA, genA = w.HWSlot, w.Gen
				m.Genesys.InvokeEach(w, func(lane int) *syscalls.Request {
					if lane != 1 {
						return nil
					}
					return &syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 1024, 0},
						Buf:  make([]byte, 1024),
					}
				}, core.Options{Blocking: false})
			},
		})
		k1.Wait(p)

		k2 := m.GPU.Launch(p, gpu.Kernel{
			Name: "successor", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				hwB, genB = w.HWSlot, w.Gen
				// Position the successor's invocation squarely inside the
				// orphan watchdog's countdown.
				w.ComputeTime(50 * sim.Microsecond)
				if w.IsLeader() {
					invokeAt = w.P.Now()
				}
				res, inv := m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 256, 0},
					Buf:  make([]byte, 256),
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Strong})
				if inv {
					resB = res
					releaseAt = w.P.Now()
				}
			},
		})
		k2.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	if hwB != hwA || genB <= genA {
		t.Fatalf("scenario broken: hw %d/%d gen %d/%d — second kernel did not reuse the slot",
			hwA, hwB, genA, genB)
	}
	// Under total loss both generations surface EINTR — but each from
	// its *own* watchdog. The successor must survive the orphan's
	// exhaustion (which fires ~70us after the successor invokes) and
	// only be released once its own budget runs out.
	if resB.Err == 0 {
		t.Fatalf("successor call = %+v, want EINTR under total interrupt loss", resB)
	}
	ownBudget := sim.Time(maxRetx+1) * rtxTimeout
	if held := releaseAt - invokeAt; held < ownBudget {
		t.Fatalf("successor released after %v, want ≥ %v (aborted by the orphan's watchdog?)",
			held, ownBudget)
	}
	if n := m.Inject.Surfaced.Value(); n != 2 {
		t.Fatalf("surfaced = %d, want 2 (one per generation)", n)
	}
	if m.Genesys.OrphansAdopted.Value() != 1 || m.Genesys.OrphansCompleted.Value() != 1 {
		t.Fatalf("orphans adopted=%d completed=%d, want 1/1",
			m.Genesys.OrphansAdopted.Value(), m.Genesys.OrphansCompleted.Value())
	}
	if m.Genesys.Orphans() != 0 || m.Genesys.Outstanding() != 0 {
		t.Fatalf("orphans=%d outstanding=%d after drain",
			m.Genesys.Orphans(), m.Genesys.Outstanding())
	}
	if m.GPU.Resumes.Value() != 0 {
		t.Fatalf("resumes = %d: an exhaustion doorbell woke a polling wave's slot",
			m.GPU.Resumes.Value())
	}
}

// TestDuplicateDoorbellSingleDispatch congests the worker queue so the
// retransmit watchdog redelivers a doorbell several times while the
// original batch task is still queued, then releases all workers at once:
// the duplicate batches race to pick the same ready slot. The batch scan
// must claim the slot (ready -> processing) before paying the
// context-switch cost — that charge yields virtual time, and a duplicate
// batch scanning inside the window used to double-pick the slot. The
// loser's dispatch then ran the same request twice (here: a second append
// doubling the file) and its completion landed on a slot the wavefront
// had already harvested and recycled, wedging the work-item's next
// invocation forever.
func TestDuplicateDoorbellSingleDispatch(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.Seed = 33
	cfg.Genesys.RetransmitTimeout = 5 * sim.Microsecond
	cfg.Genesys.MaxRetransmits = 100
	// Pin the pool so Enqueue cannot grow it past the two workers we
	// park: the doorbell batch must sit queued behind them.
	cfg.Kernel.Workers = 2
	cfg.Kernel.MaxWorkers = 2
	// Any armed rule activates the recovery machinery; NetDrop never
	// fires on a file-only workload, so nothing else is perturbed.
	plan := fault.Plan{Name: "armed-idle",
		Rules: []fault.Rule{{Point: fault.NetDrop, Rate: 0}}}
	cfg.Faults = &plan
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)

	app := m.NewProcess("app")
	f, _ := m.VFS.Open("/tmp/once", fs.O_CREAT|fs.O_RDWR)
	fd, _ := app.FDs.Install(f)

	// Park every worker long enough for several watchdog redeliveries of
	// the same doorbell to pile up behind them.
	const parked = 100 * sim.Microsecond
	for i := 0; i < cfg.Kernel.Workers; i++ {
		m.OS.Enqueue(oskern.Task{Name: "filler",
			Run: func(p *sim.Proc) { p.Sleep(parked) }})
	}

	const size1, size2 = 512, 256
	var res1, res2 core.Result
	done := false
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "caller", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				r1, inv := m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_write,
					Args: [6]uint64{uint64(fd), size1},
					Buf:  bytes.Repeat([]byte{'x'}, size1),
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Strong})
				r2, _ := m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_write,
					Args: [6]uint64{uint64(fd), size2},
					Buf:  bytes.Repeat([]byte{'y'}, size2),
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Strong})
				if inv {
					res1, res2 = r1, r2
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
		done = true
	})
	// A wedged populate spin generates events forever (never a deadlock),
	// so bound the run in virtual time instead of relying on m.Run.
	if err := m.E.RunUntil(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("kernel never completed: a duplicate batch's completion stranded a recycled slot")
	}
	if m.Genesys.IRQRetransmits.Value() == 0 {
		t.Fatal("no doorbell redelivery happened; scenario not exercised")
	}
	if !res1.Ok() || res1.Ret != size1 || !res2.Ok() || res2.Ret != size2 {
		t.Fatalf("results = %+v / %+v, want %d and %d bytes", res1, res2, size1, size2)
	}
	data, _ := m.ReadFile("/tmp/once")
	if len(data) != size1+size2 {
		t.Fatalf("/tmp/once = %d bytes, want %d (a duplicate batch dispatched a call twice?)",
			len(data), size1+size2)
	}
	if m.Genesys.Orphans() != 0 || m.Genesys.Outstanding() != 0 {
		t.Fatalf("orphans=%d outstanding=%d after drain",
			m.Genesys.Orphans(), m.Genesys.Outstanding())
	}
}
