package core

import (
	"testing"

	"genesys/internal/sim"
)

// record must refuse call traces with unset or non-monotonic stamps
// rather than emit garbage samples — the defensive half of the mid-run
// attach fix.
func TestRecordSkipsPartialTraces(t *testing.T) {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	full := callTrace{claim: us(1), ready: us(2), enqueued: us(7),
		picked: us(9), done: us(11), harvest: us(13)}

	tr := NewTracer()
	tr.record(full)
	if tr.Calls() != 1 || tr.Skipped() != 0 {
		t.Fatalf("full trace: calls=%d skipped=%d", tr.Calls(), tr.Skipped())
	}

	partials := []callTrace{
		{},                                      // nothing stamped
		{claim: us(1), ready: us(2)},            // the pre-fix mid-run shape
		{claim: us(1), ready: us(2), enqueued: us(7), picked: us(9)}, // no done
		{claim: us(5), ready: us(2), enqueued: us(7), picked: us(9), done: us(11)}, // ready < claim
		{claim: us(1), ready: us(8), enqueued: us(7), picked: us(9), done: us(11)}, // non-monotonic
	}
	for i, c := range partials {
		tr.record(c)
		if tr.Calls() != 1 {
			t.Fatalf("partial %d was recorded", i)
		}
	}
	if tr.Skipped() != len(partials) {
		t.Fatalf("skipped = %d, want %d", tr.Skipped(), len(partials))
	}
	for _, ph := range Phases() {
		if min := tr.Phase(ph).Min(); min < 0 {
			t.Fatalf("phase %s picked up a negative sample: %f", ph, min)
		}
	}

	// Non-blocking shape: harvest unset is legal and falls back to done.
	nb := full
	nb.harvest = 0
	tr.record(nb)
	if tr.Calls() != 2 || tr.Phase(PhaseCompletion).Min() != 0 {
		t.Fatalf("non-blocking trace mishandled: calls=%d", tr.Calls())
	}
}
