package core_test

import (
	"strings"
	"testing"

	"genesys/internal/core"
	"genesys/internal/fault"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

func TestTracerBreakdown(t *testing.T) {
	m := newMachine(t, 31)
	pr := m.NewProcess("traced")
	tr := core.NewTracer()
	m.Genesys.SetTracer(tr)
	if m.Genesys.Tracer() != tr {
		t.Fatal("tracer not attached")
	}
	f, _ := m.VFS.Open("/tmp/t", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := pr.FDs.Install(f)

	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "traced", WorkGroups: 4, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				// One blocking + one non-blocking per work-group.
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 8, uint64(16 * w.WG.ID)},
					Buf:  make([]byte, 8),
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Relaxed, Kind: core.Consumer})
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 8, uint64(16*w.WG.ID + 8)},
					Buf:  make([]byte, 8),
				}, core.Options{Blocking: false, Ordering: core.Relaxed, Kind: core.Consumer})
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Calls() != 8 {
		t.Fatalf("traced calls = %d, want 8", tr.Calls())
	}
	// Every phase has samples and a sensible magnitude.
	var total float64
	for _, ph := range core.Phases() {
		s := tr.Phase(ph)
		if s.N() != 8 {
			t.Fatalf("phase %s has %d samples", ph, s.N())
		}
		if s.Mean() < 0 {
			t.Fatalf("phase %s negative", ph)
		}
		total += s.Mean()
	}
	if diff := total - tr.TotalMean(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("phase sum %f != total %f", total, tr.TotalMean())
	}
	// GPU setup ≈ cmp-swap + store + swap ≈ 4.25us; delivery = 5us irq.
	if m := tr.Phase(core.PhaseGPUSetup).Mean(); m < 4 || m > 5 {
		t.Fatalf("gpu-setup = %.2f us", m)
	}
	if m := tr.Phase(core.PhaseDelivery).Mean(); m < 4.9 || m > 5.1 {
		t.Fatalf("delivery = %.2f us", m)
	}
	// Non-blocking calls report zero completion time; blocking ones pay
	// at least a poll interval, so the mean sits between.
	if m := tr.Phase(core.PhaseCompletion).Mean(); m <= 0 {
		t.Fatalf("completion = %.2f us", m)
	}
	out := tr.String()
	if !strings.Contains(out, "syscall latency breakdown over 8 calls") ||
		!strings.Contains(out, "processing") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestOptionEnumStrings(t *testing.T) {
	if core.Strong.String() != "strong" || core.Relaxed.String() != "relaxed" {
		t.Fatal("ordering strings")
	}
	if core.WaitPoll.String() != "polling" || core.WaitHaltResume.String() != "halt-resume" {
		t.Fatal("wait mode strings")
	}
}

// TestTracerAttachMidRun is the regression test for the mid-run attach
// bug: enqueueBatch used to stamp trace.enqueued only when a tracer was
// already attached, so a tracer attached between populate and harvest
// computed 0 - ready → hugely negative delivery-phase samples. Stamps
// are now written unconditionally and record() refuses partial traces.
func TestTracerAttachMidRun(t *testing.T) {
	m := newMachine(t, 7)
	pr := m.NewProcess("midrun")
	f, _ := m.VFS.Open("/tmp/mid", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := pr.FDs.Install(f)

	tr := core.NewTracer()
	// Attach mid-run: after launch overhead (20us) calls are in flight;
	// 60us lands between many calls' populate and harvest.
	m.E.After(60*sim.Microsecond, func() { m.Genesys.SetTracer(tr) })

	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "midrun", WorkGroups: 8, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				for i := 0; i < 4; i++ {
					m.Genesys.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 8, uint64(64*w.WG.ID + 8*i)},
						Buf:  make([]byte, 8),
					}, core.Options{Blocking: true, Wait: core.WaitPoll,
						Ordering: core.Relaxed, Kind: core.Consumer})
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Calls() == 0 {
		t.Fatal("mid-run tracer saw no calls")
	}
	if tr.Skipped() != 0 {
		t.Fatalf("%d traces skipped; stamping should be unconditional", tr.Skipped())
	}
	for _, ph := range core.Phases() {
		if min := tr.Phase(ph).Min(); min < 0 {
			t.Fatalf("phase %s has negative sample: min = %f us", ph, min)
		}
	}
	if tr.Total().Min() < 0 {
		t.Fatalf("negative end-to-end sample: %f", tr.Total().Min())
	}
}

// TestTracerRecordsAbortedCalls: EINTR-aborted syscalls used to vanish
// from the tracer entirely (finishTrace hit the incomplete-stamp guard
// and counted them as "skipped"). They must instead land in Aborted(),
// contribute their partial phases, and leave Skipped() at zero.
func TestTracerRecordsAbortedCalls(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.Seed = 11
	cfg.Genesys.RetransmitTimeout = 50 * sim.Microsecond
	cfg.Genesys.MaxRetransmits = 2
	cfg.Faults = &fault.Plan{Name: "total-irq-loss", Rules: []fault.Rule{
		{Point: fault.IRQDrop, Rate: 1},
	}}
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)

	tr := core.NewTracer()
	m.Genesys.SetTracer(tr)
	pr := m.NewProcess("abort")
	f, _ := m.VFS.Open("/tmp/abort", fs.O_CREAT|fs.O_WRONLY)
	fd, _ := pr.FDs.Install(f)
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "abort", WorkGroups: 4, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				m.Genesys.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), 8, uint64(8 * w.WG.ID)},
					Buf:  make([]byte, 8),
				}, core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Relaxed, Kind: core.Consumer})
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	if tr.Aborted() == 0 {
		t.Fatal("total interrupt loss aborted nothing")
	}
	if tr.Skipped() != 0 {
		t.Fatalf("%d aborted traces miscounted as skipped", tr.Skipped())
	}
	if tr.Calls() != 0 {
		t.Fatalf("%d calls completed under total interrupt loss", tr.Calls())
	}
	// Partial phases: gpu-setup completed before the doorbell was lost.
	if tr.Phase(core.PhaseGPUSetup).N() == 0 {
		t.Fatal("aborted calls contributed no gpu-setup samples")
	}
	out := tr.String()
	if !strings.Contains(out, "aborted") {
		t.Fatalf("breakdown does not report aborts:\n%s", out)
	}
}
