package core

import (
	"fmt"
	"sort"
	"strings"

	"genesys/internal/errno"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// --- checkpoint section ----------------------------------------------------

// CheckpointState renders the syscall layer's complete in-flight state
// as a deterministic byte string: tunables, the trace-ID high-water
// mark, every non-free slot (with generation, owner identity and
// blocking bit), the coalescing batch under construction, armed
// retransmit watchdogs, the orphan ledger and the counters. Like the
// engine's section it is a verification fingerprint — restore rebuilds
// this state by deterministic re-execution and proves it reached the
// same bytes (DESIGN.md §10). Pure reads; no scheduling, no randomness.
func (g *Genesys) CheckpointState() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "genesys v1\n")
	fmt.Fprintf(&b, "cfg window=%d max=%d poll=%d packed=%v retx_timeout=%d retx_max=%d\n",
		int64(g.cfg.CoalesceWindow), g.cfg.CoalesceMax, int64(g.cfg.PollInterval),
		g.cfg.PackedSlots, int64(g.cfg.RetransmitTimeout), g.cfg.MaxRetransmits)
	fmt.Fprintf(&b, "next_trace %d\noutstanding %d\n", g.nextTrace, g.outstanding)
	fmt.Fprintf(&b, "counters invocations=%d batches=%d batched_waves=%d conflicts=%d "+
		"orphans_adopted=%d orphans_completed=%d irq_retx=%d retries=%d\n",
		g.Invocations.Value(), g.Batches.Value(), g.BatchedWaves.Value(),
		g.SlotConflicts.Value(), g.OrphansAdopted.Value(), g.OrphansCompleted.Value(),
		g.IRQRetransmits.Value(), g.Retries.Value())

	// Non-free slots, in slot-ID order (the array is already ordered).
	busy := 0
	for i := range g.slots {
		if g.slots[i].State != SlotFree {
			busy++
		}
	}
	fmt.Fprintf(&b, "slots %d busy %d\n", len(g.slots), busy)
	for i := range g.slots {
		s := &g.slots[i]
		if s.State == SlotFree {
			continue
		}
		owner := ""
		if s.owner != nil {
			owner = fmt.Sprintf("%d:%s", s.owner.PID, s.owner.Name)
		}
		fmt.Fprintf(&b, "slot %d state=%s gen=%d blocking=%v nr=%d trace=%d owner=%q ret=%d err=%d\n",
			s.ID, s.State, s.gen, s.Blocking, s.Req.NR, s.trace.id, owner,
			s.Req.Ret, int(s.Req.Err))
	}

	// Coalescing batch under construction (FIFO order is deterministic).
	fmt.Fprintf(&b, "pending_waves %d timer=%v\n", len(g.pendingWaves), g.coalesceTmr != nil)
	for _, db := range g.pendingWaves {
		fmt.Fprintf(&b, "pending hw=%d gen=%d\n", db.hw, db.gen)
	}

	// Armed retransmit watchdogs, sorted by (hw, gen).
	keys := make([]doorbell, 0, len(g.retx))
	for db := range g.retx {
		keys = append(keys, db)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].hw != keys[j].hw {
			return keys[i].hw < keys[j].hw
		}
		return keys[i].gen < keys[j].gen
	})
	fmt.Fprintf(&b, "retx %d\n", len(keys))
	for _, db := range keys {
		st := g.retx[db]
		fmt.Fprintf(&b, "retx hw=%d gen=%d attempts=%d sent=%v\n", db.hw, db.gen, st.attempts, st.sent)
	}

	// Orphan ledger, sorted by slot ID.
	oids := make([]int, 0, len(g.orphans))
	for id := range g.orphans {
		oids = append(oids, id)
	}
	sort.Ints(oids)
	fmt.Fprintf(&b, "orphans %d\n", len(oids))
	for _, id := range oids {
		fmt.Fprintf(&b, "orphan slot=%d gen=%d\n", id, g.orphans[id])
	}
	return []byte(b.String())
}

// --- syscall stream recorder -----------------------------------------------

// SyscallEvent is one observation of the GPU→kernel syscall stream: a
// slot reaching ready (the moment the GPU hands the call to the CPU
// pipeline) or a call completing. Ready events carry the full request
// as populated; done events carry the result.
type SyscallEvent struct {
	Trace    uint64
	NR       int
	Slot     int
	Wave     int
	Gen      uint64
	Blocking bool
	At       sim.Time
	Args     [6]uint64
	Buf      []byte
	Ret      int64
	Err      errno.Errno
}

// Recorder observes the syscall stream. SyscallReady fires when a slot
// flips to ready (both GPU-populated and replay-injected slots); and
// SyscallDone when its call completes and its trace is finalized.
// Callbacks run inline at the observation point and must not block or
// schedule events — recording must not perturb virtual time.
type Recorder interface {
	SyscallReady(SyscallEvent)
	SyscallDone(SyscallEvent)
}

// SetRecorder attaches (or with nil, detaches) a syscall stream
// recorder.
func (g *Genesys) SetRecorder(r Recorder) { g.rec = r }

func (g *Genesys) noteReady(s *Slot) {
	if g.rec == nil {
		return
	}
	buf := s.Req.Buf
	if len(buf) > 0 {
		buf = append([]byte(nil), buf...) // handlers may consume/rewrite Buf
	}
	g.rec.SyscallReady(SyscallEvent{
		Trace: s.trace.id, NR: s.Req.NR, Slot: s.ID, Wave: s.trace.wave,
		Gen: s.gen, Blocking: s.Blocking, At: g.E.Now(),
		Args: s.Req.Args, Buf: buf,
	})
}

func (g *Genesys) noteDone(s *Slot) {
	if g.rec == nil {
		return
	}
	g.rec.SyscallDone(SyscallEvent{
		Trace: s.trace.id, NR: s.trace.nr, Slot: s.ID, Wave: s.trace.wave,
		Gen: s.gen, Blocking: s.Blocking, At: g.E.Now(),
		Ret: s.Req.Ret, Err: s.Req.Err,
	})
}

// --- replay injection ------------------------------------------------------

// ErrSlotBusy is returned by InjectReady when the target slot is still
// occupied by an earlier in-flight call; the replay driver queues the
// event and retries when the slot's predecessor completes.
var ErrSlotBusy = fmt.Errorf("genesys: syscall slot busy")

// InjectReady populates syscall-area slot slotID directly from a
// recorded trace event and flips it to ready — the CPU-side equivalent
// of populateSlot for replay, where no GPU wavefront exists. The
// injected call is always non-blocking (there is no work-item to
// harvest a blocking result; the worker frees the slot on completion),
// executes in the default bound process's context, and is counted as a
// normal invocation. req.Trace, when non-zero, is preserved as the
// call's trace ID so replayed traces correlate with the recording.
//
// The caller must follow up with RingDoorbell for the slot's hardware
// wavefront, exactly as the GPU would.
func (g *Genesys) InjectReady(slotID int, gen uint64, req syscalls.Request) error {
	if slotID < 0 || slotID >= len(g.slots) {
		return fmt.Errorf("genesys: inject: slot %d out of range", slotID)
	}
	if g.proc == nil {
		return fmt.Errorf("genesys: inject: no process bound; call BindProcess first")
	}
	s := &g.slots[slotID]
	if s.State != SlotFree {
		return ErrSlotBusy
	}
	id := req.Trace
	if id == 0 {
		g.nextTrace++
		id = g.nextTrace
	} else if id > g.nextTrace {
		g.nextTrace = id
	}
	simd := g.GPU.Config().SIMDWidth
	now := g.E.Now()
	s.State = SlotPopulating
	s.trace = callTrace{
		id: id, nr: req.NR, wave: slotID / simd, gen: gen,
		worker: -1, claim: now, ready: now,
	}
	s.owner = g.proc
	s.gen = gen
	req.Ret, req.Err = 0, errno.OK
	req.Trace = id
	s.Req = req
	s.Blocking = false
	s.State = SlotReady
	g.Invocations.Inc()
	g.outstanding++
	g.noteReady(s)
	return nil
}

// RingDoorbell re-creates the GPU→CPU interrupt for hardware wavefront
// hw at generation gen: the handler (with its coalescing machinery)
// runs after the device's InterruptLatency, exactly as a wavefront's
// s_sendmsg would deliver it.
func (g *Genesys) RingDoorbell(hw int, gen uint64) {
	g.E.CallAfter(g.GPU.Config().InterruptLatency, func() { g.handleIRQ(hw, gen) })
}
