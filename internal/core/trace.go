package core

import (
	"fmt"
	"strings"

	"genesys/internal/sim"
)

// Phase labels of one GPU system call's life cycle (paper Figure 2's
// five steps, plus the final result harvest).
const (
	PhaseGPUSetup   = "gpu-setup"  // claim + populate + ready (step 1)
	PhaseDelivery   = "delivery"   // interrupt → batch enqueued (step 2)
	PhaseQueueing   = "queueing"   // workqueue wait + dispatch (step 3)
	PhaseProcessing = "processing" // syscall execution on the CPU (step 4)
	PhaseCompletion = "completion" // finished → result harvested (step 5)
)

// Phases lists the life-cycle phases in order.
func Phases() []string {
	return []string{PhaseGPUSetup, PhaseDelivery, PhaseQueueing,
		PhaseProcessing, PhaseCompletion}
}

// callTrace records the per-call timestamps the tracer aggregates.
type callTrace struct {
	claim    sim.Time // claim attempt started (GPU)
	ready    sim.Time // slot flipped to ready (GPU)
	enqueued sim.Time // batch entered the workqueue (CPU irq path)
	picked   sim.Time // worker began processing the slot
	done     sim.Time // syscall finished, result written
	harvest  sim.Time // invoking work-item consumed the result
}

// Tracer aggregates per-phase latencies across traced system calls.
// Attach with Genesys.SetTracer; it costs nothing in virtual time.
type Tracer struct {
	mean map[string]*sim.Summary
	n    int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	m := make(map[string]*sim.Summary, 5)
	for _, ph := range Phases() {
		m[ph] = &sim.Summary{}
	}
	return &Tracer{mean: m}
}

func (t *Tracer) record(c callTrace) {
	if c.harvest == 0 {
		c.harvest = c.done // non-blocking: no harvest step
	}
	t.n++
	t.mean[PhaseGPUSetup].Add((c.ready - c.claim).Micro())
	t.mean[PhaseDelivery].Add((c.enqueued - c.ready).Micro())
	t.mean[PhaseQueueing].Add((c.picked - c.enqueued).Micro())
	t.mean[PhaseProcessing].Add((c.done - c.picked).Micro())
	t.mean[PhaseCompletion].Add((c.harvest - c.done).Micro())
}

// Calls returns how many system calls were traced.
func (t *Tracer) Calls() int { return t.n }

// Phase returns the latency summary (µs) of one phase.
func (t *Tracer) Phase(name string) *sim.Summary { return t.mean[name] }

// TotalMean returns the mean end-to-end latency in µs.
func (t *Tracer) TotalMean() float64 {
	var sum float64
	for _, ph := range Phases() {
		sum += t.mean[ph].Mean()
	}
	return sum
}

// String renders the breakdown table.
func (t *Tracer) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "syscall latency breakdown over %d calls (mean us):\n", t.n)
	total := t.TotalMean()
	for _, ph := range Phases() {
		m := t.mean[ph].Mean()
		share := 0.0
		if total > 0 {
			share = 100 * m / total
		}
		fmt.Fprintf(&b, "  %-11s %8.2f  (%4.1f%%)\n", ph, m, share)
	}
	fmt.Fprintf(&b, "  %-11s %8.2f\n", "total", total)
	return b.String()
}

// SetTracer attaches (or with nil, detaches) a latency tracer.
func (g *Genesys) SetTracer(t *Tracer) { g.tracer = t }

// Tracer returns the attached tracer, if any.
func (g *Genesys) Tracer() *Tracer { return g.tracer }
