package core

import (
	"fmt"
	"sort"
	"strings"

	"genesys/internal/obs"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// Phase labels of one GPU system call's life cycle (paper Figure 2's
// five steps, plus the final result harvest).
const (
	PhaseGPUSetup   = "gpu-setup"  // claim + populate + ready (step 1)
	PhaseDelivery   = "delivery"   // interrupt → batch enqueued (step 2)
	PhaseQueueing   = "queueing"   // workqueue wait + dispatch (step 3)
	PhaseProcessing = "processing" // syscall execution on the CPU (step 4)
	PhaseCompletion = "completion" // finished → result harvested (step 5)
)

// Phases lists the life-cycle phases in order.
func Phases() []string {
	return []string{PhaseGPUSetup, PhaseDelivery, PhaseQueueing,
		PhaseProcessing, PhaseCompletion}
}

// callTrace records the per-call timestamps the tracer aggregates, plus
// the identity of the call: a machine-unique trace ID assigned at
// slot-claim time (the causal flow ID in exported traces), the syscall
// number, the hardware wavefront that issued it and the OS worker that
// processed it. Every stamp is written unconditionally — stamping is
// free in virtual time — so a tracer attached mid-run only ever sees
// fully-stamped traces and never computes a negative phase from an
// unset (zero) field.
type callTrace struct {
	id     uint64 // trace ID, assigned at slot claim
	nr     int    // syscall number
	wave   int    // issuing hardware wavefront slot
	gen    uint64 // slot generation of the issuing tenancy (hw slots are recycled)
	worker int    // OS worker that processed the call (-1 if none)

	// aborted marks a call the retransmit watchdog gave up on (EINTR
	// after MaxRetransmits): gpu-setup — and delivery, if the batch was
	// ever enqueued — are stamped, the later phases never happened.
	aborted bool

	claim    sim.Time // claim attempt started (GPU)
	ready    sim.Time // slot flipped to ready (GPU)
	enqueued sim.Time // batch entered the workqueue (CPU irq path)
	picked   sim.Time // worker began processing the slot
	done     sim.Time // syscall finished, result written
	harvest  sim.Time // invoking work-item consumed the result
}

// stamped reports whether every mandatory stamp was written and the
// stamps are monotonic. harvest may be zero (non-blocking calls have no
// harvest step).
func (c callTrace) stamped() bool {
	if c.ready == 0 || c.enqueued == 0 || c.picked == 0 || c.done == 0 {
		return false
	}
	return c.claim <= c.ready && c.ready <= c.enqueued &&
		c.enqueued <= c.picked && c.picked <= c.done &&
		(c.harvest == 0 || c.done <= c.harvest)
}

// nrStat aggregates per-syscall-number statistics for the critical-path
// table: call counts, per-phase latency sums and the end-to-end
// histogram.
type nrStat struct {
	calls   int
	aborted int
	phase   []float64 // per-phase summed latency (us), Phases() order
	totalUS float64
	hist    *obs.Histogram
}

// Tracer aggregates per-phase latency histograms across traced system
// calls. Attach with Genesys.SetTracer; it costs nothing in virtual
// time. Each phase reports mean and p50/p95/p99 (Figure 2 / Table IV
// style percentile breakdowns); per-syscall-number stats feed the
// critical-path attribution table (CritPath, /sys/genesys/critpath).
type Tracer struct {
	hist    map[string]*obs.Histogram
	total   *obs.Histogram // end-to-end per-call latency
	n       int
	skipped int
	aborted int
	byNR    map[int]*nrStat
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	m := make(map[string]*obs.Histogram, 5)
	for _, ph := range Phases() {
		m[ph] = obs.NewHistogram()
	}
	return &Tracer{hist: m, total: obs.NewHistogram(), byNR: make(map[int]*nrStat)}
}

func (t *Tracer) nrStatFor(nr int) *nrStat {
	st, ok := t.byNR[nr]
	if !ok {
		st = &nrStat{phase: make([]float64, len(Phases())), hist: obs.NewHistogram()}
		t.byNR[nr] = st
	}
	return st
}

func (t *Tracer) record(c callTrace) {
	if c.aborted {
		// The retransmit watchdog surfaced EINTR after MaxRetransmits:
		// the call never reached a worker, so only the phases that
		// actually happened are recorded — under an aborted count, not
		// silently dropped.
		t.aborted++
		st := t.nrStatFor(c.nr)
		st.aborted++
		if c.ready >= c.claim && c.ready > 0 {
			t.hist[PhaseGPUSetup].Add((c.ready - c.claim).Micro())
		}
		if c.enqueued >= c.ready && c.enqueued > 0 {
			t.hist[PhaseDelivery].Add((c.enqueued - c.ready).Micro())
		}
		return
	}
	if !c.stamped() {
		// Incompletely-stamped trace (defensive: should not happen now
		// that stamping is unconditional) — never emit garbage samples.
		t.skipped++
		return
	}
	if c.harvest == 0 {
		c.harvest = c.done // non-blocking: no harvest step
	}
	t.n++
	samples := []float64{
		(c.ready - c.claim).Micro(),
		(c.enqueued - c.ready).Micro(),
		(c.picked - c.enqueued).Micro(),
		(c.done - c.picked).Micro(),
		(c.harvest - c.done).Micro(),
	}
	st := t.nrStatFor(c.nr)
	st.calls++
	for i, ph := range Phases() {
		t.hist[ph].Add(samples[i])
		st.phase[i] += samples[i]
	}
	totalUS := (c.harvest - c.claim).Micro()
	t.total.AddEx(totalUS, c.id, c.harvest)
	st.totalUS += totalUS
	st.hist.AddEx(totalUS, c.id, c.harvest)
}

// Calls returns how many system calls were traced.
func (t *Tracer) Calls() int { return t.n }

// Skipped returns how many call traces were rejected for missing or
// non-monotonic stamps.
func (t *Tracer) Skipped() int { return t.skipped }

// Aborted returns how many traced calls were aborted with EINTR by the
// retransmit watchdog (fault paths).
func (t *Tracer) Aborted() int { return t.aborted }

// Phase returns the latency histogram (µs) of one phase.
func (t *Tracer) Phase(name string) *obs.Histogram { return t.hist[name] }

// Total returns the end-to-end per-call latency histogram (µs).
func (t *Tracer) Total() *obs.Histogram { return t.total }

// TotalMean returns the mean end-to-end latency in µs.
func (t *Tracer) TotalMean() float64 {
	var sum float64
	for _, ph := range Phases() {
		sum += t.hist[ph].Mean()
	}
	return sum
}

// String renders the breakdown table with mean and percentiles.
func (t *Tracer) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "syscall latency breakdown over %d calls (us):\n", t.n)
	fmt.Fprintf(&b, "  %-11s %8s  %6s  %8s %8s %8s\n",
		"phase", "mean", "share", "p50", "p95", "p99")
	total := t.TotalMean()
	for _, ph := range Phases() {
		h := t.hist[ph]
		m := h.Mean()
		share := 0.0
		if total > 0 {
			share = 100 * m / total
		}
		q := h.Percentiles(50, 95, 99)
		fmt.Fprintf(&b, "  %-11s %8.2f  %5.1f%%  %8.2f %8.2f %8.2f\n",
			ph, m, share, q[0], q[1], q[2])
	}
	q := t.total.Percentiles(50, 95, 99)
	fmt.Fprintf(&b, "  %-11s %8.2f  %6s  %8.2f %8.2f %8.2f\n",
		"total", total, "", q[0], q[1], q[2])
	if t.n > 0 {
		fmt.Fprintf(&b, "  total range min=%.2f max=%.2f us\n",
			t.total.Min(), t.total.Max())
	}
	if t.aborted > 0 {
		fmt.Fprintf(&b, "  (%d call(s) aborted with EINTR by the retransmit watchdog)\n", t.aborted)
	}
	if t.skipped > 0 {
		fmt.Fprintf(&b, "  (%d incompletely-stamped trace(s) skipped)\n", t.skipped)
	}
	return b.String()
}

// CritPath renders the critical-path attribution table served at
// /sys/genesys/critpath: per syscall number, end-to-end latency
// percentiles, the dominant life-cycle stage, and the share of latency
// each stage accounts for. The stages partition each call's end-to-end
// latency exactly, so the attribution always covers 100% of the traced
// time.
func (t *Tracer) CritPath() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical-path attribution over %d traced call(s)", t.n)
	if t.aborted > 0 {
		fmt.Fprintf(&b, " (+%d aborted)", t.aborted)
	}
	b.WriteString(":\n")
	if t.n == 0 && t.aborted == 0 {
		b.WriteString("  no traced calls yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-16s %6s %5s %9s %9s %9s %9s %9s  %-11s", "syscall", "calls",
		"abrt", "mean-us", "p95-us", "p99-us", "min-us", "max-us", "dominant")
	for _, ph := range Phases() {
		fmt.Fprintf(&b, " %7s", shortPhase(ph)+"%")
	}
	b.WriteString("\n")
	nrs := make([]int, 0, len(t.byNR))
	for nr := range t.byNR {
		nrs = append(nrs, nr)
	}
	sort.Ints(nrs)
	var sumPhases, sumTotal float64
	for _, nr := range nrs {
		st := t.byNR[nr]
		fmt.Fprintf(&b, "  %-16s %6d %5d", syscalls.Name(nr), st.calls, st.aborted)
		if st.calls == 0 {
			b.WriteString("  (all aborted before processing)\n")
			continue
		}
		q := st.hist.Percentiles(95, 99)
		fmt.Fprintf(&b, " %9.2f %9.2f %9.2f %9.2f %9.2f",
			st.totalUS/float64(st.calls), q[0], q[1], st.hist.Min(), st.hist.Max())
		dom, domShare := 0, -1.0
		for i := range st.phase {
			if st.phase[i] > domShare {
				dom, domShare = i, st.phase[i]
			}
			sumPhases += st.phase[i]
		}
		sumTotal += st.totalUS
		fmt.Fprintf(&b, "  %-11s", Phases()[dom])
		for i := range st.phase {
			share := 0.0
			if st.totalUS > 0 {
				share = 100 * st.phase[i] / st.totalUS
			}
			fmt.Fprintf(&b, " %7.1f", share)
		}
		b.WriteString("\n")
	}
	if sumTotal > 0 {
		fmt.Fprintf(&b, "  attributed %.1f%% of end-to-end latency to the %d named stages\n",
			100*sumPhases/sumTotal, len(Phases()))
	}
	// Exemplars: the retained worst invocations per syscall, each naming
	// the causal trace ID a flight-recorder bundle (or -trace export)
	// can be filtered to.
	wrote := false
	for _, nr := range nrs {
		for _, e := range t.byNR[nr].hist.Exemplars() {
			if !wrote {
				b.WriteString("  exemplars (worst retained invocations):\n")
				wrote = true
			}
			fmt.Fprintf(&b, "    %-16s trace=%d total=%.2fus at=%v\n",
				syscalls.Name(nr), e.Trace, e.Value, e.At)
		}
	}
	return b.String()
}

// shortPhase abbreviates a phase name for the attribution table header.
func shortPhase(ph string) string {
	switch ph {
	case PhaseGPUSetup:
		return "setup"
	case PhaseDelivery:
		return "deliv"
	case PhaseQueueing:
		return "queue"
	case PhaseProcessing:
		return "proc"
	default:
		return "compl"
	}
}

// SetTracer attaches (or with nil, detaches) a latency tracer.
func (g *Genesys) SetTracer(t *Tracer) { g.tracer = t }

// Tracer returns the attached tracer, if any.
func (g *Genesys) Tracer() *Tracer { return g.tracer }

// SetEventLog attaches the machine's structured event log; completed
// call traces are emitted as flow-linked per-phase spans across the
// layers the call crossed (GPU wave → IRQ → workqueue → worker →
// completing slot).
func (g *Genesys) SetEventLog(l *obs.EventLog) { g.events = l }

// finishTrace routes one completed call trace to the attached tracer
// and, when event logging is enabled, emits its life-cycle spans, each
// placed on the synthetic process/thread where that phase ran and
// linked by the call's trace ID into one causal flow chain.
func (g *Genesys) finishTrace(s *Slot) {
	if g.tracer != nil {
		g.tracer.record(s.trace)
	}
	g.noteDone(s)
	c := s.trace
	name := syscalls.Name(c.nr)
	if g.events.CaptureActive() {
		g.emitSpans(s, c, name)
	}
	// Flight detectors run after span emission so a triggered bundle's
	// filtered trace already contains this call's complete chain. Pure
	// accounting: no virtual-time or randomness side effects.
	if g.flight != nil {
		if c.aborted {
			g.flight.NoteAbort(name, c.id, c.done)
		} else if c.stamped() {
			end := c.harvest
			if end == 0 {
				end = c.done
			}
			g.flight.NoteCall(name, c.nr, c.id, (end - c.claim).Micro(), end)
		}
	}
}

// emitSpans writes one call's life-cycle spans to the event log, each
// placed on the synthetic process/thread where that phase ran and
// linked by the call's trace ID into one causal flow chain.
func (g *Genesys) emitSpans(s *Slot, c callTrace, name string) {
	if c.aborted {
		// Aborted by the retransmit watchdog: emit the phases that
		// happened plus a terminal marker on the slot's row.
		g.events.FlowSpan("syscall", PhaseGPUSetup, obs.PIDGPU, c.wave,
			c.claim, c.ready, c.id, obs.FlowStart, name)
		if c.enqueued >= c.ready && c.enqueued > 0 {
			g.events.FlowSpan("syscall", PhaseDelivery, obs.PIDIRQ, c.wave,
				c.ready, c.enqueued, c.id, obs.FlowStep, name)
		}
		g.events.FlowSpan("syscall", "aborted(EINTR)", obs.PIDSyscalls, s.ID,
			c.done, c.done, c.id, obs.FlowEnd, name)
		return
	}
	if !c.stamped() {
		return
	}
	wtid := c.worker
	if wtid < 0 {
		wtid = 0
	}
	g.events.FlowSpan("syscall", PhaseGPUSetup, obs.PIDGPU, c.wave,
		c.claim, c.ready, c.id, obs.FlowStart, name)
	g.events.FlowSpan("syscall", PhaseDelivery, obs.PIDIRQ, c.wave,
		c.ready, c.enqueued, c.id, obs.FlowStep, name)
	g.events.FlowSpan("syscall", PhaseQueueing, obs.PIDWorkqueue, c.wave,
		c.enqueued, c.picked, c.id, obs.FlowStep, name)
	if c.harvest != 0 {
		g.events.FlowSpan("syscall", PhaseProcessing, obs.PIDKernel, wtid,
			c.picked, c.done, c.id, obs.FlowStep, name)
		g.events.FlowSpan("syscall", PhaseCompletion, obs.PIDSyscalls, s.ID,
			c.done, c.harvest, c.id, obs.FlowEnd, name)
	} else {
		// Non-blocking: no harvest step; the chain ends at processing.
		g.events.FlowSpan("syscall", PhaseProcessing, obs.PIDKernel, wtid,
			c.picked, c.done, c.id, obs.FlowEnd, name)
	}
}
