package core

import (
	"fmt"
	"strings"

	"genesys/internal/obs"
	"genesys/internal/sim"
)

// Phase labels of one GPU system call's life cycle (paper Figure 2's
// five steps, plus the final result harvest).
const (
	PhaseGPUSetup   = "gpu-setup"  // claim + populate + ready (step 1)
	PhaseDelivery   = "delivery"   // interrupt → batch enqueued (step 2)
	PhaseQueueing   = "queueing"   // workqueue wait + dispatch (step 3)
	PhaseProcessing = "processing" // syscall execution on the CPU (step 4)
	PhaseCompletion = "completion" // finished → result harvested (step 5)
)

// Phases lists the life-cycle phases in order.
func Phases() []string {
	return []string{PhaseGPUSetup, PhaseDelivery, PhaseQueueing,
		PhaseProcessing, PhaseCompletion}
}

// callTrace records the per-call timestamps the tracer aggregates.
// Every stamp is written unconditionally — stamping is free in virtual
// time — so a tracer attached mid-run only ever sees fully-stamped
// traces and never computes a negative phase from an unset (zero) field.
type callTrace struct {
	claim    sim.Time // claim attempt started (GPU)
	ready    sim.Time // slot flipped to ready (GPU)
	enqueued sim.Time // batch entered the workqueue (CPU irq path)
	picked   sim.Time // worker began processing the slot
	done     sim.Time // syscall finished, result written
	harvest  sim.Time // invoking work-item consumed the result
}

// stamped reports whether every mandatory stamp was written and the
// stamps are monotonic. harvest may be zero (non-blocking calls have no
// harvest step).
func (c callTrace) stamped() bool {
	if c.ready == 0 || c.enqueued == 0 || c.picked == 0 || c.done == 0 {
		return false
	}
	return c.claim <= c.ready && c.ready <= c.enqueued &&
		c.enqueued <= c.picked && c.picked <= c.done &&
		(c.harvest == 0 || c.done <= c.harvest)
}

// Tracer aggregates per-phase latency histograms across traced system
// calls. Attach with Genesys.SetTracer; it costs nothing in virtual
// time. Each phase reports mean and p50/p95/p99 (Figure 2 / Table IV
// style percentile breakdowns).
type Tracer struct {
	hist    map[string]*obs.Histogram
	total   *obs.Histogram // end-to-end per-call latency
	n       int
	skipped int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	m := make(map[string]*obs.Histogram, 5)
	for _, ph := range Phases() {
		m[ph] = obs.NewHistogram()
	}
	return &Tracer{hist: m, total: obs.NewHistogram()}
}

func (t *Tracer) record(c callTrace) {
	if !c.stamped() {
		// Incompletely-stamped trace (defensive: should not happen now
		// that stamping is unconditional) — never emit garbage samples.
		t.skipped++
		return
	}
	if c.harvest == 0 {
		c.harvest = c.done // non-blocking: no harvest step
	}
	t.n++
	t.hist[PhaseGPUSetup].Add((c.ready - c.claim).Micro())
	t.hist[PhaseDelivery].Add((c.enqueued - c.ready).Micro())
	t.hist[PhaseQueueing].Add((c.picked - c.enqueued).Micro())
	t.hist[PhaseProcessing].Add((c.done - c.picked).Micro())
	t.hist[PhaseCompletion].Add((c.harvest - c.done).Micro())
	t.total.Add((c.harvest - c.claim).Micro())
}

// Calls returns how many system calls were traced.
func (t *Tracer) Calls() int { return t.n }

// Skipped returns how many call traces were rejected for missing or
// non-monotonic stamps.
func (t *Tracer) Skipped() int { return t.skipped }

// Phase returns the latency histogram (µs) of one phase.
func (t *Tracer) Phase(name string) *obs.Histogram { return t.hist[name] }

// Total returns the end-to-end per-call latency histogram (µs).
func (t *Tracer) Total() *obs.Histogram { return t.total }

// TotalMean returns the mean end-to-end latency in µs.
func (t *Tracer) TotalMean() float64 {
	var sum float64
	for _, ph := range Phases() {
		sum += t.hist[ph].Mean()
	}
	return sum
}

// String renders the breakdown table with mean and percentiles.
func (t *Tracer) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "syscall latency breakdown over %d calls (us):\n", t.n)
	fmt.Fprintf(&b, "  %-11s %8s  %6s  %8s %8s %8s\n",
		"phase", "mean", "share", "p50", "p95", "p99")
	total := t.TotalMean()
	for _, ph := range Phases() {
		h := t.hist[ph]
		m := h.Mean()
		share := 0.0
		if total > 0 {
			share = 100 * m / total
		}
		q := h.Percentiles(50, 95, 99)
		fmt.Fprintf(&b, "  %-11s %8.2f  %5.1f%%  %8.2f %8.2f %8.2f\n",
			ph, m, share, q[0], q[1], q[2])
	}
	q := t.total.Percentiles(50, 95, 99)
	fmt.Fprintf(&b, "  %-11s %8.2f  %6s  %8.2f %8.2f %8.2f\n",
		"total", total, "", q[0], q[1], q[2])
	if t.skipped > 0 {
		fmt.Fprintf(&b, "  (%d incompletely-stamped trace(s) skipped)\n", t.skipped)
	}
	return b.String()
}

// SetTracer attaches (or with nil, detaches) a latency tracer.
func (g *Genesys) SetTracer(t *Tracer) { g.tracer = t }

// Tracer returns the attached tracer, if any.
func (g *Genesys) Tracer() *Tracer { return g.tracer }

// SetEventLog attaches the machine's structured event log; completed
// call traces are emitted as per-phase spans (one trace-viewer thread
// per syscall slot).
func (g *Genesys) SetEventLog(l *obs.EventLog) { g.events = l }

// finishTrace routes one completed call trace to the attached tracer
// and, when event logging is enabled, emits its life-cycle spans.
func (g *Genesys) finishTrace(s *Slot) {
	if g.tracer != nil {
		g.tracer.record(s.trace)
	}
	if !g.events.Enabled() {
		return
	}
	c := s.trace
	if !c.stamped() {
		return
	}
	g.events.Span("syscall", PhaseGPUSetup, obs.PIDSyscalls, s.ID, c.claim, c.ready)
	g.events.Span("syscall", PhaseDelivery, obs.PIDSyscalls, s.ID, c.ready, c.enqueued)
	g.events.Span("syscall", PhaseQueueing, obs.PIDSyscalls, s.ID, c.enqueued, c.picked)
	g.events.Span("syscall", PhaseProcessing, obs.PIDSyscalls, s.ID, c.picked, c.done)
	if c.harvest != 0 {
		g.events.Span("syscall", PhaseCompletion, obs.PIDSyscalls, s.ID, c.done, c.harvest)
	}
}
