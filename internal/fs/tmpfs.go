package fs

import (
	"genesys/internal/errno"
)

// Tmpfs is a memory-resident filesystem: reads and writes cost only the
// memory-system copy, with no backing storage — the filesystem used by
// the paper's invocation-granularity and coalescing microbenchmarks
// (Figures 7 and 10).
type Tmpfs struct {
	// BytesPerNS is the per-core copy bandwidth charged for I/O.
	BytesPerNS float64
}

// TmpfsBytesPerNS is tmpfs's per-core copy bandwidth: a pure memcpy
// with no page-cache management, so roughly twice the default rate.
const TmpfsBytesPerNS = 8.0

// NewTmpfs returns a tmpfs charging copies at the memcpy rate.
func NewTmpfs() *Tmpfs { return &Tmpfs{BytesPerNS: TmpfsBytesPerNS} }

// NewFile creates an empty tmpfs file node.
func (t *Tmpfs) NewFile() FileNode { return &tmpFile{fs: t} }

// Mount creates path as a tmpfs directory tree.
func (t *Tmpfs) Mount(v *VFS, path string) (*Dir, error) {
	return v.MkdirAll(path, t.NewFile)
}

type tmpFile struct {
	fs   *Tmpfs
	data []byte
}

func (f *tmpFile) Size() int64 { return int64(len(f.data)) }

func (f *tmpFile) charge(io *IOCtx, n int) {
	ChargeCopy(io, int64(n), f.fs.BytesPerNS)
}

func (f *tmpFile) ReadAt(io *IOCtx, b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errno.EINVAL
	}
	if off >= int64(len(f.data)) {
		return 0, nil // EOF
	}
	n := copy(b, f.data[off:])
	f.charge(io, n)
	return n, nil
}

func (f *tmpFile) WriteAt(io *IOCtx, b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errno.EINVAL
	}
	end := off + int64(len(b))
	for int64(len(f.data)) < end {
		f.data = append(f.data, 0)
	}
	n := copy(f.data[off:end], b)
	f.charge(io, n)
	return n, nil
}

func (f *tmpFile) Truncate(size int64) error {
	if size < 0 {
		return errno.EINVAL
	}
	if size <= int64(len(f.data)) {
		f.data = f.data[:size]
		return nil
	}
	for int64(len(f.data)) < size {
		f.data = append(f.data, 0)
	}
	return nil
}
