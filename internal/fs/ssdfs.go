package fs

import (
	"genesys/internal/blockdev"
	"genesys/internal/errno"
)

// SSDFS is a filesystem backed by a simulated SSD, with a per-inode page
// cache: the first read of a page pays a device transfer, later reads only
// the memory copy. Contiguous uncached pages are merged into one device
// command, so large sequential reads issue efficient transfers while the
// device's channel parallelism rewards concurrent readers (Figure 14).
type SSDFS struct {
	// BytesPerNS is the per-core copy bandwidth charged for cached I/O.
	BytesPerNS float64

	dev      *blockdev.SSD
	pageSize int64

	files []*ssdFile
}

// NewSSDFS returns an SSD-backed filesystem with 4 KiB pages.
func NewSSDFS(dev *blockdev.SSD) *SSDFS {
	return &SSDFS{BytesPerNS: DefaultCopyBytesPerNS, dev: dev, pageSize: 4096}
}

// Device returns the backing device.
func (s *SSDFS) Device() *blockdev.SSD { return s.dev }

// NewFile creates an empty file node.
func (s *SSDFS) NewFile() FileNode {
	f := &ssdFile{fs: s, cached: make(map[int64]bool)}
	s.files = append(s.files, f)
	return f
}

// Mount creates path as an SSD-backed directory tree.
func (s *SSDFS) Mount(v *VFS, path string) (*Dir, error) {
	return v.MkdirAll(path, s.NewFile)
}

// DropCaches evicts every cached page of every file (echo 3 >
// /proc/sys/vm/drop_caches), so experiments can compare cold runs.
func (s *SSDFS) DropCaches() {
	for _, f := range s.files {
		f.cached = make(map[int64]bool)
	}
}

type ssdFile struct {
	fs     *SSDFS
	data   []byte
	cached map[int64]bool // page index → resident in page cache
}

func (f *ssdFile) Size() int64 { return int64(len(f.data)) }

func (f *ssdFile) charge(io *IOCtx, n int) {
	ChargeCopy(io, int64(n), f.fs.BytesPerNS)
}

// fault brings the page range covering [off, off+n) into the cache,
// merging contiguous uncached runs into single device commands. A device
// error aborts the fault; already-fetched runs stay cached.
func (f *ssdFile) fault(io *IOCtx, off, n int64) error {
	if io == nil || io.P == nil || n <= 0 {
		return nil
	}
	ps := f.fs.pageSize
	first := off / ps
	last := (off + n - 1) / ps
	runStart := int64(-1)
	flush := func(endExcl int64) error {
		if runStart < 0 {
			return nil
		}
		pages := endExcl - runStart
		if err := f.fs.dev.ReadTraced(io.P, pages*ps, io.Trace); err != nil {
			runStart = -1
			return err
		}
		for pg := runStart; pg < endExcl; pg++ {
			f.cached[pg] = true
		}
		runStart = -1
		return nil
	}
	for pg := first; pg <= last; pg++ {
		if f.cached[pg] {
			if err := flush(pg); err != nil {
				return err
			}
			continue
		}
		if runStart < 0 {
			runStart = pg
		}
	}
	return flush(last + 1)
}

func (f *ssdFile) ReadAt(io *IOCtx, b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errno.EINVAL
	}
	if off >= int64(len(f.data)) {
		return 0, nil
	}
	n := copy(b, f.data[off:])
	if err := f.fault(io, off, int64(n)); err != nil {
		return 0, err
	}
	f.charge(io, n)
	return n, nil
}

func (f *ssdFile) WriteAt(io *IOCtx, b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errno.EINVAL
	}
	end := off + int64(len(b))
	for int64(len(f.data)) < end {
		f.data = append(f.data, 0)
	}
	n := copy(f.data[off:end], b)
	// Write-back cache: pages become resident; device write is charged
	// immediately at page granularity (no dirty tracking).
	if io != nil && io.P != nil && n > 0 {
		ps := f.fs.pageSize
		first, last := off/ps, (off+int64(n)-1)/ps
		for pg := first; pg <= last; pg++ {
			f.cached[pg] = true
		}
		if err := f.fs.dev.WriteTraced(io.P, int64(n), io.Trace); err != nil {
			return 0, err
		}
	}
	f.charge(io, n)
	return n, nil
}

func (f *ssdFile) Truncate(size int64) error {
	if size < 0 {
		return errno.EINVAL
	}
	if size <= int64(len(f.data)) {
		f.data = f.data[:size]
		return nil
	}
	for int64(len(f.data)) < size {
		f.data = append(f.data, 0)
	}
	return nil
}
