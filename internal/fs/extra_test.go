package fs

import (
	"testing"

	"genesys/internal/errno"
	"genesys/internal/sim"
)

func TestPipeWithinFS(t *testing.T) {
	e := sim.NewEngine(1)
	p := NewPipe(e, 16)
	r, w := p.Ends()
	if !IsPipe(r) || !IsPipe(w) {
		t.Fatal("ends not recognized as pipes")
	}
	if IsPipe(&File{}) {
		t.Fatal("plain file recognized as pipe")
	}
	var got string
	e.Spawn("writer", func(pp *sim.Proc) {
		io := &IOCtx{P: pp}
		if _, err := w.Write(io, []byte("through the pipe")); err != nil {
			t.Errorf("write: %v", err)
		}
		ClosePipeEnd(w)
	})
	e.Spawn("reader", func(pp *sim.Proc) {
		io := &IOCtx{P: pp}
		buf := make([]byte, 64)
		for {
			n, err := r.Read(io, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n == 0 {
				return
			}
			got += string(buf[:n])
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "through the pipe" {
		t.Fatalf("got %q", got)
	}
	if p.Buffered() != 0 {
		t.Fatalf("buffered = %d", p.Buffered())
	}
	// Seek and truncate are stream-invalid.
	if _, err := r.Lseek(0, SeekSet); err != errno.ESPIPE && err != nil {
		// Lseek on pipe goes through Node path; our pipeEnd has no
		// special case, so SeekSet lands on position 0 — acceptable; the
		// POSIX-visible surface rejects via syscall tests.
		_ = err
	}
	var pe *pipeEnd = w.Node.(*pipeEnd)
	if pe.Truncate(0) != errno.EINVAL {
		t.Fatal("pipe truncate should fail")
	}
	// Reads and writes on wrong ends.
	io := &IOCtx{}
	if _, err := w.Node.ReadAt(io, make([]byte, 1), 0); err != errno.EBADF {
		t.Fatalf("read on write end = %v", err)
	}
	if _, err := r.Node.WriteAt(io, []byte("x"), 0); err != errno.EBADF {
		t.Fatalf("write on read end = %v", err)
	}
	// Double close is a no-op.
	ClosePipeEnd(w)
}

func TestPipeNonBlockingWithoutProc(t *testing.T) {
	e := sim.NewEngine(1)
	p := NewPipe(e, 4)
	r, w := p.Ends()
	io := &IOCtx{} // no proc: cannot block
	if _, err := r.Node.ReadAt(io, make([]byte, 4), 0); err != errno.EAGAIN {
		t.Fatalf("empty read without proc = %v", err)
	}
	if n, err := w.Node.WriteAt(io, []byte("abcdef"), 0); n != 4 || err != nil {
		t.Fatalf("over-capacity write without proc = %d, %v", n, err)
	}
	if _, err := w.Node.WriteAt(io, []byte("x"), 0); err != errno.EAGAIN {
		t.Fatalf("full write without proc = %v", err)
	}
	if p.Buffered() != 4 {
		t.Fatalf("buffered = %d", p.Buffered())
	}
}

func TestFileIoctlAndAccessors(t *testing.T) {
	fb := NewFramebuffer(VScreenInfo{XRes: 8, YRes: 8, BPP: 32})
	f := &File{Device: fb, Path: "/dev/fb0"}
	arg := make([]byte, 12)
	if _, err := f.Ioctl(&IOCtx{}, FBIOGET_VSCREENINFO, arg); err != nil {
		t.Fatal(err)
	}
	plain := NewFile(&tmpFile{fs: NewTmpfs()}, O_RDWR, "/x")
	if _, err := plain.Ioctl(&IOCtx{}, 1, nil); err != errno.ENOTTY {
		t.Fatalf("ioctl on regular file = %v", err)
	}
	if plain.Flags() != O_RDWR || plain.Path != "/x" {
		t.Fatal("accessors")
	}
	if fb.Info().XRes != 8 {
		t.Fatal("fb info")
	}
	if fb.Size() != 8*8*4 {
		t.Fatal("fb size")
	}
}

func TestInstallAtBounds(t *testing.T) {
	tb := NewFDTable(8)
	f := &File{}
	if err := tb.InstallAt(-1, f); err != errno.EBADF {
		t.Fatal("negative fd accepted")
	}
	if err := tb.InstallAt(8, f); err != errno.EBADF {
		t.Fatal("out-of-limit fd accepted")
	}
	if err := tb.InstallAt(5, f); err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.Get(5); got != f {
		t.Fatal("InstallAt did not place the file")
	}
}

func TestMkdirRenameEdges(t *testing.T) {
	v := NewVFS()
	NewTmpfs().Mount(v, "/t")
	if err := v.Mkdir("/t/d"); err != nil {
		t.Fatal(err)
	}
	if err := v.Mkdir("/t/d"); err != errno.EEXIST {
		t.Fatalf("double mkdir = %v", err)
	}
	if err := v.Mkdir("/missing/d"); err != errno.ENOENT {
		t.Fatalf("mkdir under missing parent = %v", err)
	}
	if err := v.Rename("/t/none", "/t/x"); err != errno.ENOENT {
		t.Fatalf("rename of missing = %v", err)
	}
	// Directory can be renamed; renaming a file over a non-empty dir fails.
	v.Open("/t/d/inner", O_CREAT|O_WRONLY)
	v.Open("/t/f", O_CREAT|O_WRONLY)
	if err := v.Rename("/t/f", "/t/d"); err != errno.ENOTEMPTY {
		t.Fatalf("rename over non-empty dir = %v", err)
	}
	if err := v.Rename("/t/d", "/t/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Resolve("/t/renamed/inner"); err != nil {
		t.Fatalf("children lost in rename: %v", err)
	}
}

func TestSSDFSDeviceAccessorAndConsoleTruncate(t *testing.T) {
	e := sim.NewEngine(1)
	// Device accessor.
	v := NewVFS()
	sfs := NewSSDFS(nil)
	_ = v
	if sfs.Device() != nil {
		t.Fatal("nil device expected")
	}
	// Console helpers.
	c := NewConsole()
	c.WriteAt(&IOCtx{}, []byte("abc"), 0)
	if c.Size() != 3 {
		t.Fatal("console size")
	}
	c.Truncate(0)
	if c.Contents() != "" {
		t.Fatal("console truncate")
	}
	c.Truncate(5) // non-zero truncate is a no-op
	// Null/Zero sizes and truncate.
	if (NullDev{}).Size() != 0 || (ZeroDev{}).Size() != 0 {
		t.Fatal("dev sizes")
	}
	if (NullDev{}).Truncate(1) != nil || (ZeroDev{}).Truncate(1) != nil {
		t.Fatal("dev truncate")
	}
	// GenFile metadata.
	g := &GenFile{Gen: func() []byte { return []byte("xy") }}
	if g.Size() != 2 || g.Truncate(0) != errno.EACCES {
		t.Fatal("genfile")
	}
	ctl := &CtlFile{Get: func() []byte { return []byte("v") },
		Set: func([]byte) error { return nil }}
	if ctl.Size() != 1 || ctl.Truncate(0) != nil {
		t.Fatal("ctlfile")
	}
	buf := make([]byte, 4)
	if n, _ := ctl.ReadAt(&IOCtx{}, buf, 9); n != 0 {
		t.Fatal("ctl read past end")
	}
	_ = e
	// pipeEnd Size mirrors buffered bytes.
	p := NewPipe(e, 8)
	r, w := p.Ends()
	w.Node.WriteAt(&IOCtx{}, []byte("zz"), 0)
	if r.Node.Size() != 2 {
		t.Fatal("pipe size")
	}
}
