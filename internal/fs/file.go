package fs

import (
	"genesys/internal/errno"
)

// File is an open-file description: a node plus a file offset and open
// flags. Read and Write advance the shared offset — the statefulness the
// paper flags as hazardous for concurrent work-item invocation of
// read/write on one descriptor (§IV), which Pread/Pwrite avoid.
type File struct {
	// Node backs data access; nil for pure devices and sockets.
	Node FileNode
	// Device backs ioctl/mmap; nil for regular files.
	Device DeviceNode
	// Special holds non-filesystem descriptions (e.g. a network socket).
	Special any
	// Path is the path the file was opened with, for diagnostics.
	Path string

	pos   int64
	flags int
}

// NewFile constructs an open-file description outside Open — for stdio
// wiring and synthetic descriptors like sockets.
func NewFile(node FileNode, flags int, path string) *File {
	return &File{Node: node, flags: flags, Path: path}
}

// Flags returns the open flags.
func (f *File) Flags() int { return f.flags }

// Pos returns the current file offset.
func (f *File) Pos() int64 { return f.pos }

func (f *File) readable() bool {
	return f.flags&O_WRONLY == 0
}

func (f *File) writable() bool {
	return f.flags&(O_WRONLY|O_RDWR) != 0
}

// Read reads from the current offset and advances it.
func (f *File) Read(io *IOCtx, b []byte) (int, error) {
	n, err := f.Pread(io, b, f.pos)
	f.pos += int64(n)
	return n, err
}

// Write writes at the current offset (or the end, with O_APPEND) and
// advances it.
func (f *File) Write(io *IOCtx, b []byte) (int, error) {
	if f.flags&O_APPEND != 0 && f.Node != nil {
		f.pos = f.Node.Size()
	}
	n, err := f.Pwrite(io, b, f.pos)
	f.pos += int64(n)
	return n, err
}

// Pread reads at an explicit offset without touching the file offset.
func (f *File) Pread(io *IOCtx, b []byte, off int64) (int, error) {
	if f.Node == nil {
		return 0, errno.ESPIPE
	}
	if !f.readable() {
		return 0, errno.EBADF
	}
	if off < 0 {
		return 0, errno.EINVAL
	}
	return f.Node.ReadAt(io, b, off)
}

// Pwrite writes at an explicit offset without touching the file offset.
func (f *File) Pwrite(io *IOCtx, b []byte, off int64) (int, error) {
	if f.Node == nil {
		return 0, errno.ESPIPE
	}
	if !f.writable() {
		return 0, errno.EBADF
	}
	if off < 0 {
		return 0, errno.EINVAL
	}
	return f.Node.WriteAt(io, b, off)
}

// Whence values for Lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Lseek repositions the file offset and returns the new position.
func (f *File) Lseek(off int64, whence int) (int64, error) {
	if f.Node == nil {
		return 0, errno.ESPIPE
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.pos
	case SeekEnd:
		base = f.Node.Size()
	default:
		return 0, errno.EINVAL
	}
	np := base + off
	if np < 0 {
		return 0, errno.EINVAL
	}
	f.pos = np
	return np, nil
}

// Ioctl issues a device control command.
func (f *File) Ioctl(io *IOCtx, cmd uint64, arg []byte) (uint64, error) {
	if f.Device == nil {
		return 0, errno.ENOTTY
	}
	return f.Device.Ioctl(io, cmd, arg)
}

// FDTable maps small integers to open-file descriptions, one per process.
type FDTable struct {
	files []*File
	limit int
}

// NewFDTable returns a table with the given descriptor limit.
func NewFDTable(limit int) *FDTable {
	return &FDTable{limit: limit}
}

// Install places f at the lowest free descriptor and returns it.
func (t *FDTable) Install(f *File) (int, error) {
	for i, e := range t.files {
		if e == nil {
			t.files[i] = f
			return i, nil
		}
	}
	if len(t.files) >= t.limit {
		return -1, errno.EMFILE
	}
	t.files = append(t.files, f)
	return len(t.files) - 1, nil
}

// InstallAt places f at a specific descriptor (for stdio wiring).
func (t *FDTable) InstallAt(fd int, f *File) error {
	if fd < 0 || fd >= t.limit {
		return errno.EBADF
	}
	for len(t.files) <= fd {
		t.files = append(t.files, nil)
	}
	t.files[fd] = f
	return nil
}

// Get returns the file at fd.
func (t *FDTable) Get(fd int) (*File, error) {
	if fd < 0 || fd >= len(t.files) || t.files[fd] == nil {
		return nil, errno.EBADF
	}
	return t.files[fd], nil
}

// Close removes the descriptor.
func (t *FDTable) Close(fd int) error {
	if fd < 0 || fd >= len(t.files) || t.files[fd] == nil {
		return errno.EBADF
	}
	t.files[fd] = nil
	return nil
}

// ForEach calls fn for every open descriptor in ascending fd order.
func (t *FDTable) ForEach(fn func(fd int, f *File)) {
	for fd, f := range t.files {
		if f != nil {
			fn(fd, f)
		}
	}
}

// OpenCount returns the number of open descriptors.
func (t *FDTable) OpenCount() int {
	n := 0
	for _, f := range t.files {
		if f != nil {
			n++
		}
	}
	return n
}
