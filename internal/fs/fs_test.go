package fs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"genesys/internal/blockdev"
	"genesys/internal/errno"
	"genesys/internal/sim"
)

func newTmpVFS(t *testing.T) (*VFS, *Tmpfs) {
	t.Helper()
	v := NewVFS()
	tfs := NewTmpfs()
	if _, err := tfs.Mount(v, "/tmp"); err != nil {
		t.Fatal(err)
	}
	return v, tfs
}

func TestOpenCreateWriteRead(t *testing.T) {
	v, _ := newTmpVFS(t)
	f, err := v.Open("/tmp/hello.txt", O_RDWR|O_CREAT)
	if err != nil {
		t.Fatal(err)
	}
	io := &IOCtx{}
	if n, err := f.Write(io, []byte("hello world")); n != 11 || err != nil {
		t.Fatalf("write = %d, %v", n, err)
	}
	if _, err := f.Lseek(0, SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := f.Read(io, buf)
	if err != nil || string(buf[:n]) != "hello world" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	// EOF
	if n, err := f.Read(io, buf); n != 0 || err != nil {
		t.Fatalf("read at EOF = %d, %v", n, err)
	}
}

func TestStatefulOffsetSharedAcrossReads(t *testing.T) {
	// The paper's point (§IV): read/write are stateful; the offset is per
	// open-file description.
	v, _ := newTmpVFS(t)
	f, _ := v.Open("/tmp/f", O_RDWR|O_CREAT)
	io := &IOCtx{}
	f.Write(io, []byte("abcdef"))
	f.Lseek(0, SeekSet)
	b := make([]byte, 2)
	f.Read(io, b)
	if string(b) != "ab" {
		t.Fatalf("first read = %q", b)
	}
	f.Read(io, b)
	if string(b) != "cd" {
		t.Fatalf("second read = %q", b)
	}
	if f.Pos() != 4 {
		t.Fatalf("pos = %d", f.Pos())
	}
}

func TestPreadDoesNotMoveOffset(t *testing.T) {
	v, _ := newTmpVFS(t)
	f, _ := v.Open("/tmp/f", O_RDWR|O_CREAT)
	io := &IOCtx{}
	f.Write(io, []byte("abcdef"))
	b := make([]byte, 3)
	if n, err := f.Pread(io, b, 2); n != 3 || err != nil || string(b) != "cde" {
		t.Fatalf("pread = %q, %d, %v", b, n, err)
	}
	if f.Pos() != 6 {
		t.Fatalf("pos moved to %d", f.Pos())
	}
}

func TestPwriteAtArbitraryOffsets(t *testing.T) {
	v, _ := newTmpVFS(t)
	f, _ := v.Open("/tmp/f", O_RDWR|O_CREAT)
	io := &IOCtx{}
	if _, err := f.Pwrite(io, []byte("xy"), 4); err != nil {
		t.Fatal(err)
	}
	if f.Node.Size() != 6 {
		t.Fatalf("size = %d, want 6 (hole-extended)", f.Node.Size())
	}
	b := make([]byte, 6)
	f.Pread(io, b, 0)
	if !bytes.Equal(b, []byte{0, 0, 0, 0, 'x', 'y'}) {
		t.Fatalf("content = %v", b)
	}
}

func TestOpenFlags(t *testing.T) {
	v, _ := newTmpVFS(t)
	io := &IOCtx{}
	if _, err := v.Open("/tmp/missing", O_RDONLY); err != errno.ENOENT {
		t.Fatalf("open missing = %v", err)
	}
	f, _ := v.Open("/tmp/f", O_WRONLY|O_CREAT)
	f.Write(io, []byte("data"))
	if _, err := f.Read(io, make([]byte, 4)); err != errno.EBADF {
		t.Fatalf("read on O_WRONLY = %v", err)
	}
	ro, _ := v.Open("/tmp/f", O_RDONLY)
	if _, err := ro.Write(io, []byte("x")); err != errno.EBADF {
		t.Fatalf("write on O_RDONLY = %v", err)
	}
	tr, _ := v.Open("/tmp/f", O_WRONLY|O_TRUNC)
	if tr.Node.Size() != 0 {
		t.Fatal("O_TRUNC did not truncate")
	}
	ap, _ := v.Open("/tmp/f", O_WRONLY|O_APPEND)
	ap.Write(io, []byte("aa"))
	ap2, _ := v.Open("/tmp/f", O_WRONLY|O_APPEND)
	ap2.Write(io, []byte("bb"))
	all := make([]byte, 8)
	rd, _ := v.Open("/tmp/f", O_RDONLY)
	n, _ := rd.Read(io, all)
	if string(all[:n]) != "aabb" {
		t.Fatalf("append content = %q", all[:n])
	}
}

func TestLseekWhence(t *testing.T) {
	v, _ := newTmpVFS(t)
	f, _ := v.Open("/tmp/f", O_RDWR|O_CREAT)
	io := &IOCtx{}
	f.Write(io, []byte("0123456789"))
	if pos, _ := f.Lseek(-3, SeekEnd); pos != 7 {
		t.Fatalf("SeekEnd pos = %d", pos)
	}
	if pos, _ := f.Lseek(1, SeekCur); pos != 8 {
		t.Fatalf("SeekCur pos = %d", pos)
	}
	if _, err := f.Lseek(-100, SeekCur); err != errno.EINVAL {
		t.Fatalf("negative seek = %v", err)
	}
	if _, err := f.Lseek(0, 99); err != errno.EINVAL {
		t.Fatalf("bad whence = %v", err)
	}
}

func TestPathResolution(t *testing.T) {
	v, _ := newTmpVFS(t)
	if _, err := v.Open("relative", O_RDONLY); err != errno.EINVAL {
		t.Fatalf("relative path = %v", err)
	}
	f, err := v.Open("/tmp/../tmp/./x", O_CREAT|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	if f.Path != "/tmp/../tmp/./x" {
		t.Fatalf("path = %q", f.Path)
	}
	if _, err := v.Resolve("/tmp/x"); err != nil {
		t.Fatalf("dot-dot normalization broken: %v", err)
	}
	if _, err := v.Resolve("/tmp/x/y"); err != errno.ENOTDIR {
		t.Fatalf("file-as-dir = %v", err)
	}
}

func TestUnlink(t *testing.T) {
	v, _ := newTmpVFS(t)
	v.Open("/tmp/gone", O_CREAT|O_WRONLY)
	if err := v.Unlink("/tmp/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Resolve("/tmp/gone"); err != errno.ENOENT {
		t.Fatalf("after unlink = %v", err)
	}
	if err := v.Unlink("/tmp"); err != errno.ENOTEMPTY && err != nil {
		// /tmp is now empty, so removal is allowed.
		t.Fatalf("unlink dir = %v", err)
	}
}

func TestDirNames(t *testing.T) {
	v, _ := newTmpVFS(t)
	for _, n := range []string{"c", "a", "b"} {
		v.Open("/tmp/"+n, O_CREAT|O_WRONLY)
	}
	d, err := v.ResolveDir("/tmp")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(d.Names()) != "[a b c]" {
		t.Fatalf("names = %v", d.Names())
	}
}

func TestFDTable(t *testing.T) {
	tb := NewFDTable(4)
	f := &File{}
	fd0, _ := tb.Install(f)
	fd1, _ := tb.Install(f)
	if fd0 != 0 || fd1 != 1 {
		t.Fatalf("fds = %d, %d", fd0, fd1)
	}
	tb.Close(fd0)
	fd2, _ := tb.Install(f) // reuses lowest free
	if fd2 != 0 {
		t.Fatalf("reused fd = %d", fd2)
	}
	tb.Install(f)
	tb.Install(f)
	if _, err := tb.Install(f); err != errno.EMFILE {
		t.Fatalf("over limit = %v", err)
	}
	if _, err := tb.Get(99); err != errno.EBADF {
		t.Fatalf("bad fd = %v", err)
	}
	if err := tb.Close(99); err != errno.EBADF {
		t.Fatalf("close bad fd = %v", err)
	}
	if tb.OpenCount() != 4 {
		t.Fatalf("open count = %d", tb.OpenCount())
	}
}

func TestTmpfsChargesMemoryTime(t *testing.T) {
	e := sim.NewEngine(1)
	v := NewVFS()
	NewTmpfs().Mount(v, "/tmp")
	f, _ := v.Open("/tmp/big", O_RDWR|O_CREAT)
	f.Pwrite(&IOCtx{}, make([]byte, 1<<20), 0) // free setup write
	var elapsed sim.Time
	e.Spawn("reader", func(p *sim.Proc) {
		start := p.Now()
		buf := make([]byte, 1<<20)
		f.Pread(&IOCtx{P: p}, buf, 0)
		elapsed = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 MiB at 8 B/ns ≈ 131 us.
	if elapsed < 80*sim.Microsecond || elapsed > 250*sim.Microsecond {
		t.Fatalf("1MiB tmpfs read took %v, want ≈131us", elapsed)
	}
}

func TestSSDFSPageCache(t *testing.T) {
	e := sim.NewEngine(1)
	dev := blockdev.New(e, blockdev.DefaultConfig())
	v := NewVFS()
	sfs := NewSSDFS(dev)
	sfs.Mount(v, "/data")
	f, _ := v.Open("/data/file", O_RDWR|O_CREAT)
	f.Pwrite(&IOCtx{}, bytes.Repeat([]byte("x"), 1<<20), 0)
	sfs.DropCaches()

	var cold, warm sim.Time
	e.Spawn("reader", func(p *sim.Proc) {
		io := &IOCtx{P: p}
		buf := make([]byte, 1<<20)
		t0 := p.Now()
		f.Pread(io, buf, 0)
		cold = p.Now() - t0
		t1 := p.Now()
		f.Pread(io, buf, 0)
		warm = p.Now() - t1
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.BytesRead.Value() != 1<<20 {
		t.Fatalf("device read %d bytes, want 1MiB exactly (merged, once)", dev.BytesRead.Value())
	}
	if cold < 10*warm {
		t.Fatalf("cold=%v warm=%v: page cache ineffective", cold, warm)
	}
}

func TestSSDQueueDepthScaling(t *testing.T) {
	// One serial reader vs 8 concurrent readers of separate files: the
	// 8-channel device should give concurrent readers much higher
	// aggregate throughput (the Figure 14 mechanism).
	run := func(readers int) float64 {
		e := sim.NewEngine(1)
		dev := blockdev.New(e, blockdev.DefaultConfig())
		v := NewVFS()
		sfs := NewSSDFS(dev)
		sfs.Mount(v, "/data")
		const fileSize = 4 << 20
		files := make([]*File, readers)
		for i := range files {
			f, _ := v.Open(fmt.Sprintf("/data/f%d", i), O_RDWR|O_CREAT)
			f.Pwrite(&IOCtx{}, make([]byte, fileSize), 0)
			files[i] = f
		}
		sfs.DropCaches()
		for i := range files {
			f := files[i]
			e.Spawn("reader", func(p *sim.Proc) {
				io := &IOCtx{P: p}
				buf := make([]byte, 128<<10)
				for off := int64(0); off < fileSize; off += int64(len(buf)) {
					f.Pread(io, buf, off)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(readers*fileSize) / e.Now().Seconds() / 1e6 // MB/s
	}
	serial := run(1)
	parallel := run(8)
	if serial < 15 || serial > 40 {
		t.Fatalf("serial throughput = %.1f MB/s, want ~25-30", serial)
	}
	if parallel < 4*serial {
		t.Fatalf("parallel=%.1f serial=%.1f: channel parallelism missing", parallel, serial)
	}
}

func TestConsole(t *testing.T) {
	c := NewConsole()
	io := &IOCtx{}
	c.WriteAt(io, []byte("line1\n"), 0)
	c.WriteAt(io, []byte("line2\n"), 0)
	if c.Contents() != "line1\nline2\n" {
		t.Fatalf("contents = %q", c.Contents())
	}
	if fmt.Sprint(c.Lines()) != "[line1 line2]" {
		t.Fatalf("lines = %v", c.Lines())
	}
	if n, _ := c.ReadAt(io, make([]byte, 4), 0); n != 0 {
		t.Fatal("console read returned data")
	}
}

func TestNullAndZero(t *testing.T) {
	io := &IOCtx{}
	var n NullDev
	if w, _ := n.WriteAt(io, []byte("xxx"), 0); w != 3 {
		t.Fatal("null write")
	}
	if r, _ := n.ReadAt(io, make([]byte, 3), 0); r != 0 {
		t.Fatal("null read")
	}
	var z ZeroDev
	b := []byte{1, 2, 3}
	z.ReadAt(io, b, 0)
	if !bytes.Equal(b, []byte{0, 0, 0}) {
		t.Fatal("zero read")
	}
}

func TestGenAndCtlFiles(t *testing.T) {
	g := &GenFile{Gen: func() []byte { return []byte("generated") }}
	b := make([]byte, 16)
	n, _ := g.ReadAt(&IOCtx{}, b, 0)
	if string(b[:n]) != "generated" {
		t.Fatalf("gen read = %q", b[:n])
	}
	if _, err := g.WriteAt(&IOCtx{}, []byte("x"), 0); err != errno.EACCES {
		t.Fatalf("gen write = %v", err)
	}
	val := "old"
	c := &CtlFile{
		Get: func() []byte { return []byte(val) },
		Set: func(b []byte) error { val = string(b); return nil },
	}
	c.WriteAt(&IOCtx{}, []byte("new"), 0)
	if val != "new" {
		t.Fatalf("ctl set = %q", val)
	}
}

func TestFramebufferIoctlAndPixels(t *testing.T) {
	fb := NewFramebuffer(VScreenInfo{XRes: 64, YRes: 32, BPP: 32})
	io := &IOCtx{}
	arg := make([]byte, 12)
	if _, err := fb.Ioctl(io, FBIOGET_VSCREENINFO, arg); err != nil {
		t.Fatal(err)
	}
	info, _ := DecodeVScreenInfo(arg)
	if info.XRes != 64 || info.YRes != 32 || info.BPP != 32 {
		t.Fatalf("info = %+v", info)
	}
	// Change the mode.
	if _, err := fb.Ioctl(io, FBIOPUT_VSCREENINFO, VScreenInfo{XRes: 16, YRes: 16, BPP: 32}.Encode()); err != nil {
		t.Fatal(err)
	}
	if len(fb.Pixels()) != 16*16*4 {
		t.Fatalf("pixels = %d bytes", len(fb.Pixels()))
	}
	if _, err := fb.Ioctl(io, 0xdead, arg); err != errno.ENOTTY {
		t.Fatalf("unknown ioctl = %v", err)
	}
	if _, err := fb.Ioctl(io, FBIOPUT_VSCREENINFO, VScreenInfo{XRes: 0, YRes: 1, BPP: 32}.Encode()); err != errno.EINVAL {
		t.Fatalf("invalid mode = %v", err)
	}
	fb.WriteAt(io, []byte{9, 9, 9, 9}, 0)
	if fb.MmapBuffer()[0] != 9 {
		t.Fatal("mmap buffer not aliased to pixel writes")
	}
}

// Property: a tmpfs file behaves like a flat byte array under random
// pwrite/pread sequences.
func TestTmpfsMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVFS()
		NewTmpfs().Mount(v, "/t")
		file, err := v.Open("/t/f", O_RDWR|O_CREAT)
		if err != nil {
			return false
		}
		io := &IOCtx{}
		ref := make([]byte, 0, 4096)
		for op := 0; op < 60; op++ {
			off := int64(rng.Intn(2048))
			l := rng.Intn(256)
			if rng.Intn(2) == 0 {
				data := make([]byte, l)
				rng.Read(data)
				file.Pwrite(io, data, off)
				end := off + int64(l)
				for int64(len(ref)) < end {
					ref = append(ref, 0)
				}
				copy(ref[off:end], data)
			} else {
				got := make([]byte, l)
				n, _ := file.Pread(io, got, off)
				want := []byte{}
				if off < int64(len(ref)) {
					want = ref[off:min64(int64(len(ref)), off+int64(l))]
				}
				if n != len(want) || !bytes.Equal(got[:n], want) {
					return false
				}
			}
		}
		return file.Node.Size() == int64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: an SSDFS file returns identical data to tmpfs for the same
// operation sequence (caching must never change contents).
func TestSSDFSContentMatchesTmpfs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(seed)
		dev := blockdev.New(e, blockdev.DefaultConfig())
		v := NewVFS()
		sfs := NewSSDFS(dev)
		sfs.Mount(v, "/d")
		NewTmpfs().Mount(v, "/t")
		a, _ := v.Open("/d/f", O_RDWR|O_CREAT)
		b, _ := v.Open("/t/f", O_RDWR|O_CREAT)
		io := &IOCtx{}
		for op := 0; op < 40; op++ {
			off := int64(rng.Intn(16384))
			l := rng.Intn(4096)
			data := make([]byte, l)
			rng.Read(data)
			a.Pwrite(io, data, off)
			b.Pwrite(io, data, off)
			if rng.Intn(4) == 0 {
				sfs.DropCaches()
			}
			ra := make([]byte, 512)
			rb := make([]byte, 512)
			ro := int64(rng.Intn(16384))
			na, _ := a.Pread(io, ra, ro)
			nb, _ := b.Pread(io, rb, ro)
			if na != nb || !bytes.Equal(ra[:na], rb[:nb]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
