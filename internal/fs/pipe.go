package fs

import (
	"genesys/internal/errno"
	"genesys/internal/sim"
)

// Pipe is a unidirectional byte channel with a bounded kernel buffer —
// the substrate behind pipe(2) and the stdio redirection the paper's
// "everything is a file" discussion highlights (§IV).
type Pipe struct {
	e        *sim.Engine
	buf      []byte
	capacity int

	readers int
	writers int

	notEmpty *sim.Cond
	notFull  *sim.Cond
}

// NewPipe returns a pipe with the given buffer capacity.
func NewPipe(e *sim.Engine, capacity int) *Pipe {
	if capacity <= 0 {
		capacity = 64 << 10 // Linux default pipe buffer
	}
	return &Pipe{
		e:        e,
		capacity: capacity,
		notEmpty: sim.NewCond(e),
		notFull:  sim.NewCond(e),
	}
}

// Ends returns the read and write file descriptions of the pipe.
func (pp *Pipe) Ends() (r, w *File) {
	pp.readers++
	pp.writers++
	r = &File{Node: &pipeEnd{p: pp, readable: true}, flags: O_RDONLY, Path: "pipe:[r]"}
	w = &File{Node: &pipeEnd{p: pp, writable: true}, flags: O_WRONLY, Path: "pipe:[w]"}
	return r, w
}

// Buffered returns the number of bytes waiting in the pipe.
func (pp *Pipe) Buffered() int { return len(pp.buf) }

// pipeEnd adapts one end of a pipe to FileNode. Offsets are ignored:
// pipes are streams.
type pipeEnd struct {
	p        *Pipe
	readable bool
	writable bool
	closed   bool
}

func (pe *pipeEnd) Size() int64 { return int64(len(pe.p.buf)) }

func (pe *pipeEnd) ReadAt(io *IOCtx, b []byte, _ int64) (int, error) {
	if !pe.readable || pe.closed {
		return 0, errno.EBADF
	}
	pp := pe.p
	for len(pp.buf) == 0 {
		if pp.writers == 0 {
			return 0, nil // EOF: all writers closed
		}
		if io == nil || io.P == nil {
			return 0, errno.EAGAIN // cannot block without a process
		}
		pp.notEmpty.Wait(io.P, "pipe read")
	}
	n := copy(b, pp.buf)
	pp.buf = pp.buf[n:]
	pp.notFull.Broadcast()
	ChargeCopy(io, int64(n), DefaultCopyBytesPerNS)
	return n, nil
}

func (pe *pipeEnd) WriteAt(io *IOCtx, b []byte, _ int64) (int, error) {
	if !pe.writable || pe.closed {
		return 0, errno.EBADF
	}
	pp := pe.p
	written := 0
	for written < len(b) {
		if pp.readers == 0 {
			return written, errno.EPIPE
		}
		space := pp.capacity - len(pp.buf)
		if space == 0 {
			if io == nil || io.P == nil {
				if written > 0 {
					return written, nil
				}
				return 0, errno.EAGAIN
			}
			pp.notFull.Wait(io.P, "pipe write")
			continue
		}
		chunk := b[written:]
		if len(chunk) > space {
			chunk = chunk[:space]
		}
		pp.buf = append(pp.buf, chunk...)
		written += len(chunk)
		pp.notEmpty.Broadcast()
	}
	ChargeCopy(io, int64(written), DefaultCopyBytesPerNS)
	return written, nil
}

func (pe *pipeEnd) Truncate(int64) error { return errno.EINVAL }

// ClosePipeEnd marks one end closed, waking blocked peers so they can
// observe EOF/EPIPE. The syscall layer calls this from close(2).
func ClosePipeEnd(f *File) {
	pe, ok := f.Node.(*pipeEnd)
	if !ok || pe.closed {
		return
	}
	pe.closed = true
	if pe.readable {
		pe.p.readers--
	}
	if pe.writable {
		pe.p.writers--
	}
	pe.p.notEmpty.Broadcast()
	pe.p.notFull.Broadcast()
}

// IsPipe reports whether f is a pipe end.
func IsPipe(f *File) bool {
	_, ok := f.Node.(*pipeEnd)
	return ok
}
