// Package fs implements the simulated machine's filesystems behind a
// small VFS: tmpfs (memory-resident, as used by the paper's Figure 7/10
// microbenchmarks), an SSD-backed filesystem with a page cache (Figures
// 13b/14), device nodes (/dev/fb0, /dev/null, /dev/zero, the console),
// and generated files in the style of /proc and /sys — giving the
// simulated kernel Linux's "everything is a file" property that GENESYS
// leans on (§IV).
package fs

import (
	"sort"
	"strings"

	"genesys/internal/cpu"
	"genesys/internal/errno"
	"genesys/internal/obs"
	"genesys/internal/sim"
)

// IOCtx carries the simulation context through an I/O operation so
// filesystems can charge time to the calling process. When CPU is set,
// data-copy time is executed on a core at Prio (it shows up in the
// utilization ledger and contends with other threads); otherwise it is
// plain latency on P; a zero IOCtx makes I/O free (setup code).
type IOCtx struct {
	P    *sim.Proc
	CPU  *cpu.CPU
	Prio int

	// Events and Trace thread causal tracing through the I/O path: when
	// set, device back-ends record their transfers as spans linked into
	// the originating syscall's flow chain.
	Events *obs.EventLog
	Trace  uint64
}

// DefaultCopyBytesPerNS is the single-core memcpy bandwidth used for
// filesystem data movement (≈4 GB/s per core; copies on different cores
// proceed in parallel).
const DefaultCopyBytesPerNS = 4.0

// ChargeCopy bills the movement of n bytes at the given per-core
// bandwidth to the I/O context.
func ChargeCopy(io *IOCtx, n int64, bytesPerNS float64) {
	if io == nil || io.P == nil || n <= 0 {
		return
	}
	if bytesPerNS <= 0 {
		bytesPerNS = DefaultCopyBytesPerNS
	}
	d := sim.Time(float64(n) / bytesPerNS)
	if d <= 0 {
		return
	}
	if io.CPU != nil {
		io.CPU.Exec(io.P, d, io.Prio)
	} else {
		io.P.Sleep(d)
	}
}

// Node is anything that can live in a directory.
type Node interface {
	// Size returns the node's current size in bytes (0 for directories
	// and most devices).
	Size() int64
}

// FileNode is a node supporting positional data access.
type FileNode interface {
	Node
	ReadAt(io *IOCtx, b []byte, off int64) (int, error)
	WriteAt(io *IOCtx, b []byte, off int64) (int, error)
	Truncate(size int64) error
}

// DeviceNode is a node supporting ioctl, optionally mmap.
type DeviceNode interface {
	Node
	Ioctl(io *IOCtx, cmd uint64, arg []byte) (uint64, error)
	// MmapBuffer returns the device memory backing an mmap of the node,
	// or nil if the device is not mappable.
	MmapBuffer() []byte
}

// Dir is a directory node. Each directory carries the file-creation
// factory of the filesystem it belongs to, so O_CREAT works per-mount.
type Dir struct {
	entries map[string]Node
	newFile func() FileNode
}

// NewDir returns a directory creating files with the given factory
// (nil makes the directory read-only for creation).
func NewDir(newFile func() FileNode) *Dir {
	return &Dir{entries: make(map[string]Node), newFile: newFile}
}

// Size implements Node.
func (d *Dir) Size() int64 { return 0 }

// Lookup returns the named entry.
func (d *Dir) Lookup(name string) (Node, bool) {
	n, ok := d.entries[name]
	return n, ok
}

// Add inserts an entry, replacing any existing one.
func (d *Dir) Add(name string, n Node) { d.entries[name] = n }

// Remove deletes an entry.
func (d *Dir) Remove(name string) { delete(d.entries, name) }

// Names returns the sorted entry names.
func (d *Dir) Names() []string {
	out := make([]string, 0, len(d.entries))
	for n := range d.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VFS is the filesystem namespace of the simulated machine.
type VFS struct {
	root *Dir
}

// NewVFS returns a namespace whose root directory cannot create files
// directly (mount subdirectories for that).
func NewVFS() *VFS {
	return &VFS{root: NewDir(nil)}
}

// Root returns the root directory.
func (v *VFS) Root() *Dir { return v.root }

// split breaks an absolute path into components.
func split(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, errno.EINVAL
	}
	var parts []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			}
		default:
			parts = append(parts, c)
		}
	}
	return parts, nil
}

// Resolve walks an absolute path to its node.
func (v *VFS) Resolve(path string) (Node, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	var cur Node = v.root
	for _, c := range parts {
		d, ok := cur.(*Dir)
		if !ok {
			return nil, errno.ENOTDIR
		}
		cur, ok = d.Lookup(c)
		if !ok {
			return nil, errno.ENOENT
		}
	}
	return cur, nil
}

// ResolveDir resolves a path that must be a directory.
func (v *VFS) ResolveDir(path string) (*Dir, error) {
	n, err := v.Resolve(path)
	if err != nil {
		return nil, err
	}
	d, ok := n.(*Dir)
	if !ok {
		return nil, errno.ENOTDIR
	}
	return d, nil
}

// parentOf resolves the parent directory and final component of path.
func (v *VFS) parentOf(path string) (*Dir, string, error) {
	parts, err := split(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", errno.EISDIR
	}
	var cur Node = v.root
	for _, c := range parts[:len(parts)-1] {
		d, ok := cur.(*Dir)
		if !ok {
			return nil, "", errno.ENOTDIR
		}
		cur, ok = d.Lookup(c)
		if !ok {
			return nil, "", errno.ENOENT
		}
	}
	d, ok := cur.(*Dir)
	if !ok {
		return nil, "", errno.ENOTDIR
	}
	return d, parts[len(parts)-1], nil
}

// MkdirAll creates the directory path (and parents) using the given
// file-creation factory for each new directory level.
func (v *VFS) MkdirAll(path string, newFile func() FileNode) (*Dir, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	cur := v.root
	for _, c := range parts {
		n, ok := cur.Lookup(c)
		if !ok {
			nd := NewDir(newFile)
			cur.Add(c, nd)
			cur = nd
			continue
		}
		d, ok := n.(*Dir)
		if !ok {
			return nil, errno.ENOTDIR
		}
		cur = d
	}
	return cur, nil
}

// Mkdir creates a single directory inside an existing parent, inheriting
// the parent's file-creation factory (so a directory made under a tmpfs
// mount is itself tmpfs).
func (v *VFS) Mkdir(path string) error {
	d, name, err := v.parentOf(path)
	if err != nil {
		return err
	}
	if _, exists := d.Lookup(name); exists {
		return errno.EEXIST
	}
	d.Add(name, NewDir(d.newFile))
	return nil
}

// Rename moves the node at oldPath to newPath, replacing any existing
// non-directory target.
func (v *VFS) Rename(oldPath, newPath string) error {
	od, oname, err := v.parentOf(oldPath)
	if err != nil {
		return err
	}
	n, ok := od.Lookup(oname)
	if !ok {
		return errno.ENOENT
	}
	nd, nname, err := v.parentOf(newPath)
	if err != nil {
		return err
	}
	if existing, exists := nd.Lookup(nname); exists {
		if dir, isDir := existing.(*Dir); isDir {
			if len(dir.entries) > 0 {
				return errno.ENOTEMPTY
			}
			if _, srcIsDir := n.(*Dir); !srcIsDir {
				return errno.EISDIR
			}
		}
	}
	od.Remove(oname)
	nd.Add(nname, n)
	return nil
}

// Unlink removes the node at path.
func (v *VFS) Unlink(path string) error {
	d, name, err := v.parentOf(path)
	if err != nil {
		return err
	}
	n, ok := d.Lookup(name)
	if !ok {
		return errno.ENOENT
	}
	if sub, isDir := n.(*Dir); isDir && len(sub.entries) > 0 {
		return errno.ENOTEMPTY
	}
	d.Remove(name)
	return nil
}

// Open flags (Linux values for the bits we support).
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2
	O_CREAT  = 0x40
	O_TRUNC  = 0x200
	O_APPEND = 0x400
)

// Open opens path with the given flags, returning a new open-file
// description.
func (v *VFS) Open(path string, flags int) (*File, error) {
	n, err := v.Resolve(path)
	if err == errno.ENOENT && flags&O_CREAT != 0 {
		d, name, perr := v.parentOf(path)
		if perr != nil {
			return nil, perr
		}
		if d.newFile == nil {
			return nil, errno.EACCES
		}
		fn := d.newFile()
		d.Add(name, fn)
		n = fn
	} else if err != nil {
		return nil, err
	}
	if _, isDir := n.(*Dir); isDir {
		return nil, errno.EISDIR
	}
	f := &File{Path: path, flags: flags}
	if fn, ok := n.(FileNode); ok {
		f.Node = fn
		if flags&O_TRUNC != 0 && flags&(O_WRONLY|O_RDWR) != 0 {
			if err := fn.Truncate(0); err != nil {
				return nil, err
			}
		}
	}
	if dn, ok := n.(DeviceNode); ok {
		f.Device = dn
	}
	if f.Node == nil && f.Device == nil {
		return nil, errno.EINVAL
	}
	return f, nil
}
