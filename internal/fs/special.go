package fs

import (
	"encoding/binary"
	"strings"

	"genesys/internal/errno"
)

// Console is the terminal device: writes accumulate and are retrievable
// by tests and the CLI; reads return EOF. GENESYS programs print straight
// to it from the GPU (the paper's grep prints matching filenames to the
// terminal, §VIII-C).
type Console struct {
	buf []byte
}

// NewConsole returns an empty console.
func NewConsole() *Console { return &Console{} }

// Size implements Node.
func (c *Console) Size() int64 { return int64(len(c.buf)) }

// ReadAt always reports EOF: the simulated terminal has no input.
func (c *Console) ReadAt(io *IOCtx, b []byte, off int64) (int, error) {
	return 0, nil
}

// WriteAt appends to the console regardless of offset.
func (c *Console) WriteAt(io *IOCtx, b []byte, off int64) (int, error) {
	c.buf = append(c.buf, b...)
	ChargeCopy(io, int64(len(b)), DefaultCopyBytesPerNS)
	return len(b), nil
}

// Truncate clears the console.
func (c *Console) Truncate(size int64) error {
	if size == 0 {
		c.buf = nil
	}
	return nil
}

// Contents returns everything written so far.
func (c *Console) Contents() string { return string(c.buf) }

// Lines returns the non-empty lines written so far.
func (c *Console) Lines() []string {
	var out []string
	for _, l := range strings.Split(string(c.buf), "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

// NullDev is /dev/null: writes vanish, reads are EOF.
type NullDev struct{}

func (NullDev) Size() int64                                      { return 0 }
func (NullDev) ReadAt(*IOCtx, []byte, int64) (int, error)        { return 0, nil }
func (NullDev) WriteAt(_ *IOCtx, b []byte, _ int64) (int, error) { return len(b), nil }
func (NullDev) Truncate(int64) error                             { return nil }

// ZeroDev is /dev/zero: reads fill with zero bytes.
type ZeroDev struct{}

func (ZeroDev) Size() int64 { return 0 }
func (ZeroDev) ReadAt(_ *IOCtx, b []byte, _ int64) (int, error) {
	for i := range b {
		b[i] = 0
	}
	return len(b), nil
}
func (ZeroDev) WriteAt(_ *IOCtx, b []byte, _ int64) (int, error) { return len(b), nil }
func (ZeroDev) Truncate(int64) error                             { return nil }

// GenFile is a read-only file whose contents are generated on each read —
// the mechanism behind the simulated /proc and /sys entries.
type GenFile struct {
	Gen func() []byte
}

func (g *GenFile) Size() int64 { return int64(len(g.Gen())) }

func (g *GenFile) ReadAt(io *IOCtx, b []byte, off int64) (int, error) {
	data := g.Gen()
	if off >= int64(len(data)) {
		return 0, nil
	}
	return copy(b, data[off:]), nil
}

func (g *GenFile) WriteAt(*IOCtx, []byte, int64) (int, error) {
	return 0, errno.EACCES
}

func (g *GenFile) Truncate(int64) error { return errno.EACCES }

// CtlFile is a writable control file backed by setter/getter callbacks —
// the mechanism behind sysfs tunables such as GENESYS's coalescing knobs.
type CtlFile struct {
	Get func() []byte
	Set func([]byte) error
}

func (c *CtlFile) Size() int64 { return int64(len(c.Get())) }

func (c *CtlFile) ReadAt(io *IOCtx, b []byte, off int64) (int, error) {
	data := c.Get()
	if off >= int64(len(data)) {
		return 0, nil
	}
	return copy(b, data[off:]), nil
}

func (c *CtlFile) WriteAt(_ *IOCtx, b []byte, _ int64) (int, error) {
	if err := c.Set(b); err != nil {
		return 0, err
	}
	return len(b), nil
}

func (c *CtlFile) Truncate(int64) error { return nil }

// Framebuffer ioctl commands (Linux values).
const (
	FBIOGET_VSCREENINFO = 0x4600
	FBIOPUT_VSCREENINFO = 0x4601
)

// VScreenInfo is the variable screen info exchanged over framebuffer
// ioctls, binary-encoded little-endian in the ioctl argument buffer.
type VScreenInfo struct {
	XRes uint32
	YRes uint32
	BPP  uint32
}

// EncodedSize is the wire size of a VScreenInfo.
const vScreenInfoSize = 12

// Encode serializes the info into a 12-byte buffer.
func (v VScreenInfo) Encode() []byte {
	b := make([]byte, vScreenInfoSize)
	binary.LittleEndian.PutUint32(b[0:], v.XRes)
	binary.LittleEndian.PutUint32(b[4:], v.YRes)
	binary.LittleEndian.PutUint32(b[8:], v.BPP)
	return b
}

// DecodeVScreenInfo parses a 12-byte buffer.
func DecodeVScreenInfo(b []byte) (VScreenInfo, error) {
	if len(b) < vScreenInfoSize {
		return VScreenInfo{}, errno.EINVAL
	}
	return VScreenInfo{
		XRes: binary.LittleEndian.Uint32(b[0:]),
		YRes: binary.LittleEndian.Uint32(b[4:]),
		BPP:  binary.LittleEndian.Uint32(b[8:]),
	}, nil
}

// Framebuffer is /dev/fb0: a device node whose pixel memory can be
// written positionally, mmap'd, and configured over ioctl (§VIII-E).
type Framebuffer struct {
	info VScreenInfo
	pix  []byte
}

// NewFramebuffer returns a framebuffer with the given mode.
func NewFramebuffer(info VScreenInfo) *Framebuffer {
	fb := &Framebuffer{}
	fb.setMode(info)
	return fb
}

func (fb *Framebuffer) setMode(info VScreenInfo) {
	fb.info = info
	fb.pix = make([]byte, int(info.XRes)*int(info.YRes)*int(info.BPP/8))
}

// Info returns the current mode.
func (fb *Framebuffer) Info() VScreenInfo { return fb.info }

// Pixels returns the live pixel memory.
func (fb *Framebuffer) Pixels() []byte { return fb.pix }

// Size implements Node.
func (fb *Framebuffer) Size() int64 { return int64(len(fb.pix)) }

// ReadAt reads pixel memory.
func (fb *Framebuffer) ReadAt(io *IOCtx, b []byte, off int64) (int, error) {
	if off >= int64(len(fb.pix)) {
		return 0, nil
	}
	n := copy(b, fb.pix[off:])
	ChargeCopy(io, int64(n), DefaultCopyBytesPerNS)
	return n, nil
}

// WriteAt writes pixel memory.
func (fb *Framebuffer) WriteAt(io *IOCtx, b []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(fb.pix)) {
		return 0, errno.EINVAL
	}
	n := copy(fb.pix[off:], b)
	ChargeCopy(io, int64(n), DefaultCopyBytesPerNS)
	return n, nil
}

// Truncate is not supported on the framebuffer.
func (fb *Framebuffer) Truncate(int64) error { return errno.EINVAL }

// Ioctl implements the FBIOGET/PUT_VSCREENINFO commands. For GET, the
// reply is encoded into arg; for PUT, arg carries the new mode.
func (fb *Framebuffer) Ioctl(io *IOCtx, cmd uint64, arg []byte) (uint64, error) {
	switch cmd {
	case FBIOGET_VSCREENINFO:
		if len(arg) < vScreenInfoSize {
			return 0, errno.EINVAL
		}
		copy(arg, fb.info.Encode())
		return 0, nil
	case FBIOPUT_VSCREENINFO:
		info, err := DecodeVScreenInfo(arg)
		if err != nil {
			return 0, err
		}
		if info.XRes == 0 || info.YRes == 0 || (info.BPP != 8 && info.BPP != 16 && info.BPP != 24 && info.BPP != 32) {
			return 0, errno.EINVAL
		}
		fb.setMode(info)
		return 0, nil
	default:
		return 0, errno.ENOTTY
	}
}

// MmapBuffer exposes the pixel memory for mmap.
func (fb *Framebuffer) MmapBuffer() []byte { return fb.pix }
