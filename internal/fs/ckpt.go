package fs

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// CheckpointState walks the namespace and renders every node as a
// deterministic line: directories by sorted entry name, regular files by
// size and an fnv64a digest of their contents. Generated and control
// files (/proc, /sys) are listed by name only — their contents are
// derived views of other subsystems' state, which have their own
// sections. Reads use a zero IOCtx, so the walk charges no virtual time
// and perturbs nothing (SSD page caches fault only for a real process).
// Used as a verification section by internal/ckpt (DESIGN.md §10).
func (v *VFS) CheckpointState() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "fs v1\n")
	walkDir(&b, "/", v.root)
	return []byte(b.String())
}

func walkDir(b *strings.Builder, path string, d *Dir) {
	fmt.Fprintf(b, "dir %q entries=%d\n", path, len(d.entries))
	for _, name := range d.Names() {
		n, _ := d.Lookup(name)
		child := path + name
		switch node := n.(type) {
		case *Dir:
			walkDir(b, child+"/", node)
		case *GenFile, *CtlFile:
			fmt.Fprintf(b, "gen %q\n", child)
		case FileNode:
			fmt.Fprintf(b, "file %q size=%d digest=%016x\n",
				child, node.Size(), digestNode(node))
		default:
			fmt.Fprintf(b, "node %q size=%d\n", child, n.Size())
		}
	}
}

// digestNode hashes a file's contents via time-free reads. The loop is
// bounded by Size(), not EOF, because device nodes like /dev/zero
// synthesize unbounded reads.
func digestNode(n FileNode) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 64*1024)
	var off int64
	io := &IOCtx{}
	size := n.Size()
	for off < size {
		want := size - off
		if want > int64(len(buf)) {
			want = int64(len(buf))
		}
		r, err := n.ReadAt(io, buf[:want], off)
		if r > 0 {
			h.Write(buf[:r])
			off += int64(r)
		}
		if err != nil || r == 0 {
			break
		}
	}
	return h.Sum64()
}
