package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"genesys/internal/sim"
)

// --- Registry --------------------------------------------------------------

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	var c1, c2 sim.Counter
	c1.Add(7)
	c2.Add(3)
	r.RegisterCounter("zeta.ops", &c1)
	r.RegisterCounter("alpha.ops", &c2)
	depth := int64(5)
	r.RegisterGauge("mid.depth", func() int64 { return depth })

	names := r.Names()
	want := []string{"alpha.ops", "mid.depth", "zeta.ops"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	snap := r.Snapshot()
	if snap["zeta.ops"] != 7 || snap["alpha.ops"] != 3 || snap["mid.depth"] != 5 {
		t.Fatalf("snapshot = %v", snap)
	}

	// Registered pointers stay live: later increments are visible.
	c1.Inc()
	depth = 9
	if v, ok := r.Value("zeta.ops"); !ok || v != 8 {
		t.Fatalf("zeta.ops = %d, %v", v, ok)
	}
	if v, _ := r.Value("mid.depth"); v != 9 {
		t.Fatalf("mid.depth = %d", v)
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatal("missing metric resolved")
	}

	out := r.Render()
	if out != "alpha.ops 3\nmid.depth 9\nzeta.ops 8\n" {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var c sim.Counter
	r.RegisterCounter("x.y", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.RegisterGauge("x.y", func() int64 { return 0 })
}

// --- EventLog --------------------------------------------------------------

func TestEventLogRingBounded(t *testing.T) {
	l := NewEventLog(4)
	l.SetEnabled(true)
	for i := 0; i < 10; i++ {
		l.Instant("t", "ev", 1, i, sim.Time(i)*sim.Microsecond)
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped())
	}
	evs := l.Events()
	for i, e := range evs {
		if e.TID != 6+i { // oldest retained is event 6, oldest-first order
			t.Fatalf("event %d has tid %d", i, e.TID)
		}
	}
}

func TestEventLogDisabledAndNil(t *testing.T) {
	l := NewEventLog(8)
	l.Span("c", "n", 1, 1, 0, sim.Microsecond) // disabled: dropped silently
	if l.Len() != 0 {
		t.Fatal("disabled log recorded an event")
	}
	var nl *EventLog
	nl.Span("c", "n", 1, 1, 0, 1) // must not panic
	nl.Instant("c", "n", 1, 1, 0)
	nl.SetEnabled(true)
	nl.NameProcess(1, "x")
	if nl.Enabled() || nl.Len() != 0 || nl.Dropped() != 0 || nl.Rejected() != 0 {
		t.Fatal("nil log misbehaved")
	}
	var buf bytes.Buffer
	if err := nl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEventLogRejectsNegativeSpans(t *testing.T) {
	l := NewEventLog(8)
	l.SetEnabled(true)
	l.Span("c", "bad", 1, 1, 10*sim.Microsecond, 5*sim.Microsecond)
	if l.Len() != 0 || l.Rejected() != 1 {
		t.Fatalf("len=%d rejected=%d", l.Len(), l.Rejected())
	}
}

func TestChromeTraceExport(t *testing.T) {
	l := NewEventLog(16)
	l.SetEnabled(true)
	l.NameProcess(PIDGPU, "gpu")
	l.Span("gpu", "wave", PIDGPU, 3, 2*sim.Microsecond, 12*sim.Microsecond)
	l.Instant("gpu", "irq", PIDGPU, 3, 5*sim.Microsecond)

	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 3 { // metadata + span + instant
		t.Fatalf("got %d events", len(parsed.TraceEvents))
	}
	var sawSpan bool
	for _, e := range parsed.TraceEvents {
		if e.Dur < 0 {
			t.Fatalf("negative duration: %+v", e)
		}
		if e.Ph == "X" {
			sawSpan = true
			if e.Ts != 2 || e.Dur != 10 || e.TID != 3 {
				t.Fatalf("span fields: %+v", e)
			}
		}
	}
	if !sawSpan {
		t.Fatal("no complete-span event exported")
	}
}

// --- Histogram -------------------------------------------------------------

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	if h.N() != 1000 {
		t.Fatalf("n = %d", h.N())
	}
	if m := h.Mean(); math.Abs(m-500.5) > 1e-9 {
		t.Fatalf("mean = %f", m)
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %f/%f", h.Min(), h.Max())
	}
	for _, tc := range []struct{ p, want float64 }{
		{50, 500}, {95, 950}, {99, 990},
	} {
		got := h.Quantile(tc.p)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.06 {
			t.Fatalf("p%.0f = %f, want ~%f (rel err %.3f)", tc.p, got, tc.want, rel)
		}
	}
	if h.Quantile(0) != 1 || h.Quantile(100) != 1000 {
		t.Fatal("extreme quantiles must be exact min/max")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Add(42.5)
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := h.Quantile(p); got != 42.5 {
			t.Fatalf("p%.0f = %f, want 42.5", p, got)
		}
	}
	if h.Mean() != 42.5 || h.Min() != 42.5 || h.Max() != 42.5 {
		t.Fatal("single-sample stats")
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(50) != 0 || h.Mean() != 0 || h.N() != 0 {
		t.Fatal("empty histogram not zero")
	}
	// Negative/zero samples land in the underflow bucket without
	// corrupting anything; quantiles clamp to the exact min.
	h.Add(-3)
	h.Add(0)
	h.Add(10)
	if h.N() != 3 || h.Min() != -3 || h.Max() != 10 {
		t.Fatalf("stats: n=%d min=%f max=%f", h.N(), h.Min(), h.Max())
	}
	if q := h.Quantile(10); q < -3 || q > 10 {
		t.Fatalf("p10 = %f out of range", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 500; i++ {
		a.Add(float64(i))
	}
	for i := 501; i <= 1000; i++ {
		b.Add(float64(i))
	}
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.N() != 1000 || a.Min() != 1 || a.Max() != 1000 {
		t.Fatalf("merged: n=%d min=%f max=%f", a.N(), a.Min(), a.Max())
	}
	if got := a.Quantile(50); math.Abs(got-500)/500 > 0.06 {
		t.Fatalf("merged p50 = %f", got)
	}
	if s := a.String(); s == "" {
		t.Fatal("empty render")
	}
}

// TestChromeTraceExportAfterWrap is the wrap-around golden test: push
// more spans than the ring holds, with deliberately out-of-order start
// times, and check the export contains exactly the newest capacity
// events, oldest-first and strictly time-ordered.
func TestChromeTraceExportAfterWrap(t *testing.T) {
	l := NewEventLog(4)
	l.SetEnabled(true)
	// 7 spans; starts are shuffled relative to push order because spans
	// land in the ring at their END time. The ring keeps the last 4
	// pushed: starts 90, 40, 60, 80 us.
	starts := []sim.Time{10, 30, 20, 90, 40, 60, 80}
	for i, s := range starts {
		start := s * sim.Microsecond
		l.Span("t", "s", 1, i, start, start+5*sim.Microsecond)
	}
	if l.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", l.Dropped())
	}

	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Ph string  `json:"ph"`
			Ts float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var ts []float64
	for _, e := range parsed.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Ph != "X" {
			t.Fatalf("unexpected event kind %q", e.Ph)
		}
		ts = append(ts, e.Ts)
	}
	want := []float64{40, 60, 80, 90} // survivors, sorted oldest-first
	if len(ts) != len(want) {
		t.Fatalf("exported %d spans, want %d (%v)", len(ts), len(want), ts)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("export order %v, want %v", ts, want)
		}
	}
}
