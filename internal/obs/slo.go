package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// SLOClass is one traffic class of a service-fleet run (e.g. "udp",
// "stream"): offered vs. completed load, the latency distribution the
// clients observed, and the failure taxonomy.
type SLOClass struct {
	Offered   int64 `json:"offered"`   // requests the load generator issued
	Completed int64 `json:"completed"` // requests answered in time
	Timeouts  int64 `json:"timeouts"`  // requests that hit the client deadline
	Drops     int64 `json:"drops"`     // requests lost in the stack (no reply ever)
	Refused   int64 `json:"refused"`   // requests refused up front (connect/port errors)

	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MinNs  int64 `json:"min_ns"`
	MaxNs  int64 `json:"max_ns"`

	// Exemplars are the worst completed requests of the class: the
	// latency and the virtual-time completion instant, so the p99 row
	// links to concrete requests in the flight recorder's window.
	Exemplars []SLOExemplar `json:"exemplars,omitempty"`
}

// SLOExemplar is one retained worst-case request of a traffic class.
type SLOExemplar struct {
	LatNs int64 `json:"lat_ns"`
	AtNs  int64 `json:"at_ns"` // virtual-time completion instant
}

// SLOReport is the per-run service-level summary exported at
// /sys/genesys/slo and written next to the BENCH_*.json artifacts. All
// rates are derived, not stored, so the report stays byte-stable.
type SLOReport struct {
	Workload   string `json:"workload"`
	Seed       int64  `json:"seed"`
	Clients    int    `json:"clients"`
	Sessions   int64  `json:"sessions"` // connection-churn total (distinct client sessions)
	DurationNs int64  `json:"duration_ns"`
	GoodputRPS int64  `json:"goodput_rps"` // completed requests per simulated second

	Classes map[string]*SLOClass `json:"classes"`
}

// Class returns the named traffic class, creating it on first use.
func (s *SLOReport) Class(name string) *SLOClass {
	if s.Classes == nil {
		s.Classes = make(map[string]*SLOClass)
	}
	c, ok := s.Classes[name]
	if !ok {
		c = &SLOClass{}
		s.Classes[name] = c
	}
	return c
}

// Finalize derives the aggregate goodput from the class totals and the
// run duration.
func (s *SLOReport) Finalize() {
	var completed int64
	for _, c := range s.Classes {
		completed += c.Completed
	}
	if s.DurationNs > 0 {
		s.GoodputRPS = completed * 1e9 / s.DurationNs
	}
}

// JSON renders the report as stable, indented JSON (map keys sorted by
// encoding/json), suitable for byte-identity gates.
func (s *SLOReport) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("obs: slo marshal: " + err.Error())
	}
	return append(b, '\n')
}

// Render produces the human-readable /sys/genesys/slo view.
func (s *SLOReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s\nseed %d\nclients %d\nsessions %d\nduration_ns %d\ngoodput_rps %d\n",
		s.Workload, s.Seed, s.Clients, s.Sessions, s.DurationNs, s.GoodputRPS)
	names := make([]string, 0, len(s.Classes))
	for n := range s.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := s.Classes[n]
		fmt.Fprintf(&b, "%s.offered %d\n%s.completed %d\n%s.timeouts %d\n%s.drops %d\n%s.refused %d\n",
			n, c.Offered, n, c.Completed, n, c.Timeouts, n, c.Drops, n, c.Refused)
		fmt.Fprintf(&b, "%s.p50_ns %d\n%s.p99_ns %d\n%s.p999_ns %d\n%s.min_ns %d\n%s.max_ns %d\n",
			n, c.P50Ns, n, c.P99Ns, n, c.P999Ns, n, c.MinNs, n, c.MaxNs)
		for i, e := range c.Exemplars {
			fmt.Fprintf(&b, "%s.exemplar.%d lat_ns=%d at_ns=%d\n", n, i, e.LatNs, e.AtNs)
		}
	}
	return b.String()
}

// SetSLO installs the current run's service-level report; /sys/genesys/slo
// serves it. A nil report clears it.
func (o *Observer) SetSLO(r *SLOReport) { o.slo = r }

// SLO returns the installed report, or nil if no fleet run has produced
// one.
func (o *Observer) SLO() *SLOReport { return o.slo }
