package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"genesys/internal/sim"
)

// Flight is the always-on flight recorder: a bounded per-trace-ID
// retention ring over the causal spans the core tracer already emits,
// plus deterministic anomaly detectors that write a diagnostic Bundle
// on trigger. It runs even when the full event log is disabled — the
// EventLog tees flow-tagged spans here (SetFlight) — so an untraced
// production-style run still captures the window around a misbehavior.
//
// Everything is pure accounting in virtual time: detectors never
// schedule events, advance time, or consume randomness, so attaching a
// flight recorder leaves BENCH_<case>.json byte-identical, and for a
// fixed seed the emitted bundles are byte-identical across runs (gated
// by the double-run CI determinism check).
type Flight struct {
	cfg FlightConfig

	chains    map[uint64]*chain
	order     []uint64 // insertion (trace-claim) order, oldest first (live from orderHead)
	orderHead int      // index of the oldest live entry in order
	free      []*chain // evicted chains recycled to keep the tee allocation-free

	byNR map[int]*Histogram // running per-NR total-latency distribution

	// SLO burn-rate sliding window over recent request outcomes.
	burn      []burnSample
	burnUntil sim.Time // re-arm instant after an slo-burn trigger

	snaps []snapshotSource

	bundles    []*Bundle
	anomalies  int64
	suppressed int64
	evicted    int64
	cooldown   map[string]sim.Time // reason → earliest next-bundle instant
	lastReason string
	lastDetail string
	lastAt     sim.Time
}

// FlightConfig bounds the recorder's memory and tunes the detectors.
// All thresholds are deterministic functions of virtual-time history.
type FlightConfig struct {
	// ChainCap bounds retained trace chains; oldest are evicted.
	ChainCap int
	// BundleCap bounds bundles per run; further triggers are counted
	// as suppressed.
	BundleCap int
	// MinCalls is the per-NR sample count before the latency-outlier
	// detector arms (a running p99 over a handful of samples is noise).
	MinCalls int
	// OutlierFactor triggers latency-outlier when a call's total
	// latency exceeds OutlierFactor × the running per-NR p99.
	OutlierFactor float64
	// BurnWindow is the sliding virtual-time window for the SLO
	// burn-rate detector; BurnMinRequests outcomes must fall inside it
	// and the bad fraction must reach BurnThreshold to trigger.
	BurnWindow      sim.Time
	BurnMinRequests int
	BurnThreshold   float64
	// NeighborMargin widens the implicated chains' virtual-time window
	// when collecting neighbor chains for the bundle's filtered trace.
	NeighborMargin sim.Time
	// Cooldown is the minimum virtual-time gap between bundles for the
	// same reason; triggers inside it are counted as suppressed.
	Cooldown sim.Time
}

// DefaultFlightConfig returns the always-on defaults: a few thousand
// retained chains (~the event ring's span budget), at most 8 bundles a
// run, and detectors tuned so healthy bench/fleet runs stay silent.
func DefaultFlightConfig() FlightConfig {
	return FlightConfig{
		ChainCap:        2048,
		BundleCap:       8,
		MinCalls:        128,
		OutlierFactor:   16,
		BurnWindow:      sim.Millisecond,
		BurnMinRequests: 64,
		BurnThreshold:   0.25,
		NeighborMargin:  20 * sim.Microsecond,
		Cooldown:        250 * sim.Microsecond,
	}
}

// chain is the retained span set of one causal trace ID.
type chain struct {
	id         uint64
	events     []Event
	start, end sim.Time
	done       bool // saw FlowEnd (completion or abort terminator)
}

type burnSample struct {
	at  sim.Time
	bad bool
}

type snapshotSource struct {
	name string
	fn   func() []byte
}

// NewFlight returns a recorder with cfg (zero fields take defaults).
func NewFlight(cfg FlightConfig) *Flight {
	def := DefaultFlightConfig()
	if cfg.ChainCap <= 0 {
		cfg.ChainCap = def.ChainCap
	}
	if cfg.BundleCap <= 0 {
		cfg.BundleCap = def.BundleCap
	}
	if cfg.MinCalls <= 0 {
		cfg.MinCalls = def.MinCalls
	}
	if cfg.OutlierFactor <= 0 {
		cfg.OutlierFactor = def.OutlierFactor
	}
	if cfg.BurnWindow <= 0 {
		cfg.BurnWindow = def.BurnWindow
	}
	if cfg.BurnMinRequests <= 0 {
		cfg.BurnMinRequests = def.BurnMinRequests
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = def.BurnThreshold
	}
	if cfg.NeighborMargin <= 0 {
		cfg.NeighborMargin = def.NeighborMargin
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = def.Cooldown
	}
	return &Flight{
		cfg:      cfg,
		chains:   make(map[uint64]*chain),
		byNR:     make(map[int]*Histogram),
		cooldown: make(map[string]sim.Time),
	}
}

// addSpan receives one flow-tagged span from the EventLog tee and files
// it under its trace chain, evicting the oldest chain beyond ChainCap.
// This is the hot tee off the engine loop: evicted chains (struct and
// events backing array) go to a freelist and are reused for new traces,
// and eviction advances a head index instead of re-slicing order, so
// steady-state recording allocates nothing.
func (f *Flight) addSpan(e Event) {
	if f == nil || e.Flow == 0 {
		return
	}
	c := f.chains[e.Flow]
	if c == nil {
		if n := len(f.free); n > 0 {
			c = f.free[n-1]
			f.free[n-1] = nil
			f.free = f.free[:n-1]
			*c = chain{id: e.Flow, events: c.events[:0], start: e.Start, end: e.End}
		} else {
			c = &chain{id: e.Flow, start: e.Start, end: e.End}
		}
		f.chains[e.Flow] = c
		f.order = append(f.order, e.Flow)
		for len(f.order)-f.orderHead > f.cfg.ChainCap {
			victim := f.order[f.orderHead]
			f.orderHead++
			if vc := f.chains[victim]; vc != nil {
				f.free = append(f.free, vc)
			}
			delete(f.chains, victim)
			f.evicted++
		}
		// Compact the dead prefix once it dominates, so order's footprint
		// stays ~2×ChainCap instead of growing with every eviction.
		if f.orderHead > f.cfg.ChainCap {
			f.order = append(f.order[:0], f.order[f.orderHead:]...)
			f.orderHead = 0
		}
	}
	c.events = append(c.events, e)
	if e.Start < c.start {
		c.start = e.Start
	}
	if e.End > c.end {
		c.end = e.End
	}
	if e.FlowPhase == FlowEnd {
		c.done = true
	}
}

// AddSnapshot registers a named state renderer (critpath, metrics,
// util, ...) whose output is frozen into every bundle at its trigger
// instant.
func (f *Flight) AddSnapshot(name string, fn func() []byte) {
	if f == nil || fn == nil {
		return
	}
	f.snaps = append(f.snaps, snapshotSource{name: name, fn: fn})
}

// NoteCall feeds one completed syscall's total latency (µs) into the
// per-NR running distribution and fires the latency-outlier detector
// when it exceeds OutlierFactor × the running p99. The threshold is
// checked against the distribution *before* this sample joins it.
func (f *Flight) NoteCall(name string, nr int, trace uint64, totalUS float64, at sim.Time) {
	if f == nil {
		return
	}
	h := f.byNR[nr]
	if h == nil {
		h = NewHistogram()
		f.byNR[nr] = h
	}
	if h.N() >= f.cfg.MinCalls {
		if p99 := h.Quantile(99); p99 > 0 && totalUS > f.cfg.OutlierFactor*p99 {
			f.trigger("latency-outlier",
				fmt.Sprintf("%s trace=%d total=%.2fus > %gx running p99=%.2fus (n=%d)",
					name, trace, totalUS, f.cfg.OutlierFactor, p99, h.N()),
				at, []uint64{trace})
		}
	}
	h.Add(totalUS)
}

// NoteAbort fires the watchdog-exhaustion detector: the retransmit
// watchdog gave up on a doorbell and surfaced EINTR to the GPU.
func (f *Flight) NoteAbort(name string, trace uint64, at sim.Time) {
	if f == nil {
		return
	}
	f.trigger("watchdog-exhausted",
		fmt.Sprintf("%s trace=%d aborted EINTR after retransmit exhaustion", name, trace),
		at, []uint64{trace})
}

// NoteSurfaced fires the fault-surfaced detector: a layer's recovery
// gave up and an injected fault became visible to the application.
func (f *Flight) NoteSurfaced(at sim.Time) {
	if f == nil {
		return
	}
	f.trigger("fault-surfaced",
		"injected fault exhausted recovery and surfaced to the application",
		at, nil)
}

// NoteRequest feeds one request outcome (e.g. a fleet client's reply,
// timeout, drop, or refusal) into the SLO burn-rate window: when at
// least BurnMinRequests outcomes land inside BurnWindow and the bad
// fraction reaches BurnThreshold, the slo-burn detector fires and the
// window re-arms after one full BurnWindow.
func (f *Flight) NoteRequest(at sim.Time, ok bool) {
	if f == nil {
		return
	}
	f.burn = append(f.burn, burnSample{at: at, bad: !ok})
	lo := 0
	for lo < len(f.burn) && f.burn[lo].at < at-f.cfg.BurnWindow {
		lo++
	}
	if lo > 0 {
		f.burn = append(f.burn[:0], f.burn[lo:]...)
	}
	if at < f.burnUntil || len(f.burn) < f.cfg.BurnMinRequests {
		return
	}
	bad := 0
	for _, s := range f.burn {
		if s.bad {
			bad++
		}
	}
	frac := float64(bad) / float64(len(f.burn))
	if frac < f.cfg.BurnThreshold {
		return
	}
	f.burnUntil = at + f.cfg.BurnWindow
	f.trigger("slo-burn",
		fmt.Sprintf("%d/%d requests bad (%.1f%%) within %v window",
			bad, len(f.burn), 100*frac, f.cfg.BurnWindow),
		at, nil)
}

// recentDone returns the ids of the most recently completed chains
// (newest last), for detectors with no direct trace identity.
func (f *Flight) recentDone(n int) []uint64 {
	var out []uint64
	for i := len(f.order) - 1; i >= f.orderHead && len(out) < n; i-- {
		if c := f.chains[f.order[i]]; c != nil && c.done {
			out = append(out, c.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// trigger is the common anomaly path: count it, apply per-reason
// cooldown and the bundle cap, then freeze a Bundle.
func (f *Flight) trigger(reason, detail string, at sim.Time, traces []uint64) {
	f.anomalies++
	f.lastReason, f.lastDetail, f.lastAt = reason, detail, at
	if until, ok := f.cooldown[reason]; ok && at < until {
		f.suppressed++
		return
	}
	if len(f.bundles) >= f.cfg.BundleCap {
		f.suppressed++
		return
	}
	f.cooldown[reason] = at + f.cfg.Cooldown
	f.bundles = append(f.bundles, f.buildBundle(reason, detail, at, traces))
}

// Bundle is one frozen diagnostic artifact: the anomaly's identity, the
// implicated trace IDs plus their virtual-time neighbors, state
// snapshots at the trigger instant, and a Perfetto-loadable trace
// filtered to exactly those chains.
type Bundle struct {
	Seq       int               `json:"seq"`
	Reason    string            `json:"reason"`
	Detail    string            `json:"detail"`
	AtNs      int64             `json:"at_ns"`
	TraceIDs  []uint64          `json:"trace_ids"`
	Neighbors []uint64          `json:"neighbor_trace_ids"`
	Snapshots map[string]string `json:"snapshots"`
	Trace     chromeTrace       `json:"trace"`
}

// Name returns the bundle's canonical file name.
func (b *Bundle) Name() string {
	return fmt.Sprintf("ANOMALY_%03d_%s.json", b.Seq, b.Reason)
}

// JSON renders the bundle as indented JSON with a trailing newline —
// the byte-identical-across-runs artifact format.
func (b *Bundle) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return []byte(fmt.Sprintf("{\"error\":%q}\n", err.Error()))
	}
	return append(out, '\n')
}

func (f *Flight) buildBundle(reason, detail string, at sim.Time, traces []uint64) *Bundle {
	b := &Bundle{
		Seq:       len(f.bundles),
		Reason:    reason,
		Detail:    detail,
		AtNs:      int64(at),
		Snapshots: map[string]string{},
	}
	// Detectors without direct trace identity implicate the most
	// recently completed chains — the requests that were in flight as
	// the anomaly developed.
	if len(traces) == 0 {
		traces = f.recentDone(4)
	}
	implicated := make(map[uint64]bool, len(traces))
	var lo, hi sim.Time
	first := true
	for _, id := range traces {
		c := f.chains[id]
		if c == nil {
			continue
		}
		implicated[id] = true
		if first || c.start < lo {
			lo = c.start
		}
		if first || c.end > hi {
			hi = c.end
		}
		first = false
	}
	for _, id := range traces {
		if implicated[id] {
			b.TraceIDs = append(b.TraceIDs, id)
		}
	}
	sort.Slice(b.TraceIDs, func(i, j int) bool { return b.TraceIDs[i] < b.TraceIDs[j] })
	// Neighbors: retained chains overlapping the implicated window,
	// widened by the margin — the concurrent activity that shaped the
	// anomaly.
	if !first {
		lo -= f.cfg.NeighborMargin
		hi += f.cfg.NeighborMargin
		for _, id := range f.order[f.orderHead:] {
			c := f.chains[id]
			if c == nil || implicated[id] {
				continue
			}
			if c.end >= lo && c.start <= hi {
				b.Neighbors = append(b.Neighbors, id)
			}
		}
		sort.Slice(b.Neighbors, func(i, j int) bool { return b.Neighbors[i] < b.Neighbors[j] })
	}
	for _, s := range f.snaps {
		b.Snapshots[s.name] = string(s.fn())
	}
	var evs []Event
	include := func(ids []uint64) {
		for _, id := range ids {
			if c := f.chains[id]; c != nil {
				evs = append(evs, c.events...)
			}
		}
	}
	include(b.TraceIDs)
	include(b.Neighbors)
	b.Trace.DisplayTimeUnit = "ms"
	b.Trace.TraceEvents = appendChromeEvents(nil, evs)
	if b.Trace.TraceEvents == nil {
		b.Trace.TraceEvents = []chromeEvent{}
	}
	return b
}

// Bundles returns the frozen bundles in trigger order.
func (f *Flight) Bundles() []*Bundle {
	if f == nil {
		return nil
	}
	return f.bundles
}

// Anomalies returns the total detector triggers (including suppressed).
func (f *Flight) Anomalies() int64 {
	if f == nil {
		return 0
	}
	return f.anomalies
}

// BundleCount returns how many bundles were frozen.
func (f *Flight) BundleCount() int {
	if f == nil {
		return 0
	}
	return len(f.bundles)
}

// Suppressed returns triggers dropped by cooldown or the bundle cap.
func (f *Flight) Suppressed() int64 {
	if f == nil {
		return 0
	}
	return f.suppressed
}

// Chains returns the number of retained trace chains.
func (f *Flight) Chains() int {
	if f == nil {
		return 0
	}
	return len(f.chains)
}

// Evicted returns how many chains were evicted by the retention cap.
func (f *Flight) Evicted() int64 {
	if f == nil {
		return 0
	}
	return f.evicted
}

// Last returns the most recent trigger's reason, detail and instant
// (empty reason when no detector has fired).
func (f *Flight) Last() (reason, detail string, at sim.Time) {
	if f == nil {
		return "", "", 0
	}
	return f.lastReason, f.lastDetail, f.lastAt
}

// BurnState returns the burn window's current occupancy and bad count.
func (f *Flight) BurnState() (n, bad int) {
	if f == nil {
		return 0, 0
	}
	for _, s := range f.burn {
		if s.bad {
			bad++
		}
	}
	return len(f.burn), bad
}

// Render returns the /sys/genesys/flight view: recorder health, the
// last trigger, and one line per frozen bundle.
func (f *Flight) Render() string {
	var sb strings.Builder
	sb.WriteString("flight recorder\n")
	if f == nil {
		sb.WriteString("  (not attached)\n")
		return sb.String()
	}
	n, bad := f.BurnState()
	fmt.Fprintf(&sb, "  chains retained %d (cap %d, evicted %d)\n",
		len(f.chains), f.cfg.ChainCap, f.evicted)
	fmt.Fprintf(&sb, "  anomalies %d  bundles %d/%d  suppressed %d\n",
		f.anomalies, len(f.bundles), f.cfg.BundleCap, f.suppressed)
	fmt.Fprintf(&sb, "  burn window %d requests, %d bad\n", n, bad)
	if f.lastReason != "" {
		fmt.Fprintf(&sb, "  last trigger %s at %v: %s\n", f.lastReason, f.lastAt, f.lastDetail)
	}
	for _, b := range f.bundles {
		fmt.Fprintf(&sb, "  %s at=%v traces=%d neighbors=%d\n",
			b.Name(), sim.Time(b.AtNs), len(b.TraceIDs), len(b.Neighbors))
	}
	return sb.String()
}
