package obs

import (
	"encoding/json"
	"io"
	"sort"

	"genesys/internal/sim"
)

// Synthetic process IDs grouping event-log threads in trace viewers:
// GPU wavefront activity, OS kernel workers, and GENESYS syscall slot
// lifecycles each render as one "process" row group.
const (
	PIDGPU      = 1
	PIDKernel   = 2
	PIDSyscalls = 3
)

// EventKind distinguishes spans (duration events) from instants.
type EventKind uint8

const (
	KindSpan EventKind = iota
	KindInstant
)

// Event is one structured event in virtual time. For spans, [Start, End]
// is the duration; instants use only Start.
type Event struct {
	Kind EventKind
	Cat  string // category, e.g. "gpu", "kernel", "syscall"
	Name string
	PID  int // synthetic process ID (PIDGPU, ...)
	TID  int // thread within the group: HW slot, worker ID, slot ID
	Start, End sim.Time
}

// Dur returns the span duration (0 for instants).
func (e Event) Dur() sim.Time {
	if e.Kind != KindSpan {
		return 0
	}
	return e.End - e.Start
}

// DefaultEventCap is the default ring-buffer capacity.
const DefaultEventCap = 1 << 16

// EventLog is a bounded ring buffer of structured events. It starts
// disabled so instrumented hot paths cost nothing until a consumer (the
// -trace flag, a test) opts in; when full, the oldest events are
// overwritten and counted as dropped. All methods are safe on a nil
// receiver, so call sites need no guards.
type EventLog struct {
	enabled bool
	buf     []Event
	head    int   // next write position
	total   int64 // events ever recorded
	rejected int64 // spans refused for negative duration

	procNames map[int]string
}

// NewEventLog returns a disabled log holding up to capacity events
// (DefaultEventCap if capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{
		buf:       make([]Event, 0, capacity),
		procNames: make(map[int]string),
	}
}

// SetEnabled switches recording on or off.
func (l *EventLog) SetEnabled(on bool) {
	if l != nil {
		l.enabled = on
	}
}

// Enabled reports whether the log is recording.
func (l *EventLog) Enabled() bool { return l != nil && l.enabled }

// NameProcess labels a synthetic process ID in exported traces.
func (l *EventLog) NameProcess(pid int, name string) {
	if l != nil {
		l.procNames[pid] = name
	}
}

func (l *EventLog) push(e Event) {
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.head] = e
	l.head = (l.head + 1) % len(l.buf)
}

// Span records a [start, end] duration event. Spans whose end precedes
// their start are rejected (and counted) rather than corrupting the
// exported trace.
func (l *EventLog) Span(cat, name string, pid, tid int, start, end sim.Time) {
	if !l.Enabled() {
		return
	}
	if end < start {
		l.rejected++
		return
	}
	l.push(Event{Kind: KindSpan, Cat: cat, Name: name, PID: pid, TID: tid, Start: start, End: end})
}

// Instant records a point event at time t.
func (l *EventLog) Instant(cat, name string, pid, tid int, t sim.Time) {
	if !l.Enabled() {
		return
	}
	l.push(Event{Kind: KindInstant, Cat: cat, Name: name, PID: pid, TID: tid, Start: t})
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.buf)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.total - int64(len(l.buf))
}

// Rejected returns how many spans were refused for negative duration.
func (l *EventLog) Rejected() int64 {
	if l == nil {
		return 0
	}
	return l.rejected
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.head:]...)
	out = append(out, l.buf[:l.head]...)
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (ph "X" = complete span, "i" = instant, "M" = metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the retained events as Chrome trace-event
// JSON, loadable in chrome://tracing and Perfetto. Timestamps are
// virtual-time microseconds.
func (l *EventLog) WriteChromeTrace(w io.Writer) error {
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	if l != nil {
		pids := make([]int, 0, len(l.procNames))
		for pid := range l.procNames {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": l.procNames[pid]},
			})
		}
		for _, e := range l.Events() {
			ce := chromeEvent{
				Name: e.Name, Cat: e.Cat, Ts: e.Start.Micro(),
				PID: e.PID, TID: e.TID,
			}
			switch e.Kind {
			case KindSpan:
				ce.Ph = "X"
				ce.Dur = e.Dur().Micro()
			default:
				ce.Ph = "i"
				ce.S = "t"
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
