package obs

import (
	"encoding/json"
	"io"
	"sort"

	"genesys/internal/sim"
)

// Synthetic process IDs grouping event-log threads in trace viewers.
// The first three existed from the start: GPU wavefront activity, OS
// kernel workers, and GENESYS syscall slot lifecycles. The rest split
// the syscall life cycle across the hardware/software layers it crosses
// — interrupt delivery, the kernel workqueue, the storage and network
// back-ends — plus a process for utilization counter tracks, so one
// traced call renders as a flow-linked arrow chain across "processes".
const (
	PIDGPU       = 1
	PIDKernel    = 2
	PIDSyscalls  = 3
	PIDIRQ       = 4
	PIDWorkqueue = 5
	PIDBlockdev  = 6
	PIDNetstack  = 7
	PIDUtil      = 8
)

// EventKind distinguishes spans (duration events) from instants and
// counter samples.
type EventKind uint8

const (
	KindSpan EventKind = iota
	KindInstant
	KindCounter
)

// FlowPhase marks an event's position in a causal flow chain (Chrome
// trace flow events "s"/"t"/"f"). Events sharing a non-zero Flow ID and
// carrying a FlowPhase are connected by arrows in trace viewers.
type FlowPhase uint8

const (
	FlowNone FlowPhase = iota
	FlowStart
	FlowStep
	FlowEnd
)

// Event is one structured event in virtual time. For spans, [Start, End]
// is the duration; instants use only Start; counters carry Value at
// Start. A non-zero Flow links the event into a causal chain labelled
// FlowName.
type Event struct {
	Kind       EventKind
	Cat        string // category, e.g. "gpu", "kernel", "syscall"
	Name       string
	PID        int // synthetic process ID (PIDGPU, ...)
	TID        int // thread within the group: HW slot, worker ID, slot ID
	Start, End sim.Time

	// Flow is the causal trace ID this event belongs to (0 = none);
	// FlowPhase is its position in the chain and FlowName the chain's
	// label (the syscall name).
	Flow      uint64
	FlowPhase FlowPhase
	FlowName  string

	// Value is the sample of a KindCounter event.
	Value float64
}

// Dur returns the span duration (0 for instants).
func (e Event) Dur() sim.Time {
	if e.Kind != KindSpan {
		return 0
	}
	return e.End - e.Start
}

// DefaultEventCap is the default ring-buffer capacity.
const DefaultEventCap = 1 << 16

// EventLog is a bounded ring buffer of structured events. It starts
// disabled so instrumented hot paths cost nothing until a consumer (the
// -trace flag, a test) opts in; when full, the oldest events are
// overwritten and counted as dropped. All methods are safe on a nil
// receiver, so call sites need no guards.
type EventLog struct {
	enabled  bool
	buf      []Event
	head     int   // next write position
	total    int64 // events ever recorded
	rejected int64 // spans refused for negative duration

	procNames   map[int]string
	threadNames map[[2]int]string // (pid, tid) → name

	// flight, when set, receives every flow-tagged span — even while the
	// ring itself is disabled — so the always-on flight recorder sees
	// causal chains without the cost of full event retention.
	flight *Flight
}

// NewEventLog returns a disabled log holding up to capacity events
// (DefaultEventCap if capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{
		buf:         make([]Event, 0, capacity),
		procNames:   make(map[int]string),
		threadNames: make(map[[2]int]string),
	}
}

// SetEnabled switches recording on or off.
func (l *EventLog) SetEnabled(on bool) {
	if l != nil {
		l.enabled = on
	}
}

// Enabled reports whether the log is recording.
func (l *EventLog) Enabled() bool { return l != nil && l.enabled }

// SetFlight attaches a flight recorder; flow-tagged spans are teed to it
// from then on, independent of the ring's enabled state.
func (l *EventLog) SetFlight(f *Flight) {
	if l != nil {
		l.flight = f
	}
}

// CaptureActive reports whether span emission has any consumer — the
// ring itself or an attached flight recorder. Instrumented paths that
// build spans conditionally should gate on this, not Enabled, so the
// always-on flight recorder keeps seeing causal chains in untraced runs.
func (l *EventLog) CaptureActive() bool {
	return l != nil && (l.enabled || l.flight != nil)
}

// SetCapacity resizes the ring to hold up to n events (DefaultEventCap
// if n <= 0), preserving the newest retained events that fit. Intended
// for configuration before a run; resizing mid-run keeps the most
// recent window.
func (l *EventLog) SetCapacity(n int) {
	if l == nil {
		return
	}
	if n <= 0 {
		n = DefaultEventCap
	}
	if n == cap(l.buf) {
		return
	}
	evs := l.Events() // oldest-first
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	l.buf = make([]Event, len(evs), n)
	copy(l.buf, evs)
	l.head = 0 // if already full, the next overwrite hits the oldest event
}

// Capacity returns the ring's event capacity.
func (l *EventLog) Capacity() int {
	if l == nil {
		return 0
	}
	return cap(l.buf)
}

// NameProcess labels a synthetic process ID in exported traces.
func (l *EventLog) NameProcess(pid int, name string) {
	if l != nil {
		l.procNames[pid] = name
	}
}

// NameThread labels one thread of a synthetic process in exported
// traces (e.g. "kworker/3" or "cu2/wave17").
func (l *EventLog) NameThread(pid, tid int, name string) {
	if l != nil {
		l.threadNames[[2]int{pid, tid}] = name
	}
}

func (l *EventLog) push(e Event) {
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.head] = e
	l.head = (l.head + 1) % len(l.buf)
}

// Span records a [start, end] duration event. Spans whose end precedes
// their start are rejected (and counted) rather than corrupting the
// exported trace.
func (l *EventLog) Span(cat, name string, pid, tid int, start, end sim.Time) {
	l.FlowSpan(cat, name, pid, tid, start, end, 0, FlowNone, "")
}

// FlowSpan is Span with the event linked into causal flow chain `flow`
// (0 disables linking) at position fp; flowName labels the chain.
func (l *EventLog) FlowSpan(cat, name string, pid, tid int, start, end sim.Time,
	flow uint64, fp FlowPhase, flowName string) {
	if !l.CaptureActive() {
		return
	}
	if end < start {
		if l.enabled {
			l.rejected++
		}
		return
	}
	e := Event{Kind: KindSpan, Cat: cat, Name: name, PID: pid, TID: tid,
		Start: start, End: end, Flow: flow, FlowPhase: fp, FlowName: flowName}
	if flow != 0 {
		l.flight.addSpan(e)
	}
	if l.enabled {
		l.push(e)
	}
}

// Instant records a point event at time t.
func (l *EventLog) Instant(cat, name string, pid, tid int, t sim.Time) {
	if !l.Enabled() {
		return
	}
	l.push(Event{Kind: KindInstant, Cat: cat, Name: name, PID: pid, TID: tid, Start: t})
}

// Counter records a counter-track sample (value v at time t); exported
// as a Chrome "C" event, which trace viewers render as a filled
// timeline.
func (l *EventLog) Counter(cat, name string, pid, tid int, t sim.Time, v float64) {
	if !l.Enabled() {
		return
	}
	l.push(Event{Kind: KindCounter, Cat: cat, Name: name, PID: pid, TID: tid,
		Start: t, Value: v})
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.buf)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.total - int64(len(l.buf))
}

// Rejected returns how many spans were refused for negative duration.
func (l *EventLog) Rejected() int64 {
	if l == nil {
		return 0
	}
	return l.rejected
}

// Events returns the retained events in push order. Spans are pushed at
// their end time but carry their start time, so push order is NOT
// start-time order; WriteChromeTrace sorts for export.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.head:]...)
	out = append(out, l.buf[:l.head]...)
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (ph "X" = complete span, "i" = instant, "C" = counter, "M" =
// metadata, "s"/"t"/"f" = flow start/step/end).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the retained events as Chrome trace-event
// JSON, loadable in chrome://tracing and Perfetto. Timestamps are
// virtual-time microseconds. Events are emitted oldest-first (sorted by
// start time — the ring holds spans in end-time push order), after the
// process/thread naming metadata. Flow-linked spans additionally emit
// the "s"/"t"/"f" flow events that draw the causal arrow chain.
func (l *EventLog) WriteChromeTrace(w io.Writer) error {
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	if l != nil {
		out.TraceEvents = append(out.TraceEvents, l.metaEvents()...)
		out.TraceEvents = appendChromeEvents(out.TraceEvents, l.Events())
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// metaEvents returns the process/thread naming metadata as Chrome "M"
// events in deterministic (pid, tid) order.
func (l *EventLog) metaEvents() []chromeEvent {
	if l == nil {
		return nil
	}
	var out []chromeEvent
	pids := make([]int, 0, len(l.procNames))
	for pid := range l.procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": l.procNames[pid]},
		})
	}
	tkeys := make([][2]int, 0, len(l.threadNames))
	for k := range l.threadNames {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool {
		if tkeys[i][0] != tkeys[j][0] {
			return tkeys[i][0] < tkeys[j][0]
		}
		return tkeys[i][1] < tkeys[j][1]
	})
	for _, k := range tkeys {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: k[0], TID: k[1],
			Args: map[string]any{"name": l.threadNames[k]},
		})
	}
	return out
}

// appendChromeEvents converts events to Chrome trace entries (sorting a
// copy by start time first) and appends them to dst. Flow-linked spans
// additionally emit their "s"/"t"/"f" flow event.
func appendChromeEvents(dst []chromeEvent, events []Event) []chromeEvent {
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].End < evs[j].End
	})
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Ts: e.Start.Micro(),
			PID: e.PID, TID: e.TID,
		}
		switch e.Kind {
		case KindSpan:
			ce.Ph = "X"
			ce.Dur = e.Dur().Micro()
		case KindCounter:
			ce.Ph = "C"
			ce.Args = map[string]any{"value": e.Value}
		default:
			ce.Ph = "i"
			ce.S = "t"
		}
		dst = append(dst, ce)
		if e.Flow != 0 && e.FlowPhase != FlowNone {
			fe := chromeEvent{
				Name: e.FlowName, Cat: "flow", Ts: e.Start.Micro(),
				PID: e.PID, TID: e.TID, ID: e.Flow,
			}
			switch e.FlowPhase {
			case FlowStart:
				fe.Ph = "s"
			case FlowStep:
				fe.Ph = "t"
			default:
				fe.Ph = "f"
				fe.BP = "e"
				fe.Ts = e.End.Micro()
			}
			dst = append(dst, fe)
		}
	}
	return dst
}
