package obs

import (
	"strings"
	"testing"

	"genesys/internal/sim"
)

// span builds one flow-tagged span event for flight tests.
func span(flow uint64, phase FlowPhase, start, end sim.Time) Event {
	return Event{Kind: KindSpan, Cat: "syscall", Name: "phase", PID: PIDSyscalls,
		TID: 1, Start: start, End: end, Flow: flow, FlowPhase: phase, FlowName: "pread"}
}

func TestFlightChainRetentionAndEviction(t *testing.T) {
	f := NewFlight(FlightConfig{ChainCap: 2})
	f.addSpan(span(1, FlowStart, 0, 10))
	f.addSpan(span(1, FlowEnd, 10, 20))
	f.addSpan(span(2, FlowStart, 5, 15))
	if f.Chains() != 2 || f.Evicted() != 0 {
		t.Fatalf("chains=%d evicted=%d", f.Chains(), f.Evicted())
	}
	// Third chain evicts the oldest (trace 1).
	f.addSpan(span(3, FlowStart, 20, 30))
	if f.Chains() != 2 || f.Evicted() != 1 {
		t.Fatalf("after eviction: chains=%d evicted=%d", f.Chains(), f.Evicted())
	}
	if f.chains[1] != nil || f.chains[2] == nil || f.chains[3] == nil {
		t.Fatal("evicted the wrong chain")
	}
}

func TestFlightLatencyOutlierDetector(t *testing.T) {
	f := NewFlight(FlightConfig{MinCalls: 4, OutlierFactor: 10})
	f.addSpan(span(99, FlowStart, 0, 10))
	f.addSpan(span(99, FlowEnd, 10, 25*1000))
	// Not armed until MinCalls samples exist; these are all ~25us.
	for i := 0; i < 4; i++ {
		f.NoteCall("pread", 17, uint64(i), 25, sim.Time(i)*sim.Microsecond)
	}
	if f.Anomalies() != 0 {
		t.Fatalf("fired while arming: %d", f.Anomalies())
	}
	// Exactly factor × p99 (10 × 25 = 250) does not trigger — strictly
	// greater is required — but the sample joins the distribution and
	// lifts the running p99 to 250 (threshold now 2500).
	f.NoteCall("pread", 17, 98, 250, 100*sim.Microsecond)
	if f.Anomalies() != 0 {
		t.Fatalf("fired at threshold boundary: %d", f.Anomalies())
	}
	f.NoteCall("pread", 17, 99, 2600, 200*sim.Microsecond)
	if f.Anomalies() != 1 || f.BundleCount() != 1 {
		t.Fatalf("anomalies=%d bundles=%d", f.Anomalies(), f.BundleCount())
	}
	b := f.Bundles()[0]
	if b.Reason != "latency-outlier" || len(b.TraceIDs) != 1 || b.TraceIDs[0] != 99 {
		t.Fatalf("bundle: reason=%s traces=%v", b.Reason, b.TraceIDs)
	}
	if !strings.Contains(b.Detail, "pread trace=99") {
		t.Fatalf("detail: %s", b.Detail)
	}
}

func TestFlightBurnRateDetector(t *testing.T) {
	f := NewFlight(FlightConfig{BurnWindow: sim.Millisecond,
		BurnMinRequests: 10, BurnThreshold: 0.5})
	at := func(i int) sim.Time { return sim.Time(i) * 10 * sim.Microsecond }
	// 9 outcomes (below min) — never fires even though all are bad.
	for i := 0; i < 9; i++ {
		f.NoteRequest(at(i), false)
	}
	if f.Anomalies() != 0 {
		t.Fatalf("fired under BurnMinRequests: %d", f.Anomalies())
	}
	// A 10th good outcome: window holds 10, 9 bad = 90% ≥ 50%.
	f.NoteRequest(at(9), true)
	if f.Anomalies() != 1 {
		t.Fatalf("burn did not fire: %d", f.Anomalies())
	}
	if _, detail, _ := f.Last(); !strings.Contains(detail, "9/10 requests bad") {
		t.Fatalf("detail: %s", detail)
	}
	// Re-armed only after a full window: more bad outcomes inside the
	// re-arm window are accounted but do not trigger again.
	f.NoteRequest(at(10), false)
	if f.Anomalies() != 1 {
		t.Fatalf("burn re-fired inside re-arm window: %d", f.Anomalies())
	}
	// Old samples slide out of the window.
	f.NoteRequest(at(9)+2*sim.Millisecond, true)
	if n, bad := f.BurnState(); n != 1 || bad != 0 {
		t.Fatalf("window did not slide: n=%d bad=%d", n, bad)
	}
}

func TestFlightCooldownAndBundleCap(t *testing.T) {
	f := NewFlight(FlightConfig{BundleCap: 2, Cooldown: 100 * sim.Microsecond})
	f.NoteAbort("pread", 1, 10*sim.Microsecond)
	f.NoteAbort("pread", 2, 20*sim.Microsecond) // inside cooldown
	if f.BundleCount() != 1 || f.Suppressed() != 1 {
		t.Fatalf("bundles=%d suppressed=%d", f.BundleCount(), f.Suppressed())
	}
	f.NoteAbort("pread", 3, 200*sim.Microsecond) // past cooldown
	f.NoteAbort("pread", 4, 500*sim.Microsecond) // past cooldown but capped
	if f.BundleCount() != 2 || f.Suppressed() != 2 || f.Anomalies() != 4 {
		t.Fatalf("bundles=%d suppressed=%d anomalies=%d",
			f.BundleCount(), f.Suppressed(), f.Anomalies())
	}
}

func TestFlightBundleFiltersTraceAndNeighbors(t *testing.T) {
	f := NewFlight(FlightConfig{NeighborMargin: 5 * sim.Microsecond})
	us := sim.Microsecond
	// Implicated chain 7 spans [100us, 140us].
	f.addSpan(span(7, FlowStart, 100*us, 120*us))
	f.addSpan(span(7, FlowEnd, 120*us, 140*us))
	// Chain 8 overlaps the widened window; chain 9 is far away.
	f.addSpan(span(8, FlowStart, 140*us, 160*us))
	f.addSpan(span(9, FlowStart, 300*us, 320*us))
	f.AddSnapshot("state", func() []byte { return []byte("frozen") })
	f.NoteAbort("pread", 7, 140*us)

	b := f.Bundles()[0]
	if len(b.TraceIDs) != 1 || b.TraceIDs[0] != 7 {
		t.Fatalf("traces: %v", b.TraceIDs)
	}
	if len(b.Neighbors) != 1 || b.Neighbors[0] != 8 {
		t.Fatalf("neighbors: %v", b.Neighbors)
	}
	if b.Snapshots["state"] != "frozen" {
		t.Fatalf("snapshots: %v", b.Snapshots)
	}
	// The filtered trace holds exactly the implicated + neighbor flow
	// chains, never chain 9's.
	if len(b.Trace.TraceEvents) == 0 {
		t.Fatal("empty filtered trace")
	}
	flows := map[uint64]bool{}
	for _, e := range b.Trace.TraceEvents {
		if e.ID != 0 {
			flows[e.ID] = true
		}
	}
	if !flows[7] || !flows[8] || flows[9] {
		t.Fatalf("filtered trace flows wrong: %v\n%s", flows, b.JSON())
	}
	if b.Name() != "ANOMALY_000_watchdog-exhausted.json" {
		t.Fatalf("name: %s", b.Name())
	}
}

func TestFlightDetectorsWithoutTracesImplicateRecentDone(t *testing.T) {
	f := NewFlight(FlightConfig{})
	us := sim.Microsecond
	for id := uint64(1); id <= 6; id++ {
		f.addSpan(span(id, FlowStart, sim.Time(id)*10*us, sim.Time(id)*10*us+5*us))
		if id != 6 { // chain 6 stays in flight
			f.addSpan(span(id, FlowEnd, sim.Time(id)*10*us+5*us, sim.Time(id)*10*us+8*us))
		}
	}
	f.NoteSurfaced(100 * us)
	b := f.Bundles()[0]
	// The 4 most recently *completed* chains: 2..5 (6 is not done).
	want := []uint64{2, 3, 4, 5}
	if len(b.TraceIDs) != len(want) {
		t.Fatalf("traces: %v", b.TraceIDs)
	}
	for i, id := range want {
		if b.TraceIDs[i] != id {
			t.Fatalf("traces: %v want %v", b.TraceIDs, want)
		}
	}
}

func TestFlightTeeWorksWithRingDisabled(t *testing.T) {
	l := NewEventLog(8)
	f := NewFlight(FlightConfig{})
	l.SetFlight(f)
	if !l.CaptureActive() {
		t.Fatal("capture should be active with a flight attached")
	}
	l.FlowSpan("syscall", "queueing", PIDSyscalls, 1, 0, 10, 42, FlowStart, "pread")
	l.FlowSpan("syscall", "completion", PIDSyscalls, 1, 10, 20, 42, FlowEnd, "pread")
	if f.Chains() != 1 || !f.chains[42].done {
		t.Fatalf("tee missed spans: chains=%d", f.Chains())
	}
	// Ring itself stayed disabled: no retained events, no drops.
	if l.Len() != 0 {
		t.Fatalf("disabled ring retained %d events", l.Len())
	}
	// Negative-duration spans are refused without perturbing the
	// disabled ring's rejected counter (BENCH byte-identity).
	l.FlowSpan("syscall", "bogus", PIDSyscalls, 1, 20, 10, 43, FlowStart, "pread")
	if f.Chains() != 1 || l.Rejected() != 0 {
		t.Fatalf("negative span leaked: chains=%d rejected=%d", f.Chains(), l.Rejected())
	}
}

func TestFlightRenderAndNilSafety(t *testing.T) {
	var nilF *Flight
	if nilF.Anomalies() != 0 || nilF.BundleCount() != 0 || nilF.Chains() != 0 {
		t.Fatal("nil accessors")
	}
	nilF.NoteCall("x", 1, 1, 1, 0)
	nilF.NoteAbort("x", 1, 0)
	nilF.NoteSurfaced(0)
	nilF.NoteRequest(0, true)
	if !strings.Contains(nilF.Render(), "not attached") {
		t.Fatal("nil render")
	}
	f := NewFlight(FlightConfig{})
	f.NoteAbort("pread", 1, 50*sim.Microsecond)
	out := f.Render()
	for _, want := range []string{"anomalies 1", "last trigger watchdog-exhausted",
		"ANOMALY_000_watchdog-exhausted.json"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestEventLogSetCapacity(t *testing.T) {
	l := NewEventLog(4)
	l.SetEnabled(true)
	for i := 0; i < 4; i++ {
		l.Span("t", "e", 1, 1, sim.Time(i), sim.Time(i)+1)
	}
	l.SetCapacity(2)
	if l.Capacity() != 2 || l.Len() != 2 {
		t.Fatalf("cap=%d len=%d", l.Capacity(), l.Len())
	}
	// The newest two events survive.
	evs := l.Events()
	if evs[0].Start != 2 || evs[1].Start != 3 {
		t.Fatalf("kept wrong events: %+v", evs)
	}
	// Growing keeps everything and continues accepting.
	l.SetCapacity(8)
	l.Span("t", "e", 1, 1, 10, 11)
	if l.Capacity() != 8 || l.Len() != 3 {
		t.Fatalf("after grow: cap=%d len=%d", l.Capacity(), l.Len())
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram()
	h.AddEx(10, 1, 100)
	h.AddEx(50, 2, 200)
	h.AddEx(30, 3, 300)
	h.AddEx(20, 4, 400)
	ex := h.Exemplars()
	if len(ex) != ExemplarK {
		t.Fatalf("kept %d exemplars", len(ex))
	}
	// Top-K by value, descending: 50, 30, 20.
	if ex[0].Value != 50 || ex[1].Value != 30 || ex[2].Value != 20 {
		t.Fatalf("exemplars: %+v", ex)
	}
	if ex[0].Trace != 2 || ex[0].At != 200 {
		t.Fatalf("exemplar identity lost: %+v", ex[0])
	}
	// Ties keep the earliest sample (strictly-greater insertion), so
	// renders stay byte-stable across equal-latency calls.
	h.AddEx(50, 9, 900)
	if ex = h.Exemplars(); ex[0].Trace != 2 {
		t.Fatalf("tie displaced earlier exemplar: %+v", ex[0])
	}
	// Merge carries exemplars across histograms.
	other := NewHistogram()
	other.AddEx(99, 7, 700)
	h.Merge(other)
	if ex = h.Exemplars(); ex[0].Value != 99 || ex[0].Trace != 7 {
		t.Fatalf("merge lost exemplar: %+v", ex)
	}
	if s := h.String(); !strings.Contains(s, "min=") || !strings.Contains(s, "max=") {
		t.Fatalf("render lacks min/max: %s", s)
	}
}
