// Package obs is the observability layer of the simulated machine: a
// metrics registry every subsystem publishes named counters and gauges
// into (rendered at /sys/genesys/metrics), a structured event log of
// virtual-time spans and instants exportable as Chrome trace-event JSON
// (openable in chrome://tracing or Perfetto), and log-bucketed latency
// histograms with percentile queries.
//
// The paper's evidence is latency breakdowns and counter trajectories
// (Figure 2's five-step cost split, Table IV, the Figure 9/14 knees);
// this package is what makes those measurements uniform, exportable and
// checkable instead of ad-hoc per-package fields.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"genesys/internal/sim"
)

// Gauge reports an instantaneous value (queue depth, outstanding calls,
// free pages) each time the registry is snapshot.
type Gauge func() int64

// Registry is a machine-wide catalogue of named statistics. Names are
// dot-separated "<subsystem>.<stat>" (e.g. "genesys.slot_conflicts");
// registering a duplicate name panics, since it would silently shadow a
// statistic.
type Registry struct {
	counters map[string]*sim.Counter
	gauges   map[string]Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*sim.Counter),
		gauges:   make(map[string]Gauge),
	}
}

func (r *Registry) checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	if _, ok := r.counters[name]; ok {
		panic("obs: duplicate metric " + name)
	}
	if _, ok := r.gauges[name]; ok {
		panic("obs: duplicate metric " + name)
	}
}

// RegisterCounter publishes a subsystem counter under name. The registry
// keeps the pointer, so later increments are visible in snapshots.
func (r *Registry) RegisterCounter(name string, c *sim.Counter) {
	r.checkName(name)
	if c == nil {
		panic("obs: nil counter " + name)
	}
	r.counters[name] = c
}

// RegisterGauge publishes an instantaneous statistic under name.
func (r *Registry) RegisterGauge(name string, g Gauge) {
	r.checkName(name)
	if g == nil {
		panic("obs: nil gauge " + name)
	}
	r.gauges[name] = g
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Value returns the current value of one metric.
func (r *Registry) Value(name string) (int64, bool) {
	if c, ok := r.counters[name]; ok {
		return c.Value(), true
	}
	if g, ok := r.gauges[name]; ok {
		return g(), true
	}
	return 0, false
}

// Snapshot returns the current value of every registered metric.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g()
	}
	return out
}

// Render produces the sorted "name value" text served at
// /sys/genesys/metrics.
func (r *Registry) Render() string {
	snap := r.Snapshot()
	var b strings.Builder
	for _, n := range r.Names() {
		fmt.Fprintf(&b, "%s %d\n", n, snap[n])
	}
	return b.String()
}

// Observer bundles the per-machine observability state: the metrics
// registry, the event log and the utilization-track registry.
// platform.New creates one per Machine.
type Observer struct {
	Metrics *Registry
	Events  *EventLog
	Util    *Util
	Flight  *Flight // always-on flight recorder (flight.go)

	slo *SLOReport // current run's service-level report (slo.go)
}

// New returns an Observer with an empty registry, a disabled event log
// of the default capacity, an empty utilization registry wired to
// mirror counter samples into the event log, and an always-on flight
// recorder teed off the event log's flow-tagged spans.
func New() *Observer {
	o := &Observer{
		Metrics: NewRegistry(),
		Events:  NewEventLog(0),
		Util:    NewUtil(0),
		Flight:  NewFlight(FlightConfig{}),
	}
	o.Util.SetEventLog(o.Events)
	o.Events.SetFlight(o.Flight)
	return o
}
