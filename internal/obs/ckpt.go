package obs

// CheckpointState renders every registered metric as sorted "name
// value" text — the same rendering served at /sys/genesys/metrics.
// Because the registry holds live counter pointers and gauges, this is
// by construction the union of every subsystem's externally-visible
// statistics at the instant of capture; internal/ckpt uses it as a
// cross-cutting verification section (DESIGN.md §10).
func (r *Registry) CheckpointState() []byte {
	return []byte(r.Render())
}
