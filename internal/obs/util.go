package obs

import (
	"fmt"
	"strings"

	"genesys/internal/sim"
)

// DefaultUtilBin is the bin width of utilization time-series tracks.
const DefaultUtilBin = sim.Millisecond

// UtilTrack is one virtual-time occupancy timeline (busy CPU cores,
// busy OS workers, resident GPU waves, ...). Call sites report +1/-1
// transitions; the track integrates occupancy over time, bins it into a
// Series for timeline rendering, and — when the event log is enabled —
// emits Chrome counter samples so the timeline shows up as a filled
// track under the "utilization" process in trace viewers.
//
// Tracks are pure accounting: they never advance virtual time, so
// attaching them cannot perturb a simulation. All methods are safe on a
// nil receiver.
type UtilTrack struct {
	name string
	cap  int // capacity for percent-of-capacity reporting (0 = uncapped)
	tid  int // counter-track thread ID in exported traces

	cur      int64
	last     sim.Time
	integral float64 // ∫ cur dt, in count·ns
	series   *sim.Series

	log *EventLog
}

// Name returns the track name.
func (t *UtilTrack) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Cur returns the current occupancy.
func (t *UtilTrack) Cur() int64 {
	if t == nil {
		return 0
	}
	return t.cur
}

func (t *UtilTrack) advance(now sim.Time) {
	if now <= t.last {
		return
	}
	dt := float64(now - t.last)
	t.integral += float64(t.cur) * dt
	if t.cur != 0 {
		t.series.AddInterval(t.last, now, float64(t.cur)*dt)
	}
	t.last = now
}

// Add applies an occupancy delta at virtual time now (typically +1 on
// entering the busy state and -1 on leaving it).
func (t *UtilTrack) Add(now sim.Time, delta int64) {
	if t == nil {
		return
	}
	t.advance(now)
	t.cur += delta
	if t.cur < 0 {
		t.cur = 0
	}
	if t.log.Enabled() {
		t.log.Counter("util", t.name, PIDUtil, t.tid, now, float64(t.cur))
	}
}

// Mean returns the time-averaged occupancy over [0, now].
func (t *UtilTrack) Mean(now sim.Time) float64 {
	if t == nil || now <= 0 {
		return 0
	}
	integral := t.integral
	if now > t.last {
		integral += float64(t.cur) * float64(now-t.last)
	}
	return integral / float64(now)
}

// MeanPct returns mean occupancy as a percentage of the track capacity
// (0 when the track is uncapped).
func (t *UtilTrack) MeanPct(now sim.Time) float64 {
	if t == nil || t.cap <= 0 {
		return 0
	}
	return 100 * t.Mean(now) / float64(t.cap)
}

// sparkLevels maps a 0..1 occupancy fraction to a timeline glyph.
const sparkLevels = " .:-=+*#%@"

// timeline renders the track's binned history over [0, now] compressed
// to at most width glyphs.
func (t *UtilTrack) timeline(now sim.Time, width int) string {
	if t == nil || now <= 0 || width <= 0 {
		return ""
	}
	nbins := int(now/t.series.BinWidth) + 1
	group := (nbins + width - 1) / width
	denom := float64(t.series.BinWidth) * float64(group)
	scale := float64(t.cap)
	if scale <= 0 {
		// Uncapped track: scale to its own peak mean-occupancy.
		for i := 0; i < nbins; i += group {
			var sum float64
			for j := i; j < i+group && j < nbins; j++ {
				sum += t.series.Bin(j)
			}
			if v := sum / denom; v > scale {
				scale = v
			}
		}
		if scale <= 0 {
			scale = 1
		}
	}
	var b strings.Builder
	for i := 0; i < nbins; i += group {
		var sum float64
		for j := i; j < i+group && j < nbins; j++ {
			sum += t.series.Bin(j)
		}
		frac := sum / denom / scale
		if frac < 0 {
			frac = 0
		}
		idx := int(frac * float64(len(sparkLevels)-1))
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteByte(sparkLevels[idx])
	}
	return b.String()
}

// Util is the registry of a machine's utilization tracks, rendered at
// /sys/genesys/util and exported as Chrome counter tracks.
type Util struct {
	bin    sim.Time
	tracks []*UtilTrack
	log    *EventLog
}

// NewUtil returns an empty utilization registry with the given bin
// width (DefaultUtilBin if <= 0).
func NewUtil(bin sim.Time) *Util {
	if bin <= 0 {
		bin = DefaultUtilBin
	}
	return &Util{bin: bin}
}

// Track registers a new timeline. capacity enables percent-of-capacity
// reporting (pass 0 for uncapped tracks like queue occupancy).
func (u *Util) Track(name string, capacity int) *UtilTrack {
	t := &UtilTrack{
		name:   name,
		cap:    capacity,
		tid:    len(u.tracks),
		series: sim.NewSeries(u.bin),
		log:    u.log,
	}
	u.tracks = append(u.tracks, t)
	return t
}

// SetEventLog attaches the event log all tracks mirror counter samples
// into (when it is enabled).
func (u *Util) SetEventLog(l *EventLog) {
	u.log = l
	for _, t := range u.tracks {
		t.log = l
	}
}

// Tracks returns the registered tracks in registration order.
func (u *Util) Tracks() []*UtilTrack { return u.tracks }

// Render produces the /sys/genesys/util view: one line per track with
// capacity, current and mean occupancy, percent of capacity, and a
// compressed timeline of the whole run.
func (u *Util) Render(now sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "utilization over %s (timeline bin %s):\n", now, u.bin)
	fmt.Fprintf(&b, "  %-22s %5s %5s %8s %7s  %s\n",
		"track", "cap", "cur", "mean", "util%", "timeline (low '.' to high '@')")
	for _, t := range u.tracks {
		pct := "-"
		if t.cap > 0 {
			pct = fmt.Sprintf("%6.1f%%", t.MeanPct(now))
		}
		capStr := "-"
		if t.cap > 0 {
			capStr = fmt.Sprintf("%d", t.cap)
		}
		fmt.Fprintf(&b, "  %-22s %5s %5d %8.2f %7s  |%s|\n",
			t.name, capStr, t.cur, t.Mean(now), pct, t.timeline(now, 48))
	}
	return b.String()
}
