package obs

import (
	"fmt"
	"math"

	"genesys/internal/sim"
)

// Histogram bucket geometry: bucket 0 is the underflow bucket for
// samples ≤ histMin; bucket i > 0 covers (histMin·g^(i-1), histMin·g^i]
// with g = 2^(1/8), i.e. eight sub-buckets per octave — a worst-case
// relative quantile error of ~±4.4% over ~15 decades of range.
const (
	histMin     = 1e-3
	histBuckets = 512
)

var histGrowth = math.Pow(2, 1.0/8)
var invLogGrowth = 1 / math.Log(histGrowth)

func bucketOf(v float64) int {
	if v <= histMin {
		return 0
	}
	i := 1 + int(math.Floor(math.Log(v/histMin)*invLogGrowth))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBounds returns the (lo, hi] value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, histMin
	}
	lo = histMin * math.Pow(histGrowth, float64(i-1))
	return lo, lo * histGrowth
}

// ExemplarK is how many top outlier samples a histogram retains as
// exemplars (largest values win; earlier samples win ties).
const ExemplarK = 3

// Exemplar links one retained outlier sample to its causal identity, so
// a p99 row in a rendered view points at a concrete invocation the
// flight recorder can look up: the sample value, the causal trace ID
// that produced it (0 when the sample has no syscall identity, e.g. a
// client-observed request latency) and the virtual-time instant it
// completed.
type Exemplar struct {
	Value float64
	Trace uint64
	At    sim.Time
}

// Histogram accumulates scalar samples into logarithmic buckets and
// answers percentile queries — the upgrade from the mean-only
// sim.Summary that lets the tracer report p50/p95/p99 per phase.
// Exact count, sum, min and max are tracked alongside the buckets, so
// Mean/Min/Max are precise; only quantiles are approximate. AddEx
// additionally retains the top-ExemplarK outlier samples with their
// trace IDs.
type Histogram struct {
	counts []int64 // lazily grown to the highest touched bucket
	n      int64
	sum    float64
	min    float64
	max    float64
	ex     []Exemplar // top-K samples by value, descending
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one sample. Negative samples clamp into the underflow
// bucket (they never occur once tracer stamping is sound, but a garbage
// sample must not corrupt the buckets).
func (h *Histogram) Add(v float64) {
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.n++
	h.sum += v
	i := bucketOf(v)
	for len(h.counts) <= i {
		h.counts = append(h.counts, 0)
	}
	h.counts[i]++
}

// AddEx records one sample carrying its causal identity; the top
// ExemplarK samples by value are retained as exemplars. Insertion is
// strictly-greater, so on ties the earliest sample is kept — the
// deterministic choice for byte-stable renders.
func (h *Histogram) AddEx(v float64, trace uint64, at sim.Time) {
	h.Add(v)
	i := len(h.ex)
	for i > 0 && v > h.ex[i-1].Value {
		i--
	}
	if i >= ExemplarK {
		return
	}
	h.ex = append(h.ex, Exemplar{})
	copy(h.ex[i+1:], h.ex[i:])
	h.ex[i] = Exemplar{Value: v, Trace: trace, At: at}
	if len(h.ex) > ExemplarK {
		h.ex = h.ex[:ExemplarK]
	}
}

// Exemplars returns the retained outlier samples, largest first.
func (h *Histogram) Exemplars() []Exemplar { return h.ex }

// N returns the number of samples.
func (h *Histogram) N() int { return int(h.n) }

// Mean returns the exact sample mean (0 for no samples).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Sum returns the exact sample sum.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the smallest sample (0 for no samples).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample (0 for no samples).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the approximate p-th percentile (0 ≤ p ≤ 100),
// interpolated within the bucket the rank falls in and clamped to the
// exact observed [min, max].
func (h *Histogram) Quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := p / 100 * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - prev) / float64(c)
			v := lo + (hi-lo)*frac
			return clamp(v, h.min, h.max)
		}
	}
	return h.max
}

// Percentiles returns the requested percentiles in order.
func (h *Histogram) Percentiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = h.Quantile(p)
	}
	return out
}

// Merge folds other's samples into h (exactly for count/sum/min/max,
// bucket-wise for the quantile state). Merging histograms from separate
// seeded runs is how experiments report cross-run percentiles.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if h.n == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.n += other.n
	h.sum += other.sum
	for len(h.counts) < len(other.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	for _, e := range other.ex {
		i := len(h.ex)
		for i > 0 && e.Value > h.ex[i-1].Value {
			i--
		}
		if i >= ExemplarK {
			continue
		}
		h.ex = append(h.ex, Exemplar{})
		copy(h.ex[i+1:], h.ex[i:])
		h.ex[i] = e
		if len(h.ex) > ExemplarK {
			h.ex = h.ex[:ExemplarK]
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (h *Histogram) String() string {
	q := h.Percentiles(50, 95, 99)
	return fmt.Sprintf("mean=%.3g p50=%.3g p95=%.3g p99=%.3g min=%.3g max=%.3g (n=%d)",
		h.Mean(), q[0], q[1], q[2], h.min, h.max, h.n)
}
