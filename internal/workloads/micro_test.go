package workloads

import (
	"strings"
	"testing"

	"genesys/internal/core"
	"genesys/internal/platform"
	"genesys/internal/sim"
)

func newM(t *testing.T, seed int64) *platform.Machine {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	return m
}

func TestPreadAllGranularitiesValidate(t *testing.T) {
	for _, g := range []Granularity{GranWorkItem, GranWorkGroup, GranKernel} {
		res, err := RunPread(newM(t, 1), PreadConfig{
			FileSize:    4 << 20,
			ChunkPerWI:  16 << 10,
			WGSize:      64,
			Granularity: g,
			Wait:        core.WaitPoll,
		})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !res.Validated {
			t.Fatalf("%v: data validation failed", g)
		}
		if res.ReadTime <= 0 || res.Bytes != 4<<20 {
			t.Fatalf("%v: res = %+v", g, res)
		}
	}
}

func TestPreadSyscallCountsByGranularity(t *testing.T) {
	count := func(g Granularity) int64 {
		res, err := RunPread(newM(t, 1), PreadConfig{
			FileSize: 4 << 20, ChunkPerWI: 16 << 10, WGSize: 64,
			Granularity: g, Wait: core.WaitPoll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Syscalls
	}
	// 256 work-items in WGs of 64.
	if n := count(GranWorkItem); n != 256 {
		t.Fatalf("work-item syscalls = %d, want 256", n)
	}
	if n := count(GranWorkGroup); n != 4 {
		t.Fatalf("work-group syscalls = %d, want 4", n)
	}
	if n := count(GranKernel); n != 1 {
		t.Fatalf("kernel syscalls = %d, want 1", n)
	}
}

func TestPreadGranularityOrdering(t *testing.T) {
	// The Figure 7 headline: at a substantial file size, work-group
	// invocation beats both the work-item flood and the serial
	// kernel-granularity call.
	run := func(g Granularity) sim.Time {
		res, err := RunPread(newM(t, 2), PreadConfig{
			FileSize: 64 << 20, ChunkPerWI: 64 << 10, WGSize: 64,
			Granularity: g, Wait: core.WaitPoll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ReadTime
	}
	wi, wg, kern := run(GranWorkItem), run(GranWorkGroup), run(GranKernel)
	if !(wg < wi && wg < kern) {
		t.Fatalf("granularity ordering violated: wi=%v wg=%v kernel=%v", wi, wg, kern)
	}
}

func TestPreadLargerWGSizesHelp(t *testing.T) {
	// Figure 7 (right): larger work-groups mean fewer, bigger system
	// calls; when per-call overheads matter (small per-work-item chunks)
	// that wins.
	run := func(wgSize int) sim.Time {
		res, err := RunPread(newM(t, 2), PreadConfig{
			FileSize: 16 << 20, ChunkPerWI: 1 << 10, WGSize: wgSize,
			Granularity: GranWorkGroup, Wait: core.WaitPoll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ReadTime
	}
	if t64, t1024 := run(64), run(1024); t1024 >= t64 {
		t.Fatalf("wg64=%v wg1024=%v: larger WGs did not help", t64, t1024)
	}
}

func TestPreadConfigValidation(t *testing.T) {
	if _, err := RunPread(newM(t, 1), PreadConfig{FileSize: 1000, ChunkPerWI: 300}); err == nil {
		t.Fatal("indivisible file size accepted")
	}
	if _, err := RunPread(newM(t, 1), PreadConfig{FileSize: 1 << 20, ChunkPerWI: 16 << 10, WGSize: 1000}); err == nil {
		t.Fatal("indivisible work-item count accepted")
	}
}

func TestPermuteValidatesOutput(t *testing.T) {
	res, err := RunPermute(newM(t, 1), PermuteConfig{
		Blocks: 8, Iterations: 3,
		Blocking: true, Ordering: core.Strong, Wait: core.WaitPoll,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Validated {
		t.Fatal("permuted output wrong")
	}
	if res.PerPermutation <= 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPermuteBlockingOrderingSpectrum(t *testing.T) {
	// Figure 8 at low iteration count: strong-block is worst;
	// weak-non-block is best.
	run := func(blocking bool, ord core.Ordering) sim.Time {
		res, err := RunPermute(newM(t, 3), PermuteConfig{
			Blocks: 64, Iterations: 2,
			Blocking: blocking, Ordering: ord, Wait: core.WaitPoll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerPermutation
	}
	strongBlock := run(true, core.Strong)
	strongNonBlock := run(false, core.Strong)
	weakNonBlock := run(false, core.Relaxed)
	if !(strongBlock > strongNonBlock) {
		t.Fatalf("strong-block (%v) not worse than strong-non-block (%v)",
			strongBlock, strongNonBlock)
	}
	if !(strongBlock > weakNonBlock) {
		t.Fatalf("strong-block (%v) not worse than weak-non-block (%v)",
			strongBlock, weakNonBlock)
	}
}

func TestPermuteConvergesAtHighIterations(t *testing.T) {
	// At high iteration counts compute dominates and the variants
	// converge (Figure 8's right side).
	run := func(blocking bool, ord core.Ordering, iters int) sim.Time {
		res, err := RunPermute(newM(t, 3), PermuteConfig{
			Blocks: 64, Iterations: iters,
			Blocking: blocking, Ordering: ord, Wait: core.WaitPoll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerPermutation
	}
	sb := run(true, core.Strong, 64)
	wnb := run(false, core.Relaxed, 64)
	ratio := float64(sb) / float64(wnb)
	if ratio > 1.35 {
		t.Fatalf("at 64 iterations strong-block/weak-non-block = %.2f, want ≈1", ratio)
	}
}

func TestPollProbeKnee(t *testing.T) {
	// Figure 9: CPU access throughput is flat while the polled working
	// set fits the GPU L2 (4096 lines) and falls beyond it.
	run := func(lines int) PollProbeResult {
		res, err := RunPollProbe(newM(t, 4), PollProbeConfig{
			PolledLines: lines, PollerWaves: 128, Duration: sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(1024)
	atCap := run(4096)
	big := run(16384)
	if small.GPUL2MissRate != 0 || atCap.GPUL2MissRate != 0 {
		t.Fatalf("misses within capacity: %v %v", small.GPUL2MissRate, atCap.GPUL2MissRate)
	}
	if big.GPUL2MissRate < 0.5 {
		t.Fatalf("miss rate at 4x capacity = %.2f", big.GPUL2MissRate)
	}
	if big.CPUAccessesPerSec > 0.8*atCap.CPUAccessesPerSec {
		t.Fatalf("CPU throughput did not drop past the knee: %.0f vs %.0f",
			big.CPUAccessesPerSec, atCap.CPUAccessesPerSec)
	}
	if small.CPUAccessesPerSec < 0.9*atCap.CPUAccessesPerSec {
		t.Fatalf("CPU throughput not flat below the knee: %.0f vs %.0f",
			small.CPUAccessesPerSec, atCap.CPUAccessesPerSec)
	}
}

func TestPreadCoalescingHelpsSmallReads(t *testing.T) {
	// Figure 10: coalescing up to 8 interrupts helps most for small
	// per-call reads. The workload must offer more interrupt bundles than
	// CPU workers, or coalescing's serialization outweighs its overhead
	// savings (the paper's latency-vs-throughput caveat, §V-B).
	run := func(chunk int64, window sim.Time, max int) float64 {
		m := newM(t, 5)
		m.Genesys.SetCoalescing(window, max)
		res, err := RunPread(m, PreadConfig{
			FileSize: 4096 * chunk, ChunkPerWI: chunk, WGSize: 64,
			Granularity: GranWorkItem, Wait: core.WaitHaltResume,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.LatencyPerByte()
	}
	smallOff := run(512, 0, 1)
	smallOn := run(512, 50*sim.Microsecond, 8)
	if smallOn >= smallOff {
		t.Fatalf("coalescing did not help small reads: %.2f vs %.2f ns/B", smallOn, smallOff)
	}
	bigOff := run(64<<10, 0, 1)
	bigOn := run(64<<10, 50*sim.Microsecond, 8)
	gainSmall := smallOff / smallOn
	gainBig := bigOff / bigOn
	if gainBig > gainSmall {
		t.Fatalf("coalescing gain not concentrated at small reads: small=%.2fx big=%.2fx",
			gainSmall, gainBig)
	}
}

func TestTableIInventory(t *testing.T) {
	apps := TableI()
	if len(apps) != 6 {
		t.Fatalf("Table I entries = %d, want 6", len(apps))
	}
	prev := 0
	for _, a := range apps {
		if a.Name == "" || a.Syscalls == "" || a.Where == "" {
			t.Fatalf("incomplete entry: %+v", a)
		}
		if a.Previously {
			prev++
		}
	}
	if prev != 2 {
		t.Fatalf("previously-realizable = %d, want 2 (wordcount, memcached)", prev)
	}
	out := RenderTableI()
	for _, want := range []string{"miniamr", "signal-search", "grep", "bmp-display",
		"memcached", "Previously unrealizable:", "rt_sigqueueinfo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
