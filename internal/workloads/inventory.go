package workloads

import (
	"fmt"
	"strings"
)

// App is one entry of the paper's Table I: the applications GENESYS
// enables or re-enables, the system calls each exercises, and where this
// repository implements it.
type App struct {
	Type        string
	Name        string
	Syscalls    string
	Description string
	// Previously reports whether the paper classes the app as previously
	// realizable (by GPUfs/GPUnet-style systems) or newly enabled.
	Previously bool
	// Where points at the implementation in this repository.
	Where string
}

// TableI returns the paper's application inventory (Table I), annotated
// with this repository's implementations.
func TableI() []App {
	return []App{
		{
			Type: "Memory Management", Name: "miniamr",
			Syscalls:    "madvise, getrusage",
			Description: "uses madvise to return unused memory to the OS (§VIII-A)",
			Where:       "workloads.RunMiniAMR, examples/miniamr, fig11",
		},
		{
			Type: "Signals", Name: "signal-search",
			Syscalls:    "rt_sigqueueinfo",
			Description: "signals notify the host about partial work completion (§VIII-B)",
			Where:       "workloads.RunSignalSearch, examples/signalsearch, fig12",
		},
		{
			Type: "Filesystem", Name: "grep",
			Syscalls:    "read, open, close, write",
			Description: "work-item invocations not supported by prior work; prints to terminal (§VIII-C)",
			Where:       "workloads.RunGrep, examples/gpugrep, fig13a",
		},
		{
			Type: "Device Control", Name: "bmp-display",
			Syscalls:    "ioctl, mmap",
			Description: "kernel-granularity invocation to query and set framebuffer properties (§VIII-E)",
			Where:       "workloads.RunBMPDisplay, examples/fbdisplay, fig16",
		},
		{
			Type: "Filesystem", Name: "wordsearch (wordcount)",
			Syscalls:    "open, read, close, pread",
			Description: "the workload of prior work (GPUfs), via standard POSIX (§VIII-C)",
			Previously:  true,
			Where:       "workloads.RunWordcount, fig13b/fig14",
		},
		{
			Type: "Network", Name: "memcached",
			Syscalls:    "sendto, recvfrom",
			Description: "possible with GPUnet, but no RDMA needed for performance (§VIII-D)",
			Previously:  true,
			Where:       "workloads.RunMemcached, examples/memcached, fig15",
		},
	}
}

// RenderTableI formats the inventory like the paper's Table I.
func RenderTableI() string {
	var b strings.Builder
	b.WriteString("Table I: GENESYS enables new classes of applications and supports all prior work\n\n")
	write := func(hdr string, prev bool) {
		fmt.Fprintf(&b, "%s\n", hdr)
		for _, a := range TableI() {
			if a.Previously != prev {
				continue
			}
			fmt.Fprintf(&b, "  %-18s %-22s %s\n", a.Type, a.Name, a.Syscalls)
			fmt.Fprintf(&b, "  %-18s %-22s -> %s\n", "", "", a.Description)
			fmt.Fprintf(&b, "  %-18s %-22s => %s\n", "", "", a.Where)
		}
		b.WriteString("\n")
	}
	write("Previously unrealizable:", false)
	write("Previously realizable:", true)
	return b.String()
}
