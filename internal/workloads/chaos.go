package workloads

import (
	"encoding/binary"
	"fmt"

	"genesys/internal/core"
	"genesys/internal/errno"
	"genesys/internal/fs"
	"genesys/internal/gclib"
	"genesys/internal/gpu"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/sim"
)

// ChaosConfig parameterizes the fault-injection stress workload: every
// work-group exercises the full OS pipeline — open/pread from the SSD
// filesystem, pwrite to tmpfs, and a UDP request/response leg against a
// CPU-side echo server — so a single run touches every injection point
// the fault subsystem defines. With no fault plan armed it doubles as a
// plain mixed-syscall benchmark.
type ChaosConfig struct {
	WorkGroups int      // GPU work-groups (one mixed-op sequence each)
	WGSize     int      // work-items per group
	ChunkBytes int64    // bytes each work-group preads and pwrites
	EchoPort   int      // UDP port of the CPU echo server
	NetTimeout sim.Time // SO_RCVTIMEO-style bound on the echo reply
	MaxResends int      // application-level resends after EAGAIN
	Wait       core.WaitMode
}

// DefaultChaosConfig returns 8 work-groups moving 32 KiB each.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		WorkGroups: 8,
		WGSize:     64,
		ChunkBytes: 32 << 10,
		EchoPort:   7077,
		NetTimeout: 300 * sim.Microsecond,
		MaxResends: 3,
	}
}

// ChaosResult reports one run.
type ChaosResult struct {
	Runtime sim.Time
	// Latency holds one per-work-group end-to-end latency sample (in
	// microseconds) per group, for p50/p95/p99 inflation reporting.
	Latency *obs.Histogram
	// OpsOK / OpsFailed count individual system calls that returned
	// success vs a surfaced errno (after all recovery layers ran).
	OpsOK     int64
	OpsFailed int64
	// EchoOK counts work-groups whose UDP round trip completed (possibly
	// after resends); EchoGaveUp those that exhausted MaxResends.
	EchoOK     int64
	EchoGaveUp int64
	// Validated is false if any successful pread or echo reply carried
	// wrong bytes — recovery must never yield silently-corrupt data.
	Validated bool
}

const chaosPatternSeed = 11

// RunChaos executes the mixed-syscall chaos workload. It always drives
// the run to completion: every injected fault is either transparently
// recovered by the stack or surfaced to the kernel body as an errno,
// which the body tolerates — a hang fails the simulation's own deadlock
// detector.
func RunChaos(m *platform.Machine, cfg ChaosConfig) (ChaosResult, error) {
	if cfg.WorkGroups <= 0 || cfg.WGSize <= 0 || cfg.ChunkBytes <= 0 {
		return ChaosResult{}, fmt.Errorf("chaos: bad config %+v", cfg)
	}
	if cfg.EchoPort <= 0 {
		cfg.EchoPort = 7077
	}
	if cfg.NetTimeout <= 0 {
		cfg.NetTimeout = 300 * sim.Microsecond
	}

	m.NewProcess("chaos")
	content := make([]byte, cfg.ChunkBytes*int64(cfg.WorkGroups))
	fillPattern(content, chaosPatternSeed)
	if err := m.WriteFile("/data/chaos.dat", content); err != nil {
		return ChaosResult{}, err
	}

	// CPU-side UDP echo server. A daemon, so an in-flight datagram lost
	// to injection never stalls quiescence; its replies traverse the same
	// lossy network the requests do.
	echoSock := m.Net.NewSocket()
	if err := echoSock.Bind(cfg.EchoPort); err != nil {
		return ChaosResult{}, err
	}
	m.E.SpawnDaemon("chaos-echo", func(p *sim.Proc) {
		for {
			dg, err := echoSock.RecvFrom(p)
			if err != nil {
				return
			}
			_ = echoSock.SendTo(dg.SrcPort, dg.Data)
		}
	})

	c := gclib.C{G: m.Genesys, Wait: cfg.Wait}
	res := ChaosResult{Latency: obs.NewHistogram(), Validated: true}
	note := func(e errno.Errno) bool {
		if e == errno.OK {
			res.OpsOK++
			return true
		}
		res.OpsFailed++
		return false
	}

	m.E.Spawn("chaos-host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "chaos", WorkGroups: cfg.WorkGroups, WGSize: cfg.WGSize,
			Fn: func(w *gpu.Wavefront) {
				start := w.P.Now()
				wg := w.WG.ID
				off := int64(wg) * cfg.ChunkBytes
				lead := w.IsLeader()

				// SSD leg: open + pread + validate.
				buf := make([]byte, cfg.ChunkBytes)
				fd, e := c.Open(w, "/data/chaos.dat", fs.O_RDONLY)
				if lead && note(e) {
					n, e2 := c.Pread(w, fd, buf, off)
					if note(e2) {
						if int64(n) != cfg.ChunkBytes ||
							buf[0] != patternByte(off, chaosPatternSeed) ||
							buf[n-1] != patternByte(off+int64(n)-1, chaosPatternSeed) {
							res.Validated = false
						}
					}
					note(c.Close(w, fd))
				} else if e == errno.OK {
					// Non-leaders still participate in the collectives.
					_, _ = c.Pread(w, fd, buf, off)
					_ = c.Close(w, fd)
				}

				// tmpfs leg: open + pwrite + close.
				out := fmt.Sprintf("/tmp/chaos.%d", wg)
				ofd, e := c.Open(w, out, fs.O_CREAT|fs.O_WRONLY|fs.O_TRUNC)
				if lead && note(e) {
					_, e2 := c.Pwrite(w, ofd, buf, 0)
					note(e2)
					note(c.Close(w, ofd))
				} else if e == errno.OK {
					_, _ = c.Pwrite(w, ofd, buf, 0)
					_ = c.Close(w, ofd)
				}

				// UDP leg: request/response with timeout + resend — the
				// application-level recovery injected drops force.
				sfd, e := c.Socket(w)
				if lead {
					note(e)
				}
				if e == errno.OK {
					_ = c.Bind(w, sfd, 0)
					req := make([]byte, 16)
					binary.LittleEndian.PutUint64(req, uint64(wg)|0xc4a0500000000000)
					done := false
					for attempt := 0; attempt <= cfg.MaxResends && !done; attempt++ {
						_, se := c.SendTo(w, sfd, req, cfg.EchoPort)
						if se != errno.OK {
							continue // resets/EAGAIN: resend
						}
						rbuf := make([]byte, 16)
						n, _, re := c.RecvFromTimeout(w, sfd, rbuf, cfg.NetTimeout)
						if re == errno.OK {
							if lead {
								if n != len(req) || binary.LittleEndian.Uint64(rbuf) !=
									binary.LittleEndian.Uint64(req) {
									res.Validated = false
								}
								res.EchoOK++
							}
							done = true
						}
					}
					if lead && !done {
						res.EchoGaveUp++
					}
					_ = c.Close(w, sfd)
				}

				if lead {
					res.Latency.Add((w.P.Now() - start).Micro())
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
		res.Runtime = p.Now() - k.LaunchedAt
	})
	if err := m.Run(); err != nil {
		return ChaosResult{}, err
	}
	return res, nil
}
