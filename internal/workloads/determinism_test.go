package workloads

import (
	"testing"

	"genesys/internal/core"
	"genesys/internal/sim"
)

// TestWorkloadDeterminism: the simulator promises bit-identical results
// for identical seeds — the property that makes every experiment in this
// repository reproducible. Run each workload twice and compare every
// reported metric exactly.
func TestWorkloadDeterminism(t *testing.T) {
	t.Run("pread", func(t *testing.T) {
		run := func() PreadResult {
			res, err := RunPread(newM(t, 99), PreadConfig{
				FileSize: 8 << 20, ChunkPerWI: 16 << 10, WGSize: 64,
				Granularity: GranWorkItem, Wait: core.WaitHaltResume,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("diverged: %+v vs %+v", a, b)
		}
	})
	t.Run("grep", func(t *testing.T) {
		run := func() sim.Time {
			cfg := DefaultGrepConfig(GrepGPUWorkGroup)
			cfg.Files = 16
			res, err := RunGrep(newM(t, 99), cfg)
			if err != nil || !res.Correct() {
				t.Fatal(err)
			}
			return res.Runtime
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("diverged: %v vs %v", a, b)
		}
	})
	t.Run("memcached", func(t *testing.T) {
		run := func() MemcachedResult {
			cfg := DefaultMemcachedConfig(MemcachedGENESYS)
			cfg.Requests = 300
			res, err := RunMemcached(newM(t, 99), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("diverged: %+v vs %+v", a, b)
		}
	})
	t.Run("miniamr", func(t *testing.T) {
		run := func() sim.Time {
			cfg := DefaultMiniAMRConfig()
			cfg.WatermarkBytes = 224 << 20
			cfg.Steps = 30
			m := miniAMRMachine(t, 99)
			res, err := RunMiniAMR(m, cfg)
			if err != nil || !res.Completed {
				t.Fatalf("%v %+v", err, res)
			}
			return res.Runtime
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("diverged: %v vs %v", a, b)
		}
	})
}

// TestSeedsActuallyVary: different seeds must produce different timings
// where the model has stochastic elements (network jitter, client
// arrivals), or the error bars in the experiment tables are fake.
func TestSeedsActuallyVary(t *testing.T) {
	run := func(seed int64) sim.Time {
		cfg := DefaultMemcachedConfig(MemcachedCPU)
		cfg.Requests = 300
		res, err := RunMemcached(newM(t, seed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	if a, b := run(1), run(2); a == b {
		t.Fatal("two different seeds produced identical latency; jitter missing")
	}
}
