package workloads

import (
	"errors"
	"fmt"

	"genesys/internal/core"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
	"genesys/internal/vmm"
)

// MiniAMRConfig parameterizes the §VIII-A memory-management case study:
// an adaptive-mesh-refinement stencil whose per-step working set slides
// across a dataset slightly larger than physical memory. With
// WatermarkBytes == 0 the GPU never returns memory (the paper's baseline,
// which dies to the GPU watchdog); otherwise GPU work-groups use
// getrusage to watch the RSS and madvise(MADV_DONTNEED) to release the
// least-recently-used regions whenever it exceeds the watermark.
type MiniAMRConfig struct {
	Regions      int
	RegionBytes  int64
	Steps        int
	ActiveWindow int // regions touched per step (sliding)
	// TailTouches work-groups per step revisit recently refined regions
	// (AMR temporal locality): a region touched up to TailReach steps ago
	// may be needed again. Aggressive madvise watermarks discard these
	// and pay refaults — the memory/performance trade-off of Figure 11.
	TailTouches    int
	TailReach      int
	WatermarkBytes int64 // 0 = no madvise (baseline)
	ComputePerStep sim.Time
}

// DefaultMiniAMRConfig scales the paper's 4.1 GiB dataset down 16× (so a
// 256 MiB physical limit plays the role of the paper's 4 GiB cap) while
// preserving all ratios.
func DefaultMiniAMRConfig() MiniAMRConfig {
	return MiniAMRConfig{
		Regions:        41,
		RegionBytes:    100 << 16, // 6.4 MiB → dataset ≈ 262 MiB
		Steps:          120,
		ActiveWindow:   8,
		TailTouches:    2,
		TailReach:      36,
		WatermarkBytes: 0,
		ComputePerStep: 2 * sim.Millisecond,
	}
}

// MiniAMRPhysBytes is the physical-memory cap matching the default
// config (the scaled-down "4 GB hard limit" of Figure 11).
const MiniAMRPhysBytes = 256 << 20

// MiniAMRResult reports one run.
type MiniAMRResult struct {
	Completed   bool // false = GPU watchdog killed the run (baseline)
	FailedStep  int
	Runtime     sim.Time
	PeakRSS     int64
	FinalUsage  vmm.Rusage
	RSSTrace    []float64
	RSSTraceBin sim.Time
	Madvises    int64
}

// RunMiniAMR executes miniAMR on a machine whose physical pool should be
// smaller than Regions×RegionBytes for the paper's scenario.
func RunMiniAMR(m *platform.Machine, cfg MiniAMRConfig) (MiniAMRResult, error) {
	pr := m.NewProcess("miniamr")
	g := m.Genesys

	var res MiniAMRResult
	res.Completed = true

	m.E.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		// mmap the whole dataset once.
		req := syscalls.Request{NR: syscalls.SYS_mmap,
			Args: [6]uint64{0, uint64(int64(cfg.Regions) * cfg.RegionBytes), 0, 0, ^uint64(0), 0}}
		syscalls.Dispatch(&syscalls.Ctx{P: p, OS: m.OS, Proc: pr}, &req)
		if req.Err != 0 {
			res.Completed = false
			return
		}
		base := uint64(req.Ret)
		regionAddr := func(r int) uint64 { return base + uint64(int64(r)*cfg.RegionBytes) }

		lastActive := make([]int, cfg.Regions)
		resident := make([]bool, cfg.Regions)
		for i := range lastActive {
			lastActive[i] = -1
		}

		rusageBuf := make([]byte, syscalls.RusageSize)
		for step := 0; step < cfg.Steps && res.Completed; step++ {
			first := step % cfg.Regions
			var timedOut bool
			step := step
			k := m.GPU.Launch(p, gpu.Kernel{
				Name:       fmt.Sprintf("amr-step%d", step),
				WorkGroups: cfg.ActiveWindow + cfg.TailTouches,
				WGSize:     256,
				Fn: func(w *gpu.Wavefront) {
					var region int
					if w.WG.ID < cfg.ActiveWindow {
						region = (first + w.WG.ID) % cfg.Regions
					} else if cfg.TailReach > 0 {
						// Revisit a recently refined region.
						back := 1 + (step*13+w.WG.ID*7)%cfg.TailReach
						region = ((first-back)%cfg.Regions + cfg.Regions) % cfg.Regions
					}
					if w.IsLeader() {
						// The app frees regions by its refinement
						// schedule (when they leave the window), so only
						// window touches update the release ordering;
						// tail re-touches still make the region resident.
						if w.WG.ID < cfg.ActiveWindow {
							lastActive[region] = step
						}
						resident[region] = true
						// The stencil touches its region; page faults
						// (and any swap storm) are serviced under the
						// GPU watchdog.
						if err := pr.MM.Touch(w.P, regionAddr(region), cfg.RegionBytes, true); err != nil {
							if errors.Is(err, vmm.ErrGPUTimeout) {
								timedOut = true
							}
						}
					}
					w.Barrier()
					if !timedOut {
						w.ComputeTime(cfg.ComputePerStep)
					}
					if timedOut || cfg.WatermarkBytes == 0 || !w.IsLeader() {
						return
					}
					// Memory-management epilogue (GENESYS variants):
					// check RSS with getrusage, release LRU regions with
					// madvise while over the watermark. Plain wavefront
					// invocations: the leader acts alone, so no
					// work-group-collective barriers are involved.
					r := g.Invoke(w, syscalls.Request{
						NR: syscalls.SYS_getrusage, Buf: rusageBuf,
					}, core.Options{Blocking: true, Wait: core.WaitPoll})
					if !r.Ok() {
						return
					}
					usage, err := syscalls.DecodeRusage(rusageBuf)
					if err != nil {
						return
					}
					rss := usage.RSSBytes
					for rss > cfg.WatermarkBytes {
						victim := -1
						for reg := 0; reg < cfg.Regions; reg++ {
							if !resident[reg] {
								continue
							}
							if inWindow(reg, first, cfg.ActiveWindow, cfg.Regions) {
								continue
							}
							if victim < 0 || lastActive[reg] < lastActive[victim] {
								victim = reg
							}
						}
						if victim < 0 {
							break
						}
						resident[victim] = false
						g.Invoke(w, syscalls.Request{
							NR: syscalls.SYS_madvise,
							Args: [6]uint64{regionAddr(victim),
								uint64(cfg.RegionBytes), vmm.MADV_DONTNEED},
						}, core.Options{Blocking: false})
						res.Madvises++
						rss -= cfg.RegionBytes
					}
				},
			})
			k.Wait(p)
			g.Drain(p)
			if timedOut {
				res.Completed = false
				res.FailedStep = step
			}
		}
		res.Runtime = p.Now() - start
	})
	if err := m.Run(); err != nil {
		return res, err
	}
	res.PeakRSS = pr.MM.MaxRSSBytes()
	res.FinalUsage = pr.MM.Usage()
	res.RSSTrace, res.RSSTraceBin = pr.MM.RSSTrace()
	return res, nil
}

// inWindow reports whether region reg lies in the sliding window of
// size win starting at first (mod n).
func inWindow(reg, first, win, n int) bool {
	for i := 0; i < win; i++ {
		if (first+i)%n == reg {
			return true
		}
	}
	return false
}
