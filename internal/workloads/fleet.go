package workloads

// The million-client service fleet: the production traffic shape the
// ROADMAP layers over the §VIII-D memcached case study. An open-loop
// Poisson arrival process creates client sessions — each a short-lived
// UDP client or a stream connection — with Zipf-popular keys, bounded
// request timeouts and continuous connection churn. A handful of
// persistent GPU work-groups serve the whole population by multiplexing
// shard sockets through the poll syscall (memcached.go), and the run
// distills into an obs.SLOReport (goodput, p50/p99/p999, drop/timeout
// rates) served at /sys/genesys/slo.
//
// Scale strategy: a simulated client must not cost a goroutine, or a
// million of them would sink the host. UDP sessions are proc-free state
// machines driven entirely by engine callbacks — a receive handler on
// the socket plus one cancellable timeout timer — so the only per-
// session cost is a socket and a few words of state. Stream sessions,
// which need blocking connect/send semantics, run on a small fixed pool
// of worker procs that each churn through many sessions. Ephemeral-port
// exhaustion under churn surfaces as EADDRINUSE (the Bind(0) bugfix this
// scenario depends on) and is counted as a refusal in the SLO, exactly
// how an overloaded front-end refuses load.

import (
	"encoding/binary"
	"math/rand"

	"genesys/internal/errno"
	"genesys/internal/fs"
	"genesys/internal/gclib"
	"genesys/internal/gpu"
	"genesys/internal/netstack"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/sim"
)

// Fleet port plan: UDP shards at FleetUDPBase+i, the stream listener on
// FleetStreamPort (outside the shard range and the ephemeral range).
const (
	FleetUDPBase    = 11211
	FleetStreamPort = 12000
)

// FleetConfig parameterizes a service-fleet run.
type FleetConfig struct {
	Seed int64

	// UDPSessions and StreamSessions are the total client sessions of
	// each class created over the run (connection churn: sessions arrive,
	// issue requests and leave).
	UDPSessions    int
	StreamSessions int
	// ReqsPerSession is how many GETs each session issues.
	ReqsPerSession int
	// MeanInterarrival is the open-loop Poisson arrival spacing for UDP
	// sessions (exponential inter-arrival times).
	MeanInterarrival sim.Time
	// StreamInterarrival is the aggregate arrival spacing of stream
	// sessions (they are the minority class, so they arrive slower).
	StreamInterarrival sim.Time
	// Timeout bounds each request at the client; a miss counts against
	// the SLO as a timeout.
	Timeout sim.Time
	// ZipfS/ZipfV shape key popularity (s > 1; higher s = more skew).
	ZipfS, ZipfV float64

	// StreamWorkers is the size of the stream client pool.
	StreamWorkers int

	// Server shape: UDPWGs work-groups each polling SocksPerWG shard
	// sockets, plus StreamWGs work-groups sharing the stream listener;
	// WGSize threads per group.
	UDPWGs     int
	StreamWGs  int
	SocksPerWG int
	WGSize     int
	// PollTick is the server's poll deadline — the stop-flag check
	// cadence.
	PollTick sim.Time

	// Table shape (shared with the memcached case study).
	Buckets        int
	ElemsPerBucket int
	ValueBytes     int
	// GPUScanTime is the work-group's parallel lookup cost per request.
	GPUScanTime sim.Time
}

// DefaultFleetConfig scales a fleet run to the given total session
// count: ~90% short UDP sessions, ~10% stream connections.
func DefaultFleetConfig(sessions int) FleetConfig {
	if sessions < 10 {
		sessions = 10
	}
	return FleetConfig{
		Seed:               1,
		UDPSessions:        sessions - sessions/10,
		StreamSessions:     sessions / 10,
		ReqsPerSession:     2,
		MeanInterarrival:   40 * sim.Microsecond,
		StreamInterarrival: 400 * sim.Microsecond,
		Timeout:            2 * sim.Millisecond,
		ZipfS:              1.1,
		ZipfV:              1,
		StreamWorkers:      64,
		UDPWGs:             16,
		StreamWGs:          2,
		SocksPerWG:         1,
		WGSize:             64,
		PollTick:           250 * sim.Microsecond,
		Buckets:            64,
		ElemsPerBucket:     64,
		ValueBytes:         256,
		GPUScanTime:        2 * sim.Microsecond,
	}
}

// fleetHarness is the shared run state: counters feeding the SLO report
// and the termination tracking that flips the server stop flag.
type fleetHarness struct {
	m   *platform.Machine
	cfg FleetConfig

	udpLat    []latSample
	streamLat []latSample
	udp       obs.SLOClass
	stream    obs.SLOClass

	liveUDP    int  // UDP sessions in flight
	genDone    bool // UDP arrival process finished
	streamLeft int  // stream sessions not yet resolved
	stop       bool // read by the GPU serving loops each poll tick
	sessions   int64

	// sessFree recycles finished UDP session machines — struct, key
	// slice, timer and callbacks — so connection churn at fleet scale
	// costs no per-session allocation beyond the socket.
	sessFree []*udpSession
}

// latSample is one completed request's latency plus its virtual-time
// completion instant — the instant is what lets SLO exemplars point
// into the flight recorder's retained window.
type latSample struct {
	ns float64
	at sim.Time
}

// noteRequest feeds one client-observed outcome into the flight
// recorder's SLO burn-rate detector (nil-safe, pure accounting).
func (h *fleetHarness) noteRequest(at sim.Time, ok bool) {
	h.m.Obs.Flight.NoteRequest(at, ok)
}

// maybeStop flips the server stop flag once every session of both
// classes has resolved.
func (h *fleetHarness) maybeStop() {
	if h.genDone && h.liveUDP == 0 && h.streamLeft == 0 {
		h.stop = true
	}
}

// udpSession is one proc-free UDP client: engine callbacks (datagram
// arrival, timeout timer) drive it through its pre-drawn request list.
// Sessions recycle through the harness freelist; the hot path reuses the
// request scratch buffer, the timeout Timer (AtReuse) and two callbacks
// built once per machine — onReply and the timeout closure — so a
// session's whole request sequence allocates nothing.
type udpSession struct {
	h    *fleetHarness
	sock *netstack.Socket
	keys [][2]int // pre-drawn (bucket, elem) per request
	idx  int
	seq  uint32
	t0   sim.Time
	tmr  *sim.Timer
	port int // server shard port, fixed per session

	req     []byte // request encode scratch (SendTo copies it)
	armSeq  uint32 // seq captured when the timeout was armed
	fireFn  func() // timeout callback; reads armSeq
	replyFn func(netstack.Datagram)
}

// getSession returns a recycled (or fresh) session machine wired to h.
func (h *fleetHarness) getSession() *udpSession {
	if n := len(h.sessFree); n > 0 {
		s := h.sessFree[n-1]
		h.sessFree[n-1] = nil
		h.sessFree = h.sessFree[:n-1]
		// s.tmr is kept: it is inert by finish time and AtReuse recycles it.
		s.idx, s.seq, s.t0 = 0, 0, 0
		return s
	}
	s := &udpSession{h: h}
	s.fireFn = func() { s.onTimeout(s.armSeq) }
	s.replyFn = s.onReply
	return s
}

// start binds the session socket and fires the first request. A bind
// refusal (ephemeral range exhausted under churn) refuses the whole
// session.
func (s *udpSession) start() bool {
	s.sock = s.h.m.Net.NewSocket()
	if err := s.sock.Bind(0); err != nil {
		s.h.udp.Refused++
		return false
	}
	s.sock.SetRecvHandler(s.replyFn)
	s.sendNext()
	return true
}

func (s *udpSession) sendNext() {
	h := s.h
	if s.idx >= len(s.keys) {
		s.finish()
		return
	}
	k := s.keys[s.idx]
	s.seq++
	s.t0 = h.m.E.Now()
	h.udp.Offered++
	s.req = mcRequestInto(s.req, s.seq, k[0], k[1])
	if err := s.sock.SendTo(s.port, s.req); err != nil {
		// EAGAIN / injected reset: the request never entered the wire.
		h.udp.Refused++
		h.udp.Offered--
		s.idx++
		s.sendNext()
		return
	}
	s.armSeq = s.seq
	s.tmr = h.m.E.AtReuse(s.t0+h.cfg.Timeout, s.fireFn, s.tmr)
}

func (s *udpSession) onReply(dg netstack.Datagram) {
	if len(dg.Data) < mcReplyHdr {
		return
	}
	if binary.LittleEndian.Uint32(dg.Data[1:]) != s.seq {
		return // stale reply to a request already timed out
	}
	s.tmr.Cancel()
	h := s.h
	h.udp.Completed++
	now := h.m.E.Now()
	h.udpLat = append(h.udpLat, latSample{ns: float64(now - s.t0), at: now})
	h.noteRequest(now, true)
	s.idx++
	s.sendNext()
}

func (s *udpSession) onTimeout(seq uint32) {
	if seq != s.seq {
		return // a reply advanced the session first
	}
	s.h.udp.Timeouts++
	s.h.noteRequest(s.h.m.E.Now(), false)
	s.seq++ // invalidate any late reply to the timed-out request
	s.idx++
	s.sendNext()
}

func (s *udpSession) finish() {
	s.sock.Close()
	s.sock = nil
	s.h.liveUDP--
	s.h.sessFree = append(s.h.sessFree, s)
	s.h.maybeStop()
}

// workerSeed derives stream worker id's RNG seed from the run seed with
// a splitmix64 finalizer. The previous `seed ^ 7919*(id+1)` xor salt
// left adjacent worker ids with seeds a few low bits apart, and
// math/rand's LCG-seeded source turns nearby seeds into visibly
// correlated streams — every worker drew near-identical arrival gaps
// and key sequences, understating contention spread. The mixer's
// avalanche breaks that: one id step flips ~half the output bits.
func workerSeed(seed int64, id int) int64 {
	z := uint64(seed) + uint64(id+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// runStreamWorker churns one pool worker through its share of stream
// sessions: connect, issue fixed-size GETs with a reply deadline each,
// close, repeat.
func (h *fleetHarness) runStreamWorker(p *sim.Proc, id int) {
	cfg := h.cfg
	rng := rand.New(rand.NewSource(workerSeed(cfg.Seed, id)))
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Buckets-1))
	replySize := mcReplyHdr + cfg.ValueBytes
	buf := make([]byte, 4096)
	req := make([]byte, mcHdrSize)
	for sess := id; sess < cfg.StreamSessions; sess += cfg.StreamWorkers {
		p.Sleep(sim.Time(rng.ExpFloat64() * float64(cfg.StreamInterarrival) * float64(cfg.StreamWorkers)))
		h.sessions++
		sk := h.m.Net.NewStreamSocket()
		if err := sk.Connect(p, FleetStreamPort); err != nil {
			h.stream.Refused++
			sk.Close()
			h.streamLeft--
			h.maybeStop()
			continue
		}
		var seq uint32
		for r := 0; r < cfg.ReqsPerSession; r++ {
			bucket := int(zipf.Uint64())
			elem := rng.Intn(cfg.ElemsPerBucket)
			seq++
			t0 := p.Now()
			h.stream.Offered++
			req = mcRequestInto(req, seq, bucket, elem)
			if _, err := sk.Send(p, req); err != nil {
				h.stream.Drops++
				h.noteRequest(p.Now(), false)
				break
			}
			deadline := t0 + cfg.Timeout
			got := 0
			ok := true
			for got < replySize {
				left := deadline - p.Now()
				if left <= 0 {
					// RecvTimeout treats d <= 0 as "block forever"; an
					// already-expired deadline is a timeout, not a license
					// to wait indefinitely.
					h.stream.Timeouts++
					ok = false
					break
				}
				n, err := sk.RecvTimeout(p, buf[:replySize-got], left)
				if err == errno.EAGAIN {
					h.stream.Timeouts++
					ok = false
					break
				}
				if err != nil || n == 0 {
					h.stream.Drops++
					ok = false
					break
				}
				got += n
			}
			if !ok {
				h.noteRequest(p.Now(), false)
				break // conn state is ambiguous after a miss; churn it
			}
			h.stream.Completed++
			h.streamLat = append(h.streamLat, latSample{ns: float64(p.Now() - t0), at: p.Now()})
			h.noteRequest(p.Now(), true)
		}
		sk.Close()
		h.streamLeft--
		h.maybeStop()
	}
}

// FleetRun is a started service-fleet run whose engine loop the caller
// owns: StartFleet stages everything, the caller drives the engine
// (m.Run, or RunUntil for a checkpoint cut), and Finish distills the
// SLO report. RunFleet composes the three for the common case.
type FleetRun struct {
	m   *platform.Machine
	cfg FleetConfig
	h   *fleetHarness
}

// Finish distills the completed run into its SLO report and installs it
// on the machine's Observer, so /sys/genesys/slo serves it afterwards.
// Call only after the engine has run to quiescence.
func (r *FleetRun) Finish() *obs.SLOReport {
	m, cfg, h := r.m, r.cfg, r.h
	rep := &obs.SLOReport{
		Workload:   "fleet",
		Seed:       cfg.Seed,
		Clients:    cfg.UDPSessions + cfg.StreamSessions,
		Sessions:   h.sessions,
		DurationNs: int64(m.E.Now()),
	}
	h.udp.Drops = m.Net.Dropped.Value()
	fillClass(rep.Class("udp"), &h.udp, h.udpLat)
	fillClass(rep.Class("stream"), &h.stream, h.streamLat)
	rep.Finalize()
	m.Obs.SetSLO(rep)
	return rep
}

// RunFleet executes one service-fleet run and returns its SLO report.
func RunFleet(m *platform.Machine, cfg FleetConfig) (*obs.SLOReport, error) {
	r, err := StartFleet(m, cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	return r.Finish(), nil
}

// StartFleet stages a service-fleet run — server sockets, serving
// kernel, arrival processes, stream worker pool — without driving the
// engine. The caller runs the engine to quiescence and then calls
// Finish on the returned FleetRun.
func StartFleet(m *platform.Machine, cfg FleetConfig) (*FleetRun, error) {
	if cfg.WGSize <= 0 {
		cfg.WGSize = 64
	}
	if cfg.PollTick <= 0 {
		cfg.PollTick = 100 * sim.Microsecond
	}
	if cfg.StreamWGs <= 0 {
		cfg.StreamWGs = 1
	}
	if cfg.StreamInterarrival <= 0 {
		cfg.StreamInterarrival = cfg.MeanInterarrival
	}
	pr := m.NewProcess("fleet")
	table := newMCTable(MemcachedConfig{
		Buckets: cfg.Buckets, ElemsPerBucket: cfg.ElemsPerBucket, ValueBytes: cfg.ValueBytes,
	})
	h := &fleetHarness{m: m, cfg: cfg, streamLeft: cfg.StreamSessions}

	// Server sockets: UDPWGs × SocksPerWG datagram shards plus the
	// stream listener, installed into the borrowed process's fd table.
	nShards := cfg.UDPWGs * cfg.SocksPerWG
	wgFDs := make([][]int, cfg.UDPWGs)
	for i := 0; i < nShards; i++ {
		sk := m.Net.NewSocket()
		if err := sk.Bind(FleetUDPBase + i); err != nil {
			return nil, err
		}
		fd, err := pr.FDs.Install(newSocketFile(sk))
		if err != nil {
			return nil, err
		}
		wg := i / cfg.SocksPerWG
		wgFDs[wg] = append(wgFDs[wg], fd)
	}
	lsk := m.Net.NewStreamSocket()
	if err := lsk.Bind(FleetStreamPort); err != nil {
		return nil, err
	}
	if err := lsk.Listen(1024); err != nil {
		return nil, err
	}
	lfd, err := pr.FDs.Install(&fs.File{Special: lsk, Path: "socket:[tcp]"})
	if err != nil {
		return nil, err
	}

	// The serving kernel: UDPWGs shard groups + 1 stream group, each
	// multiplexing through poll at work-group granularity.
	c := gclib.C{G: m.Genesys}
	udpFn := fleetUDPServerFn(c, table, wgFDs, cfg.GPUScanTime, cfg.PollTick, cfg.ValueBytes, &h.stop)
	streamFn := fleetStreamServerFn(c, table, lfd, cfg.GPUScanTime, cfg.PollTick, &h.stop)
	m.E.Spawn("fleet-server", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "fleet-serve", WorkGroups: cfg.UDPWGs + cfg.StreamWGs, WGSize: cfg.WGSize,
			Fn: func(w *gpu.Wavefront) {
				if w.WG.ID < cfg.UDPWGs {
					udpFn(w)
				} else {
					streamFn(w)
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})

	// The open-loop UDP arrival process: Poisson arrivals, Zipf keys,
	// all randomness drawn here so the callback machines stay RNG-free.
	m.E.Spawn("fleet-gen", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(cfg.Seed))
		zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Buckets-1))
		for i := 0; i < cfg.UDPSessions; i++ {
			p.Sleep(sim.Time(rng.ExpFloat64() * float64(cfg.MeanInterarrival)))
			h.sessions++
			s := h.getSession()
			if cap(s.keys) < cfg.ReqsPerSession {
				s.keys = make([][2]int, cfg.ReqsPerSession)
			}
			s.keys = s.keys[:cfg.ReqsPerSession]
			for r := range s.keys {
				s.keys[r] = [2]int{int(zipf.Uint64()), rng.Intn(cfg.ElemsPerBucket)}
			}
			// Shards are load-balanced uniformly; only key popularity is
			// Zipf-skewed.
			s.port = FleetUDPBase + rng.Intn(nShards)
			h.liveUDP++
			if !s.start() {
				h.liveUDP--
				h.sessFree = append(h.sessFree, s)
			}
		}
		h.genDone = true
		h.maybeStop()
	})

	for i := 0; i < cfg.StreamWorkers; i++ {
		i := i
		m.E.Spawn("fleet-stream-worker", func(p *sim.Proc) { h.runStreamWorker(p, i) })
	}

	return &FleetRun{m: m, cfg: cfg, h: h}, nil
}

// fillClass copies the counters, distills the latency percentiles and
// exact min/max, and retains the worst requests as exemplars.
func fillClass(dst, src *obs.SLOClass, lat []latSample) {
	*dst = *src
	if len(lat) == 0 {
		return
	}
	vals := make([]float64, len(lat))
	for i, s := range lat {
		vals[i] = s.ns
	}
	ps := sim.Percentiles(vals, 0, 50, 99, 99.9, 100)
	dst.MinNs = int64(ps[0])
	dst.P50Ns, dst.P99Ns, dst.P999Ns, dst.MaxNs =
		int64(ps[1]), int64(ps[2]), int64(ps[3]), int64(ps[4])
	// Top-K worst requests in completion order; strictly-greater
	// insertion keeps the earliest on ties (deterministic).
	var ex []obs.SLOExemplar
	for _, s := range lat {
		i := len(ex)
		for i > 0 && s.ns > float64(ex[i-1].LatNs) {
			i--
		}
		if i >= obs.ExemplarK {
			continue
		}
		ex = append(ex, obs.SLOExemplar{})
		copy(ex[i+1:], ex[i:])
		ex[i] = obs.SLOExemplar{LatNs: int64(s.ns), AtNs: int64(s.at)}
		if len(ex) > obs.ExemplarK {
			ex = ex[:obs.ExemplarK]
		}
	}
	dst.Exemplars = ex
}
