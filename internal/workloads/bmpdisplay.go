package workloads

import (
	"genesys/internal/core"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// BMPDisplayConfig parameterizes the §VIII-E device-control case study:
// the GPU opens /dev/fb0, queries and sets framebuffer properties over
// ioctl, mmaps the framebuffer, and fills it with a raster image.
type BMPDisplayConfig struct {
	XRes, YRes uint32
	// ComputePerRowGroup is GPU time spent rasterizing each row group.
	ComputePerRowGroup sim.Time
}

// DefaultBMPDisplayConfig draws a 640×480×32 image.
func DefaultBMPDisplayConfig() BMPDisplayConfig {
	return BMPDisplayConfig{XRes: 640, YRes: 480, ComputePerRowGroup: 20 * sim.Microsecond}
}

// BMPDisplayResult reports the run.
type BMPDisplayResult struct {
	Runtime       sim.Time
	InfoBefore    fs.VScreenInfo
	InfoAfter     fs.VScreenInfo
	PixelsWritten int64
	// Validated reports whether every framebuffer pixel matches the
	// raster function.
	Validated bool
}

// RasterPixel is the gradient raster copied to the screen (stands in for
// the paper's mmap'ed BMP source).
func RasterPixel(x, y uint32) [4]byte {
	return [4]byte{byte(x), byte(y), byte(x ^ y), 0xff}
}

// RunBMPDisplay executes the workload: kernel-granularity invocation for
// the device setup calls (a single configuration action for the whole
// grid — §VIII-E), then all work-groups fill the mapped pixels.
func RunBMPDisplay(m *platform.Machine, cfg BMPDisplayConfig) (BMPDisplayResult, error) {
	pr := m.NewProcess("bmp-display")
	g := m.Genesys
	var res BMPDisplayResult

	m.E.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		type fbState struct {
			fd   uint64
			addr uint64
		}
		state := &fbState{}

		// Kernel 1: device setup at kernel granularity.
		setup := m.GPU.Launch(p, gpu.Kernel{
			Name: "fb-setup", WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				opts := core.Options{Blocking: true, Wait: core.WaitPoll, Ordering: core.Relaxed}
				r, inv, _ := g.InvokeKernel(w, syscalls.Request{
					NR:   syscalls.SYS_open,
					Args: [6]uint64{fs.O_RDWR},
					Buf:  []byte("/dev/fb0"),
				}, opts)
				if !inv {
					return
				}
				state.fd = uint64(r.Ret)
				// Query current properties.
				arg := make([]byte, 12)
				g.InvokeKernel(w, syscalls.Request{
					NR:   syscalls.SYS_ioctl,
					Args: [6]uint64{state.fd, fs.FBIOGET_VSCREENINFO},
					Buf:  arg,
				}, opts)
				res.InfoBefore, _ = fs.DecodeVScreenInfo(arg)
				// Set the desired mode.
				g.InvokeKernel(w, syscalls.Request{
					NR:   syscalls.SYS_ioctl,
					Args: [6]uint64{state.fd, fs.FBIOPUT_VSCREENINFO},
					Buf:  fs.VScreenInfo{XRes: cfg.XRes, YRes: cfg.YRes, BPP: 32}.Encode(),
				}, opts)
				g.InvokeKernel(w, syscalls.Request{
					NR:   syscalls.SYS_ioctl,
					Args: [6]uint64{state.fd, fs.FBIOGET_VSCREENINFO},
					Buf:  arg,
				}, opts)
				res.InfoAfter, _ = fs.DecodeVScreenInfo(arg)
				// mmap the framebuffer.
				r, _, _ = g.InvokeKernel(w, syscalls.Request{
					NR:   syscalls.SYS_mmap,
					Args: [6]uint64{0, 0, 0, 0, state.fd, 0},
				}, opts)
				state.addr = uint64(r.Ret)
			},
		})
		setup.Wait(p)

		vma, err := pr.MM.FindVMA(state.addr)
		if err != nil || vma.Device == nil {
			return
		}
		pixels := vma.Device
		rowBytes := int(cfg.XRes) * 4
		rowsPerWG := 8
		wgs := int(cfg.YRes) / rowsPerWG

		// Kernel 2: rasterize into the mapped device memory.
		draw := m.GPU.Launch(p, gpu.Kernel{
			Name: "fb-fill", WorkGroups: wgs, WGSize: 256,
			Fn: func(w *gpu.Wavefront) {
				w.ComputeTime(cfg.ComputePerRowGroup)
				if !w.IsLeader() {
					return
				}
				for r := 0; r < rowsPerWG; r++ {
					y := uint32(w.WG.ID*rowsPerWG + r)
					row := pixels[int(y)*rowBytes : (int(y)+1)*rowBytes]
					for x := uint32(0); x < cfg.XRes; x++ {
						px := RasterPixel(x, y)
						copy(row[x*4:], px[:])
					}
					res.PixelsWritten += int64(cfg.XRes)
				}
			},
		})
		draw.Wait(p)
		// Release the mapping and close the device from the host side.
		ctx := &syscalls.Ctx{P: p, OS: m.OS, Proc: pr}
		syscalls.Dispatch(ctx, &syscalls.Request{
			NR: syscalls.SYS_munmap, Args: [6]uint64{state.addr, int64ToU64(vma.Length)}})
		syscalls.Dispatch(ctx, &syscalls.Request{
			NR: syscalls.SYS_close, Args: [6]uint64{state.fd}})
		res.Runtime = p.Now() - start
	})
	if err := m.Run(); err != nil {
		return res, err
	}

	// Validate the whole frame.
	res.Validated = res.PixelsWritten == int64(cfg.XRes)*int64(cfg.YRes)
	pix := m.FB.Pixels()
	for y := uint32(0); y < cfg.YRes && res.Validated; y++ {
		for x := uint32(0); x < cfg.XRes; x++ {
			want := RasterPixel(x, y)
			off := (int(y)*int(cfg.XRes) + int(x)) * 4
			if pix[off] != want[0] || pix[off+1] != want[1] ||
				pix[off+2] != want[2] || pix[off+3] != want[3] {
				res.Validated = false
				break
			}
		}
	}
	return res, nil
}

func int64ToU64(v int64) uint64 { return uint64(v) }
