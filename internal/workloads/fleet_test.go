package workloads_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"genesys/internal/fault"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/workloads"
)

func parseSLO(t *testing.T, js []byte) *obs.SLOReport {
	t.Helper()
	var rep obs.SLOReport
	if err := json.Unmarshal(js, &rep); err != nil {
		t.Fatalf("bad SLO JSON: %v\n%s", err, js)
	}
	return &rep
}

func runFleet(t *testing.T, cfg workloads.FleetConfig, plan *fault.Plan) (*platform.Machine, *workloads.FleetConfig, []byte) {
	t.Helper()
	pcfg := platform.DefaultConfig()
	pcfg.Faults = plan
	m := platform.New(pcfg)
	t.Cleanup(m.Shutdown)
	rep, err := workloads.RunFleet(m, cfg)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if m.Obs.SLO() != rep {
		t.Fatalf("SLO report not installed on observer")
	}
	return m, &cfg, rep.JSON()
}

// A small fleet completes most of its load and fills in every SLO field
// the report promises.
func TestFleetSmallCompletes(t *testing.T) {
	cfg := workloads.DefaultFleetConfig(2000)
	_, _, js := runFleet(t, cfg, nil)
	rep := parseSLO(t, js)
	if rep.Clients != 2000 {
		t.Fatalf("clients = %d, want 2000", rep.Clients)
	}
	if rep.Sessions < int64(rep.Clients) {
		t.Fatalf("sessions = %d < clients %d (refused binds excluded?)", rep.Sessions, rep.Clients)
	}
	udp, stream := rep.Classes["udp"], rep.Classes["stream"]
	if udp == nil || stream == nil {
		t.Fatalf("missing traffic classes: %v", rep.Classes)
	}
	for name, c := range rep.Classes {
		if c.Offered == 0 {
			t.Errorf("%s: offered = 0", name)
		}
		if c.Completed == 0 {
			t.Errorf("%s: completed = 0", name)
		}
		if c.Completed > 0 && (c.P50Ns <= 0 || c.P99Ns < c.P50Ns || c.P999Ns < c.P99Ns || c.MaxNs < c.P999Ns) {
			t.Errorf("%s: inconsistent percentiles p50=%d p99=%d p999=%d max=%d",
				name, c.P50Ns, c.P99Ns, c.P999Ns, c.MaxNs)
		}
		if got := c.Completed + c.Timeouts + c.Refused; got > c.Offered+c.Refused {
			t.Errorf("%s: accounting overflow: completed+timeouts=%d offered=%d", name, got, c.Offered)
		}
	}
	if rep.GoodputRPS <= 0 {
		t.Fatalf("goodput = %d", rep.GoodputRPS)
	}
	if udp.Completed+udp.Timeouts < udp.Offered*9/10 {
		t.Errorf("udp requests unaccounted: offered=%d completed=%d timeouts=%d",
			udp.Offered, udp.Completed, udp.Timeouts)
	}
}

// The acceptance gate: a 100k-client fleet run completes and its SLO
// report is byte-identical across a double run with the same seed. The
// arrival rate is cranked well past the servers' capacity — at this
// population the run is a stress test, and the SLO must record the
// overload (timeouts/drops) deterministically rather than collapse.
func TestFleetDeterministic100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-client fleet run in -short mode")
	}
	cfg := workloads.DefaultFleetConfig(100_000)
	cfg.MeanInterarrival = 4 * sim.Microsecond
	cfg.StreamInterarrival = 40 * sim.Microsecond
	_, _, js1 := runFleet(t, cfg, nil)
	_, _, js2 := runFleet(t, cfg, nil)
	if !bytes.Equal(js1, js2) {
		t.Fatalf("SLO report not deterministic across double run:\n--- run1\n%s\n--- run2\n%s", js1, js2)
	}
	rep := parseSLO(t, js1)
	if rep.Clients != 100_000 {
		t.Fatalf("clients = %d", rep.Clients)
	}
	udp := rep.Classes["udp"]
	if udp == nil || udp.Completed == 0 {
		t.Fatalf("100k fleet completed nothing: %s", js1)
	}
}

// Different seeds must actually change the run (guards against the
// generator ignoring cfg.Seed, which would make the determinism gate
// vacuous).
func TestFleetSeedSensitivity(t *testing.T) {
	cfg := workloads.DefaultFleetConfig(1500)
	_, _, js1 := runFleet(t, cfg, nil)
	cfg.Seed = 99
	_, _, js2 := runFleet(t, cfg, nil)
	if bytes.Equal(js1, js2) {
		t.Fatalf("seed change did not alter the SLO report")
	}
}

// Under the net-flaky fault profile the fleet degrades but the run still
// terminates and reports: failures move into timeouts/drops/refused.
func TestFleetNetFlakyDegrades(t *testing.T) {
	cfg := workloads.DefaultFleetConfig(1500)
	_, _, base := runFleet(t, cfg, nil)
	plan, err := fault.PlanFor("net-flaky", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	_, _, flaky := runFleet(t, cfg, &plan)
	b, f := parseSLO(t, base), parseSLO(t, flaky)
	var bBad, fBad int64
	for _, c := range b.Classes {
		bBad += c.Timeouts + c.Drops + c.Refused
	}
	for _, c := range f.Classes {
		fBad += c.Timeouts + c.Drops + c.Refused
	}
	if fBad <= bBad {
		t.Fatalf("net-flaky run no worse than baseline: bad %d vs %d\n%s", fBad, bBad, flaky)
	}
	if f.Classes["udp"].Completed == 0 && f.Classes["stream"].Completed == 0 {
		t.Fatalf("net-flaky run completed nothing (should degrade, not die):\n%s", flaky)
	}
}
