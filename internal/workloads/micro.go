// Package workloads implements every application and microbenchmark of
// the paper's evaluation (§VII and §VIII), plus the CPU and GPU baselines
// they are compared against. Each workload computes real results
// (verified by tests) while its timing flows through the simulated
// machine.
package workloads

import (
	"fmt"

	"genesys/internal/core"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// Granularity selects the system call invocation granularity (§V-A).
type Granularity int

const (
	GranWorkItem Granularity = iota
	GranWorkGroup
	GranKernel
)

func (g Granularity) String() string {
	switch g {
	case GranWorkItem:
		return "work-item"
	case GranWorkGroup:
		return "work-group"
	case GranKernel:
		return "kernel"
	}
	return "unknown"
}

// fillPattern writes a deterministic byte pattern used for read
// validation.
func fillPattern(b []byte, seed byte) {
	for i := range b {
		b[i] = byte(i)*31 + seed
	}
}

func patternByte(i int64, seed byte) byte { return byte(i)*31 + seed }

// PreadConfig parameterizes the Figure 7 / Figure 10 microbenchmark:
// GPU work-items cooperatively pread a tmpfs file.
type PreadConfig struct {
	FileSize    int64
	ChunkPerWI  int64 // bytes of file each work-item covers
	WGSize      int
	Granularity Granularity
	Wait        core.WaitMode
}

// PreadResult reports one run.
type PreadResult struct {
	ReadTime  sim.Time
	Bytes     int64
	Syscalls  int64
	Validated bool
}

// LatencyPerByte returns ns per byte read (Figure 10's y-axis).
func (r PreadResult) LatencyPerByte() float64 {
	if r.Bytes == 0 {
		return 0
	}
	return float64(r.ReadTime) / float64(r.Bytes)
}

// RunPread executes the pread microbenchmark on a fresh machine.
func RunPread(m *platform.Machine, cfg PreadConfig) (PreadResult, error) {
	if cfg.ChunkPerWI <= 0 {
		cfg.ChunkPerWI = 64 << 10
	}
	if cfg.WGSize <= 0 {
		cfg.WGSize = 64
	}
	if cfg.FileSize%cfg.ChunkPerWI != 0 {
		return PreadResult{}, fmt.Errorf("file size %d not divisible by chunk %d",
			cfg.FileSize, cfg.ChunkPerWI)
	}
	workItems := int(cfg.FileSize / cfg.ChunkPerWI)
	if workItems%cfg.WGSize != 0 {
		return PreadResult{}, fmt.Errorf("%d work-items not divisible by WG size %d",
			workItems, cfg.WGSize)
	}

	pr := m.NewProcess("pread-bench")
	content := make([]byte, cfg.FileSize)
	fillPattern(content, 7)
	if err := m.WriteFile("/tmp/input", content); err != nil {
		return PreadResult{}, err
	}
	f, err := m.VFS.Open("/tmp/input", fs.O_RDONLY)
	if err != nil {
		return PreadResult{}, err
	}
	fd, err := pr.FDs.Install(f)
	if err != nil {
		return PreadResult{}, err
	}

	g := m.Genesys
	validated := true
	check := func(buf []byte, off int64) {
		if len(buf) == 0 ||
			buf[0] != patternByte(off, 7) ||
			buf[len(buf)-1] != patternByte(off+int64(len(buf))-1, 7) {
			validated = false
		}
	}

	var res PreadResult
	m.E.Spawn("host", func(p *sim.Proc) {
		wgBytes := cfg.ChunkPerWI * int64(cfg.WGSize)
		k := m.GPU.Launch(p, gpu.Kernel{
			Name:       "pread-bench",
			WorkGroups: workItems / cfg.WGSize,
			WGSize:     cfg.WGSize,
			Fn: func(w *gpu.Wavefront) {
				switch cfg.Granularity {
				case GranWorkItem:
					bufs := make([][]byte, w.Lanes)
					g.InvokeEach(w, func(lane int) *syscalls.Request {
						off := int64(w.GlobalWorkItemID(lane)) * cfg.ChunkPerWI
						bufs[lane] = make([]byte, cfg.ChunkPerWI)
						return &syscalls.Request{
							NR:   syscalls.SYS_pread64,
							Args: [6]uint64{uint64(fd), uint64(cfg.ChunkPerWI), uint64(off)},
							Buf:  bufs[lane],
						}
					}, core.Options{Blocking: true, Wait: cfg.Wait})
					for lane := 0; lane < w.Lanes; lane++ {
						check(bufs[lane], int64(w.GlobalWorkItemID(lane))*cfg.ChunkPerWI)
					}
				case GranWorkGroup:
					off := int64(w.WG.ID) * wgBytes
					buf := make([]byte, wgBytes)
					r, invoker := g.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pread64,
						Args: [6]uint64{uint64(fd), uint64(wgBytes), uint64(off)},
						Buf:  buf,
					}, core.Options{Blocking: true, Wait: cfg.Wait,
						Ordering: core.Relaxed, Kind: core.Producer})
					if invoker {
						if r.Ret != int64(wgBytes) {
							validated = false
						}
						check(buf, off)
					}
				case GranKernel:
					buf := w.WG.Run.Args.([]byte)
					r, invoker, err := g.InvokeKernel(w, syscalls.Request{
						NR:   syscalls.SYS_pread64,
						Args: [6]uint64{uint64(fd), uint64(cfg.FileSize), 0},
						Buf:  buf,
					}, core.Options{Blocking: true, Wait: cfg.Wait,
						Ordering: core.Relaxed, Kind: core.Producer})
					if err != nil {
						validated = false
					}
					if invoker {
						if r.Ret != cfg.FileSize {
							validated = false
						}
						check(buf, 0)
					}
				}
			},
			Args: make([]byte, cfg.FileSize), // kernel-granularity buffer
		})
		k.Wait(p)
		g.Drain(p)
		res.ReadTime = p.Now() - k.LaunchedAt
	})
	if err := m.Run(); err != nil {
		return PreadResult{}, err
	}
	res.Bytes = cfg.FileSize
	res.Syscalls = g.Invocations.Value()
	res.Validated = validated
	return res, nil
}

// PermuteConfig parameterizes the Figure 8 microbenchmark: work-groups of
// 1024 work-items permute 8 KiB blocks (DES-style) and pwrite the results,
// under each blocking × ordering combination.
type PermuteConfig struct {
	Blocks         int
	BlockSize      int
	Iterations     int
	WGSize         int
	Blocking       bool
	Ordering       core.Ordering
	Wait           core.WaitMode
	ComputePerIter sim.Time // per-wavefront compute per permutation round
}

// PermuteResult reports one run.
type PermuteResult struct {
	TotalTime      sim.Time
	PerPermutation sim.Time
	Validated      bool
}

// permuteBlock applies one round of the fixed block permutation.
func permuteBlock(b []byte) {
	n := len(b)
	tmp := make([]byte, n)
	for i := 0; i < n; i++ {
		tmp[(i*257+31)%n] = b[i]
	}
	copy(b, tmp)
}

// RunPermute executes the blocking/ordering microbenchmark.
func RunPermute(m *platform.Machine, cfg PermuteConfig) (PermuteResult, error) {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 8 << 10
	}
	if cfg.WGSize <= 0 {
		cfg.WGSize = 1024
	}
	if cfg.ComputePerIter <= 0 {
		cfg.ComputePerIter = 3 * sim.Microsecond
	}
	pr := m.NewProcess("permute")
	f, err := m.VFS.Open("/tmp/permuted", fs.O_CREAT|fs.O_WRONLY)
	if err != nil {
		return PermuteResult{}, err
	}
	fd, err := pr.FDs.Install(f)
	if err != nil {
		return PermuteResult{}, err
	}

	// Input blocks preloaded with deterministic pseudo-random values.
	input := make([][]byte, cfg.Blocks)
	for i := range input {
		input[i] = make([]byte, cfg.BlockSize)
		fillPattern(input[i], byte(i))
	}

	g := m.Genesys
	var res PermuteResult
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name:       "permute",
			WorkGroups: cfg.Blocks,
			WGSize:     cfg.WGSize,
			Fn: func(w *gpu.Wavefront) {
				// Each wavefront contributes its share of every round's
				// permutation work; the leader applies the functional
				// permutation once per round.
				for it := 0; it < cfg.Iterations; it++ {
					w.ComputeTime(cfg.ComputePerIter)
					if w.IsLeader() {
						permuteBlock(input[w.WG.ID])
					}
					w.Barrier()
				}
				g.InvokeWG(w, syscalls.Request{
					NR: syscalls.SYS_pwrite64,
					Args: [6]uint64{uint64(fd), uint64(cfg.BlockSize),
						uint64(w.WG.ID * cfg.BlockSize)},
					Buf: input[w.WG.ID],
				}, core.Options{Blocking: cfg.Blocking, Wait: cfg.Wait,
					Ordering: cfg.Ordering, Kind: core.Consumer})
			},
		})
		k.Wait(p)
		g.Drain(p)
		res.TotalTime = p.Now() - k.LaunchedAt
	})
	if err := m.Run(); err != nil {
		return PermuteResult{}, err
	}
	res.PerPermutation = res.TotalTime / sim.Time(cfg.Blocks*maxInt(cfg.Iterations, 1))
	// Validate against a reference permutation of block 0.
	ref := make([]byte, cfg.BlockSize)
	fillPattern(ref, 0)
	for it := 0; it < cfg.Iterations; it++ {
		permuteBlock(ref)
	}
	out, err := m.ReadFile("/tmp/permuted")
	if err != nil {
		return PermuteResult{}, err
	}
	res.Validated = len(out) == cfg.Blocks*cfg.BlockSize && bytesEqual(out[:cfg.BlockSize], ref)
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PollProbeConfig parameterizes the Figure 9 experiment: a fixed
// population of GPU wavefronts polls PolledLines distinct cache lines
// while a CPU probe measures its own memory access throughput.
type PollProbeConfig struct {
	PolledLines int
	PollerWaves int      // concurrently polling wavefronts
	Duration    sim.Time // measurement window
}

// PollProbeResult reports the probe's achieved throughput.
type PollProbeResult struct {
	CPUAccessesPerSec float64
	GPUL2MissRate     float64
}

// RunPollProbe executes the polling-contention experiment.
func RunPollProbe(m *platform.Machine, cfg PollProbeConfig) (PollProbeResult, error) {
	if cfg.PollerWaves <= 0 {
		cfg.PollerWaves = 256
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * sim.Millisecond
	}
	m.NewProcess("poll-probe")
	m.Mem.AddPolledLines(cfg.PolledLines)
	deadline := cfg.Duration

	m.E.Spawn("gpu-pollers", func(p *sim.Proc) {
		m.GPU.Launch(p, gpu.Kernel{
			Name:       "pollers",
			WorkGroups: cfg.PollerWaves,
			WGSize:     64,
			Fn: func(w *gpu.Wavefront) {
				for w.P.Now() < deadline {
					m.Mem.PollLoad(w.P)
				}
			},
		})
	})
	var accesses int64
	m.E.Spawn("cpu-probe", func(p *sim.Proc) {
		for p.Now() < deadline {
			m.Mem.CPUAccess(p)
			accesses++
		}
	})
	if err := m.Run(); err != nil {
		return PollProbeResult{}, err
	}
	total := m.Mem.L2Hits.Value() + m.Mem.L2Misses.Value()
	missRate := 0.0
	if total > 0 {
		missRate = float64(m.Mem.L2Misses.Value()) / float64(total)
	}
	return PollProbeResult{
		CPUAccessesPerSec: float64(accesses) / deadline.Seconds(),
		GPUL2MissRate:     missRate,
	}, nil
}
