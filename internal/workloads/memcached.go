package workloads

import (
	"encoding/binary"
	"errors"
	"fmt"

	"genesys/internal/core"
	"genesys/internal/cpu"
	"genesys/internal/errno"
	"genesys/internal/fs"
	"genesys/internal/gclib"
	"genesys/internal/gpu"
	"genesys/internal/netstack"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// MemcachedVariant selects a Figure 15 configuration.
type MemcachedVariant int

const (
	// MemcachedCPU serves GETs with CPU threads.
	MemcachedCPU MemcachedVariant = iota
	// MemcachedGPUNoSyscall batches requests on the CPU, launches a
	// kernel per batch and replies from the CPU.
	MemcachedGPUNoSyscall
	// MemcachedGENESYS serves GETs from persistent GPU work-groups using
	// sendto/recvfrom at work-group granularity (blocking, weak — the
	// paper's best configuration, §VIII-D).
	MemcachedGENESYS
)

func (v MemcachedVariant) String() string {
	switch v {
	case MemcachedCPU:
		return "CPU"
	case MemcachedGPUNoSyscall:
		return "GPU-no-syscall"
	case MemcachedGENESYS:
		return "GENESYS"
	}
	return "unknown"
}

// Memcached wire format (binary UDP, GET only on the GPU path):
//
//	request:  op(1)=0 GET | seq(4) | bucket(4) | keyIdx(4)
//	reply:    status(1)   | seq(4) | value...
const (
	mcOpGet     = 0
	mcHdrSize   = 13
	mcReplyHdr  = 5
	mcServerUDP = 11211
)

// MemcachedConfig parameterizes the §VIII-D network case study.
type MemcachedConfig struct {
	Variant        MemcachedVariant
	Buckets        int
	ElemsPerBucket int
	ValueBytes     int
	Requests       int
	// ClientInterval is the open-loop request inter-arrival time.
	ClientInterval sim.Time
	// CPUComparePerElem is the CPU cost of one key comparison during the
	// linear bucket scan.
	CPUComparePerElem sim.Time
	// GPUScanTime is the time a work-group needs to scan a bucket in
	// parallel (hash, lookup and data copy parallelized — §VIII-D).
	GPUScanTime sim.Time
	// ServerThreads / ServerWGs size the two server styles.
	ServerThreads int
	ServerWGs     int
	// Batch is the GPU-no-syscall batch size.
	Batch int
}

// DefaultMemcachedConfig matches the paper's highlighted point: 1024
// elements per bucket, 1 KiB values.
func DefaultMemcachedConfig(v MemcachedVariant) MemcachedConfig {
	return MemcachedConfig{
		Variant:           v,
		Buckets:           64,
		ElemsPerBucket:    1024,
		ValueBytes:        1 << 10,
		Requests:          2000,
		ClientInterval:    25 * sim.Microsecond,
		CPUComparePerElem: 120 * sim.Nanosecond,
		GPUScanTime:       2 * sim.Microsecond,
		ServerThreads:     3,
		ServerWGs:         4,
		Batch:             16,
	}
}

// MemcachedResult reports one run.
type MemcachedResult struct {
	Completed     int
	MeanLatency   sim.Time
	P99Latency    sim.Time
	ThroughputRPS float64
	// Correct counts replies whose value matched the expected entry.
	Correct int
}

// mcTable is the fixed-size hash table shared between CPU and GPU.
type mcTable struct {
	buckets [][]mcEntry
}

type mcEntry struct {
	key   uint64
	value []byte
}

func newMCTable(cfg MemcachedConfig) *mcTable {
	t := &mcTable{buckets: make([][]mcEntry, cfg.Buckets)}
	for b := range t.buckets {
		t.buckets[b] = make([]mcEntry, cfg.ElemsPerBucket)
		for e := range t.buckets[b] {
			val := make([]byte, cfg.ValueBytes)
			fillPattern(val, byte(b*31+e))
			t.buckets[b][e] = mcEntry{key: mcKey(b, e), value: val}
		}
	}
	return t
}

func mcKey(bucket, elem int) uint64 {
	return uint64(bucket)<<32 | uint64(elem) | 1<<63
}

// get performs the linear bucket scan and returns the value and the
// number of comparisons performed.
func (t *mcTable) get(bucket, elem int) ([]byte, int) {
	b := t.buckets[bucket%len(t.buckets)]
	want := mcKey(bucket%len(t.buckets), elem)
	for i := range b {
		if b[i].key == want {
			return b[i].value, i + 1
		}
	}
	return nil, len(b)
}

func mcRequest(seq uint32, bucket, elem int) []byte {
	return mcRequestInto(nil, seq, bucket, elem)
}

// mcRequestInto encodes a GET request into b's storage when it is large
// enough (allocating otherwise) — the per-request fast path for clients
// that reuse one scratch buffer.
func mcRequestInto(b []byte, seq uint32, bucket, elem int) []byte {
	if cap(b) >= mcHdrSize {
		b = b[:mcHdrSize]
	} else {
		b = make([]byte, mcHdrSize)
	}
	b[0] = mcOpGet
	binary.LittleEndian.PutUint32(b[1:], seq)
	binary.LittleEndian.PutUint32(b[5:], uint32(bucket))
	binary.LittleEndian.PutUint32(b[9:], uint32(elem))
	return b
}

func mcReply(seq uint32, value []byte) []byte {
	return mcReplyInto(nil, seq, value)
}

// mcReplyInto is mcReply reusing b's storage when possible (see
// mcRequestInto).
func mcReplyInto(b []byte, seq uint32, value []byte) []byte {
	n := mcReplyHdr + len(value)
	if cap(b) >= n {
		b = b[:n]
	} else {
		b = make([]byte, n)
	}
	b[0] = 0
	binary.LittleEndian.PutUint32(b[1:], seq)
	copy(b[mcReplyHdr:], value)
	return b
}

// RunMemcached executes one variant: open-loop clients issue GETs at a
// fixed rate; the server answers per the variant; latency is measured per
// completed request.
func RunMemcached(m *platform.Machine, cfg MemcachedConfig) (MemcachedResult, error) {
	pr := m.NewProcess("memcached")
	table := newMCTable(cfg)
	g := m.Genesys

	var res MemcachedResult
	latencies := make([]float64, 0, cfg.Requests)
	var firstSend, lastReply sim.Time

	// Client: one open-loop sender plus a reply collector.
	clientSock := m.Net.NewSocket()
	if err := clientSock.Bind(0); err != nil {
		return res, err
	}
	sentAt := make(map[uint32]sim.Time, cfg.Requests)
	expect := make(map[uint32][2]int, cfg.Requests)

	m.E.Spawn("client-send", func(p *sim.Proc) {
		rng := p.Rand()
		firstSend = p.Now()
		for i := 0; i < cfg.Requests; i++ {
			seq := uint32(i)
			bucket := rng.Intn(cfg.Buckets)
			elem := rng.Intn(cfg.ElemsPerBucket)
			sentAt[seq] = p.Now()
			expect[seq] = [2]int{bucket, elem}
			clientSock.SendTo(mcServerUDP, mcRequest(seq, bucket, elem))
			p.Sleep(cfg.ClientInterval)
		}
	})
	m.E.SpawnDaemon("client-recv", func(p *sim.Proc) {
		for {
			dg, err := clientSock.RecvFrom(p)
			if err != nil {
				return
			}
			if len(dg.Data) < mcReplyHdr {
				continue
			}
			seq := binary.LittleEndian.Uint32(dg.Data[1:])
			t0, ok := sentAt[seq]
			if !ok {
				continue
			}
			delete(sentAt, seq)
			res.Completed++
			latencies = append(latencies, float64(p.Now()-t0))
			lastReply = p.Now()
			be := expect[seq]
			want, _ := table.get(be[0], be[1])
			if bytesEqual(dg.Data[mcReplyHdr:], want) {
				res.Correct++
			}
		}
	})

	serverSock := m.Net.NewSocket()
	if err := serverSock.Bind(mcServerUDP); err != nil {
		return res, err
	}

	switch cfg.Variant {
	case MemcachedCPU:
		for t := 0; t < cfg.ServerThreads; t++ {
			m.E.SpawnDaemon(fmt.Sprintf("mc-server%d", t), func(p *sim.Proc) {
				for {
					dg, err := serverSock.RecvFrom(p)
					if err != nil {
						return
					}
					// recvfrom syscall + linear scan + sendto syscall.
					m.CPU.Exec(p, m.OS.Config().SyscallSoftware, cpu.PrioNormal)
					seq := binary.LittleEndian.Uint32(dg.Data[1:])
					bucket := int(binary.LittleEndian.Uint32(dg.Data[5:]))
					elem := int(binary.LittleEndian.Uint32(dg.Data[9:]))
					val, cmps := table.get(bucket, elem)
					m.CPU.Exec(p, sim.Time(cmps)*cfg.CPUComparePerElem, cpu.PrioNormal)
					m.CPU.Exec(p, m.OS.Config().SyscallSoftware, cpu.PrioNormal)
					serverSock.SendTo(dg.SrcPort, mcReply(seq, val))
				}
			})
		}

	case MemcachedGPUNoSyscall:
		// The CPU accumulates a batch, launches a kernel over it, then
		// sends the replies (Figure 1 left applied to networking).
		m.E.SpawnDaemon("mc-batcher", func(p *sim.Proc) {
			type pending struct {
				seq          uint32
				bucket, elem int
				src          int
			}
			for {
				batch := make([]pending, 0, cfg.Batch)
				for len(batch) < cfg.Batch {
					dg, err := serverSock.RecvFrom(p)
					if err != nil {
						return
					}
					m.CPU.Exec(p, m.OS.Config().SyscallSoftware, cpu.PrioNormal)
					batch = append(batch, pending{
						seq:    binary.LittleEndian.Uint32(dg.Data[1:]),
						bucket: int(binary.LittleEndian.Uint32(dg.Data[5:])),
						elem:   int(binary.LittleEndian.Uint32(dg.Data[9:])),
						src:    dg.SrcPort,
					})
				}
				values := make([][]byte, len(batch))
				k := m.GPU.Launch(p, gpu.Kernel{
					Name: "mc-batch", WorkGroups: len(batch), WGSize: 256,
					Fn: func(w *gpu.Wavefront) {
						w.ComputeTime(cfg.GPUScanTime)
						if w.IsLeader() {
							values[w.WG.ID], _ = table.get(batch[w.WG.ID].bucket, batch[w.WG.ID].elem)
						}
					},
				})
				k.Wait(p)
				for i, pq := range batch {
					m.CPU.Exec(p, m.OS.Config().SyscallSoftware, cpu.PrioNormal)
					serverSock.SendTo(pq.src, mcReply(pq.seq, values[i]))
				}
			}
		})

	case MemcachedGENESYS:
		// Persistent GPU work-groups: recvfrom → parallel lookup →
		// sendto, all from the GPU at work-group granularity.
		fd, err := pr.FDs.Install(newSocketFile(serverSock))
		if err != nil {
			return res, err
		}
		perWG := cfg.Requests / cfg.ServerWGs
		m.E.Spawn("mc-gpu-launcher", func(p *sim.Proc) {
			m.GPU.Launch(p, gpu.Kernel{
				Name: "mc-serve", WorkGroups: cfg.ServerWGs, WGSize: 256,
				Fn: func(w *gpu.Wavefront) {
					sh := w.WG.Shared
					if w.IsLeader() {
						sh["buf"] = make([]byte, mcHdrSize)
					}
					opts := core.Options{Blocking: true, Wait: core.WaitPoll,
						Ordering: core.Relaxed, Kind: core.Producer}
					buf := sh["buf"].([]byte)
					for i := 0; i < perWG; i++ {
						if r, inv := g.InvokeWG(w, syscalls.Request{
							NR:   syscalls.SYS_recvfrom,
							Args: [6]uint64{uint64(fd), mcHdrSize},
							Buf:  buf,
						}, opts); inv {
							sh["src"] = int(r.OutArgs[0])
						}
						src := sh["src"].(int)
						// Parallel hash + bucket scan + value copy.
						w.ComputeTime(cfg.GPUScanTime)
						if w.IsLeader() {
							seq := binary.LittleEndian.Uint32(buf[1:])
							bucket := int(binary.LittleEndian.Uint32(buf[5:]))
							elem := int(binary.LittleEndian.Uint32(buf[9:]))
							val, _ := table.get(bucket, elem)
							reply := mcReply(seq, val)
							g.Invoke(w, syscalls.Request{
								NR:   syscalls.SYS_sendto,
								Args: [6]uint64{uint64(fd), uint64(len(reply)), 0, 0, uint64(src)},
								Buf:  reply,
							}, core.Options{Blocking: true, Wait: core.WaitPoll})
						}
						w.Barrier()
					}
				},
			})
		})
	}

	// End the simulation when all requests are answered or a timeout
	// elapses. UDP drops can leave GPU work-groups blocked in recvfrom
	// forever; that surfaces as a deadlock report, which is an expected
	// outcome here, not an error.
	deadline := sim.Time(cfg.Requests)*cfg.ClientInterval + 500*sim.Millisecond
	if err := m.E.RunUntil(deadline); err != nil {
		var dl *sim.ErrDeadlock
		if !errors.As(err, &dl) {
			return res, err
		}
	}
	if res.Completed > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = sim.Time(sum / float64(res.Completed))
		res.P99Latency = sim.Time(sim.Percentiles(latencies, 99)[0])
		span := lastReply - firstSend
		if span > 0 {
			res.ThroughputRPS = float64(res.Completed) / span.Seconds()
		}
	}
	return res, nil
}

// newSocketFile wraps a socket as an open-file description for the fd
// table (sockets are files).
func newSocketFile(s *netstack.Socket) *fs.File {
	return &fs.File{Special: s, Path: "socket:[udp]"}
}

// --- fleet serving (service-fleet scenario, fleet.go) -----------------------
//
// The fleet upgrade of the §VIII-D server: instead of one work-group
// blocked per socket, each persistent work-group multiplexes a shard of
// sockets through poll(2) at work-group granularity — the readiness
// syscall is what lets a handful of work-groups serve a million-client
// population. Both serving loops run until *stop flips, which the fleet
// harness does once every client session has resolved.

// fleetUDPServerFn returns the kernel body for one UDP shard: the
// work-group polls its shard's sockets, and for each readable one does
// recvfrom → parallel bucket scan → sendto, all collectively.
func fleetUDPServerFn(c gclib.C, table *mcTable, wgFDs [][]int,
	scan, tick sim.Time, valueBytes int, stop *bool) func(*gpu.Wavefront) {
	return func(w *gpu.Wavefront) {
		fds := wgFDs[w.WG.ID]
		buf := make([]byte, mcHdrSize)
		// Per-wavefront scratch: the poll encoding/ready set and the reply
		// buffer are reused across every request the shard ever serves.
		var ps gclib.PollScratch
		reply := make([]byte, 0, mcReplyHdr+valueBytes)
		for !*stop {
			// One timed poll bounds the stop-flag latency; nonblocking
			// re-polls then drain the burst, so a backlogged shard is served
			// at syscall rate rather than one datagram per tick.
			ready, err := c.PollWith(w, fds, tick, &ps)
			for err == errno.OK && len(ready) > 0 && !*stop {
				for _, idx := range ready {
					n, src, rerr := c.RecvFromTimeout(w, fds[idx], buf, tick)
					if rerr != errno.OK || n < mcHdrSize {
						continue
					}
					// Parallel hash + bucket scan + value copy (§VIII-D).
					w.ComputeTime(scan)
					seq := binary.LittleEndian.Uint32(buf[1:])
					bucket := int(binary.LittleEndian.Uint32(buf[5:]))
					elem := int(binary.LittleEndian.Uint32(buf[9:]))
					val, _ := table.get(bucket, elem%valueElems(table, bucket))
					reply = mcReplyInto(reply, seq, val)
					c.SendTo(w, fds[idx], reply, src)
				}
				ready, err = c.PollWith(w, fds, 0, &ps)
			}
			if err == errno.EINTR || err == errno.EAGAIN {
				// A watchdog-aborted poll under fault injection; the
				// shard must keep serving, not shed capacity.
				continue
			}
			if err != errno.OK {
				return
			}
		}
	}
}

// valueElems guards the element index against the table's bucket size.
func valueElems(t *mcTable, bucket int) int {
	return len(t.buckets[bucket%len(t.buckets)])
}

// fleetStreamServerFn returns the kernel body for the stream work-group:
// it polls the listener plus every accepted connection, accepting,
// serving fixed-size GET requests, and retiring connections at EOF.
func fleetStreamServerFn(c gclib.C, table *mcTable, lfd int,
	scan, tick sim.Time, stop *bool) func(*gpu.Wavefront) {
	return func(w *gpu.Wavefront) {
		conns := []int{}
		accum := map[int][]byte{}
		buf := make([]byte, 256)
		timeout := tick
		// Per-wavefront scratch reused every round (see fleetUDPServerFn).
		var ps gclib.PollScratch
		var reply []byte
		fds := []int{lfd}
		for !*stop {
			fds = append(fds[:1], conns...)
			ready, err := c.PollWith(w, fds, timeout, &ps)
			if err == errno.EINTR || err == errno.EAGAIN {
				continue // transient (watchdog abort); keep serving
			}
			if err != errno.OK {
				return
			}
			// Drain mode: while work keeps arriving, re-poll without
			// blocking so a connection burst is accepted and served at
			// syscall rate, not one round per tick.
			if len(ready) > 0 {
				timeout = 0
			} else {
				timeout = tick
			}
			var dead []int
			for _, idx := range ready {
				if idx == 0 {
					// Drain the whole accept backlog; a connection burst
					// must not be admitted one conn per poll round.
					for {
						cfd, _, aerr := c.Accept(w, lfd, sim.Nanosecond)
						if aerr != errno.OK {
							break
						}
						conns = append(conns, cfd)
					}
					continue
				}
				cfd := fds[idx]
				n, rerr := c.Recv(w, cfd, buf, sim.Microsecond)
				if rerr != errno.OK || n == 0 {
					dead = append(dead, cfd)
					continue
				}
				b := append(accum[cfd], buf[:n]...)
				off := 0
				for len(b)-off >= mcHdrSize {
					req := b[off : off+mcHdrSize]
					w.ComputeTime(scan)
					seq := binary.LittleEndian.Uint32(req[1:])
					bucket := int(binary.LittleEndian.Uint32(req[5:]))
					elem := int(binary.LittleEndian.Uint32(req[9:]))
					val, _ := table.get(bucket, elem%valueElems(table, bucket))
					off += mcHdrSize
					reply = mcReplyInto(reply, seq, val)
					if _, serr := c.Send(w, cfd, reply); serr != errno.OK {
						dead = append(dead, cfd)
						break
					}
				}
				// Keep the unconsumed tail at the front so the accumulator's
				// storage is reused instead of re-sliced away.
				accum[cfd] = b[:copy(b, b[off:])]
			}
			for _, cfd := range dead {
				c.Close(w, cfd)
				delete(accum, cfd)
				for i, fd := range conns {
					if fd == cfd {
						conns = append(conns[:i], conns[i+1:]...)
						break
					}
				}
			}
		}
		for _, cfd := range conns {
			c.Close(w, cfd)
		}
	}
}
