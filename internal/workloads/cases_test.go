package workloads

import (
	"bytes"
	"testing"

	"genesys/internal/platform"
	"genesys/internal/sim"
)

// --- miniAMR (§VIII-A, Figure 11) ---

func miniAMRMachine(t *testing.T, seed int64) *platform.Machine {
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	cfg.VM.PhysPages = MiniAMRPhysBytes / cfg.VM.PageSize
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	return m
}

func TestMiniAMRBaselineDiesToWatchdog(t *testing.T) {
	cfg := DefaultMiniAMRConfig()
	cfg.WatermarkBytes = 0 // no madvise
	res, err := RunMiniAMR(miniAMRMachine(t, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("baseline with dataset > physical memory survived; paper's baseline does not complete")
	}
	if res.FailedStep == 0 {
		t.Fatal("baseline failed before touching anything")
	}
}

func TestMiniAMRMadviseCompletes(t *testing.T) {
	for _, wm := range []int64{192 << 20, 248 << 20} { // scaled rss-3gb / rss-4gb
		cfg := DefaultMiniAMRConfig()
		cfg.WatermarkBytes = wm
		res, err := RunMiniAMR(miniAMRMachine(t, 1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("watermark %d MiB: did not complete (step %d)", wm>>20, res.FailedStep)
		}
		if res.Madvises == 0 {
			t.Fatalf("watermark %d MiB: never called madvise", wm>>20)
		}
		// RSS must stay near the watermark, well below the dataset size.
		if res.PeakRSS > wm+(32<<20) {
			t.Fatalf("watermark %d MiB: peak RSS %d MiB", wm>>20, res.PeakRSS>>20)
		}
	}
}

func TestMiniAMRWatermarkTradeoff(t *testing.T) {
	// Figure 11: the lower watermark uses less memory but runs longer.
	run := func(wm int64) MiniAMRResult {
		cfg := DefaultMiniAMRConfig()
		cfg.WatermarkBytes = wm
		res, err := RunMiniAMR(miniAMRMachine(t, 2), cfg)
		if err != nil || !res.Completed {
			t.Fatalf("wm=%d: %v %+v", wm, err, res)
		}
		return res
	}
	low := run(192 << 20)
	high := run(248 << 20)
	if low.PeakRSS >= high.PeakRSS {
		t.Fatalf("low watermark RSS %d ≥ high watermark RSS %d", low.PeakRSS, high.PeakRSS)
	}
	if low.Runtime <= high.Runtime {
		t.Fatalf("low watermark (%v) not slower than high watermark (%v)", low.Runtime, high.Runtime)
	}
	if len(low.RSSTrace) == 0 {
		t.Fatal("no RSS trace recorded")
	}
}

// --- signal-search (§VIII-B, Figure 12) ---

func TestSignalSearchCorrectAndOverlapped(t *testing.T) {
	base := DefaultSignalSearchConfig()
	base.Blocks = 48

	cfgSig := base
	cfgSig.UseSignals = true
	sigRes, err := RunSignalSearch(newM(t, 1), cfgSig)
	if err != nil {
		t.Fatal(err)
	}
	cfgBase := base
	cfgBase.UseSignals = false
	baseRes, err := RunSignalSearch(newM(t, 1), cfgBase)
	if err != nil {
		t.Fatal(err)
	}

	// Both compute identical, correct digests.
	for i := 0; i < base.Blocks; i++ {
		want := ReferenceSha512(base.BlockBytes, i)
		if !bytes.Equal(sigRes.Digests[i], want) || !bytes.Equal(baseRes.Digests[i], want) {
			t.Fatalf("digest mismatch at block %d", i)
		}
	}
	if sigRes.Signals != int64(base.Blocks) {
		t.Fatalf("signals = %d, want %d", sigRes.Signals, base.Blocks)
	}
	// Overlap wins, by a modest margin (paper: ~14%).
	speedup := float64(baseRes.Runtime) / float64(sigRes.Runtime)
	if speedup < 1.05 {
		t.Fatalf("speedup = %.3f, want > 1.05 (paper ≈ 1.14)", speedup)
	}
	if speedup > 1.6 {
		t.Fatalf("speedup = %.3f implausibly high for this CPU/GPU phase ratio", speedup)
	}
}

// --- grep (§VIII-C, Figure 13a) ---

func TestGrepAllVariantsCorrect(t *testing.T) {
	for _, v := range []GrepVariant{GrepCPU, GrepOpenMP, GrepGPUWorkGroup,
		GrepGPUWorkItemPoll, GrepGPUWorkItemHalt} {
		cfg := DefaultGrepConfig(v)
		cfg.Files = 16
		cfg.FileBytes = 64 << 10
		res, err := RunGrep(newM(t, 1), cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !res.Correct() {
			t.Fatalf("%v: found %v, want %v", v, res.Found, res.Expected)
		}
	}
}

func TestGrepPerformanceOrdering(t *testing.T) {
	// Figure 13a: CPU > OpenMP > GPU variants, with WI-halt-resume the
	// best GPU flavor (paper: 3-4% over WG and WI-polling).
	run := func(v GrepVariant) sim.Time {
		res, err := RunGrep(newM(t, 9), DefaultGrepConfig(v))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct() {
			t.Fatalf("%v incorrect", v)
		}
		return res.Runtime
	}
	cpu := run(GrepCPU)
	omp := run(GrepOpenMP)
	wg := run(GrepGPUWorkGroup)
	wiPoll := run(GrepGPUWorkItemPoll)
	wiHalt := run(GrepGPUWorkItemHalt)
	if !(omp < cpu) {
		t.Fatalf("OpenMP (%v) not faster than CPU (%v)", omp, cpu)
	}
	if !(wg < omp && wiHalt < omp) {
		t.Fatalf("GENESYS (wg=%v, wiHalt=%v) not faster than OpenMP (%v)", wg, wiHalt, omp)
	}
	// Paper: WI-halt-resume beats WG and WI-polling by 3-4%. Our model
	// reproduces near-parity (the workload is CPU-syscall-bound, so the
	// GPU-side issue-slot drag of polling barely reaches the critical
	// path); assert halt-resume is at worst ~2% behind and never a big
	// regression.
	if float64(wiHalt) > 1.02*float64(wiPoll) {
		t.Fatalf("WI-halt-resume (%v) > 1.02 × WI-polling (%v)", wiHalt, wiPoll)
	}
	if float64(wiHalt) > 1.02*float64(wg) {
		t.Fatalf("WI-halt-resume (%v) > 1.02 × WG (%v)", wiHalt, wg)
	}
}

// --- wordcount (§VIII-C, Figures 13b and 14) ---

func TestWordcountAllVariantsCorrect(t *testing.T) {
	for _, v := range []WordcountVariant{WordcountCPU, WordcountGPUNoSyscall, WordcountGENESYS} {
		cfg := DefaultWordcountConfig(v)
		cfg.Files = 32
		res, err := RunWordcount(newM(t, 1), cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !res.Correct() {
			t.Fatalf("%v: counts mismatch", v)
		}
	}
}

func TestWordcountGENESYSWins(t *testing.T) {
	// Figure 13b: GENESYS ≈6× over CPU; GPU-no-syscall worse than CPU.
	run := func(v WordcountVariant) WordcountResult {
		res, err := RunWordcount(newM(t, 3), DefaultWordcountConfig(v))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct() {
			t.Fatalf("%v incorrect", v)
		}
		return res
	}
	cpu := run(WordcountCPU)
	nosc := run(WordcountGPUNoSyscall)
	gen := run(WordcountGENESYS)
	speedup := float64(cpu.Runtime) / float64(gen.Runtime)
	if speedup < 3.5 {
		t.Fatalf("GENESYS speedup over CPU = %.2f, want ≈6 (paper: ~6x)", speedup)
	}
	if speedup > 10 {
		t.Fatalf("GENESYS speedup over CPU = %.2f implausibly high", speedup)
	}
	if nosc.Runtime <= cpu.Runtime {
		t.Fatalf("GPU-no-syscall (%v) not worse than CPU (%v)", nosc.Runtime, cpu.Runtime)
	}
	// Figure 14: GENESYS sustains far more disk throughput than the CPU
	// version (paper: ~170 vs ~30 MB/s) at lower CPU utilization.
	if gen.MeanDiskMBs < 3*cpu.MeanDiskMBs {
		t.Fatalf("disk throughput: GENESYS %.0f MB/s vs CPU %.0f MB/s, want ≥3x",
			gen.MeanDiskMBs, cpu.MeanDiskMBs)
	}
	if cpu.MeanDiskMBs < 15 || cpu.MeanDiskMBs > 50 {
		t.Fatalf("CPU version disk = %.0f MB/s, want ≈30", cpu.MeanDiskMBs)
	}
	if gen.MeanDiskMBs < 120 || gen.MeanDiskMBs > 220 {
		t.Fatalf("GENESYS disk = %.0f MB/s, want ≈170", gen.MeanDiskMBs)
	}
	if gen.MeanCPUUtil >= cpu.MeanCPUUtil {
		t.Fatalf("CPU util: GENESYS %.0f%% vs CPU %.0f%%: offload freed no CPU",
			gen.MeanCPUUtil, cpu.MeanCPUUtil)
	}
}

// --- memcached (§VIII-D, Figure 15) ---

func TestMemcachedAllVariantsServe(t *testing.T) {
	for _, v := range []MemcachedVariant{MemcachedCPU, MemcachedGPUNoSyscall, MemcachedGENESYS} {
		cfg := DefaultMemcachedConfig(v)
		cfg.Requests = 400
		res, err := RunMemcached(newM(t, 1), cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Completed < cfg.Requests*95/100 {
			t.Fatalf("%v: completed %d/%d", v, res.Completed, cfg.Requests)
		}
		if res.Correct != res.Completed {
			t.Fatalf("%v: %d/%d replies carried wrong values", v,
				res.Completed-res.Correct, res.Completed)
		}
	}
}

func TestMemcachedGENESYSBeatsCPU(t *testing.T) {
	// Figure 15: with 1024 elements/bucket, GENESYS gives 30-40% better
	// latency and throughput than the CPU server; GPU-no-syscall lags
	// the CPU server.
	run := func(v MemcachedVariant) MemcachedResult {
		res, err := RunMemcached(newM(t, 5), DefaultMemcachedConfig(v))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cpu := run(MemcachedCPU)
	gen := run(MemcachedGENESYS)
	nosc := run(MemcachedGPUNoSyscall)
	if gen.MeanLatency >= cpu.MeanLatency {
		t.Fatalf("latency: GENESYS %v vs CPU %v", gen.MeanLatency, cpu.MeanLatency)
	}
	gain := 1 - float64(gen.MeanLatency)/float64(cpu.MeanLatency)
	if gain < 0.15 || gain > 0.70 {
		t.Fatalf("latency gain = %.0f%%, want ~30-40%%", gain*100)
	}
	if nosc.MeanLatency <= cpu.MeanLatency {
		t.Fatalf("GPU-no-syscall latency %v not worse than CPU %v",
			nosc.MeanLatency, cpu.MeanLatency)
	}
}

func TestMemcachedBucketSizeCrossover(t *testing.T) {
	// §VIII-D: "GPUs accelerate memcached by parallelizing lookups on
	// buckets with MORE elements" — with small buckets the CPU's scan is
	// cheap and GENESYS's syscall overheads dominate; with 1024-element
	// buckets the GPU's parallel scan wins.
	run := func(v MemcachedVariant, elems int) sim.Time {
		cfg := DefaultMemcachedConfig(v)
		cfg.ElemsPerBucket = elems
		cfg.Requests = 800
		res, err := RunMemcached(newM(t, 6), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed < cfg.Requests*9/10 {
			t.Fatalf("%v elems=%d: served %d/%d", v, elems, res.Completed, cfg.Requests)
		}
		return res.MeanLatency
	}
	if cpu, gen := run(MemcachedCPU, 64), run(MemcachedGENESYS, 64); gen <= cpu {
		t.Fatalf("small buckets: GENESYS (%v) should not beat CPU (%v)", gen, cpu)
	}
	if cpu, gen := run(MemcachedCPU, 1024), run(MemcachedGENESYS, 1024); gen >= cpu {
		t.Fatalf("large buckets: GENESYS (%v) should beat CPU (%v)", gen, cpu)
	}
}

// --- bmp-display (§VIII-E) ---

func TestBMPDisplay(t *testing.T) {
	res, err := RunBMPDisplay(newM(t, 1), DefaultBMPDisplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.InfoBefore.XRes != 1024 || res.InfoBefore.YRes != 768 {
		t.Fatalf("initial mode = %+v", res.InfoBefore)
	}
	if res.InfoAfter.XRes != 640 || res.InfoAfter.YRes != 480 || res.InfoAfter.BPP != 32 {
		t.Fatalf("configured mode = %+v", res.InfoAfter)
	}
	if !res.Validated {
		t.Fatal("framebuffer contents do not match the raster")
	}
	if res.Runtime <= 0 {
		t.Fatal("no runtime recorded")
	}
}
