package workloads

import (
	"testing"

	"genesys/internal/fault"
	"genesys/internal/platform"
)

func chaosMachine(t *testing.T, seed int64, profile string, rate float64) *platform.Machine {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	if profile != "" {
		plan, err := fault.PlanFor(profile, rate)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = &plan
	}
	return platform.New(cfg)
}

func TestChaosBaseline(t *testing.T) {
	m := chaosMachine(t, 1, "", 0)
	defer m.Shutdown()
	res, err := RunChaos(m, DefaultChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Validated {
		t.Error("baseline chaos run produced wrong data")
	}
	if res.OpsFailed != 0 {
		t.Errorf("baseline chaos run surfaced %d failed ops", res.OpsFailed)
	}
	if res.EchoOK != int64(DefaultChaosConfig().WorkGroups) {
		t.Errorf("echo ok = %d, want %d", res.EchoOK, DefaultChaosConfig().WorkGroups)
	}
	if m.Inject.Injected.Value() != 0 {
		t.Errorf("baseline machine injected %d faults", m.Inject.Injected.Value())
	}
}

// TestChaosUnderEveryProfile is the recover-or-surface contract: at an
// aggressive rate, every profile's run must terminate (the engine's
// deadlock detector fails the run on a hang), successful data must be
// correct, and each injected fault must be accounted recovered or
// surfaced.
func TestChaosUnderEveryProfile(t *testing.T) {
	for _, profile := range fault.Profiles() {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			m := chaosMachine(t, 3, profile, 0.25)
			defer m.Shutdown()
			res, err := RunChaos(m, DefaultChaosConfig())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Validated {
				t.Error("recovered run returned corrupt data")
			}
			if m.Inject.Injected.Value() == 0 {
				t.Errorf("profile %s at rate 0.25 injected nothing", profile)
			}
		})
	}
}

// TestChaosDeterministicReplay: identical seed and plan must reproduce
// the run bit-for-bit — same virtual end time and same fault accounting.
func TestChaosDeterministicReplay(t *testing.T) {
	type snap struct {
		runtime                       int64
		injected, recovered, surfaced int64
		opsOK, opsFailed, echoOK      int64
	}
	run := func() snap {
		m := chaosMachine(t, 7, "all", 0.25)
		defer m.Shutdown()
		res, err := RunChaos(m, DefaultChaosConfig())
		if err != nil {
			t.Fatal(err)
		}
		return snap{
			runtime:   int64(res.Runtime),
			injected:  m.Inject.Injected.Value(),
			recovered: m.Inject.Recovered.Value(),
			surfaced:  m.Inject.Surfaced.Value(),
			opsOK:     res.OpsOK,
			opsFailed: res.OpsFailed,
			echoOK:    res.EchoOK,
		}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("chaos replay diverged:\n  first  %+v\n  second %+v", a, b)
	}
}
