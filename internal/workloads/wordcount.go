package workloads

import (
	"bytes"
	"fmt"
	"math/rand"

	"genesys/internal/core"
	"genesys/internal/cpu"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// WordcountVariant selects a Figure 13b configuration.
type WordcountVariant int

const (
	// WordcountCPU is the OpenMP host implementation: every thread
	// opens, reads and scans files.
	WordcountCPU WordcountVariant = iota
	// WordcountGPUNoSyscall is the conventional GPU offload of Figure 1
	// (left): the CPU serially reads each file, stages it to GPU memory,
	// launches a kernel and waits — no overlap anywhere.
	WordcountGPUNoSyscall
	// WordcountGENESYS processes files from GPU work-groups with
	// open/read/close through GENESYS (blocking, weak ordering —
	// §VIII-C, the original GPUfs workload).
	WordcountGENESYS
)

func (v WordcountVariant) String() string {
	switch v {
	case WordcountCPU:
		return "CPU-OpenMP"
	case WordcountGPUNoSyscall:
		return "GPU-no-syscall"
	case WordcountGENESYS:
		return "GENESYS"
	}
	return "unknown"
}

// WordcountConfig parameterizes the §VIII-C storage case study: count
// occurrences of 64 search strings across a directory of files on the
// SSD (the workload evaluated in the original GPUfs paper).
type WordcountConfig struct {
	Variant   WordcountVariant
	Files     int
	FileBytes int64
	Words     int
	// CPUScanBytesPerNS is a core's 64-pattern naive scan rate (the
	// paper's CPU version is compute-heavy; its disk never exceeds
	// ~30 MB/s).
	CPUScanBytesPerNS float64
	// GPUScanBytesPerNS is one work-group's scan rate.
	GPUScanBytesPerNS float64
	// StageBytesPerNS is the GPU-no-syscall host→GPU staging bandwidth
	// (uncached write-combined copies on pre-SVM paths).
	StageBytesPerNS float64
	// GPUWorkGroups is the GENESYS reader work-group count (drives the
	// I/O queue depth that unlocks the SSD's channels).
	GPUWorkGroups int
	CPUThreads    int
	Seed          int64
}

// DefaultWordcountConfig mirrors the evaluation: 64 strings over a
// 48 MiB corpus of 256 KiB files, read cold from the SSD.
func DefaultWordcountConfig(v WordcountVariant) WordcountConfig {
	return WordcountConfig{
		Variant:           v,
		Files:             192,
		FileBytes:         256 << 10,
		Words:             64,
		CPUScanBytesPerNS: 0.012, // 12 MB/s per core over 64 patterns
		GPUScanBytesPerNS: 4.0,
		StageBytesPerNS:   0.5,
		GPUWorkGroups:     16,
		CPUThreads:        4,
		Seed:              7,
	}
}

// WordcountResult reports one run.
type WordcountResult struct {
	Runtime sim.Time
	// Counts is the per-word occurrence count found by the run.
	Counts []int64
	// Expected is the reference count computed outside the simulation.
	Expected []int64
	// MeanCPUUtil is mean CPU utilization (%) over the run (Figure 14).
	MeanCPUUtil float64
	// DiskTrace is per-bin SSD throughput in MB/s (Figure 14).
	DiskTrace []float64
	// PeakDiskMBs is the highest bin; MeanDiskMBs averages the non-idle
	// portion of the run.
	PeakDiskMBs float64
	MeanDiskMBs float64
}

// Correct reports whether the counts match the reference.
func (r WordcountResult) Correct() bool {
	if len(r.Counts) != len(r.Expected) {
		return false
	}
	for i := range r.Counts {
		if r.Counts[i] != r.Expected[i] {
			return false
		}
	}
	return true
}

// wcWords returns the search strings ("wordNNzzq").
func wcWords(n int) []string {
	words := make([]string, n)
	for i := range words {
		words[i] = fmt.Sprintf("word%02dzzq", i)
	}
	return words
}

func wcFileName(i int) string { return fmt.Sprintf("/data/corpus/doc%04d", i) }

// wcCorpus builds the per-file contents with planted words and returns
// the reference counts.
func wcCorpus(cfg WordcountConfig) ([][]byte, []int64) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	words := wcWords(cfg.Words)
	counts := make([]int64, cfg.Words)
	files := make([][]byte, cfg.Files)
	const cell = 64 << 10
	for f := range files {
		data := make([]byte, cfg.FileBytes)
		for i := range data {
			data[i] = byte('a' + rng.Intn(20))
		}
		plants := int(cfg.FileBytes / (16 << 10))
		cells := cfg.FileBytes / cell
		for i := 0; i < plants; i++ {
			w := rng.Intn(cfg.Words)
			off := rng.Int63n(cells)*cell + 16 + rng.Int63n(cell-128)
			copy(data[off:], words[w])
		}
		files[f] = data
		countChunk(data, words, counts)
	}
	return files, counts
}

// countChunk accumulates per-word counts for one chunk. The noise
// alphabet is a–t, so every candidate match starts at a planted 'w'; the
// single-pass scan exploits that while remaining exact (overlapping
// plants that clobber each other are rejected by the full-pattern check).
func countChunk(chunk []byte, words []string, into []int64) {
	for i := 0; i < len(chunk); {
		j := bytes.IndexByte(chunk[i:], 'w')
		if j < 0 {
			return
		}
		pos := i + j
		if pos+9 <= len(chunk) &&
			string(chunk[pos:pos+4]) == "word" &&
			string(chunk[pos+6:pos+9]) == "zzq" {
			d1, d2 := chunk[pos+4], chunk[pos+5]
			if d1 >= '0' && d1 <= '9' && d2 >= '0' && d2 <= '9' {
				if w := int(d1-'0')*10 + int(d2-'0'); w < len(into) {
					into[w]++
				}
			}
		}
		i = pos + 1
	}
}

// RunWordcount executes one wordcount variant. The SSD page cache is
// dropped first so every variant reads cold.
func RunWordcount(m *platform.Machine, cfg WordcountConfig) (WordcountResult, error) {
	files, expected := wcCorpus(cfg)
	if _, err := m.SSDFS.Mount(m.VFS, "/data/corpus"); err != nil {
		return WordcountResult{}, err
	}
	for i, data := range files {
		if err := m.WriteFile(wcFileName(i), data); err != nil {
			return WordcountResult{}, err
		}
	}
	m.SSDFS.DropCaches()
	m.SSD.ResetStats()
	pr := m.NewProcess("wordcount")
	words := wcWords(cfg.Words)
	counts := make([]int64, cfg.Words)

	var runtime sim.Time
	switch cfg.Variant {
	case WordcountCPU:
		// OpenMP: each thread claims files, reading and scanning them.
		m.E.Spawn("host", func(p *sim.Proc) {
			start := p.Now()
			done := sim.NewCond(m.E)
			active := cfg.CPUThreads
			next := 0
			for t := 0; t < cfg.CPUThreads; t++ {
				pr.Spawn(fmt.Sprintf("omp%d", t), func(tp *sim.Proc) {
					io := &fs.IOCtx{P: tp, CPU: m.CPU, Prio: cpu.PrioNormal}
					buf := make([]byte, cfg.FileBytes)
					local := make([]int64, cfg.Words)
					for {
						f := next
						if f >= cfg.Files {
							break
						}
						next++
						fh, err := m.VFS.Open(wcFileName(f), fs.O_RDONLY)
						if err != nil {
							continue
						}
						n, _ := fh.Read(io, buf)
						m.CPU.ExecChunked(tp,
							sim.Time(float64(n)/cfg.CPUScanBytesPerNS),
							sim.Millisecond, cpu.PrioNormal)
						countChunk(buf[:n], words, local)
					}
					for w := range local {
						counts[w] += local[w]
					}
					active--
					if active == 0 {
						done.Broadcast()
					}
				})
			}
			for active > 0 {
				done.Wait(p, "wordcount threads")
			}
			runtime = p.Now() - start
		})

	case WordcountGPUNoSyscall:
		// Figure 1 (left): per file, the CPU reads the data, stages it
		// into GPU memory, launches a kernel and waits.
		m.E.Spawn("host", func(p *sim.Proc) {
			start := p.Now()
			io := &fs.IOCtx{P: p, CPU: m.CPU, Prio: cpu.PrioNormal}
			buf := make([]byte, cfg.FileBytes)
			for f := 0; f < cfg.Files; f++ {
				fh, err := m.VFS.Open(wcFileName(f), fs.O_RDONLY)
				if err != nil {
					continue
				}
				n, _ := fh.Read(io, buf)
				if n == 0 {
					continue
				}
				fs.ChargeCopy(io, int64(n), cfg.StageBytesPerNS)
				k := m.GPU.Launch(p, gpu.Kernel{
					Name: "wc-file", WorkGroups: 1, WGSize: 256,
					Fn: func(w *gpu.Wavefront) {
						w.ComputeTime(sim.Time(float64(n) / cfg.GPUScanBytesPerNS))
						if w.IsLeader() {
							countChunk(buf[:n], words, counts)
						}
					},
				})
				k.Wait(p)
			}
			runtime = p.Now() - start
		})

	case WordcountGENESYS:
		// GPU work-groups sweep the directory: open, read (stateful,
		// work-group granularity, blocking + weak ordering), close. Many
		// outstanding reads drive the SSD queue depth (Figure 14).
		g := m.Genesys
		m.E.Spawn("host", func(p *sim.Proc) {
			start := p.Now()
			k := m.GPU.Launch(p, gpu.Kernel{
				Name:       "gpu-wordcount",
				WorkGroups: cfg.GPUWorkGroups,
				WGSize:     256,
				Fn: func(w *gpu.Wavefront) {
					sh := w.WG.Shared
					if w.IsLeader() {
						sh["buf"] = make([]byte, cfg.FileBytes)
					}
					opts := core.Options{Blocking: true, Wait: core.WaitPoll,
						Ordering: core.Relaxed, Kind: core.Producer}
					buf := sh["buf"].([]byte)
					local := make([]int64, cfg.Words)
					for f := w.WG.ID; f < cfg.Files; f += cfg.GPUWorkGroups {
						if r, inv := g.InvokeWG(w, syscalls.Request{
							NR:   syscalls.SYS_open,
							Args: [6]uint64{fs.O_RDONLY},
							Buf:  []byte(wcFileName(f)),
						}, opts); inv {
							sh["fd"] = uint64(r.Ret)
						}
						fd := sh["fd"].(uint64)
						if r, inv := g.InvokeWG(w, syscalls.Request{
							NR:   syscalls.SYS_read,
							Args: [6]uint64{fd, uint64(cfg.FileBytes)},
							Buf:  buf,
						}, opts); inv {
							sh["n"] = r.Ret
						}
						n := sh["n"].(int64)
						w.ComputeTime(sim.Time(float64(n) / cfg.GPUScanBytesPerNS))
						if w.IsLeader() {
							countChunk(buf[:n], words, local)
						}
						g.InvokeWG(w, syscalls.Request{
							NR: syscalls.SYS_close, Args: [6]uint64{fd},
						}, core.Options{Blocking: true, Wait: core.WaitPoll,
							Ordering: core.Relaxed, Kind: core.Consumer})
					}
					if w.IsLeader() {
						for i := range local {
							counts[i] += local[i]
						}
					}
				},
			})
			k.Wait(p)
			g.Drain(p)
			runtime = p.Now() - start
		})
	}

	if err := m.Run(); err != nil {
		return WordcountResult{}, err
	}
	res := WordcountResult{
		Runtime:     runtime,
		Counts:      counts,
		Expected:    expected,
		MeanCPUUtil: m.CPU.MeanUtilization(runtime),
		DiskTrace:   m.SSD.ThroughputTrace(),
	}
	for _, v := range res.DiskTrace {
		if v > res.PeakDiskMBs {
			res.PeakDiskMBs = v
		}
	}
	if runtime > 0 {
		res.MeanDiskMBs = float64(m.SSD.BytesRead.Value()) / runtime.Seconds() / 1e6
	}
	return res, nil
}
