package workloads

import (
	"crypto/sha512"
	"fmt"

	"genesys/internal/core"
	"genesys/internal/cpu"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sig"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// SignalSearchConfig parameterizes the §VIII-B signals case study: a
// two-phase map-reduce where the GPU performs a parallel lookup over data
// blocks and the CPU computes sha512 checksums of the retrieved blocks.
// With UseSignals, GPU work-groups emit rt_sigqueueinfo as each block's
// lookup completes (the work-group ID travels in si_value), letting the
// CPU start checksumming immediately; the baseline runs the two phases
// back to back.
type SignalSearchConfig struct {
	Blocks     int
	BlockBytes int
	UseSignals bool
	// GPUScanPerBlock is the lookup time one work-group spends per block.
	GPUScanPerBlock sim.Time
	// CPUShaBytesPerNS is the CPU's sha512 throughput (with dedicated
	// instructions, per the paper).
	CPUShaBytesPerNS float64
	// Handlers is the number of CPU handler threads.
	Handlers int
}

// DefaultSignalSearchConfig sizes the CPU phase at roughly a sixth of the
// GPU phase, the regime in which the paper reports ~14% gain.
func DefaultSignalSearchConfig() SignalSearchConfig {
	return SignalSearchConfig{
		Blocks:           96,
		BlockBytes:       64 << 10,
		UseSignals:       true,
		GPUScanPerBlock:  4 * sim.Millisecond,
		CPUShaBytesPerNS: 1.0,
		Handlers:         1,
	}
}

// SignalSearchResult reports one run.
type SignalSearchResult struct {
	Runtime sim.Time
	// Digests holds the per-block sha512 sums, indexed by block.
	Digests [][]byte
	Signals int64
}

// RunSignalSearch executes the workload.
func RunSignalSearch(m *platform.Machine, cfg SignalSearchConfig) (SignalSearchResult, error) {
	if cfg.Handlers <= 0 {
		cfg.Handlers = 1
	}
	pr := m.NewProcess("signal-search")
	g := m.Genesys

	// Deterministic data blocks.
	blocks := make([][]byte, cfg.Blocks)
	for i := range blocks {
		blocks[i] = make([]byte, cfg.BlockBytes)
		fillPattern(blocks[i], byte(i*3))
	}

	res := SignalSearchResult{Digests: make([][]byte, cfg.Blocks)}
	shaTime := sim.Time(float64(cfg.BlockBytes) / cfg.CPUShaBytesPerNS)

	checksum := func(p *sim.Proc, block int) {
		m.CPU.ExecChunked(p, shaTime, 500*sim.Microsecond, cpu.PrioNormal)
		sum := sha512.Sum512(blocks[block])
		res.Digests[block] = sum[:]
	}

	launchLookup := func(p *sim.Proc) *gpu.KernelRun {
		return m.GPU.Launch(p, gpu.Kernel{
			Name:       "parallel-lookup",
			WorkGroups: cfg.Blocks,
			WGSize:     1024, // 16 wavefronts: ≤20 resident blocks, so completions stagger
			Fn: func(w *gpu.Wavefront) {
				w.ComputeTime(cfg.GPUScanPerBlock)
				if cfg.UseSignals {
					// Notify the host that this block's lookup is done.
					g.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_rt_sigqueueinfo,
						Args: [6]uint64{uint64(pr.PID), 34 /* SIGRTMIN */, uint64(w.WG.ID)},
					}, core.Options{Blocking: false,
						Ordering: core.Relaxed, Kind: core.Consumer})
				}
			},
		})
	}

	m.E.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		if cfg.UseSignals {
			done := sim.NewCond(m.E)
			remaining := cfg.Blocks
			for h := 0; h < cfg.Handlers; h++ {
				pr.Spawn(fmt.Sprintf("sig-handler%d", h), func(hp *sim.Proc) {
					for {
						si := pr.Sig.Wait(hp)
						if si.Value < 0 {
							return // poison: all blocks processed
						}
						checksum(hp, int(si.Value))
						remaining--
						if remaining == 0 {
							done.Broadcast()
						}
					}
				})
			}
			k := launchLookup(p)
			k.Wait(p)
			g.Drain(p)
			for remaining > 0 {
				done.Wait(p, "signal-search completion")
			}
			for h := 0; h < cfg.Handlers; h++ {
				pr.Sig.Queue(sig.Siginfo{Value: -1})
			}
		} else {
			k := launchLookup(p)
			k.Wait(p)
			for b := 0; b < cfg.Blocks; b++ {
				checksum(p, b)
			}
		}
		res.Runtime = p.Now() - start
	})
	if err := m.Run(); err != nil {
		return res, err
	}
	res.Signals = pr.Sig.Delivered.Value()
	if cfg.UseSignals {
		res.Signals -= int64(cfg.Handlers) // exclude shutdown poison
	}
	return res, nil
}

// ReferenceSha512 computes the expected digest of block i under the
// deterministic fill, for validation.
func ReferenceSha512(blockBytes, i int) []byte {
	b := make([]byte, blockBytes)
	fillPattern(b, byte(i*3))
	sum := sha512.Sum512(b)
	return sum[:]
}
