package workloads

import (
	"math/bits"
	"math/rand"
	"testing"
)

// TestWorkerSeedAvalanche pins the property the splitmix64 mixer was
// brought in for: one worker-id step must flip roughly half of the
// derived seed's bits. The old `seed ^ 7919*(id+1)` salt left adjacent
// ids' seeds a handful of bits apart, which math/rand's seeding turns
// into visibly correlated client streams.
func TestWorkerSeedAvalanche(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 1 << 40} {
		total := 0
		const ids = 256
		for id := 0; id < ids; id++ {
			a := uint64(workerSeed(seed, id))
			b := uint64(workerSeed(seed, id+1))
			total += bits.OnesCount64(a ^ b)
		}
		mean := float64(total) / ids
		if mean < 24 || mean > 40 {
			t.Fatalf("seed %d: mean hamming distance between adjacent worker seeds = %.1f bits, want ~32", seed, mean)
		}
	}
}

// TestWorkerSeedStreamsDistinct: the derived seeds are collision-free
// across a realistic worker range and the resulting math/rand streams
// start at genuinely different points — adjacent workers must not draw
// near-identical arrival gaps and key sequences.
func TestWorkerSeedStreamsDistinct(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		seen := make(map[int64]int)
		prefixes := make(map[[4]int64]int)
		for id := 0; id < 256; id++ {
			s := workerSeed(seed, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed %d: workers %d and %d derive the same RNG seed %d", seed, prev, id, s)
			}
			seen[s] = id
			rng := rand.New(rand.NewSource(s))
			var p [4]int64
			for i := range p {
				p[i] = rng.Int63()
			}
			if prev, dup := prefixes[p]; dup {
				t.Fatalf("seed %d: workers %d and %d produce identical stream prefixes", seed, prev, id)
			}
			prefixes[p] = id
		}
	}
}
