package workloads

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"genesys/internal/core"
	"genesys/internal/cpu"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/oskern"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// GrepVariant selects a Figure 13a configuration.
type GrepVariant int

const (
	GrepCPU GrepVariant = iota
	GrepOpenMP
	GrepGPUWorkGroup
	GrepGPUWorkItemPoll
	GrepGPUWorkItemHalt
)

func (v GrepVariant) String() string {
	switch v {
	case GrepCPU:
		return "CPU"
	case GrepOpenMP:
		return "OpenMP"
	case GrepGPUWorkGroup:
		return "GENESYS-WG"
	case GrepGPUWorkItemPoll:
		return "GENESYS-WI-polling"
	case GrepGPUWorkItemHalt:
		return "GENESYS-WI-halt-resume"
	}
	return "unknown"
}

// GrepConfig parameterizes the §VIII-C grep -F -l case study: given a
// word list and a file set, report (print to the terminal) every file
// containing any of the words, stopping each file's scan at its first
// match.
type GrepConfig struct {
	Variant   GrepVariant
	Files     int
	FileBytes int
	Words     int
	// CPUScanBytesPerNS is one CPU core's multi-pattern scan rate.
	CPUScanBytesPerNS float64
	// GPUScanBytesPerNS is one work-group's aggregate scan rate.
	GPUScanBytesPerNS float64
	// CPUThreads is the OpenMP worker count.
	CPUThreads int
	Seed       int64
}

// DefaultGrepConfig returns the evaluation setup: 64 files of 256 KiB,
// 16 search words, half the files matching.
func DefaultGrepConfig(v GrepVariant) GrepConfig {
	return GrepConfig{
		Variant:           v,
		Files:             64,
		FileBytes:         256 << 10,
		Words:             16,
		CPUScanBytesPerNS: 0.8,
		GPUScanBytesPerNS: 8.0,
		CPUThreads:        4,
		Seed:              42,
	}
}

// GrepResult reports one run.
type GrepResult struct {
	Runtime sim.Time
	// Found is the sorted list of matching file names, as printed to the
	// terminal.
	Found []string
	// Expected is the reference answer computed outside the simulation.
	Expected []string
}

// Correct reports whether the simulated grep found exactly the right
// files.
func (r GrepResult) Correct() bool {
	if len(r.Found) != len(r.Expected) {
		return false
	}
	for i := range r.Found {
		if r.Found[i] != r.Expected[i] {
			return false
		}
	}
	return true
}

// grepCorpus builds the file set: lowercase noise with search words
// planted into half the files at random offsets.
func grepCorpus(cfg GrepConfig) (words []string, files map[string][]byte, expected []string) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	words = make([]string, cfg.Words)
	for i := range words {
		words[i] = fmt.Sprintf("needle%02dxq", i)
	}
	files = make(map[string][]byte)
	for f := 0; f < cfg.Files; f++ {
		name := fmt.Sprintf("file%03d.txt", f)
		data := make([]byte, cfg.FileBytes)
		for i := range data {
			data[i] = byte('a' + rng.Intn(20))
		}
		if f%2 == 0 {
			w := words[rng.Intn(len(words))]
			pos := rng.Intn(cfg.FileBytes - len(w))
			copy(data[pos:], w)
			expected = append(expected, name)
		}
		files[name] = data
	}
	sort.Strings(expected)
	return words, files, expected
}

// scanChunk reports the offset of the first occurrence of any word in
// chunk, or -1.
func scanChunk(chunk []byte, words []string) int {
	best := -1
	s := string(chunk)
	for _, w := range words {
		if i := strings.Index(s, w); i >= 0 && (best < 0 || i < best) {
			best = i
		}
	}
	return best
}

// RunGrep executes one grep variant.
func RunGrep(m *platform.Machine, cfg GrepConfig) (GrepResult, error) {
	words, files, expected := grepCorpus(cfg)
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := m.WriteFile("/tmp/"+n, files[n]); err != nil {
			return GrepResult{}, err
		}
	}
	pr := m.NewProcess("grep")
	res := GrepResult{Expected: expected}

	var runtime sim.Time
	switch cfg.Variant {
	case GrepCPU, GrepOpenMP:
		runtime = runGrepCPU(m, pr, cfg, words, names)
	default:
		runtime = runGrepGPU(m, pr, cfg, words, names, files)
	}
	res.Runtime = runtime
	res.Found = m.OS.Console.Lines()
	sort.Strings(res.Found)
	return res, nil
}

// runGrepCPU runs the serial or OpenMP-parallel host implementation.
func runGrepCPU(m *platform.Machine, pr *oskern.Process, cfg GrepConfig,
	words, names []string) sim.Time {
	threads := 1
	if cfg.Variant == GrepOpenMP {
		threads = cfg.CPUThreads
	}
	var runtime sim.Time
	m.E.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		next := 0
		done := sim.NewCond(m.E)
		active := threads
		for t := 0; t < threads; t++ {
			pr.Spawn(fmt.Sprintf("omp%d", t), func(tp *sim.Proc) {
				io := &fs.IOCtx{P: tp, CPU: m.CPU, Prio: cpu.PrioNormal}
				buf := make([]byte, 64<<10)
				for {
					if next >= len(names) {
						break
					}
					name := names[next]
					next++
					f, err := m.VFS.Open("/tmp/"+name, fs.O_RDONLY)
					if err != nil {
						continue
					}
					carry := 0
					for {
						n, _ := f.Read(io, buf[carry:])
						if n == 0 {
							break
						}
						chunk := buf[:carry+n]
						// Multi-pattern scan cost on this core.
						m.CPU.Exec(tp, sim.Time(float64(len(chunk))/cfg.CPUScanBytesPerNS), cpu.PrioNormal)
						if scanChunk(chunk, words) >= 0 {
							line := name + "\n"
							stdout, _ := pr.FDs.Get(1)
							stdout.Write(io, []byte(line))
							break // grep -l: first match suffices
						}
						// Keep an overlap window for cross-chunk matches.
						carry = copyTail(buf, chunk, 16)
					}
				}
				active--
				if active == 0 {
					done.Broadcast()
				}
			})
		}
		for active > 0 {
			done.Wait(p, "grep threads")
		}
		runtime = p.Now() - start
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	return runtime
}

// copyTail moves the last keep bytes of chunk to the front of buf and
// returns the new carry length.
func copyTail(buf, chunk []byte, keep int) int {
	if len(chunk) < keep {
		keep = len(chunk)
	}
	copy(buf, chunk[len(chunk)-keep:])
	return keep
}

// runGrepGPU runs the GENESYS implementations: one work-group per file;
// the group preads chunks and scans them in parallel; on the first match
// the finding work-item prints the file name — at work-group granularity
// or directly at work-item granularity with the configured wait mode
// (the paper's WG / WI-polling / WI-halt-resume variants).
func runGrepGPU(m *platform.Machine, pr *oskern.Process, cfg GrepConfig,
	words, names []string, files map[string][]byte) sim.Time {
	g := m.Genesys
	var runtime sim.Time
	m.E.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		k := m.GPU.Launch(p, gpu.Kernel{
			Name:       "gpu-grep",
			WorkGroups: len(names),
			WGSize:     256,
			Fn: func(w *gpu.Wavefront) {
				const chunkSize = 64 << 10
				name := names[w.WG.ID]
				sh := w.WG.Shared
				if w.IsLeader() {
					sh["buf"] = make([]byte, chunkSize)
				}
				// Leader opens the file; the producer-relaxed barrier
				// (Bar2) publishes the descriptor to the group.
				openOpts := core.Options{Blocking: true, Wait: core.WaitPoll,
					Ordering: core.Relaxed, Kind: core.Producer}
				if r, inv := g.InvokeWG(w, syscalls.Request{
					NR:   syscalls.SYS_open,
					Args: [6]uint64{fs.O_RDONLY},
					Buf:  []byte("/tmp/" + name),
				}, openOpts); inv {
					sh["fd"] = uint64(r.Ret)
				}
				fd := sh["fd"].(uint64)
				buf := sh["buf"].([]byte)

				matched := false
				for off := int64(0); off < int64(cfg.FileBytes) && !matched; off += chunkSize {
					if r, inv := g.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pread64,
						Args: [6]uint64{fd, chunkSize, uint64(off)},
						Buf:  buf,
					}, openOpts); inv {
						sh["n"] = r.Ret
					}
					n := sh["n"].(int64)
					if n <= 0 {
						break
					}
					// Parallel scan: the work-group covers the chunk
					// cooperatively; the leader publishes the result at
					// the reduction barrier.
					w.ComputeTime(sim.Time(float64(n) / cfg.GPUScanBytesPerNS))
					if w.IsLeader() {
						sh["pos"] = scanChunk(buf[:n], words)
					}
					w.Barrier()
					pos := sh["pos"].(int)
					if pos < 0 {
						continue
					}
					matched = true
					line := []byte(name + "\n")
					switch cfg.Variant {
					case GrepGPUWorkGroup:
						g.InvokeWG(w, syscalls.Request{
							NR:   syscalls.SYS_write,
							Args: [6]uint64{1, uint64(len(line))},
							Buf:  line,
						}, core.Options{Blocking: true, Wait: core.WaitPoll,
							Ordering: core.Relaxed, Kind: core.Consumer})
					default:
						// Work-item invocation: the finding work-item
						// writes immediately, with no group barrier
						// (grep -l needs nothing further from this file).
						finderWI := pos % w.WG.Run.WGSize
						if w.ID == finderWI/64 {
							wait := core.WaitPoll
							if cfg.Variant == GrepGPUWorkItemHalt {
								wait = core.WaitHaltResume
							}
							g.InvokeEach(w, func(lane int) *syscalls.Request {
								if lane != finderWI%64 {
									return nil
								}
								return &syscalls.Request{
									NR:   syscalls.SYS_write,
									Args: [6]uint64{1, uint64(len(line))},
									Buf:  line,
								}
							}, core.Options{Blocking: true, Wait: wait})
						}
					}
				}
				// Leader closes the file.
				if w.IsLeader() {
					g.Invoke(w, syscalls.Request{
						NR: syscalls.SYS_close, Args: [6]uint64{fd},
					}, core.Options{Blocking: true, Wait: core.WaitPoll})
				}
			},
		})
		k.Wait(p)
		g.Drain(p)
		runtime = p.Now() - start
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	_ = files
	_ = pr
	return runtime
}
