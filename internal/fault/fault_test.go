package fault

import (
	"strings"
	"testing"

	"genesys/internal/sim"
)

func TestNilInjectorIsSafeAndInert(t *testing.T) {
	var in *Injector
	if in.Active() {
		t.Fatal("nil injector reports active")
	}
	if _, ok := in.Fire(IRQDrop); ok {
		t.Fatal("nil injector fired")
	}
	if in.Should(NetDrop) {
		t.Fatal("nil injector should-fired")
	}
	in.NoteRecovered()
	in.NoteSurfaced()
	if in.InjectedAt(IRQDrop) != 0 || in.Pick(3) != 0 {
		t.Fatal("nil injector reports non-zero state")
	}
	if got := in.Render(); got != "profile none\n" {
		t.Fatalf("nil Render = %q", got)
	}
}

func TestEmptyPlanIsInactive(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	in := NewInjector(e, 42, Plan{})
	if in.Active() {
		t.Fatal("empty plan reports active")
	}
	for i := 0; i < 100; i++ {
		if in.Should(SyscallErrno) {
			t.Fatal("empty plan fired")
		}
	}
	if in.Injected.Value() != 0 {
		t.Fatal("empty plan counted injections")
	}
}

func TestRatesZeroAndOne(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	in := NewInjector(e, 42, Plan{Rules: []Rule{
		{Point: IRQDrop, Rate: 1},
		{Point: NetDrop, Rate: 0},
	}})
	for i := 0; i < 50; i++ {
		if !in.Should(IRQDrop) {
			t.Fatal("rate-1 rule did not fire")
		}
		if in.Should(NetDrop) {
			t.Fatal("rate-0 rule fired")
		}
	}
	if in.InjectedAt(IRQDrop) != 50 || in.Injected.Value() != 50 {
		t.Fatalf("injection counts: point=%d total=%d",
			in.InjectedAt(IRQDrop), in.Injected.Value())
	}
}

func TestTimeWindowGatesInjection(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	in := NewInjector(e, 7, Plan{Rules: []Rule{
		{Point: BlockError, Rate: 1, After: 1 * sim.Millisecond, Until: 2 * sim.Millisecond},
	}})
	var before, inside, after bool
	before = in.Should(BlockError) // t = 0: closed
	e.After(1500*sim.Microsecond, func() { inside = in.Should(BlockError) })
	e.After(2500*sim.Microsecond, func() { after = in.Should(BlockError) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if before || !inside || after {
		t.Fatalf("window gating: before=%v inside=%v after=%v", before, inside, after)
	}
}

func TestDeterministicReplay(t *testing.T) {
	plan, err := PlanFor("all", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	draw := func() []bool {
		e := sim.NewEngine(1)
		defer e.Shutdown()
		in := NewInjector(e, 99, plan)
		var out []bool
		for i := 0; i < 200; i++ {
			for _, p := range Points() {
				out = append(out, in.Should(p))
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical (seed, plan) runs", i)
		}
	}
}

func TestPlanForProfiles(t *testing.T) {
	for _, p := range Profiles() {
		plan, err := PlanFor(p, 0)
		if err != nil {
			t.Fatalf("PlanFor(%q): %v", p, err)
		}
		if plan.Name != p || len(plan.Rules) == 0 {
			t.Fatalf("PlanFor(%q) = %+v", p, plan)
		}
		for _, r := range plan.Rules {
			if r.Rate <= 0 || r.Rate > 1 {
				t.Fatalf("profile %q rule %s has rate %g", p, r.Point, r.Rate)
			}
		}
	}
	if _, err := PlanFor("nonsense", 0.1); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if !strings.Contains(ProfileHelp(), "interrupt-loss") {
		t.Fatal("ProfileHelp misses profiles")
	}
}

func TestRenderListsPlanAndCounts(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Shutdown()
	plan, _ := PlanFor("ssd-degraded", 1)
	in := NewInjector(e, 5, plan)
	in.Should(BlockLatency)
	in.NoteRecovered()
	out := in.Render()
	for _, want := range []string{"profile ssd-degraded",
		"rule blockdev.latency_spike", "injected.blockdev.latency_spike 1",
		"recovered 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render misses %q:\n%s", want, out)
		}
	}
}
