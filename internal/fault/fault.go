// Package fault is the machine's deterministic fault-injection
// subsystem: a seeded, virtual-time random process that decides — at a
// fixed set of injection points wired through oskern, core, blockdev,
// netstack and syscalls — whether a given operation fails, stalls or is
// lost. Every decision is drawn from the Injector's own RNG (never the
// engine's), so an inactive or rate-zero plan leaves the baseline event
// schedule bit-identical, and a fixed (seed, plan) pair replays the
// exact same fault schedule on every run.
//
// The subsystem only injects; recovery lives where it does in a real
// system — interrupt retransmission in core, workqueue re-dispatch in
// oskern, command retry in blockdev, and the restartable-syscall layer
// in gclib — and reports back here through NoteRecovered/NoteSurfaced
// so the registry exposes machine-wide injected/recovered/surfaced
// totals.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"genesys/internal/sim"
)

// Point names one injection site in the machine.
type Point string

const (
	// IRQDrop loses a GPU→CPU doorbell interrupt in the handler.
	IRQDrop Point = "oskern.irq_drop"
	// SlotSkip makes the OS worker's 64-slot scan skip a ready slot.
	SlotSkip Point = "oskern.slot_skip"
	// WorkerStall parks an OS worker thread mid-dispatch (Param: stall
	// duration in nanoseconds; 0 uses the default).
	WorkerStall Point = "oskern.worker_stall"
	// BlockLatency adds a service-time spike to one SSD command (Param:
	// extra nanoseconds; 0 uses the default).
	BlockLatency Point = "blockdev.latency_spike"
	// BlockError fails one SSD command with a transient I/O error.
	BlockError Point = "blockdev.io_error"
	// NetDrop loses a datagram in flight.
	NetDrop Point = "netstack.drop"
	// NetReset refuses a send as if the peer reset (ECONNREFUSED).
	NetReset Point = "netstack.reset"
	// NetEAGAIN fails a send with EAGAIN as if the send buffer is full.
	NetEAGAIN Point = "netstack.eagain"
	// SyscallErrno fails a dispatched system call with a transient errno
	// (Param: the errno number to inject; 0 rotates EINTR/EAGAIN/ENOMEM).
	SyscallErrno Point = "syscalls.transient_errno"
)

// Points lists every injection point in a fixed order.
func Points() []Point {
	return []Point{IRQDrop, SlotSkip, WorkerStall, BlockLatency, BlockError,
		NetDrop, NetReset, NetEAGAIN, SyscallErrno}
}

// Rule arms one injection point with a failure rate over a virtual-time
// window. A zero Until means "forever"; Param is point-specific.
type Rule struct {
	Point Point
	Rate  float64  // probability an eligible operation is hit, in [0, 1]
	After sim.Time // injection starts at this virtual time
	Until sim.Time // injection stops here; 0 = never
	Param int64
}

// Plan is a named set of injection rules — what -faults=<profile>
// resolves to.
type Plan struct {
	Name  string
	Rules []Rule
}

// DefaultRate is used when a profile is requested without a rate.
const DefaultRate = 0.05

// Profiles lists the built-in fault profiles.
func Profiles() []string {
	return []string{"interrupt-loss", "worker-stall", "transient-errno",
		"ssd-degraded", "net-flaky", "all"}
}

// ProfileHelp renders one line per profile for -faults=help.
func ProfileHelp() string {
	var b strings.Builder
	b.WriteString("fault profiles (use with -faults=<profile> [-fault-rate R]):\n")
	for _, p := range Profiles() {
		plan, _ := PlanFor(p, DefaultRate)
		pts := make([]string, len(plan.Rules))
		for i, r := range plan.Rules {
			pts[i] = string(r.Point)
		}
		fmt.Fprintf(&b, "  %-16s %s\n", p, strings.Join(pts, ", "))
	}
	return b.String()
}

// PlanFor resolves a profile name and rate to a concrete Plan. A rate
// <= 0 selects DefaultRate.
func PlanFor(profile string, rate float64) (Plan, error) {
	if rate <= 0 {
		rate = DefaultRate
	}
	if rate > 1 {
		rate = 1
	}
	switch profile {
	case "interrupt-loss":
		return Plan{Name: profile, Rules: []Rule{
			{Point: IRQDrop, Rate: rate},
			{Point: SlotSkip, Rate: rate / 2},
		}}, nil
	case "worker-stall":
		return Plan{Name: profile, Rules: []Rule{
			{Point: WorkerStall, Rate: rate, Param: int64(2 * sim.Millisecond)},
		}}, nil
	case "transient-errno":
		return Plan{Name: profile, Rules: []Rule{
			{Point: SyscallErrno, Rate: rate},
		}}, nil
	case "ssd-degraded":
		return Plan{Name: profile, Rules: []Rule{
			{Point: BlockLatency, Rate: rate, Param: int64(500 * sim.Microsecond)},
			{Point: BlockError, Rate: rate / 2},
		}}, nil
	case "net-flaky":
		return Plan{Name: profile, Rules: []Rule{
			{Point: NetDrop, Rate: rate},
			{Point: NetEAGAIN, Rate: rate},
			{Point: NetReset, Rate: rate / 4},
		}}, nil
	case "all":
		all := Plan{Name: profile}
		for _, p := range []string{"interrupt-loss", "worker-stall",
			"transient-errno", "ssd-degraded", "net-flaky"} {
			sub, _ := PlanFor(p, rate)
			all.Rules = append(all.Rules, sub.Rules...)
		}
		return all, nil
	}
	return Plan{}, fmt.Errorf("fault: unknown profile %q (have: %s)",
		profile, strings.Join(Profiles(), ", "))
}

// Injector evaluates a Plan against virtual time. All methods are
// nil-safe, so subsystems can hold a nil *Injector at zero cost.
type Injector struct {
	e     *sim.Engine
	rng   *rand.Rand
	plan  Plan
	rules map[Point][]Rule

	// Injected / Recovered / Surfaced are the machine-wide totals: every
	// fault injected anywhere, every fault a recovery mechanism absorbed,
	// and every fault that reached the workload as an errno.
	Injected  sim.Counter
	Recovered sim.Counter
	Surfaced  sim.Counter

	perPoint map[Point]*sim.Counter

	// surfacedHook, when set, fires on every NoteSurfaced — the flight
	// recorder's fault-surfaced detector hangs off it.
	surfacedHook func()
}

// SetSurfacedHook installs a callback invoked whenever a fault surfaces
// to the workload (after the counter increments). Pure notification: the
// hook must not perturb virtual time or randomness.
func (in *Injector) SetSurfacedHook(fn func()) {
	if in != nil {
		in.surfacedHook = fn
	}
}

// NewInjector builds an injector over e with its own RNG seeded from
// seed. An empty plan yields an inactive injector: counters register,
// but no RNG is ever drawn and no recovery machinery should arm.
func NewInjector(e *sim.Engine, seed int64, plan Plan) *Injector {
	in := &Injector{
		e:        e,
		rng:      rand.New(rand.NewSource(seed)),
		plan:     plan,
		rules:    make(map[Point][]Rule),
		perPoint: make(map[Point]*sim.Counter),
	}
	for _, r := range plan.Rules {
		in.rules[r.Point] = append(in.rules[r.Point], r)
	}
	for _, p := range Points() {
		in.perPoint[p] = &sim.Counter{}
	}
	return in
}

// Active reports whether any rule is armed. Recovery machinery that
// costs events (watchdog timers, restart loops) gates on this, keeping
// the default path free of both events and RNG draws.
func (in *Injector) Active() bool {
	return in != nil && len(in.rules) > 0
}

// Plan returns the installed plan (zero Plan for a nil injector).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Fire asks whether an operation at point pt is hit right now. It draws
// one RNG sample per rule whose time window is open, counts the
// injection, and returns the matching rule.
func (in *Injector) Fire(pt Point) (Rule, bool) {
	if in == nil {
		return Rule{}, false
	}
	rules := in.rules[pt]
	if len(rules) == 0 {
		return Rule{}, false
	}
	now := in.e.Now()
	for _, r := range rules {
		if now < r.After || (r.Until > 0 && now >= r.Until) {
			continue
		}
		if in.rng.Float64() < r.Rate {
			in.Injected.Inc()
			in.perPoint[pt].Inc()
			return r, true
		}
	}
	return Rule{}, false
}

// Should is Fire without the rule.
func (in *Injector) Should(pt Point) bool {
	_, ok := in.Fire(pt)
	return ok
}

// Pick returns a deterministic value in [0, n) from the injector's RNG,
// for choosing between injection variants (e.g. which errno).
func (in *Injector) Pick(n int) int {
	if in == nil || n <= 0 {
		return 0
	}
	return in.rng.Intn(n)
}

// NoteRecovered records that a recovery mechanism (retry, retransmit,
// re-dispatch) transparently absorbed an injected fault.
func (in *Injector) NoteRecovered() {
	if in != nil {
		in.Recovered.Inc()
	}
}

// NoteSurfaced records that a fault reached the workload as an errno.
func (in *Injector) NoteSurfaced() {
	if in != nil {
		in.Surfaced.Inc()
		if in.surfacedHook != nil {
			in.surfacedHook()
		}
	}
}

// InjectedAt returns the number of injections at one point.
func (in *Injector) InjectedAt(pt Point) int64 {
	if in == nil {
		return 0
	}
	c, ok := in.perPoint[pt]
	if !ok {
		return 0
	}
	return c.Value()
}

// Render produces the /sys/genesys/faults view: the active plan and the
// per-point injection counts.
func (in *Injector) Render() string {
	if in == nil {
		return "profile none\n"
	}
	var b strings.Builder
	name := in.plan.Name
	if name == "" || !in.Active() {
		name = "none"
	}
	fmt.Fprintf(&b, "profile %s\n", name)
	for _, r := range in.plan.Rules {
		fmt.Fprintf(&b, "rule %s rate %g", r.Point, r.Rate)
		if r.After > 0 || r.Until > 0 {
			fmt.Fprintf(&b, " window [%d,%d)", int64(r.After), int64(r.Until))
		}
		if r.Param != 0 {
			fmt.Fprintf(&b, " param %d", r.Param)
		}
		b.WriteString("\n")
	}
	pts := make([]string, 0, len(in.perPoint))
	for p := range in.perPoint {
		pts = append(pts, string(p))
	}
	sort.Strings(pts)
	for _, p := range pts {
		fmt.Fprintf(&b, "injected.%s %d\n", p, in.perPoint[Point(p)].Value())
	}
	fmt.Fprintf(&b, "injected %d\nrecovered %d\nsurfaced %d\n",
		in.Injected.Value(), in.Recovered.Value(), in.Surfaced.Value())
	return b.String()
}
