package gsh

import (
	"path/filepath"
	"strings"
	"testing"

	"genesys/internal/platform"
)

// ckptShell builds a shell whose prologue goes through Shell.WriteFile,
// so the session is checkpointable.
func ckptShell(t *testing.T) *Shell {
	t.Helper()
	m := platform.New(platform.DefaultConfig())
	t.Cleanup(m.Shutdown)
	s := New(m)
	if err := s.WriteFile("/tmp/poem.txt",
		[]byte("roses are red\nviolets are blue\nGPUs make syscalls\nand so can you\n")); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCkptSaveLoadRoundTrip saves a session mid-way, restores it into a
// fresh shell, and checks the restored session continues exactly like
// the original: same command output, same syscall counters.
func TestCkptSaveLoadRoundTrip(t *testing.T) {
	s := ckptShell(t)
	if _, err := s.Run("wc /tmp/poem.txt"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.json")
	out, err := s.Run("ckpt save " + path)
	if err != nil {
		t.Fatalf("ckpt save: %v", err)
	}
	if !strings.Contains(out, "saved session") {
		t.Fatalf("save output: %q", out)
	}

	// The original continues.
	origOut, err := s.Run("grep blue /tmp/poem.txt")
	if err != nil {
		t.Fatal(err)
	}
	origCalls := s.M.Genesys.Invocations.Value()

	// The restored session continues identically.
	restored, err := Restore(path)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	t.Cleanup(restored.M.Shutdown)
	restOut, err := restored.Run("grep blue /tmp/poem.txt")
	if err != nil {
		t.Fatal(err)
	}
	if restOut != origOut {
		t.Errorf("restored session diverges:\noriginal: %q\nrestored: %q", origOut, restOut)
	}
	if got := restored.M.Genesys.Invocations.Value(); got != origCalls {
		t.Errorf("restored session at %d invocations, original at %d", got, origCalls)
	}
}

// TestCkptLoadSwapsSession checks the in-shell "ckpt load" replaces the
// running session with the restored one.
func TestCkptLoadSwapsSession(t *testing.T) {
	s := ckptShell(t)
	if _, err := s.Run("wc /tmp/poem.txt"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.json")
	if _, err := s.Run("ckpt save " + path); err != nil {
		t.Fatal(err)
	}
	savedCalls := s.M.Genesys.Invocations.Value()

	// Mutate the session past the save point, then load it back.
	if _, err := s.Run("cat /tmp/poem.txt"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run("ckpt load " + path)
	if err != nil {
		t.Fatalf("ckpt load: %v", err)
	}
	t.Cleanup(s.M.Shutdown)
	if !strings.Contains(out, "restored session") || !strings.Contains(out, "verified") {
		t.Fatalf("load output: %q", out)
	}
	if got := s.M.Genesys.Invocations.Value(); got != savedCalls {
		t.Errorf("loaded session at %d invocations, saved at %d", got, savedCalls)
	}
	// The swapped-in machine keeps working.
	if out, err := s.Run("stat /tmp/poem.txt"); err != nil || !strings.Contains(out, "Size: 65") {
		t.Fatalf("post-load stat: %v\n%s", err, out)
	}
}

// TestCkptInfo describes a snapshot without restoring it.
func TestCkptInfo(t *testing.T) {
	s := ckptShell(t)
	if _, err := s.Run("ls /tmp"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.json")
	if _, err := s.Run("ckpt save " + path); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run("ckpt info " + path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kind=gsh", "history: 2 entries",
		"section sim", "section genesys", "section netstack", "section obs"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output lacks %q:\n%s", want, out)
		}
	}
}

// TestCkptErrors covers the command's usage and failure paths.
func TestCkptErrors(t *testing.T) {
	s := ckptShell(t)
	if _, err := s.Run("ckpt save"); err == nil {
		t.Error("ckpt save without a file accepted")
	}
	if _, err := s.Run("ckpt frobnicate x"); err == nil {
		t.Error("unknown ckpt verb accepted")
	}
	if _, err := s.Run("ckpt load " + filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("ckpt load of missing file accepted")
	}
}

// TestSessionCommandsNotRecorded checks ckpt/replay lines stay out of
// the checkpoint history (a restored session must not re-save files or
// re-run replays).
func TestSessionCommandsNotRecorded(t *testing.T) {
	s := ckptShell(t)
	if _, err := s.Run("ls /tmp"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.json")
	if _, err := s.Run("ckpt save " + path); err != nil {
		t.Fatal(err)
	}
	for _, line := range s.history {
		if strings.HasPrefix(line, "ckpt") || strings.HasPrefix(line, "replay") {
			t.Errorf("session command recorded in history: %q", line)
		}
	}
	// 1 writefile + 1 ls.
	if len(s.history) != 2 {
		t.Errorf("history = %q, want 2 entries", s.history)
	}
}

// TestHelpListsSessionCommands checks the help text documents ckpt and
// replay.
func TestHelpListsSessionCommands(t *testing.T) {
	s := ckptShell(t)
	out, err := s.Run("help")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ckpt save <file>", "ckpt load <file>", "replay <file>"} {
		if !strings.Contains(out, want) {
			t.Errorf("help lacks %q:\n%s", want, out)
		}
	}
}
