// Package gsh implements a tiny "GPU shell": classic Unix one-liners
// (ls, cat, wc, grep, stat, df) executed as GPU kernels that obtain every
// byte through GENESYS system calls and print through write(2) on the
// simulated terminal. It is the "legacy software written to invoke
// OS-managed services" demonstration the paper's introduction promises:
// the commands' logic is ordinary file-walking code, unchanged except
// that it runs on wavefronts.
package gsh

import (
	"fmt"
	"strconv"
	"strings"

	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/fs"
	"genesys/internal/gclib"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
)

// Shell runs commands on one machine. Its command history (including
// host-written prologue files, recorded by WriteFile) is the session's
// checkpoint recipe: replaying it on a fresh machine with the same seed
// rebuilds the session bit-identically (see ckpt.go).
type Shell struct {
	M *platform.Machine
	C gclib.C

	history []string
}

// New builds a shell over m, creating a process if none is bound.
func New(m *platform.Machine) *Shell {
	if m.Genesys.Process() == nil {
		m.NewProcess("gsh")
	}
	return &Shell{M: m, C: gclib.C{G: m.Genesys}}
}

// WriteFile creates path with the given contents host-side (setup
// helper) and records the write in the session history, so a restored
// session replays it. Use this instead of Machine.WriteFile when the
// session may be checkpointed.
func (s *Shell) WriteFile(path string, data []byte) error {
	if err := s.M.WriteFile(path, data); err != nil {
		return err
	}
	s.history = append(s.history, writeFileEntry(path, data))
	return nil
}

// Run parses and executes one command line on the GPU and returns the
// terminal output produced. Session commands (ckpt, replay) execute
// host-side and are not recorded in the checkpoint history.
func (s *Shell) Run(line string) (string, error) {
	args := strings.Fields(line)
	if len(args) == 0 {
		return "", nil
	}
	switch args[0] {
	case "ckpt":
		return s.cmdCkpt(args[1:])
	case "replay":
		return s.cmdReplay(args[1:])
	}
	cmd, ok := commands[args[0]]
	if !ok {
		return "", fmt.Errorf("gsh: unknown command %q (have: %s)", args[0],
			strings.Join(CommandNames(), ", "))
	}
	s.history = append(s.history, line)
	before := len(s.M.OS.Console.Contents())
	var runErr error
	s.M.E.Spawn("gsh:"+args[0], func(p *sim.Proc) {
		k := s.M.GPU.Launch(p, gpu.Kernel{
			Name: "gsh-" + args[0], WorkGroups: 1, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				if err := cmd.fn(s, w, args[1:]); err != nil && w.IsLeader() {
					runErr = err
					s.C.Printf(w, "gsh: %s: %v\n", args[0], err)
				}
			},
		})
		k.Wait(p)
		s.M.Genesys.Drain(p)
	})
	if err := s.M.E.Run(); err != nil {
		return "", err
	}
	return s.M.OS.Console.Contents()[before:], runErr
}

type command struct {
	usage string
	fn    func(s *Shell, w *gpu.Wavefront, args []string) error
}

var commands = map[string]command{
	"ls":       {"ls <dir>", cmdLs},
	"cat":      {"cat <file>", cmdCat},
	"wc":       {"wc <file>", cmdWc},
	"grep":     {"grep <word> <file...>", cmdGrep},
	"stat":     {"stat <path>", cmdStat},
	"df":       {"df", cmdDf},
	"metrics":  {"metrics", cmdMetrics},
	"util":     {"util", cmdUtil},
	"critpath": {"critpath", cmdCritpath},
	"slo":      {"slo", cmdSLO},
	"flight":   {"flight", cmdFlight},
	"top":      {topUsage, cmdTop},
}

// help is registered in init: cmdHelp renders Usage, which reads the
// commands map, and a literal entry would be an initialization cycle.
func init() {
	commands["help"] = command{"help", cmdHelp}
}

// CommandNames lists the available commands.
func CommandNames() []string {
	names := make([]string, 0, len(commands))
	for n := range commands {
		names = append(names, n)
	}
	// deterministic order
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return names
}

// Usage returns the usage lines of every command.
func Usage() string {
	var b strings.Builder
	for _, n := range CommandNames() {
		fmt.Fprintf(&b, "  %s\n", commands[n].usage)
	}
	return b.String()
}

func oneArg(args []string) (string, error) {
	if len(args) != 1 {
		return "", errno.EINVAL
	}
	return args[0], nil
}

func cmdLs(s *Shell, w *gpu.Wavefront, args []string) error {
	dir := "/"
	if len(args) == 1 {
		dir = args[0]
	}
	names, err := s.C.Getdents(w, dir)
	if err != errno.OK {
		return err
	}
	for _, n := range names {
		size, isDir, serr := s.C.Stat(w, strings.TrimRight(dir, "/")+"/"+n)
		kind := "-"
		if serr == errno.OK && isDir {
			kind = "d"
		}
		s.C.Printf(w, "%s %8d %s\n", kind, size, n)
	}
	return nil
}

func cmdCat(s *Shell, w *gpu.Wavefront, args []string) error {
	path, err := oneArg(args)
	if err != nil {
		return err
	}
	fd, oerr := s.C.Open(w, path, fs.O_RDONLY)
	if oerr != errno.OK {
		return oerr
	}
	defer s.C.Close(w, fd)
	buf := make([]byte, 4096)
	for {
		n, rerr := s.C.Read(w, fd, buf)
		if rerr != errno.OK {
			return rerr
		}
		if n == 0 {
			return nil
		}
		s.C.Write(w, 1, buf[:n])
	}
}

func cmdWc(s *Shell, w *gpu.Wavefront, args []string) error {
	path, err := oneArg(args)
	if err != nil {
		return err
	}
	fd, oerr := s.C.Open(w, path, fs.O_RDONLY)
	if oerr != errno.OK {
		return oerr
	}
	defer s.C.Close(w, fd)
	var lines, words, bytes int
	inWord := false
	buf := make([]byte, 4096)
	for {
		n, rerr := s.C.Read(w, fd, buf)
		if rerr != errno.OK {
			return rerr
		}
		if n == 0 {
			break
		}
		// The whole work-group scans the buffer cooperatively.
		w.ComputeTime(sim.Time(n) * sim.Nanosecond / 8)
		bytes += n
		for _, c := range buf[:n] {
			if c == '\n' {
				lines++
			}
			isSpace := c == ' ' || c == '\n' || c == '\t'
			if !isSpace && !inWord {
				words++
			}
			inWord = !isSpace
		}
	}
	s.C.Printf(w, "%7d %7d %7d %s\n", lines, words, bytes, path)
	return nil
}

func cmdGrep(s *Shell, w *gpu.Wavefront, args []string) error {
	if len(args) < 2 {
		return errno.EINVAL
	}
	word := args[0]
	for _, path := range args[1:] {
		fd, oerr := s.C.Open(w, path, fs.O_RDONLY)
		if oerr != errno.OK {
			s.C.Printf(w, "gsh: grep: %s: %v\n", path, oerr)
			continue
		}
		lineNo := 1
		carry := ""
		buf := make([]byte, 4096)
		for {
			n, rerr := s.C.Read(w, fd, buf)
			if rerr != errno.OK || n == 0 {
				break
			}
			w.ComputeTime(sim.Time(n) * sim.Nanosecond / 8)
			text := carry + string(buf[:n])
			lines := strings.Split(text, "\n")
			carry = lines[len(lines)-1]
			for _, l := range lines[:len(lines)-1] {
				if strings.Contains(l, word) {
					s.C.Printf(w, "%s:%d:%s\n", path, lineNo, l)
				}
				lineNo++
			}
		}
		if strings.Contains(carry, word) {
			s.C.Printf(w, "%s:%d:%s\n", path, lineNo, carry)
		}
		s.C.Close(w, fd)
	}
	return nil
}

func cmdStat(s *Shell, w *gpu.Wavefront, args []string) error {
	path, err := oneArg(args)
	if err != nil {
		return err
	}
	size, isDir, serr := s.C.Stat(w, path)
	if serr != errno.OK {
		return serr
	}
	kind := "regular file"
	if isDir {
		kind = "directory"
	}
	s.C.Printf(w, "  File: %s\n  Size: %d\n  Type: %s\n", path, size, kind)
	return nil
}

func cmdHelp(s *Shell, w *gpu.Wavefront, args []string) error {
	s.C.Printf(w, "gsh commands:\n%s", Usage())
	s.C.Printf(w, "session commands (host-side, not GPU kernels):\n"+
		"  ckpt save <file>   checkpoint this session to a snapshot file\n"+
		"  ckpt load <file>   restore a session snapshot (replaces this session)\n"+
		"  ckpt info <file>   describe a snapshot without restoring it\n"+
		"  replay <file> [workers]  replay a recorded syscall trace\n")
	s.C.Printf(w, "observability:\n"+
		"  top [frames [interval_us]]  live virtual-time dashboard\n"+
		"                              (util, engine, slots, SLO burn; default 1 frame)\n"+
		"  flight                      flight-recorder state and anomaly bundles\n")
	s.C.Printf(w, "machine fault injection (see /sys/genesys/faults): %s\n",
		strings.Join(fault.Profiles(), ", "))
	return nil
}

// catSysfs prints one /sys/genesys view, fetched through the GPU
// syscall path it describes. A single large read: the views are
// regenerated on every read and grow as the shell's own syscalls are
// traced, so chunked reads would tear the text mid-line.
func catSysfs(s *Shell, w *gpu.Wavefront, path string) error {
	fd, oerr := s.C.Open(w, path, fs.O_RDONLY)
	if oerr != errno.OK {
		return oerr
	}
	defer s.C.Close(w, fd)
	buf := make([]byte, 1<<16)
	n, rerr := s.C.Read(w, fd, buf)
	if rerr != errno.OK {
		return rerr
	}
	s.C.Write(w, 1, buf[:n])
	return nil
}

func cmdMetrics(s *Shell, w *gpu.Wavefront, args []string) error {
	return catSysfs(s, w, "/sys/genesys/metrics")
}

func cmdUtil(s *Shell, w *gpu.Wavefront, args []string) error {
	return catSysfs(s, w, "/sys/genesys/util")
}

func cmdCritpath(s *Shell, w *gpu.Wavefront, args []string) error {
	return catSysfs(s, w, "/sys/genesys/critpath")
}

func cmdSLO(s *Shell, w *gpu.Wavefront, args []string) error {
	return catSysfs(s, w, "/sys/genesys/slo")
}

func cmdFlight(s *Shell, w *gpu.Wavefront, args []string) error {
	return catSysfs(s, w, "/sys/genesys/flight")
}

const topUsage = "top [frames [interval_us]]"

// cmdTop renders the live dashboard: `top [frames [interval_us]]`
// refreshes /sys/genesys/top every interval of *virtual* time (default
// 1 frame; 500µs interval), so successive frames show the machine
// evolving — each read flows through the GPU syscall path like any
// other gsh command.
func cmdTop(s *Shell, w *gpu.Wavefront, args []string) error {
	frames := 1
	interval := 500 * sim.Microsecond
	// Both arguments must be whole positive integers: zero or negative
	// frames render nothing, and a zero or negative interval would make
	// every extra frame re-render the same instant without virtual time
	// ever advancing. strconv (not Sscanf) so trailing garbage like
	// "500x" is a usage error too, not silently truncated.
	if len(args) >= 1 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return fmt.Errorf("bad frames %q (usage: %s)", args[0], topUsage)
		}
		frames = n
	}
	if len(args) >= 2 {
		us, err := strconv.Atoi(args[1])
		if err != nil || us < 1 {
			return fmt.Errorf("bad interval_us %q (usage: %s)", args[1], topUsage)
		}
		interval = sim.Time(us) * sim.Microsecond
	}
	for f := 0; f < frames; f++ {
		if f > 0 {
			// Advance virtual time between frames so the refresh shows
			// movement, not the same instant re-rendered.
			w.ComputeTime(interval)
			if w.IsLeader() {
				s.C.Printf(w, "\n")
			}
		}
		if err := catSysfs(s, w, "/sys/genesys/top"); err != nil {
			return err
		}
	}
	return nil
}

func cmdDf(s *Shell, w *gpu.Wavefront, args []string) error {
	fd, oerr := s.C.Open(w, "/proc/meminfo", fs.O_RDONLY)
	if oerr != errno.OK {
		return oerr
	}
	defer s.C.Close(w, fd)
	buf := make([]byte, 512)
	n, rerr := s.C.Read(w, fd, buf)
	if rerr != errno.OK {
		return rerr
	}
	s.C.Write(w, 1, buf[:n])
	return nil
}
