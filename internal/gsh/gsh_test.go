package gsh

import (
	"strings"
	"testing"

	"genesys/internal/platform"
)

func newShell(t *testing.T) *Shell {
	t.Helper()
	m := platform.New(platform.DefaultConfig())
	t.Cleanup(m.Shutdown)
	s := New(m)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.WriteFile("/tmp/poem.txt", []byte("roses are red\nviolets are blue\nGPUs make syscalls\nand so can you\n")))
	must(m.WriteFile("/tmp/empty", nil))
	return s
}

func TestLs(t *testing.T) {
	s := newShell(t)
	out, err := s.Run("ls /tmp")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "poem.txt") || !strings.Contains(out, "empty") {
		t.Fatalf("ls output:\n%s", out)
	}
	if !strings.Contains(out, "-       65 poem.txt") {
		t.Fatalf("ls sizes wrong:\n%s", out)
	}
}

func TestCat(t *testing.T) {
	s := newShell(t)
	out, err := s.Run("cat /tmp/poem.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "roses are red\n") || !strings.Contains(out, "and so can you") {
		t.Fatalf("cat output:\n%s", out)
	}
}

func TestWc(t *testing.T) {
	s := newShell(t)
	out, err := s.Run("wc /tmp/poem.txt")
	if err != nil {
		t.Fatal(err)
	}
	// 4 lines, 13 words, 65 bytes.
	if !strings.Contains(out, "4      13      65 /tmp/poem.txt") {
		t.Fatalf("wc output: %q", out)
	}
}

func TestGrep(t *testing.T) {
	s := newShell(t)
	out, err := s.Run("grep are /tmp/poem.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "/tmp/poem.txt:1:roses are red") ||
		!strings.Contains(out, "/tmp/poem.txt:2:violets are blue") ||
		strings.Contains(out, ":3:") {
		t.Fatalf("grep output:\n%s", out)
	}
}

func TestStatAndDf(t *testing.T) {
	s := newShell(t)
	out, err := s.Run("stat /tmp/poem.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Size: 65") || !strings.Contains(out, "regular file") {
		t.Fatalf("stat output:\n%s", out)
	}
	out, err = s.Run("stat /tmp")
	if err != nil || !strings.Contains(out, "directory") {
		t.Fatalf("stat dir: %v\n%s", err, out)
	}
	out, err = s.Run("df")
	if err != nil || !strings.Contains(out, "MemTotal:") {
		t.Fatalf("df: %v\n%s", err, out)
	}
}

func TestErrorsSurfaceOnTerminal(t *testing.T) {
	s := newShell(t)
	out, err := s.Run("cat /tmp/missing")
	if err == nil {
		t.Fatal("cat of missing file should error")
	}
	if !strings.Contains(out, "ENOENT") {
		t.Fatalf("error not printed:\n%s", out)
	}
	if _, err := s.Run("frobnicate"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if out, _ := s.Run(""); out != "" {
		t.Fatal("empty line produced output")
	}
}

func TestEverythingRanOnTheGPU(t *testing.T) {
	s := newShell(t)
	if _, err := s.Run("wc /tmp/poem.txt"); err != nil {
		t.Fatal(err)
	}
	if s.M.GPU.KernelsLaunched.Value() == 0 {
		t.Fatal("no kernel launched")
	}
	if s.M.Genesys.Invocations.Value() < 3 {
		t.Fatalf("only %d GPU syscalls", s.M.Genesys.Invocations.Value())
	}
}

func TestHelpListsCommandsAndFaultProfiles(t *testing.T) {
	s := newShell(t)
	out, err := s.Run("help")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ls <dir>", "grep <word> <file...>",
		"interrupt-loss", "net-flaky", "/sys/genesys/faults"} {
		if !strings.Contains(out, want) {
			t.Errorf("help output lacks %q:\n%s", want, out)
		}
	}
}

func TestObservabilityCommands(t *testing.T) {
	s := newShell(t)
	// Earlier commands populate the tracer and metrics the views render.
	if _, err := s.Run("wc /tmp/poem.txt"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run("metrics")
	if err != nil || !strings.Contains(out, "genesys.invocations") {
		t.Fatalf("metrics: %v\n%s", err, out)
	}
	out, err = s.Run("util")
	if err != nil || !strings.Contains(out, "gpu.busy_cus") {
		t.Fatalf("util: %v\n%s", err, out)
	}
	out, err = s.Run("critpath")
	if err != nil || !strings.Contains(out, "critical-path attribution") {
		t.Fatalf("critpath: %v\n%s", err, out)
	}
	if !strings.Contains(out, "read") || !strings.Contains(out, "open") {
		t.Fatalf("critpath table lacks the reads the shell issued:\n%s", out)
	}
	// No fleet run on this machine, so the SLO view reports the absence.
	out, err = s.Run("slo")
	if err != nil || !strings.Contains(out, "no service-level report") {
		t.Fatalf("slo: %v\n%s", err, out)
	}
}

func TestUsageAndNames(t *testing.T) {
	names := CommandNames()
	if len(names) != 13 || names[0] != "cat" {
		t.Fatalf("names = %v", names)
	}
	if !strings.Contains(Usage(), "grep <word> <file...>") {
		t.Fatalf("usage:\n%s", Usage())
	}
	if !strings.Contains(Usage(), "help") {
		t.Fatalf("usage lacks help:\n%s", Usage())
	}
}

// TestTopGolden pins the exact two-frame `top` output of a fixed
// session: the dashboard is rendered from deterministic counters, so
// any drift here is a real behavior change (update the golden
// deliberately). The second frame must show virtual time advancing.
func TestTopGolden(t *testing.T) {
	m := platform.New(platform.DefaultConfig())
	t.Cleanup(m.Shutdown)
	s := New(m)
	if err := m.WriteFile("/tmp/poem.txt", []byte("roses are red\nviolets are blue\nGPUs make syscalls\nand so can you\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("wc /tmp/poem.txt"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run("top 2 500")
	if err != nil {
		t.Fatal(err)
	}
	const golden = `genesys top — t=209.06us
util  cores=0 waiting=0 workers=1 cus=1 resident_waves=1 halted_waves=0 polling_waves=1
engine  events=156 ready-fast=19 callbacks=83 switches=78 pending=1 procs=6
wheel   scheduled=0 canceled=0 pending=0 peak=0
kernel  workers=3 idle=2 queue=0 tasks=7
slots   free=20479 populating=0 ready=0 processing=1 finished=0 outstanding=1
calls   invocations=7 batches=7 retransmits=0 traced=6 p50=24.55us p99=24.55us min=24.55us max=24.55us
flight  chains=6 anomalies=0 bundles=0 burn=0/0 (0.0% bad)

genesys top — t=831.81us
util  cores=0 waiting=0 workers=1 cus=1 resident_waves=1 halted_waves=0 polling_waves=1
engine  events=258 ready-fast=24 callbacks=143 switches=125 pending=1 procs=6
wheel   scheduled=1 canceled=0 pending=0 peak=1
kernel  workers=3 idle=2 queue=0 tasks=12
slots   free=20479 populating=0 ready=0 processing=1 finished=0 outstanding=1
calls   invocations=12 batches=12 retransmits=0 traced=11 p50=24.55us p99=24.55us min=24.55us max=24.55us
flight  chains=11 anomalies=0 bundles=0 burn=0/0 (0.0% bad)
`
	if out != golden {
		t.Fatalf("top output drifted from golden:\ngot:\n%s\nwant:\n%s", out, golden)
	}
}

// TestTopBadArgs: every malformed frames/interval argument must be a
// usage error that names the bad value. The interval cases guard a real
// hang class — `top N 0` used to be representable as frames that never
// advance virtual time, re-rendering the same instant N times.
func TestTopBadArgs(t *testing.T) {
	s := newShell(t)
	for _, tc := range []struct{ line, want string }{
		{"top zero", "bad frames"},
		{"top 0", "bad frames"},
		{"top -2", "bad frames"},
		{"top 2x", "bad frames"},
		{"top 1 -5", "bad interval_us"},
		{"top 2 0", "bad interval_us"},
		{"top 2 500x", "bad interval_us"},
		{"top 2 1e3", "bad interval_us"},
	} {
		out, err := s.Run(tc.line)
		if err == nil || !strings.Contains(out, tc.want) || !strings.Contains(out, "usage: top [frames [interval_us]]") {
			t.Fatalf("%s: err=%v out=%q, want %q + usage", tc.line, err, out, tc.want)
		}
	}
	// A usage error must not advance the session: the next valid render
	// still works.
	if _, err := s.Run("top 1"); err != nil {
		t.Fatalf("top 1 after bad args: %v", err)
	}
}

func TestFlightCommand(t *testing.T) {
	s := newShell(t)
	if _, err := s.Run("wc /tmp/poem.txt"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run("flight")
	if err != nil {
		t.Fatalf("flight: %v\n%s", err, out)
	}
	for _, want := range []string{"flight recorder", "chains retained", "anomalies 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flight output lacks %q:\n%s", want, out)
		}
	}
}
