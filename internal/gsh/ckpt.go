package gsh

// Session checkpoint/restore and trace replay for the GPU shell
// (DESIGN.md §10). A gsh session's recipe is its command history: the
// machine is deterministic for a fixed seed, every command drives the
// engine to quiescence, and host-written prologue files are recorded as
// synthetic history entries — so replaying the history on a fresh
// machine with the same seed rebuilds the session bit-identically,
// which ckpt.FastForward verifies section by section.

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"

	"genesys/internal/ckpt"
	"genesys/internal/platform"
	"genesys/internal/replay"
)

// writeFilePrefix marks a synthetic history entry recording a
// host-side Shell.WriteFile (path and base64 contents).
const writeFilePrefix = "#writefile "

func writeFileEntry(path string, data []byte) string {
	return writeFilePrefix + path + " " + base64.StdEncoding.EncodeToString(data)
}

// Save checkpoints the session to a snapshot file.
func (s *Shell) Save(path string) (*ckpt.Snapshot, error) {
	snap := ckpt.Capture(s.M, ckpt.Meta{
		Kind:    "gsh",
		Seed:    s.M.Cfg.Seed,
		History: append([]string(nil), s.history...),
	})
	if err := snap.Write(path); err != nil {
		return nil, err
	}
	return snap, nil
}

// Restore rebuilds a shell session from a snapshot: a fresh machine
// with the recorded seed, the history replayed, and the arrival state
// verified bit-identical against every snapshot section.
func Restore(path string) (*Shell, error) {
	snap, err := ckpt.Load(path)
	if err != nil {
		return nil, err
	}
	if snap.Meta.Kind != "gsh" {
		return nil, fmt.Errorf("gsh: snapshot kind %q, want \"gsh\" (restore bench snapshots with 'genesys restore')",
			snap.Meta.Kind)
	}
	cfg := platform.DefaultConfig()
	cfg.Seed = snap.Meta.Seed
	m := platform.New(cfg)
	sh := New(m)
	if err := sh.replayHistory(snap.Meta.History); err != nil {
		m.Shutdown()
		return nil, err
	}
	if err := ckpt.FastForward(m, snap); err != nil {
		m.Shutdown()
		return nil, fmt.Errorf("gsh: restore %s: %w", path, err)
	}
	return sh, nil
}

// replayHistory re-executes a recorded history on the fresh shell.
// Command errors are deliberately ignored: a failing command is part of
// the session's state evolution and must replay exactly as it first
// ran.
func (s *Shell) replayHistory(history []string) error {
	for _, line := range history {
		if rest, ok := strings.CutPrefix(line, writeFilePrefix); ok {
			path, b64, ok := strings.Cut(rest, " ")
			if !ok {
				return fmt.Errorf("gsh: malformed history entry %q", line)
			}
			data, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return fmt.Errorf("gsh: history entry %q: %w", line, err)
			}
			if err := s.WriteFile(path, data); err != nil {
				return err
			}
			continue
		}
		if _, err := s.Run(line); err != nil {
			// Engine errors abort the restore; command-level errors
			// (unknown path etc.) replayed fine and are already part of
			// the recorded state.
			if _, isCmd := commands[strings.Fields(line)[0]]; !isCmd {
				return err
			}
		}
	}
	return nil
}

// cmdCkpt implements the host-side "ckpt save|load|info <file>"
// session commands.
func (s *Shell) cmdCkpt(args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("gsh: usage: ckpt save|load|info <file>")
	}
	verb, path := args[0], args[1]
	switch verb {
	case "save":
		snap, err := s.Save(path)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("saved session to %s (t=%s, %d history entries, %d sections)\n",
			path, fmtNS(snap.CutAt), len(snap.Meta.History), len(snap.Sections)), nil
	case "load":
		restored, err := Restore(path)
		if err != nil {
			return "", err
		}
		old := s.M
		s.M, s.C, s.history = restored.M, restored.C, restored.history
		old.Shutdown()
		return fmt.Sprintf("restored session from %s (t=%s, %d history entries, verified)\n",
			path, fmtNS(int64(s.M.E.Now())), len(s.history)), nil
	case "info":
		snap, err := ckpt.Load(path)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s: kind=%s seed=%d cut at t=%s\n",
			path, snap.Meta.Kind, snap.Meta.Seed, fmtNS(snap.CutAt))
		if snap.Meta.Case != "" {
			fmt.Fprintf(&b, "  case: %s\n", snap.Meta.Case)
		}
		if n := len(snap.Meta.History); n > 0 {
			fmt.Fprintf(&b, "  history: %d entries\n", n)
		}
		for _, sec := range snap.Sections {
			fmt.Fprintf(&b, "  section %-10s %6d bytes  %s\n", sec.Name, len(sec.Data), sec.Digest)
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("gsh: ckpt: unknown verb %q (save|load|info)", verb)
	}
}

// cmdReplay implements the host-side "replay <file> [workers]" session
// command: it re-drives a recorded syscall trace against a fresh kernel
// pipeline (separate from this session's machine) and prints the
// fidelity report.
func (s *Shell) cmdReplay(args []string) (string, error) {
	if len(args) < 1 || len(args) > 2 {
		return "", fmt.Errorf("gsh: usage: replay <file> [workers]")
	}
	tr, err := replay.Load(args[0])
	if err != nil {
		return "", err
	}
	var opt replay.Options
	if len(args) == 2 {
		w, err := strconv.Atoi(args[1])
		if err != nil || w <= 0 {
			return "", fmt.Errorf("gsh: replay: bad worker count %q", args[1])
		}
		opt.Workers = w
	}
	rep, err := replay.Run(tr, opt)
	if err != nil {
		return "", err
	}
	return rep.Render(), nil
}

func fmtNS(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/1e6)
}
