package oskern

import (
	"testing"

	"genesys/internal/cpu"
	"genesys/internal/fs"
	"genesys/internal/netstack"
	"genesys/internal/sim"
	"genesys/internal/vmm"
)

// TestWorkerPoolGrowsWhenBlocked: the concurrency-managed-workqueue
// behaviour — tasks that block (e.g. in disk reads) must not cap the
// pool's concurrency, so Enqueue spawns new workers up to MaxWorkers.
func TestWorkerPoolGrowsWhenBlocked(t *testing.T) {
	e := sim.NewEngine(1)
	c := cpu.New(e, cpu.DefaultConfig())
	v := fs.NewVFS()
	net := netstack.New(e, netstack.DefaultConfig())
	vmCfg := vmm.DefaultConfig()
	cfg := DefaultConfig()
	cfg.Workers, cfg.MaxWorkers = 2, 6
	os := New(e, c, v, net, &vmm.Pool{Total: vmCfg.PhysPages}, vmCfg, cfg)
	t.Cleanup(e.Shutdown)

	if os.Workers() != 2 {
		t.Fatalf("initial workers = %d", os.Workers())
	}
	block := sim.NewCond(e)
	var concurrent, peak int
	e.Spawn("submitter", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			os.Enqueue(Task{Name: "blocker", Run: func(wp *sim.Proc) {
				concurrent++
				if concurrent > peak {
					peak = concurrent
				}
				block.Wait(wp, "artificial block") // like a disk read
				concurrent--
			}})
			p.Sleep(50 * sim.Microsecond)
		}
		p.Sleep(sim.Millisecond)
		for i := 0; i < 10; i++ {
			block.Broadcast()
			p.Sleep(100 * sim.Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if os.Workers() != 6 {
		t.Fatalf("workers grew to %d, want the MaxWorkers cap of 6", os.Workers())
	}
	if peak != 6 {
		t.Fatalf("peak concurrency = %d, want 6 (pool cap)", peak)
	}
	if os.QueueDepth() != 0 {
		t.Fatalf("tasks left behind: %d", os.QueueDepth())
	}
}

func TestMaxWorkersFloor(t *testing.T) {
	e := sim.NewEngine(1)
	c := cpu.New(e, cpu.DefaultConfig())
	v := fs.NewVFS()
	net := netstack.New(e, netstack.DefaultConfig())
	vmCfg := vmm.DefaultConfig()
	cfg := DefaultConfig()
	cfg.Workers, cfg.MaxWorkers = 4, 1 // cap below the floor is raised
	os := New(e, c, v, net, &vmm.Pool{Total: 1}, vmCfg, cfg)
	t.Cleanup(e.Shutdown)
	if os.Config().MaxWorkers != 4 {
		t.Fatalf("MaxWorkers = %d, want raised to Workers", os.Config().MaxWorkers)
	}
}
