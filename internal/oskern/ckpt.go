package oskern

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"genesys/internal/fs"
)

// CheckpointState renders the kernel's state as a deterministic byte
// string: worker-pool occupancy, work-queue depth, per-process identity
// (PID, name, open descriptors with offsets and paths, RSS, working
// directory) in PID order, the counters, and a digest of everything
// written to the console so far. Pure reads; used as a verification
// section by internal/ckpt (DESIGN.md §10).
func (o *OS) CheckpointState() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "oskern v1\n")
	fmt.Fprintf(&b, "workers %d idle %d queue_depth %d next_pid %d\n",
		o.workers, o.idleWorkers, o.wq.Len(), o.nextPID)
	fmt.Fprintf(&b, "counters tasks=%d syscalls=%d redispatches=%d orphans_reaped=%d\n",
		o.TasksRun.Value(), o.Syscalls.Value(), o.Redispatches.Value(),
		o.OrphansReaped.Value())

	h := fnv.New64a()
	h.Write([]byte(o.Console.Contents()))
	fmt.Fprintf(&b, "console bytes=%d digest=%016x\n", o.Console.Size(), h.Sum64())

	pids := make([]int, 0, len(o.procs))
	for pid := range o.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	fmt.Fprintf(&b, "procs %d\n", len(pids))
	for _, pid := range pids {
		pr := o.procs[pid]
		fmt.Fprintf(&b, "proc %d name=%q cwd=%q rss=%d fds=%d\n",
			pr.PID, pr.Name, pr.CWD, pr.MM.RSSBytes(), pr.FDs.OpenCount())
		pr.FDs.ForEach(func(fd int, f *fs.File) {
			kind := "file"
			if f.Special != nil {
				kind = "special"
			} else if f.Device != nil {
				kind = "device"
			}
			fmt.Fprintf(&b, "fd %d kind=%s path=%q pos=%d flags=%d\n",
				fd, kind, f.Path, f.Pos(), f.Flags())
		})
	}
	return []byte(b.String())
}
