package oskern

import (
	"strings"
	"testing"

	"genesys/internal/cpu"
	"genesys/internal/fs"
	"genesys/internal/netstack"
	"genesys/internal/sim"
	"genesys/internal/vmm"
)

func newOS(t *testing.T) (*sim.Engine, *OS) {
	t.Helper()
	e := sim.NewEngine(1)
	c := cpu.New(e, cpu.DefaultConfig())
	v := fs.NewVFS()
	net := netstack.New(e, netstack.DefaultConfig())
	vmCfg := vmm.DefaultConfig()
	pool := &vmm.Pool{Total: vmCfg.PhysPages}
	os := New(e, c, v, net, pool, vmCfg, DefaultConfig())
	t.Cleanup(e.Shutdown)
	return e, os
}

func TestWorkqueueRunsTasks(t *testing.T) {
	e, os := newOS(t)
	done := make([]sim.Time, 0, 8)
	e.Spawn("submitter", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			os.Enqueue(Task{Name: "t", Run: func(wp *sim.Proc) {
				os.CPU.Exec(wp, 100*sim.Microsecond, cpu.PrioKernel)
				done = append(done, wp.Now())
			}})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 8 {
		t.Fatalf("tasks run = %d", len(done))
	}
	if os.TasksRun.Value() != 8 {
		t.Fatalf("TasksRun = %d", os.TasksRun.Value())
	}
	// 8 tasks × 100us on 3 workers (4 cores): at least 3 waves.
	if last := done[len(done)-1]; last < 270*sim.Microsecond {
		t.Fatalf("last task at %v: worker pool not limited", last)
	}
}

func TestProcessSetup(t *testing.T) {
	_, os := newOS(t)
	pr := os.NewProcess("app")
	if pr.PID != 1 {
		t.Fatalf("pid = %d", pr.PID)
	}
	if pr.FDs.OpenCount() != 3 {
		t.Fatalf("stdio fds = %d", pr.FDs.OpenCount())
	}
	f, err := pr.FDs.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(&fs.IOCtx{}, []byte("to stdout\n")); err != nil {
		t.Fatalf("stdout write: %v", err)
	}
	if os.Console.Contents() != "to stdout\n" {
		t.Fatalf("console = %q", os.Console.Contents())
	}
	if got, ok := os.Lookup(pr.PID); !ok || got != pr {
		t.Fatal("lookup failed")
	}
	if _, ok := os.Lookup(99); ok {
		t.Fatal("lookup of unknown pid succeeded")
	}
}

func TestProcNamespace(t *testing.T) {
	_, os := newOS(t)
	pr := os.NewProcess("myapp")
	f, err := os.VFS.Open("/proc/1/status", fs.O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, _ := f.Read(&fs.IOCtx{}, buf)
	s := string(buf[:n])
	if !strings.Contains(s, "Name:\tmyapp") || !strings.Contains(s, "Pid:\t1") {
		t.Fatalf("status = %q", s)
	}
	_ = pr

	mi, err := os.VFS.Open("/proc/meminfo", fs.O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	n, _ = mi.Read(&fs.IOCtx{}, buf)
	if !strings.Contains(string(buf[:n]), "MemTotal:") {
		t.Fatalf("meminfo = %q", buf[:n])
	}
}

func TestDevNamespace(t *testing.T) {
	_, os := newOS(t)
	for _, path := range []string{"/dev/null", "/dev/zero", "/dev/console"} {
		if _, err := os.VFS.Open(path, fs.O_RDWR); err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
	}
	os.AddDevice("custom", fs.NullDev{})
	if _, err := os.VFS.Open("/dev/custom", fs.O_WRONLY); err != nil {
		t.Fatalf("custom device: %v", err)
	}
}

func TestContextSwitchCost(t *testing.T) {
	e, os := newOS(t)
	pr := os.NewProcess("app")
	var elapsed sim.Time
	e.Spawn("worker-sim", func(p *sim.Proc) {
		start := p.Now()
		pr.SwitchTo(p)
		elapsed = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != os.Config().ContextSwitch {
		t.Fatalf("switch cost = %v", elapsed)
	}
}
