// Package oskern models the Linux kernel pieces GENESYS runs on: process
// task structs (fd table, address space, signal state), the kernel
// work-queue with its pool of OS worker threads, interrupt-to-task
// hand-off costs, context switching into a target process, and the /dev,
// /proc and /sys namespaces.
//
// The paper's key kernel observation (§IV, §VI) is preserved: GPU threads
// have NO representation in the kernel. GPU system calls execute in OS
// worker threads that either switch to the context of the CPU process
// that launched the kernel, or carry explicit context — which is exactly
// how Process and Workqueue interact here.
package oskern

import (
	"fmt"

	"genesys/internal/cpu"
	"genesys/internal/fault"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/netstack"
	"genesys/internal/obs"
	"genesys/internal/sig"
	"genesys/internal/sim"
	"genesys/internal/vmm"
)

// Config holds kernel cost parameters.
type Config struct {
	Workers int // initial OS worker threads servicing the work-queue
	// MaxWorkers caps the pool. Like Linux's concurrency-managed
	// workqueues, the kernel spawns extra workers when all existing ones
	// are busy or blocked (e.g. in a disk read) and work is pending —
	// which is what lets a burst of blocking GPU preads reach high I/O
	// queue depths (Figure 14).
	MaxWorkers      int
	TaskDispatch    sim.Time // enqueue + schedule overhead per task
	ContextSwitch   sim.Time // switching a worker into a process context
	SyscallSoftware sim.Time // base in-kernel cost of one system call
	FDLimit         int

	// StallTimeout is how long a picked work-queue task may sit without
	// starting execution before the stall detector re-dispatches it to
	// another worker. Detection only arms while fault injection is
	// active; 0 selects a default.
	StallTimeout sim.Time
}

// DefaultConfig starts the pool at cores-1 (one core stays free for the
// application / GPU runtime) with latencies in the ranges the paper's
// platform exhibits.
func DefaultConfig() Config {
	return Config{
		Workers:         3,
		MaxWorkers:      64,
		TaskDispatch:    8 * sim.Microsecond,
		ContextSwitch:   3 * sim.Microsecond,
		SyscallSoftware: sim.Micros(1.5),
		FDLimit:         1024,
	}
}

// Task is one unit of deferred kernel work.
type Task struct {
	Name string
	Run  func(p *sim.Proc)
}

// OS is the simulated kernel.
type OS struct {
	E    *sim.Engine
	CPU  *cpu.CPU
	VFS  *fs.VFS
	Net  *netstack.Stack
	Pool *vmm.Pool

	// GPU, when set (AttachGPU), lets getrusage report GPU resource
	// usage — the adaptation §IV suggests for accelerator-aware kernels.
	GPU *gpu.Device

	// Console is the terminal backing fds 0-2 of every process.
	Console *fs.Console

	cfg     Config
	vmCfg   vmm.Config
	procs   map[int]*Process
	nextPID int
	wq      *sim.Queue[Task]

	// SysfsRoot is /sys/genesys, where subsystems register CtlFiles.
	SysfsRoot *fs.Dir

	workers     int // workers spawned
	idleWorkers int // workers blocked on an empty queue

	// workerProc maps a worker's sim process to its worker ID, so layers
	// running inside a worker (GENESYS batch processing) can attribute
	// their work to a trace-viewer thread.
	workerProc map[*sim.Proc]int

	// events, when attached and enabled, receives one span per executed
	// work-queue task (one trace-viewer thread per worker).
	events *obs.EventLog

	// busyWorkers, when attached, integrates how many workers are
	// executing a task at each virtual instant.
	busyWorkers *obs.UtilTrack

	// Inject, when active, feeds the kernel's injection points (worker
	// stalls here; irq drops and slot skips are consumed by the GENESYS
	// layer, which names them for this subsystem). Dispatch also reads it
	// for transient-errno injection.
	Inject *fault.Injector

	TasksRun sim.Counter
	Syscalls sim.Counter
	// Redispatches counts stalled tasks the detector handed to another
	// worker; OrphansReaped counts stalled originals that woke to find
	// their task already executed.
	Redispatches sim.Counter
	OrphansReaped sim.Counter
}

// New assembles a kernel over the given substrates and starts its worker
// pool. vmCfg parameterizes the address spaces of processes it creates.
func New(e *sim.Engine, c *cpu.CPU, v *fs.VFS, net *netstack.Stack,
	pool *vmm.Pool, vmCfg vmm.Config, cfg Config) *OS {
	if cfg.Workers <= 0 {
		panic("oskern: need at least one worker")
	}
	os := &OS{
		E:       e,
		CPU:     c,
		VFS:     v,
		Net:     net,
		Pool:    pool,
		cfg:     cfg,
		vmCfg:   vmCfg,
		procs:      make(map[int]*Process),
		nextPID:    1,
		wq:         sim.NewQueue[Task](e, "kernel-workqueue", 0),
		workerProc: make(map[*sim.Proc]int),
	}
	if os.cfg.MaxWorkers < os.cfg.Workers {
		os.cfg.MaxWorkers = os.cfg.Workers
	}
	os.setupNamespaces()
	for i := 0; i < cfg.Workers; i++ {
		os.spawnWorker()
	}
	return os
}

func (o *OS) spawnWorker() {
	id := o.workers
	o.workers++
	p := o.E.SpawnDaemon(fmt.Sprintf("kworker/%d", id), func(p *sim.Proc) {
		o.worker(p, id)
	})
	o.workerProc[p] = id
	o.events.NameThread(obs.PIDKernel, id, fmt.Sprintf("kworker/%d", id))
}

// WorkerID returns the pool index of the worker running as sim process
// p, or -1 when p is not a worker.
func (o *OS) WorkerID(p *sim.Proc) int {
	if id, ok := o.workerProc[p]; ok {
		return id
	}
	return -1
}

// Workers returns the current worker-pool size.
func (o *OS) Workers() int { return o.workers }

// IdleWorkers returns how many pool workers are blocked on an empty
// workqueue right now — the live-top view's busy/idle split.
func (o *OS) IdleWorkers() int { return o.idleWorkers }

// Config returns the kernel cost parameters.
func (o *OS) Config() Config { return o.cfg }

// setupNamespaces creates /dev, /proc and /sys.
func (o *OS) setupNamespaces() {
	dev, _ := o.VFS.MkdirAll("/dev", nil)
	o.Console = fs.NewConsole()
	dev.Add("console", o.Console)
	dev.Add("null", fs.NullDev{})
	dev.Add("zero", fs.ZeroDev{})

	proc, _ := o.VFS.MkdirAll("/proc", nil)
	proc.Add("meminfo", &fs.GenFile{Gen: func() []byte {
		ps := o.vmCfg.PageSize
		return []byte(fmt.Sprintf("MemTotal: %8d kB\nMemFree:  %8d kB\n",
			o.Pool.Total*ps/1024, o.Pool.Free()*ps/1024))
	}})

	sys, _ := o.VFS.MkdirAll("/sys/genesys", nil)
	o.SysfsRoot = sys
}

// AttachGPU registers the GPU so kernel services (e.g. getrusage with
// RUSAGE_GPU) can report accelerator usage.
func (o *OS) AttachGPU(d *gpu.Device) { o.GPU = d }

// SetEventLog attaches the machine's structured event log and labels the
// already-spawned worker threads in it.
func (o *OS) SetEventLog(l *obs.EventLog) {
	o.events = l
	for id := 0; id < o.workers; id++ {
		l.NameThread(obs.PIDKernel, id, fmt.Sprintf("kworker/%d", id))
	}
}

// SetUtil attaches the busy-worker occupancy track.
func (o *OS) SetUtil(busy *obs.UtilTrack) { o.busyWorkers = busy }

// SetInjector attaches the machine's fault injector.
func (o *OS) SetInjector(in *fault.Injector) { o.Inject = in }

func (o *OS) stallTimeout() sim.Time {
	if o.cfg.StallTimeout > 0 {
		return o.cfg.StallTimeout
	}
	return 750 * sim.Microsecond
}

// AddDevice registers a device node under /dev.
func (o *OS) AddDevice(name string, n fs.Node) {
	d, err := o.VFS.ResolveDir("/dev")
	if err != nil {
		panic("oskern: /dev missing")
	}
	d.Add(name, n)
}

// taskState tracks one picked task for the stall detector. The sim is
// cooperative, so claim's check-and-set is race-free: whichever of the
// original worker and the re-dispatch copy claims first runs the task,
// the other skips it — a task never executes twice.
type taskState struct {
	executed     bool
	redispatched bool
}

func (st *taskState) claim() bool {
	if st.executed {
		return false
	}
	st.executed = true
	return true
}

// watchTask arms the stall detector for a picked task: if the task has
// not started executing within StallTimeout (its worker is parked by an
// injected stall), a fresh copy is re-dispatched to the pool. Returns
// nil — arming nothing — when fault injection is inactive, keeping the
// default path free of timer events.
func (o *OS) watchTask(t Task) *taskState {
	if !o.Inject.Active() {
		return nil
	}
	st := &taskState{}
	o.E.CallAfter(o.stallTimeout(), func() {
		if st.executed || st.redispatched {
			return
		}
		st.redispatched = true
		o.Redispatches.Inc()
		o.Inject.NoteRecovered()
		o.Enqueue(Task{Name: t.Name + ":redispatch", Run: func(p *sim.Proc) {
			if st.claim() {
				t.Run(p)
			}
		}})
	})
	return st
}

// worker is one OS worker thread: it pulls tasks and runs them on a core
// at kernel priority.
func (o *OS) worker(p *sim.Proc, id int) {
	for {
		o.idleWorkers++
		t := o.wq.Get(p)
		o.idleWorkers--
		start := o.E.Now()
		st := o.watchTask(t)
		o.CPU.Exec(p, o.cfg.TaskDispatch, cpu.PrioKernel)
		if st != nil {
			if r, ok := o.Inject.Fire(fault.WorkerStall); ok {
				stall := sim.Time(r.Param)
				if stall <= 0 {
					stall = 2 * sim.Millisecond
				}
				p.Sleep(stall) // the worker is parked mid-dispatch
			}
			if !st.claim() {
				// The stall detector re-dispatched this task while we
				// were parked and the copy already ran it.
				o.OrphansReaped.Inc()
				continue
			}
		}
		o.TasksRun.Inc()
		o.busyWorkers.Add(o.E.Now(), 1)
		t.Run(p)
		o.busyWorkers.Add(o.E.Now(), -1)
		o.events.Span("kernel", t.Name, obs.PIDKernel, id, start, o.E.Now())
	}
}

// Enqueue adds a task to the kernel work-queue, growing the worker pool
// (up to MaxWorkers) when every existing worker is busy or blocked —
// the concurrency-managed-workqueue behaviour.
func (o *OS) Enqueue(t Task) {
	o.wq.TryPut(t) // unbounded queue: cannot fail
	if o.idleWorkers == 0 && o.workers < o.cfg.MaxWorkers {
		o.spawnWorker()
	}
}

// QueueDepth returns the number of tasks awaiting a worker.
func (o *OS) QueueDepth() int { return o.wq.Len() }

// Process is a CPU process: the context GPU system calls borrow.
type Process struct {
	PID  int
	Name string
	FDs  *fs.FDTable
	MM   *vmm.AddressSpace
	Sig  *sig.State
	// CWD is the working directory chdir(2) manipulates.
	CWD string

	os *OS
}

// NewProcess creates a process with stdio wired to the console, a fresh
// address space over the machine pool, and empty signal state.
func (o *OS) NewProcess(name string) *Process {
	pr := &Process{
		PID:  o.nextPID,
		Name: name,
		FDs:  fs.NewFDTable(o.cfg.FDLimit),
		MM:   vmm.New(o.E, o.vmCfg, o.Pool),
		Sig:  sig.NewState(o.E),
		CWD:  "/",
		os:   o,
	}
	o.nextPID++
	o.procs[pr.PID] = pr

	for fd := 0; fd <= 2; fd++ {
		_ = pr.FDs.InstallAt(fd, fs.NewFile(o.Console, fs.O_RDWR, "/dev/console"))
	}

	procDir, _ := o.VFS.MkdirAll(fmt.Sprintf("/proc/%d", pr.PID), nil)
	procDir.Add("status", &fs.GenFile{Gen: func() []byte {
		return []byte(fmt.Sprintf("Name:\t%s\nPid:\t%d\nVmRSS:\t%d kB\nVmHWM:\t%d kB\n",
			pr.Name, pr.PID, pr.MM.RSSBytes()/1024, pr.MM.MaxRSSBytes()/1024))
	}})
	return pr
}

// Lookup returns the process with the given PID.
func (o *OS) Lookup(pid int) (*Process, bool) {
	pr, ok := o.procs[pid]
	return pr, ok
}

// OS returns the kernel the process belongs to.
func (pr *Process) OS() *OS { return pr.os }

// SwitchTo charges the cost of switching a worker thread into this
// process's context (§VI: "switches to the context of the original CPU
// program that invoked the GPU kernel").
func (pr *Process) SwitchTo(p *sim.Proc) {
	p.Sleep(pr.os.cfg.ContextSwitch)
}

// Spawn starts a thread of this process as a simulation process.
func (pr *Process) Spawn(name string, fn func(p *sim.Proc)) *sim.Proc {
	return pr.os.E.Spawn(fmt.Sprintf("%s[%d]/%s", pr.Name, pr.PID, name), fn)
}
