// Package mem models the shared memory system of the simulated APU: a
// single DRAM controller shared by CPU and GPU, the GPU's coherent L2
// cache (capacity model), and the per-operation costs of the GPU atomic
// instructions GENESYS relies on to access the syscall area.
//
// Two properties of the paper's platform matter here:
//
//  1. GPU atomics bypass the non-coherent L1 and are serviced at the L2,
//     making them far costlier than plain loads (Table IV), and
//  2. when the set of memory locations the GPU polls exceeds the L2's
//     capacity, polling traffic spills to DRAM and contends with CPU
//     accesses on the shared controller (Figure 9).
package mem

import "genesys/internal/sim"

// Op identifies a GPU memory operation whose cost is profiled in Table IV.
type Op int

const (
	// OpLoad is a plain (L1-served) vector load.
	OpLoad Op = iota
	// OpAtomicLoad is an atomic load, forced to the L2.
	OpAtomicLoad
	// OpSwap is an atomic exchange at the L2.
	OpSwap
	// OpCmpSwap is an atomic compare-and-swap at the L2.
	OpCmpSwap
)

func (o Op) String() string {
	switch o {
	case OpLoad:
		return "load"
	case OpAtomicLoad:
		return "atomic-load"
	case OpSwap:
		return "swap"
	case OpCmpSwap:
		return "cmp-swap"
	}
	return "unknown-op"
}

// Config holds the memory-system parameters. The defaults (see
// DefaultConfig) approximate the FX-9800P platform of Table III.
type Config struct {
	LineSize int64 // cache-line size in bytes

	// GPU L2: capacity in lines and hit latency.
	L2Lines   int
	L2HitTime sim.Time

	// Plain load served by the GPU L1.
	L1HitTime sim.Time

	// Atomic operation latencies (always at least an L2 round trip).
	AtomicLoadTime sim.Time
	SwapTime       sim.Time
	CmpSwapTime    sim.Time

	// Store of one line into the (write-through to L2) syscall area.
	LineWriteTime sim.Time

	// L2AtomicService is the L2 atomic unit's per-operation occupancy:
	// concurrent GPU atomics serialize on it, so heavy polling slows
	// every other syscall-area access (one reason WI-granularity polling
	// loses to halt-resume, §V-C).
	L2AtomicService sim.Time

	// DRAM controller shared between CPU and GPU.
	DRAMAccessTime  sim.Time // fixed latency component per access
	DRAMServiceTime sim.Time // minimum controller occupancy per access
	DRAMBandwidth   float64  // bytes per nanosecond of controller occupancy
}

// DefaultConfig returns parameters approximating the paper's platform:
// 64 B lines, a 256 KiB GPU L2 (4096 lines — the Fig 9 knee), dual-channel
// DDR4 at ~12.8 GB/s, and Table IV-magnitude atomic costs.
func DefaultConfig() Config {
	return Config{
		LineSize:        64,
		L2Lines:         4096,
		L2HitTime:       200 * sim.Nanosecond,
		L1HitTime:       80 * sim.Nanosecond, // Table IV "load": 0.08 us
		AtomicLoadTime:  sim.Micros(1.4),
		SwapTime:        sim.Micros(1.9),
		CmpSwapTime:     sim.Micros(2.1),
		LineWriteTime:   250 * sim.Nanosecond,
		L2AtomicService: 10 * sim.Nanosecond,
		DRAMAccessTime:  60 * sim.Nanosecond,
		DRAMServiceTime: 15 * sim.Nanosecond,
		DRAMBandwidth:   12.8, // bytes/ns = GB/s
	}
}

// System is the shared memory system.
type System struct {
	e   *sim.Engine
	cfg Config

	ctrlFree     sim.Time // next instant the DRAM controller is free
	l2AtomicFree sim.Time // next instant the L2 atomic unit is free

	// PolledLines is the number of distinct cache lines the GPU is
	// currently polling; it determines whether poll loads hit in the L2.
	// The GENESYS layer and microbenchmarks update it as pollers come and
	// go.
	polledLines int

	DRAMAccesses sim.Counter
	L2Hits       sim.Counter
	L2Misses     sim.Counter
	AtomicOps    sim.Counter
}

// New returns a memory system bound to e.
func New(e *sim.Engine, cfg Config) *System {
	if cfg.LineSize <= 0 || cfg.DRAMBandwidth <= 0 {
		panic("mem: invalid config")
	}
	return &System{e: e, cfg: cfg}
}

// Config returns the system's configuration.
func (m *System) Config() Config { return m.cfg }

// OpTime returns the base latency of op, not counting DRAM spill.
func (m *System) OpTime(op Op) sim.Time {
	switch op {
	case OpLoad:
		return m.cfg.L1HitTime
	case OpAtomicLoad:
		return m.cfg.AtomicLoadTime
	case OpSwap:
		return m.cfg.SwapTime
	case OpCmpSwap:
		return m.cfg.CmpSwapTime
	}
	panic("mem: unknown op")
}

// dramStart reserves one DRAM controller access transferring n bytes at
// the current instant and returns the delay until it completes (queueing,
// occupancy and fixed latency).
func (m *System) dramStart(n int64) sim.Time {
	now := m.e.Now()
	start := now
	if m.ctrlFree > start {
		start = m.ctrlFree
	}
	occupancy := sim.Time(float64(n) / m.cfg.DRAMBandwidth)
	if occupancy < m.cfg.DRAMServiceTime {
		occupancy = m.cfg.DRAMServiceTime
	}
	if occupancy < 1 {
		occupancy = 1
	}
	m.ctrlFree = start + occupancy
	m.DRAMAccesses.Inc()
	return start + occupancy + m.cfg.DRAMAccessTime - now
}

// dram charges one DRAM controller access transferring n bytes; the
// calling process waits for queueing delay, occupancy and fixed latency.
func (m *System) dram(p *sim.Proc, n int64) {
	p.Sleep(m.dramStart(n))
}

// CPUAccess performs one uncached CPU access of a single line, through
// the shared controller. Used by the Figure 9 probe.
func (m *System) CPUAccess(p *sim.Proc) {
	m.dram(p, m.cfg.LineSize)
}

// Copy charges the cost of moving n bytes through the memory system
// (e.g. a tmpfs read's memcpy, or filling a syscall buffer). Large copies
// occupy the controller proportionally, creating contention.
func (m *System) Copy(p *sim.Proc, n int64) {
	if n <= 0 {
		return
	}
	m.dram(p, n)
}

// GPUAtomic performs one GPU atomic operation against a working set of
// workingSetLines distinct lines. If the working set exceeds the L2
// capacity the access may miss and additionally occupy DRAM — the
// mechanism behind Figure 9's contention knee.
func (m *System) GPUAtomic(p *sim.Proc, op Op, workingSetLines int) {
	m.AtomicOps.Inc()
	// Serialize on the L2 atomic unit before paying the op latency.
	now := m.e.Now()
	start := now
	if m.l2AtomicFree > start {
		start = m.l2AtomicFree
	}
	m.l2AtomicFree = start + m.cfg.L2AtomicService
	p.Sleep(start - now + m.OpTime(op))
	if m.l2Miss(workingSetLines) {
		m.L2Misses.Inc()
		m.dram(p, m.cfg.LineSize)
	} else {
		m.L2Hits.Inc()
	}
}

// GPULoad performs a plain GPU load against a working set of
// workingSetLines distinct lines (0 = always hits).
func (m *System) GPULoad(p *sim.Proc, workingSetLines int) {
	p.Sleep(m.cfg.L1HitTime)
	if m.l2Miss(workingSetLines) {
		m.L2Misses.Inc()
		m.dram(p, m.cfg.LineSize)
	} else {
		m.L2Hits.Inc()
	}
}

// GPUWriteLine charges the cost of storing one line (e.g. populating a
// syscall-area slot).
func (m *System) GPUWriteLine(p *sim.Proc) {
	p.Sleep(m.cfg.LineWriteTime)
}

// l2Miss decides hit/miss for an access within a working set of ws lines.
// The model is capacity-only: the hit ratio is L2Lines/ws, decided with
// the engine's deterministic random source.
func (m *System) l2Miss(ws int) bool {
	if ws <= m.cfg.L2Lines {
		return false
	}
	hitProb := float64(m.cfg.L2Lines) / float64(ws)
	return m.e.Rand.Float64() >= hitProb
}

// AddPolledLines registers n more (or with negative n, fewer) cache lines
// as being concurrently polled by the GPU and returns the new total.
func (m *System) AddPolledLines(n int) int {
	m.polledLines += n
	if m.polledLines < 0 {
		m.polledLines = 0
	}
	return m.polledLines
}

// PolledLines returns the number of lines currently polled.
func (m *System) PolledLines() int { return m.polledLines }

// PollLoad performs one GPU polling load whose working set is the current
// number of polled lines.
func (m *System) PollLoad(p *sim.Proc) {
	p.Sleep(m.PollLoadStart())
	p.Sleep(m.PollLoadFinish())
}

// PollLoadStart / PollLoadFinish are the two phases of PollLoad split
// for callback-driven pollers (the engine-loop poll wait in core): Start
// reserves the L2 atomic unit at the current instant and returns the
// delay until the load completes; Finish, called at that later instant,
// settles the hit/miss outcome and returns any extra DRAM spill delay
// (zero on a hit). Running Start at t, Finish at t+Start's delay, and
// continuing after Finish's delay performs exactly the state mutations,
// counter increments and random draws of PollLoad at exactly the same
// instants.
func (m *System) PollLoadStart() sim.Time {
	m.AtomicOps.Inc()
	now := m.e.Now()
	start := now
	if m.l2AtomicFree > start {
		start = m.l2AtomicFree
	}
	m.l2AtomicFree = start + m.cfg.L2AtomicService
	return start - now + m.OpTime(OpAtomicLoad)
}

func (m *System) PollLoadFinish() sim.Time {
	if m.l2Miss(m.polledLines) {
		m.L2Misses.Inc()
		return m.dramStart(m.cfg.LineSize)
	}
	m.L2Hits.Inc()
	return 0
}
