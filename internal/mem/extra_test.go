package mem

import (
	"testing"

	"genesys/internal/sim"
)

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpLoad: "load", OpAtomicLoad: "atomic-load",
		OpSwap: "swap", OpCmpSwap: "cmp-swap", Op(99): "unknown-op",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Fatalf("%d.String() = %q", int(op), op.String())
		}
	}
}

func TestWriteLinePollLoadAndAccessors(t *testing.T) {
	e, m := newSys(1)
	var elapsed sim.Time
	e.Spawn("gpu", func(p *sim.Proc) {
		start := p.Now()
		m.GPUWriteLine(p)
		elapsed = p.Now() - start
		m.AddPolledLines(64)
		if m.PolledLines() != 64 {
			t.Error("polled lines accessor")
		}
		m.PollLoad(p) // small working set: pure atomic-load cost
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != m.Config().LineWriteTime {
		t.Fatalf("write line = %v", elapsed)
	}
	if m.AtomicOps.Value() != 1 {
		t.Fatalf("atomics = %d", m.AtomicOps.Value())
	}
}

func TestCopyZeroAndInvalidConfig(t *testing.T) {
	e, m := newSys(1)
	e.Spawn("p", func(p *sim.Proc) {
		before := p.Now()
		m.Copy(p, 0) // no-op
		if p.Now() != before {
			t.Error("zero copy cost time")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(e, Config{})
}

func TestOpTimePanicsOnUnknown(t *testing.T) {
	_, m := newSys(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	m.OpTime(Op(42))
}
