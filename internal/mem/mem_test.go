package mem

import (
	"testing"
	"testing/quick"

	"genesys/internal/sim"
)

func newSys(seed int64) (*sim.Engine, *System) {
	e := sim.NewEngine(seed)
	return e, New(e, DefaultConfig())
}

func TestOpLatencyOrdering(t *testing.T) {
	_, m := newSys(1)
	// Table IV: cmp-swap > swap > atomic-load >> load.
	if !(m.OpTime(OpCmpSwap) > m.OpTime(OpSwap) &&
		m.OpTime(OpSwap) > m.OpTime(OpAtomicLoad) &&
		m.OpTime(OpAtomicLoad) > 10*m.OpTime(OpLoad)) {
		t.Fatalf("latency ordering violated: cmp-swap=%v swap=%v atomic-load=%v load=%v",
			m.OpTime(OpCmpSwap), m.OpTime(OpSwap), m.OpTime(OpAtomicLoad), m.OpTime(OpLoad))
	}
}

func TestGPUAtomicCost(t *testing.T) {
	e, m := newSys(1)
	var elapsed sim.Time
	e.Spawn("gpu", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 100; i++ {
			m.GPUAtomic(p, OpCmpSwap, 0) // small working set: all L2 hits
		}
		elapsed = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := 100 * m.OpTime(OpCmpSwap)
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if m.L2Misses.Value() != 0 {
		t.Fatalf("unexpected L2 misses: %d", m.L2Misses.Value())
	}
}

func TestL2CapacityKnee(t *testing.T) {
	// Working sets within L2 capacity never miss; beyond it, misses occur
	// in proportion to the overflow.
	e, m := newSys(7)
	e.Spawn("gpu", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			m.GPULoad(p, m.Config().L2Lines) // exactly capacity: all hits
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.L2Misses.Value() != 0 {
		t.Fatalf("misses within capacity: %d", m.L2Misses.Value())
	}

	e2, m2 := newSys(7)
	e2.Spawn("gpu", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			m2.GPULoad(p, 4*m2.Config().L2Lines) // 4x capacity: ~75% miss
		}
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	missRate := float64(m2.L2Misses.Value()) / 500
	if missRate < 0.6 || missRate > 0.9 {
		t.Fatalf("miss rate at 4x capacity = %.2f, want ~0.75", missRate)
	}
}

func TestDRAMContention(t *testing.T) {
	// The controller has a finite service rate: aggregate throughput of
	// many concurrent streams saturates well below linear scaling.
	measure := func(nProcs int) float64 {
		e, m := newSys(3)
		const accessesPer = 2000
		for i := 0; i < nProcs; i++ {
			e.Spawn("probe", func(p *sim.Proc) {
				for j := 0; j < accessesPer; j++ {
					m.CPUAccess(p)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(nProcs*accessesPer) / e.Now().Seconds()
	}
	solo := measure(1)
	agg16 := measure(16)
	ceiling := 1 / sim.Time(DefaultConfig().DRAMServiceTime).Seconds()
	if agg16 > ceiling*1.05 {
		t.Fatalf("aggregate throughput %0.f exceeds controller ceiling %.0f", agg16, ceiling)
	}
	if agg16 > 12*solo {
		t.Fatalf("16 streams scale ~linearly (solo=%.0f agg16=%.0f): no contention", solo, agg16)
	}
}

func TestPolledLinesRegistry(t *testing.T) {
	_, m := newSys(1)
	if got := m.AddPolledLines(100); got != 100 {
		t.Fatalf("AddPolledLines = %d", got)
	}
	if got := m.AddPolledLines(-150); got != 0 {
		t.Fatalf("negative clamp = %d", got)
	}
}

func TestCopyOccupiesController(t *testing.T) {
	e, m := newSys(1)
	var t1, t2 sim.Time
	e.Spawn("copier", func(p *sim.Proc) {
		m.Copy(p, 1<<20) // 1 MiB at 12.8 B/ns ≈ 82 us
		t1 = p.Now()
	})
	e.Spawn("victim", func(p *sim.Proc) {
		p.Sleep(1) // start just after the copier
		m.CPUAccess(p)
		t2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if t2 <= t1-m.Config().DRAMAccessTime {
		t.Fatalf("victim access (t=%v) did not queue behind 1MiB copy (t=%v)", t2, t1)
	}
}

// Property: miss decisions never occur for working sets at or below L2
// capacity, for any working-set size and seed.
func TestNoMissWithinCapacityProperty(t *testing.T) {
	f := func(seed int64, ws uint16) bool {
		e, m := newSys(seed)
		capped := int(ws)
		if capped > m.Config().L2Lines {
			capped = m.Config().L2Lines
		}
		ok := true
		e.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				m.GPULoad(p, capped)
			}
			ok = m.L2Misses.Value() == 0
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
