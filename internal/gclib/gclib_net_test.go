package gclib_test

import (
	"testing"

	"genesys/internal/errno"
	"genesys/internal/gclib"
	"genesys/internal/gpu"
	"genesys/internal/sim"
)

// A GPU work-group runs a stream server — listen, poll for the pending
// connection, accept, poll for data, echo — against a CPU-side client.
func TestStreamAndPollWrappers(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	var clientGot string
	m.E.Spawn("client", func(p *sim.Proc) {
		p.Sleep(200 * sim.Microsecond) // let the GPU server come up
		ck := m.Net.NewStreamSocket()
		if err := ck.Connect(p, 5050); err != nil {
			t.Errorf("client connect: %v", err)
			return
		}
		if _, err := ck.Send(p, []byte("fleet-req")); err != nil {
			t.Errorf("client send: %v", err)
			return
		}
		buf := make([]byte, 64)
		n, err := ck.Recv(p, buf)
		if err != nil {
			t.Errorf("client recv: %v", err)
			return
		}
		clientGot = string(buf[:n])
		ck.Close()
	})
	runKernel(t, m, 1, 64, func(w *gpu.Wavefront) {
		lfd, err := c.StreamSocket(w)
		if err != errno.OK {
			t.Errorf("stream socket: %v", err)
			return
		}
		if err := c.Bind(w, lfd, 5050); err != errno.OK {
			t.Errorf("bind: %v", err)
			return
		}
		if err := c.Listen(w, lfd, 8); err != errno.OK {
			t.Errorf("listen: %v", err)
			return
		}
		// Multiplex the listener via poll instead of blocking in accept.
		ready, perr := c.Poll(w, []int{lfd}, gclib.PollForever)
		if perr != errno.OK || len(ready) != 1 {
			t.Errorf("poll for accept = %v %v", ready, perr)
			return
		}
		cfd, rport, aerr := c.Accept(w, lfd, 0)
		if aerr != errno.OK || rport == 0 {
			t.Errorf("accept: %v rport=%d", aerr, rport)
			return
		}
		ready, perr = c.Poll(w, []int{lfd, cfd}, gclib.PollForever)
		if perr != errno.OK || len(ready) != 1 || ready[0] != 1 {
			t.Errorf("poll for data = %v %v", ready, perr)
			return
		}
		buf := make([]byte, 64)
		n, rerr := c.Recv(w, cfd, buf, 0)
		if rerr != errno.OK {
			t.Errorf("recv: %v", rerr)
			return
		}
		if _, serr := c.Send(w, cfd, append([]byte("ok:"), buf[:n]...)); serr != errno.OK {
			t.Errorf("send: %v", serr)
		}
		c.Close(w, cfd)
		c.Close(w, lfd)
	})
	if clientGot != "ok:fleet-req" {
		t.Fatalf("client got %q", clientGot)
	}
}

// Poll with a finite timeout returns an empty ready set at the deadline.
func TestPollWrapperTimeout(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	runKernel(t, m, 1, 64, func(w *gpu.Wavefront) {
		fd, err := c.Socket(w)
		if err != errno.OK {
			t.Errorf("socket: %v", err)
			return
		}
		if err := c.Bind(w, fd, 6100); err != errno.OK {
			t.Errorf("bind: %v", err)
			return
		}
		ready, perr := c.Poll(w, []int{fd}, 50*sim.Microsecond)
		if perr != errno.OK || len(ready) != 0 {
			t.Errorf("timed poll = %v %v, want empty set", ready, perr)
		}
		c.Close(w, fd)
	})
}
