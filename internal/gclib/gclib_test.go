package gclib_test

import (
	"fmt"
	"strings"
	"testing"

	"genesys/internal/core"
	"genesys/internal/errno"
	"genesys/internal/gclib"
	"genesys/internal/gpu"
	"genesys/internal/platform"
	"genesys/internal/sim"
)

func newM(t *testing.T) *platform.Machine {
	t.Helper()
	m := platform.New(platform.DefaultConfig())
	t.Cleanup(m.Shutdown)
	m.NewProcess("app")
	return m
}

// runKernel launches fn as a single work-group of the given size and
// waits for it, draining outstanding calls.
func runKernel(t *testing.T, m *platform.Machine, wgs, wgSize int, fn func(w *gpu.Wavefront)) {
	t.Helper()
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{Name: "t", WorkGroups: wgs, WGSize: wgSize, Fn: fn})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	var readBack string
	runKernel(t, m, 1, 256, func(w *gpu.Wavefront) {
		fd, err := c.Open(w, "/tmp/f", 0x42 /* O_CREAT|O_RDWR */)
		if err != errno.OK {
			t.Errorf("open: %v", err)
			return
		}
		if n, err := c.Write(w, fd, []byte("written from the gpu")); n != 20 || err != errno.OK {
			t.Errorf("write: %d %v", n, err)
		}
		if pos, err := c.Lseek(w, fd, 0, 0); pos != 0 || err != errno.OK {
			t.Errorf("lseek: %d %v", pos, err)
		}
		buf := make([]byte, 32)
		n, err := c.Read(w, fd, buf)
		if err != errno.OK {
			t.Errorf("read: %v", err)
		}
		if w.IsLeader() {
			readBack = string(buf[:n])
		}
		if size, isDir, err := c.Stat(w, "/tmp/f"); size != 20 || isDir || err != errno.OK {
			t.Errorf("stat: %d %v %v", size, isDir, err)
		}
		if err := c.Close(w, fd); err != errno.OK {
			t.Errorf("close: %v", err)
		}
	})
	if readBack != "written from the gpu" {
		t.Fatalf("read back %q", readBack)
	}
}

func TestResultVisibleToAllWavefronts(t *testing.T) {
	// The collective wrappers publish the leader's result to every
	// wavefront of the group (4 wavefronts here).
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	fds := map[int]int{}
	runKernel(t, m, 1, 256, func(w *gpu.Wavefront) {
		fd, err := c.Open(w, "/tmp/shared", 0x42)
		if err != errno.OK {
			t.Errorf("open: %v", err)
		}
		fds[w.ID] = fd
	})
	if len(fds) != 4 {
		t.Fatalf("wavefronts seen: %d", len(fds))
	}
	for id, fd := range fds {
		if fd != fds[0] {
			t.Fatalf("wavefront %d saw fd %d, leader saw %d", id, fd, fds[0])
		}
	}
}

func TestSkewedWavefrontsStillAgree(t *testing.T) {
	// A non-leader wavefront computing past the leader's syscall must
	// still observe the correct result at the wrapper's barrier.
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	results := map[int]int{}
	runKernel(t, m, 1, 256, func(w *gpu.Wavefront) {
		if w.ID == 3 {
			w.ComputeTime(5 * sim.Millisecond) // way past the syscall latency
		}
		pid, err := c.GetPID(w)
		if err != errno.OK {
			t.Errorf("getpid: %v", err)
		}
		results[w.ID] = pid
	})
	for id, pid := range results {
		if pid != 1 {
			t.Fatalf("wavefront %d saw pid %d", id, pid)
		}
	}
}

func TestTerminalAndDirOps(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	for _, name := range []string{"x.txt", "y.txt"} {
		if err := m.WriteFile("/tmp/"+name, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	var listed []string
	runKernel(t, m, 1, 64, func(w *gpu.Wavefront) {
		names, err := c.Getdents(w, "/tmp")
		if err != errno.OK {
			t.Errorf("getdents: %v", err)
		}
		if w.IsLeader() {
			listed = names
		}
		c.Printf(w, "saw %d entries\n", len(names))
		if err := c.Unlink(w, "/tmp/y.txt"); err != errno.OK {
			t.Errorf("unlink: %v", err)
		}
		names2, _ := c.Getdents(w, "/tmp")
		if len(names2) != len(names)-1 {
			t.Errorf("after unlink: %v", names2)
		}
	})
	if fmt.Sprint(listed) != "[x.txt y.txt]" {
		t.Fatalf("listed = %v", listed)
	}
	if !strings.Contains(m.OS.Console.Contents(), "saw 2 entries") {
		t.Fatalf("console = %q", m.OS.Console.Contents())
	}
}

func TestMemoryAndUsage(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	pr := m.Genesys.Process()
	runKernel(t, m, 1, 64, func(w *gpu.Wavefront) {
		addr, err := c.Mmap(w, 1<<20)
		if err != errno.OK {
			t.Errorf("mmap: %v", err)
			return
		}
		if w.IsLeader() {
			if terr := pr.MM.Touch(w.P, addr, 1<<20, true); terr != nil {
				t.Errorf("touch: %v", terr)
			}
		}
		w.Barrier()
		u, err := c.Getrusage(w)
		if err != errno.OK || u.RSSBytes != 1<<20 {
			t.Errorf("getrusage: %+v %v", u, err)
		}
		c.MadviseDontneed(w, addr, 1<<20)
	})
	if pr.MM.RSSBytes() != 0 {
		t.Fatalf("rss after madvise = %d", pr.MM.RSSBytes())
	}
}

func TestNetworkingWrappers(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	// A CPU-side echo peer.
	peer := m.Net.NewSocket()
	if err := peer.Bind(4242); err != nil {
		t.Fatal(err)
	}
	m.E.SpawnDaemon("peer", func(p *sim.Proc) {
		for {
			dg, err := peer.RecvFrom(p)
			if err != nil {
				return
			}
			peer.SendTo(dg.SrcPort, append([]byte("echo:"), dg.Data...))
		}
	})
	var reply string
	runKernel(t, m, 1, 64, func(w *gpu.Wavefront) {
		fd, err := c.Socket(w)
		if err != errno.OK {
			t.Errorf("socket: %v", err)
			return
		}
		if err := c.Bind(w, fd, 0); err != errno.OK {
			t.Errorf("bind: %v", err)
		}
		if _, err := c.SendTo(w, fd, []byte("ping"), 4242); err != errno.OK {
			t.Errorf("sendto: %v", err)
		}
		buf := make([]byte, 32)
		n, src, err := c.RecvFrom(w, fd, buf)
		if err != errno.OK || src != 4242 {
			t.Errorf("recvfrom: %v src=%d", err, src)
		}
		if w.IsLeader() {
			reply = string(buf[:n])
		}
		c.Close(w, fd)
	})
	if reply != "echo:ping" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestClockAndSleep(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	var t0, t1 int64
	runKernel(t, m, 1, 64, func(w *gpu.Wavefront) {
		var err errno.Errno
		t0, err = c.ClockGettime(w)
		if err != errno.OK {
			t.Errorf("clock: %v", err)
		}
		if err := c.Nanosleep(w, int64(2*sim.Millisecond)); err != errno.OK {
			t.Errorf("nanosleep: %v", err)
		}
		t1, _ = c.ClockGettime(w)
	})
	if t1-t0 < int64(2*sim.Millisecond) {
		t.Fatalf("slept %d ns", t1-t0)
	}
}

func TestWavefrontLocalPrint(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys, Wait: core.WaitHaltResume}
	runKernel(t, m, 1, 256, func(w *gpu.Wavefront) {
		// Only wavefront 2 reports, with no group synchronization.
		if w.ID == 2 {
			if err := c.PrintWF(w, "wavefront 2 reporting\n"); err != errno.OK {
				t.Errorf("printWF: %v", err)
			}
		}
	})
	if m.OS.Console.Contents() != "wavefront 2 reporting\n" {
		t.Fatalf("console = %q", m.OS.Console.Contents())
	}
}

func TestIoctlWrapper(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	var x, y uint32
	runKernel(t, m, 1, 64, func(w *gpu.Wavefront) {
		fd, err := c.Open(w, "/dev/fb0", 0x2)
		if err != errno.OK {
			t.Errorf("open fb0: %v", err)
			return
		}
		arg := make([]byte, 12)
		if _, err := c.Ioctl(w, fd, 0x4600, arg); err != errno.OK {
			t.Errorf("ioctl: %v", err)
		}
		if w.IsLeader() {
			x = uint32(arg[0]) | uint32(arg[1])<<8
			y = uint32(arg[4]) | uint32(arg[5])<<8
		}
		addr, err := c.MmapDevice(w, fd)
		if err != errno.OK || addr == 0 {
			t.Errorf("mmap device: %v %d", err, addr)
		}
		c.Close(w, fd)
	})
	if x != 1024 || y != 768 {
		t.Fatalf("mode = %dx%d", x, y)
	}
}

func TestDirectoryWrappers(t *testing.T) {
	m := newM(t)
	c := gclib.C{G: m.Genesys}
	runKernel(t, m, 1, 64, func(w *gpu.Wavefront) {
		if err := c.Mkdir(w, "/tmp/made"); err != errno.OK {
			t.Errorf("mkdir: %v", err)
		}
		if err := c.Access(w, "/tmp/made"); err != errno.OK {
			t.Errorf("access: %v", err)
		}
		if err := c.Chdir(w, "/tmp/made"); err != errno.OK {
			t.Errorf("chdir: %v", err)
		}
		cwd, err := c.Getcwd(w)
		if err != errno.OK || cwd != "/tmp/made" {
			t.Errorf("getcwd = %q, %v", cwd, err)
		}
		// Relative create via the GPU's working directory.
		fd, oerr := c.Open(w, "inside.txt", 0x42)
		if oerr != errno.OK {
			t.Errorf("relative open: %v", oerr)
		}
		c.Close(w, fd)
		if err := c.Rename(w, "/tmp/made/inside.txt", "/tmp/made/renamed.txt"); err != errno.OK {
			t.Errorf("rename: %v", err)
		}
		if err := c.Unlink(w, "/tmp/made/renamed.txt"); err != errno.OK {
			t.Errorf("unlink: %v", err)
		}
		if err := c.Chdir(w, "/"); err != errno.OK {
			t.Errorf("chdir /: %v", err)
		}
		if err := c.Rmdir(w, "/tmp/made"); err != errno.OK {
			t.Errorf("rmdir: %v", err)
		}
	})
	if _, err := m.VFS.Resolve("/tmp/made"); err == nil {
		t.Fatal("directory survived rmdir")
	}
}
