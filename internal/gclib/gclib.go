// Package gclib is the GPU-side POSIX wrapper library: typed, C-library-
// style functions over the raw GENESYS slot interface, playing the role
// of the device library the paper adds to the HCC compiler ("we modified
// the HCC compiler to permit GPU system call invocations", §VI).
//
// Wrappers come in two flavors:
//
//   - work-group collective (the default): every wavefront of the
//     work-group calls the wrapper; wavefront 0 invokes the system call
//     and the result is published to the whole group through work-group
//     shared memory under the ordering's barriers. All blocking
//     collective wrappers use relaxed producer ordering (result needed →
//     post-call barrier), matching the paper's best-performing
//     configurations.
//   - wavefront-local (the *WF suffix): the calling wavefront invokes
//     alone with no group synchronization — the building block for
//     work-item-style patterns such as grep's immediate match report.
package gclib

import (
	"fmt"

	"genesys/internal/core"
	"genesys/internal/errno"
	"genesys/internal/gpu"
	"genesys/internal/netstack"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
	"genesys/internal/vmm"
)

// C binds the wrapper library to a machine's GENESYS instance. The zero
// Wait mode is polling; set Wait to core.WaitHaltResume to halt instead.
type C struct {
	G    *core.Genesys
	Wait core.WaitMode

	// MaxRestarts bounds the library's SA_RESTART-style retry loop: a
	// blocking call that returns a transient errno (EINTR/EAGAIN/ENOMEM)
	// is reissued after a capped exponential backoff, provided the call is
	// restartable (syscalls.Restartable) and fault injection is active on
	// the machine — organic transient errnos (e.g. miniAMR's deliberate
	// mmap-until-ENOMEM) are never retried, keeping baselines untouched.
	// 0 selects the default (8); negative disables restarting.
	MaxRestarts int
}

const (
	defaultMaxRestarts  = 8
	restartBackoffBase  = 4 * sim.Microsecond
	restartBackoffLimit = 256 * sim.Microsecond
)

func (c C) maxRestarts() int {
	if c.MaxRestarts < 0 {
		return 0
	}
	if c.MaxRestarts == 0 {
		return defaultMaxRestarts
	}
	return c.MaxRestarts
}

func transientErr(e errno.Errno) bool {
	return e == errno.EINTR || e == errno.EAGAIN || e == errno.ENOMEM
}

// invoke issues one blocking call through the restartable-syscall layer:
// transient failures of restartable calls are reissued with exponential
// backoff in virtual time, up to MaxRestarts, while fault injection is
// active. The last result — success or the surfaced errno — is returned.
func (c C) invoke(w *gpu.Wavefront, req syscalls.Request) core.Result {
	res := c.G.Invoke(w, req, core.Options{Blocking: true, Wait: c.Wait})
	if !c.G.FaultsActive() || !syscalls.Restartable(req.NR) || !transientErr(res.Err) {
		return res
	}
	if req.NR == syscalls.SYS_recvfrom && req.Args[2] > 0 {
		// A receive timeout suppresses restarting, as SO_RCVTIMEO does
		// under SA_RESTART: the caller's own resend logic must see EAGAIN.
		return res
	}
	backoff := restartBackoffBase
	for attempt := 0; attempt < c.maxRestarts(); attempt++ {
		c.G.Retries.Inc()
		w.P.Sleep(backoff)
		if backoff < restartBackoffLimit {
			backoff *= 2
		}
		res = c.G.Invoke(w, req, core.Options{Blocking: true, Wait: c.Wait})
		if !transientErr(res.Err) {
			c.G.Injector().NoteRecovered()
			return res
		}
	}
	c.G.Injector().NoteSurfaced()
	return res
}

// collect runs one blocking call at work-group granularity with relaxed
// producer ordering (leader invokes, post-call barrier — Figure 4 with
// Bar1 elided) and publishes the leader's result to every wavefront.
// Publication happens strictly before the barrier, so the result is
// visible to the whole group regardless of wavefront arrival order.
func (c C) collect(w *gpu.Wavefront, req syscalls.Request) core.Result {
	res, _ := c.collectBuf(w, req)
	return res
}

// wgCollect is the per-work-group publication state of the collective
// wrappers: a small ring of (result, leader-buffer) slots indexed by
// each wavefront's running call count. Wavefronts proceed in barrier
// lockstep, so a reader can lag the leader by at most one call and a
// four-slot ring can never be overwritten before it is read. One typed
// struct in shared memory replaces the old per-call fmt.Sprintf keys and
// the unbounded result entries they accumulated in the Shared map —
// measurable garbage at fleet syscall rates.
type wgCollect struct {
	seq map[int]int // per-wavefront running call index
	res [4]core.Result
	buf [4][]byte
}

// collectKey is the wgCollect entry's name in work-group shared memory.
const collectKey = "__gclib_collect"

// collectBuf is collect exposing the leader's request buffer, which in
// the modeled machine is shared virtual memory: wrappers whose reply
// arrives in the buffer copy it into each wavefront's local slice so Go
// callers see the same bytes a real work-group would.
func (c C) collectBuf(w *gpu.Wavefront, req syscalls.Request) (core.Result, []byte) {
	sh := w.WG.Shared
	cs, _ := sh[collectKey].(*wgCollect)
	if cs == nil {
		cs = &wgCollect{seq: make(map[int]int)}
		sh[collectKey] = cs
	}
	seq := cs.seq[w.ID]
	cs.seq[w.ID] = seq + 1
	slot := seq & 3

	if w.IsLeader() {
		cs.res[slot] = c.invoke(w, req)
		cs.buf[slot] = req.Buf
	}
	w.Barrier() // producer ordering's post-call barrier
	out := cs.res[slot]
	shared := cs.buf[slot]
	if req.Buf != nil && shared != nil && &req.Buf[0] != &shared[0] {
		copy(req.Buf, shared)
	}
	return out, shared
}

// fire issues a non-blocking consumer call from the group leader after a
// pre-call barrier.
func (c C) fire(w *gpu.Wavefront, req syscalls.Request) {
	c.G.InvokeWG(w, req, core.Options{
		Blocking: false, Ordering: core.Relaxed, Kind: core.Consumer,
	})
}

// --- filesystem -----------------------------------------------------------

// Open opens path for the work-group and returns the descriptor.
func (c C) Open(w *gpu.Wavefront, path string, flags int) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_open, Args: [6]uint64{uint64(flags)}, Buf: []byte(path),
	})
	return int(r.Ret), r.Err
}

// Close closes fd (blocking, so errors are observable).
func (c C) Close(w *gpu.Wavefront, fd int) errno.Errno {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_close, Args: [6]uint64{uint64(fd)},
	})
	return r.Err
}

// Read reads up to len(buf) bytes at the shared file offset.
func (c C) Read(w *gpu.Wavefront, fd int, buf []byte) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_read, Args: [6]uint64{uint64(fd), uint64(len(buf))}, Buf: buf,
	})
	return int(r.Ret), r.Err
}

// Pread reads at an absolute offset — safe at any invocation granularity
// because it carries no shared file-pointer state (§IV).
func (c C) Pread(w *gpu.Wavefront, fd int, buf []byte, off int64) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR:   syscalls.SYS_pread64,
		Args: [6]uint64{uint64(fd), uint64(len(buf)), uint64(off)},
		Buf:  buf,
	})
	return int(r.Ret), r.Err
}

// Write writes buf at the shared offset (blocking).
func (c C) Write(w *gpu.Wavefront, fd int, buf []byte) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_write, Args: [6]uint64{uint64(fd), uint64(len(buf))}, Buf: buf,
	})
	return int(r.Ret), r.Err
}

// Pwrite writes at an absolute offset (blocking).
func (c C) Pwrite(w *gpu.Wavefront, fd int, buf []byte, off int64) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR:   syscalls.SYS_pwrite64,
		Args: [6]uint64{uint64(fd), uint64(len(buf)), uint64(off)},
		Buf:  buf,
	})
	return int(r.Ret), r.Err
}

// PwriteAsync is the fire-and-forget pwrite (non-blocking, weak
// ordering): the work-group can retire while the CPU completes the
// write. Pair with Genesys.Drain on the host (§IX).
func (c C) PwriteAsync(w *gpu.Wavefront, fd int, buf []byte, off int64) {
	c.fire(w, syscalls.Request{
		NR:   syscalls.SYS_pwrite64,
		Args: [6]uint64{uint64(fd), uint64(len(buf)), uint64(off)},
		Buf:  buf,
	})
}

// Lseek repositions the shared file offset.
func (c C) Lseek(w *gpu.Wavefront, fd int, off int64, whence int) (int64, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_lseek, Args: [6]uint64{uint64(fd), uint64(off), uint64(whence)},
	})
	return r.Ret, r.Err
}

// Stat returns (size, isDir) for path.
func (c C) Stat(w *gpu.Wavefront, path string) (int64, bool, errno.Errno) {
	buf := make([]byte, syscalls.StatSize+len(path))
	copy(buf[syscalls.StatSize:], path)
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_stat, Buf: buf})
	if r.Err != errno.OK {
		return 0, false, r.Err
	}
	size, isDir, err := syscalls.DecodeStat(buf)
	return size, isDir, errno.Of(err)
}

// Getdents lists the entries of a directory.
func (c C) Getdents(w *gpu.Wavefront, path string) ([]string, errno.Errno) {
	buf := make([]byte, 4096)
	copy(buf, path)
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_getdents64, Buf: buf})
	if r.Err != errno.OK {
		return nil, r.Err
	}
	var names []string
	start := 0
	for i := 0; i < int(r.Ret); i++ {
		if buf[i] == '\n' {
			names = append(names, string(buf[start:i]))
			start = i + 1
		}
	}
	return names, errno.OK
}

// Unlink removes path.
func (c C) Unlink(w *gpu.Wavefront, path string) errno.Errno {
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_unlink, Buf: []byte(path)})
	return r.Err
}

// Mkdir creates a directory.
func (c C) Mkdir(w *gpu.Wavefront, path string) errno.Errno {
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_mkdir, Buf: []byte(path)})
	return r.Err
}

// Rmdir removes an empty directory.
func (c C) Rmdir(w *gpu.Wavefront, path string) errno.Errno {
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_rmdir, Buf: []byte(path)})
	return r.Err
}

// Rename moves oldPath to newPath.
func (c C) Rename(w *gpu.Wavefront, oldPath, newPath string) errno.Errno {
	buf := append(append([]byte(oldPath), 0), []byte(newPath)...)
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_rename, Buf: buf})
	return r.Err
}

// Chdir changes the borrowed process's working directory.
func (c C) Chdir(w *gpu.Wavefront, path string) errno.Errno {
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_chdir, Buf: []byte(path)})
	return r.Err
}

// Getcwd returns the working directory.
func (c C) Getcwd(w *gpu.Wavefront) (string, errno.Errno) {
	buf := make([]byte, 256)
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_getcwd, Buf: buf})
	if r.Err != errno.OK {
		return "", r.Err
	}
	return string(buf[:r.Ret]), errno.OK
}

// Access reports whether path exists.
func (c C) Access(w *gpu.Wavefront, path string) errno.Errno {
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_access, Buf: []byte(path)})
	return r.Err
}

// --- terminal -------------------------------------------------------------

// Print writes s to stdout (fd 1), blocking.
func (c C) Print(w *gpu.Wavefront, s string) errno.Errno {
	_, err := c.Write(w, 1, []byte(s))
	return err
}

// Printf formats and prints to stdout.
func (c C) Printf(w *gpu.Wavefront, format string, args ...any) errno.Errno {
	return c.Print(w, fmt.Sprintf(format, args...))
}

// --- memory management ------------------------------------------------------

// Mmap maps length bytes of anonymous memory.
func (c C) Mmap(w *gpu.Wavefront, length int64) (uint64, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR:   syscalls.SYS_mmap,
		Args: [6]uint64{0, uint64(length), 0, 0, ^uint64(0), 0},
	})
	return uint64(r.Ret), r.Err
}

// Munmap unmaps the region at addr.
func (c C) Munmap(w *gpu.Wavefront, addr uint64, length int64) errno.Errno {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_munmap, Args: [6]uint64{addr, uint64(length)},
	})
	return r.Err
}

// MadviseDontneed releases [addr, addr+length) back to the OS without
// waiting (the miniAMR pattern, §VIII-A).
func (c C) MadviseDontneed(w *gpu.Wavefront, addr uint64, length int64) {
	c.fire(w, syscalls.Request{
		NR:   syscalls.SYS_madvise,
		Args: [6]uint64{addr, uint64(length), vmm.MADV_DONTNEED},
	})
}

// Getrusage returns the borrowed process's resource usage.
func (c C) Getrusage(w *gpu.Wavefront) (vmm.Rusage, errno.Errno) {
	buf := make([]byte, syscalls.RusageSize)
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_getrusage, Buf: buf})
	if r.Err != errno.OK {
		return vmm.Rusage{}, r.Err
	}
	u, err := syscalls.DecodeRusage(buf)
	return u, errno.Of(err)
}

// GetrusageGPU returns the GPU's own resource usage via getrusage with
// RUSAGE_GPU — the accelerator-aware adaptation §IV suggests. The GPU
// querying its own usage from inside a kernel is the sort of
// introspection GENESYS makes possible.
func (c C) GetrusageGPU(w *gpu.Wavefront) (syscalls.GPURusage, errno.Errno) {
	buf := make([]byte, syscalls.GPURusageSize)
	r := c.collect(w, syscalls.Request{
		NR:   syscalls.SYS_getrusage,
		Args: [6]uint64{syscalls.RUSAGE_GPU},
		Buf:  buf,
	})
	if r.Err != errno.OK {
		return syscalls.GPURusage{}, r.Err
	}
	u, err := syscalls.DecodeGPURusage(buf)
	return u, errno.Of(err)
}

// --- signals ----------------------------------------------------------------

// SigQueue sends a queued signal with a payload to pid, without blocking
// (the signal-search pattern, §VIII-B).
func (c C) SigQueue(w *gpu.Wavefront, pid, signo int, value int64) {
	c.fire(w, syscalls.Request{
		NR:   syscalls.SYS_rt_sigqueueinfo,
		Args: [6]uint64{uint64(pid), uint64(signo), uint64(value)},
	})
}

// --- networking --------------------------------------------------------------

// Socket creates a UDP socket.
func (c C) Socket(w *gpu.Wavefront) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_socket})
	return int(r.Ret), r.Err
}

// Bind binds fd to port.
func (c C) Bind(w *gpu.Wavefront, fd, port int) errno.Errno {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_bind, Args: [6]uint64{uint64(fd), uint64(port)},
	})
	return r.Err
}

// SendTo transmits buf to dstPort (blocking).
func (c C) SendTo(w *gpu.Wavefront, fd int, buf []byte, dstPort int) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR:   syscalls.SYS_sendto,
		Args: [6]uint64{uint64(fd), uint64(len(buf)), 0, 0, uint64(dstPort)},
		Buf:  buf,
	})
	return int(r.Ret), r.Err
}

// RecvFrom blocks until a datagram arrives; returns (bytes, source port).
func (c C) RecvFrom(w *gpu.Wavefront, fd int, buf []byte) (int, int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR:   syscalls.SYS_recvfrom,
		Args: [6]uint64{uint64(fd), uint64(len(buf))},
		Buf:  buf,
	})
	return int(r.Ret), int(r.OutArgs[0]), r.Err
}

// RecvFromTimeout is RecvFrom with an SO_RCVTIMEO-style bound: it returns
// EAGAIN if no datagram arrives within timeout. This is the escape hatch
// request/response code needs on a lossy network, where the reply to a
// dropped request would otherwise be awaited forever.
func (c C) RecvFromTimeout(w *gpu.Wavefront, fd int, buf []byte, timeout sim.Time) (int, int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR:   syscalls.SYS_recvfrom,
		Args: [6]uint64{uint64(fd), uint64(len(buf)), uint64(timeout)},
		Buf:  buf,
	})
	return int(r.Ret), int(r.OutArgs[0]), r.Err
}

// StreamSocket creates a TCP-like stream socket.
func (c C) StreamSocket(w *gpu.Wavefront) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_socket, Args: [6]uint64{uint64(netstack.Stream)},
	})
	return int(r.Ret), r.Err
}

// Listen marks a bound stream socket as accepting connections.
func (c C) Listen(w *gpu.Wavefront, fd, backlog int) errno.Errno {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_listen, Args: [6]uint64{uint64(fd), uint64(backlog)},
	})
	return r.Err
}

// Connect establishes a stream connection to dstPort (blocking).
func (c C) Connect(w *gpu.Wavefront, fd, dstPort int) errno.Errno {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_connect, Args: [6]uint64{uint64(fd), uint64(dstPort)},
	})
	return r.Err
}

// Accept blocks for a pending connection and returns (conn fd, remote
// port). timeout > 0 bounds the wait SO_RCVTIMEO-style (EAGAIN).
func (c C) Accept(w *gpu.Wavefront, fd int, timeout sim.Time) (int, int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_accept, Args: [6]uint64{uint64(fd), uint64(timeout)},
	})
	return int(r.Ret), int(r.OutArgs[0]), r.Err
}

// Send writes buf to a connected stream socket (blocking, full write).
func (c C) Send(w *gpu.Wavefront, fd int, buf []byte) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR:   syscalls.SYS_sendto,
		Args: [6]uint64{uint64(fd), uint64(len(buf))},
		Buf:  buf,
	})
	return int(r.Ret), r.Err
}

// Recv reads from a connected stream socket; 0 bytes with no error is
// EOF. timeout > 0 bounds the wait (EAGAIN at the deadline).
func (c C) Recv(w *gpu.Wavefront, fd int, buf []byte, timeout sim.Time) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR:   syscalls.SYS_recvfrom,
		Args: [6]uint64{uint64(fd), uint64(len(buf)), uint64(timeout)},
		Buf:  buf,
	})
	return int(r.Ret), r.Err
}

// Poll waits for readiness across fds, poll(2)-style, so one work-group
// slot multiplexes a whole shard of fleet sockets. It returns the
// indices into fds that are readable. timeout semantics: 0 probes
// without blocking, PollForever blocks until something is ready, any
// other value is a deadline after which an empty set returns.
func (c C) Poll(w *gpu.Wavefront, fds []int, timeout sim.Time) ([]int, errno.Errno) {
	return c.PollWith(w, fds, timeout, nil)
}

// PollScratch is reusable storage for PollWith: a serving loop that
// polls every tick keeps one per wavefront so readiness multiplexing
// allocates nothing in steady state.
type PollScratch struct {
	buf   []byte
	ready []int
}

// PollWith is Poll reusing s's storage for the request encoding and the
// returned ready set (nil s behaves like Poll). The returned slice is
// valid until the next PollWith on the same scratch.
func (c C) PollWith(w *gpu.Wavefront, fds []int, timeout sim.Time, s *PollScratch) ([]int, errno.Errno) {
	var scratch PollScratch
	if s == nil {
		s = &scratch
	}
	s.buf = syscalls.EncodePollFDsInto(s.buf, fds)
	r, _ := c.collectBuf(w, syscalls.Request{
		NR:   syscalls.SYS_poll,
		Args: [6]uint64{uint64(len(fds)), uint64(timeout)},
		Buf:  s.buf,
	})
	if r.Err != errno.OK {
		return nil, r.Err
	}
	ready := s.ready[:0]
	for i, b := range syscalls.DecodePollRevents(s.buf, len(fds)) {
		if b != 0 {
			ready = append(ready, i)
		}
	}
	s.ready = ready
	if len(ready) == 0 {
		return nil, errno.OK
	}
	return ready, errno.OK
}

// PollForever is the Poll timeout meaning "block until readiness".
const PollForever = sim.Time(int64(-1))

// --- device control -----------------------------------------------------------

// Ioctl issues a device control command with an argument buffer.
func (c C) Ioctl(w *gpu.Wavefront, fd int, cmd uint64, arg []byte) (uint64, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_ioctl, Args: [6]uint64{uint64(fd), cmd}, Buf: arg,
	})
	return uint64(r.Ret), r.Err
}

// MmapDevice maps the device behind fd (e.g. the framebuffer).
func (c C) MmapDevice(w *gpu.Wavefront, fd int) (uint64, errno.Errno) {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_mmap, Args: [6]uint64{0, 0, 0, 0, uint64(fd), 0},
	})
	return uint64(r.Ret), r.Err
}

// --- misc ----------------------------------------------------------------------

// GetPID returns the borrowed process's PID.
func (c C) GetPID(w *gpu.Wavefront) (int, errno.Errno) {
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_getpid})
	return int(r.Ret), r.Err
}

// ClockGettime returns the current virtual time in nanoseconds.
func (c C) ClockGettime(w *gpu.Wavefront) (int64, errno.Errno) {
	r := c.collect(w, syscalls.Request{NR: syscalls.SYS_clock_gettime})
	return r.Ret, r.Err
}

// Nanosleep blocks the calling work-group for d nanoseconds of kernel
// time.
func (c C) Nanosleep(w *gpu.Wavefront, d int64) errno.Errno {
	r := c.collect(w, syscalls.Request{
		NR: syscalls.SYS_nanosleep, Args: [6]uint64{uint64(d)},
	})
	return r.Err
}

// --- wavefront-local variants ----------------------------------------------

// WriteWF writes from this wavefront alone, with no group barriers (the
// grep -l "report immediately" pattern). One lane invokes; blocking.
func (c C) WriteWF(w *gpu.Wavefront, fd int, buf []byte) (int, errno.Errno) {
	r := c.invoke(w, syscalls.Request{
		NR: syscalls.SYS_write, Args: [6]uint64{uint64(fd), uint64(len(buf))}, Buf: buf,
	})
	return int(r.Ret), r.Err
}

// PrintWF prints from this wavefront alone.
func (c C) PrintWF(w *gpu.Wavefront, s string) errno.Errno {
	_, err := c.WriteWF(w, 1, []byte(s))
	return err
}
