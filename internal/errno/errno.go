// Package errno defines the Linux error numbers used across the simulated
// kernel, filesystem, network stack and GENESYS syscall layer.
package errno

import "fmt"

// Errno is a Linux-style error number. The zero value means "no error".
type Errno int

// Error numbers (Linux x86-64 values).
const (
	OK           Errno = 0
	EPERM        Errno = 1
	ENOENT       Errno = 2
	EINTR        Errno = 4
	EIO          Errno = 5
	EBADF        Errno = 9
	EAGAIN       Errno = 11
	ENOMEM       Errno = 12
	EACCES       Errno = 13
	EFAULT       Errno = 14
	EBUSY        Errno = 16
	EEXIST       Errno = 17
	ENODEV       Errno = 19
	ENOTDIR      Errno = 20
	EISDIR       Errno = 21
	EINVAL       Errno = 22
	EMFILE       Errno = 24
	ENOTTY       Errno = 25
	EFBIG        Errno = 27
	ENOSPC       Errno = 28
	ESPIPE       Errno = 29
	EPIPE        Errno = 32
	ERANGE       Errno = 34
	ENOSYS       Errno = 38
	ENOTEMPTY    Errno = 39
	ENOTSOCK     Errno = 88
	EMSGSIZE     Errno = 90
	EOPNOTSUPP   Errno = 95
	EADDRINUSE   Errno = 98
	ECONNRESET   Errno = 104
	EISCONN      Errno = 106
	ENOTCONN     Errno = 107
	ETIMEDOUT    Errno = 110
	ECONNREFUSED Errno = 111
)

var names = map[Errno]string{
	OK:           "OK",
	EPERM:        "EPERM",
	ENOENT:       "ENOENT",
	EINTR:        "EINTR",
	EIO:          "EIO",
	EBADF:        "EBADF",
	EAGAIN:       "EAGAIN",
	ENOMEM:       "ENOMEM",
	EACCES:       "EACCES",
	EFAULT:       "EFAULT",
	EBUSY:        "EBUSY",
	EEXIST:       "EEXIST",
	ENODEV:       "ENODEV",
	ENOTDIR:      "ENOTDIR",
	EISDIR:       "EISDIR",
	EINVAL:       "EINVAL",
	EMFILE:       "EMFILE",
	ENOTTY:       "ENOTTY",
	EFBIG:        "EFBIG",
	ENOSPC:       "ENOSPC",
	ESPIPE:       "ESPIPE",
	EPIPE:        "EPIPE",
	ERANGE:       "ERANGE",
	ENOSYS:       "ENOSYS",
	ENOTEMPTY:    "ENOTEMPTY",
	ENOTSOCK:     "ENOTSOCK",
	EMSGSIZE:     "EMSGSIZE",
	EOPNOTSUPP:   "EOPNOTSUPP",
	EADDRINUSE:   "EADDRINUSE",
	ECONNRESET:   "ECONNRESET",
	EISCONN:      "EISCONN",
	ENOTCONN:     "ENOTCONN",
	ETIMEDOUT:    "ETIMEDOUT",
	ECONNREFUSED: "ECONNREFUSED",
}

// Error implements the error interface; OK must not be used as an error.
func (e Errno) Error() string { return e.String() }

// String returns the conventional constant name.
func (e Errno) String() string {
	if s, ok := names[e]; ok {
		return s
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// Of extracts the Errno from err: a nil err maps to OK, an Errno is
// returned as-is, and any other error maps to EIO.
func Of(err error) Errno {
	if err == nil {
		return OK
	}
	if e, ok := err.(Errno); ok {
		return e
	}
	return EIO
}
