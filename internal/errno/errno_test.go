package errno

import (
	"errors"
	"testing"
)

func TestStringAndError(t *testing.T) {
	if ENOENT.String() != "ENOENT" || ENOENT.Error() != "ENOENT" {
		t.Fatalf("ENOENT renders as %q", ENOENT.String())
	}
	if got := Errno(9999).String(); got != "errno(9999)" {
		t.Fatalf("unknown errno renders as %q", got)
	}
	if OK.String() != "OK" {
		t.Fatal("OK string")
	}
}

func TestOf(t *testing.T) {
	if Of(nil) != OK {
		t.Fatal("nil should map to OK")
	}
	if Of(EBADF) != EBADF {
		t.Fatal("Errno should pass through")
	}
	if Of(errors.New("anything else")) != EIO {
		t.Fatal("foreign errors should map to EIO")
	}
}

func TestValuesMatchLinux(t *testing.T) {
	// Spot-check against the Linux ABI values.
	cases := map[Errno]int{EPERM: 1, ENOENT: 2, EBADF: 9, ENOMEM: 12,
		EINVAL: 22, ENOSYS: 38, EADDRINUSE: 98, ECONNREFUSED: 111}
	for e, v := range cases {
		if int(e) != v {
			t.Fatalf("%v = %d, want %d", e, int(e), v)
		}
	}
}
