package vmm

import (
	"errors"
	"testing"
	"testing/quick"

	"genesys/internal/errno"
	"genesys/internal/sim"
)

func newAS(physPages int64) (*sim.Engine, *AddressSpace) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.PhysPages = physPages
	pool := &Pool{Total: physPages}
	return e, New(e, cfg, pool)
}

func run(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("test", fn)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMmapIsLazy(t *testing.T) {
	e, as := newAS(1024)
	run(t, e, func(p *sim.Proc) {
		addr, err := as.Mmap(1 << 20) // 256 pages
		if err != nil {
			t.Errorf("mmap: %v", err)
		}
		if as.RSSBytes() != 0 {
			t.Errorf("rss after mmap = %d, want 0 (lazy)", as.RSSBytes())
		}
		if err := as.Touch(p, addr, 8192, false); err != nil {
			t.Errorf("touch: %v", err)
		}
		if as.RSSBytes() != 8192 {
			t.Errorf("rss after touching 2 pages = %d", as.RSSBytes())
		}
		if as.MinorFaults.Value() != 2 {
			t.Errorf("minor faults = %d", as.MinorFaults.Value())
		}
	})
}

func TestTouchIsIdempotent(t *testing.T) {
	e, as := newAS(1024)
	run(t, e, func(p *sim.Proc) {
		addr, _ := as.Mmap(1 << 20)
		as.Touch(p, addr, 4096, false)
		before := p.Now()
		as.Touch(p, addr, 4096, false) // already present: free
		if p.Now() != before {
			t.Error("touching a present page cost time")
		}
		if as.MinorFaults.Value() != 1 {
			t.Errorf("faults = %d", as.MinorFaults.Value())
		}
	})
}

func TestMadviseDontneedReleasesPages(t *testing.T) {
	e, as := newAS(1024)
	run(t, e, func(p *sim.Proc) {
		addr, _ := as.Mmap(64 << 10) // 16 pages
		as.Touch(p, addr, 64<<10, false)
		if as.Pool().Used() != 16 {
			t.Fatalf("pool used = %d", as.Pool().Used())
		}
		if err := as.Madvise(p, addr, 32<<10, MADV_DONTNEED); err != nil {
			t.Fatal(err)
		}
		if as.RSSBytes() != 32<<10 || as.Pool().Used() != 8 {
			t.Fatalf("rss=%d pool=%d after DONTNEED of half", as.RSSBytes(), as.Pool().Used())
		}
		// Re-touch: minor (zero-fill) fault, not major — content discarded.
		major := as.MajorFaults.Value()
		as.Touch(p, addr, 4096, false)
		if as.MajorFaults.Value() != major {
			t.Error("DONTNEED page refaulted as major")
		}
	})
}

func TestEvictionAndMajorFaults(t *testing.T) {
	e, as := newAS(8) // tiny pool: 8 pages
	run(t, e, func(p *sim.Proc) {
		addr, _ := as.Mmap(16 * 4096)
		// Touch 16 pages one by one: the last 8 evict the first 8.
		for i := int64(0); i < 16; i++ {
			if err := as.Touch(p, addr+uint64(i*4096), 4096, false); err != nil {
				t.Fatalf("touch %d: %v", i, err)
			}
		}
		if as.SwapOuts.Value() != 8 {
			t.Fatalf("swap-outs = %d, want 8", as.SwapOuts.Value())
		}
		if as.RSSBytes() != 8*4096 {
			t.Fatalf("rss = %d", as.RSSBytes())
		}
		// Touching an evicted page is a major fault.
		if err := as.Touch(p, addr, 4096, false); err != nil {
			t.Fatal(err)
		}
		if as.MajorFaults.Value() != 1 {
			t.Fatalf("major faults = %d", as.MajorFaults.Value())
		}
	})
}

func TestGPUWatchdogTimeout(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.PhysPages = 256
	cfg.GPUWatchdog = 100 * sim.Millisecond
	as := New(e, cfg, &Pool{Total: 256})
	run(t, e, func(p *sim.Proc) {
		// Fill the pool, then fault a huge range from the "GPU": the swap
		// storm exceeds the watchdog.
		a1, _ := as.Mmap(256 * 4096)
		as.Touch(p, a1, 256*4096, false)
		a2, _ := as.Mmap(8 << 20) // 2048 pages, all requiring eviction
		err := as.Touch(p, a2, 8<<20, true)
		if !errors.Is(err, ErrGPUTimeout) {
			t.Fatalf("err = %v, want GPU timeout", err)
		}
	})
}

func TestMunmapFreesPool(t *testing.T) {
	e, as := newAS(1024)
	run(t, e, func(p *sim.Proc) {
		addr, _ := as.Mmap(64 << 10)
		as.Touch(p, addr, 64<<10, false)
		if err := as.Munmap(p, addr, 64<<10); err != nil {
			t.Fatal(err)
		}
		if as.Pool().Used() != 0 || as.RSSBytes() != 0 {
			t.Fatalf("pool=%d rss=%d after munmap", as.Pool().Used(), as.RSSBytes())
		}
		if err := as.Touch(p, addr, 4096, false); err != errno.EFAULT {
			t.Fatalf("touch after munmap = %v", err)
		}
	})
}

func TestDeviceMappingNotPaged(t *testing.T) {
	e, as := newAS(4)
	run(t, e, func(p *sim.Proc) {
		dev := make([]byte, 1<<20)
		addr, err := as.MmapDevice(dev)
		if err != nil {
			t.Fatal(err)
		}
		if err := as.Touch(p, addr, 1<<20, true); err != nil {
			t.Fatalf("device touch: %v", err)
		}
		if as.RSSBytes() != 0 {
			t.Fatal("device mapping consumed pool pages")
		}
		v, _ := as.FindVMA(addr)
		if v.Device == nil {
			t.Fatal("device backing lost")
		}
		if err := as.Madvise(p, addr, 4096, MADV_DONTNEED); err != errno.EINVAL {
			t.Fatalf("madvise on device mapping = %v", err)
		}
	})
}

func TestUsage(t *testing.T) {
	e, as := newAS(1024)
	run(t, e, func(p *sim.Proc) {
		addr, _ := as.Mmap(64 << 10)
		as.Touch(p, addr, 64<<10, false)
		as.Madvise(p, addr, 64<<10, MADV_DONTNEED)
		u := as.Usage()
		if u.MaxRSSBytes != 64<<10 || u.RSSBytes != 0 || u.MinorFaults != 16 {
			t.Fatalf("usage = %+v", u)
		}
	})
}

func TestBadAddresses(t *testing.T) {
	e, as := newAS(16)
	run(t, e, func(p *sim.Proc) {
		if _, err := as.Mmap(0); err != errno.EINVAL {
			t.Fatalf("mmap(0) = %v", err)
		}
		if err := as.Touch(p, 0xdead, 4096, false); err != errno.EFAULT {
			t.Fatalf("touch unmapped = %v", err)
		}
		if err := as.Munmap(p, 0xdead, 4096); err != errno.EINVAL {
			t.Fatalf("munmap unmapped = %v", err)
		}
		addr, _ := as.Mmap(4096)
		if err := as.Touch(p, addr, 8192, false); err != errno.EFAULT {
			t.Fatalf("touch past end = %v", err)
		}
	})
}

// Property: pool accounting is conserved — used pages always equal the
// address space's RSS pages, and never exceed the pool, across random
// mmap/touch/madvise/munmap sequences.
func TestPoolAccountingInvariant(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		e := sim.NewEngine(seed)
		cfg := DefaultConfig()
		cfg.PhysPages = 32
		pool := &Pool{Total: 32}
		as := New(e, cfg, pool)
		ok := true
		e.Spawn("fuzz", func(p *sim.Proc) {
			var addrs []uint64
			var sizes []int64
			for _, op := range ops {
				switch op % 4 {
				case 0:
					size := int64(op%7+1) * 4096
					if a, err := as.Mmap(size); err == nil {
						addrs = append(addrs, a)
						sizes = append(sizes, size)
					}
				case 1:
					if len(addrs) > 0 {
						i := int(op) % len(addrs)
						as.Touch(p, addrs[i], sizes[i], false)
					}
				case 2:
					if len(addrs) > 0 {
						i := int(op) % len(addrs)
						as.Madvise(p, addrs[i], sizes[i], MADV_DONTNEED)
					}
				case 3:
					if len(addrs) > 0 {
						i := int(op) % len(addrs)
						as.Munmap(p, addrs[i], sizes[i])
						addrs = append(addrs[:i], addrs[i+1:]...)
						sizes = append(sizes[:i], sizes[i+1:]...)
					}
				}
				if pool.Used() != as.RSSBytes()/4096 || pool.Used() > pool.Total || pool.Used() < 0 {
					ok = false
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
