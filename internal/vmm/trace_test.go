package vmm

import (
	"strings"
	"testing"

	"genesys/internal/sim"
)

func TestRSSTraceFollowsFootprint(t *testing.T) {
	e, as := newAS(1 << 20)
	e.Spawn("app", func(p *sim.Proc) {
		addr, _ := as.Mmap(64 << 20)
		as.Touch(p, addr, 32<<20, false) // 32 MiB resident
		p.Sleep(120 * sim.Millisecond)   // two trace bins at 32 MiB
		as.Madvise(p, addr, 32<<20, MADV_DONTNEED)
		p.Sleep(120 * sim.Millisecond)
		as.Touch(p, addr, 8<<20, false) // back up to 8 MiB
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	bins, width := as.RSSTrace()
	if width != 50*sim.Millisecond {
		t.Fatalf("bin width = %v", width)
	}
	if len(bins) < 4 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0] != float64(32<<20) {
		t.Fatalf("bin0 = %v, want 32MiB peak", bins[0])
	}
	last := bins[len(bins)-1]
	if last != float64(8<<20) {
		t.Fatalf("final bin = %v, want 8MiB", last)
	}
}

func TestStringSummary(t *testing.T) {
	e, as := newAS(1024)
	e.Spawn("app", func(p *sim.Proc) {
		addr, _ := as.Mmap(4 << 20)
		as.Touch(p, addr, 2<<20, false)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := as.String()
	if !strings.Contains(s, "1 vmas") || !strings.Contains(s, "mapped 4 MiB") ||
		!strings.Contains(s, "rss 2 MiB") {
		t.Fatalf("String() = %q", s)
	}
}
