// Package vmm models per-process virtual memory: VMAs created by mmap,
// demand paging against a finite physical-page pool, swap traffic when
// the pool is exhausted, and madvise(MADV_DONTNEED) releasing pages back
// to the pool.
//
// This is the substrate for the paper's miniAMR case study (§VIII-A,
// Figure 11): a GPU dataset slightly larger than physical memory swaps so
// heavily that the GPU driver's watchdog kills the application, unless
// the GPU itself calls madvise to return memory it no longer needs.
package vmm

import (
	"errors"
	"fmt"

	"genesys/internal/errno"
	"genesys/internal/sim"
)

// Madvise advice values (Linux).
const (
	MADV_NORMAL   = 0
	MADV_WILLNEED = 3
	MADV_DONTNEED = 4
)

// ErrGPUTimeout reports that servicing page faults for a single GPU
// access batch exceeded the driver watchdog, which terminates the
// offending application — the fate of the paper's madvise-less baseline.
var ErrGPUTimeout = errors.New("vmm: GPU watchdog timeout while servicing page faults")

// Config holds paging parameters.
type Config struct {
	PageSize    int64
	PhysPages   int64    // physical pages available to this workload
	MinorFault  sim.Time // zero-fill fault service time
	SwapIn      sim.Time // major fault: read one page from swap
	SwapOut     sim.Time // evict one dirty page to swap
	ZapPage     sim.Time // madvise(DONTNEED) cost per present page
	GPUWatchdog sim.Time // max fault latency one GPU access batch tolerates
}

// DefaultConfig returns 4 KiB pages, a 4 GiB pool, SSD-class swap costs
// and a 500 ms GPU watchdog.
func DefaultConfig() Config {
	return Config{
		PageSize:    4096,
		PhysPages:   (4 << 30) / 4096,
		MinorFault:  2 * sim.Microsecond,
		SwapIn:      180 * sim.Microsecond,
		SwapOut:     180 * sim.Microsecond,
		ZapPage:     500 * sim.Nanosecond,
		GPUWatchdog: 500 * sim.Millisecond,
	}
}

// Pool is the machine-wide physical page pool.
type Pool struct {
	Total int64
	used  int64
}

// Used returns the number of allocated pages.
func (p *Pool) Used() int64 { return p.used }

// Free returns the number of free pages.
func (p *Pool) Free() int64 { return p.Total - p.used }

type pageID struct {
	vma *VMA
	idx int64
}

// VMA is one mapped region.
type VMA struct {
	Start  uint64
	Length int64

	present []bool
	swapped []bool // page went to swap at least once → next fault is major

	// Device is the device memory backing the mapping (e.g. the
	// framebuffer); nil for anonymous memory. Device mappings are not
	// demand-paged.
	Device []byte
}

// End returns the first address past the mapping.
func (v *VMA) End() uint64 { return v.Start + uint64(v.Length) }

func (v *VMA) pages(pageSize int64) int64 {
	return (v.Length + pageSize - 1) / pageSize
}

// AddressSpace is one process's memory map.
type AddressSpace struct {
	e    *sim.Engine
	cfg  Config
	pool *Pool

	vmas     []*VMA
	nextAddr uint64

	rssPages    int64
	maxRSSPages int64

	// residency FIFO for eviction
	resident []pageID

	MinorFaults sim.Counter
	MajorFaults sim.Counter
	SwapOuts    sim.Counter

	rssTrace *sim.Series // max RSS bytes seen per bin
}

// New returns an address space drawing pages from pool.
func New(e *sim.Engine, cfg Config, pool *Pool) *AddressSpace {
	if cfg.PageSize <= 0 {
		panic("vmm: invalid page size")
	}
	return &AddressSpace{
		e:        e,
		cfg:      cfg,
		pool:     pool,
		nextAddr: 0x7f00_0000_0000,
		rssTrace: sim.NewSeries(50 * sim.Millisecond),
	}
}

// Config returns the paging parameters.
func (as *AddressSpace) Config() Config { return as.cfg }

// Pool returns the backing physical pool.
func (as *AddressSpace) Pool() *Pool { return as.pool }

// RSSBytes returns the current resident set size in bytes.
func (as *AddressSpace) RSSBytes() int64 { return as.rssPages * as.cfg.PageSize }

// MaxRSSBytes returns the high-water-mark resident set size in bytes.
func (as *AddressSpace) MaxRSSBytes() int64 { return as.maxRSSPages * as.cfg.PageSize }

// RSSTrace returns the per-bin peak RSS in bytes (Figure 11's y-axis).
func (as *AddressSpace) RSSTrace() ([]float64, sim.Time) {
	return as.rssTrace.Bins(), as.rssTrace.BinWidth
}

func (as *AddressSpace) noteRSS() {
	if as.rssPages > as.maxRSSPages {
		as.maxRSSPages = as.rssPages
	}
	bytes := float64(as.RSSBytes())
	if cur := as.rssTrace.Bin(int(as.e.Now() / as.rssTrace.BinWidth)); bytes > cur {
		as.rssTrace.Add(as.e.Now(), bytes-cur)
	}
}

// Mmap creates an anonymous mapping of length bytes and returns its
// address. No physical pages are allocated until the memory is touched.
func (as *AddressSpace) Mmap(length int64) (uint64, error) {
	return as.mmap(length, nil)
}

// MmapDevice maps device memory (e.g. the framebuffer).
func (as *AddressSpace) MmapDevice(dev []byte) (uint64, error) {
	if dev == nil {
		return 0, errno.ENODEV
	}
	return as.mmap(int64(len(dev)), dev)
}

func (as *AddressSpace) mmap(length int64, dev []byte) (uint64, error) {
	if length <= 0 {
		return 0, errno.EINVAL
	}
	pageSize := as.cfg.PageSize
	length = (length + pageSize - 1) / pageSize * pageSize
	v := &VMA{Start: as.nextAddr, Length: length, Device: dev}
	if dev == nil {
		n := v.pages(pageSize)
		v.present = make([]bool, n)
		v.swapped = make([]bool, n)
	}
	as.nextAddr += uint64(length) + uint64(pageSize) // guard page
	as.vmas = append(as.vmas, v)
	return v.Start, nil
}

// find returns the VMA containing addr.
func (as *AddressSpace) find(addr uint64) (*VMA, error) {
	for _, v := range as.vmas {
		if addr >= v.Start && addr < v.End() {
			return v, nil
		}
	}
	return nil, errno.EFAULT
}

// FindVMA is the exported lookup used by the syscall layer (e.g. to find
// a device mapping for framebuffer writes).
func (as *AddressSpace) FindVMA(addr uint64) (*VMA, error) { return as.find(addr) }

// Munmap removes the mapping exactly covering [addr, addr+length).
func (as *AddressSpace) Munmap(p *sim.Proc, addr uint64, length int64) error {
	for i, v := range as.vmas {
		if v.Start == addr {
			if length > 0 && (length+as.cfg.PageSize-1)/as.cfg.PageSize*as.cfg.PageSize != v.Length {
				return errno.EINVAL
			}
			freed := as.releaseRange(p, v, 0, v.pages(as.cfg.PageSize), false)
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			_ = freed
			return nil
		}
	}
	return errno.EINVAL
}

// Madvise applies advice to [addr, addr+length). MADV_DONTNEED releases
// present pages back to the pool; the data is discarded, so the next
// touch is a zero-fill minor fault.
func (as *AddressSpace) Madvise(p *sim.Proc, addr uint64, length int64, advice int) error {
	switch advice {
	case MADV_NORMAL, MADV_WILLNEED:
		return nil
	case MADV_DONTNEED:
	default:
		return errno.EINVAL
	}
	v, err := as.find(addr)
	if err != nil {
		return err
	}
	if v.Device != nil {
		return errno.EINVAL
	}
	ps := as.cfg.PageSize
	first := int64(addr-v.Start) / ps
	last := (int64(addr-v.Start) + length - 1) / ps
	if last >= v.pages(ps) {
		last = v.pages(ps) - 1
	}
	freed := as.releaseRange(p, v, first, last+1, true)
	if p != nil && freed > 0 {
		p.Sleep(sim.Time(freed) * as.cfg.ZapPage)
	}
	return nil
}

// releaseRange drops present pages [first, lastExcl) of v, returning the
// count released. When resetSwap is set the pages also forget their swap
// history (DONTNEED discards content).
func (as *AddressSpace) releaseRange(p *sim.Proc, v *VMA, first, lastExcl int64, resetSwap bool) int64 {
	if v.Device != nil {
		return 0
	}
	var freed int64
	for i := first; i < lastExcl; i++ {
		if v.present[i] {
			v.present[i] = false
			freed++
		}
		if resetSwap {
			v.swapped[i] = false
		}
	}
	if freed > 0 {
		as.pool.used -= freed
		as.rssPages -= freed
		as.compactResident()
		as.noteRSS()
	}
	return freed
}

// compactResident removes no-longer-present pages from the eviction FIFO.
func (as *AddressSpace) compactResident() {
	out := as.resident[:0]
	for _, pg := range as.resident {
		if pg.vma.present != nil && pg.idx < int64(len(pg.vma.present)) && pg.vma.present[pg.idx] {
			out = append(out, pg)
		}
	}
	as.resident = out
}

// Touch simulates accesses to [addr, addr+length): absent pages fault in,
// evicting other pages if the pool is full. Costs are charged to p in one
// batch. When gpu is set and the accumulated fault latency of this batch
// exceeds the watchdog, ErrGPUTimeout is returned (after charging the
// time spent).
func (as *AddressSpace) Touch(p *sim.Proc, addr uint64, length int64, gpu bool) error {
	v, err := as.find(addr)
	if err != nil {
		return err
	}
	if addr+uint64(length) > v.End() {
		return errno.EFAULT
	}
	if v.Device != nil {
		return nil // device memory is always resident
	}
	ps := as.cfg.PageSize
	first := int64(addr-v.Start) / ps
	last := (int64(addr-v.Start) + length - 1) / ps

	var cost sim.Time
	var minor, major, evict int64
	for i := first; i <= last; i++ {
		if v.present[i] {
			continue
		}
		// Need a physical page: evict if pool exhausted.
		if as.pool.Free() <= 0 {
			if !as.evictOne() {
				return errno.ENOMEM
			}
			evict++
			cost += as.cfg.SwapOut
		}
		v.present[i] = true
		as.pool.used++
		as.rssPages++
		as.resident = append(as.resident, pageID{vma: v, idx: i})
		if v.swapped[i] {
			major++
			cost += as.cfg.SwapIn
		} else {
			minor++
			cost += as.cfg.MinorFault
		}
	}
	as.MinorFaults.Add(minor)
	as.MajorFaults.Add(major)
	as.SwapOuts.Add(evict)
	as.noteRSS()
	if p != nil && cost > 0 {
		p.Sleep(cost)
	}
	if gpu && cost > as.cfg.GPUWatchdog {
		return ErrGPUTimeout
	}
	return nil
}

// evictOne pushes the oldest resident page to swap.
func (as *AddressSpace) evictOne() bool {
	for len(as.resident) > 0 {
		pg := as.resident[0]
		as.resident = as.resident[1:]
		if !pg.vma.present[pg.idx] {
			continue
		}
		pg.vma.present[pg.idx] = false
		pg.vma.swapped[pg.idx] = true
		as.pool.used--
		as.rssPages--
		return true
	}
	return false
}

// Rusage is the subset of struct rusage GENESYS exposes via getrusage.
type Rusage struct {
	MaxRSSBytes int64
	RSSBytes    int64
	MinorFaults int64
	MajorFaults int64
	SwapOuts    int64
}

// Usage returns resource usage for getrusage.
func (as *AddressSpace) Usage() Rusage {
	return Rusage{
		MaxRSSBytes: as.MaxRSSBytes(),
		RSSBytes:    as.RSSBytes(),
		MinorFaults: as.MinorFaults.Value(),
		MajorFaults: as.MajorFaults.Value(),
		SwapOuts:    as.SwapOuts.Value(),
	}
}

// MappedBytes returns the total mapped (virtual) size.
func (as *AddressSpace) MappedBytes() int64 {
	var n int64
	for _, v := range as.vmas {
		n += v.Length
	}
	return n
}

// String summarizes the address space.
func (as *AddressSpace) String() string {
	return fmt.Sprintf("vmm: %d vmas, mapped %d MiB, rss %d MiB",
		len(as.vmas), as.MappedBytes()>>20, as.RSSBytes()>>20)
}
