package blockdev

import (
	"testing"

	"genesys/internal/sim"
)

func TestSingleCommandTiming(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, DefaultConfig())
	var elapsed sim.Time
	e.Spawn("reader", func(p *sim.Proc) {
		start := p.Now()
		d.Read(p, 128<<10)
		elapsed = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := d.Config().CommandOverhead + sim.Time(float64(128<<10)/d.Config().ChannelBandwidth)
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestChannelParallelism(t *testing.T) {
	measure := func(readers int) float64 {
		e := sim.NewEngine(1)
		d := New(e, DefaultConfig())
		const perReader = 64
		for i := 0; i < readers; i++ {
			e.Spawn("r", func(p *sim.Proc) {
				for j := 0; j < perReader; j++ {
					d.Read(p, 128<<10)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(readers*perReader*(128<<10)) / e.Now().Seconds() / 1e6
	}
	qd1 := measure(1)
	qd8 := measure(8)
	qd16 := measure(16)
	if qd1 < 15 || qd1 > 35 {
		t.Fatalf("QD1 throughput = %.1f MB/s, want ~20-30", qd1)
	}
	if qd8 < 6.5*qd1 {
		t.Fatalf("QD8 = %.1f, QD1 = %.1f: channels not parallel", qd8, qd1)
	}
	if qd16 > qd8*1.2 {
		t.Fatalf("QD16 = %.1f exceeds channel-count ceiling (QD8 = %.1f)", qd16, qd8)
	}
}

func TestThroughputTrace(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, DefaultConfig())
	e.Spawn("r", func(p *sim.Proc) {
		for j := 0; j < 8; j++ {
			d.Read(p, 1<<20)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tr := d.ThroughputTrace()
	var sum float64
	for _, v := range tr {
		sum += v
	}
	if len(tr) == 0 || sum <= 0 {
		t.Fatalf("trace = %v", tr)
	}
	d.ResetStats()
	if d.BytesRead.Value() != 0 || len(d.ThroughputTrace()) != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestWriteCounts(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, DefaultConfig())
	e.Spawn("w", func(p *sim.Proc) {
		d.Write(p, 4096)
		d.Read(p, 0) // no-op
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d.BytesWritten.Value() != 4096 || d.Commands.Value() != 1 {
		t.Fatalf("written=%d cmds=%d", d.BytesWritten.Value(), d.Commands.Value())
	}
}
