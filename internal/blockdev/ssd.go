// Package blockdev models the storage device behind the simulated
// SSD-backed filesystem. The device has a fixed per-command overhead and
// several independent NAND channels; aggregate throughput therefore
// scales with I/O queue depth, which is the mechanism behind the paper's
// Figure 14: a serial CPU reader achieves ~30 MB/s while the GPU's many
// concurrent pread requests drive the same device to ~170 MB/s.
package blockdev

import (
	"genesys/internal/errno"
	"genesys/internal/fault"
	"genesys/internal/obs"
	"genesys/internal/sim"
)

// Config describes an SSD.
type Config struct {
	Channels         int
	ChannelBandwidth float64  // bytes per nanosecond per channel
	CommandOverhead  sim.Time // per-command fixed service time
	TraceBin         sim.Time // bin width of the throughput trace
}

// DefaultConfig returns an 8-channel device with 24 MB/s per channel and
// 60 us command overhead: ~27 MB/s at queue depth 1 with 128 KiB requests,
// ~180 MB/s when all channels are kept busy.
func DefaultConfig() Config {
	return Config{
		Channels:         8,
		ChannelBandwidth: 0.024,
		CommandOverhead:  60 * sim.Microsecond,
		TraceBin:         10 * sim.Millisecond,
	}
}

// SSD is the simulated device.
type SSD struct {
	e   *sim.Engine
	cfg Config

	chFree []sim.Time // per-channel next-free instant

	inject *fault.Injector
	events *obs.EventLog

	BytesRead    sim.Counter
	BytesWritten sim.Counter
	Commands     sim.Counter
	// Retries counts transiently-failed commands the device's firmware
	// reissued (the block layer's retry-on-media-error behaviour).
	Retries sim.Counter

	trace *sim.Series // bytes transferred per trace bin
}

// SetInjector attaches the machine's fault injector: latency-spike
// faults stretch one command's service time, io-error faults fail the
// command (retried internally up to maxCmdRetries before EIO surfaces).
func (d *SSD) SetInjector(in *fault.Injector) { d.inject = in }

// SetEventLog attaches the machine's structured event log; each command
// becomes a span on the channel it occupied (one trace-viewer thread per
// NAND channel).
func (d *SSD) SetEventLog(l *obs.EventLog) { d.events = l }

// maxCmdRetries bounds firmware-level reissues of a failed command.
const maxCmdRetries = 2

// New returns an SSD bound to e.
func New(e *sim.Engine, cfg Config) *SSD {
	if cfg.Channels <= 0 || cfg.ChannelBandwidth <= 0 {
		panic("blockdev: invalid config")
	}
	if cfg.TraceBin <= 0 {
		cfg.TraceBin = 10 * sim.Millisecond
	}
	return &SSD{
		e:      e,
		cfg:    cfg,
		chFree: make([]sim.Time, cfg.Channels),
		trace:  sim.NewSeries(cfg.TraceBin),
	}
}

// Config returns the device configuration.
func (d *SSD) Config() Config { return d.cfg }

// transfer performs one command moving n bytes; the calling process
// waits for channel queueing plus service time. Injected latency spikes
// stretch the service time; injected I/O errors fail the command, which
// the device reissues up to maxCmdRetries times before surfacing EIO.
func (d *SSD) transfer(p *sim.Proc, n int64, op string, trace uint64) error {
	for attempt := 0; ; attempt++ {
		// Pick the earliest-free channel.
		best := 0
		for i := 1; i < len(d.chFree); i++ {
			if d.chFree[i] < d.chFree[best] {
				best = i
			}
		}
		now := d.e.Now()
		start := now
		if d.chFree[best] > start {
			start = d.chFree[best]
		}
		service := d.cfg.CommandOverhead + sim.Time(float64(n)/d.cfg.ChannelBandwidth)
		if r, ok := d.inject.Fire(fault.BlockLatency); ok {
			spike := sim.Time(r.Param)
			if spike <= 0 {
				spike = 500 * sim.Microsecond
			}
			service += spike
		}
		end := start + service
		d.chFree[best] = end
		d.Commands.Inc()
		d.trace.AddInterval(start, end, float64(n))
		if d.events.CaptureActive() {
			fp := obs.FlowNone
			if trace != 0 {
				fp = obs.FlowStep
			}
			d.events.FlowSpan("blockdev", op, obs.PIDBlockdev, best,
				start, end, trace, fp, op)
		}
		p.Sleep(end - now)
		if d.inject.Should(fault.BlockError) {
			if attempt < maxCmdRetries {
				d.Retries.Inc()
				continue
			}
			d.inject.NoteSurfaced()
			return errno.EIO
		}
		if attempt > 0 {
			d.inject.NoteRecovered()
		}
		return nil
	}
}

// Read transfers n bytes from the device into memory.
func (d *SSD) Read(p *sim.Proc, n int64) error { return d.ReadTraced(p, n, 0) }

// ReadTraced is Read with the transfer linked into causal flow chain
// trace (0 disables linking).
func (d *SSD) ReadTraced(p *sim.Proc, n int64, trace uint64) error {
	if n <= 0 {
		return nil
	}
	d.BytesRead.Add(n)
	return d.transfer(p, n, "read", trace)
}

// Write transfers n bytes from memory to the device.
func (d *SSD) Write(p *sim.Proc, n int64) error { return d.WriteTraced(p, n, 0) }

// WriteTraced is Write with the transfer linked into causal flow chain
// trace (0 disables linking).
func (d *SSD) WriteTraced(p *sim.Proc, n int64, trace uint64) error {
	if n <= 0 {
		return nil
	}
	d.BytesWritten.Add(n)
	return d.transfer(p, n, "write", trace)
}

// ThroughputTrace returns per-bin device throughput in MB/s.
func (d *SSD) ThroughputTrace() []float64 {
	bins := d.trace.Bins()
	out := make([]float64, len(bins))
	binSec := d.cfg.TraceBin.Seconds()
	for i, b := range bins {
		out[i] = b / binSec / 1e6
	}
	return out
}

// ResetStats clears counters and the throughput trace (channel occupancy
// is preserved).
func (d *SSD) ResetStats() {
	d.BytesRead = sim.Counter{}
	d.BytesWritten = sim.Counter{}
	d.Commands = sim.Counter{}
	d.trace = sim.NewSeries(d.cfg.TraceBin)
}
