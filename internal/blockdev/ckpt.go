package blockdev

import (
	"fmt"
	"strings"
)

// CheckpointState renders the device's state as a deterministic byte
// string: transfer counters and each channel's next-free instant (the
// queueing state that shapes future command latencies). Pure reads;
// used as a verification section by internal/ckpt (DESIGN.md §10).
func (d *SSD) CheckpointState() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "blockdev v1\n")
	fmt.Fprintf(&b, "counters read=%d written=%d commands=%d retries=%d\n",
		d.BytesRead.Value(), d.BytesWritten.Value(), d.Commands.Value(),
		d.Retries.Value())
	for i, t := range d.chFree {
		fmt.Fprintf(&b, "channel %d free_at=%d\n", i, int64(t))
	}
	return []byte(b.String())
}
