package replay_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"genesys/internal/fs"
	"genesys/internal/netstack"
	"genesys/internal/platform"
	"genesys/internal/replay"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

func TestTraceWriteLoadRoundTrip(t *testing.T) {
	tr := &replay.Trace{
		Version: replay.TraceVersion, Case: "hand", Seed: 7,
		Env: []replay.EnvFD{
			{FD: 3, Kind: "file", Path: "/data/x", Size: 4096, Pos: 128, Flags: fs.O_RDWR},
			{FD: 4, Kind: "dgram", Port: 11211},
			{FD: 5, Kind: "stream-listener", Port: 12000, Backlog: 16},
		},
		Entries: []replay.Entry{
			{Trace: 1, NR: syscalls.SYS_pwrite64, Name: "pwrite64", Slot: 2, Wave: 0,
				Gen: 3, At: 1000, Args: [6]uint64{3, 64, 0}, BufLen: 64, Buf: "aGVsbG8="},
			{Trace: 2, NR: syscalls.SYS_getrusage, Name: "getrusage", Slot: 9, Gen: 1, At: 2000},
		},
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := replay.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip:\nwant %+v\ngot  %+v", tr, got)
	}
}

func TestRecreateEnv(t *testing.T) {
	m := platform.New(platform.DefaultConfig())
	defer m.Shutdown()
	pr := m.NewProcess("replay")
	env := []replay.EnvFD{
		{FD: 0, Kind: "console", Path: "/dev/console"},
		{FD: 3, Kind: "file", Path: "/data/x", Size: 4096, Pos: 256, Flags: fs.O_RDWR},
		{FD: 4, Kind: "dgram", Port: 11211, Path: "socket:[udp]"},
		{FD: 5, Kind: "stream-listener", Port: 12000, Backlog: 16, Path: "socket:[tcp]"},
	}
	if err := replay.RecreateEnv(m, pr, env); err != nil {
		t.Fatal(err)
	}
	f, err := pr.FDs.Get(3)
	if err != nil {
		t.Fatalf("fd 3: %v", err)
	}
	if f.Node == nil || f.Node.Size() != 4096 {
		t.Errorf("fd 3: want 4096-byte file, got %+v", f)
	}
	if f.Pos() != 256 {
		t.Errorf("fd 3 pos = %d, want 256", f.Pos())
	}
	for fd, wantPort := range map[int]int{4: 11211, 5: 12000} {
		f, err := pr.FDs.Get(fd)
		if err != nil {
			t.Fatalf("fd %d: %v", fd, err)
		}
		sk, ok := f.Special.(*netstack.Socket)
		if !ok {
			t.Fatalf("fd %d: not a socket", fd)
		}
		if sk.Port() != wantPort {
			t.Errorf("fd %d bound to %d, want %d", fd, sk.Port(), wantPort)
		}
	}
	sk := func(fd int) *netstack.Socket {
		f, _ := pr.FDs.Get(fd)
		return f.Special.(*netstack.Socket)
	}
	if !sk(5).Listening() || sk(5).BacklogMax() != 16 {
		t.Errorf("fd 5: listener state not recreated")
	}
	// Round trip: the recreated table manifests back to the same env
	// (skipping the three console fds NewProcess pre-installs).
	got := replay.CaptureEnv(pr)
	if len(got) < 3 {
		t.Fatalf("captured env too short: %+v", got)
	}
	if !reflect.DeepEqual(got[3:], env[1:]) {
		t.Errorf("capture of recreated env:\nwant %+v\ngot  %+v", env[1:], got[3:])
	}
}

// TestReplayDefersBusySlot replays a hand-built trace with two calls
// landing on the same slot at the same instant: the second must defer
// until the first completes, and both must complete.
func TestReplayDefersBusySlot(t *testing.T) {
	at := int64(10 * sim.Microsecond)
	tr := &replay.Trace{
		Version: replay.TraceVersion, Case: "hand", Seed: 1,
		Env: []replay.EnvFD{{FD: 3, Kind: "file", Path: "/data/x", Size: 4096, Flags: fs.O_RDWR}},
		Entries: []replay.Entry{
			{Trace: 1, NR: syscalls.SYS_pwrite64, Slot: 0, Gen: 1, At: at,
				Args: [6]uint64{3, 64, 0}, BufLen: 64},
			{Trace: 2, NR: syscalls.SYS_pwrite64, Slot: 0, Gen: 1, At: at,
				Args: [6]uint64{3, 64, 64}, BufLen: 64},
			{Trace: 3, NR: syscalls.SYS_pread64, Slot: 1, Gen: 1, At: at + 1000,
				Args: [6]uint64{3, 64, 0}, BufLen: 64},
		},
	}
	rep, err := replay.Run(tr, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Matches {
		t.Fatalf("counts diverge:\n%s", rep.Render())
	}
	if rep.Completed != 3 {
		t.Errorf("completed %d, want 3", rep.Completed)
	}
	if rep.Deferred != 1 {
		t.Errorf("deferred %d, want 1 (same-slot same-instant collision)", rep.Deferred)
	}
	if rep.Injected != 3 {
		t.Errorf("injected %d, want 3", rep.Injected)
	}
}

// TestReplayPreservesTraceIDs checks injected calls carry their
// recorded trace IDs through the pipeline (the report's counts are
// keyed off completions of those IDs' syscall numbers).
func TestReplayPreservesTraceIDs(t *testing.T) {
	tr := &replay.Trace{
		Version: replay.TraceVersion, Case: "hand", Seed: 1,
		Entries: []replay.Entry{
			{Trace: 42, NR: syscalls.SYS_getrusage, Slot: 0, Gen: 1, At: int64(sim.Microsecond)},
		},
	}
	rep, err := replay.Run(tr, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Matches || rep.Completed != 1 {
		t.Fatalf("single-call replay failed:\n%s", rep.Render())
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	tr := &replay.Trace{Version: replay.TraceVersion + 1, Case: "x"}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Load(path); err == nil {
		t.Error("future-version trace loaded clean")
	}
}
