// Package replay implements syscall trace record and replay — Kerncap's
// extract-and-isolate idea (PAPERS.md) applied to the GPU syscall
// stream.
//
// Record mode taps the GENESYS layer (core.Recorder): every slot that
// flips to ready is captured as one trace entry — trace ID, syscall
// number, slot/wavefront/generation coordinates, arguments, payload
// buffer and the virtual instant — together with a manifest of the
// bound process's file descriptor table (the environment the calls
// reference by fd number).
//
// Replay mode re-drives a captured stream against a fresh machine's
// kernel pipeline with no workload: the environment fds are recreated
// at their recorded indexes, then each entry is injected into its
// recorded syscall-area slot at its recorded instant
// (core.InjectReady) and its doorbell interrupt re-rung
// (core.RingDoorbell). The interrupt handler, coalescing machinery,
// workqueue and OS workers process the injected slots exactly as they
// would GPU-populated ones — turning any big application run into a
// cheap, repeatable harness for coalescing/worker-count sweeps. Slots
// still busy with an earlier call (the sweep configuration is slower
// than the recording) queue per slot and re-inject as their
// predecessors complete.
package replay

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"genesys/internal/core"
	"genesys/internal/fs"
	"genesys/internal/netstack"
	"genesys/internal/oskern"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// TraceVersion is the trace file format version.
const TraceVersion = 1

// EnvFD describes one open descriptor of the recorded process — the
// environment replay must recreate so replayed calls that name fds
// resolve to equivalent objects at the same indexes.
type EnvFD struct {
	FD    int    `json:"fd"`
	Kind  string `json:"kind"` // console | file | dgram | stream-listener | stream
	Path  string `json:"path,omitempty"`
	Size  int64  `json:"size,omitempty"`
	Pos   int64  `json:"pos,omitempty"`
	Flags int    `json:"flags,omitempty"`
	Port  int    `json:"port,omitempty"`
	// Backlog is a stream listener's backlog capacity.
	Backlog int `json:"backlog,omitempty"`
}

// Entry is one recorded syscall: the GPU→kernel hand-off of a ready
// slot.
type Entry struct {
	Trace    uint64    `json:"trace"`
	NR       int       `json:"nr"`
	Name     string    `json:"name"`
	Slot     int       `json:"slot"`
	Wave     int       `json:"wave"`
	Gen      uint64    `json:"gen"`
	Blocking bool      `json:"blocking,omitempty"`
	At       int64     `json:"at_ns"`
	Args     [6]uint64 `json:"args"`
	BufLen   int       `json:"buf_len,omitempty"`
	// Buf holds the request payload, base64, only when non-empty and
	// meaningful at injection time (e.g. open's path, write's data).
	Buf string `json:"buf,omitempty"`
}

// Trace is a recorded syscall stream plus the recipe that made it.
type Trace struct {
	Version int     `json:"version"`
	Case    string  `json:"case"`
	Seed    int64   `json:"seed"`
	Env     []EnvFD `json:"env"`
	Entries []Entry `json:"entries"`
}

// PerNR returns recorded call counts by syscall number, sorted by NR.
func (t *Trace) PerNR() []NRCount {
	counts := make(map[int]int)
	for _, e := range t.Entries {
		counts[e.NR]++
	}
	return sortedNRCounts(counts, nil)
}

// Write encodes the trace to a file as JSON.
func (t *Trace) Write(path string) error {
	b, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads and version-checks a trace file.
func Load(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("replay: decode %s: %w", path, err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("replay: trace version %d, want %d", t.Version, TraceVersion)
	}
	return &t, nil
}

// --- record ----------------------------------------------------------------

// Recorder captures the syscall stream of a live run. Attach it with
// Genesys.SetRecorder before the run; it observes ready slots and costs
// nothing in virtual time, so a recorded run stays bit-identical to an
// unrecorded one.
type Recorder struct {
	entries []Entry
	done    int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SyscallReady implements core.Recorder.
func (r *Recorder) SyscallReady(ev core.SyscallEvent) {
	e := Entry{
		Trace: ev.Trace, NR: ev.NR, Name: syscalls.Name(ev.NR),
		Slot: ev.Slot, Wave: ev.Wave, Gen: ev.Gen, Blocking: ev.Blocking,
		At: int64(ev.At), Args: ev.Args, BufLen: len(ev.Buf),
	}
	// Store payloads only when non-zero: request buffers are often
	// pre-sized output windows (read, recvfrom) whose contents are
	// meaningless at injection time; BufLen alone re-sizes those.
	if nonZero(ev.Buf) {
		e.Buf = base64.StdEncoding.EncodeToString(ev.Buf)
	}
	r.entries = append(r.entries, e)
}

// SyscallDone implements core.Recorder.
func (r *Recorder) SyscallDone(core.SyscallEvent) { r.done++ }

func nonZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return true
		}
	}
	return false
}

// Len returns the number of recorded entries.
func (r *Recorder) Len() int { return len(r.entries) }

// Finalize assembles the trace: the recorded stream plus the fd-table
// manifest of the environment the calls referenced. Capture env with
// CaptureEnv after workload setup but before the run, so descriptors
// the replayed stream itself opens are not doubled by RecreateEnv.
func (r *Recorder) Finalize(caseName string, seed int64, env []EnvFD) *Trace {
	return &Trace{Version: TraceVersion, Case: caseName, Seed: seed, Env: env, Entries: r.entries}
}

// CaptureEnv manifests the process's open descriptors.
func CaptureEnv(pr *oskern.Process) []EnvFD {
	var env []EnvFD
	pr.FDs.ForEach(func(fd int, f *fs.File) {
		e := EnvFD{FD: fd, Path: f.Path, Flags: f.Flags(), Pos: f.Pos()}
		switch {
		case f.Path == "/dev/console":
			e.Kind = "console"
		case f.Special != nil:
			sk, ok := f.Special.(*netstack.Socket)
			if !ok {
				return // unknown special descriptor: not replayable
			}
			e.Port = sk.Port()
			switch {
			case sk.Type() == netstack.Dgram:
				e.Kind = "dgram"
			case sk.Listening():
				e.Kind = "stream-listener"
				e.Backlog = sk.BacklogMax()
			default:
				e.Kind = "stream"
			}
		default:
			e.Kind = "file"
			if f.Node != nil {
				e.Size = f.Node.Size()
			}
		}
		env = append(env, e)
	})
	return env
}

// RecreateEnv rebuilds the recorded descriptor environment in pr's fd
// table at the recorded indexes. Files are recreated at their recorded
// size (zero-filled — replay reproduces control flow and I/O volume,
// not payload content); sockets are recreated bound to their recorded
// ports. Because fd allocation is deterministic lowest-free, calls the
// replayed stream itself opens then receive the same numbers they got
// during recording.
func RecreateEnv(m *platform.Machine, pr *oskern.Process, env []EnvFD) error {
	for _, e := range env {
		var f *fs.File
		switch e.Kind {
		case "console":
			continue // NewProcess wired fds 0-2 already
		case "file":
			if _, err := m.VFS.Resolve(e.Path); err != nil {
				if werr := m.WriteFile(e.Path, make([]byte, e.Size)); werr != nil {
					return fmt.Errorf("replay: env fd %d: create %s: %w", e.FD, e.Path, werr)
				}
			}
			var err error
			f, err = m.VFS.Open(e.Path, e.Flags&^fs.O_TRUNC)
			if err != nil {
				return fmt.Errorf("replay: env fd %d: open %s: %w", e.FD, e.Path, err)
			}
			if e.Pos > 0 {
				if _, err := f.Lseek(e.Pos, fs.SeekSet); err != nil {
					return fmt.Errorf("replay: env fd %d: seek: %w", e.FD, err)
				}
			}
		case "dgram":
			sk := m.Net.NewSocket()
			if err := sk.Bind(e.Port); err != nil {
				return fmt.Errorf("replay: env fd %d: bind %d: %w", e.FD, e.Port, err)
			}
			f = &fs.File{Special: sk, Path: e.Path}
		case "stream-listener":
			sk := m.Net.NewStreamSocket()
			if err := sk.Bind(e.Port); err != nil {
				return fmt.Errorf("replay: env fd %d: bind %d: %w", e.FD, e.Port, err)
			}
			if err := sk.Listen(e.Backlog); err != nil {
				return fmt.Errorf("replay: env fd %d: listen: %w", e.FD, err)
			}
			f = &fs.File{Special: sk, Path: e.Path}
		case "stream":
			// An established connection cannot be re-established without
			// its peer; recreate the endpoint unconnected so the fd index
			// stays occupied and calls on it fail the way a torn-down
			// connection would.
			f = &fs.File{Special: m.Net.NewStreamSocket(), Path: e.Path}
		default:
			return fmt.Errorf("replay: env fd %d: unknown kind %q", e.FD, e.Kind)
		}
		if err := pr.FDs.InstallAt(e.FD, f); err != nil {
			return fmt.Errorf("replay: env fd %d: install: %w", e.FD, err)
		}
	}
	return nil
}

// --- replay ----------------------------------------------------------------

// Options tune the replay machine — the sweep axes. Zero values keep
// the default configuration.
type Options struct {
	// Seed overrides the engine seed (0 keeps the trace's).
	Seed int64
	// Workers overrides the initial OS worker-thread count.
	Workers int
	// CoalesceWindow/CoalesceMax override the interrupt coalescing
	// knobs. CoalesceMax is only applied when > 0.
	CoalesceWindow sim.Time
	CoalesceMax    int
}

// NRCount is one syscall number's recorded/replayed call accounting.
type NRCount struct {
	NR        int    `json:"nr"`
	Name      string `json:"name"`
	Recorded  int    `json:"recorded"`
	Completed int    `json:"completed"`
}

func sortedNRCounts(recorded, completed map[int]int) []NRCount {
	nrs := make(map[int]bool)
	for nr := range recorded {
		nrs[nr] = true
	}
	for nr := range completed {
		nrs[nr] = true
	}
	keys := make([]int, 0, len(nrs))
	for nr := range nrs {
		keys = append(keys, nr)
	}
	sort.Ints(keys)
	out := make([]NRCount, 0, len(keys))
	for _, nr := range keys {
		out = append(out, NRCount{
			NR: nr, Name: syscalls.Name(nr),
			Recorded: recorded[nr], Completed: completed[nr],
		})
	}
	return out
}

// Report summarizes one replay run.
type Report struct {
	Case     string `json:"case"`
	Seed     int64  `json:"seed"`
	Entries  int    `json:"entries"`
	Injected int    `json:"injected"`
	// Deferred counts entries whose recorded slot was still busy at
	// their instant and had to wait for the predecessor to complete.
	Deferred  int       `json:"deferred"`
	Completed int       `json:"completed"`
	PerNR     []NRCount `json:"per_nr"`
	// Matches reports whether every syscall number completed exactly
	// as many calls as were recorded — the replay-fidelity gate.
	Matches bool `json:"matches"`

	// Pipeline statistics of the replay machine, for sweeps.
	DurationNS   int64   `json:"duration_ns"`
	Workers      int     `json:"workers"`
	Batches      int64   `json:"batches"`
	BatchedWaves int64   `json:"batched_waves"`
	TasksRun     int64   `json:"tasks_run"`
	MeanUS       float64 `json:"mean_us"`
	P50US        float64 `json:"p50_us"`
	P95US        float64 `json:"p95_us"`
	P99US        float64 `json:"p99_us"`
}

// Render formats the report as a human-readable table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay of %q (seed %d): %d entries, %d injected (%d deferred), %d completed\n",
		r.Case, r.Seed, r.Entries, r.Injected, r.Deferred, r.Completed)
	fmt.Fprintf(&b, "pipeline: %v virtual, %d workers, %d batches (%d waves), %d tasks\n",
		sim.Time(r.DurationNS), r.Workers, r.Batches, r.BatchedWaves, r.TasksRun)
	fmt.Fprintf(&b, "latency: mean %.2fus p50 %.2fus p95 %.2fus p99 %.2fus\n",
		r.MeanUS, r.P50US, r.P95US, r.P99US)
	fmt.Fprintf(&b, "%-16s %9s %9s\n", "syscall", "recorded", "replayed")
	for _, c := range r.PerNR {
		mark := ""
		if c.Recorded != c.Completed {
			mark = "  MISMATCH"
		}
		fmt.Fprintf(&b, "%-16s %9d %9d%s\n", c.Name, c.Recorded, c.Completed, mark)
	}
	if r.Matches {
		b.WriteString("per-syscall counts match the recording\n")
	} else {
		b.WriteString("PER-SYSCALL COUNTS DIVERGE FROM THE RECORDING\n")
	}
	return b.String()
}

// driver re-drives one trace against a machine. It implements
// core.Recorder on the replay side: completions drain the per-slot
// queues of entries that found their slot busy.
type driver struct {
	m   *platform.Machine
	g   *core.Genesys
	rec map[int]int // recorded calls per NR
	cmp map[int]int // completed calls per NR

	waiting  map[int][]Entry // slot → entries awaiting a free slot
	injected int
	deferred int
	failed   []string
}

func (d *driver) SyscallReady(core.SyscallEvent) {}

func (d *driver) SyscallDone(ev core.SyscallEvent) {
	d.cmp[ev.NR]++
	if q := d.waiting[ev.Slot]; len(q) > 0 {
		next := q[0]
		d.waiting[ev.Slot] = q[1:]
		d.inject(next)
	}
}

// inject places one entry into its slot and rings its doorbell; a busy
// slot defers the entry until the occupant completes.
func (d *driver) inject(e Entry) {
	req := syscalls.Request{NR: e.NR, Args: e.Args, Trace: e.Trace}
	if e.Buf != "" {
		buf, err := base64.StdEncoding.DecodeString(e.Buf)
		if err != nil {
			d.failed = append(d.failed, fmt.Sprintf("trace %d: bad payload: %v", e.Trace, err))
			return
		}
		req.Buf = buf
	} else if e.BufLen > 0 {
		req.Buf = make([]byte, e.BufLen)
	}
	err := d.g.InjectReady(e.Slot, e.Gen, req)
	if err == core.ErrSlotBusy {
		d.deferred++
		d.waiting[e.Slot] = append(d.waiting[e.Slot], e)
		return
	}
	if err != nil {
		d.failed = append(d.failed, fmt.Sprintf("trace %d: %v", e.Trace, err))
		return
	}
	d.injected++
	d.g.RingDoorbell(e.Slot/d.m.Cfg.GPU.SIMDWidth, e.Gen)
}

// Run replays the trace against a freshly-built machine and reports
// per-syscall fidelity plus the pipeline statistics the sweep varies.
func Run(t *Trace, opt Options) (*Report, error) {
	cfg := platform.DefaultConfig()
	cfg.Seed = t.Seed
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	if opt.Workers > 0 {
		// Pin the pool: the kernel's concurrency-managed workqueue would
		// otherwise grow past the swept count under load.
		cfg.Kernel.Workers = opt.Workers
		cfg.Kernel.MaxWorkers = opt.Workers
	}
	if opt.CoalesceWindow > 0 || opt.CoalesceMax > 0 {
		cfg.Genesys.CoalesceWindow = opt.CoalesceWindow
		if opt.CoalesceMax > 0 {
			cfg.Genesys.CoalesceMax = opt.CoalesceMax
		}
	}
	m := platform.New(cfg)
	defer m.Shutdown()
	pr := m.NewProcess("replay")
	if err := RecreateEnv(m, pr, t.Env); err != nil {
		return nil, err
	}

	d := &driver{
		m: m, g: m.Genesys,
		rec:     make(map[int]int),
		cmp:     make(map[int]int),
		waiting: make(map[int][]Entry),
	}
	for _, e := range t.Entries {
		d.rec[e.NR]++
	}
	m.Genesys.SetRecorder(d)

	// Schedule every entry at its recorded instant. Entries are already
	// in capture order ((At, seq) order of the recording), so same-slot
	// entries inject oldest-first.
	for _, e := range t.Entries {
		e := e
		m.E.CallAt(sim.Time(e.At), func() { d.inject(e) })
	}
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if len(d.failed) > 0 {
		return nil, fmt.Errorf("replay: %d injection failure(s): %s",
			len(d.failed), strings.Join(d.failed, "; "))
	}

	rep := &Report{
		Case: t.Case, Seed: cfg.Seed,
		Entries: len(t.Entries), Injected: d.injected,
		Deferred: d.deferred,
		PerNR:    sortedNRCounts(d.rec, d.cmp),
		Matches:  true,

		DurationNS:   int64(m.E.Now()),
		Workers:      m.OS.Workers(),
		Batches:      m.Genesys.Batches.Value(),
		BatchedWaves: m.Genesys.BatchedWaves.Value(),
		TasksRun:     m.OS.TasksRun.Value(),
	}
	for _, c := range rep.PerNR {
		rep.Completed += c.Completed
		if c.Recorded != c.Completed {
			rep.Matches = false
		}
	}
	if tr := m.Genesys.Tracer(); tr != nil && tr.Calls() > 0 {
		rep.MeanUS = tr.TotalMean()
		q := tr.Total().Percentiles(50, 95, 99)
		rep.P50US, rep.P95US, rep.P99US = q[0], q[1], q[2]
	}
	return rep, nil
}
