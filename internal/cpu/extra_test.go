package cpu

import (
	"testing"

	"genesys/internal/sim"
)

func TestDefaultsAndAccessors(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Cores != 4 || cfg.ClockMHz != 2700 {
		t.Fatalf("defaults = %+v", cfg)
	}
	e := sim.NewEngine(1)
	c := New(e, cfg)
	if c.Config().Cores != 4 || c.Cores().Total() != 4 {
		t.Fatal("accessors")
	}
	if c.UtilBin() != cfg.UtilBin {
		t.Fatal("util bin")
	}
	if c.MeanUtilization(0) != 0 {
		t.Fatal("mean utilization over empty window")
	}
	// Zero-duration exec is free and does not touch the ledger.
	e.Spawn("t", func(p *sim.Proc) { c.Exec(p, 0, PrioNormal) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if c.BusyTotal() != 0 {
		t.Fatal("zero exec consumed time")
	}
	// Zero UtilBin falls back to a sane default; zero cores panics.
	_ = New(e, Config{Cores: 1, ClockMHz: 1000})
	defer func() {
		if recover() == nil {
			t.Fatal("zero cores did not panic")
		}
	}()
	New(e, Config{Cores: 0})
}

func TestExecChunkedDefaultChunk(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, DefaultConfig())
	e.Spawn("t", func(p *sim.Proc) {
		c.ExecChunked(p, 3*sim.Millisecond, 0, PrioNormal) // chunk defaults to 1ms
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if c.BusyTotal() != 3*sim.Millisecond {
		t.Fatalf("busy = %v", c.BusyTotal())
	}
}
