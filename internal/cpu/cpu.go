// Package cpu models the host CPU: a fixed number of cores that simulated
// threads compete for, with run-to-block scheduling, priority classes and
// a per-bin utilization ledger used to regenerate the paper's CPU
// utilization traces (Figure 14).
package cpu

import (
	"genesys/internal/obs"
	"genesys/internal/sim"
)

// Scheduling priorities. Higher values are granted cores first.
const (
	PrioNormal = 0  // application threads
	PrioKernel = 5  // OS worker threads processing GPU system calls
	PrioIRQ    = 10 // interrupt handling
)

// Config describes the CPU complex.
type Config struct {
	Cores    int
	ClockMHz int
	// UtilBin is the bin width of the utilization trace.
	UtilBin sim.Time
}

// DefaultConfig matches Table III: 4 cores at 2.7 GHz.
func DefaultConfig() Config {
	return Config{Cores: 4, ClockMHz: 2700, UtilBin: 10 * sim.Millisecond}
}

// CPU is the simulated processor complex.
type CPU struct {
	e     *sim.Engine
	cfg   Config
	cores *sim.Resource

	util      *sim.Series // busy nanoseconds per bin, summed over cores
	busyTotal sim.Time

	// busy/waiting, when attached, integrate core occupancy and the
	// number of threads queued for a core at each virtual instant.
	busy    *obs.UtilTrack
	waiting *obs.UtilTrack
}

// SetUtil attaches occupancy tracks: busy counts cores executing,
// waiting counts threads queued on core acquisition.
func (c *CPU) SetUtil(busy, waiting *obs.UtilTrack) {
	c.busy, c.waiting = busy, waiting
}

// New returns a CPU bound to e.
func New(e *sim.Engine, cfg Config) *CPU {
	if cfg.Cores <= 0 {
		panic("cpu: need at least one core")
	}
	if cfg.UtilBin <= 0 {
		cfg.UtilBin = 10 * sim.Millisecond
	}
	return &CPU{
		e:     e,
		cfg:   cfg,
		cores: sim.NewResource(e, "cpu-cores", cfg.Cores),
		util:  sim.NewSeries(cfg.UtilBin),
	}
}

// Config returns the CPU configuration.
func (c *CPU) Config() Config { return c.cfg }

// Cores exposes the underlying core resource (for tests and schedulers).
func (c *CPU) Cores() *sim.Resource { return c.cores }

// CyclesTime converts a cycle count at the configured clock to time.
func (c *CPU) CyclesTime(cycles int64) sim.Time {
	return sim.Time(cycles * 1000 / int64(c.cfg.ClockMHz))
}

// Exec runs d of computation on one core at the given priority, blocking
// until a core is available and the work completes. Scheduling is
// run-to-block: callers doing long computations should use ExecChunked so
// other threads can interleave.
func (c *CPU) Exec(p *sim.Proc, d sim.Time, prio int) {
	if d <= 0 {
		return
	}
	c.waiting.Add(c.e.Now(), 1)
	c.cores.Acquire(p, prio)
	start := c.e.Now()
	c.waiting.Add(start, -1)
	c.busy.Add(start, 1)
	p.Sleep(d)
	c.noteBusy(start, c.e.Now())
	c.busy.Add(c.e.Now(), -1)
	c.cores.Release()
}

// ExecChunked runs total of computation in chunk-sized timeslices,
// releasing the core between slices so equal-priority threads share cores
// fairly.
func (c *CPU) ExecChunked(p *sim.Proc, total, chunk sim.Time, prio int) {
	if chunk <= 0 {
		chunk = sim.Millisecond
	}
	for total > 0 {
		d := chunk
		if d > total {
			d = total
		}
		c.Exec(p, d, prio)
		total -= d
	}
}

func (c *CPU) noteBusy(t0, t1 sim.Time) {
	c.busyTotal += t1 - t0
	c.util.AddInterval(t0, t1, float64(t1-t0))
}

// BusyTotal returns total core-busy time accumulated so far.
func (c *CPU) BusyTotal() sim.Time { return c.busyTotal }

// UtilizationTrace returns per-bin utilization as a percentage of all
// cores (0–100).
func (c *CPU) UtilizationTrace() []float64 {
	bins := c.util.Bins()
	denom := float64(c.cfg.UtilBin) * float64(c.cfg.Cores)
	out := make([]float64, len(bins))
	for i, b := range bins {
		out[i] = 100 * b / denom
	}
	return out
}

// UtilBin returns the width of one utilization bin.
func (c *CPU) UtilBin() sim.Time { return c.cfg.UtilBin }

// MeanUtilization returns average utilization (percent of all cores)
// over [0, until].
func (c *CPU) MeanUtilization(until sim.Time) float64 {
	if until <= 0 {
		return 0
	}
	return 100 * float64(c.busyTotal) / (float64(until) * float64(c.cfg.Cores))
}
