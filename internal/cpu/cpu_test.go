package cpu

import (
	"testing"

	"genesys/internal/sim"
)

func TestExecSerializesOnOneCore(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Cores: 1, ClockMHz: 2700, UtilBin: sim.Millisecond})
	var done []sim.Time
	for i := 0; i < 3; i++ {
		e.Spawn("t", func(p *sim.Proc) {
			c.Exec(p, 100*sim.Microsecond, PrioNormal)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{100 * sim.Microsecond, 200 * sim.Microsecond, 300 * sim.Microsecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestExecParallelAcrossCores(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Cores: 4, ClockMHz: 2700, UtilBin: sim.Millisecond})
	for i := 0; i < 4; i++ {
		e.Spawn("t", func(p *sim.Proc) {
			c.Exec(p, sim.Millisecond, PrioNormal)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != sim.Millisecond {
		t.Fatalf("4 threads on 4 cores took %v, want 1ms", e.Now())
	}
	if c.BusyTotal() != 4*sim.Millisecond {
		t.Fatalf("busy total = %v, want 4ms", c.BusyTotal())
	}
}

func TestPriorityPreference(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Cores: 1, ClockMHz: 2700, UtilBin: sim.Millisecond})
	var order []string
	// Occupy the core, then queue a normal and a kernel-priority thread.
	e.Spawn("hog", func(p *sim.Proc) {
		c.Exec(p, 100*sim.Microsecond, PrioNormal)
	})
	e.Spawn("normal", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		c.Exec(p, 10*sim.Microsecond, PrioNormal)
		order = append(order, "normal")
	})
	e.Spawn("kernel", func(p *sim.Proc) {
		p.Sleep(20 * sim.Microsecond) // arrives later but outranks "normal"
		c.Exec(p, 10*sim.Microsecond, PrioKernel)
		order = append(order, "kernel")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "kernel" {
		t.Fatalf("order = %v, want kernel first", order)
	}
}

func TestExecChunkedFairness(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Cores: 1, ClockMHz: 2700, UtilBin: sim.Millisecond})
	var aDone, bDone sim.Time
	e.Spawn("a", func(p *sim.Proc) {
		c.ExecChunked(p, 10*sim.Millisecond, sim.Millisecond, PrioNormal)
		aDone = p.Now()
	})
	e.Spawn("b", func(p *sim.Proc) {
		c.ExecChunked(p, 10*sim.Millisecond, sim.Millisecond, PrioNormal)
		bDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Interleaved: both finish near 20ms rather than one at 10ms.
	if aDone < 18*sim.Millisecond || bDone < 18*sim.Millisecond {
		t.Fatalf("aDone=%v bDone=%v: chunked exec did not interleave", aDone, bDone)
	}
}

func TestUtilizationTrace(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Cores: 2, ClockMHz: 2700, UtilBin: sim.Millisecond})
	e.Spawn("t", func(p *sim.Proc) {
		c.Exec(p, sim.Millisecond, PrioNormal) // 1 of 2 cores busy for bin 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tr := c.UtilizationTrace()
	if len(tr) == 0 || tr[0] < 49 || tr[0] > 51 {
		t.Fatalf("utilization trace = %v, want bin0 ≈ 50%%", tr)
	}
	if got := c.MeanUtilization(sim.Millisecond); got < 49 || got > 51 {
		t.Fatalf("mean utilization = %v", got)
	}
}

func TestCyclesTime(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Cores: 1, ClockMHz: 2700, UtilBin: sim.Millisecond})
	// 2700 cycles at 2.7 GHz = 1 us.
	if got := c.CyclesTime(2700); got != sim.Microsecond {
		t.Fatalf("CyclesTime(2700) = %v, want 1us", got)
	}
}
