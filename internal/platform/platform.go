// Package platform assembles the full simulated machine the experiments
// run on: CPU, GPU, memory system, kernel, filesystems (tmpfs + SSD),
// network stack, framebuffer and the GENESYS layer — the counterpart of
// the paper's Table III testbed.
package platform

import (
	"fmt"

	"genesys/internal/blockdev"
	"genesys/internal/core"
	"genesys/internal/cpu"
	"genesys/internal/fault"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/mem"
	"genesys/internal/netstack"
	"genesys/internal/obs"
	"genesys/internal/oskern"
	"genesys/internal/sim"
	"genesys/internal/vmm"
)

// Config aggregates every subsystem's configuration.
type Config struct {
	Seed    int64
	CPU     cpu.Config
	GPU     gpu.Config
	Mem     mem.Config
	Kernel  oskern.Config
	VM      vmm.Config
	SSD     blockdev.Config
	Net     netstack.Config
	Genesys core.Config
	FB      fs.VScreenInfo

	// Faults, when non-nil, activates fault injection with the given
	// plan. Nil (the default) builds a machine whose behaviour is
	// bit-identical to one without the fault subsystem: the injector
	// exists (so metrics always render) but fires nothing and no
	// recovery machinery arms.
	Faults *fault.Plan

	// EventCap sizes the event-log ring (obs.DefaultEventCap when 0) —
	// long fleet runs wrap the default 1<<16 window and silently drop
	// the interesting early events.
	EventCap int
}

// DefaultConfig mirrors the paper's FX-9800P platform (Table III): 4 CPU
// cores @ 2.7 GHz, an 8-CU GCN3-like integrated GPU @ 758 MHz, 16 GB of
// shared DDR4, Linux-like kernel costs, an 8-channel SATA-class SSD and
// a UDP network stack.
func DefaultConfig() Config {
	return Config{
		Seed:    1,
		CPU:     cpu.DefaultConfig(),
		GPU:     gpu.DefaultConfig(),
		Mem:     mem.DefaultConfig(),
		Kernel:  oskern.DefaultConfig(),
		VM:      vmm.DefaultConfig(),
		SSD:     blockdev.DefaultConfig(),
		Net:     netstack.DefaultConfig(),
		Genesys: core.DefaultConfig(),
		FB:      fs.VScreenInfo{XRes: 1024, YRes: 768, BPP: 32},
	}
}

// DiscreteGPUConfig models the same machine with a discrete PCIe GPU
// instead of the integrated one — the paper notes GENESYS "is not
// specific to integrated GPUs, and generalizes to discrete GPUs" (§VI).
// The differences that matter to GENESYS: a bigger, faster GPU; syscall
// area traffic and interrupts that cross PCIe (higher atomic and
// delivery latencies); and a costlier wavefront resume path.
func DiscreteGPUConfig() Config {
	cfg := DefaultConfig()
	cfg.GPU.CUs = 36
	cfg.GPU.ClockMHz = 1250
	cfg.GPU.InterruptLatency = 15 * sim.Microsecond // PCIe MSI
	cfg.GPU.ResumeLatency = 30 * sim.Microsecond    // doorbell across PCIe
	// Atomics on host-visible memory now pay a PCIe round trip.
	cfg.Mem.CmpSwapTime = sim.Micros(4.8)
	cfg.Mem.SwapTime = sim.Micros(4.4)
	cfg.Mem.AtomicLoadTime = sim.Micros(3.6)
	cfg.Mem.LineWriteTime = 900 * sim.Nanosecond
	return cfg
}

// Machine is one assembled system.
type Machine struct {
	Cfg Config

	E       *sim.Engine
	CPU     *cpu.CPU
	GPU     *gpu.Device
	Mem     *mem.System
	VFS     *fs.VFS
	Tmpfs   *fs.Tmpfs
	SSDFS   *fs.SSDFS
	SSD     *blockdev.SSD
	Net     *netstack.Stack
	OS      *oskern.OS
	Genesys *core.Genesys
	FB      *fs.Framebuffer

	// Inject is the machine's fault injector (always present; inert when
	// Cfg.Faults is nil). Its plan view is served at /sys/genesys/faults.
	Inject *fault.Injector

	// Obs is the machine's observability layer: the metrics registry
	// every subsystem publishes into (served at /sys/genesys/metrics) and
	// the structured event log (disabled until Obs.Events.SetEnabled).
	Obs *obs.Observer
}

// New builds a machine: engine, substrates, kernel namespaces (/dev,
// /proc, /sys, /tmp on tmpfs, /data on the SSD) and the GENESYS layer.
func New(cfg Config) *Machine {
	e := sim.NewEngine(cfg.Seed)
	m := &Machine{Cfg: cfg, E: e}
	m.Mem = mem.New(e, cfg.Mem)
	m.CPU = cpu.New(e, cfg.CPU)
	m.GPU = gpu.New(e, cfg.GPU)
	m.VFS = fs.NewVFS()
	m.Net = netstack.New(e, cfg.Net)
	pool := &vmm.Pool{Total: cfg.VM.PhysPages}
	m.OS = oskern.New(e, m.CPU, m.VFS, m.Net, pool, cfg.VM, cfg.Kernel)

	m.Tmpfs = fs.NewTmpfs()
	if _, err := m.Tmpfs.Mount(m.VFS, "/tmp"); err != nil {
		panic(err)
	}
	m.SSD = blockdev.New(e, cfg.SSD)
	m.SSDFS = fs.NewSSDFS(m.SSD)
	if _, err := m.SSDFS.Mount(m.VFS, "/data"); err != nil {
		panic(err)
	}
	m.FB = fs.NewFramebuffer(cfg.FB)
	m.OS.AddDevice("fb0", m.FB)

	m.OS.AttachGPU(m.GPU)
	m.Genesys = core.New(e, m.GPU, m.OS, m.Mem, m.CPU, cfg.Genesys)

	// The injector always exists (so its metrics register and
	// /sys/genesys/faults renders) but has an empty plan — and therefore
	// injects nothing and arms no recovery timers — unless Cfg.Faults is
	// set. Its RNG stream is salted off the machine seed so enabling
	// injection never perturbs the engine's own random stream.
	plan := fault.Plan{}
	if cfg.Faults != nil {
		plan = *cfg.Faults
	}
	m.Inject = fault.NewInjector(e, cfg.Seed^0x5DEECE66D, plan)
	m.Net.SetInjector(m.Inject)
	m.SSD.SetInjector(m.Inject)
	m.OS.SetInjector(m.Inject)
	m.Genesys.SetInjector(m.Inject)

	m.wireObservability(pool)
	return m
}

// wireObservability builds the machine's Observer: every subsystem's
// counters and gauges are published under "<subsystem>.<stat>" names,
// the event log is attached to the GPU, kernel and GENESYS layers, and
// the registry is served at /sys/genesys/metrics.
func (m *Machine) wireObservability(pool *vmm.Pool) {
	m.Obs = obs.New()
	reg := m.Obs.Metrics

	reg.RegisterCounter("gpu.kernels_launched", &m.GPU.KernelsLaunched)
	reg.RegisterCounter("gpu.wgs_dispatched", &m.GPU.WGsDispatched)
	reg.RegisterCounter("gpu.interrupts", &m.GPU.Interrupts)
	reg.RegisterCounter("gpu.halts", &m.GPU.Halts)
	reg.RegisterCounter("gpu.resumes", &m.GPU.Resumes)

	reg.RegisterCounter("genesys.invocations", &m.Genesys.Invocations)
	reg.RegisterCounter("genesys.batches", &m.Genesys.Batches)
	reg.RegisterCounter("genesys.batched_waves", &m.Genesys.BatchedWaves)
	reg.RegisterCounter("genesys.slot_conflicts", &m.Genesys.SlotConflicts)
	reg.RegisterGauge("genesys.outstanding", func() int64 {
		return int64(m.Genesys.Outstanding())
	})
	reg.RegisterCounter("genesys.orphans_adopted", &m.Genesys.OrphansAdopted)
	reg.RegisterCounter("genesys.orphans_completed", &m.Genesys.OrphansCompleted)
	reg.RegisterGauge("genesys.orphans_live", func() int64 {
		return int64(m.Genesys.Orphans())
	})

	reg.RegisterCounter("oskern.tasks_run", &m.OS.TasksRun)
	reg.RegisterCounter("oskern.syscalls", &m.OS.Syscalls)
	reg.RegisterGauge("oskern.queue_depth", func() int64 {
		return int64(m.OS.QueueDepth())
	})
	reg.RegisterGauge("oskern.workers", func() int64 {
		return int64(m.OS.Workers())
	})

	reg.RegisterCounter("mem.dram_accesses", &m.Mem.DRAMAccesses)
	reg.RegisterCounter("mem.l2_hits", &m.Mem.L2Hits)
	reg.RegisterCounter("mem.l2_misses", &m.Mem.L2Misses)
	reg.RegisterCounter("mem.atomic_ops", &m.Mem.AtomicOps)

	reg.RegisterGauge("cpu.busy_ns", func() int64 {
		return int64(m.CPU.BusyTotal())
	})

	reg.RegisterCounter("blockdev.bytes_read", &m.SSD.BytesRead)
	reg.RegisterCounter("blockdev.bytes_written", &m.SSD.BytesWritten)
	reg.RegisterCounter("blockdev.commands", &m.SSD.Commands)
	reg.RegisterCounter("blockdev.retries", &m.SSD.Retries)

	reg.RegisterCounter("netstack.sent", &m.Net.Sent)
	reg.RegisterCounter("netstack.dropped", &m.Net.Dropped)
	reg.RegisterCounter("netstack.stream_conns", &m.Net.StreamConns)
	reg.RegisterCounter("netstack.stream_refused", &m.Net.StreamRefused)
	reg.RegisterCounter("netstack.stream_bytes", &m.Net.StreamBytes)

	reg.RegisterCounter("fault.injected", &m.Inject.Injected)
	reg.RegisterCounter("fault.recovered", &m.Inject.Recovered)
	reg.RegisterCounter("fault.surfaced", &m.Inject.Surfaced)
	reg.RegisterCounter("genesys.retries", &m.Genesys.Retries)
	reg.RegisterCounter("genesys.irq_retransmits", &m.Genesys.IRQRetransmits)
	reg.RegisterCounter("oskern.redispatches", &m.OS.Redispatches)
	reg.RegisterCounter("oskern.orphans_reaped", &m.OS.OrphansReaped)

	reg.RegisterGauge("vmm.free_pages", func() int64 {
		return int64(pool.Free())
	})

	// Engine hot-path telemetry: how much scheduling work the simulation
	// itself performs, and how much of it rides the allocation-free fast
	// paths (ready queue, engine callbacks) versus full proc switches.
	reg.RegisterGauge("sim.events_total", func() int64 {
		return int64(m.E.Stats().Scheduled)
	})
	reg.RegisterGauge("sim.events_ready_fast", func() int64 {
		return int64(m.E.Stats().ReadyFast)
	})
	reg.RegisterGauge("sim.callbacks_run", func() int64 {
		return int64(m.E.Stats().CallbacksRun)
	})
	reg.RegisterGauge("sim.proc_switches_total", func() int64 {
		return int64(m.E.Stats().ProcSwitches)
	})
	reg.RegisterGauge("sim.timers_canceled", func() int64 {
		return int64(m.E.Stats().TimersCanceled)
	})
	// Two-level scheduler: far-future events park in the hierarchical
	// timer wheel and only migrate into the comparison heap near their
	// deadline, so heap size (and per-event log cost) tracks the
	// near-term working set rather than every armed timeout.
	reg.RegisterGauge("sim.wheel_scheduled", func() int64 {
		return int64(m.E.Stats().WheelScheduled)
	})
	reg.RegisterGauge("sim.wheel_canceled", func() int64 {
		return int64(m.E.Stats().WheelCanceled)
	})
	reg.RegisterGauge("sim.wheel_pending", func() int64 {
		return int64(m.E.WheelPending())
	})
	reg.RegisterGauge("sim.wheel_peak", func() int64 {
		return int64(m.E.Stats().WheelPeak)
	})
	reg.RegisterGauge("sim.events_pending", func() int64 {
		return int64(m.E.Pending())
	})
	reg.RegisterGauge("sim.procs_live", func() int64 {
		return int64(m.E.LiveProcs())
	})
	reg.RegisterGauge("sim.procs_reaped", func() int64 {
		return int64(m.E.Stats().ProcsReaped)
	})

	ev := m.Obs.Events
	if m.Cfg.EventCap > 0 {
		ev.SetCapacity(m.Cfg.EventCap)
	}
	reg.RegisterGauge("obs.events_dropped", ev.Dropped)
	reg.RegisterGauge("obs.events_rejected", ev.Rejected)
	ev.NameProcess(obs.PIDGPU, "gpu")
	ev.NameProcess(obs.PIDKernel, "os-kernel")
	ev.NameProcess(obs.PIDSyscalls, "genesys-syscalls")
	ev.NameProcess(obs.PIDIRQ, "irq")
	ev.NameProcess(obs.PIDWorkqueue, "workqueue")
	ev.NameProcess(obs.PIDBlockdev, "blockdev")
	ev.NameProcess(obs.PIDNetstack, "netstack")
	ev.NameProcess(obs.PIDUtil, "utilization")
	wavesPerCU := m.Cfg.GPU.WavefrontsPerCU
	for slot := 0; slot < m.GPU.HWWavefronts(); slot++ {
		ev.NameThread(obs.PIDGPU, slot,
			fmt.Sprintf("cu%d/wave%d", slot/wavesPerCU, slot%wavesPerCU))
	}
	m.GPU.SetEventLog(ev)
	m.OS.SetEventLog(ev)
	m.Genesys.SetEventLog(ev)
	m.SSD.SetEventLog(ev)
	m.Net.SetEventLog(ev)

	// Utilization timelines (§VII's parallelism-vs-coalescing evidence):
	// capped tracks report percent-of-capacity; uncapped ones (waiting
	// threads, busy workers — the pool grows on demand) scale to their
	// own peak.
	util := m.Obs.Util
	m.CPU.SetUtil(
		util.Track("cpu.busy_cores", m.Cfg.CPU.Cores),
		util.Track("cpu.runnable_waiting", 0))
	m.OS.SetUtil(util.Track("oskern.busy_workers", 0))
	m.GPU.SetUtilTracks(
		util.Track("gpu.busy_cus", m.Cfg.GPU.CUs),
		util.Track("gpu.resident_waves", m.GPU.HWWavefronts()),
		util.Track("gpu.halted_waves", 0),
		util.Track("gpu.polling_waves", 0))

	// A tracer is attached by default so /sys/genesys/critpath always
	// renders; tests and experiments may replace it.
	m.Genesys.SetTracer(core.NewTracer())

	// Exact end-to-end latency extremes (satellite of the percentile
	// views): the running tracer's min/max, readable without Perfetto.
	reg.RegisterGauge("genesys.total_lat_min_ns", func() int64 {
		if t := m.Genesys.Tracer(); t != nil {
			return int64(t.Total().Min() * 1000) // µs → ns
		}
		return 0
	})
	reg.RegisterGauge("genesys.total_lat_max_ns", func() int64 {
		if t := m.Genesys.Tracer(); t != nil {
			return int64(t.Total().Max() * 1000)
		}
		return 0
	})

	// The always-on flight recorder: the event log tees flow-tagged
	// spans to it (wired in obs.New), GENESYS feeds its per-call
	// detectors, the injector notifies it of surfaced faults, and the
	// snapshot sources below freeze the machine state views into each
	// diagnostic bundle at its trigger instant.
	fl := m.Obs.Flight
	m.Genesys.SetFlight(fl)
	m.Inject.SetSurfacedHook(func() { fl.NoteSurfaced(m.E.Now()) })
	fl.AddSnapshot("critpath", func() []byte {
		if t := m.Genesys.Tracer(); t != nil {
			return []byte(t.CritPath())
		}
		return []byte("no tracer attached\n")
	})
	fl.AddSnapshot("metrics", func() []byte { return []byte(reg.Render()) })
	fl.AddSnapshot("util", func() []byte { return []byte(util.Render(m.E.Now())) })
	reg.RegisterGauge("obs.flight_anomalies", fl.Anomalies)
	reg.RegisterGauge("obs.flight_bundles", func() int64 { return int64(fl.BundleCount()) })
	reg.RegisterGauge("obs.flight_chains", func() int64 { return int64(fl.Chains()) })
	reg.RegisterGauge("obs.flight_suppressed", fl.Suppressed)

	if m.OS.SysfsRoot != nil {
		m.OS.SysfsRoot.Add("metrics", &fs.GenFile{Gen: func() []byte {
			return []byte(reg.Render())
		}})
		m.OS.SysfsRoot.Add("faults", &fs.GenFile{Gen: func() []byte {
			return []byte(m.Inject.Render())
		}})
		m.OS.SysfsRoot.Add("util", &fs.GenFile{Gen: func() []byte {
			return []byte(util.Render(m.E.Now()))
		}})
		m.OS.SysfsRoot.Add("slo", &fs.GenFile{Gen: func() []byte {
			if s := m.Obs.SLO(); s != nil {
				return []byte(s.Render())
			}
			return []byte("no service-level report (no fleet run yet)\n")
		}})
		m.OS.SysfsRoot.Add("flight", &fs.GenFile{Gen: func() []byte {
			return []byte(fl.Render())
		}})
		m.OS.SysfsRoot.Add("top", &fs.GenFile{Gen: func() []byte {
			return []byte(m.RenderTop())
		}})
	}
}

// NewProcess creates a process and binds it as the GENESYS syscall
// context if none is bound yet.
func (m *Machine) NewProcess(name string) *oskern.Process {
	pr := m.OS.NewProcess(name)
	if m.Genesys.Process() == nil {
		m.Genesys.BindProcess(pr)
	}
	return pr
}

// WriteFile creates path with the given contents (setup helper; costs
// nothing in virtual time).
func (m *Machine) WriteFile(path string, data []byte) error {
	f, err := m.VFS.Open(path, fs.O_CREAT|fs.O_WRONLY|fs.O_TRUNC)
	if err != nil {
		return err
	}
	_, err = f.Pwrite(&fs.IOCtx{}, data, 0)
	return err
}

// ReadFile returns the contents of path (setup/verification helper).
func (m *Machine) ReadFile(path string) ([]byte, error) {
	f, err := m.VFS.Open(path, fs.O_RDONLY)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, f.Node.Size())
	n, err := f.Pread(&fs.IOCtx{}, buf, 0)
	return buf[:n], err
}

// Run drives the simulation to quiescence.
func (m *Machine) Run() error { return m.E.Run() }

// Shutdown reaps all simulation processes; call once per machine when
// done (e.g. deferred in tests).
func (m *Machine) Shutdown() { m.E.Shutdown() }

// Describe renders the Table III-style configuration summary.
func (m *Machine) Describe() string {
	g, c := m.Cfg.GPU, m.Cfg.CPU
	return fmt.Sprintf(
		"CPU: %d cores @ %d MHz | GPU: %d CUs @ %d MHz, SIMD-%d, %d wavefronts/CU (%d HW work-items) | "+
			"syscall area: %d KiB | DRAM: %.1f GB/s | GPU L2: %d lines | SSD: %d ch × %.0f MB/s | workers: %d",
		c.Cores, c.ClockMHz, g.CUs, g.ClockMHz, g.SIMDWidth, g.WavefrontsPerCU,
		m.GPU.HWWorkItems(), m.Genesys.AreaBytes()/1024, m.Cfg.Mem.DRAMBandwidth,
		m.Cfg.Mem.L2Lines, m.Cfg.SSD.Channels, m.Cfg.SSD.ChannelBandwidth*1000,
		m.Cfg.Kernel.Workers)
}
