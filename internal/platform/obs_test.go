package platform_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"genesys/internal/core"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// runBlockingWorkload drives a small kernel that issues blocking pwrites
// through GENESYS, exercising the GPU, kernel-worker and syscall paths.
func runBlockingWorkload(t *testing.T, m *platform.Machine, wait core.WaitMode) {
	t.Helper()
	pr := m.NewProcess("obs")
	f, err := m.VFS.Open("/tmp/obs", fs.O_CREAT|fs.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := pr.FDs.Install(f)
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "obs", WorkGroups: 4, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				for i := 0; i < 2; i++ {
					m.Genesys.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 16, uint64(32*w.WG.ID + 16*i)},
						Buf:  make([]byte, 16),
					}, core.Options{Blocking: true, Wait: wait,
						Ordering: core.Relaxed, Kind: core.Consumer})
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsRegistryAndSysfs(t *testing.T) {
	cfg := platform.DefaultConfig()
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	runBlockingWorkload(t, m, core.WaitPoll)

	snap := m.Obs.Metrics.Snapshot()
	for _, name := range []string{
		"genesys.invocations", "genesys.slot_conflicts", "gpu.resumes",
		"gpu.interrupts", "oskern.tasks_run", "mem.atomic_ops",
		"cpu.busy_ns", "blockdev.bytes_read", "netstack.sent", "vmm.free_pages",
		"fault.injected", "fault.recovered", "fault.surfaced",
		"genesys.retries", "genesys.irq_retransmits",
		"oskern.redispatches", "blockdev.retries",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("metric %q not registered", name)
		}
	}
	// Fault counters register even on a fault-free machine — and stay 0.
	for _, name := range []string{"fault.injected", "fault.recovered",
		"fault.surfaced", "genesys.retries", "genesys.irq_retransmits"} {
		if snap[name] != 0 {
			t.Fatalf("fault-free machine has %s = %d", name, snap[name])
		}
	}
	if snap["genesys.invocations"] != 8 {
		t.Fatalf("genesys.invocations = %d, want 8", snap["genesys.invocations"])
	}
	if snap["gpu.interrupts"] == 0 || snap["mem.atomic_ops"] == 0 {
		t.Fatal("hot-path counters stayed zero")
	}

	// The registry is served at /sys/genesys/metrics...
	data, err := m.ReadFile("/sys/genesys/metrics")
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "genesys.slot_conflicts ") ||
		!strings.Contains(out, "gpu.resumes ") {
		t.Fatalf("metrics file misses required entries:\n%s", out)
	}
	// ...sorted.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("metrics not sorted: %q before %q", lines[i-1], lines[i])
		}
	}

	// The legacy stats file now exports slot_conflicts too.
	stats, err := m.ReadFile("/sys/genesys/stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stats), "slot_conflicts ") {
		t.Fatalf("stats file misses slot_conflicts:\n%s", stats)
	}
}

func TestChromeTraceExportFromRun(t *testing.T) {
	cfg := platform.DefaultConfig()
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	m.Obs.Events.SetEnabled(true)
	runBlockingWorkload(t, m, core.WaitHaltResume) // halt-resume → halt spans too

	if m.Obs.Events.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if m.Obs.Events.Rejected() != 0 {
		t.Fatalf("%d negative-duration spans rejected", m.Obs.Events.Rejected())
	}

	var buf bytes.Buffer
	if err := m.Obs.Events.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	sawPID := map[int]bool{}
	sawCat := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Dur < 0 || e.Ts < 0 {
			t.Fatalf("negative ts/dur: %+v", e)
		}
		if e.Ph != "M" {
			sawPID[e.PID] = true
			sawCat[e.Cat] = true
		}
	}
	for _, pid := range []int{obs.PIDGPU, obs.PIDKernel, obs.PIDSyscalls} {
		if !sawPID[pid] {
			t.Fatalf("no events from pid %d; pids seen: %v", pid, sawPID)
		}
	}
	for _, cat := range []string{"gpu", "kernel", "syscall"} {
		if !sawCat[cat] {
			t.Fatalf("no %q events; cats seen: %v", cat, sawCat)
		}
	}
	// Syscall life-cycle spans carry the paper's Figure 2 phase names.
	var phases int
	for _, e := range parsed.TraceEvents {
		if e.Cat == "syscall" && e.Ph == "X" {
			phases++
		}
	}
	if phases < 8*4 { // 8 blocking calls × at least 4 spans each
		t.Fatalf("only %d syscall phase spans", phases)
	}
}

// TestFlowLinkedSyscallChain is the causal-tracing acceptance test: a
// traced blocking run must export, for at least one syscall, a flow
// chain ("s" start … "t" steps … "f" end, same flow id) whose member
// events span the GPU, IRQ, workqueue, kernel-worker and completion
// timelines — the arrow chain one syscall draws across rows in
// chrome://tracing.
func TestFlowLinkedSyscallChain(t *testing.T) {
	cfg := platform.DefaultConfig()
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	m.Obs.Events.SetEnabled(true)
	runBlockingWorkload(t, m, core.WaitHaltResume)

	var buf bytes.Buffer
	if err := m.Obs.Events.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
			ID  uint64 `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	type chain struct {
		start, end bool
		pids       map[int]bool
	}
	chains := map[uint64]*chain{}
	for _, e := range parsed.TraceEvents {
		if e.Ph != "s" && e.Ph != "t" && e.Ph != "f" {
			continue
		}
		c := chains[e.ID]
		if c == nil {
			c = &chain{pids: map[int]bool{}}
			chains[e.ID] = c
		}
		c.pids[e.PID] = true
		if e.Ph == "s" {
			c.start = true
		}
		if e.Ph == "f" {
			c.end = true
		}
	}
	if len(chains) == 0 {
		t.Fatal("trace contains no flow events at all")
	}
	want := []int{obs.PIDGPU, obs.PIDIRQ, obs.PIDWorkqueue,
		obs.PIDKernel, obs.PIDSyscalls}
	var full int
	for _, c := range chains {
		if !c.start || !c.end {
			continue
		}
		ok := true
		for _, pid := range want {
			if !c.pids[pid] {
				ok = false
				break
			}
		}
		if ok {
			full++
		}
	}
	if full == 0 {
		t.Fatalf("no flow chain crosses all of pids %v; %d chains seen", want, len(chains))
	}

	// The critpath view attributes (essentially) all end-to-end latency
	// to the five named stages.
	data, err := m.ReadFile("/sys/genesys/critpath")
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	i := strings.Index(out, "attributed ")
	if i < 0 {
		t.Fatalf("critpath lacks attribution footer:\n%s", out)
	}
	var pct float64
	if _, err := fmt.Sscanf(out[i:], "attributed %f%%", &pct); err != nil {
		t.Fatalf("unparseable attribution %q: %v", out[i:], err)
	}
	if pct < 95 {
		t.Fatalf("only %.1f%% of latency attributed, want >= 95%%:\n%s", pct, out)
	}
	if !strings.Contains(out, "pwrite64") {
		t.Fatalf("critpath table lacks pwrite64 row:\n%s", out)
	}
}
