package platform_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"genesys/internal/core"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// runBlockingWorkload drives a small kernel that issues blocking pwrites
// through GENESYS, exercising the GPU, kernel-worker and syscall paths.
func runBlockingWorkload(t *testing.T, m *platform.Machine, wait core.WaitMode) {
	t.Helper()
	pr := m.NewProcess("obs")
	f, err := m.VFS.Open("/tmp/obs", fs.O_CREAT|fs.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := pr.FDs.Install(f)
	m.E.Spawn("host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "obs", WorkGroups: 4, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				for i := 0; i < 2; i++ {
					m.Genesys.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 16, uint64(32*w.WG.ID + 16*i)},
						Buf:  make([]byte, 16),
					}, core.Options{Blocking: true, Wait: wait,
						Ordering: core.Relaxed, Kind: core.Consumer})
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsRegistryAndSysfs(t *testing.T) {
	cfg := platform.DefaultConfig()
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	runBlockingWorkload(t, m, core.WaitPoll)

	snap := m.Obs.Metrics.Snapshot()
	for _, name := range []string{
		"genesys.invocations", "genesys.slot_conflicts", "gpu.resumes",
		"gpu.interrupts", "oskern.tasks_run", "mem.atomic_ops",
		"cpu.busy_ns", "blockdev.bytes_read", "netstack.sent", "vmm.free_pages",
		"fault.injected", "fault.recovered", "fault.surfaced",
		"genesys.retries", "genesys.irq_retransmits",
		"oskern.redispatches", "blockdev.retries",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("metric %q not registered", name)
		}
	}
	// Fault counters register even on a fault-free machine — and stay 0.
	for _, name := range []string{"fault.injected", "fault.recovered",
		"fault.surfaced", "genesys.retries", "genesys.irq_retransmits"} {
		if snap[name] != 0 {
			t.Fatalf("fault-free machine has %s = %d", name, snap[name])
		}
	}
	if snap["genesys.invocations"] != 8 {
		t.Fatalf("genesys.invocations = %d, want 8", snap["genesys.invocations"])
	}
	if snap["gpu.interrupts"] == 0 || snap["mem.atomic_ops"] == 0 {
		t.Fatal("hot-path counters stayed zero")
	}

	// The registry is served at /sys/genesys/metrics...
	data, err := m.ReadFile("/sys/genesys/metrics")
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "genesys.slot_conflicts ") ||
		!strings.Contains(out, "gpu.resumes ") {
		t.Fatalf("metrics file misses required entries:\n%s", out)
	}
	// ...sorted.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("metrics not sorted: %q before %q", lines[i-1], lines[i])
		}
	}

	// The legacy stats file now exports slot_conflicts too.
	stats, err := m.ReadFile("/sys/genesys/stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stats), "slot_conflicts ") {
		t.Fatalf("stats file misses slot_conflicts:\n%s", stats)
	}
}

func TestChromeTraceExportFromRun(t *testing.T) {
	cfg := platform.DefaultConfig()
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	m.Obs.Events.SetEnabled(true)
	runBlockingWorkload(t, m, core.WaitHaltResume) // halt-resume → halt spans too

	if m.Obs.Events.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if m.Obs.Events.Rejected() != 0 {
		t.Fatalf("%d negative-duration spans rejected", m.Obs.Events.Rejected())
	}

	var buf bytes.Buffer
	if err := m.Obs.Events.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	sawPID := map[int]bool{}
	sawCat := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Dur < 0 || e.Ts < 0 {
			t.Fatalf("negative ts/dur: %+v", e)
		}
		if e.Ph != "M" {
			sawPID[e.PID] = true
			sawCat[e.Cat] = true
		}
	}
	for _, pid := range []int{obs.PIDGPU, obs.PIDKernel, obs.PIDSyscalls} {
		if !sawPID[pid] {
			t.Fatalf("no events from pid %d; pids seen: %v", pid, sawPID)
		}
	}
	for _, cat := range []string{"gpu", "kernel", "syscall"} {
		if !sawCat[cat] {
			t.Fatalf("no %q events; cats seen: %v", cat, sawCat)
		}
	}
	// Syscall life-cycle spans carry the paper's Figure 2 phase names.
	var phases int
	for _, e := range parsed.TraceEvents {
		if e.Cat == "syscall" && e.Ph == "X" {
			phases++
		}
	}
	if phases < 8*4 { // 8 blocking calls × at least 4 spans each
		t.Fatalf("only %d syscall phase spans", phases)
	}
}
