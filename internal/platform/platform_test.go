package platform

import (
	"strings"
	"testing"
)

func TestMachineAssembly(t *testing.T) {
	m := New(DefaultConfig())
	defer m.Shutdown()
	// Every subsystem wired.
	if m.E == nil || m.CPU == nil || m.GPU == nil || m.Mem == nil ||
		m.VFS == nil || m.Tmpfs == nil || m.SSDFS == nil || m.SSD == nil ||
		m.Net == nil || m.OS == nil || m.Genesys == nil || m.FB == nil {
		t.Fatal("incomplete machine")
	}
	// Standard namespaces present.
	for _, p := range []string{"/tmp", "/data", "/dev", "/proc", "/sys/genesys"} {
		if _, err := m.VFS.ResolveDir(p); err != nil {
			t.Fatalf("missing %s: %v", p, err)
		}
	}
	if _, err := m.VFS.Resolve("/dev/fb0"); err != nil {
		t.Fatal("framebuffer not mounted")
	}
	if m.OS.GPU != m.GPU {
		t.Fatal("GPU not attached to the kernel")
	}
}

func TestProcessBindingDefaultsToFirst(t *testing.T) {
	m := New(DefaultConfig())
	defer m.Shutdown()
	a := m.NewProcess("a")
	b := m.NewProcess("b")
	if m.Genesys.Process() != a {
		t.Fatal("first process should be the default GENESYS binding")
	}
	if a.PID == b.PID {
		t.Fatal("pid collision")
	}
}

func TestWriteReadFileHelpers(t *testing.T) {
	m := New(DefaultConfig())
	defer m.Shutdown()
	if err := m.WriteFile("/tmp/x", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReadFile("/tmp/x")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if err := m.WriteFile("/nonexistent/x", nil); err == nil {
		t.Fatal("write into missing dir should fail")
	}
	if _, err := m.ReadFile("/tmp/missing"); err == nil {
		t.Fatal("read of missing file should fail")
	}
}

func TestDescribe(t *testing.T) {
	m := New(DefaultConfig())
	defer m.Shutdown()
	d := m.Describe()
	for _, want := range []string{"4 cores", "8 CUs", "20480", "1280 KiB"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe() missing %q:\n%s", want, d)
		}
	}
}
