package platform_test

import (
	"strings"
	"testing"

	"genesys/internal/core"
	"genesys/internal/obs"
	"genesys/internal/platform"
)

// TestFlightWiringAndSysfs: every machine carries an always-on flight
// recorder — fed by the event log's tee even with tracing disabled —
// whose state is exported as gauges and at /sys/genesys/flight, next
// to the /sys/genesys/top dashboard.
func TestFlightWiringAndSysfs(t *testing.T) {
	m := platform.New(platform.DefaultConfig())
	t.Cleanup(m.Shutdown)
	runBlockingWorkload(t, m, core.WaitPoll)

	// Tracing was never enabled, yet the recorder saw the causal chains.
	if m.Obs.Events.Len() != 0 {
		t.Fatalf("event ring enabled unexpectedly: %d events", m.Obs.Events.Len())
	}
	if m.Obs.Flight.Chains() == 0 {
		t.Fatal("flight recorder saw no chains from the tee")
	}
	snap := m.Obs.Metrics.Snapshot()
	for _, name := range []string{"obs.flight_anomalies", "obs.flight_bundles",
		"obs.flight_chains", "obs.flight_suppressed"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("gauge %q not registered", name)
		}
	}
	if snap["obs.flight_chains"] == 0 {
		t.Fatal("obs.flight_chains gauge is zero")
	}
	data, err := m.ReadFile("/sys/genesys/flight")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "flight recorder") {
		t.Fatalf("flight view:\n%s", data)
	}
	top, err := m.ReadFile("/sys/genesys/top")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"genesys top", "util ", "engine ",
		"kernel ", "slots ", "calls ", "flight "} {
		if !strings.Contains(string(top), want) {
			t.Fatalf("top view lacks %q:\n%s", want, top)
		}
	}
}

// TestEventCapConfig: Config.EventCap resizes the event ring; 0 keeps
// the default.
func TestEventCapConfig(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.EventCap = 128
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	if got := m.Obs.Events.Capacity(); got != 128 {
		t.Fatalf("capacity = %d, want 128", got)
	}
	m2 := platform.New(platform.DefaultConfig())
	t.Cleanup(m2.Shutdown)
	if got := m2.Obs.Events.Capacity(); got != obs.DefaultEventCap {
		t.Fatalf("default capacity = %d, want %d", got, obs.DefaultEventCap)
	}
}
