package platform

import (
	"fmt"
	"strings"

	"genesys/internal/core"
)

// RenderTop produces the /sys/genesys/top view: a one-screen live
// dashboard of the machine at the current virtual-time instant —
// utilization, engine scheduling mix, in-flight syscall slots by
// lifecycle phase, syscall latency summary and SLO-burn/flight state.
// gsh's `top` command refreshes it on a virtual-time interval. The
// render is a pure function of machine state (deterministic for a fixed
// seed and instant).
func (m *Machine) RenderTop() string {
	now := m.E.Now()
	var b strings.Builder
	fmt.Fprintf(&b, "genesys top — t=%v\n", now)

	fmt.Fprintf(&b, "util ")
	for _, t := range m.Obs.Util.Tracks() {
		fmt.Fprintf(&b, " %s=%d", shortTrack(t.Name()), t.Cur())
	}
	b.WriteString("\n")

	st := m.E.Stats()
	fmt.Fprintf(&b, "engine  events=%d ready-fast=%d callbacks=%d switches=%d pending=%d procs=%d\n",
		st.Scheduled, st.ReadyFast, st.CallbacksRun, st.ProcSwitches,
		m.E.Pending(), m.E.LiveProcs())
	fmt.Fprintf(&b, "wheel   scheduled=%d canceled=%d pending=%d peak=%d\n",
		st.WheelScheduled, st.WheelCanceled, m.E.WheelPending(), st.WheelPeak)

	fmt.Fprintf(&b, "kernel  workers=%d idle=%d queue=%d tasks=%d\n",
		m.OS.Workers(), m.OS.IdleWorkers(), m.OS.QueueDepth(), m.OS.TasksRun.Value())

	counts := m.Genesys.SlotStateCounts()
	fmt.Fprintf(&b, "slots   free=%d populating=%d ready=%d processing=%d finished=%d outstanding=%d\n",
		counts[core.SlotFree], counts[core.SlotPopulating], counts[core.SlotReady],
		counts[core.SlotProcessing], counts[core.SlotFinished], m.Genesys.Outstanding())

	fmt.Fprintf(&b, "calls   invocations=%d batches=%d retransmits=%d",
		m.Genesys.Invocations.Value(), m.Genesys.Batches.Value(),
		m.Genesys.IRQRetransmits.Value())
	if t := m.Genesys.Tracer(); t != nil && t.Calls() > 0 {
		h := t.Total()
		q := h.Percentiles(50, 99)
		fmt.Fprintf(&b, " traced=%d p50=%.2fus p99=%.2fus min=%.2fus max=%.2fus",
			t.Calls(), q[0], q[1], h.Min(), h.Max())
		if a := t.Aborted(); a > 0 {
			fmt.Fprintf(&b, " aborted=%d", a)
		}
	}
	b.WriteString("\n")

	fl := m.Obs.Flight
	n, bad := fl.BurnState()
	burnPct := 0.0
	if n > 0 {
		burnPct = 100 * float64(bad) / float64(n)
	}
	fmt.Fprintf(&b, "flight  chains=%d anomalies=%d bundles=%d burn=%d/%d (%.1f%% bad)\n",
		fl.Chains(), fl.Anomalies(), fl.BundleCount(), bad, n, burnPct)
	if reason, detail, at := fl.Last(); reason != "" {
		fmt.Fprintf(&b, "        last %s at %v: %s\n", reason, at, detail)
	}
	return b.String()
}

// shortTrack compresses a track name for the one-line util row
// ("gpu.busy_cus" → "cus", "oskern.busy_workers" → "workers").
func shortTrack(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimPrefix(name, "busy_")
	name = strings.TrimPrefix(name, "runnable_")
	return name
}
