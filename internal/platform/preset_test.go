package platform

import (
	"testing"

	"genesys/internal/sim"
)

func TestDiscreteGPUConfig(t *testing.T) {
	igpu := DefaultConfig()
	dgpu := DiscreteGPUConfig()
	if dgpu.GPU.CUs <= igpu.GPU.CUs {
		t.Fatal("discrete GPU should be bigger")
	}
	if dgpu.GPU.InterruptLatency <= igpu.GPU.InterruptLatency ||
		dgpu.GPU.ResumeLatency <= igpu.GPU.ResumeLatency {
		t.Fatal("PCIe crossing should raise interrupt/resume latency")
	}
	if dgpu.Mem.CmpSwapTime <= igpu.Mem.CmpSwapTime {
		t.Fatal("PCIe atomics should cost more")
	}
	// The machine assembles and sizes its syscall area to the bigger GPU.
	m := New(dgpu)
	defer m.Shutdown()
	if m.GPU.HWWorkItems() != 36*40*64 {
		t.Fatalf("hw work-items = %d", m.GPU.HWWorkItems())
	}
	if m.Genesys.AreaBytes() != 36*40*64*64 {
		t.Fatalf("area = %d", m.Genesys.AreaBytes())
	}
	_ = sim.Time(0)
}
