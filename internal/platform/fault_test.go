package platform_test

import (
	"strings"
	"testing"

	"genesys/internal/core"
	"genesys/internal/fault"
	"genesys/internal/platform"
	"genesys/internal/sim"
)

type runSnap struct {
	now  sim.Time
	snap map[string]int64
}

func snapAfterRun(t *testing.T, cfg platform.Config) runSnap {
	t.Helper()
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	runBlockingWorkload(t, m, core.WaitPoll)
	return runSnap{now: m.E.Now(), snap: m.Obs.Metrics.Snapshot()}
}

func sameRun(a, b runSnap) bool {
	if a.now != b.now || len(a.snap) != len(b.snap) {
		return false
	}
	for k, v := range a.snap {
		if b.snap[k] != v {
			return false
		}
	}
	return true
}

// TestNoFaultsIsZeroOverhead: a machine with Faults unset and one with an
// explicit empty plan run bit-identically — same final virtual time, same
// value for every metric. The fault subsystem being compiled in costs the
// default path nothing observable.
func TestNoFaultsIsZeroOverhead(t *testing.T) {
	nilCfg := platform.DefaultConfig()
	emptyCfg := platform.DefaultConfig()
	emptyCfg.Faults = &fault.Plan{Name: "empty"}
	a := snapAfterRun(t, nilCfg)
	b := snapAfterRun(t, emptyCfg)
	if !sameRun(a, b) {
		t.Fatalf("empty fault plan perturbed the run:\n nil:   t=%v %v\n empty: t=%v %v",
			a.now, a.snap, b.now, b.snap)
	}
	if a.snap["fault.injected"] != 0 || a.snap["genesys.retries"] != 0 {
		t.Fatalf("fault-free run has nonzero fault counters: %v", a.snap)
	}
}

// TestFaultRunsAreSeedDeterministic: same seed + same plan → the same
// injections, recoveries and final virtual time, run after run.
func TestFaultRunsAreSeedDeterministic(t *testing.T) {
	mk := func() runSnap {
		cfg := platform.DefaultConfig()
		cfg.Seed = 5
		plan, err := fault.PlanFor("all", 0.25)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = &plan
		return snapAfterRun(t, cfg)
	}
	a, b := mk(), mk()
	if !sameRun(a, b) {
		t.Fatalf("seeded fault run diverged:\n first:  t=%v %v\n second: t=%v %v",
			a.now, a.snap, b.now, b.snap)
	}
	if a.snap["fault.injected"] == 0 {
		t.Fatal("plan 'all' at rate 0.25 injected nothing")
	}
}

// TestTotalInterruptLossSurfacesEINTR: with every doorbell interrupt
// dropped (rate 1.0) — including the retransmitted ones — the GENESYS
// watchdog exhausts MaxRetransmits and surfaces EINTR on the stuck slots
// instead of hanging. The run must reach quiescence with nothing
// outstanding, the blocked pollers all released.
func TestTotalInterruptLossSurfacesEINTR(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.Genesys.RetransmitTimeout = 50 * sim.Microsecond
	cfg.Genesys.MaxRetransmits = 4
	cfg.Faults = &fault.Plan{Name: "total-irq-loss", Rules: []fault.Rule{
		{Point: fault.IRQDrop, Rate: 1},
	}}
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	runBlockingWorkload(t, m, core.WaitPoll) // m.Run inside fails on hang

	if n := m.Genesys.Outstanding(); n != 0 {
		t.Fatalf("%d invocations still outstanding", n)
	}
	if m.Genesys.IRQRetransmits.Value() == 0 {
		t.Fatal("no retransmissions attempted")
	}
	if m.Inject.Surfaced.Value() == 0 {
		t.Fatal("total interrupt loss surfaced no errors")
	}
}

// TestPartialInterruptLossRecovers: at a loss rate below 1 the
// retransmission watchdog redelivers dropped doorbells and the workload
// completes without surfacing anything to the application.
func TestPartialInterruptLossRecovers(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.Seed = 3
	cfg.Faults = &fault.Plan{Name: "half-irq-loss", Rules: []fault.Rule{
		{Point: fault.IRQDrop, Rate: 0.5},
	}}
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	runBlockingWorkload(t, m, core.WaitPoll)

	if m.Inject.InjectedAt(fault.IRQDrop) == 0 {
		t.Fatal("rate-0.5 drop plan dropped nothing")
	}
	if m.Genesys.IRQRetransmits.Value() == 0 {
		t.Fatal("drops were not retransmitted")
	}
	if m.Inject.Surfaced.Value() != 0 {
		t.Fatalf("%d faults surfaced; retransmission should have recovered all",
			m.Inject.Surfaced.Value())
	}
}

// TestFaultsSysfsView: /sys/genesys/faults renders the active plan and
// per-point injection counts.
func TestFaultsSysfsView(t *testing.T) {
	cfg := platform.DefaultConfig()
	plan, err := fault.PlanFor("worker-stall", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &plan
	m := platform.New(cfg)
	t.Cleanup(m.Shutdown)
	runBlockingWorkload(t, m, core.WaitPoll)

	data, err := m.ReadFile("/sys/genesys/faults")
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"profile worker-stall",
		string(fault.WorkerStall), "injected", "recovered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faults view lacks %q:\n%s", want, out)
		}
	}
}
