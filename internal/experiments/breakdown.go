package experiments

import (
	"fmt"

	"genesys/internal/core"
	"genesys/internal/gpu"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
	"genesys/internal/workloads"
)

// quantCell renders a histogram's p50/p95/p99 as one table cell.
func quantCell(h *obs.Histogram) string {
	q := h.Percentiles(50, 95, 99)
	return fmt.Sprintf("%.2f/%.2f/%.2f", q[0], q[1], q[2])
}

// Breakdown decomposes the end-to-end latency of a blocking GPU system
// call into the paper's Figure 2 steps (GPU-side setup, interrupt
// delivery, kernel queueing, CPU processing, completion notification),
// for both wait modes and for an uncontended vs. a loaded machine. This
// is the quantitative form of the paper's §VI "design guidelines".
func Breakdown(o Options) *Table {
	t := &Table{
		ID:    "breakdown",
		Title: "End-to-end latency breakdown of one blocking GPU system call (Figure 2 steps)",
		Note: "Per-phase latency (us) of work-group-granularity pwrite(64B): mean row, then\n" +
			"p50/p95/p99 over every traced call of all runs. Under load (64 work-groups),\n" +
			"queueing dominates — the coalescing/granularity trade-offs of §V all move time\n" +
			"between these phases.",
		Header: append([]string{"configuration"}, append(core.Phases(), "total (us)")...),
	}
	run := func(label string, wait core.WaitMode, wgs int, tweak func(*platform.Config)) {
		phase := map[string]*sim.Summary{}
		phaseHist := map[string]*obs.Histogram{}
		for _, ph := range core.Phases() {
			phase[ph] = &sim.Summary{}
			phaseHist[ph] = obs.NewHistogram()
		}
		totalHist := obs.NewHistogram()
		total := sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, tweak)
			defer m.Shutdown()
			pr := m.NewProcess("bd")
			tr := core.NewTracer()
			m.Genesys.SetTracer(tr)
			f, err := m.VFS.Open("/tmp/bd", 0x42)
			if err != nil {
				panic(err)
			}
			fd, _ := pr.FDs.Install(f)
			m.E.Spawn("host", func(p *sim.Proc) {
				k := m.GPU.Launch(p, gpu.Kernel{
					Name: "bd", WorkGroups: wgs, WGSize: 64,
					Fn: func(w *gpu.Wavefront) {
						for i := 0; i < 4; i++ {
							m.Genesys.InvokeWG(w, syscalls.Request{
								NR:   syscalls.SYS_pwrite64,
								Args: [6]uint64{uint64(fd), 64, uint64(64 * w.WG.ID)},
								Buf:  make([]byte, 64),
							}, core.Options{Blocking: true, Wait: wait,
								Ordering: core.Relaxed, Kind: core.Consumer})
						}
					},
				})
				k.Wait(p)
				m.Genesys.Drain(p)
			})
			if err := m.Run(); err != nil {
				panic(err)
			}
			for _, ph := range core.Phases() {
				phase[ph].Add(tr.Phase(ph).Mean())
				phaseHist[ph].Merge(tr.Phase(ph))
			}
			totalHist.Merge(tr.Total())
			return tr.TotalMean()
		})
		row := []string{label}
		for _, ph := range core.Phases() {
			row = append(row, fmt.Sprintf("%.2f", phase[ph].Mean()))
		}
		row = append(row, f2(total))
		t.AddRow(row...)
		prow := []string{"  p50/p95/p99"}
		for _, ph := range core.Phases() {
			prow = append(prow, quantCell(phaseHist[ph]))
		}
		prow = append(prow, quantCell(totalHist))
		t.AddRow(prow...)
	}
	run("idle, polling", core.WaitPoll, 1, nil)
	run("idle, halt-resume", core.WaitHaltResume, 1, nil)
	run("loaded (64 WGs), polling", core.WaitPoll, 64, nil)
	run("loaded (64 WGs), halt-resume", core.WaitHaltResume, 64, nil)
	// Discrete GPU (§VI: "generalizes to discrete GPUs"): every phase
	// that crosses PCIe gets more expensive.
	dgpu := func(c *platform.Config) { *c = platform.DiscreteGPUConfig() }
	run("discrete GPU, polling", core.WaitPoll, 1, dgpu)
	run("discrete GPU, halt-resume", core.WaitHaltResume, 1, dgpu)
	return t
}

var _ = workloads.GranWorkGroup // anchor the import for future sweeps
