package experiments

import (
	"fmt"

	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/workloads"
)

func miniAMRTweak(cfg *platform.Config) {
	cfg.VM.PhysPages = workloads.MiniAMRPhysBytes / cfg.VM.PageSize
}

// Fig11MiniAMR regenerates the memory-management case study: miniAMR
// with a dataset just over the physical limit, without madvise (baseline)
// and with two RSS watermarks.
func Fig11MiniAMR(o Options) *Table {
	t := &Table{
		ID:    "fig11",
		Title: "miniAMR memory footprint with getrusage + madvise (§VIII-A)",
		Note: "Paper: without madvise, swapping triggers GPU timeouts and the run never\n" +
			"completes; rss watermarks trade memory for runtime (rss-3gb < rss-4gb in\n" +
			"memory, > in runtime). Scaled 16x: 256 MiB plays the role of the 4 GB cap.",
		Header: []string{"variant", "completes", "runtime (ms)", "peak RSS (MiB)", "madvise calls"},
	}
	type variant struct {
		name      string
		watermark int64
	}
	for _, v := range []variant{
		{"baseline (no madvise)", 0},
		{"rss-3gb (scaled: 192 MiB)", 192 << 20},
		{"rss-4gb (scaled: 248 MiB)", 248 << 20},
	} {
		v := v
		var completed bool
		var peak, madvises sim.Summary
		rt := sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, miniAMRTweak)
			defer m.Shutdown()
			cfg := workloads.DefaultMiniAMRConfig()
			cfg.WatermarkBytes = v.watermark
			res, err := workloads.RunMiniAMR(m, cfg)
			if err != nil {
				panic(err)
			}
			completed = res.Completed
			peak.Add(float64(res.PeakRSS) / (1 << 20))
			madvises.Add(float64(res.Madvises))
			if !res.Completed {
				return 0
			}
			return res.Runtime.Milli()
		})
		runtime := ms(rt)
		completes := "yes"
		if !completed {
			completes = "NO (GPU watchdog)"
			runtime = "DNF"
		}
		t.AddRow(v.name, completes, runtime, f0(&peak), f0(&madvises))
	}
	return t
}

// Fig12SignalSearch regenerates the signals case study: GPU parallel
// lookup with per-block rt_sigqueueinfo overlapping CPU sha512 work.
func Fig12SignalSearch(o Options) *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "CPU-GPU map-reduce with rt_sigqueueinfo (signal-search, §VIII-B)",
		Note:   "Paper: work-group-granularity non-blocking signals give ~14% speedup.",
		Header: []string{"variant", "runtime (ms)"},
	}
	run := func(useSignals bool) *sim.Summary {
		return sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, nil)
			defer m.Shutdown()
			cfg := workloads.DefaultSignalSearchConfig()
			cfg.UseSignals = useSignals
			res, err := workloads.RunSignalSearch(m, cfg)
			if err != nil {
				panic(err)
			}
			return res.Runtime.Milli()
		})
	}
	base := run(false)
	sig := run(true)
	t.AddRow("baseline (phase-separated)", ms(base))
	t.AddRow("GENESYS (signals overlap)", ms(sig))
	t.AddRow("speedup", ratio(base, sig))
	return t
}

// Fig13aGrep regenerates the grep case study across all five variants.
func Fig13aGrep(o Options) *Table {
	t := &Table{
		ID:    "fig13a",
		Title: "grep -F -l: CPU, OpenMP, and GENESYS invocation flavors (§VIII-C)",
		Note: "Paper: GENESYS beats OpenMP; WI-halt-resume edges out WG and WI-polling by\n" +
			"3-4% (here: near-parity; see EXPERIMENTS.md).",
		Header: []string{"variant", "runtime (ms)", "vs CPU"},
	}
	var cpuSummary *sim.Summary
	for _, v := range []workloads.GrepVariant{workloads.GrepCPU, workloads.GrepOpenMP,
		workloads.GrepGPUWorkGroup, workloads.GrepGPUWorkItemPoll, workloads.GrepGPUWorkItemHalt} {
		v := v
		s := sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, nil)
			defer m.Shutdown()
			cfg := workloads.DefaultGrepConfig(v)
			cfg.Seed = seed
			res, err := workloads.RunGrep(m, cfg)
			if err != nil {
				panic(err)
			}
			if !res.Correct() {
				panic(fmt.Sprintf("grep %v: wrong answer", v))
			}
			return res.Runtime.Milli()
		})
		if v == workloads.GrepCPU {
			cpuSummary = s
		}
		t.AddRow(v.String(), ms(s), ratio(cpuSummary, s))
	}
	return t
}

// Fig13bWordcount regenerates the wordcount comparison.
func Fig13bWordcount(o Options) *Table {
	t := &Table{
		ID:     "fig13b",
		Title:  "wordcount from SSD: CPU-OpenMP vs GPU-no-syscall vs GENESYS (§VIII-C)",
		Note:   "Paper: GENESYS ~6x over the CPU version; the GPU version without system\ncalls is worse than the CPU version.",
		Header: []string{"variant", "runtime (ms)", "vs CPU"},
	}
	var cpuSummary *sim.Summary
	for _, v := range []workloads.WordcountVariant{workloads.WordcountCPU,
		workloads.WordcountGPUNoSyscall, workloads.WordcountGENESYS} {
		v := v
		s := sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, nil)
			defer m.Shutdown()
			cfg := workloads.DefaultWordcountConfig(v)
			cfg.Seed = seed
			res, err := workloads.RunWordcount(m, cfg)
			if err != nil {
				panic(err)
			}
			if !res.Correct() {
				panic(fmt.Sprintf("wordcount %v: wrong counts", v))
			}
			return res.Runtime.Milli()
		})
		if v == workloads.WordcountCPU {
			cpuSummary = s
		}
		t.AddRow(v.String(), ms(s), ratio(cpuSummary, s))
	}
	return t
}

// Fig14WordcountTraces regenerates the I/O and CPU utilization traces of
// the wordcount runs.
func Fig14WordcountTraces(o Options) *Table {
	t := &Table{
		ID:    "fig14",
		Title: "wordcount I/O throughput and CPU utilization (§VIII-C)",
		Note: "Paper: GENESYS drives the SSD to ~170 MB/s where the CPU version manages\n" +
			"~30 MB/s, while using less CPU (the GPU does the searching).",
		Header: []string{"variant", "mean disk (MB/s)", "peak disk (MB/s)", "mean CPU util (%)"},
	}
	for _, v := range []workloads.WordcountVariant{workloads.WordcountCPU, workloads.WordcountGENESYS} {
		v := v
		var peak, util sim.Summary
		mean := sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, nil)
			defer m.Shutdown()
			cfg := workloads.DefaultWordcountConfig(v)
			cfg.Seed = seed
			res, err := workloads.RunWordcount(m, cfg)
			if err != nil || !res.Correct() {
				panic(fmt.Sprint("fig14: ", err))
			}
			peak.Add(res.PeakDiskMBs)
			util.Add(res.MeanCPUUtil)
			return res.MeanDiskMBs
		})
		t.AddRow(v.String(), f0(mean), f0(&peak), f0(&util))
	}
	return t
}

// Fig15Memcached regenerates the UDP memcached comparison.
func Fig15Memcached(o Options) *Table {
	t := &Table{
		ID:     "fig15",
		Title:  "memcached GET latency and throughput (1024 elems/bucket, 1 KiB values, §VIII-D)",
		Note:   "Paper: GENESYS achieves 30-40% better latency and throughput than both the\nCPU version and the GPU version without direct system calls.",
		Header: []string{"variant", "mean latency (us)", "p99 latency (us)", "throughput (K req/s)", "served"},
	}
	for _, v := range []workloads.MemcachedVariant{workloads.MemcachedCPU,
		workloads.MemcachedGPUNoSyscall, workloads.MemcachedGENESYS} {
		v := v
		var p99, tput, served sim.Summary
		lat := sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, nil)
			defer m.Shutdown()
			res, err := workloads.RunMemcached(m, workloads.DefaultMemcachedConfig(v))
			if err != nil {
				panic(err)
			}
			if res.Correct != res.Completed {
				panic(fmt.Sprintf("memcached %v: wrong values", v))
			}
			p99.Add(res.P99Latency.Micro())
			tput.Add(res.ThroughputRPS / 1000)
			served.Add(float64(res.Completed))
			return res.MeanLatency.Micro()
		})
		t.AddRow(v.String(), f2(lat), f2(&p99), f2(&tput), f0(&served))
	}
	// Bucket-size sweep: the crossover behind "GPUs accelerate memcached
	// by parallelizing lookups on buckets with more elements".
	t.AddRow("", "", "", "", "")
	t.AddRow("-- bucket sweep --", "CPU mean (us)", "GENESYS mean (us)", "winner", "")
	for _, elems := range []int{64, 256, 1024} {
		elems := elems
		lat := func(v workloads.MemcachedVariant) *sim.Summary {
			return sweep(o, func(seed int64) float64 {
				m := newMachine(o, seed, nil)
				defer m.Shutdown()
				cfg := workloads.DefaultMemcachedConfig(v)
				cfg.ElemsPerBucket = elems
				cfg.Requests = 1000
				res, err := workloads.RunMemcached(m, cfg)
				if err != nil {
					panic(err)
				}
				return res.MeanLatency.Micro()
			})
		}
		cpuLat := lat(workloads.MemcachedCPU)
		genLat := lat(workloads.MemcachedGENESYS)
		winner := "CPU"
		if genLat.Mean() < cpuLat.Mean() {
			winner = "GENESYS"
		}
		t.AddRow(fmt.Sprintf("%d elems/bucket", elems), f2(cpuLat), f2(genLat), winner, "")
	}
	return t
}

// Fig16BMPDisplay regenerates the device-control case study.
func Fig16BMPDisplay(o Options) *Table {
	t := &Table{
		ID:     "fig16",
		Title:  "bmp-display: GPU ioctl + mmap on /dev/fb0 (§VIII-E)",
		Note:   "The GPU queries and sets framebuffer properties over ioctl, mmaps the\nframebuffer, and rasterizes an image into it (paper Figure 16).",
		Header: []string{"metric", "value"},
	}
	m := newMachine(o, o.BaseSeed, nil)
	defer m.Shutdown()
	res, err := workloads.RunBMPDisplay(m, workloads.DefaultBMPDisplayConfig())
	if err != nil {
		panic(err)
	}
	t.AddRow("initial mode", fmt.Sprintf("%dx%d@%d", res.InfoBefore.XRes, res.InfoBefore.YRes, res.InfoBefore.BPP))
	t.AddRow("configured mode", fmt.Sprintf("%dx%d@%d", res.InfoAfter.XRes, res.InfoAfter.YRes, res.InfoAfter.BPP))
	t.AddRow("pixels written", fmt.Sprint(res.PixelsWritten))
	t.AddRow("image validated", fmt.Sprint(res.Validated))
	t.AddRow("runtime", res.Runtime.String())
	return t
}

// All runs every experiment in paper order.
func All(o Options) []*Table {
	return []*Table{
		Table2Classification(),
		Table3Platform(o),
		Table4AtomicCosts(o),
		Fig7Granularity(o),
		Fig8BlockingOrdering(o),
		Fig9PollingContention(o),
		Fig10Coalescing(o),
		Fig11MiniAMR(o),
		Fig12SignalSearch(o),
		Fig13aGrep(o),
		Fig13bWordcount(o),
		Fig14WordcountTraces(o),
		Fig15Memcached(o),
		Fig16BMPDisplay(o),
		Breakdown(o),
		Ablation(o),
	}
}

// ByID returns the experiment driver with the given ID.
func ByID(id string) (func(Options) *Table, bool) {
	m := map[string]func(Options) *Table{
		"table2":    func(Options) *Table { return Table2Classification() },
		"table3":    func(o Options) *Table { return Table3Platform(o) },
		"table4":    Table4AtomicCosts,
		"fig7":      Fig7Granularity,
		"fig8":      Fig8BlockingOrdering,
		"fig9":      Fig9PollingContention,
		"fig10":     Fig10Coalescing,
		"fig11":     Fig11MiniAMR,
		"fig12":     Fig12SignalSearch,
		"fig13a":    Fig13aGrep,
		"fig13b":    Fig13bWordcount,
		"fig14":     Fig14WordcountTraces,
		"fig15":     Fig15Memcached,
		"fig16":     Fig16BMPDisplay,
		"breakdown": Breakdown,
		"ablation":  Ablation,
		"chaos":     Chaos,
		"fleet":     Fleet,
	}
	fn, ok := m[id]
	return fn, ok
}

// IDs lists the experiment IDs in paper order.
func IDs() []string {
	return []string{"table2", "table3", "table4", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13a", "fig13b", "fig14", "fig15",
		"fig16", "breakdown", "ablation", "chaos", "fleet"}
}
