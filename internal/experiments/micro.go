package experiments

import (
	"fmt"

	"genesys/internal/core"
	"genesys/internal/mem"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
	"genesys/internal/workloads"
)

// Table2Classification regenerates the §IV classification summary and a
// Table II-style excerpt of calls requiring hardware changes.
func Table2Classification() *Table {
	t := &Table{
		ID:    "table2",
		Title: "Classification of Linux system calls for GPU invocation (§IV, Table II)",
		Note: "Paper: 79% readily-implementable / 13% need GPU hardware changes / 8% need\n" +
			"extensive kernel changes, over Linux 4.11's 300+ x86-64 system calls.",
		Header: []string{"class", "count", "share", "examples"},
	}
	ready, hw, ext, total := syscalls.ClassCounts()
	pct := func(n int) string { return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total)) }
	sample := func(c syscalls.Class, n int) string {
		names := syscalls.ByClass(c)
		if len(names) > n {
			names = names[:n]
		}
		out := ""
		for i, s := range names {
			if i > 0 {
				out += ", "
			}
			out += s
		}
		return out
	}
	t.AddRow("readily-implementable", fmt.Sprint(ready), pct(ready), "read, write, pread64, mmap, madvise, ...")
	t.AddRow("needs GPU hardware changes", fmt.Sprint(hw), pct(hw), sample(syscalls.ClassHardware, 5)+", ...")
	t.AddRow("needs extensive kernel changes", fmt.Sprint(ext), pct(ext), sample(syscalls.ClassExtensive, 5)+", ...")
	t.AddRow("total", fmt.Sprint(total), "100%", fmt.Sprintf("%d implemented in this artifact", syscalls.ImplementedCount()))
	return t
}

// Table3Platform renders the simulated system configuration.
func Table3Platform(o Options) *Table {
	m := newMachine(o, 1, nil)
	defer m.Shutdown()
	t := &Table{
		ID:     "table3",
		Title:  "Simulated system configuration (Table III analogue)",
		Header: []string{"component", "configuration"},
	}
	g, c := m.Cfg.GPU, m.Cfg.CPU
	t.AddRow("CPU", fmt.Sprintf("%d cores @ %.1f GHz", c.Cores, float64(c.ClockMHz)/1000))
	t.AddRow("Integrated GPU", fmt.Sprintf("%d CUs @ %d MHz, SIMD-%d, %d wavefronts/CU",
		g.CUs, g.ClockMHz, g.SIMDWidth, g.WavefrontsPerCU))
	t.AddRow("Active HW work-items", fmt.Sprint(m.GPU.HWWorkItems()))
	t.AddRow("Syscall area", fmt.Sprintf("%d KiB (64 B/slot, one slot per active work-item)",
		m.Genesys.AreaBytes()/1024))
	t.AddRow("Memory", fmt.Sprintf("%.1f GB/s shared DRAM; GPU L2 %d lines",
		m.Cfg.Mem.DRAMBandwidth, m.Cfg.Mem.L2Lines))
	t.AddRow("Storage", fmt.Sprintf("SSD: %d channels x %.0f MB/s, %v command overhead",
		m.Cfg.SSD.Channels, m.Cfg.SSD.ChannelBandwidth*1000, m.Cfg.SSD.CommandOverhead))
	t.AddRow("OS", fmt.Sprintf("simulated Linux-like kernel, %d+ dynamic workers", m.Cfg.Kernel.Workers))
	return t
}

// Table4AtomicCosts profiles the GPU memory operations GENESYS uses on
// the syscall area (Table IV).
func Table4AtomicCosts(o Options) *Table {
	t := &Table{
		ID:    "table4",
		Title: "Profiled performance of GPU atomic operations (Table IV)",
		Note: "Paper: atomics are serviced at the L2 and cost microseconds; plain loads hit\n" +
			"the L1 at ~0.08 us. Ordering: cmp-swap > swap > atomic-load >> load.",
		Header: []string{"op", "time (us)"},
	}
	for _, op := range []mem.Op{mem.OpCmpSwap, mem.OpSwap, mem.OpAtomicLoad, mem.OpLoad} {
		op := op
		s := sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, nil)
			defer m.Shutdown()
			const n = 200
			var elapsed sim.Time
			m.E.Spawn("probe", func(p *sim.Proc) {
				start := p.Now()
				for i := 0; i < n; i++ {
					if op == mem.OpLoad {
						m.Mem.GPULoad(p, 0)
					} else {
						m.Mem.GPUAtomic(p, op, 0)
					}
				}
				elapsed = p.Now() - start
			})
			if err := m.Run(); err != nil {
				panic(err)
			}
			return (elapsed / n).Micro()
		})
		t.AddRow(op.String(), f2(s))
	}
	return t
}

// fig7Sizes are the file sizes swept (the paper goes to 2 GB on real
// hardware; the simulation sweeps the same two decades).
var fig7Sizes = []int64{4 << 20, 16 << 20, 64 << 20, 256 << 20}

// Fig7Granularity regenerates the invocation-granularity microbenchmark:
// pread on tmpfs at work-item / work-group / kernel granularity (left),
// plus the work-group size sweep (right).
func Fig7Granularity(o Options) *Table {
	t := &Table{
		ID:    "fig7",
		Title: "Impact of system call invocation granularity (pread on tmpfs)",
		Note: "Paper: work-item invocation floods the CPU and is worst; kernel granularity\n" +
			"serializes and suffers at large sizes; work-group granularity wins, and\n" +
			"larger work-groups help when per-call overheads matter.",
		Header: []string{"file size", "work-item (ms)", "work-group (ms)", "kernel (ms)"},
	}
	for _, size := range fig7Sizes {
		size := size
		row := []string{fmt.Sprintf("%d MiB", size>>20)}
		for _, gran := range []workloads.Granularity{workloads.GranWorkItem,
			workloads.GranWorkGroup, workloads.GranKernel} {
			gran := gran
			s := sweep(o, func(seed int64) float64 {
				m := newMachine(o, seed, nil)
				defer m.Shutdown()
				res, err := workloads.RunPread(m, workloads.PreadConfig{
					FileSize: size, ChunkPerWI: 16 << 10, WGSize: 64,
					Granularity: gran, Wait: core.WaitPoll,
				})
				if err != nil || !res.Validated {
					panic(fmt.Sprint("fig7: ", err, res.Validated))
				}
				return res.ReadTime.Milli()
			})
			row = append(row, ms(s))
		}
		t.AddRow(row...)
	}
	// Right-hand side: work-group size sweep at small per-WI chunks.
	t.AddRow("", "", "", "")
	t.AddRow("-- WG size sweep --", "16 MiB file, 1 KiB/work-item", "", "")
	for _, wg := range []int{64, 128, 256, 512, 1024} {
		wg := wg
		s := sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, nil)
			defer m.Shutdown()
			res, err := workloads.RunPread(m, workloads.PreadConfig{
				FileSize: 16 << 20, ChunkPerWI: 1 << 10, WGSize: wg,
				Granularity: workloads.GranWorkGroup, Wait: core.WaitPoll,
			})
			if err != nil || !res.Validated {
				panic(fmt.Sprint("fig7 wg sweep: ", err))
			}
			return res.ReadTime.Milli()
		})
		t.AddRow(fmt.Sprintf("wg%d", wg), ms(s), "", "")
	}
	return t
}

// Fig8BlockingOrdering regenerates the blocking/ordering microbenchmark:
// DES-style block permutation with pwrite at work-group granularity.
func Fig8BlockingOrdering(o Options) *Table {
	t := &Table{
		ID:    "fig8",
		Title: "System call blocking and ordering semantics (block permutation + pwrite)",
		Note: "Paper: strong-block worst at low iteration counts (~30% over non-blocking);\n" +
			"weak-non-block best; all variants converge once compute dominates.",
		Header: []string{"iterations", "strong-block (us)", "strong-nonblock (us)",
			"weak-block (us)", "weak-nonblock (us)"},
	}
	type variant struct {
		blocking bool
		ordering core.Ordering
	}
	variants := []variant{
		{true, core.Strong}, {false, core.Strong},
		{true, core.Relaxed}, {false, core.Relaxed},
	}
	for _, iters := range []int{1, 2, 4, 8, 16, 32} {
		iters := iters
		row := []string{fmt.Sprint(iters)}
		for _, v := range variants {
			v := v
			s := sweep(o, func(seed int64) float64 {
				m := newMachine(o, seed, nil)
				defer m.Shutdown()
				res, err := workloads.RunPermute(m, workloads.PermuteConfig{
					Blocks: 64, Iterations: iters,
					Blocking: v.blocking, Ordering: v.ordering, Wait: core.WaitPoll,
				})
				if err != nil || !res.Validated {
					panic(fmt.Sprint("fig8: ", err))
				}
				return res.PerPermutation.Micro()
			})
			row = append(row, f2(s))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig9PollingContention regenerates the polling/memory-contention
// experiment: CPU access throughput vs. the number of polled GPU lines.
func Fig9PollingContention(o Options) *Table {
	t := &Table{
		ID:    "fig9",
		Title: "Impact of polling on memory contention",
		Note: "Paper: CPU access throughput is flat while the polled working set fits the\n" +
			"GPU L2 (4096 lines) and falls once polling spills to DRAM.",
		Header: []string{"polled lines", "CPU accesses/s (M)", "GPU L2 miss rate"},
	}
	for _, lines := range []int{512, 1024, 2048, 4096, 8192, 16384, 32768} {
		lines := lines
		var miss float64
		s := sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, nil)
			defer m.Shutdown()
			res, err := workloads.RunPollProbe(m, workloads.PollProbeConfig{
				PolledLines: lines, PollerWaves: 128, Duration: sim.Millisecond,
			})
			if err != nil {
				panic(err)
			}
			miss = res.GPUL2MissRate
			return res.CPUAccessesPerSec / 1e6
		})
		t.AddRow(fmt.Sprint(lines), f2(s), fmt.Sprintf("%.2f", miss))
	}
	return t
}

// Fig10Coalescing regenerates the interrupt-coalescing experiment:
// latency per byte for small-to-large per-call reads, with and without
// 8-way coalescing.
func Fig10Coalescing(o Options) *Table {
	t := &Table{
		ID:    "fig10",
		Title: "Implications of system call coalescing (work-item pread)",
		Note: "Paper: coalescing up to 8 interrupts cuts per-byte latency 10-15% for small\n" +
			"reads; the benefit fades as per-call work grows.",
		Header: []string{"bytes/call", "no coalescing (ns/B)", "coalesce ≤8 (ns/B)", "gain"},
	}
	for _, chunk := range []int64{128, 512, 2 << 10, 8 << 10, 64 << 10} {
		chunk := chunk
		run := func(window sim.Time, max int) *sim.Summary {
			return sweep(o, func(seed int64) float64 {
				m := newMachine(o, seed, nil)
				defer m.Shutdown()
				m.Genesys.SetCoalescing(window, max)
				res, err := workloads.RunPread(m, workloads.PreadConfig{
					FileSize: 4096 * chunk, ChunkPerWI: chunk, WGSize: 64,
					Granularity: workloads.GranWorkItem, Wait: core.WaitHaltResume,
				})
				if err != nil || !res.Validated {
					panic(fmt.Sprint("fig10: ", err))
				}
				return res.LatencyPerByte()
			})
		}
		off := run(0, 1)
		on := run(50*sim.Microsecond, 8)
		gain := "n/a"
		if on.Mean() > 0 {
			gain = fmt.Sprintf("%.1f%%", 100*(1-on.Mean()/off.Mean()))
		}
		t.AddRow(byteSize(chunk), f2(off), f2(on), gain)
	}
	return t
}

func byteSize(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%d MiB", n>>20)
	}
	if n >= 1<<10 {
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}

var _ = platform.DefaultConfig // keep import stable across edits
