package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"genesys/internal/core"
	"genesys/internal/fs"
	"genesys/internal/gpu"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
	"genesys/internal/workloads"
)

// BenchResult is the perf snapshot one bench case emits as
// BENCH_<name>.json: end-to-end latency percentiles, per-phase means,
// utilization, and event-log health. Every field derives from virtual
// time and the fixed seed, so two runs with the same seed are
// byte-identical — the property CI relies on to make the files a
// comparable perf trajectory.
type BenchResult struct {
	Name            string             `json:"name"`
	Seed            int64              `json:"seed"`
	RuntimeMS       float64            `json:"runtime_ms"`
	Calls           int                `json:"calls"`
	Aborted         int                `json:"aborted"`
	P50US           float64            `json:"p50_us"`
	P95US           float64            `json:"p95_us"`
	P99US           float64            `json:"p99_us"`
	PhaseMeanUS     map[string]float64 `json:"phase_mean_us"`
	CPUUtilPct      float64            `json:"cpu_util_pct"`
	GPUCUUtilPct    float64            `json:"gpu_cu_util_pct"`
	MeanBusyWorkers float64            `json:"mean_busy_workers"`
	EventsDropped   int64              `json:"events_dropped"`
	EventsRejected  int64              `json:"events_rejected"`
}

// JSON renders the result as indented, key-stable JSON.
func (r BenchResult) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

func round3(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*1000) / 1000
}

// benchCase is one fixed workload of the deterministic bench suite.
type benchCase struct {
	name  string
	tweak func(*platform.Config)
	// setup prepares the machine and spawns the workload's host process;
	// the runner then drives the engine to quiescence.
	setup func(m *platform.Machine)
	// start, when set, replaces setup for cases whose workload needs a
	// post-run finalization step (e.g. the fleet harness distilling its
	// SLO report); the returned closure runs after engine quiescence.
	start func(m *platform.Machine, seed int64) (finish func() error, err error)
}

// benchSyscallKernel spawns the canonical blocking work-group-granularity
// pwrite workload (the breakdown experiment's kernel shape).
func benchSyscallKernel(m *platform.Machine, wgs int, wait core.WaitMode) {
	pr := m.NewProcess("bench")
	f, err := m.VFS.Open("/tmp/bench", fs.O_CREAT|fs.O_WRONLY)
	if err != nil {
		panic(err)
	}
	fd, _ := pr.FDs.Install(f)
	m.E.Spawn("bench-host", func(p *sim.Proc) {
		k := m.GPU.Launch(p, gpu.Kernel{
			Name: "bench", WorkGroups: wgs, WGSize: 64,
			Fn: func(w *gpu.Wavefront) {
				for i := 0; i < 4; i++ {
					m.Genesys.InvokeWG(w, syscalls.Request{
						NR:   syscalls.SYS_pwrite64,
						Args: [6]uint64{uint64(fd), 64, uint64(64 * w.WG.ID)},
						Buf:  make([]byte, 64),
					}, core.Options{Blocking: true, Wait: wait,
						Ordering: core.Relaxed, Kind: core.Consumer})
				}
			},
		})
		k.Wait(p)
		m.Genesys.Drain(p)
	})
}

const benchPreadPage = 4096

// benchCases is the fixed suite, in emission order.
var benchCases = []benchCase{
	{
		name:  "syscall-idle",
		setup: func(m *platform.Machine) { benchSyscallKernel(m, 1, core.WaitPoll) },
	},
	{
		name:  "syscall-loaded",
		setup: func(m *platform.Machine) { benchSyscallKernel(m, 64, core.WaitPoll) },
	},
	{
		name: "coalesce-64",
		tweak: func(cfg *platform.Config) {
			cfg.Genesys.CoalesceWindow = 30 * sim.Microsecond
			cfg.Genesys.CoalesceMax = 16
		},
		setup: func(m *platform.Machine) { benchSyscallKernel(m, 64, core.WaitHaltResume) },
	},
	{
		name: "ssd-pread",
		setup: func(m *platform.Machine) {
			const wgs, reads = 32, 4
			if err := m.WriteFile("/data/bench",
				make([]byte, wgs*reads*benchPreadPage)); err != nil {
				panic(err)
			}
			pr := m.NewProcess("bench")
			f, err := m.VFS.Open("/data/bench", fs.O_RDONLY)
			if err != nil {
				panic(err)
			}
			fd, _ := pr.FDs.Install(f)
			m.E.Spawn("bench-host", func(p *sim.Proc) {
				k := m.GPU.Launch(p, gpu.Kernel{
					Name: "bench-pread", WorkGroups: wgs, WGSize: 64,
					Fn: func(w *gpu.Wavefront) {
						for i := 0; i < reads; i++ {
							off := (w.WG.ID*reads + i) * benchPreadPage
							m.Genesys.InvokeWG(w, syscalls.Request{
								NR:   syscalls.SYS_pread64,
								Args: [6]uint64{uint64(fd), benchPreadPage, uint64(off)},
								Buf:  make([]byte, benchPreadPage),
							}, core.Options{Blocking: true, Wait: core.WaitHaltResume,
								Ordering: core.Relaxed, Kind: core.Producer})
						}
					},
				})
				k.Wait(p)
				m.Genesys.Drain(p)
			})
		},
	},
	{
		name: "net-loopback",
		setup: func(m *platform.Machine) {
			const wgs, rounds = 16, 4
			m.NewProcess("bench")
			m.E.Spawn("bench-host", func(p *sim.Proc) {
				k := m.GPU.Launch(p, gpu.Kernel{
					Name: "bench-net", WorkGroups: wgs, WGSize: 64,
					Fn: func(w *gpu.Wavefront) {
						if !w.IsLeader() {
							return
						}
						invoke := func(req syscalls.Request) core.Result {
							return m.Genesys.Invoke(w, req, core.Options{
								Blocking: true, Wait: core.WaitHaltResume,
								Ordering: core.Relaxed, Kind: core.Producer})
						}
						sock := invoke(syscalls.Request{NR: syscalls.SYS_socket})
						port := 9000 + w.WG.ID
						invoke(syscalls.Request{NR: syscalls.SYS_bind,
							Args: [6]uint64{uint64(sock.Ret), uint64(port)}})
						for i := 0; i < rounds; i++ {
							invoke(syscalls.Request{NR: syscalls.SYS_sendto,
								Args: [6]uint64{uint64(sock.Ret), 64, 0, 0, uint64(port)},
								Buf:  make([]byte, 64)})
							invoke(syscalls.Request{NR: syscalls.SYS_recvfrom,
								Args: [6]uint64{uint64(sock.Ret), 64},
								Buf:  make([]byte, 64)})
						}
						invoke(syscalls.Request{NR: syscalls.SYS_close,
							Args: [6]uint64{uint64(sock.Ret)}})
					},
				})
				k.Wait(p)
				m.Genesys.Drain(p)
			})
		},
	},
	{
		// The service-fleet scenario: churning clients (UDP sessions +
		// stream connections) against poll-multiplexing GPU work-groups.
		// Sized well below the 100k acceptance run so the double-run gate
		// stays cheap; the SLO report rides along as SLO_fleet.json.
		name: "fleet",
		start: func(m *platform.Machine, seed int64) (func() error, error) {
			cfg := workloads.DefaultFleetConfig(5000)
			cfg.Seed = seed
			fr, err := workloads.StartFleet(m, cfg)
			if err != nil {
				return nil, err
			}
			return func() error { fr.Finish(); return nil }, nil
		},
	},
}

// BenchNames lists the bench suite cases in emission order.
func BenchNames() []string {
	out := make([]string, len(benchCases))
	for i, c := range benchCases {
		out[i] = c.name
	}
	return out
}

func trackByName(u *obs.Util, name string) *obs.UtilTrack {
	for _, t := range u.Tracks() {
		if t.Name() == name {
			return t
		}
	}
	return nil
}

// HostStats captures the host-side (wall-clock) cost of one bench run.
// Unlike BenchResult these numbers depend on the machine the benchmark
// ran on, so they are reported separately (BENCH_host.json) and are
// NOT part of the determinism gate.
type HostStats struct {
	WallNS         int64  `json:"wall_ns"`
	Events         uint64 `json:"sim_events_total"`
	ReadyFast      uint64 `json:"sim_events_ready_fast"`
	CallbacksRun   uint64 `json:"sim_callbacks_run"`
	ProcSwitches   uint64 `json:"sim_proc_switches_total"`
	ProcsSpawned   uint64 `json:"sim_procs_spawned"`
	ProcsReaped    uint64 `json:"sim_procs_reaped"`
	TimersCanceled uint64 `json:"sim_timers_canceled"`
	WheelScheduled uint64 `json:"sim_wheel_scheduled"`
	WheelCanceled  uint64 `json:"sim_wheel_canceled"`
	WheelPeak      int    `json:"sim_wheel_peak"`
}

// RunBench runs one bench case deterministically and returns its
// snapshot.
func RunBench(name string, seed int64) (BenchResult, error) {
	res, _, err := RunBenchHost(name, seed)
	return res, err
}

// RunBenchHost is RunBench plus host wall-clock and engine-throughput
// telemetry for the same run.
func RunBenchHost(name string, seed int64) (BenchResult, HostStats, error) {
	res, host, _, err := RunBenchArtifacts(name, seed)
	return res, host, err
}

// RunBenchArtifacts is RunBenchHost plus any extra deterministic
// artifacts the case produced, keyed by file name (the fleet case emits
// its SLO report as SLO_fleet.json). Artifacts join BENCH_<case>.json in
// the byte-identity gate; host telemetry stays excluded.
func RunBenchArtifacts(name string, seed int64) (BenchResult, HostStats, map[string][]byte, error) {
	br, err := StartBench(name, seed)
	if err != nil {
		return BenchResult{}, HostStats{}, nil, err
	}
	defer br.Close()
	return br.Finish()
}

// BenchRun is a staged bench case whose engine loop the caller owns —
// the seam checkpoint/restore and record/replay hook into. StartBench
// builds the machine and stages the workload without running it; the
// caller may attach a recorder, run the engine partway
// (M.E.RunUntil) for a checkpoint cut, or fast-forward a restored
// snapshot, and then calls Finish to drive the engine to quiescence and
// distill the result. Close releases the machine.
type BenchRun struct {
	M    *platform.Machine
	Name string
	Seed int64

	wallStart time.Time
	finish    func() error
}

// benchCaseByName returns the named bench case, or nil.
func benchCaseByName(name string) *benchCase {
	for i := range benchCases {
		if benchCases[i].name == name {
			return &benchCases[i]
		}
	}
	return nil
}

// StartBench builds the machine for one bench case and stages its
// workload without driving the engine.
func StartBench(name string, seed int64) (*BenchRun, error) {
	bc := benchCaseByName(name)
	if bc == nil {
		return nil, fmt.Errorf("bench: unknown case %q (have %v)", name, BenchNames())
	}
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	if bc.tweak != nil {
		bc.tweak(&cfg)
	}
	m := platform.New(cfg)
	m.Obs.Events.SetEnabled(true)
	br := &BenchRun{M: m, Name: name, Seed: seed, wallStart: time.Now()}
	if bc.start != nil {
		fin, err := bc.start(m, seed)
		if err != nil {
			m.Shutdown()
			return nil, err
		}
		br.finish = fin
	} else {
		bc.setup(m)
	}
	return br, nil
}

// Close releases the machine. Safe after Finish.
func (b *BenchRun) Close() { b.M.Shutdown() }

// Finish drives the engine to quiescence (from wherever the caller left
// it — t=0 for a straight run, the cut instant for a restored one) and
// distills the deterministic result, host telemetry and artifacts.
func (b *BenchRun) Finish() (BenchResult, HostStats, map[string][]byte, error) {
	m, name, seed := b.M, b.Name, b.Seed
	if err := m.Run(); err != nil {
		return BenchResult{}, HostStats{}, nil, err
	}
	if b.finish != nil {
		if err := b.finish(); err != nil {
			return BenchResult{}, HostStats{}, nil, err
		}
	}
	wall := time.Since(b.wallStart)
	st := m.E.Stats()
	host := HostStats{
		WallNS:         wall.Nanoseconds(),
		Events:         st.Scheduled,
		ReadyFast:      st.ReadyFast,
		CallbacksRun:   st.CallbacksRun,
		ProcSwitches:   st.ProcSwitches,
		ProcsSpawned:   st.ProcsSpawned,
		ProcsReaped:    st.ProcsReaped,
		TimersCanceled: st.TimersCanceled,
		WheelScheduled: st.WheelScheduled,
		WheelCanceled:  st.WheelCanceled,
		WheelPeak:      st.WheelPeak,
	}
	now := m.E.Now()
	tr := m.Genesys.Tracer()
	q := tr.Total().Percentiles(50, 95, 99)
	phases := make(map[string]float64, 5)
	for _, ph := range core.Phases() {
		phases[ph] = round3(tr.Phase(ph).Mean())
	}
	res := BenchResult{
		Name:            name,
		Seed:            seed,
		RuntimeMS:       round3(now.Milli()),
		Calls:           tr.Calls(),
		Aborted:         tr.Aborted(),
		P50US:           round3(q[0]),
		P95US:           round3(q[1]),
		P99US:           round3(q[2]),
		PhaseMeanUS:     phases,
		CPUUtilPct:      round3(m.CPU.MeanUtilization(now)),
		GPUCUUtilPct:    round3(trackByName(m.Obs.Util, "gpu.busy_cus").MeanPct(now)),
		MeanBusyWorkers: round3(trackByName(m.Obs.Util, "oskern.busy_workers").Mean(now)),
		EventsDropped:   m.Obs.Events.Dropped(),
		EventsRejected:  m.Obs.Events.Rejected(),
	}
	var artifacts map[string][]byte
	if slo := m.Obs.SLO(); slo != nil {
		artifacts = map[string][]byte{"SLO_" + name + ".json": slo.JSON()}
	}
	// Flight-recorder bundles ride along as deterministic artifacts.
	// Clean bench runs are expected to produce none — a bundle appearing
	// here means a detector fired, and the double-run gate holds its
	// bytes to the same identity bar as the BENCH snapshot.
	for _, bun := range m.Obs.Flight.Bundles() {
		if artifacts == nil {
			artifacts = map[string][]byte{}
		}
		artifacts[fmt.Sprintf("ANOMALY_%s_%s", name, bun.Name()[len("ANOMALY_"):])] = bun.JSON()
	}
	return res, host, artifacts, nil
}
