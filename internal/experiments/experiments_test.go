package experiments

import "testing"

func TestSmokeAll(t *testing.T) {
	o := Options{Runs: 1, BaseSeed: 1}
	for _, id := range IDs() {
		fn, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tbl := fn(o)
		t.Logf("\n%s", tbl.Render())
	}
}
