package experiments

import (
	"fmt"

	"genesys/internal/obs"
	"genesys/internal/sim"
	"genesys/internal/workloads"
)

// chaosRates are the per-opportunity injection probabilities the sweep
// visits for each profile.
var chaosRates = []float64{0.05, 0.25}

// Chaos sweeps the fault-injection profiles over the mixed-syscall chaos
// workload and reports, per (profile, rate) cell: how many faults were
// injected, how many the stack recovered transparently vs surfaced as
// errnos, and how much the per-work-group latency distribution inflated
// relative to the fault-free baseline. When the options already carry a
// fault profile (genesys run -faults=<profile> chaos), only that profile
// is swept.
func Chaos(o Options) *Table {
	t := &Table{
		ID:    "chaos",
		Title: "fault injection: recovery vs surfacing and latency inflation",
		Note: "Each cell runs the mixed workload (SSD pread + tmpfs pwrite + UDP echo)\n" +
			"under one fault profile. recovered = transparently retried/redelivered;\n" +
			"surfaced = returned to the application as a well-formed errno. Latency is\n" +
			"per-work-group end-to-end; inflation is p50 vs the fault-free baseline.",
		Header: []string{"profile", "rate", "runtime (ms)", "p50 (us)", "p95 (us)",
			"p99 (us)", "p50 infl", "injected", "recovered", "surfaced", "echo ok", "ops fail"},
	}

	profiles := []string{"interrupt-loss", "worker-stall", "transient-errno",
		"ssd-degraded", "net-flaky", "all"}
	if o.FaultProfile != "" {
		profiles = []string{o.FaultProfile}
	}
	rates := chaosRates
	if o.FaultRate > 0 {
		rates = []float64{o.FaultRate}
	}

	type cell struct {
		rt                            sim.Summary
		hist                          *obs.Histogram
		injected, recovered, surfaced sim.Summary
		echoOK, opsFailed             sim.Summary
	}
	run := func(profile string, rate float64) cell {
		cl := cell{hist: obs.NewHistogram()}
		oo := o
		oo.FaultProfile = profile
		oo.FaultRate = rate
		for i := 0; i < o.runs(); i++ {
			m := newMachine(oo, o.BaseSeed+int64(i), nil)
			res, err := workloads.RunChaos(m, workloads.DefaultChaosConfig())
			if err != nil {
				m.Shutdown()
				panic(fmt.Sprint("chaos: ", err))
			}
			if !res.Validated {
				m.Shutdown()
				panic(fmt.Sprintf("chaos %s@%.2f: corrupt data survived recovery", profile, rate))
			}
			cl.rt.Add(res.Runtime.Milli())
			cl.hist.Merge(res.Latency)
			cl.injected.Add(float64(m.Inject.Injected.Value()))
			cl.recovered.Add(float64(m.Inject.Recovered.Value()))
			cl.surfaced.Add(float64(m.Inject.Surfaced.Value()))
			cl.echoOK.Add(float64(res.EchoOK))
			cl.opsFailed.Add(float64(res.OpsFailed))
			m.Shutdown()
		}
		return cl
	}

	base := run("", 0)
	baseQ := base.hist.Percentiles(50, 95, 99)
	addRow := func(name, rate string, cl cell) {
		q := cl.hist.Percentiles(50, 95, 99)
		infl := "1.00x"
		if baseQ[0] > 0 {
			infl = fmt.Sprintf("%.2fx", q[0]/baseQ[0])
		}
		t.AddRow(name, rate, ms(&cl.rt),
			fmt.Sprintf("%.0f", q[0]), fmt.Sprintf("%.0f", q[1]), fmt.Sprintf("%.0f", q[2]),
			infl, f0(&cl.injected), f0(&cl.recovered), f0(&cl.surfaced),
			f0(&cl.echoOK), f0(&cl.opsFailed))
	}
	addRow("baseline (no faults)", "-", base)
	for _, p := range profiles {
		for _, rate := range rates {
			addRow(p, fmt.Sprintf("%.2f", rate), run(p, rate))
		}
	}
	return t
}
