package experiments

import (
	"fmt"
	"sort"

	"genesys/internal/workloads"
)

// fleetSessions sizes the service-fleet experiment (smaller than the
// bench case so a multi-seed sweep stays fast).
const fleetSessions = 2000

// Fleet runs the service-fleet workload once per seed and reports the
// per-class SLO attainment plus what the flight recorder saw. With
// -faults this is the chaos scenario the observability stack is built
// for: detectors fire on the latency cliff and the anomaly bundles are
// exported via -flight-out.
func Fleet(o Options) *Table {
	t := &Table{
		ID:    "fleet",
		Title: "service fleet: per-class SLO attainment and flight-recorder verdict",
		Note: "Churning UDP + stream sessions against the sharded-socket server.\n" +
			"anomalies/bundles are the flight recorder's detector firings for the run.",
		Header: []string{"seed", "class", "offered", "completed", "timeouts",
			"p50 (us)", "p99 (us)", "min (us)", "max (us)", "anomalies", "bundles"},
	}
	for i := 0; i < o.runs(); i++ {
		seed := o.BaseSeed + int64(i)
		m := newMachine(o, seed, nil)
		cfg := workloads.DefaultFleetConfig(fleetSessions)
		cfg.Seed = seed
		rep, err := workloads.RunFleet(m, cfg)
		if err != nil {
			m.Shutdown()
			panic(fmt.Sprint("fleet: ", err))
		}
		names := make([]string, 0, len(rep.Classes))
		for n := range rep.Classes {
			names = append(names, n)
		}
		sort.Strings(names)
		fl := m.Obs.Flight
		for _, n := range names {
			c := rep.Classes[n]
			t.AddRow(fmt.Sprint(seed), n,
				fmt.Sprint(c.Offered), fmt.Sprint(c.Completed), fmt.Sprint(c.Timeouts),
				fmt.Sprintf("%.1f", float64(c.P50Ns)/1e3),
				fmt.Sprintf("%.1f", float64(c.P99Ns)/1e3),
				fmt.Sprintf("%.1f", float64(c.MinNs)/1e3),
				fmt.Sprintf("%.1f", float64(c.MaxNs)/1e3),
				fmt.Sprint(fl.Anomalies()), fmt.Sprint(len(fl.Bundles())))
		}
		m.Shutdown()
	}
	return t
}
