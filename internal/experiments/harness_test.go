package experiments

import (
	"strings"
	"testing"

	"genesys/internal/sim"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "test",
		Title:  "A Title",
		Note:   "line one\nline two",
		Header: []string{"col", "longer column"},
	}
	tbl.AddRow("a", "b")
	tbl.AddRow("a-very-long-cell", "c")
	out := tbl.Render()
	if !strings.Contains(out, "=== TEST: A Title ===") {
		t.Fatalf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "  line one\n  line two\n") {
		t.Fatalf("note missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var header, sep string
	for i, l := range lines {
		if strings.HasPrefix(l, "col") {
			header, sep = l, lines[i+1]
			break
		}
	}
	if header == "" || !strings.HasPrefix(sep, "---") {
		t.Fatalf("header/separator missing:\n%s", out)
	}
	// Column alignment: every row at least as wide as the widest cell.
	if !strings.Contains(out, "a-very-long-cell  c") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestByIDAndIDsAgree(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := ByID(id); !ok {
			t.Fatalf("IDs() lists %q but ByID cannot resolve it", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id resolved")
	}
	if len(IDs()) < 14 {
		t.Fatalf("only %d experiments registered", len(IDs()))
	}
}

func TestSweepAndFormatters(t *testing.T) {
	o := Options{Runs: 4, BaseSeed: 10}
	var seeds []int64
	s := sweep(o, func(seed int64) float64 {
		seeds = append(seeds, seed)
		return float64(seed)
	})
	if len(seeds) != 4 || seeds[0] != 10 || seeds[3] != 13 {
		t.Fatalf("seeds = %v", seeds)
	}
	if s.Mean() != 11.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if got := f2(s); !strings.Contains(got, "11.50 ±") {
		t.Fatalf("f2 = %q", got)
	}
	if got := f0(s); !strings.HasPrefix(got, "12 ±") {
		t.Fatalf("f0 = %q", got)
	}
	var a, b sim.Summary
	a.Add(10)
	b.Add(5)
	if got := ratio(&a, &b); got != "2.00x" {
		t.Fatalf("ratio = %q", got)
	}
	var zero sim.Summary
	if got := ratio(&a, &zero); got != "n/a" {
		t.Fatalf("zero ratio = %q", got)
	}
	if byteSize(512) != "512 B" || byteSize(2<<10) != "2 KiB" || byteSize(3<<20) != "3 MiB" {
		t.Fatal("byteSize formatting")
	}
	if o := DefaultOptions(); o.Runs != 3 || o.BaseSeed != 1 {
		t.Fatalf("default options = %+v", o)
	}
	if (Options{}).runs() != 1 {
		t.Fatal("zero Options should run once")
	}
}
